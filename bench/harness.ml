(* Shared benchmark-harness infrastructure: real-mode measurement on the
   host (paper methodology: times taken inside the running application,
   serial elision as T_s, geometric-mean speedups) and sim-mode
   measurement through the trace recorder + discrete-event scheduler
   simulator. *)

module Registry = Nowa_kernels.Registry

type options = {
  runs : int;  (** timed repetitions per real-mode cell (plus 1 warm-up) *)
  real_workers : int list;
  sim_workers : int list;
  real_size : Registry.size;
  sim_size : Registry.size option;
      (** [None] picks the per-benchmark profile below, sized so that
          every recorded DAG has parallelism well beyond 256 where the
          algorithm allows it. *)
}

let host_workers () = Nowa_util.Cpu.default_workers ()

let default_options () =
  let hw = host_workers () in
  let real = List.sort_uniq compare [ 1; max 1 (hw / 2); hw; hw * 2 ] in
  {
    runs = 3;
    real_workers = real;
    sim_workers = [ 1; 16; 64; 128; 192; 256 ];
    real_size = Registry.Small;
    sim_size = None;
  }

(* Recording scale per benchmark: fine-grained recursions (fib) explode
   in DAG size and are kept smaller; blocked linear algebra needs large
   matrices before its task count exceeds the 256 virtual workers. *)
let sim_profile = function
  | "fib" | "integrate" -> Registry.Small
  | "nqueens" | "knapsack" | "quicksort" | "fft" | "heat" -> Registry.Medium
  | "matmul" | "rectmul" | "strassen" | "lu" | "cholesky" -> Registry.Large
  | _ -> Registry.Medium

let sim_size_for ~opts bench =
  match opts.sim_size with Some s -> s | None -> sim_profile bench

let size_of_string = function
  | "test" -> Registry.Test
  | "small" -> Registry.Small
  | "medium" -> Registry.Medium
  | "large" -> Registry.Large
  | s -> failwith ("unknown size: " ^ s)

(* -- real mode --------------------------------------------------------- *)

(* Mean serial-elision time (T_s), memoised per (size, benchmark). *)
let serial_cache : (string, float) Hashtbl.t = Hashtbl.create 32

let serial_mean ~opts name =
  let key = name ^ string_of_int (Hashtbl.hash opts.real_size) in
  match Hashtbl.find_opt serial_cache key with
  | Some t -> t
  | None ->
    let inst = Registry.find opts.real_size name in
    let module S = Nowa_runtime.Serial_runtime in
    let thunk = inst.Registry.make_thunk (module S) in
    ignore (S.run thunk) (* warm-up *);
    let times =
      List.init opts.runs (fun _ ->
          fst (S.run (fun () -> Nowa_util.Clock.time_it thunk)))
    in
    let t = Nowa_util.Stats.mean times in
    Hashtbl.add serial_cache key t;
    t

(* One real-mode cell: run [runs] times (after a warm-up), timed inside
   [R.run]; verifies every fingerprint against the serial elision.
   [patch] adjusts the runtime configuration (madvise modes etc.). *)
let measure_real ?(patch = fun c -> c) ~opts (module R : Nowa.RUNTIME) name workers =
  let inst = Registry.find opts.real_size name in
  let reference = Registry.reference opts.real_size name in
  let conf = patch (Nowa.Config.with_workers workers) in
  let thunk = inst.Registry.make_thunk (module R) in
  let once () =
    let elapsed, fp = R.run ~conf (fun () -> Nowa_util.Clock.time_it thunk) in
    if not (Registry.matches inst reference fp) then
      Printf.eprintf "WARNING: %s on %s/%d: wrong fingerprint %.9g (ref %.9g)\n%!"
        name R.name workers fp reference;
    elapsed
  in
  ignore (once ()) (* warm-up *);
  List.init opts.runs (fun _ -> once ())

let real_speedup ?patch ~opts runtime name workers =
  let ts = serial_mean ~opts name in
  let times = measure_real ?patch ~opts runtime name workers in
  Nowa_util.Stats.speedup_of_runs ~serial_mean:ts times

(* -- sim mode ----------------------------------------------------------- *)

let dag_cache : (string, Nowa_dag.Dag.t) Hashtbl.t = Hashtbl.create 32

let size_tag = function
  | Registry.Test -> "test"
  | Registry.Small -> "small"
  | Registry.Medium -> "medium"
  | Registry.Large -> "large"

(* Record the benchmark's fork/join DAG (serial, instrumented run),
   memoised per (size, benchmark). *)
let recorded_dag ~opts name =
  let size = sim_size_for ~opts name in
  let key = size_tag size ^ "/" ^ name in
  match Hashtbl.find_opt dag_cache key with
  | Some d -> d
  | None ->
    let inst = Registry.find size name in
    let thunk = inst.Registry.make_thunk (module Nowa_dag.Recorder) in
    let dag, _ = Nowa_dag.Recorder.record thunk in
    (match Nowa_dag.Dag.validate dag with
    | Ok () -> ()
    | Error e -> Printf.eprintf "WARNING: %s DAG invalid: %s\n%!" name e);
    (* Remove preemption/GC spikes from the recorded strand costs; see
       Dag.clamp_work. *)
    ignore (Nowa_dag.Dag.clamp_work dag);
    Hashtbl.add dag_cache key dag;
    dag

let sim_speedup ~opts model name workers =
  let dag = recorded_dag ~opts name in
  let r = Nowa_dag.Wsim.simulate model ~workers dag in
  if r.Nowa_dag.Wsim.truncated then
    Printf.eprintf "WARNING: sim %s/%s/%d truncated\n%!" name
      model.Nowa_dag.Cost_model.cname workers;
  r

(* -- tracing ------------------------------------------------------------ *)

let default_trace_capacity = 65_536

(* One traced real-mode run of any benchmark on any runtime: writes a
   Perfetto JSON timeline to [file] and returns the strand-level summary
   ([None] for runtimes that do not trace, e.g. the serial elision). *)
let trace_real ?(capacity = default_trace_capacity) ~opts
    (module R : Nowa.RUNTIME) name workers file =
  let inst = Registry.find opts.real_size name in
  let conf =
    { (Nowa.Config.with_workers workers) with Nowa.Config.trace_capacity = capacity }
  in
  let thunk = inst.Registry.make_thunk (module R) in
  ignore (R.run ~conf thunk);
  match R.last_trace () with
  | None -> None
  | Some tr ->
    Nowa_trace.Perfetto.write_file
      ~process_name:(Printf.sprintf "%s:%s/%dw" R.name name workers)
      file tr;
    Some (Nowa_trace.Trace_analysis.summarize tr)

(* Same, through the simulator: replay the recorded DAG on [workers]
   virtual workers and dump the virtual-time schedule. *)
let trace_sim ?(capacity = default_trace_capacity) ~opts model name workers file =
  let dag = recorded_dag ~opts name in
  let tr =
    Nowa_trace.Trace.create ~clock:Nowa_trace.Trace.Virtual ~workers ~capacity ()
  in
  let r = Nowa_dag.Wsim.simulate ~trace:tr model ~workers dag in
  Nowa_trace.Perfetto.write_file
    ~process_name:
      (Printf.sprintf "wsim:%s:%s/%dw" model.Nowa_dag.Cost_model.cname name
         workers)
    file tr;
  (r, Nowa_trace.Trace_analysis.summarize tr)

(* -- formatting ----------------------------------------------------------- *)

let fmt_f2 v = Printf.sprintf "%.2f" v

let fmt_speedup (s : Nowa_util.Stats.speedup) =
  Printf.sprintf "%.2f ±%.2f" s.Nowa_util.Stats.geo s.Nowa_util.Stats.sd

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title
