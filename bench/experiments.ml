(* The per-figure / per-table experiments of the paper's evaluation
   (Section V), regenerated at two levels:

   - sim: recorded DAGs replayed on 1-256 virtual workers under the
     per-runtime cost models (the substitute for the 256-thread EPYC);
   - real: the actual schedulers on the host's cores, speedups computed
     with the paper's methodology against the serial elision. *)

module Registry = Nowa_kernels.Registry
module CM = Nowa_dag.Cost_model
module Stats = Nowa_util.Stats
open Harness

let all_benchmarks = Registry.names

let sim_table ~opts ~benchmarks ~models =
  List.iter
    (fun bench ->
      let dag = recorded_dag ~opts bench in
      let inst = Registry.find (sim_size_for ~opts bench) bench in
      subsection
        (Printf.sprintf "%s (sim, %s, T1=%.2f ms, parallelism=%.0f)" bench
           inst.Registry.input_desc
           (Nowa_dag.Dag.total_work dag /. 1e6)
           (Nowa_dag.Dag.parallelism dag));
      let header = "threads" :: List.map (fun m -> m.CM.cname) models in
      let rows =
        List.map
          (fun p ->
            string_of_int p
            :: List.map
                 (fun m -> fmt_f2 (sim_speedup ~opts m bench p).Nowa_dag.Wsim.speedup)
                 models)
          opts.sim_workers
      in
      Nowa_util.Table.print ~header rows)
    benchmarks

let real_table ~opts ~benchmarks ~runtimes =
  List.iter
    (fun bench ->
      let ts = serial_mean ~opts bench in
      subsection (Printf.sprintf "%s (real, Ts=%.4f s)" bench ts);
      let header =
        "threads"
        :: List.map (fun (module R : Nowa.RUNTIME) -> R.name) runtimes
      in
      let rows =
        List.map
          (fun w ->
            string_of_int w
            :: List.map
                 (fun (module R : Nowa.RUNTIME) ->
                   fmt_speedup (real_speedup ~opts (module R) bench w))
                 runtimes)
          opts.real_workers
      in
      Nowa_util.Table.print ~header rows)
    benchmarks

(* Geometric-mean speedup ratio of runtime [a] over [b] across
   benchmarks, the paper's cross-runtime summary statistic. *)
let sim_summary ~opts ~benchmarks ~baseline ~workers models =
  let speedup m bench = (sim_speedup ~opts m bench workers).Nowa_dag.Wsim.speedup in
  List.map
    (fun m ->
      let ratios =
        List.map (fun b -> (speedup m b, speedup baseline b)) benchmarks
      in
      (m.CM.cname, Stats.ratio_geomean ratios))
    models

(* ---------------------------------------------------------------- *)

let figure1 ~opts () =
  section "Figure 1: nqueens speedup, Nowa vs Fibril vs Cilk Plus vs TBB";
  sim_table ~opts ~benchmarks:[ "nqueens" ]
    ~models:[ CM.nowa; CM.fibril; CM.cilkplus; CM.tbb ];
  real_table ~opts ~benchmarks:[ "nqueens" ]
    ~runtimes:Nowa.Presets.figure7_set

let table1 ~opts () =
  section "Table I: the twelve benchmarks";
  ignore opts;
  let sloc name =
    let path = Filename.concat "lib/kernels" (name ^ ".ml") in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if String.length line > 0 && not (String.length line >= 2 && String.sub line 0 2 = "(*")
           then incr n
         done
       with End_of_file -> close_in ic);
      string_of_int !n
    end
    else "-"
  in
  let header = [ "Benchmark"; "Input (medium)"; "SLOC (ours)" ] in
  let rows =
    List.map
      (fun name ->
        let inst = Registry.find Registry.Medium name in
        [ name; inst.Registry.input_desc; sloc name ])
      all_benchmarks
  in
  Nowa_util.Table.print ~header rows

let figure7 ~opts () =
  section "Figure 7: speedup of all 12 benchmarks (Nowa / Fibril / Cilk Plus / TBB)";
  let models = [ CM.nowa; CM.fibril; CM.cilkplus; CM.tbb ] in
  sim_table ~opts ~benchmarks:all_benchmarks ~models;
  subsection "cross-benchmark summary at 256 simulated threads (geomean speedup ratio, nowa/x)";
  let summary =
    sim_summary ~opts ~benchmarks:all_benchmarks ~baseline:CM.nowa ~workers:256
      [ CM.fibril; CM.cilkplus; CM.tbb ]
  in
  List.iter
    (fun (name, ratio) -> Printf.printf "  nowa vs %-10s: %.2fx\n" name (1.0 /. ratio))
    summary;
  (* The paper excludes knapsack from averages (order-dependent work). *)
  let no_knap = List.filter (fun b -> b <> "knapsack") all_benchmarks in
  let summary' =
    sim_summary ~opts ~benchmarks:no_knap ~baseline:CM.nowa ~workers:256
      [ CM.fibril; CM.cilkplus; CM.tbb ]
  in
  List.iter
    (fun (name, ratio) ->
      Printf.printf "  nowa vs %-10s: %.2fx (excluding knapsack)\n" name (1.0 /. ratio))
    summary';
  real_table ~opts ~benchmarks:all_benchmarks ~runtimes:Nowa.Presets.figure7_set

(* Figure 8 benchmarks: the eight the paper plots. *)
let figure8_benchmarks =
  [ "cholesky"; "lu"; "heat"; "fib"; "matmul"; "nqueens"; "integrate"; "rectmul" ]

let figure8 ~opts () =
  section "Figure 8: impact of madvise() on the practical cactus-stack solution";
  Printf.printf
    "(real runs on the Nowa preset; madvise modelled by the stack-pool \
     substrate at %d ns per call)\n"
    (Nowa.Config.default ()).Nowa.Config.madvise_cost_ns;
  let workers = List.fold_left max 1 opts.real_workers in
  let with_madvise mode c =
    { c with Nowa.Config.madvise = true; madvise_mode = mode }
  in
  let header =
    [
      "benchmark"; "w/o madvise (s)"; "MADV_FREE (s)"; "MADV_DONTNEED (s)";
      "free slowdown"; "dontneed slowdown";
    ]
  in
  let rows =
    List.map
      (fun bench ->
        let t_off =
          Stats.mean (measure_real ~opts (module Nowa.Presets.Nowa) bench workers)
        in
        let t_free =
          Stats.mean
            (measure_real ~patch:(with_madvise Nowa.Config.Madv_free) ~opts
               (module Nowa.Presets.Nowa) bench workers)
        in
        let t_dontneed =
          Stats.mean
            (measure_real ~patch:(with_madvise Nowa.Config.Madv_dontneed) ~opts
               (module Nowa.Presets.Nowa) bench workers)
        in
        [
          bench;
          Printf.sprintf "%.4f" t_off;
          Printf.sprintf "%.4f" t_free;
          Printf.sprintf "%.4f" t_dontneed;
          Printf.sprintf "%.2fx" (t_free /. t_off);
          Printf.sprintf "%.2fx" (t_dontneed /. t_off);
        ])
      figure8_benchmarks
  in
  Nowa_util.Table.print ~header rows

let table2 ~opts () =
  section "Table II: max RSS of the stack pool with and without madvise()";
  let workers = List.fold_left max 1 opts.real_workers in
  let page_kib = 4 in
  let rss_of bench madvise =
    let patch c = { c with Nowa.Config.madvise } in
    ignore (measure_real ~patch ~opts (module Nowa.Presets.Nowa) bench workers);
    match Nowa.Presets.Nowa.last_metrics () with
    | Some { Nowa.Metrics.stacks = Some s; _ } ->
      (s.Nowa.Metrics.max_rss_pages, s.Nowa.Metrics.madvise_calls)
    | _ -> (0, 0)
  in
  let header =
    [ "benchmark"; "no madvise (KiB)"; "madvise (KiB)"; "delta"; "madvise calls" ]
  in
  let rows =
    List.map
      (fun bench ->
        let off, _ = rss_of bench false in
        let on, calls = rss_of bench true in
        [
          bench;
          string_of_int (off * page_kib);
          string_of_int (on * page_kib);
          string_of_int ((on - off) * page_kib);
          string_of_int calls;
        ])
      figure8_benchmarks
  in
  Nowa_util.Table.print ~header rows

let figure9_benchmarks = [ "cholesky"; "fib"; "nqueens"; "matmul" ]

let figure9 ~opts () =
  section "Figure 9: the CL queue versus the THE queue inside Nowa";
  sim_table ~opts ~benchmarks:figure9_benchmarks
    ~models:[ CM.nowa; CM.nowa_the; CM.fibril ];
  real_table ~opts ~benchmarks:figure9_benchmarks
    ~runtimes:[ (module Nowa.Presets.Nowa); (module Nowa.Presets.Nowa_the); (module Nowa.Presets.Fibril) ]

let figure10 ~opts () =
  section "Figure 10: Nowa compared against the OpenMP runtime models";
  let models = [ CM.nowa; CM.tbb; CM.gomp; CM.lomp_untied; CM.lomp_tied ] in
  sim_table ~opts ~benchmarks:all_benchmarks ~models;
  subsection "cross-benchmark summary at 256 simulated threads";
  let summary =
    sim_summary ~opts ~benchmarks:all_benchmarks ~baseline:CM.nowa ~workers:256
      [ CM.gomp; CM.lomp_untied; CM.lomp_tied ]
  in
  List.iter
    (fun (name, ratio) -> Printf.printf "  nowa vs %-12s: %.2fx\n" name (1.0 /. ratio))
    summary;
  real_table ~opts ~benchmarks:[ "fib"; "nqueens"; "quicksort" ]
    ~runtimes:Nowa.Presets.figure10_set

let table3 ~opts () =
  section "Table III: execution times at 256 (simulated) threads";
  let models = [ CM.nowa; CM.lomp_untied; CM.lomp_tied ] in
  let header =
    "benchmark" :: List.map (fun m -> m.CM.cname ^ " (s)") models
  in
  let rows =
    List.map
      (fun bench ->
        bench
        :: List.map
             (fun m ->
               let r = sim_speedup ~opts m bench 256 in
               Printf.sprintf "%.5f" (r.Nowa_dag.Wsim.makespan_ns /. 1e9))
             models)
      all_benchmarks
  in
  Nowa_util.Table.print ~header rows

(* Beyond the paper: isolate each design axis. *)
let ablation ~opts () =
  section "Ablation A: the deque inside the wait-free runtime (CL vs THE vs ABP)";
  real_table ~opts ~benchmarks:[ "fib"; "nqueens" ]
    ~runtimes:
      [
        (module Nowa.Presets.Nowa);
        (module Nowa.Presets.Nowa_the);
        (module Nowa.Presets.Nowa_abp);
      ];
  section "Ablation B: the strand counter on a fixed (THE) deque (wait-free vs lock-based)";
  real_table ~opts ~benchmarks:[ "fib"; "nqueens" ]
    ~runtimes:[ (module Nowa.Presets.Nowa_the); (module Nowa.Presets.Fibril) ];
  section "Ablation C: victim-selection policy (random vs round-robin)";
  let workers_a = List.fold_left max 1 opts.real_workers in
  List.iter
    (fun bench ->
      let t_random =
        Stats.mean (measure_real ~opts (module Nowa.Presets.Nowa) bench workers_a)
      in
      let t_rr =
        Stats.mean
          (measure_real
             ~patch:(fun c -> { c with Nowa.Config.victim_policy = Nowa.Config.Round_robin })
             ~opts (module Nowa.Presets.Nowa) bench workers_a)
      in
      Printf.printf "  %-10s random %8.3f ms, round-robin %8.3f ms (%.2fx)\n"
        bench (t_random *. 1e3) (t_rr *. 1e3) (t_rr /. t_random))
    [ "fib"; "nqueens" ];
  section "Ablation D: spawn-order sensitivity of knapsack (Section V-A)";
  let inst = Registry.find opts.real_size "knapsack" in
  ignore inst;
  let items = Nowa_kernels.Knapsack.make_items ~seed:11 22 in
  let workers = List.fold_left max 1 opts.real_workers in
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let module K = Nowa_kernels.Knapsack.Make (R) in
      let conf = Nowa.Config.with_workers workers in
      let time flipped =
        let t, v =
          R.run ~conf (fun () ->
              Nowa_util.Clock.time_it (fun () -> K.run ~flipped items))
        in
        (t, v)
      in
      let t_orig, v1 = time false in
      let t_flip, v2 = time true in
      assert (v1 = v2);
      Printf.printf
        "  %-12s original order %8.3f ms, flipped %8.3f ms (flip is %.2fx the \
         original)\n"
        R.name (t_orig *. 1e3) (t_flip *. 1e3) (t_flip /. t_orig))
    [ (module Nowa.Presets.Nowa : Nowa.RUNTIME); (module Nowa.Presets.Tbb) ]

(* Beyond the paper: per-worker event timelines (open the .trace.json
   files in chrome://tracing or ui.perfetto.dev) plus the strand-level
   summaries — utilization, work-vs-scheduler split, steal-latency tail —
   for a real run and a simulated 256-worker replay of each benchmark. *)
let traces ~opts () =
  section "Traces: per-worker timelines (Perfetto JSON)";
  let workers = List.fold_left max 1 opts.real_workers in
  List.iter
    (fun bench ->
      let file =
        Nowa_util.Artifacts.path
          (Printf.sprintf "nowa-%s-%dw.trace.json" bench workers)
      in
      (match trace_real ~opts (module Nowa.Presets.Nowa) bench workers file with
      | Some summary ->
        Printf.printf "\n%s on nowa, %d workers -> %s\n" bench workers file;
        Format.printf "%a@." Nowa_trace.Trace_analysis.pp summary
      | None -> Printf.eprintf "  %s: runtime produced no trace\n" bench);
      let sim_file =
        Nowa_util.Artifacts.path
          (Printf.sprintf "wsim-nowa-%s-256w.trace.json" bench)
      in
      let r, summary = trace_sim ~opts CM.nowa bench 256 sim_file in
      Printf.printf "\n%s on wsim:nowa, 256 virtual workers -> %s (makespan %.3f ms)\n"
        bench sim_file
        (r.Nowa_dag.Wsim.makespan_ns /. 1e6);
      Format.printf "%a@." Nowa_trace.Trace_analysis.pp summary)
    [ "fib"; "nqueens" ]

(* -- scalability: Cilkview-style burdened analysis vs. the simulator --- *)

(* For each benchmark: burdened work/span analysis of the recorded DAG
   (burden = the Nowa cost model's strand-migration cost), the
   work/span-law upper bound and burdened lower estimate per worker
   count, and the wsim-measured speedup between them — then the top
   strands on the burdened critical path.  A measured speedup below the
   lower estimate means overhead the DAG does not capture; burdened
   parallelism far below plain parallelism means the workload is
   spawn-granularity-bound. *)
let scalability ~opts () =
  section "Scalability profile (Cilkview-style burdened DAG analysis)";
  let burden = Nowa_dag.Scalability.burden_of_cost_model CM.nowa in
  let workers = [ 1; 2; 4; 8; 16; 64; 256 ] in
  List.iter
    (fun bench ->
      let dag = recorded_dag ~opts bench in
      let inst = Registry.find (sim_size_for ~opts bench) bench in
      let r = Nowa_dag.Scalability.analyze ~burden_ns:burden dag in
      subsection
        (Printf.sprintf "%s (%s, burden=%.0f ns/edge)" bench
           inst.Registry.input_desc burden);
      Format.printf "%a@." Nowa_dag.Scalability.pp r;
      let rows =
        List.map
          (fun p ->
            let sim = (sim_speedup ~opts CM.nowa bench p).Nowa_dag.Wsim.speedup in
            [
              string_of_int p;
              fmt_f2 (Nowa_dag.Scalability.bound_lower r ~workers:p);
              fmt_f2 sim;
              fmt_f2 (Nowa_dag.Scalability.bound_upper r ~workers:p);
            ])
          workers
      in
      Nowa_util.Table.print
        ~header:[ "threads"; "lower est."; "wsim(nowa)"; "upper bound" ]
        rows;
      let strands =
        Nowa_dag.Scalability.critical_strands ~burden_ns:burden ~top:5 dag
      in
      Printf.printf "top strands on the burdened critical path:\n";
      List.iter
        (fun (s : Nowa_dag.Scalability.strand) ->
          Printf.printf "  vertex %-9d %10.0f ns  %5.1f%% of burdened span\n"
            s.Nowa_dag.Scalability.vertex s.Nowa_dag.Scalability.work_ns
            (100.0 *. s.Nowa_dag.Scalability.share))
        strands)
    [ "fib"; "matmul" ]

(* -- causal profile: time ledger, convoys, what-if sensitivity ----------- *)

module Wsim = Nowa_dag.Wsim
module Convoy = Nowa_dag.Convoy
module Causal = Nowa_dag.Causal

(* Coarser factor grid than [Causal.default_factors]: the experiment runs
   |factors| x |knobs| x |models| x |benchmarks| simulations. *)
let causal_factors = [ 0.0; 0.5; 1.0; 2.0 ]

let causal_models = [ CM.nowa; CM.cilkplus; CM.gomp ]
let causal_benchmarks = [ "fib"; "nqueens" ]

let conservation_rel_err (l : Wsim.ledger) ~workers =
  let expect = float_of_int workers *. l.Wsim.horizon_ns in
  if expect > 0.0 then Float.abs (Wsim.ledger_total l -. expect) /. expect
  else 0.0

let causal ~opts () =
  section "Causal profile: time ledger, convoy detection, what-if sensitivity";
  let workers = List.fold_left max 1 opts.sim_workers in
  let summary = Buffer.create 1024 in
  Buffer.add_string summary "[\n";
  let first_entry = ref true in
  (* lock-cost zero-gain per (bench, model), for the headline comparison *)
  let lock_gains = ref [] in
  List.iter
    (fun bench ->
      let dag = recorded_dag ~opts bench in
      let out = Buffer.create 8192 in
      Printf.bprintf out "{ \"bench\": %S, \"workers\": %d, \"models\": [\n"
        bench workers;
      let first_model = ref true in
      List.iter
        (fun (m : CM.t) ->
          subsection
            (Printf.sprintf "%s under %s, %d virtual workers" bench m.CM.cname
               workers);
          let r = Wsim.simulate ~detail:true m ~workers dag in
          Format.printf "%a@." Wsim.pp_ledger r.Wsim.ledger;
          let header =
            [ "resource"; "acq"; "contended"; "wait (us)"; "hold (us)" ]
          in
          let rows =
            List.filter_map
              (fun (s : Wsim.resource_stats) ->
                if s.Wsim.acquisitions = 0 then None
                else
                  Some
                    [
                      Wsim.resource_class_name s.Wsim.rclass;
                      string_of_int s.Wsim.acquisitions;
                      string_of_int s.Wsim.contended;
                      Printf.sprintf "%.1f" (s.Wsim.wait_ns /. 1e3);
                      Printf.sprintf "%.1f" (s.Wsim.hold_ns /. 1e3);
                    ])
              r.Wsim.resources
          in
          Nowa_util.Table.print ~header rows;
          let convoys = Convoy.detect r.Wsim.acquisitions in
          if convoys = [] then
            Printf.printf "no convoys (queue depth never reached 4)\n"
          else begin
            Printf.printf "top convoys:\n";
            List.iter (fun c -> Format.printf "  %a@." Convoy.pp c) convoys
          end;
          let knobs =
            Causal.model_knobs
            @
            match Causal.hottest_strand dag with
            | Some v -> [ Causal.Strand_work v ]
            | None -> []
          in
          let ranking =
            Causal.rank ~factors:causal_factors m ~workers dag knobs
          in
          Printf.printf "what-if sensitivity (virtual speedup of zeroing each cost):\n";
          List.iter
            (fun (x : Causal.experiment) ->
              Printf.printf "  %-12s %+7.2f%%\n"
                (Causal.knob_name x.Causal.knob)
                x.Causal.zero_gain_pct)
            ranking;
          (match
             List.find_opt (fun x -> x.Causal.knob = Causal.Lock_cost) ranking
           with
          | Some x ->
            lock_gains := (bench, m.CM.cname, x.Causal.zero_gain_pct) :: !lock_gains
          | None -> ());
          (* -- JSON ------------------------------------------------- *)
          if not !first_model then Buffer.add_string out ",\n";
          first_model := false;
          let l = r.Wsim.ledger in
          let err = conservation_rel_err l ~workers:r.Wsim.workers in
          Printf.bprintf out
            "  { \"model\": %S, \"makespan_ns\": %.1f, \"speedup\": %.3f,\n"
            m.CM.cname r.Wsim.makespan_ns r.Wsim.speedup;
          Printf.bprintf out "    \"ledger\": { %s },\n"
            (String.concat ", "
               (List.map
                  (fun c ->
                    Printf.sprintf "%S: %.1f" (Wsim.category_name c)
                      (Wsim.ledger_category l c))
                  Wsim.categories));
          Printf.bprintf out
            "    \"conservation_rel_err\": %.3e, \"partial\": %b,\n" err
            l.Wsim.lpartial;
          Printf.bprintf out "    \"convoys\": [ %s ],\n"
            (String.concat ", "
               (List.map
                  (fun (c : Convoy.t) ->
                    Printf.sprintf
                      "{ \"resource\": %S, \"start_ns\": %.1f, \
                       \"duration_ns\": %.1f, \"peak\": %d, \
                       \"participants\": %d, \"serialized_ns\": %.1f }"
                      (Convoy.resource_name c.Convoy.resource)
                      c.Convoy.start_ns (Convoy.duration_ns c) c.Convoy.peak
                      c.Convoy.participants c.Convoy.serialized_ns)
                  convoys));
          Printf.bprintf out "    \"sensitivity\": [ %s ] }"
            (String.concat ",\n      "
               (List.map
                  (fun (x : Causal.experiment) ->
                    Printf.sprintf
                      "{ \"knob\": %S, \"zero_gain_pct\": %.3f, \"points\": [ %s ] }"
                      (Causal.knob_name x.Causal.knob)
                      x.Causal.zero_gain_pct
                      (String.concat ", "
                         (List.map
                            (fun (p : Causal.point) ->
                              Printf.sprintf
                                "{ \"factor\": %g, \"makespan_ns\": %.1f, \
                                 \"gain_pct\": %.3f }"
                                p.Causal.factor p.Causal.makespan_ns
                                p.Causal.gain_pct)
                            x.Causal.points)))
                  ranking));
          let top =
            match ranking with
            | x :: _ -> Causal.knob_name x.Causal.knob
            | [] -> "none"
          in
          let lock_gain =
            match
              List.find_opt (fun x -> x.Causal.knob = Causal.Lock_cost) ranking
            with
            | Some x -> x.Causal.zero_gain_pct
            | None -> 0.0
          in
          if not !first_entry then Buffer.add_string summary ",\n";
          first_entry := false;
          Printf.bprintf summary
            "  { \"bench\": %S, \"model\": %S, \"workers\": %d, \
             \"makespan_ns\": %.1f, \"lock_cost_zero_gain_pct\": %.3f, \
             \"top_knob\": %S, \"convoys\": %d, \"conservation_rel_err\": \
             %.3e }"
            bench m.CM.cname workers r.Wsim.makespan_ns lock_gain top
            (List.length convoys) err)
        causal_models;
      Buffer.add_string out "\n] }\n";
      let file =
        Nowa_util.Artifacts.path (Printf.sprintf "causal-%s.json" bench)
      in
      let oc = open_out file in
      Buffer.output_buffer oc out;
      close_out oc;
      Printf.printf "\nwrote %s\n" file)
    causal_benchmarks;
  Buffer.add_string summary "\n]\n";
  let oc = open_out "BENCH_causal.json" in
  Buffer.output_buffer oc summary;
  close_out oc;
  Printf.printf "wrote BENCH_causal.json\n";
  subsection "lock-cost sensitivity across models (virtual speedup of lock_ns -> 0)";
  List.iter
    (fun (bench, model, gain) ->
      Printf.printf "  %-10s %-10s %+7.2f%%\n" bench model gain)
    (List.rev !lock_gains)

(* -- elastic idle path: what do idle workers cost? ----------------------- *)

(* CPU-time accounting of the three idle policies ([Config.idle_policy]).
   Serial-heavy phase: one worker spins inside the runtime for a fixed
   interval while the others have nothing to steal — the per-policy CPU
   delta (Unix.times, the getrusage stand-in) is the cost of keeping the
   idle workers around: a spinning worker burns a full core, a parked one
   ~nothing.  Saturated phase: fib keeps every worker busy, checking that
   the park machinery costs no wall-clock when there is no idle time to
   elide.  Also dumps a Perfetto trace of a park-heavy run so the
   Park/Unpark slices can be inspected. *)

let idle_policies =
  [
    ("spin", Nowa.Config.Spin);
    ("yield", Nowa.Config.Yield_after 512);
    ("park", Nowa.Config.Park_after 512);
  ]

let idle ~opts () =
  section "Idle experiment: spin vs yield vs park (elastic idle path)";
  let module R = Nowa.Presets.Nowa in
  let serial_ns = 50_000_000 in
  let worker_counts =
    match List.filter (fun w -> w > 1) opts.real_workers with
    | [] -> [ 4 ]
    | ws -> ws
  in
  let out = Buffer.create 4096 in
  Buffer.add_string out "[\n";
  let first = ref true in
  let record ~mode ~policy ~workers ~wall ~cpu ~parks ~wakeups =
    if not !first then Buffer.add_string out ",\n";
    first := false;
    Printf.bprintf out
      "  { \"mode\": %S, \"policy\": %S, \"workers\": %d, \"wall_s\": %.6f, \
       \"cpu_s\": %.6f, \"cpu_per_worker_s\": %.6f, \"parks\": %d, \
       \"wakeups\": %d }"
      mode policy workers wall cpu
      (cpu /. float_of_int workers)
      parks wakeups
  in
  let parks_wakeups () =
    match R.last_metrics () with
    | Some m ->
      ( Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.parks),
        Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.wakeups) )
    | None -> (0, 0)
  in
  subsection
    (Printf.sprintf "serial-heavy: %.0f ms of work on one worker, the rest idle"
       (float_of_int serial_ns /. 1e6));
  let header =
    [ "policy"; "workers"; "wall (s)"; "cpu (s)"; "cpu/worker"; "parks"; "wakeups" ]
  in
  let rows = ref [] in
  let serial_cpu = ref [] in
  List.iter
    (fun workers ->
      List.iter
        (fun (pname, policy) ->
          let conf =
            {
              (Nowa.Config.with_workers workers) with
              Nowa.Config.idle_policy = policy;
            }
          in
          R.run ~conf (fun () -> ()) (* warm-up: domain spawn paths *);
          let cpu0 = Nowa_util.Cpu.process_cpu_time () in
          let wall, () =
            Nowa_util.Clock.time_it (fun () ->
                R.run ~conf (fun () -> Nowa_util.Clock.spin_ns serial_ns))
          in
          let cpu = Nowa_util.Cpu.process_cpu_time () -. cpu0 in
          let parks, wakeups = parks_wakeups () in
          serial_cpu := ((pname, workers), cpu) :: !serial_cpu;
          rows :=
            [
              pname; string_of_int workers;
              Printf.sprintf "%.4f" wall;
              Printf.sprintf "%.4f" cpu;
              Printf.sprintf "%.4f" (cpu /. float_of_int workers);
              string_of_int parks; string_of_int wakeups;
            ]
            :: !rows;
          record ~mode:"serial" ~policy:pname ~workers ~wall ~cpu ~parks
            ~wakeups)
        idle_policies)
    worker_counts;
  Nowa_util.Table.print ~header (List.rev !rows);
  List.iter
    (fun workers ->
      match
        ( List.assoc_opt ("spin", workers) !serial_cpu,
          List.assoc_opt ("park", workers) !serial_cpu )
      with
      | Some spin, Some park when park > 0.0 ->
        Printf.printf
          "  %d workers: parked idle CPU is %.2fx the spinning idle CPU \
           (%.4f s vs %.4f s)\n"
          workers (park /. spin) park spin
      | _ -> ())
    worker_counts;
  subsection "saturated: fib keeps every worker busy (wall-clock parity check)";
  let rows = ref [] in
  List.iter
    (fun workers ->
      List.iter
        (fun (pname, policy) ->
          let patch c = { c with Nowa.Config.idle_policy = policy } in
          let cpu0 = Nowa_util.Cpu.process_cpu_time () in
          let times = measure_real ~patch ~opts (module R) "fib" workers in
          (* the CPU delta covers warm-up + runs repetitions *)
          let cpu =
            (Nowa_util.Cpu.process_cpu_time () -. cpu0)
            /. float_of_int (opts.runs + 1)
          in
          let wall = Stats.mean times in
          let parks, wakeups = parks_wakeups () in
          rows :=
            [
              pname; string_of_int workers;
              Printf.sprintf "%.4f" wall;
              Printf.sprintf "%.4f" cpu;
              Printf.sprintf "%.4f" (cpu /. float_of_int workers);
              string_of_int parks; string_of_int wakeups;
            ]
            :: !rows;
          record ~mode:"saturated" ~policy:pname ~workers ~wall ~cpu ~parks
            ~wakeups)
        idle_policies)
    worker_counts;
  Nowa_util.Table.print ~header (List.rev !rows);
  Buffer.add_string out "\n]\n";
  let oc = open_out "BENCH_idle.json" in
  Buffer.output_buffer oc out;
  close_out oc;
  Printf.printf "wrote BENCH_idle.json\n";
  (* A park-heavy traced run: the serial phase under an aggressive park
     threshold guarantees Park/Unpark events in the Perfetto output. *)
  let workers = List.fold_left max 2 worker_counts in
  let conf =
    {
      (Nowa.Config.with_workers workers) with
      Nowa.Config.idle_policy = Nowa.Config.Park_after 64;
      trace_capacity = default_trace_capacity;
    }
  in
  ignore (R.run ~conf (fun () -> Nowa_util.Clock.spin_ns serial_ns));
  (match R.last_trace () with
  | Some tr ->
    let path = Nowa_util.Artifacts.path "idle-park.trace.json" in
    Nowa_trace.Perfetto.write_file
      ~process_name:(Printf.sprintf "nowa:idle-park/%dw" workers)
      path tr;
    Printf.printf "wrote %s\n" path
  | None -> Printf.eprintf "idle: runtime produced no trace\n")

(* -- serving layer: open-loop YCSB over the sharded KV store ------------- *)

(* Tail latency is where the idle-policy and deque-family choices of
   PRs 4-5 actually meet user traffic: a parked worker that wakes late
   shows up directly in p999.  One open-loop run per cell (the run IS
   thousands of requests; [--runs] repetition adds nothing a bigger
   request count doesn't).  Emits BENCH_serve.json plus a Perfetto
   trace of a park-policy cell. *)

let serve ~opts () =
  section "Serve: open-loop YCSB mixes on the sharded KV service";
  let module W = Nowa_server.Workload in
  let module LG = Nowa_server.Loadgen in
  let workers = List.fold_left max 2 opts.real_workers in
  let records, requests, warmup, mix_rate, rates =
    match opts.real_size with
    | Registry.Test -> (500, 1_500, 200, 2_000., [ 2_000.; 8_000. ])
    | Registry.Small -> (5_000, 15_000, 1_500, 10_000., [ 10_000.; 40_000. ])
    | Registry.Medium ->
      (20_000, 60_000, 6_000, 25_000., [ 25_000.; 100_000. ])
    | Registry.Large ->
      (50_000, 200_000, 20_000, 50_000., [ 50_000.; 200_000. ])
  in
  let serve_policies =
    [ ("spin", Nowa.Config.Spin); ("park", Nowa.Config.Park_after 512) ]
  in
  let families =
    [
      (module Nowa.Presets.Nowa : Nowa.RUNTIME) (* Chase-Lev deques *);
      (module Nowa.Presets.Nowa_the) (* THE deques *);
    ]
  in
  let out = Buffer.create 4096 in
  Buffer.add_string out "[\n";
  let first = ref true in
  let total_dropped = ref 0 in
  let rows = ref [] in
  let run_cell ?(traced = false) ?(anatomy = true) ?(emit = true)
      (module R : Nowa.RUNTIME) (pname, policy) mix rate =
    let module L = LG.Make (R) in
    let spec = { (W.default_spec ~mix) with W.records; requests; warmup; rate } in
    let conf =
      {
        (Nowa.Config.with_workers workers) with
        Nowa.Config.idle_policy = policy;
        trace_capacity = (if traced then default_trace_capacity else 0);
      }
    in
    let r = L.run ~conf ~anatomy spec in
    if emit then begin
      total_dropped := !total_dropped + r.LG.dropped;
      if not !first then Buffer.add_string out ",\n";
      first := false;
      let json = LG.json_of_report r in
      (* Splice the sweep coordinate into the report object. *)
      Printf.bprintf out "  {\"policy\": %S, %s" pname
        (String.sub json 1 (String.length json - 1));
      let t = r.LG.total in
      rows :=
        [
          r.LG.mix; pname; R.name;
          Printf.sprintf "%.0f" rate;
          string_of_int r.LG.completed;
          string_of_int r.LG.dropped;
          Printf.sprintf "%.0f" r.LG.throughput;
          Printf.sprintf "%.1f" (t.LG.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (t.LG.p99_ns /. 1e3);
          Printf.sprintf "%.1f" (t.LG.p999_ns /. 1e3);
        ]
        :: !rows
    end;
    if traced then begin
      (match R.last_trace () with
      | Some tr ->
        let path = Nowa_util.Artifacts.path "serve-park.trace.json" in
        Nowa_trace.Perfetto.write_file
          ~process_name:(Printf.sprintf "nowa:serve/%dw" workers)
          path tr;
        Printf.printf "wrote %s\n" path
      | None -> Printf.eprintf "serve: runtime produced no trace\n");
      match r.LG.anatomy with
      | Some a ->
        let path = Nowa_util.Artifacts.path "serve-tail.trace.json" in
        Nowa_server.Anatomy.write_tail_perfetto path a;
        Printf.printf "wrote %s (%d tail spans)\n" path
          (List.length a.Nowa_server.Anatomy.tail);
        (* Where the cell's time went, phase by phase. *)
        Nowa_server.Anatomy.pp a
      | None -> ()
    end;
    r
  in
  let header =
    [
      "mix"; "policy"; "runtime"; "rate/s"; "done"; "drop"; "thru/s";
      "p50 us"; "p99 us"; "p999 us";
    ]
  in
  let flush_rows () =
    Nowa_util.Table.print ~header (List.rev !rows);
    rows := []
  in
  subsection
    (Printf.sprintf "YCSB A-F x idle policy (nowa, %d workers, %.0f req/s)"
       workers mix_rate);
  List.iter
    (fun mix ->
      List.iter
        (fun pol ->
          ignore (run_cell (module Nowa.Presets.Nowa) pol mix mix_rate))
        serve_policies)
    W.mixes;
  flush_rows ();
  subsection "arrival rate x deque family (mix A, park)";
  let mix_a = Option.get (W.find_mix "A") in
  List.iter
    (fun rate ->
      List.iter
        (fun fam ->
          ignore (run_cell fam (List.nth serve_policies 1) mix_a rate))
        families)
    rates;
  flush_rows ();
  subsection "traced park-policy cell (Perfetto)";
  ignore
    (run_cell ~traced:true
       (module Nowa.Presets.Nowa)
       (List.nth serve_policies 1) mix_a mix_rate);
  flush_rows ();
  (* Instrumentation-cost gate: the span ledger must stay invisible at
     the median.  min-of-3 per mode damps scheduler jitter on small CI
     boxes; the conservation audit rides on the anatomy-on runs. *)
  subsection
    (Printf.sprintf "anatomy overhead (mix A, %.0f req/s, min of 3)" mix_rate);
  let pol = List.nth serve_policies 1 in
  let min_p50 anatomy =
    let best = ref infinity and violations = ref 0 and max_err = ref 0 in
    for _ = 1 to 3 do
      let r =
        run_cell ~anatomy ~emit:false (module Nowa.Presets.Nowa) pol mix_a
          mix_rate
      in
      if r.LG.total.LG.p50_ns < !best then best := r.LG.total.LG.p50_ns;
      (match r.LG.anatomy with
      | Some a ->
        violations := !violations + a.Nowa_server.Anatomy.violations;
        max_err := max !max_err a.Nowa_server.Anatomy.max_abs_err_ns
      | None -> ())
    done;
    (!best, !violations, !max_err)
  in
  let p50_off, _, _ = min_p50 false in
  let p50_on, violations, max_err = min_p50 true in
  let overhead_pct = (p50_on -. p50_off) /. Float.max 1.0 p50_off *. 100.0 in
  let overhead_ok = overhead_pct <= 10.0 in
  Printf.printf
    "anatomy overhead: p50 off=%.1fus on=%.1fus overhead=%+.1f%% (%s); \
     conservation violations=%d max_err=%dns\n"
    (p50_off /. 1e3) (p50_on /. 1e3) overhead_pct
    (if overhead_ok then "<=10% ok" else "OVER BUDGET")
    violations max_err;
  if not !first then Buffer.add_string out ",\n";
  Printf.bprintf out
    "  {\"kind\": \"anatomy_overhead\", \"mix\": \"%s\", \"rate_rps\": %.1f, \
     \"p50_off_ns\": %.1f, \"p50_on_ns\": %.1f, \"overhead_pct\": %.2f, \
     \"overhead_ok\": %b, \"violations\": %d, \"max_abs_err_ns\": %d}"
    mix_a.W.mname mix_rate p50_off p50_on overhead_pct overhead_ok violations
    max_err;
  Buffer.add_string out "\n]\n";
  let oc = open_out "BENCH_serve.json" in
  Buffer.output_buffer oc out;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (total dropped across cells: %d)\n"
    !total_dropped

(* Hot-path cost trajectory and the cost of runtime health.  Micro
   cells, each reported as min-of-N (jitter floor) and p50 (typical),
   after one untimed warmup run so first-run effect/fiber setup cost
   does not pollute the distribution:

   - spawn_sync: a 1-worker run of the spawn-bound kernel, where every
     spawn takes the fast path (deque push, inline child, pop, fast
     sync); elapsed/spawns is the paper's spawn+sync hot-path cost and
     the number the heartbeat store must not move;
   - alloc_per_spawn: Gc.minor_words delta across the same run divided
     by spawns — the allocation-free-spawn ratchet (ISSUE 9);
   - steal: direct Chase-Lev steal drain, per-element;
   - false_sharing: 2-domain ping-pong on two atomics allocated
     back-to-back (same birth cache line) vs through Padding.atomic —
     the isolated cost is the ratcheted number, the contended/isolated
     separation shows what the padding sweep buys;
   - heartbeat_overhead: the spawn cell with Config.heartbeats on vs
     off — the "one plain store" claim, gated at 5%;

   plus an end-to-end wedge_detection cell: a combiner wedge injected
   under a live watchdog must surface as a convoy verdict.

   Emits BENCH_micro.json.  When a committed baseline exists the new
   numbers are compared against it; NOWA_MICRO_GATE=1 makes a
   regression past NOWA_MICRO_TOLERANCE (default 10%) on
   spawn_sync/steal p50, alloc_per_spawn words, or the isolated
   false-sharing cost, a blown heartbeat budget, or a missed wedge
   fatal — the CI perf gate. *)

let find_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

(* Pull ["field": <float>] out of the row object tagged with [kind] in
   our own BENCH_micro.json — a scanner, not a JSON parser, which is
   fine for a file this harness itself writes. *)
let baseline_float ~kind ~field json =
  match find_sub json (Printf.sprintf "\"kind\": \"%s\"" kind) with
  | None -> None
  | Some i -> (
    let rest = String.sub json i (String.length json - i) in
    match find_sub rest (Printf.sprintf "\"%s\": " field) with
    | None -> None
    | Some j -> (
      let k = j + String.length field + 4 in
      let stop = ref k in
      while
        !stop < String.length rest
        && (match rest.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      match float_of_string_opt (String.sub rest k (!stop - k)) with
      | Some f -> Some f
      | None -> None))

let hotpath ~opts () =
  section "Hot path: spawn/sync/steal costs, heartbeat tax, wedge detection";
  ignore opts;
  let module R = Nowa.Presets.Nowa in
  let baseline =
    if Sys.file_exists "BENCH_micro.json" then begin
      let ic = open_in "BENCH_micro.json" in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    end
    else None
  in
  let reps = 5 in
  (* min-of-N damps scheduler jitter; p50 is the honest "typical" cost. *)
  let summarize samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    (a.(0), a.(Array.length a / 2))
  in
  (* The hb-on and hb-off reps are interleaved: running one
     configuration's reps back-to-back lets slow drift on small shared
     hosts (and the first-run warmup cliff) masquerade as heartbeat
     cost.  Alternating pairs makes both configurations sample the same
     noise. *)
  let spawn_cells () =
    let inst = Registry.find Registry.Test "fib" in
    let thunk = inst.Registry.make_thunk (module R) in
    let conf hb = { (Nowa.Config.with_workers 1) with Nowa.Config.heartbeats = hb } in
    (* A single fib-15 run is ~250us — jitter-bound on a small shared
       host.  Each sample times a batch of runs (a few ms) instead. *)
    let batch = 10 in
    let one hb =
      let w0 = Gc.minor_words () in
      let t0 = Nowa_util.Clock.now_ns () in
      for _ = 1 to batch do
        ignore (R.run ~conf:(conf hb) thunk)
      done;
      let dt = float_of_int (Nowa_util.Clock.now_ns () - t0) in
      let dw = Gc.minor_words () -. w0 in
      let spawns =
        batch
        *
        match R.last_metrics () with
        | Some m -> Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.spawns)
        | None -> 0
      in
      if spawns = 0 then None
      else Some (dt /. float_of_int spawns, dw /. float_of_int spawns)
    in
    (* Warmup: the first runs in a process pay one-off effect/fiber and
       stack-pool setup (~60% over steady state) — never time them. *)
    ignore (one false);
    ignore (one true);
    let on_times = ref [] and off_times = ref [] and allocs = ref [] in
    for _ = 1 to reps do
      (match one false with
      | Some (t, a) ->
        off_times := t :: !off_times;
        allocs := a :: !allocs
      | None -> ());
      match one true with
      | Some (t, _) -> on_times := t :: !on_times
      | None -> ()
    done;
    let on_min, on_p50 = summarize !on_times in
    let off_min, off_p50 = summarize !off_times in
    let alloc_min, _ = summarize !allocs in
    (on_min, on_p50, off_min, off_p50, alloc_min)
  in
  let steal_cell () =
    let module Q = Nowa_deque.Chase_lev.Make (struct
      type t = int

      let dummy = 0
    end) in
    let n = 20_000 in
    let samples = ref [] in
    for _ = 1 to reps do
      let q = Q.create ~capacity:1024 () in
      for i = 1 to n do
        Q.push_bottom q i
      done;
      let t0 = Nowa_util.Clock.now_ns () in
      let got = ref 0 in
      let misses = ref 0 in
      while !got < n && !misses = 0 do
        match Q.steal q ~on_commit:(fun _ -> ()) with
        | Some _ -> incr got
        | None -> incr misses (* impossible when quiescent *)
      done;
      let dt = float_of_int (Nowa_util.Clock.now_ns () - t0) in
      if !got = n then samples := (dt /. float_of_int n) :: !samples
    done;
    summarize !samples
  in
  (* Two domains hammer independent atomics.  Allocated back-to-back the
     two words share their birth cache line and every incr invalidates
     the sibling's line; through Padding.atomic the spacer lines keep
     them apart.  The same pathology this repo sweeps out of the deque
     top/bottom words, the Sleepers word and the per-worker metric
     records. *)
  let false_sharing_cell () =
    let iters = 1_000_000 in
    let run_pair a b =
      let worker c () =
        for _ = 1 to iters do
          Atomic.incr c
        done
      in
      let t0 = Nowa_util.Clock.now_ns () in
      let d1 = Domain.spawn (worker a) in
      let d2 = Domain.spawn (worker b) in
      Domain.join d1;
      Domain.join d2;
      float_of_int (Nowa_util.Clock.now_ns () - t0) /. float_of_int iters
    in
    (* Untimed warmup pair to absorb domain-spawn setup. *)
    ignore (run_pair (Atomic.make 0) (Atomic.make 0));
    let contended = ref [] and isolated = ref [] in
    for _ = 1 to reps do
      let a = Atomic.make 0 in
      let b = Atomic.make 0 in
      contended := run_pair a b :: !contended;
      let a = Nowa_util.Padding.atomic 0 in
      let b = Nowa_util.Padding.atomic 0 in
      isolated := run_pair a b :: !isolated
    done;
    (* Report min-of-N for both: the ping-pong loop is deterministic, so
       anything above the minimum is host noise, not sharing cost. *)
    let cont, _ = summarize !contended in
    let isol, _ = summarize !isolated in
    (cont, isol)
  in
  subsection
    (Printf.sprintf "per-operation cost (min and p50 of %d cells, 1 warmup)"
       reps);
  let on_min, on_p50, off_min, off_p50, alloc_words = spawn_cells () in
  let steal_min, steal_p50 = steal_cell () in
  let fs_contended, fs_isolated = false_sharing_cell () in
  let fs_sep = fs_contended /. Float.max 1e-9 fs_isolated in
  (* The heartbeat is a constant per-spawn store, so the jitter-robust
     min-of-N difference is the estimator for its cost; p50s carry the
     host's tail noise and would flag phantom overheads. *)
  let hb_pct = (on_min -. off_min) /. Float.max 1e-9 off_min *. 100.0 in
  let hb_ok = hb_pct <= 5.0 in
  Nowa_util.Table.print
    ~header:[ "cell"; "min ns/op"; "p50 ns/op" ]
    [
      [
        "spawn+sync (hb on)";
        Printf.sprintf "%.1f" on_min;
        Printf.sprintf "%.1f" on_p50;
      ];
      [
        "spawn+sync (hb off)";
        Printf.sprintf "%.1f" off_min;
        Printf.sprintf "%.1f" off_p50;
      ];
      [
        "steal (chase-lev)";
        Printf.sprintf "%.1f" steal_min;
        Printf.sprintf "%.1f" steal_p50;
      ];
      [
        "ping-pong same line";
        "-";
        Printf.sprintf "%.1f" fs_contended;
      ];
      [
        "ping-pong isolated";
        "-";
        Printf.sprintf "%.1f" fs_isolated;
      ];
    ];
  Printf.printf "minor alloc per spawn: %.1f words\n" alloc_words;
  Printf.printf "false-sharing separation: %.2fx (contended/isolated)\n" fs_sep;
  Printf.printf "heartbeat overhead on spawn+sync: %+.2f%% (%s)\n" hb_pct
    (if hb_ok then "<=5% ok" else "OVER BUDGET");
  subsection "combiner wedge detection under a live watchdog";
  let watchdog_ms = 50 and wedge_ms = 300 in
  let detected =
    let module W = Nowa_server.Workload in
    let module L = Nowa_server.Loadgen.Make (R) in
    let spec =
      {
        (W.default_spec ~mix:(Option.get (W.find_mix "A"))) with
        W.records = 500;
        requests = 1_500;
        warmup = 0;
        rate = 2_000.;
      }
    in
    let conf =
      {
        (Nowa.Config.with_workers 2) with
        Nowa.Config.watchdog_interval_ms = watchdog_ms;
        watchdog_dump = false;
      }
    in
    Nowa_server.Kv.inject_wedge ~shard:0 ~ms:wedge_ms;
    ignore (L.run ~conf spec);
    Nowa_server.Kv.clear_wedge ();
    List.exists
      (function Nowa.Health.Convoy _ -> true | _ -> false)
      (Nowa.Health.verdicts ())
  in
  Printf.printf "wedge (%dms hold, %dms scans): %s\n" wedge_ms watchdog_ms
    (if detected then "convoy verdict raised" else "NOT DETECTED");
  (* Trajectory comparison against the committed baseline. *)
  let tolerance =
    match Sys.getenv_opt "NOWA_MICRO_TOLERANCE" with
    | Some s -> (try float_of_string s with _ -> 10.0)
    | None -> 10.0
  in
  let regressions = ref [] in
  (match baseline with
  | None -> Printf.printf "no committed BENCH_micro.json: baseline run\n"
  | Some b ->
    List.iter
      (fun (kind, field, unit_, now) ->
        (* The ratchet compares min-of-N: the one estimator host jitter
           cannot inflate.  Baselines written before min_ns existed
           carried a min-of-5 in p50_ns, so fall back to it. *)
        let old =
          match baseline_float ~kind ~field b with
          | Some _ as v -> v
          | None -> baseline_float ~kind ~field:"p50_ns" b
        in
        match old with
        | None -> ()
        | Some old ->
          let pct = (now -. old) /. Float.max 1e-9 old *. 100.0 in
          Printf.printf "%s %s: %.1f -> %.1f %s (%+.1f%% vs baseline)\n" kind
            field old now unit_ pct;
          if pct > tolerance then
            regressions :=
              Printf.sprintf "%s regressed %.1f%% (> %.0f%%)" kind pct
                tolerance
              :: !regressions)
      [
        ("spawn_sync", "min_ns", "ns/op", on_min);
        ("steal", "min_ns", "ns/op", steal_min);
        ("alloc_per_spawn", "words", "words", alloc_words);
        ("false_sharing", "isolated_ns", "ns/op", fs_isolated);
      ]);
  let oc = open_out "BENCH_micro.json" in
  Printf.fprintf oc
    "[\n\
    \  {\"kind\": \"spawn_sync\", \"p50_ns\": %.1f, \"min_ns\": %.1f},\n\
    \  {\"kind\": \"steal\", \"p50_ns\": %.1f, \"min_ns\": %.1f},\n\
    \  {\"kind\": \"alloc_per_spawn\", \"words\": %.1f},\n\
    \  {\"kind\": \"false_sharing\", \"contended_ns\": %.1f, \
     \"isolated_ns\": %.1f, \"separation\": %.2f},\n\
    \  {\"kind\": \"heartbeat_overhead\", \"min_on_ns\": %.1f, \
     \"min_off_ns\": %.1f, \"overhead_pct\": %.2f, \"overhead_ok\": %b},\n\
    \  {\"kind\": \"wedge_detection\", \"watchdog_ms\": %d, \"wedge_ms\": \
     %d, \"detected\": %b}\n\
     ]\n"
    on_p50 on_min steal_p50 steal_min alloc_words fs_contended fs_isolated
    fs_sep on_min off_min hb_pct hb_ok watchdog_ms wedge_ms detected;
  close_out oc;
  Printf.printf "wrote BENCH_micro.json\n";
  let gate = Sys.getenv_opt "NOWA_MICRO_GATE" = Some "1" in
  let failures =
    !regressions
    @ (if hb_ok then [] else [ Printf.sprintf "heartbeat overhead %.2f%% > 5%%" hb_pct ])
    @ if detected then [] else [ "combiner wedge not detected" ]
  in
  if failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "hotpath gate: %s\n" f) failures;
    if gate then exit 1
  end

(* -- pipeline: staged packet flow across micropools ---------------------- *)

(* The micropool showcase (ISSUE 10): a 3-stage packet pipeline where
   each stage owns a named pool (parse -> route -> transmit) and a packet
   hops stages with [spawn_unit_on].  Conservation is the correctness
   bar: every injected packet must reach transmit exactly once (an
   atomic completion count plus a payload checksum that any lost,
   duplicated or reordered-into-the-wrong-stage packet would break).
   Cells cover the three pool-aware engine families with spill-over
   stealing off and on.  Emits BENCH_pipeline.json plus a pool-labelled
   Perfetto trace of the nowa/spill-off cell. *)

let pipeline ~opts () =
  section "Pipeline: 3-stage packet flow across parse/route/transmit pools";
  let packets =
    match opts.real_size with
    | Registry.Test -> 2_000
    | Registry.Small -> 20_000
    | Registry.Medium -> 100_000
    | Registry.Large -> 400_000
  in
  let total_workers = List.fold_left max 3 opts.real_workers in
  let per_stage = max 1 (total_workers / 3) in
  let stages = [ "parse"; "route"; "transmit" ] in
  (* Per-stage transform: an integer mix dense enough that a stage is
     real work, cheap enough that the bench measures routing, not
     arithmetic.  Deterministic, so the serial composition below is the
     reference checksum. *)
  let stage_mix salt x0 =
    let x = ref (x0 + salt) in
    for _ = 1 to 96 do
      x := (!x * 0x9E3779B1) land 0x3FFFFFFFFFFF;
      x := !x lxor (!x lsr 13)
    done;
    !x
  in
  let expected =
    let sum = ref 0 in
    for p = 0 to packets - 1 do
      sum := !sum + stage_mix 3 (stage_mix 2 (stage_mix 1 p))
    done;
    !sum
  in
  let families =
    [
      (module Nowa.Presets.Nowa : Nowa.RUNTIME) (* continuation-stealing *);
      (module Nowa.Presets.Tbb) (* child-stealing *);
      (module Nowa.Presets.Gomp) (* central queue *);
    ]
  in
  let header =
    [ "engine"; "spill"; "w/stage"; "packets"; "lost"; "ms"; "Mpkt/s" ]
  in
  let out = Buffer.create 2048 in
  Buffer.add_string out "[\n";
  let first = ref true in
  let rows = ref [] in
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      List.iter
        (fun spill ->
          let traced = R.name = "nowa" && not spill in
          (* The root strand occupies worker 0 of the FIRST pool and
             spends the whole run injecting and then spinning on the
             completion counter — so it gets a dedicated 1-worker "feed"
             pool rather than eating a stage's only worker (on a small
             host per_stage is 1, and a stage whose single worker is the
             busy root would deadlock the pipeline).  Park_after keeps
             the oversubscribed stage workers off the cores while their
             stage has no traffic. *)
          let conf =
            {
              (Nowa.Config.with_workers total_workers) with
              Nowa.Config.pools =
                Nowa.Config.pool "feed" ~workers:1
                :: List.map
                     (fun s -> Nowa.Config.pool s ~workers:per_stage)
                     stages;
              spill_over = spill;
              idle_policy = Nowa.Config.Park_after 256;
              trace_capacity = (if traced then default_trace_capacity else 0);
            }
          in
          let completed = Nowa_util.Padding.atomic 0 in
          let checksum = Nowa_util.Padding.atomic 0 in
          let elapsed_ns =
            R.run ~conf (fun () ->
                let route = R.pool "route" and transmit = R.pool "transmit" in
                let parse = R.pool "parse" in
                let t0 = Nowa_util.Clock.now_ns () in
                for p = 0 to packets - 1 do
                  R.spawn_unit_on parse (fun () ->
                      let x1 = stage_mix 1 p in
                      R.spawn_unit_on route (fun () ->
                          let x2 = stage_mix 2 x1 in
                          R.spawn_unit_on transmit (fun () ->
                              let x3 = stage_mix 3 x2 in
                              ignore (Atomic.fetch_and_add checksum x3);
                              ignore (Atomic.fetch_and_add completed 1))))
                done;
                (* Routed packets are not under any scope: the completion
                   counter is the join.  The deadline turns a lost packet
                   into a reported failure instead of a hang. *)
                let deadline = t0 + 120_000_000_000 in
                while
                  Atomic.get completed < packets
                  && Nowa_util.Clock.now_ns () < deadline
                do
                  Domain.cpu_relax ()
                done;
                Nowa_util.Clock.now_ns () - t0)
          in
          let done_ = Atomic.get completed in
          let lost = packets - done_ in
          if lost <> 0 then
            Printf.eprintf "pipeline: %s spill=%b LOST %d packets\n" R.name
              spill lost;
          if done_ = packets && Atomic.get checksum <> expected then
            failwith
              (Printf.sprintf "pipeline: %s spill=%b checksum mismatch" R.name
                 spill);
          let ms = float_of_int elapsed_ns /. 1e6 in
          let mpps = float_of_int done_ /. (float_of_int elapsed_ns /. 1e9) /. 1e6 in
          rows :=
            [
              R.name;
              (if spill then "on" else "off");
              string_of_int per_stage;
              string_of_int packets;
              string_of_int lost;
              Printf.sprintf "%.1f" ms;
              Printf.sprintf "%.2f" mpps;
            ]
            :: !rows;
          if not !first then Buffer.add_string out ",\n";
          first := false;
          Printf.bprintf out
            "  {\"engine\": %S, \"spill\": %b, \"workers_per_stage\": %d, \
             \"packets\": %d, \"lost\": %d, \"elapsed_ms\": %.2f, \
             \"throughput_mpps\": %.3f}"
            R.name spill per_stage packets lost ms mpps;
          if traced then
            match R.last_trace () with
            | Some tr ->
              let label w =
                if w = 0 then "feed/0"
                else
                  Printf.sprintf "%s/%d"
                    (List.nth stages (min 2 ((w - 1) / per_stage)))
                    ((w - 1) mod per_stage)
              in
              let path = Nowa_util.Artifacts.path "pipeline.trace.json" in
              Nowa_trace.Perfetto.write_file ~worker_label:label
                ~process_name:
                  (Printf.sprintf "pipeline:%s/%dx%dw" R.name 3 per_stage)
                path tr;
              Printf.printf "wrote %s\n" path
            | None -> Printf.eprintf "pipeline: no trace from %s\n" R.name)
        [ false; true ])
    families;
  Nowa_util.Table.print ~header (List.rev !rows);
  Buffer.add_string out "\n]\n";
  let oc = open_out "BENCH_pipeline.json" in
  Buffer.output_buffer oc out;
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json\n"

let all ~opts () =
  table1 ~opts ();
  figure1 ~opts ();
  figure7 ~opts ();
  figure8 ~opts ();
  table2 ~opts ();
  figure9 ~opts ();
  figure10 ~opts ();
  table3 ~opts ();
  ablation ~opts ();
  scalability ~opts ()

let by_name =
  [
    ("table1", table1);
    ("fig1", figure1);
    ("fig7", figure7);
    ("fig8", figure8);
    ("table2", table2);
    ("fig9", figure9);
    ("fig10", figure10);
    ("table3", table3);
    ("ablation", ablation);
    ("traces", traces);
    ("scalability", scalability);
    ("causal", causal);
    ("idle", idle);
    ("serve", serve);
    ("pipeline", pipeline);
    ("hotpath", hotpath);
    ("all", all);
  ]
