(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (Section V).

     dune exec bench/main.exe                      # everything, quick scale
     dune exec bench/main.exe -- fig7              # one experiment
     dune exec bench/main.exe -- fig1 --sim-size medium --runs 10
     dune exec bench/main.exe -- --micro           # Bechamel micro suite *)

open Cmdliner

let parse_int_list s =
  s |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let main experiments micro runs real_workers sim_workers real_size sim_size =
  if micro then Micro.run ()
  else begin
    let defaults = Harness.default_options () in
    let opts =
      {
        Harness.runs;
        real_workers =
          (match real_workers with
          | Some s -> parse_int_list s
          | None -> defaults.Harness.real_workers);
        sim_workers =
          (match sim_workers with
          | Some s -> parse_int_list s
          | None -> defaults.Harness.sim_workers);
        real_size = Harness.size_of_string real_size;
        sim_size = Option.map Harness.size_of_string sim_size;
      }
    in
    Printf.printf
      "Nowa reproduction harness: host cores=%d, real workers=%s (size %s), \
       sim workers=%s (size %s), %d runs per cell\n"
      (Nowa_util.Cpu.available_cores ())
      (String.concat "," (List.map string_of_int opts.Harness.real_workers))
      real_size
      (String.concat "," (List.map string_of_int opts.Harness.sim_workers))
      (Option.value ~default:"per-benchmark profile" sim_size)
      runs;
    let experiments = if experiments = [] then [ "all" ] else experiments in
    List.iter
      (fun name ->
        match List.assoc_opt name Experiments.by_name with
        | Some f -> f ~opts ()
        | None ->
          Printf.eprintf "unknown experiment %S; one of: %s\n" name
            (String.concat ", " (List.map fst Experiments.by_name));
          exit 1)
      experiments
  end

let cmd =
  let experiments =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"table1 fig1 fig7 fig8 table2 fig9 fig10 table3 ablation traces scalability causal idle serve pipeline hotpath all")
  in
  let micro = Arg.(value & flag & info [ "micro" ] ~doc:"Run the Bechamel micro suite instead.") in
  let runs = Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc:"Timed repetitions per real-mode cell.") in
  let real_workers =
    Arg.(value & opt (some string) None & info [ "real-workers" ] ~docv:"LIST" ~doc:"Comma-separated worker counts for real runs.")
  in
  let sim_workers =
    Arg.(value & opt (some string) None & info [ "sim-workers" ] ~docv:"LIST" ~doc:"Comma-separated worker counts for simulated runs.")
  in
  let real_size =
    Arg.(value & opt string "small" & info [ "real-size" ] ~docv:"SIZE" ~doc:"Input scale for real runs (test|small|medium|large).")
  in
  let sim_size =
    Arg.(value & opt (some string) None & info [ "sim-size" ] ~docv:"SIZE" ~doc:"Force one input scale for recorded DAGs (default: per-benchmark profile).")
  in
  Cmd.v
    (Cmd.info "nowa-bench" ~doc:"Regenerate the tables and figures of the Nowa paper")
    Term.(
      const main $ experiments $ micro $ runs $ real_workers $ sim_workers
      $ real_size $ sim_size)

let () = exit (Cmd.eval cmd)
