(* Tracing walkthrough: generate a Perfetto timeline from (a) a real
   multi-domain run of parallel fib on the Nowa runtime and (b) a
   virtual-time wsim replay of the same computation on 64 simulated
   workers, then print the strand-level summaries side by side.

     dune exec examples/trace_demo.exe
     # then open fib-real.trace.json / fib-sim.trace.json in
     # chrome://tracing or https://ui.perfetto.dev *)

let rec fib n =
  if n < 2 then n
  else
    Nowa.scope (fun sc ->
        let a = Nowa.spawn sc (fun () -> fib (n - 1)) in
        let b = fib (n - 2) in
        Nowa.sync sc;
        Nowa.get a + b)

let () =
  let n = 30 in
  (* Real run: four workers, tracing on. *)
  let conf =
    { (Nowa.Config.with_workers 4) with Nowa.Config.trace_capacity = 65_536 }
  in
  let v = Nowa.run ~conf (fun () -> fib n) in
  Printf.printf "fib %d = %d (real run, 4 workers)\n" n v;
  (match Nowa.last_trace () with
  | Some tr ->
    Nowa.Perfetto.write_file ~process_name:"nowa:fib/4w" "fib-real.trace.json" tr;
    Printf.printf "wrote fib-real.trace.json\n";
    Format.printf "%a@." Nowa.Trace_analysis.pp (Nowa.Trace_analysis.summarize tr)
  | None -> prerr_endline "no trace collected?");
  (* Simulated run: record the DAG serially, replay on 64 virtual
     workers under the Nowa cost model with a virtual-time trace. *)
  let module K = struct
    let rec fib (module R : Nowa.RUNTIME) n =
      if n < 2 then n
      else
        R.scope (fun sc ->
            let a = R.spawn sc (fun () -> fib (module R) (n - 1)) in
            let b = fib (module R) (n - 2) in
            R.sync sc;
            R.get a + b)
  end in
  let dag, v' =
    Nowa_dag.Recorder.record (fun () -> K.fib (module Nowa_dag.Recorder) 25)
  in
  assert (v' = 75_025);
  let tr =
    Nowa.Trace.create ~clock:Nowa.Trace.Virtual ~workers:64 ~capacity:65_536 ()
  in
  let r = Nowa_dag.Wsim.simulate ~trace:tr Nowa_dag.Cost_model.nowa ~workers:64 dag in
  Printf.printf
    "\nfib 25 replayed on 64 virtual workers: makespan %.3f ms, speedup %.1fx\n"
    (r.Nowa_dag.Wsim.makespan_ns /. 1e6)
    r.Nowa_dag.Wsim.speedup;
  Nowa.Perfetto.write_file ~process_name:"wsim:nowa:fib/64w" "fib-sim.trace.json" tr;
  Printf.printf "wrote fib-sim.trace.json\n";
  Format.printf "%a@." Nowa.Trace_analysis.pp (Nowa.Trace_analysis.summarize tr)
