(* Record the fork/join DAG of a benchmark (Section III-A of the paper),
   print its work/span analysis, and replay it through the discrete-event
   scheduler simulator at increasing worker counts — the pipeline behind
   the reproduced figures.

     dune exec examples/dag_analysis.exe -- fib *)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fib" in
  let size = Nowa_kernels.Registry.Small in
  let inst =
    match Nowa_kernels.Registry.find size bench with
    | i -> i
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; one of: %s\n" bench
        (String.concat ", " Nowa_kernels.Registry.names);
      exit 1
  in
  let thunk = inst.Nowa_kernels.Registry.make_thunk (module Nowa_dag.Recorder) in
  let dag, _ = Nowa_dag.Recorder.record thunk in
  let open Nowa_dag in
  Printf.printf "benchmark %s (%s)\n" bench inst.Nowa_kernels.Registry.input_desc;
  Printf.printf "  vertices: %d (%d strands, %d spawns, %d syncs)\n"
    (Dag.size dag) (Dag.count dag Dag.Strand) (Dag.count dag Dag.Spawn)
    (Dag.count dag Dag.Sync);
  (match Dag.validate dag with
  | Ok () -> print_endline "  structure: valid fully-strict fork/join DAG"
  | Error e -> Printf.printf "  structure: INVALID (%s)\n" e);
  let t1 = Dag.total_work dag and tinf = Dag.span dag in
  Printf.printf "  work T1 = %.3f ms, span Tinf = %.3f ms, parallelism = %.1f\n"
    (t1 /. 1e6) (tinf /. 1e6) (t1 /. tinf);
  (* Cilkview-style burdened analysis: what survives scheduling cost. *)
  let burden = Scalability.burden_of_cost_model Cost_model.nowa in
  let report = Scalability.analyze ~burden_ns:burden dag in
  Printf.printf
    "  burdened span = %.3f ms, burdened parallelism = %.1f (burden %.0f \
     ns/edge)\n"
    (report.Scalability.burdened_span_ns /. 1e6)
    report.Scalability.burdened_parallelism burden;
  print_endline "";
  print_endline
    "simulated speedup (discrete-event replay) vs. burdened bounds:";
  let header =
    "P"
    :: List.map
         (fun m -> m.Cost_model.cname)
         [ Cost_model.nowa; Cost_model.fibril; Cost_model.tbb; Cost_model.gomp ]
    @ [ "lower est."; "upper bound" ]
  in
  let rows =
    List.map
      (fun p ->
        (string_of_int p
        :: List.map
             (fun m ->
               let r = Wsim.simulate m ~workers:p dag in
               Printf.sprintf "%.2f" r.Wsim.speedup)
             [ Cost_model.nowa; Cost_model.fibril; Cost_model.tbb; Cost_model.gomp ])
        @ [
            Printf.sprintf "%.2f" (Scalability.bound_lower report ~workers:p);
            Printf.sprintf "%.2f" (Scalability.bound_upper report ~workers:p);
          ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  Nowa_util.Table.print ~header rows;
  print_endline "";
  print_endline "top strands on the burdened critical path:";
  List.iter
    (fun (s : Scalability.strand) ->
      Printf.printf "  vertex %-9d %10.0f ns  %5.1f%% of burdened span\n"
        s.Scalability.vertex s.Scalability.work_ns
        (100.0 *. s.Scalability.share))
    (Scalability.critical_strands ~burden_ns:burden ~top:5 dag)
