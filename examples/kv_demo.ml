(* kv_demo: the sharded in-memory KV service driven by an open-loop
   YCSB workload on the default (wait-free) Nowa runtime.

     dune exec examples/kv_demo.exe

   Two parts: first the KV store used directly — every request a
   runtime task via [spawn_unit], cross-shard transactions moving
   bucket ownership through handoff messages — then the full load
   generator with latency percentiles for a small YCSB-A run. *)

module Kv = Nowa_server.Kv
module Workload = Nowa_server.Workload

let () =
  (* Part 1: the store itself, requests as fire-and-forget tasks. *)
  let kv = Kv.create ~shards:8 ~buckets_per_shard:32 () in
  Nowa.run (fun () ->
      Nowa.scope (fun sc ->
          for k = 0 to 999 do
            Nowa.spawn_unit sc (fun () -> ignore (Kv.exec kv (Kv.Put (k, k * k))))
          done;
          Nowa.sync sc;
          (* A cross-shard transaction: bucket ownership is borrowed via
             handoff messages, applied atomically, then returned. *)
          Nowa.spawn_unit sc (fun () ->
              ignore (Kv.exec kv (Kv.Multi_put [| (1, -1); (500, -500); (999, -999) |])));
          Nowa.sync sc));
  Printf.printf "store: %d keys over %d shards, %d bucket handoffs, %d dropped\n"
    (Kv.size kv) (Kv.shards kv) (Kv.handoffs kv) (Kv.dropped kv);
  (match Kv.exec kv (Kv.Get 500) with
  | Kv.Hit v -> Printf.printf "get 500 -> %d (transaction applied)\n" v
  | _ -> Printf.printf "get 500 -> miss?!\n");

  (* Part 2: the open-loop load harness — exponential arrivals at a
     fixed offered rate, zipf-skewed keys, latency measured from the
     scheduled arrival time (no coordinated omission). *)
  let module L = Nowa_server.Loadgen.Make (Nowa.Presets.Nowa) in
  let spec =
    {
      (Workload.default_spec ~mix:(Option.get (Workload.find_mix "A"))) with
      Workload.records = 1_000;
      rate = 20_000.0;
      warmup = 200;
      requests = 2_000;
    }
  in
  let report = L.run spec in
  Nowa_server.Loadgen.pp_report report
