(* Causal profiling walkthrough: where does the time go, which resource
   convoys, and what would fixing it buy?

     dune exec examples/causal_demo.exe

   The pipeline: record fib's fork/join DAG once (serial, instrumented),
   replay it on 64 virtual workers under two cost models — Nowa's
   wait-free protocol and the lock-based Cilk Plus pricing — and for
   each print the exact time ledger, the lock convoys, and the what-if
   ranking obtained by zeroing one cost at a time and re-simulating.
   The punchline reproduces the paper's thesis as a measurement: under
   the lock model the profiler says "the locks are your problem"
   (zeroing them is worth tens of percent), under Nowa it has nothing
   left to blame. *)

module Registry = Nowa_kernels.Registry
module Wsim = Nowa_dag.Wsim
module Convoy = Nowa_dag.Convoy
module Causal = Nowa_dag.Causal
module CM = Nowa_dag.Cost_model

let workers = 64

let profile dag (m : CM.t) =
  Printf.printf "\n== %s, %d virtual workers ==\n" m.CM.cname workers;
  let r = Wsim.simulate ~detail:true m ~workers dag in
  Printf.printf "makespan %.3f ms, speedup %.2f over the serial elision\n"
    (r.Wsim.makespan_ns /. 1e6) r.Wsim.speedup;

  (* 1. The ledger: every nanosecond of workers x makespan, partitioned. *)
  Format.printf "%a@." Wsim.pp_ledger r.Wsim.ledger;

  (* 2. Convoys: intervals where >= 4 workers queue on one resource. *)
  (match Convoy.detect ~top:3 r.Wsim.acquisitions with
  | [] -> Printf.printf "no convoys: no resource ever had 4 workers queued\n"
  | convoys ->
    Printf.printf "worst convoys:\n";
    List.iter (fun c -> Format.printf "  %a@." Convoy.pp c) convoys);

  (* 3. What-if: scale each cost (and the hottest strand), re-simulate
     with the same seed, rank by the virtual speedup of zeroing it. *)
  let knobs =
    Causal.model_knobs
    @
    match Causal.hottest_strand dag with
    | Some v -> [ Causal.Strand_work v ]
    | None -> []
  in
  Printf.printf "what-if ranking (virtual speedup of zeroing each cost):\n";
  List.iter
    (fun (x : Causal.experiment) ->
      Printf.printf "  %-12s %+7.2f%%\n"
        (Causal.knob_name x.Causal.knob)
        x.Causal.zero_gain_pct)
    (Causal.rank m ~workers dag knobs)

let () =
  let inst = Registry.find Registry.Test "fib" in
  Printf.printf "recording fib (%s)...\n%!" inst.Registry.input_desc;
  let thunk = inst.Registry.make_thunk (module Nowa_dag.Recorder) in
  let dag, _ = Nowa_dag.Recorder.record thunk in
  ignore (Nowa_dag.Dag.clamp_work dag);
  Printf.printf "DAG: %d vertices, parallelism %.0f\n" (Nowa_dag.Dag.size dag)
    (Nowa_dag.Dag.parallelism dag);
  List.iter (profile dag) [ CM.nowa; CM.cilkplus ]
