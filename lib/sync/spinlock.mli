(** Test-and-test-and-set spinlock with truncated exponential backoff.

    Used by the lock-based join counters (the Fibril/Cilk Plus baselines)
    so that the locking cost the paper attributes to those runtimes stays
    in user space and visible, instead of disappearing into futex waits.

    Contended acquisitions record their spin-relax round count into a
    histogram ([spins], defaulting to
    {!Sync_metrics.spinlock_spins}); the uncontended fast path — a
    single CAS — is never observed. *)

type t

val create : ?spins:Nowa_obs.Histogram.t -> unit -> t
val acquire : t -> unit
val release : t -> unit

val try_acquire : t -> bool

val acquisitions : t -> int
(** Total successful acquisitions — diagnostic, exact when quiescent. *)

val with_lock : t -> (unit -> 'a) -> 'a
