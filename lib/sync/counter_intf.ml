(** The strand-coordination counter of a spawning-function frame.

    This is the data structure at the centre of the paper: it decides when
    the fully-strict sync condition [N_r = 0] holds, where [N_r] is the
    number of active parallel strands of the frame.  Two implementations
    are provided — the wait-free Nowa scheme (Section IV) and the
    lock-based Fibril scheme (Listing 2) — behind one signature, so the
    scheduler engine is generic over the coordination strategy.

    Protocol, as driven by the continuation-stealing engine:

    - A thief that steals a continuation of the frame calls {!note_steal}
      from inside the deque's steal commit hook (under the deque lock for
      locking deques), then {!note_resume} immediately before resuming the
      stolen continuation.
    - A worker whose [pop_bottom] after a child call came back empty has
      lost its continuation; the rest of its control flow is a joining
      strand: it calls {!child_joined} (the implicit sync), and if that
      returns [true] it must resume the frame's suspended sync
      continuation.
    - The main path, upon reaching an explicit sync, first checks
      {!forked}; if stealing ever materialised it {e publishes its sync
      continuation in the frame} and only then calls {!reach_sync}.  A
      [true] result means the caller observed the sync condition itself
      and proceeds (taking its continuation back); on [false] exactly one
      future {!child_joined} will return [true].
    - After a completed sync, {!reset} prepares the frame for a subsequent
      spawn phase of the same function. *)

module type JOIN_COUNTER = sig
  type t

  val name : string

  val create : unit -> t

  val note_steal : t -> unit
  (** Thief, at steal commit.  Lock-based scheme: the [count++ == 0 → +2]
      protocol under the frame lock.  Wait-free scheme: no-op — this very
      absence is what removes the hazardous race. *)

  val note_resume : t -> unit
  (** Thief, just before resuming the stolen continuation.  Wait-free
      scheme: α := α + 1, unsynchronised by Invariant II (only the main
      path executes this, never in parallel with itself). *)

  val child_joined : t -> bool
  (** Implicit sync of a joining strand.  [true] iff this call made the
      sync condition hold (then the caller resumes the frame). *)

  val reach_sync : t -> bool
  (** Explicit sync on the main path; requires the frame's sync
      continuation to be published first.  [true] iff the sync condition
      already holds and the caller proceeds.

      Fused-path exception: when {!pending_hint} returned [0] on the main
      path at the sync point, every stolen strand has already joined and
      no continuation of the frame remains stealable, so [reach_sync] is
      guaranteed to return [true] — the engine then skips publication
      entirely (the hot-path fusion of ISSUE 9) and asserts the result. *)

  val forked : t -> bool
  (** Main path only: has any continuation of this frame actually been
      stolen (N_r was ever incremented)?  When [false], sync is a no-op. *)

  val reset : t -> unit
  (** Main path, after a completed sync: re-arm for the next spawn phase. *)

  val pending_hint : t -> int
  (** Main path, before sync: best-effort count of still-active strands.
      May be momentarily stale but never negative, and stale only in the
      conservative direction: a result of [0] at an explicit sync point
      is exact (all steals of the frame happen-before the main path
      reaches its sync, and each join only shrinks the count), which is
      what makes the engine's fused sync sound.  Nonzero results are
      heuristic (e.g. whether stack suspension bookkeeping is worth
      doing). *)

  val active : t -> int
  (** Diagnostic best-effort view of N_r (exact when quiescent). *)
end
