(** Lock-based strand counter, modelled on Fibril (paper Listing 2).

    A thief increments the count under the frame lock while it still holds
    the victim's deque lock (the engine calls {!note_steal} from the
    deque's steal-commit hook), which chains the two critical sections
    exactly as in Fibril's [random_steal] and closes the worker/thief race
    of Figure 6 the lock-based way.

    Count protocol: 0 means "no strand ever forked, or sync fully
    complete".  The first steal sets the count to 2 — one for the stolen
    strand, one for the main path, which also decrements at its explicit
    sync.  Every later steal adds 1; every join subtracts 1; whoever
    reaches 0 owns the frame's suspended continuation. *)

type t = { lock : Spinlock.t; mutable count : int }

let name = "lock-based"

(* Frame locks get their own wait histogram so scrapes can tell frame
   contention (the Figure 6 race resolved the lock-based way) apart from
   infrastructure locks like the stack pool's. *)
let create () =
  { lock = Spinlock.create ~spins:Sync_metrics.frame_lock_spins (); count = 0 }

let note_steal t =
  Spinlock.acquire t.lock;
  if t.count = 0 then t.count <- 2 else t.count <- t.count + 1;
  Spinlock.release t.lock

let note_resume _ = ()

let child_joined t =
  Spinlock.acquire t.lock;
  t.count <- t.count - 1;
  let zero = t.count = 0 in
  Spinlock.release t.lock;
  zero

let reach_sync t =
  Spinlock.acquire t.lock;
  let proceed =
    if t.count = 0 then true
    else begin
      t.count <- t.count - 1;
      t.count = 0
    end
  in
  Spinlock.release t.lock;
  proceed

(* Safe without the lock: on the main path the count is at least 1 from the
   moment a steal commits (which happens-before the stolen continuation
   resumes) until the main path itself decrements at [reach_sync]. *)
let forked t = t.count > 0

let reset _ = ()

(* On the main path before its sync the count is 1 + outstanding strands. *)
let pending_hint t = max 0 (t.count - 1)

let active t = t.count
