(** Arrivals-epoch spinning barrier, used to line the workers up before
    timed benchmark sections and at runtime start-up.

    Each arrival takes a ticket from a monotonic counter; the ticket
    fixes the participant's round as [ticket / n], the last arrival of a
    round bumps a completed-rounds counter, and everyone else spins
    until that counter passes their round.  Unlike the sense-reversing
    form there is no count-reset/sense-flip window for a re-entering
    participant to observe half-done: both counters are monotonic, so
    the barrier is reusable across arbitrarily many rounds with no
    ABA-prone state (model-checked by [Specs.barrier_spec]). *)

type t

val create : int -> t
(** [create n] is a barrier for [n] participants. *)

val await : t -> unit
(** Blocks (spinning, with OS yields on oversubscribed hosts) until all
    [n] participants have arrived; reusable across rounds. *)
