(** The wait-free Nowa strand counter (Section IV of the paper).

    [N_r] is decomposed into α (strands actually forked — continuations
    stolen and resumed) and ω (strands joined).  The atomic sync-condition
    cell holds [N_r' = Imax − ω] during the first phase: it is initialised
    to [Imax = max_int], every joining strand decrements it, and because
    [Imax] is astronomically large no joiner can ever observe a
    non-positive value before the explicit sync — the hazardous race of
    Figure 6 becomes benign and no operation ever takes a lock or loops.

    α is a plain (non-atomic) field: by Invariant II it is only ever
    written by the main path, which is a single control flow even though
    different workers may execute it over time (each hand-over happens
    through a steal-resume, which synchronises).

    At the explicit sync point the main path restores the true value
    [N_r = N_r' − (Imax − α)] (Equation 5) with a single
    [fetch_and_add (α − Imax)].  Whoever observes the counter at 0 — the
    syncing strand itself via the restore, or the last joining child via
    its decrement — owns the continuation stored in the frame.  Every
    operation is a constant number of atomic instructions: wait-free. *)

type t = {
  mutable alpha : int;  (* main-path only; Invariant II *)
  counter : int Atomic.t;  (* N_r' in phase one, N_r in phase two *)
}

let name = "wait-free"
let i_max = max_int

let create () = { alpha = 0; counter = Nowa_util.Padding.atomic i_max }

let note_steal _ = ()

(* The Sync_metrics observations below are steal-proportional: each of
   these operations runs at most once per stolen continuation (plus one
   restore per forked sync), never on the spawn fast path.  The retry
   histogram always records 0 — each operation is exactly one RMW — which
   is the point: scraped side by side with the lock counter's spin
   histogram it shows the wait-free fast path staying flat under
   contention (paper Figures 6–8). *)
let note_resume t =
  t.alpha <- t.alpha + 1;
  Nowa_obs.Counter.incr Sync_metrics.wfc_resumes;
  Nowa_obs.Histogram.observe Sync_metrics.wfc_rmw_retries 0

let child_joined t =
  Nowa_obs.Counter.incr Sync_metrics.wfc_joins;
  Nowa_obs.Histogram.observe Sync_metrics.wfc_rmw_retries 0;
  Atomic.fetch_and_add t.counter (-1) = 1

let reach_sync t =
  Nowa_obs.Counter.incr Sync_metrics.wfc_syncs;
  Nowa_obs.Histogram.observe Sync_metrics.wfc_rmw_retries 0;
  let delta = t.alpha - i_max in
  Atomic.fetch_and_add t.counter delta + delta = 0

let forked t = t.alpha > 0

let reset t =
  t.alpha <- 0;
  Atomic.set t.counter i_max

(* Phase one: the cell holds Imax − ω, so α − (Imax − cell) is α − ω. *)
let pending_hint t = max 0 (t.alpha - (i_max - Atomic.get t.counter))

let active t =
  let c = Atomic.get t.counter in
  if c > i_max / 2 then i_max - c (* phase one: ω so far; N_r = α − ω *)
  else c
