(** Coordination-cost metrics for the join counters (paper Section IV /
    Figures 6–8): the wait-free α/ω counter completes every operation in
    a bounded number of RMWs, while the lock-based baseline spins.  Both
    are exported on {!Nowa_obs.Registry.default} so a live scrape shows
    the contrast directly:

    - [nowa_sync_wfc_rmw_retries]: retries per α/ω operation.  By
      construction this histogram only ever observes 0 — the fast path is
      the only path — and a non-zero bucket would flag a regression that
      re-introduced a retry loop.
    - [nowa_sync_frame_lock_spins] / [nowa_sync_spinlock_spins]:
      spin-relax rounds per {e contended} lock acquisition (uncontended
      acquisitions are not observed, keeping the fast path untouched).

    All observations are steal-proportional: α/ω only move when a
    continuation is actually stolen, and lock spins only when a frame
    lock is contended. *)

let wfc_resumes =
  Nowa_obs.Registry.counter "nowa_sync_wfc_resumes_total"
    ~help:"Wait-free counter alpha increments (stolen continuations resumed)."

let wfc_joins =
  Nowa_obs.Registry.counter "nowa_sync_wfc_joins_total"
    ~help:"Wait-free counter omega decrements (stolen children joined)."

let wfc_syncs =
  Nowa_obs.Registry.counter "nowa_sync_wfc_syncs_total"
    ~help:"Wait-free counter Eq. 5 restores at explicit sync points."

let wfc_rmw_retries =
  Nowa_obs.Registry.histogram "nowa_sync_wfc_rmw_retries"
    ~help:
      "RMW retries per wait-free alpha/omega operation (0 by construction)."

let frame_lock_spins =
  Nowa_obs.Registry.histogram "nowa_sync_frame_lock_spins"
    ~help:
      "Spin-relax rounds per contended frame-lock acquisition (lock-based \
       join counter)."

let spinlock_spins =
  Nowa_obs.Registry.histogram "nowa_sync_spinlock_spins"
    ~help:"Spin-relax rounds per contended spinlock acquisition."
