type t = {
  flag : bool Atomic.t;
  count : int Atomic.t;
  spins_hist : Nowa_obs.Histogram.t;
}

let create ?(spins = Sync_metrics.spinlock_spins) () =
  { flag = Nowa_util.Padding.atomic false; count = Atomic.make 0;
    spins_hist = spins }

let try_acquire t =
  (not (Atomic.get t.flag)) && Atomic.compare_and_set t.flag false true

let acquire t =
  if not (Atomic.compare_and_set t.flag false true) then begin
    (* Contended: fall into the TTAS loop and count the relax rounds we
       burn, so the observability layer can histogram lock-acquisition
       waits.  The uncontended path above stays a single CAS with no
       observation. *)
    let rounds = ref 0 in
    let spins = ref 4 in
    while not (Atomic.compare_and_set t.flag false true) do
      (* Test-and-test-and-set: spin on the read-only path while contended. *)
      while Atomic.get t.flag do
        incr rounds;
        for _ = 1 to !spins do
          Domain.cpu_relax ()
        done;
        if !spins < 1024 then spins := !spins * 2
        else (* Let the holder run on oversubscribed hosts. *)
          Unix.sleepf 0.0
      done
    done;
    Nowa_obs.Histogram.observe t.spins_hist !rounds
  end;
  Atomic.incr t.count

let release t = Atomic.set t.flag false

let acquisitions t = Atomic.get t.count

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
