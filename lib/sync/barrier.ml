(* Arrivals-epoch barrier.  The earlier sense-reversing version derived
   my_sense from the global flag at entry; that is provably correct
   under SC (the exhaustive interleaving search over Specs.barrier_spec
   ~variant:`Sense completes with no violation), but it hangs as soon as
   the leader's two stores — the count reset and the sense flip — become
   visible in the other order, which OCaml's memory model does not
   forbid for the plain-field variants this code could drift into (see
   Specs.barrier_spec ~variant:`Sense_reordered for the failing
   schedule).  The epoch form has no reset window at all: both counters
   only ever increase, a participant's round is fixed by its own arrival
   index, and there is no flag to read at the wrong moment. *)
type t = { n : int; arrivals : int Atomic.t; rounds : int Atomic.t }

let create n =
  { n; arrivals = Nowa_util.Padding.atomic 0; rounds = Nowa_util.Padding.atomic 0 }

let await t =
  let k = Atomic.fetch_and_add t.arrivals 1 in
  let r = k / t.n in
  if k mod t.n = t.n - 1 then ignore (Atomic.fetch_and_add t.rounds 1)
  else begin
    let spins = ref 0 in
    while Atomic.get t.rounds <= r do
      Domain.cpu_relax ();
      incr spins;
      if !spins mod 4096 = 0 then Unix.sleepf 0.0
    done
  end
