(** Scalable Non-Zero Indicator (Ellen, Lev, Luchangco, Moir).

    The paper's related work (Acar et al., "Contention in structured
    concurrency") coordinates nested parallelism with a dynamic SNZI; we
    provide a static-tree SNZI both as a third strand-coordination scheme
    for the ablation benchmarks and as a lock-free data structure in its
    own right.

    A SNZI tracks a surplus of [arrive]s over [depart]s and answers only
    the boolean question "is the surplus non-zero?" — precisely Invariant
    IV of the paper (joining tasks only need an is-positive indication).
    The tree filters contention: a leaf only touches its parent when its
    own counter moves between zero and non-zero. *)

type t

val create : ?leaves:int -> unit -> t
(** [leaves] is the number of leaf nodes (default 8; one per worker is
    typical). *)

val arrive : t -> leaf:int -> unit
(** Increment the surplus via leaf [leaf mod leaves]. *)

val depart : t -> leaf:int -> unit
(** Decrement the surplus via the same leaf used to arrive.  The surplus
    must be positive: departing a node whose surplus is already zero
    raises [Invalid_argument] naming the node state, since unbalanced
    arrive/depart calls are caller bugs the structure can detect (the
    arrive/depart protocol itself is model-checked race-free by
    [Specs.snzi_spec]).

    Internal versioning: each node's zero→non-zero transitions are
    counted in a 40-bit version field that guards the helping CAS
    against ABA; see the layout comment in snzi.ml for why wraparound
    (2^40 transitions during one stalled operation) is unreachable. *)

val arrive_n : t -> leaf:int -> int -> unit
(** [arrive_n t ~leaf n] increments the surplus by [n] via one leaf: at
    most one full tree walk (for the unit that takes the leaf from zero
    to non-zero) plus a single local CAS for the rest, instead of [n]
    walks.  The amortisation for spawn bursts and batched grabs.
    [n = 0] is a no-op; negative [n] raises [Invalid_argument].
    Model-checked by [Specs.snzi_batch_spec]. *)

val depart_n : t -> leaf:int -> int -> unit
(** [depart_n t ~leaf n] retires [n] completed arrives from the same
    leaf in one CAS (plus the parent walk iff the leaf reaches zero).
    All [n] units must be this caller's own completed arrives at [leaf]
    — the batched form of {!depart}'s contract, with the same
    [Invalid_argument] diagnosis when the leaf's surplus is short. *)

val query : t -> bool
(** [true] iff the surplus is non-zero. *)
