(* Hierarchical SNZI, following Ellen, Lev, Luchangco & Moir.  Each node
   packs (counter, version) into one integer so both move under a single
   CAS; counters are stored doubled so the algorithm's intermediate "1/2"
   state is representable (c2 = 1).  The root is a plain atomic counter: it
   is trivially linearisable, and the tree above it already filters
   traffic, which is the part of the construction that matters for
   scalability.  [query] reads only the root. *)

(* Word layout: c2 in the high bits, version in the low [version_bits].
   The version only guards the helping CAS (1,v)→(2,v) against ABA: a
   stale helper can only misfire if the node leaves and re-enters the
   intermediate state exactly 2^version_bits times between that helper's
   read and its CAS.  At 40 bits that is 2^40 ≈ 10^12 zero→non-zero
   transitions while one thread is stalled mid-operation — unreachable
   in practice (years of transitions at full tilt), whereas the previous
   20-bit field (~10^6) was within reach of a long descheduling on a
   busy box.  The remaining 63 - 40 = 23 bits hold the doubled counter,
   i.e. up to ~4M concurrent arrivals per node — far above any worker
   count this runtime supports (Sleepers.mask_bits = 48). *)
let version_bits = 40
let version_mask = (1 lsl version_bits) - 1
let pack ~c2 ~v = (c2 lsl version_bits) lor (v land version_mask)
let c2_of x = x lsr version_bits
let v_of x = x land version_mask

type node = { x : int Atomic.t; parent : node option }

type t = { root : int Atomic.t; leaves : node array }

let rec arrive_node t node =
  match node with
  | None -> ignore (Atomic.fetch_and_add t.root 1)
  | Some n ->
    let undo = ref 0 in
    let succ = ref false in
    while not !succ do
      let x = Atomic.get n.x in
      let c2 = c2_of x and v = v_of x in
      if c2 >= 2 then begin
        if Atomic.compare_and_set n.x x (pack ~c2:(c2 + 2) ~v) then
          succ := true
      end
      else begin
        (* c2 is 0 or 1.  On 0 we try to claim the zero→non-zero
           transition by moving to the intermediate 1/2 state; on 1 we
           help whoever claimed it.  Either way the parent is incremented
           before the node becomes visibly non-zero. *)
        let half_v =
          if c2 = 1 then Some v
          else if Atomic.compare_and_set n.x x (pack ~c2:1 ~v:(v + 1)) then begin
            succ := true;
            Some (v + 1)
          end
          else None
        in
        match half_v with
        | None -> () (* lost the claim race; retry *)
        | Some v ->
          arrive_node t n.parent;
          if not (Atomic.compare_and_set n.x (pack ~c2:1 ~v) (pack ~c2:2 ~v))
          then
            (* Another helper finished the transition first: our parent
               arrival is surplus and is retired below. *)
            incr undo
      end
    done;
    for _ = 1 to !undo do
      depart_node t n.parent
    done

and depart_node t node =
  match node with
  | None -> ignore (Atomic.fetch_and_add t.root (-1))
  | Some n ->
    let finished = ref false in
    while not !finished do
      let x = Atomic.get n.x in
      let c2 = c2_of x and v = v_of x in
      (* A full unit of surplus must be present: every depart matches a
         completed arrive, and helpers never drive c2 below 2 on their
         own.  Seeing 0 or the transient 1 here means the caller departed
         without (or before completing) its arrive — an API misuse worth
         a real diagnosis, not an [assert] that vanishes with -noassert
         and aborts the program otherwise. *)
      if c2 < 2 then
        invalid_arg
          (Printf.sprintf
             "Snzi.depart: node surplus already zero (c2=%d) — \
              arrive/depart calls are unbalanced"
             c2);
      if Atomic.compare_and_set n.x x (pack ~c2:(c2 - 2) ~v) then begin
        if c2 = 2 then depart_node t n.parent;
        finished := true
      end
    done

let create ?(leaves = 8) () =
  let root = Nowa_util.Padding.atomic 0 in
  (* Two-level tree: an intermediate layer of sqrt-many nodes under the
     root keeps the structure shallow while still filtering. *)
  let mids = max 1 (int_of_float (sqrt (float_of_int (max 1 leaves)))) in
  let mid =
    Array.init mids (fun _ ->
        { x = Nowa_util.Padding.atomic (pack ~c2:0 ~v:0); parent = None })
  in
  let leaf_nodes =
    Array.init (max 1 leaves) (fun i ->
        {
          x = Nowa_util.Padding.atomic (pack ~c2:0 ~v:0);
          parent = Some mid.(i mod mids);
        })
  in
  { root; leaves = leaf_nodes }

let arrive t ~leaf =
  let n = t.leaves.(leaf mod Array.length t.leaves) in
  arrive_node t (Some n)

let depart t ~leaf =
  let n = t.leaves.(leaf mod Array.length t.leaves) in
  depart_node t (Some n)

(* -- batched operations --------------------------------------------------

   A burst of [n] arrivals at one leaf only needs the full tree walk for
   the unit that makes the leaf non-zero; every further unit is a local
   increment that cannot change the indicator.  So the batch costs one
   walk plus one CAS, instead of n walks — the amortisation the spawn
   burst / batched-grab callers want.  Soundness hinges on one fact:
   once this caller holds a completed arrive at the leaf, the leaf's
   surplus (and hence c2 >= 2) cannot drop below that unit until this
   caller departs it, because departs are only legal against one's own
   completed arrives.  The remainder CAS therefore never observes the
   transient c2 = 1 state and never touches the parent. *)

let add_units node c2n =
  let done_ = ref false in
  while not !done_ do
    let x = Atomic.get node.x in
    let c2 = c2_of x and v = v_of x in
    done_ := Atomic.compare_and_set node.x x (pack ~c2:(c2 + c2n) ~v)
  done

let arrive_n t ~leaf n =
  if n < 0 then invalid_arg "Snzi.arrive_n: negative count";
  if n > 0 then begin
    let node = t.leaves.(leaf mod Array.length t.leaves) in
    (* Fast path: the leaf is already plainly non-zero — fold the whole
       batch into one CAS without walking anywhere. *)
    let x = Atomic.get node.x in
    let c2 = c2_of x and v = v_of x in
    if
      c2 >= 2
      && Atomic.compare_and_set node.x x (pack ~c2:(c2 + (2 * n)) ~v)
    then ()
    else begin
      (* Zero / transient leaf, or we lost the race: one full arrive
         claims (or helps) the zero->non-zero transition, then the
         remaining n-1 units land in one local CAS loop. *)
      arrive_node t (Some node);
      if n > 1 then add_units node (2 * (n - 1))
    end
  end

let depart_n t ~leaf n =
  if n < 0 then invalid_arg "Snzi.depart_n: negative count";
  if n > 0 then begin
    let node = t.leaves.(leaf mod Array.length t.leaves) in
    let finished = ref false in
    while not !finished do
      let x = Atomic.get node.x in
      let c2 = c2_of x and v = v_of x in
      (* Same caller contract as [depart], batched: all n units must be
         completed arrives at this leaf owned by this caller. *)
      if c2 < 2 * n then
        invalid_arg
          (Printf.sprintf
             "Snzi.depart_n: node surplus %d below batch %d — \
              arrive/depart calls are unbalanced"
             (c2 / 2) n);
      if Atomic.compare_and_set node.x x (pack ~c2:(c2 - (2 * n)) ~v)
      then begin
        if c2 = 2 * n then depart_node t node.parent;
        finished := true
      end
    done
  end

let query t = Atomic.get t.root > 0
