(** Signatures shared by all work-stealing deque implementations.

    A work-stealing deque (Section II-A of the paper) is a double-ended
    queue with asymmetric ends: the owning worker pushes and pops at the
    {e bottom} in LIFO order; thieves remove from the {e top} in FIFO
    order.  Implementations only need to be partially multithread-safe:
    [steal] may run concurrently with itself and with at most one bottom
    operation, while the two bottom operations are never concurrent with
    each other. *)

(** Element type with an inhabitant used to blank freed slots. *)
module type ELT = sig
  type t

  val dummy : t
end

exception Full
(** Raised by bounded deques ([Abp]) when [push_bottom] finds no space.
    The ABP queue can raise this even when its logical size is small —
    the effective-capacity pathology described in Section II-D. *)

module type S = sig
  type elt
  type t

  val name : string
  (** Short identifier used in benchmark output ("cl", "the", ...). *)

  val create : ?capacity:int -> unit -> t
  (** [capacity] is the initial (CL) or fixed (THE/ABP) slot count. *)

  val push_bottom : t -> elt -> unit
  (** Owner only.  May raise {!Full} on bounded implementations. *)

  val pop : t -> elt
  (** Owner only.  LIFO: returns the most recently pushed element that has
      not been stolen, or [E.dummy] when the deque is empty (or the last
      element was lost to a racing thief).  This is the allocation-free
      variant used on the scheduler's per-spawn hot path — no [option]
      box is built per pop.  Callers must never push the dummy element;
      all implementations already reserve it for blanking freed slots. *)

  val pop_bottom : t -> elt option
  (** Owner only.  LIFO: [pop] wrapped in an [option]; kept for tests and
      cold paths where the extra allocation does not matter. *)

  val steal : t -> on_commit:(elt -> unit) -> elt option
  (** Thief operation; FIFO from the top.  [on_commit] runs exactly once if
      and only if the steal succeeds, at a point where the transfer can no
      longer fail.  For lock-based deques it runs {e inside} the critical
      section — this is the hook Fibril-style runtimes use to couple the
      steal with their strand-counter update (paper Listing 2); wait-free
      runtimes pass a no-op.  Returns [None] both when the deque is empty
      and when the attempt aborted due to a race; callers retry. *)

  val size : t -> int
  (** Approximate number of elements; exact when quiescent. *)

  val steal_batch : t -> max:int -> on_commit:(elt -> unit) -> elt list
  (** Thief operation: take up to [max] elements from the top in FIFO
      order, oldest first.  [on_commit] runs once per element actually
      transferred, under the same guarantee as {!steal}.  Lock-based
      deques take the whole batch under one critical section (the
      [steal_half] idiom: one lock acquisition amortised over the batch);
      CAS-based deques degrade to [max] independent {!steal}s, stopping
      at the first failure.  Returns [[]] when nothing could be taken. *)
end

(** A deque implementation, abstracted over its element type. *)
module type MAKER = functor (E : ELT) -> S with type elt = E.t
