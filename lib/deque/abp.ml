(** The Arora-Blumofe-Plaxton non-blocking work-stealing deque (SPAA '98).

    The top index and its ABA-prevention tag are packed into one OCaml
    integer ([age]) so it can be updated with a single compare-and-swap.
    As in the original algorithm the underlying array is {e not} used as a
    ring buffer: [push_bottom] and [steal] only ever increment indices, so
    space freed at the top is unusable until the deque empties and
    [pop_bottom] resets both indices.  This is the effective-capacity
    pathology discussed in Section II-D of the paper; [push_bottom] raises
    {!Ws_deque_intf.Full} when it bites, and the test-suite demonstrates
    it.  Kept primarily as a baseline and for the deque benchmarks. *)

module Make (E : Ws_deque_intf.ELT) : Ws_deque_intf.S with type elt = E.t =
struct
  type elt = E.t

  type t = {
    age : int Atomic.t;       (* tag in the high bits, top index in the low *)
    bot : int Atomic.t;
    slots : elt array;
  }

  let name = "abp"

  let index_bits = 31
  let index_mask = (1 lsl index_bits) - 1
  let pack ~tag ~top = (tag lsl index_bits) lor top
  let unpack age = (age lsr index_bits, age land index_mask)

  let create ?(capacity = 8192) () =
    {
      age = Nowa_util.Padding.atomic (pack ~tag:0 ~top:0);
      bot = Nowa_util.Padding.atomic 0;
      slots = Array.make capacity E.dummy;
    }

  let push_bottom t v =
    let b = Atomic.get t.bot in
    if b >= Array.length t.slots then raise Ws_deque_intf.Full;
    t.slots.(b) <- v;
    Atomic.set t.bot (b + 1)

  let pop t =
    let b = Atomic.get t.bot in
    if b = 0 then E.dummy
    else begin
      let b = b - 1 in
      Atomic.set t.bot b;
      let v = t.slots.(b) in
      let old_age = Atomic.get t.age in
      let tag, top = unpack old_age in
      if b > top then begin
        t.slots.(b) <- E.dummy;
        v
      end
      else begin
        (* Deque is now empty or this is the last element: reset indices,
           bumping the tag so in-flight thieves cannot commit stale tops. *)
        Atomic.set t.bot 0;
        let new_age = pack ~tag:(tag + 1) ~top:0 in
        if b = top && Atomic.compare_and_set t.age old_age new_age then v
        else begin
          Atomic.set t.age new_age;
          E.dummy
        end
      end
    end

  let pop_bottom t =
    let v = pop t in
    if v == E.dummy then None else Some v

  let steal t ~on_commit =
    let old_age = Atomic.get t.age in
    let tag, top = unpack old_age in
    let b = Atomic.get t.bot in
    if b <= top then None
    else begin
      let v = t.slots.(top) in
      let new_age = pack ~tag ~top:(top + 1) in
      if Atomic.compare_and_set t.age old_age new_age then begin
        on_commit v;
        Some v
      end
      else None
    end

  (* The age word admits only single-element CAS transfers, so a batch is
     [max] independent steals ending at the first empty/raced attempt. *)
  let steal_batch t ~max:max_take ~on_commit =
    let rec go n acc =
      if n >= max_take then List.rev acc
      else
        match steal t ~on_commit with
        | None -> List.rev acc
        | Some v -> go (n + 1) (v :: acc)
    in
    go 0 []

  let size t =
    let b = Atomic.get t.bot in
    let _, top = unpack (Atomic.get t.age) in
    max 0 (b - top)
end
