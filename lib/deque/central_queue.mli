(** Single global mutex-protected FIFO task queue.

    This is the structural model of GCC libgomp's task handling: every
    worker pushes to and pops from one shared queue, so all scheduling
    traffic serialises on one lock — the pathology behind libgomp's curve
    in Figure 10 of the paper. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue at the back (FIFO order, like libgomp's task list). *)

val pop : 'a t -> 'a option
(** Dequeue from the front; [None] if empty. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] elements from the front under one lock
    acquisition, preserving FIFO order.  Amortises the lock cost when a
    worker drains several tasks at once; [[]] if empty. *)

val size : 'a t -> int
