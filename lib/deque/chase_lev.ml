(** Chase-Lev dynamic circular work-stealing deque (the paper's "CL
    queue").

    The algorithm follows Chase & Lev (SPAA '05) as corrected for weak
    memory models by Lê et al. (PPoPP '13).  OCaml's [Atomic] operations
    are sequentially consistent, which is strictly stronger than the
    orderings the corrected algorithm requires, so the implementation is
    memory-model-safe by construction; the cost of the stronger fences is
    uniform across all runtimes compared by the benchmarks.

    [top] and [bottom] are monotonically increasing 63-bit counters that
    double as ring-buffer indices (index = counter mod capacity), so the
    ABP effective-capacity pathology does not exist here.  The buffer grows
    when full; growth is performed by the owner and published with an
    atomic store so that concurrent thieves always observe a buffer
    containing the element at their candidate index. *)

module Make (E : Ws_deque_intf.ELT) : Ws_deque_intf.S with type elt = E.t =
struct
  type elt = E.t

  type buffer = { mask : int; slots : elt array }

  type t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : buffer Atomic.t;
  }

  let name = "cl"

  let make_buffer capacity =
    assert (capacity > 0 && capacity land (capacity - 1) = 0);
    { mask = capacity - 1; slots = Array.make capacity E.dummy }

  let create ?(capacity = 64) () =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    let capacity = pow2 8 in
    {
      top = Nowa_util.Padding.atomic 0;
      bottom = Nowa_util.Padding.atomic 0;
      buf = Nowa_util.Padding.atomic (make_buffer capacity);
    }

  let slot_get buf i = buf.slots.(i land buf.mask)
  let slot_set buf i v = buf.slots.(i land buf.mask) <- v

  (* Owner only: allocate a buffer twice the size and copy the live range.
     Thieves racing with the copy still hold the old buffer, whose live
     slots are never overwritten (the owner only pushes after publishing
     the new buffer). *)
  let grow t top bottom =
    let old_buf = Atomic.get t.buf in
    let nbuf = make_buffer ((old_buf.mask + 1) * 2) in
    for i = top to bottom - 1 do
      slot_set nbuf i (slot_get old_buf i)
    done;
    Atomic.set t.buf nbuf;
    nbuf

  let push_bottom t v =
    let b = Atomic.get t.bottom in
    let tp = Atomic.get t.top in
    let buf = Atomic.get t.buf in
    let buf = if b - tp > buf.mask then grow t tp b else buf in
    slot_set buf b v;
    Atomic.set t.bottom (b + 1)

  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;
    (* The seq_cst store above acts as the store-load fence the algorithm
       needs between publishing the reservation and reading [top]. *)
    let tp = Atomic.get t.top in
    let size = b - tp in
    if size < 0 then begin
      Atomic.set t.bottom tp;
      E.dummy
    end
    else
      let buf = Atomic.get t.buf in
      let v = slot_get buf b in
      if size > 0 then begin
        slot_set buf b E.dummy;
        v
      end
      else begin
        (* Single element left: race against thieves for it. *)
        let won = Atomic.compare_and_set t.top tp (tp + 1) in
        Atomic.set t.bottom (tp + 1);
        if won then begin
          slot_set buf b E.dummy;
          v
        end
        else E.dummy
      end

  let pop_bottom t =
    let v = pop t in
    if v == E.dummy then None else Some v

  let steal t ~on_commit =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if b - tp <= 0 then None
    else
      let buf = Atomic.get t.buf in
      let v = slot_get buf tp in
      if Atomic.compare_and_set t.top tp (tp + 1) then begin
        on_commit v;
        Some v
      end
      else None

  (* No multi-element CAS on [top], so a batch is [max] independent
     steals; the first empty/raced attempt ends the sweep. *)
  let steal_batch t ~max:max_take ~on_commit =
    let rec go n acc =
      if n >= max_take then List.rev acc
      else
        match steal t ~on_commit with
        | None -> List.rev acc
        | Some v -> go (n + 1) (v :: acc)
    in
    go 0 []

  let size t =
    let b = Atomic.get t.bottom in
    let tp = Atomic.get t.top in
    max 0 (b - tp)
end
