type 'a t = { lock : Mutex.t; q : 'a Queue.t }

let create () = { lock = Mutex.create (); q = Queue.create () }

let push t v =
  Mutex.lock t.lock;
  Queue.push v t.q;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r = Queue.take_opt t.q in
  Mutex.unlock t.lock;
  r

let pop_batch t ~max:max_take =
  Mutex.lock t.lock;
  let out = ref [] in
  let n = ref 0 in
  while !n < max_take && not (Queue.is_empty t.q) do
    out := Queue.pop t.q :: !out;
    incr n
  done;
  Mutex.unlock t.lock;
  List.rev !out

let size t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n
