(** Fully mutex-synchronised deque: every operation takes the lock.

    This is the "every fully-synchronised queue could be used for
    work-stealing" strawman of Section II-A and the queue we give to the
    Cilk Plus-like preset, whose runtime the paper classifies as lock-based
    on both layers.  [steal]'s [on_commit] runs inside the critical
    section. *)

module Make (E : Ws_deque_intf.ELT) : Ws_deque_intf.S with type elt = E.t =
struct
  type elt = E.t

  type t = {
    lock : Mutex.t;
    mutable head : int;
    mutable tail : int;
    mutable mask : int;
    mutable slots : elt array;
  }

  let name = "locked"

  let create ?(capacity = 64) () =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    let capacity = pow2 8 in
    {
      lock = Mutex.create ();
      head = 0;
      tail = 0;
      mask = capacity - 1;
      slots = Array.make capacity E.dummy;
    }

  let grow_locked t =
    let slots = Array.make ((t.mask + 1) * 2) E.dummy in
    let mask = Array.length slots - 1 in
    for i = t.head to t.tail - 1 do
      slots.(i land mask) <- t.slots.(i land t.mask)
    done;
    t.slots <- slots;
    t.mask <- mask

  let push_bottom t v =
    Mutex.lock t.lock;
    if t.tail - t.head > t.mask then grow_locked t;
    t.slots.(t.tail land t.mask) <- v;
    t.tail <- t.tail + 1;
    Mutex.unlock t.lock

  let pop t =
    Mutex.lock t.lock;
    let r =
      if t.tail = t.head then E.dummy
      else begin
        t.tail <- t.tail - 1;
        let v = t.slots.(t.tail land t.mask) in
        t.slots.(t.tail land t.mask) <- E.dummy;
        v
      end
    in
    Mutex.unlock t.lock;
    r

  let pop_bottom t =
    let v = pop t in
    if v == E.dummy then None else Some v

  let steal t ~on_commit =
    Mutex.lock t.lock;
    let r =
      if t.tail = t.head then None
      else begin
        let v = t.slots.(t.head land t.mask) in
        t.slots.(t.head land t.mask) <- E.dummy;
        t.head <- t.head + 1;
        on_commit v;
        Some v
      end
    in
    Mutex.unlock t.lock;
    r

  (* steal_half under a single lock acquisition: take up to [max] elements
     but never more than half the deque (rounded up), leaving the owner the
     newer half to keep working on locally. *)
  let steal_batch t ~max:max_take ~on_commit =
    Mutex.lock t.lock;
    let avail = t.tail - t.head in
    let take = min max_take ((avail + 1) / 2) in
    let r =
      if take <= 0 then []
      else begin
        let out = ref [] in
        for _ = 1 to take do
          let v = t.slots.(t.head land t.mask) in
          t.slots.(t.head land t.mask) <- E.dummy;
          t.head <- t.head + 1;
          on_commit v;
          out := v :: !out
        done;
        List.rev !out
      end
    in
    Mutex.unlock t.lock;
    r

  let size t = max 0 (t.tail - t.head)
end
