(** The Cilk-5 THE (Tail, Head, Exception) work-stealing queue.

    Thieves always acquire the queue lock.  The owner's [pop_bottom]
    optimistically decrements the tail without locking and only falls back
    to the lock when it conflicts with a concurrent steal — the lock
    elision described in Section II-D.  Because steals hold the lock,
    [steal ~on_commit] runs its callback inside the critical section; this
    is exactly where Fibril increments its strand counter (Listing 2 of the
    paper), making the steal and the counter update atomic with respect to
    the owner's conflicting [pop_bottom].

    The buffer grows under the lock when full, so unlike the historical
    bounded implementation we never refuse a push; growth is rare and
    owner-initiated. *)

module Make (E : Ws_deque_intf.ELT) : Ws_deque_intf.S with type elt = E.t =
struct
  type elt = E.t

  type t = {
    head : int Atomic.t;            (* next steal index, monotonic *)
    tail : int Atomic.t;            (* next push index, monotonic *)
    lock : Mutex.t;
    mutable mask : int;
    mutable slots : elt array;
  }

  let name = "the"

  let create ?(capacity = 64) () =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    let capacity = pow2 8 in
    {
      head = Nowa_util.Padding.atomic 0;
      tail = Nowa_util.Padding.atomic 0;
      lock = Mutex.create ();
      mask = capacity - 1;
      slots = Array.make capacity E.dummy;
    }

  (* Owner only, called with [lock] held. *)
  let grow_locked t =
    let head = Atomic.get t.head and tail = Atomic.get t.tail in
    let slots = Array.make ((t.mask + 1) * 2) E.dummy in
    let mask = Array.length slots - 1 in
    for i = head to tail - 1 do
      slots.(i land mask) <- t.slots.(i land t.mask)
    done;
    t.slots <- slots;
    t.mask <- mask

  let push_bottom t v =
    let tail = Atomic.get t.tail in
    let head = Atomic.get t.head in
    if tail - head > t.mask then begin
      Mutex.lock t.lock;
      grow_locked t;
      Mutex.unlock t.lock
    end;
    t.slots.(tail land t.mask) <- v;
    Atomic.set t.tail (tail + 1)

  let pop t =
    let tail = Atomic.get t.tail - 1 in
    Atomic.set t.tail tail;
    let head = Atomic.get t.head in
    if head > tail then begin
      (* Possible conflict with a thief: arbitrate under the lock. *)
      Atomic.set t.tail (tail + 1);
      Mutex.lock t.lock;
      let tail = Atomic.get t.tail - 1 in
      Atomic.set t.tail tail;
      let head = Atomic.get t.head in
      if head > tail then begin
        Atomic.set t.tail head;
        Mutex.unlock t.lock;
        E.dummy
      end
      else begin
        let v = t.slots.(tail land t.mask) in
        t.slots.(tail land t.mask) <- E.dummy;
        Mutex.unlock t.lock;
        v
      end
    end
    else begin
      let v = t.slots.(tail land t.mask) in
      t.slots.(tail land t.mask) <- E.dummy;
      v
    end

  let pop_bottom t =
    let v = pop t in
    if v == E.dummy then None else Some v

  let steal t ~on_commit =
    Mutex.lock t.lock;
    let head = Atomic.get t.head in
    Atomic.set t.head (head + 1);
    let tail = Atomic.get t.tail in
    if head + 1 > tail then begin
      Atomic.set t.head head;
      Mutex.unlock t.lock;
      None
    end
    else begin
      let v = t.slots.(head land t.mask) in
      on_commit v;
      Mutex.unlock t.lock;
      Some v
    end

  (* Batched grab under one lock acquisition: repeat the THE steal
     protocol while the lock is held, so the per-steal lock cost is paid
     once for the whole batch.  Capped at half the visible elements so
     the owner keeps its newer half. *)
  let steal_batch t ~max:max_take ~on_commit =
    Mutex.lock t.lock;
    let avail = max 0 (Atomic.get t.tail - Atomic.get t.head) in
    let take = min max_take ((avail + 1) / 2) in
    let out = ref [] in
    (try
       for _ = 1 to take do
         let head = Atomic.get t.head in
         Atomic.set t.head (head + 1);
         let tail = Atomic.get t.tail in
         if head + 1 > tail then begin
           Atomic.set t.head head;
           raise Exit
         end
         else begin
           let v = t.slots.(head land t.mask) in
           on_commit v;
           out := v :: !out
         end
       done
     with Exit -> ());
    Mutex.unlock t.lock;
    List.rev !out

  let size t =
    let tail = Atomic.get t.tail and head = Atomic.get t.head in
    max 0 (tail - head)
end
