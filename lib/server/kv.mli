(** Hash-sharded in-memory KV store with message-based bucket handoff.

    The store is split into [shards], each a set of hash buckets plus a
    lock-free mailbox.  A shard's state is only ever touched by the
    current {e combiner}: whoever CASes the shard's combining flag
    drains the mailbox and applies the batch, so bucket tables need no
    per-key locks (flat combining).  Cross-shard multi-key operations
    never lock across shards; instead, bucket {e ownership} moves: the
    transaction's home shard borrows each foreign bucket with a
    [Borrow] message, the owner detaches the bucket table and ships it
    back in a [Grant], and after the one-shot atomic apply the table
    returns home via [Return] (the IronFleet sharded-hash-table
    scheme).  Requests that arrive for a bucket currently on loan are
    deferred and re-applied at return time, so no operation is lost or
    applied twice — the mcheck battery checks exactly this protocol.

    Deadlock freedom: a transaction acquires its buckets strictly
    one-at-a-time in the global (shard, bucket) order, so every waiter
    holds only buckets smaller than the one it waits for and the
    wait-for relation has no cycle.

    [exec] is safe to call from any thread or runtime task and contains
    no blocking synchronisation: waiting requests poke the combiner
    loop themselves (helping), so a stalled worker cannot wedge the
    shard. *)

type t

type key = int
type value = int

type op =
  | Get of key
  | Put of key * value
  | Add of key * value  (** read-modify-write: add to current, return new *)
  | Multi_get of key array  (** atomic cross-shard snapshot read *)
  | Multi_put of (key * value) array  (** atomic cross-shard multi-write *)

type outcome =
  | Pending  (** internal: response not yet produced *)
  | Miss
  | Hit of value
  | Many of value option array  (** [Multi_get] results, in key order *)
  | Ack
  | Dropped  (** admission control: shard mailbox over capacity *)

(** One applied read/write step, for linearizability checking: [seq] is
    drawn from a global counter at the linearization point (while the
    combiner holds the bucket exclusively), so replaying entries in
    [seq] order against a sequential reference must reproduce every
    [read] observation. *)
type log_entry = {
  seq : int;
  req_id : int;
  l_key : key;
  read : value option;  (** table state for [l_key] just before the step *)
  wrote : value option;  (** [Some v] if the step stored [v] *)
}

val create :
  ?shards:int ->
  ?buckets_per_shard:int ->
  ?queue_cap:int ->
  ?log:bool ->
  ?span:Nowa_trace.Span.t ->
  unit ->
  t
(** Defaults: 16 shards, 64 buckets each, queue cap 65536, no log.
    [queue_cap] bounds a shard's pending-message count — mailbox plus
    messages deferred behind a bucket loan; requests beyond it are
    rejected with [Dropped] (open-loop overload shedding).  [log:true]
    records every applied step for offline linearizability checking —
    test-only, it serialises on a global counter.  [span] attaches a
    request-phase ledger: stations inside the store (submit, combiner
    claim, loan deferral, handoff, apply) mark the caller-allocated rid
    as the request moves; [Span.disabled] (the default) makes every
    mark a no-op. *)

val exec : ?rid:int -> t -> op -> outcome
(** Execute one operation to completion.  Never returns [Pending].
    Empty [Multi_get]/[Multi_put] complete immediately with
    [Many [||]] / [Ack].  [rid] is a span request id from
    [Span.alloc] — it becomes the request id (internal ids are offset
    past the span capacity, so they never collide); omit it (or pass
    [-1]) for untracked traffic. *)

val shard_of_key : t -> key -> int
(** Home shard of a key (exposed for tests and placement experiments). *)

val shards : t -> int
val size : t -> int
(** Total number of live keys.  Quiescent use only. *)

val fold : (key -> value -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all live bindings.  Quiescent use only. *)

val dropped : t -> int
(** Requests rejected by admission control so far. *)

val handoffs : t -> int
(** Bucket grants performed so far (cross-shard transaction traffic). *)

val log : t -> log_entry list
(** Applied-step log in global [seq] order ([] unless created with
    [~log:true]).  Quiescent use only. *)

(** {2 Watchdog integration} *)

val convoys :
  ?hold_ms:float -> ?min_depth:int -> t -> Nowa_runtime.Health.verdict list
(** Live-convoy probe for the health watchdog: one
    [Health.Convoy {shard; depth; held_ms}] per shard whose current
    combiner has held the combining flag for more than [hold_ms]
    (default 50) milliseconds while at least [min_depth] (default 1)
    messages wait behind it.  All reads are racy snapshots; safe to
    call from the monitor thread at any time. *)

val inject_wedge : shard:int -> ms:int -> unit
(** Arm a one-shot fault: the next combiner to claim [shard] spins for
    [ms] milliseconds while holding the flag, manufacturing exactly the
    convoy that {!convoys} detects.  Test/bench only. *)

val clear_wedge : unit -> unit
(** Disarm a pending {!inject_wedge}. *)
