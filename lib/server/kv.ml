module H = Hashtbl
module Span = Nowa_trace.Span
module Current = Nowa_trace.Current
module Ev = Nowa_trace.Event

type key = int
type value = int

type op =
  | Get of key
  | Put of key * value
  | Add of key * value
  | Multi_get of key array
  | Multi_put of (key * value) array

type outcome =
  | Pending
  | Miss
  | Hit of value
  | Many of value option array
  | Ack
  | Dropped

type log_entry = {
  seq : int;
  req_id : int;
  l_key : key;
  read : value option;
  wrote : value option;
}

type req = { id : int; op : op; out : outcome Atomic.t }

(* A multi-key transaction in flight at its home shard.  [needed] is
   sorted in global (shard, bucket) order and acquired left to right:
   the ordering is the deadlock-freedom argument (see kv.mli).  All
   fields are only touched by the home shard's current combiner. *)
type txn = {
  t_req : req;
  home : int;
  needed : (int * int) array;
  mutable cursor : int;
  mutable held : (int * int * (key, value) H.t) list;
}

type msg =
  | Request of req
  | Borrow of { txn : txn; bucket : int }
  | Grant of { txn : txn; from_shard : int; from_bucket : int; data : (key, value) H.t }
  | Return of { bucket : int; data : (key, value) H.t }

type bucket = {
  mutable tbl : (key, value) H.t;
  (* [Some q] while the table is detached (on loan to a transaction);
     [q] holds messages for this bucket deferred until the Return. *)
  mutable loaned : msg Queue.t option;
}

type shard = {
  sid : int;
  mail : msg list Atomic.t;  (* Treiber-style LIFO; drained by exchange *)
  depth : int Atomic.t;  (* messages in [mail], for admission control *)
  combining : bool Atomic.t;
  claimed_at_ns : int Atomic.t;
      (* when the current combiner won the flag; 0 while released.  The
         watchdog's convoy probe reads it racily — a stale nonzero value
         is filtered by re-checking [combining]. *)
  buckets : bucket array;
  (* Combiner-private state below: protected by [combining]. *)
  mutable waiting : txn list;  (* home txns parked on a Grant or a local loan *)
  mutable to_poke : int list;  (* shards to kick after releasing the flag *)
  mutable recheck : bool;  (* a bucket came home; retry parked txns *)
  mutable log : log_entry list;
}

type t = {
  nshards : int;
  nbuckets : int;
  queue_cap : int;
  log_on : bool;
  shards_ : shard array;
  seq : int Atomic.t;
  next_id : int Atomic.t;
  dropped_ : int Atomic.t;
  handoffs_ : int Atomic.t;
  span : Span.t;  (* request-phase ledger; Span.disabled when not profiling *)
}

let create ?(shards = 16) ?(buckets_per_shard = 64) ?(queue_cap = 65536)
    ?(log = false) ?(span = Span.disabled) () =
  if shards < 1 then invalid_arg "Kv.create: shards must be >= 1";
  if buckets_per_shard < 1 then
    invalid_arg "Kv.create: buckets_per_shard must be >= 1";
  let mk_shard sid =
    {
      sid;
      mail = Nowa_util.Padding.atomic [];
      depth = Nowa_util.Padding.atomic 0;
      combining = Nowa_util.Padding.atomic false;
      claimed_at_ns = Nowa_util.Padding.atomic 0;
      buckets =
        Array.init buckets_per_shard (fun _ ->
            { tbl = H.create 16; loaned = None });
      waiting = [];
      to_poke = [];
      recheck = false;
      log = [];
    }
  in
  {
    nshards = shards;
    nbuckets = buckets_per_shard;
    queue_cap;
    log_on = log;
    shards_ = Array.init shards mk_shard;
    seq = Atomic.make 0;
    (* Internally-allocated ids start above the span's rid range so a
       caller-supplied rid can double as the request id without
       colliding with preload/untracked traffic. *)
    next_id = Atomic.make (Span.capacity span);
    dropped_ = Nowa_util.Padding.atomic 0;
    handoffs_ = Nowa_util.Padding.atomic 0;
    span;
  }

(* Scrambled placement so that adjacent (e.g. zipf-hot) keys spread
   over shards instead of piling into one bucket. *)
let[@inline] place t k =
  let h = Nowa_util.Splitmix.scramble k in
  (h mod t.nshards, h / t.nshards mod t.nbuckets)

let shard_of_key t k = fst (place t k)
let shards t = t.nshards

(* Sorted, de-duplicated (shard, bucket) footprint of a multi-key op. *)
let needed_of t keys =
  let pairs = Array.map (place t) keys in
  Array.sort compare pairs;
  let uniq = ref [] in
  Array.iter
    (fun p -> match !uniq with q :: _ when q = p -> () | _ -> uniq := p :: !uniq)
    pairs;
  Array.of_list (List.rev !uniq)

let keys_of_op = function
  | Get k | Put (k, _) | Add (k, _) -> [| k |]
  | Multi_get ks -> ks
  | Multi_put kvs -> Array.map fst kvs

(* Home shard: owner of the single key, or of the first needed bucket
   for a multi-key op (any choice works; this one is deterministic). *)
let home_of t op = fst (needed_of t (keys_of_op op)).(0)

let[@inline] observe t s ~(r : req) ~k ~read ~wrote =
  if t.log_on then
    s.log <-
      { seq = Atomic.fetch_and_add t.seq 1; req_id = r.id; l_key = k; read; wrote }
      :: s.log

let[@inline] fill (r : req) o = Atomic.set r.out o

(* -- mailbox -------------------------------------------------------------- *)

(* Raw Treiber push, no depth accounting: for re-injecting deferred
   messages whose admission slot is still held (see [defer]). *)
let push_raw (s : shard) m =
  let rec go () =
    let cur = Atomic.get s.mail in
    if not (Atomic.compare_and_set s.mail cur (m :: cur)) then go ()
  in
  go ()

let push_msg (s : shard) m =
  ignore (Atomic.fetch_and_add s.depth 1);
  push_raw s m

(* Park a message behind a loaned bucket.  [handle] already gave back
   the admission slot; re-take it so work queued behind the loan keeps
   counting against [queue_cap] for the whole loan window. *)
let defer (s : shard) q m =
  ignore (Atomic.fetch_and_add s.depth 1);
  Queue.add m q

let[@inline] poke_later (s : shard) j =
  if j <> s.sid && not (List.mem j s.to_poke) then s.to_poke <- j :: s.to_poke

(* -- combiner ------------------------------------------------------------- *)

(* The span [Exec] mark and the Req_apply ring event must precede
   [fill]: the outcome [Atomic.set] is the release edge that hands the
   request back to its injector, so every span-array store sequenced
   before it is safely ordered against the injector's [Span.finish]. *)
let[@inline] finish_apply t (s : shard) (r : req) o =
  Span.mark t.span r.id Span.Exec;
  Current.emit Ev.Req_apply ~arg:s.sid ~arg2:r.id;
  fill r o

let apply_single t s (r : req) tbl =
  let o =
    match r.op with
    | Get k ->
      let v = H.find_opt tbl k in
      observe t s ~r ~k ~read:v ~wrote:None;
      (match v with Some v -> Hit v | None -> Miss)
    | Put (k, v) ->
      let prev = if t.log_on then H.find_opt tbl k else None in
      observe t s ~r ~k ~read:prev ~wrote:(Some v);
      H.replace tbl k v;
      Ack
    | Add (k, d) ->
      let prev = H.find_opt tbl k in
      let nv = match prev with Some v -> v + d | None -> d in
      observe t s ~r ~k ~read:prev ~wrote:(Some nv);
      H.replace tbl k nv;
      Hit nv
    | Multi_get _ | Multi_put _ -> assert false
  in
  finish_apply t s r o

let rec handle t (s : shard) msg =
  ignore (Atomic.fetch_and_add s.depth (-1));
  match msg with
  | Request r ->
    (* First claim closes Mailbox_wait; a re-claim after a loan
       deferral closes Loan_defer.  Either way the request is now owned
       by this combiner, so the plain span stores are race-free. *)
    Span.claim t.span r.id ~worker:(Current.worker ());
    Current.emit Ev.Req_claim ~arg:s.sid ~arg2:r.id;
    handle_request t s r
  | Borrow { txn; bucket } ->
    let b = s.buckets.(bucket) in
    (match b.loaned with
    | Some q ->
      Span.note_defer t.span txn.t_req.id;
      Current.emit Ev.Req_defer ~arg:s.sid ~arg2:txn.t_req.id;
      defer s q msg
    | None ->
      b.loaned <- Some (Queue.create ());
      ignore (Atomic.fetch_and_add t.handoffs_ 1);
      Current.emit Ev.Req_handoff ~arg:s.sid ~arg2:txn.t_req.id;
      push_msg t.shards_.(txn.home)
        (Grant { txn; from_shard = s.sid; from_bucket = bucket; data = b.tbl });
      poke_later s txn.home)
  | Grant { txn; from_shard; from_bucket; data } ->
    txn.held <- (from_shard, from_bucket, data) :: txn.held;
    txn.cursor <- txn.cursor + 1;
    if advance t s txn then s.waiting <- List.filter (fun x -> x != txn) s.waiting
  | Return { bucket; data } ->
    let b = s.buckets.(bucket) in
    (match b.loaned with
    | Some q -> reattach s b data q
    | None -> assert false)

and handle_request t s (r : req) =
  match r.op with
  | Get k | Put (k, _) | Add (k, _) ->
    let _, bk = place t k in
    let b = s.buckets.(bk) in
    (match b.loaned with
    | Some q ->
      Span.note_defer t.span r.id;
      Current.emit Ev.Req_defer ~arg:s.sid ~arg2:r.id;
      defer s q (Request r)
    | None -> apply_single t s r b.tbl)
  | Multi_get _ | Multi_put _ ->
    let txn =
      {
        t_req = r;
        home = s.sid;
        needed = needed_of t (keys_of_op r.op);
        cursor = 0;
        held = [];
      }
    in
    if not (advance t s txn) then s.waiting <- txn :: s.waiting

(* Drive acquisition from the cursor.  True iff the txn completed. *)
and advance t s txn =
  if txn.cursor >= Array.length txn.needed then begin
    apply_txn t s txn;
    true
  end
  else begin
    let sh, bk = txn.needed.(txn.cursor) in
    if sh = s.sid then begin
      let b = s.buckets.(bk) in
      match b.loaned with
      | None ->
        b.loaned <- Some (Queue.create ());
        txn.held <- (sh, bk, b.tbl) :: txn.held;
        txn.cursor <- txn.cursor + 1;
        advance t s txn
      | Some _ -> false (* parked until the local bucket comes home *)
    end
    else begin
      push_msg t.shards_.(sh) (Borrow { txn; bucket = bk });
      poke_later s sh;
      false (* parked until the Grant *)
    end
  end

and apply_txn t s txn =
  let r = txn.t_req in
  (* Everything since the claim was spent collecting buckets (local
     acquisitions, Borrow round-trips, loans ahead of us). *)
  Span.mark t.span r.id Span.Handoff_wait;
  let tbl_for k =
    let sh, bk = place t k in
    let rec find = function
      | (s', b', tbl) :: _ when s' = sh && b' = bk -> tbl
      | _ :: rest -> find rest
      | [] -> assert false
    in
    find txn.held
  in
  (match r.op with
  | Multi_get keys ->
    let res =
      Array.map
        (fun k ->
          let v = H.find_opt (tbl_for k) k in
          observe t s ~r ~k ~read:v ~wrote:None;
          v)
        keys
    in
    finish_apply t s r (Many res)
  | Multi_put kvs ->
    Array.iter
      (fun (k, v) ->
        let tbl = tbl_for k in
        let prev = if t.log_on then H.find_opt tbl k else None in
        observe t s ~r ~k ~read:prev ~wrote:(Some v);
        H.replace tbl k v)
      kvs;
    finish_apply t s r Ack
  | Get _ | Put _ | Add _ -> assert false);
  List.iter
    (fun (sh, bk, data) ->
      if sh = s.sid then begin
        let b = s.buckets.(bk) in
        match b.loaned with
        | Some q -> reattach s b data q
        | None -> assert false
      end
      else begin
        push_msg t.shards_.(sh) (Return { bucket = bk; data });
        poke_later s sh
      end)
    txn.held

(* Bucket comes home: re-inject deferred messages (they re-enter the
   mailbox and are handled in a later batch) and flag parked txns for
   retry.  Deferred messages kept their admission slot ([defer]
   re-incremented depth), so re-injection must not count them again;
   the slot is released when the message is finally handled. *)
and reattach (s : shard) b data q =
  b.tbl <- data;
  b.loaned <- None;
  Queue.iter (fun m -> push_raw s m) q;
  s.recheck <- true

(* Retry parked txns whose cursor points at a local bucket.  Safe to
   run the filter while [advance] fires: completion only reattaches
   buckets and sends messages, never touches [s.waiting]. *)
let retry_waiting t s =
  s.waiting <-
    List.filter
      (fun txn ->
        let parked_local =
          txn.cursor < Array.length txn.needed
          && fst txn.needed.(txn.cursor) = s.sid
        in
        if parked_local then not (advance t s txn) else true)
      s.waiting

(* Drain until the mailbox is empty AND no reattach is pending, then
   release and re-check the mailbox.  Both halves of the condition are
   load-bearing fences, each model-checked:

   - mailbox: a message pushed between our last exchange and the flag
     release would otherwise be stranded, because its pusher saw
     [combining = true] and went away (kv_combiner spec);
   - recheck: [retry_waiting] can itself complete a transaction whose
     reattach sets [s.recheck] again after we cleared it.  A txn parked
     on the just-reattached bucket — already filtered earlier in the
     same pass — would then be stranded with an empty mailbox, and
     nothing would ever wake the combiner for it ([try_combine] only
     enters on mail).  Looping on [s.recheck] re-runs the retry before
     release (kv_parked_retry spec). *)
(* Fault injection for the watchdog's convoy detector: a one-shot
   (shard, ms) wedge consumed by the next combiner to claim that shard,
   which then spins while holding the flag — exactly the pathology the
   convoy probe is meant to catch. *)
let wedge_armed : bool ref = ref false
let wedge_spec : (int * int) option Atomic.t = Atomic.make None

let inject_wedge ~shard ~ms =
  Atomic.set wedge_spec (Some (shard, ms));
  wedge_armed := true

let clear_wedge () =
  Atomic.set wedge_spec None;
  wedge_armed := false

let[@inline never] maybe_wedge sid =
  (* CAS against the witnessed value (physical equality), so exactly one
     combiner consumes the wedge. *)
  let cur = Atomic.get wedge_spec in
  match cur with
  | Some (w, ms) when w = sid ->
    if Atomic.compare_and_set wedge_spec cur None then begin
      wedge_armed := false;
      Nowa_util.Clock.spin_ns (ms * 1_000_000)
    end
  | _ -> ()

let rec combine t (s : shard) =
  if !wedge_armed then maybe_wedge s.sid;
  (match Atomic.exchange s.mail [] with
  | [] -> ()
  | batch -> List.iter (handle t s) (List.rev batch));
  if s.recheck then begin
    s.recheck <- false;
    retry_waiting t s
  end;
  if s.recheck || Atomic.get s.mail <> [] then combine t s
  else begin
    let pokes = s.to_poke in
    s.to_poke <- [];
    Atomic.set s.claimed_at_ns 0;
    Atomic.set s.combining false;
    List.iter (fun j -> try_combine t j) pokes;
    if Atomic.get s.mail <> [] then try_combine t s.sid
  end

and try_combine t j =
  let s = t.shards_.(j) in
  if
    Atomic.get s.mail <> []
    && (not (Atomic.get s.combining))
    && Atomic.compare_and_set s.combining false true
  then begin
    Atomic.set s.claimed_at_ns (Nowa_util.Clock.now_ns ());
    combine t s
  end

(* Watchdog probe: shards whose combiner has held the claim past
   [hold_ms] with at least [min_depth] messages backed up behind it.
   All reads are racy by design; [combining] is re-checked last so a
   released-then-reclaimed shard reports the fresh claim time. *)
let convoys ?(hold_ms = 50.0) ?(min_depth = 1) t =
  let now = Nowa_util.Clock.now_ns () in
  let out = ref [] in
  Array.iter
    (fun s ->
      let t0 = Atomic.get s.claimed_at_ns in
      let depth = Atomic.get s.depth in
      if
        t0 > 0
        && depth >= min_depth
        && float (now - t0) /. 1e6 > hold_ms
        && Atomic.get s.combining
      then
        out :=
          Nowa_runtime.Health.Convoy
            { shard = s.sid; depth; held_ms = float (now - t0) /. 1e6 }
          :: !out)
    t.shards_;
  !out

(* -- client API ----------------------------------------------------------- *)

let exec ?(rid = -1) t op =
  match op with
  | Multi_get [||] -> Many [||]  (* no footprint, no home shard *)
  | Multi_put [||] -> Ack
  | _ ->
  let home = home_of t op in
  let s = t.shards_.(home) in
  if Atomic.get s.depth >= t.queue_cap then begin
    ignore (Atomic.fetch_and_add t.dropped_ 1);
    Span.drop t.span rid;
    Dropped
  end
  else begin
    let id = if rid >= 0 then rid else Atomic.fetch_and_add t.next_id 1 in
    let r = { id; op; out = Atomic.make Pending } in
    (* Scheduled arrival -> here is pure scheduling: injector lag, the
       spawn, any steal or park-wake.  Bank it before the push so the
       mailbox CAS orders the store against the claiming combiner. *)
    Span.mark t.span rid Span.Sched_wait;
    Current.emit Ev.Req_submit ~arg:home ~arg2:id;
    push_msg s (Request r);
    try_combine t home;
    let bo = Nowa_util.Backoff.make () in
    let rec wait () =
      match Atomic.get r.out with
      | Pending ->
        try_combine t home;
        (* A parked transaction makes progress on other shards; sweep
           them occasionally so a foreign mailbox with no local traffic
           cannot sit idle under us. *)
        if Nowa_util.Backoff.steps bo land 15 = 15 then
          for j = 0 to t.nshards - 1 do
            try_combine t j
          done;
        Nowa_util.Backoff.once bo;
        wait ()
      | o -> o
    in
    wait ()
  end

let size t =
  Array.fold_left
    (fun acc s ->
      Array.fold_left (fun acc b -> acc + H.length b.tbl) acc s.buckets)
    0 t.shards_

let fold f t init =
  Array.fold_left
    (fun acc s ->
      Array.fold_left (fun acc b -> H.fold f b.tbl acc) acc s.buckets)
    init t.shards_

let dropped t = Atomic.get t.dropped_
let handoffs t = Atomic.get t.handoffs_

let log t =
  let entries =
    Array.fold_left (fun acc s -> List.rev_append s.log acc) [] t.shards_
  in
  List.sort (fun (a : log_entry) (b : log_entry) -> compare a.seq b.seq) entries
