(** Tail-latency anatomy: turn a {!Nowa_trace.Span} collector into the
    per-phase quantile tables, conservation audit and tail-request
    timeline artifacts that explain {e where} a p999 went.

    All statistics are exact (sorted-array order statistics over every
    finished measured request), not interpolated — the collector already
    holds the full population, so there is no reason to approximate. *)

module Span = Nowa_trace.Span

type phase_stats = {
  phase : Span.phase;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  mean_ns : float;
  max_ns : int;
}

type class_anatomy = {
  label : string;  (* op-class name, or "total" *)
  count : int;
  phases : phase_stats array;
}

type tail_entry = {
  rid : int;
  t_label : string;
  total_ns : int;
  combined_by : int;
  defers : int;
  sched_ns : int;  (* absolute scheduled arrival, for timeline export *)
  phase_ns : int array;  (* indexed like Span.phases *)
}

type t = {
  sampled : int;  (* finished measured requests *)
  dropped : int;  (* measured requests rejected by admission *)
  overflowed : int;  (* alloc requests past the collector capacity *)
  violations : int;  (* requests whose ledger missed end-to-end latency *)
  max_abs_err_ns : int;  (* worst conservation residual *)
  classes : class_anatomy list;  (* "total" first, then classes with traffic *)
  tail : tail_entry list;  (* slowest first *)
}

let q_exact q sorted =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let stats_of phase values =
  let arr = Array.of_list values in
  Array.sort compare arr;
  let n = Array.length arr in
  {
    phase;
    p50_ns = q_exact 0.5 arr;
    p99_ns = q_exact 0.99 arr;
    p999_ns = q_exact 0.999 arr;
    mean_ns =
      (if n = 0 then 0.0
       else float_of_int (Array.fold_left ( + ) 0 arr) /. float_of_int n);
    max_ns = (if n = 0 then 0 else arr.(n - 1));
  }

let class_label i =
  if i >= 0 && i < Array.length Workload.classes then
    Workload.class_name Workload.classes.(i)
  else Printf.sprintf "class%d" i

(** Measured requests only: warmup traffic moves the store but must not
    shift the quantiles. *)
let of_span (span : Span.t) : t =
  let n = Span.allocated span in
  let nclasses = Array.length Workload.classes in
  (* bucket -1 = total; 0..nclasses-1 = per class *)
  let acc = Array.make_matrix (nclasses + 1) Span.n_phases [] in
  let counts = Array.make (nclasses + 1) 0 in
  let sampled = ref 0 and drops = ref 0 in
  let violations = ref 0 and max_err = ref 0 in
  let tail_rids = Span.tail_entries span in
  for rid = 0 to n - 1 do
    if Span.measured span rid then
      if Span.was_dropped span rid then incr drops
      else if Span.finished span rid then begin
        incr sampled;
        let err = abs (Span.conservation_error span rid) in
        if err > 0 then incr violations;
        if err > !max_err then max_err := err;
        let c = Span.cls_of span rid in
        let c = if c >= 0 && c < nclasses then c else 0 in
        counts.(0) <- counts.(0) + 1;
        counts.(c + 1) <- counts.(c + 1) + 1;
        Array.iteri
          (fun p phase ->
            let v = Span.phase_ns span rid phase in
            acc.(0).(p) <- v :: acc.(0).(p);
            acc.(c + 1).(p) <- v :: acc.(c + 1).(p))
          Span.phases
      end
  done;
  let mk label b =
    {
      label;
      count = counts.(b);
      phases = Array.mapi (fun p phase -> stats_of phase acc.(b).(p)) Span.phases;
    }
  in
  let classes =
    mk "total" 0
    :: (List.init nclasses (fun c -> mk (class_label c) (c + 1))
       |> List.filter (fun ca -> ca.count > 0))
  in
  let tail =
    List.map
      (fun (rid, lat) ->
        {
          rid;
          t_label = class_label (Span.cls_of span rid);
          total_ns = lat;
          combined_by = Span.combiner_of span rid;
          defers = Span.defers_of span rid;
          sched_ns = Span.sched_ns span rid;
          phase_ns = Array.map (Span.phase_ns span rid) Span.phases;
        })
      tail_rids
  in
  {
    sampled = !sampled;
    dropped = !drops;
    overflowed = Span.overflowed span;
    violations = !violations;
    max_abs_err_ns = !max_err;
    classes;
    tail;
  }

(* -- rendering ------------------------------------------------------------- *)

let us ns = float_of_int ns /. 1e3

let pp (a : t) =
  Printf.printf
    "anatomy: sampled=%d dropped=%d overflow=%d conservation: violations=%d \
     max_err=%dns\n"
    a.sampled a.dropped a.overflowed a.violations a.max_abs_err_ns;
  List.iter
    (fun ca ->
      Printf.printf "  [%s] n=%d\n" ca.label ca.count;
      Nowa_util.Table.print
        ~header:[ "phase"; "p50 us"; "p99 us"; "p999 us"; "mean us"; "max us" ]
        (Array.to_list
           (Array.map
              (fun (s : phase_stats) ->
                [
                  Span.phase_name s.phase;
                  Printf.sprintf "%.1f" (us s.p50_ns);
                  Printf.sprintf "%.1f" (us s.p99_ns);
                  Printf.sprintf "%.1f" (us s.p999_ns);
                  Printf.sprintf "%.1f" (s.mean_ns /. 1e3);
                  Printf.sprintf "%.1f" (us s.max_ns);
                ])
              ca.phases)))
    a.classes;
  match a.tail with
  | [] -> ()
  | tail ->
    Printf.printf "  slowest sampled requests:\n";
    Nowa_util.Table.print
      ~header:
        ([ "rid"; "op"; "total us"; "by"; "defers" ]
        @ Array.to_list (Array.map Span.phase_name Span.phases))
      (List.map
         (fun e ->
           [
             string_of_int e.rid;
             e.t_label;
             Printf.sprintf "%.1f" (us e.total_ns);
             string_of_int e.combined_by;
             string_of_int e.defers;
           ]
           @ Array.to_list
               (Array.map (fun ns -> Printf.sprintf "%.1f" (us ns)) e.phase_ns))
         (List.filteri (fun i _ -> i < 10) tail))

let json (a : t) =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\"sampled\": %d, \"dropped\": %d, \"overflow\": %d, \"violations\": %d, \
     \"max_abs_err_ns\": %d, \"phases\": {"
    a.sampled a.dropped a.overflowed a.violations a.max_abs_err_ns;
  List.iteri
    (fun i ca ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": {\"count\": %d" ca.label ca.count;
      Array.iter
        (fun (s : phase_stats) ->
          Printf.bprintf b
            ", \"%s\": {\"p50_ns\": %d, \"p99_ns\": %d, \"p999_ns\": %d, \
             \"mean_ns\": %.1f, \"max_ns\": %d}"
            (Span.phase_name s.phase) s.p50_ns s.p99_ns s.p999_ns s.mean_ns
            s.max_ns)
        ca.phases;
      Buffer.add_string b "}")
    a.classes;
  Buffer.add_string b "}, \"tail\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"rid\": %d, \"op\": \"%s\", \"total_ns\": %d, \"combined_by\": %d, \
         \"defers\": %d"
        e.rid e.t_label e.total_ns e.combined_by e.defers;
      Array.iteri
        (fun p ns ->
          Printf.bprintf b ", \"%s_ns\": %d"
            (Span.phase_name Span.phases.(p))
            ns)
        e.phase_ns;
      Buffer.add_string b "}")
    a.tail;
  Buffer.add_string b "]}";
  Buffer.contents b

(** Perfetto timeline of the tail reservoir: one track per sampled
    request, its phases laid end to end from the scheduled arrival.
    Because the ledger telescopes, the slices tile the request's
    end-to-end window exactly — gaps would be accounting bugs and would
    be visible. *)
let write_tail_perfetto path (a : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "{\"traceEvents\":[\n";
      let first = ref true in
      let sep () =
        if not !first then Buffer.add_string b ",\n";
        first := false
      in
      sep ();
      Buffer.add_string b
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"serve tail anatomy\"}}";
      let t0 =
        List.fold_left (fun acc e -> min acc e.sched_ns) max_int a.tail
      in
      let t0 = if t0 = max_int then 0 else t0 in
      List.iteri
        (fun tid e ->
          sep ();
          Printf.bprintf b
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"req %d %s %.1fus w%d\"}}"
            tid e.rid e.t_label (us e.total_ns) e.combined_by;
          let cursor = ref (e.sched_ns - t0) in
          Array.iteri
            (fun p ns ->
              if ns > 0 then begin
                sep ();
                Printf.bprintf b
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"req\":%d}}"
                  (Span.phase_name Span.phases.(p))
                  (float_of_int !cursor /. 1e3)
                  (float_of_int ns /. 1e3)
                  tid e.rid;
                cursor := !cursor + ns
              end)
            e.phase_ns)
        a.tail;
      Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
      Buffer.output_buffer oc b)

(** Push every sampled request's phase times into the
    [nowa_serve_phase_*_ns] registry histograms. *)
let publish (span : Span.t) =
  let n = Span.allocated span in
  for rid = 0 to n - 1 do
    if Span.measured span rid && Span.finished span rid then
      Array.iteri
        (fun p phase -> Serve_metrics.observe_phase p (Span.phase_ns span rid phase))
        Span.phases
  done
