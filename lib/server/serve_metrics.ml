(** Serving-layer metrics on {!Nowa_obs.Registry.default}, so a
    [--metrics-addr] scrape (or [--metrics-out] dump) during a serve run
    shows request and tail-latency data next to the scheduler counters.

    Latencies are recorded from the request's {e scheduled} arrival
    time, not from when the dispatch loop got around to issuing it —
    the open-loop convention that keeps queueing delay inside the
    measurement (no coordinated omission). *)

let requests =
  Nowa_obs.Registry.counter "nowa_serve_requests_total"
    ~help:"KV requests issued by the load generator (measured phase)."

let dropped =
  Nowa_obs.Registry.counter "nowa_serve_dropped_total"
    ~help:"KV requests rejected by shard admission control."

let handoffs =
  Nowa_obs.Registry.counter "nowa_serve_handoffs_total"
    ~help:"Bucket grants performed for cross-shard transactions."

let read_latency =
  Nowa_obs.Registry.histogram "nowa_serve_read_latency_ns"
    ~help:"Read latency from scheduled arrival to completion (ns)."

let update_latency =
  Nowa_obs.Registry.histogram "nowa_serve_update_latency_ns"
    ~help:"Update latency from scheduled arrival to completion (ns)."

let insert_latency =
  Nowa_obs.Registry.histogram "nowa_serve_insert_latency_ns"
    ~help:"Insert latency from scheduled arrival to completion (ns)."

let scan_latency =
  Nowa_obs.Registry.histogram "nowa_serve_scan_latency_ns"
    ~help:"Scan latency from scheduled arrival to completion (ns)."

let rmw_latency =
  Nowa_obs.Registry.histogram "nowa_serve_rmw_latency_ns"
    ~help:"Read-modify-write latency from scheduled arrival to completion (ns)."

let deadline_misses =
  Nowa_obs.Registry.counter "nowa_serve_deadline_misses_total"
    ~help:
      "Measured requests whose arrival-to-completion latency exceeded \
       the configured SLO deadline."

let latency =
  Nowa_obs.Registry.histogram "nowa_serve_latency_ns"
    ~help:
      "Latency from scheduled arrival to completion, all op classes \
       (ns).  Scraped as cumulative nowa_serve_latency_ns_bucket{le=...} \
       lines for SLO math across mixes."

let latency_of = function
  | Workload.Read -> read_latency
  | Workload.Update -> update_latency
  | Workload.Insert -> insert_latency
  | Workload.Scan -> scan_latency
  | Workload.Rmw -> rmw_latency

let observe cls ns =
  Nowa_obs.Histogram.observe (latency_of cls) ns;
  Nowa_obs.Histogram.observe latency ns

(* Per-phase anatomy histograms, fed by {!Anatomy.publish} after a run
   so a scrape shows where serve time went, not just how much. *)
let phase_hists =
  Array.map
    (fun p ->
      let n = Nowa_trace.Span.phase_name p in
      Nowa_obs.Registry.histogram
        (Printf.sprintf "nowa_serve_phase_%s_ns" n)
        ~help:(Printf.sprintf "Per-request %s phase time (ns)." n))
    Nowa_trace.Span.phases

let observe_phase i ns = Nowa_obs.Histogram.observe phase_hists.(i) ns
