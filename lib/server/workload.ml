(* YCSB-style workload specification and deterministic open-loop
   schedule generation.

   The schedule (operation + scheduled arrival time per request) is
   fully pre-generated from a seed before the run starts, so (a) the
   generator costs nothing on the measurement path and (b) two runs
   with the same spec issue bit-identical request streams — the
   A/B sweeps in `bench serve` compare schedulers, not workloads. *)

type op_class = Read | Update | Insert | Scan | Rmw

let classes = [| Read; Update; Insert; Scan; Rmw |]
let class_name = function
  | Read -> "read"
  | Update -> "update"
  | Insert -> "insert"
  | Scan -> "scan"
  | Rmw -> "rmw"

type key_dist = Zipfian | Latest | Uniform

type mix = {
  mname : string;
  read : float;
  update : float;
  insert : float;
  scan : float;
  rmw : float;
  dist : key_dist;
}

(* The six core YCSB workloads (proportions from the reference
   definitions; workload D reads the latest inserts, E scans). *)
let mixes =
  [
    { mname = "A"; read = 0.5; update = 0.5; insert = 0.; scan = 0.; rmw = 0.; dist = Zipfian };
    { mname = "B"; read = 0.95; update = 0.05; insert = 0.; scan = 0.; rmw = 0.; dist = Zipfian };
    { mname = "C"; read = 1.0; update = 0.; insert = 0.; scan = 0.; rmw = 0.; dist = Zipfian };
    { mname = "D"; read = 0.95; update = 0.; insert = 0.05; scan = 0.; rmw = 0.; dist = Latest };
    { mname = "E"; read = 0.; update = 0.; insert = 0.05; scan = 0.95; rmw = 0.; dist = Zipfian };
    { mname = "F"; read = 0.5; update = 0.; insert = 0.; scan = 0.; rmw = 0.5; dist = Zipfian };
  ]

let find_mix name =
  let u = String.uppercase_ascii name in
  List.find_opt (fun m -> m.mname = u) mixes

type spec = {
  mix : mix;
  records : int;  (* preloaded keys 0..records-1 *)
  rate : float;  (* offered load, requests per second *)
  warmup : int;  (* leading requests excluded from measurement *)
  requests : int;  (* measured requests *)
  theta : float;  (* zipf skew *)
  max_scan : int;  (* max keys per scan *)
  shards : int;
  buckets_per_shard : int;
  seed : int;
}

let default_spec ~mix =
  {
    mix;
    records = 2_000;
    rate = 5_000.0;
    warmup = 500;
    requests = 5_000;
    theta = 0.99;
    max_scan = 8;
    shards = 16;
    buckets_per_shard = 64;
    seed = 42;
  }

type event = { cls : op_class; op : Kv.op; at_ns : int }

(* Zipf ranks are scrambled into the key space so the hot ranks are not
   adjacent integers (YCSB's "scrambled zipfian"); |keyspace| tracks
   inserts so D's "latest" skew chases the newest keys. *)
let generate spec =
  let module Sm = Nowa_util.Splitmix in
  let root = Sm.make ~seed:spec.seed in
  let r_arrival = Sm.split root in
  let r_op = Sm.split root in
  let r_key = Sm.split root in
  let r_val = Sm.split root in
  let zipf = Nowa_util.Zipf.create ~n:spec.records ~theta:spec.theta in
  let next_key = ref spec.records in
  let population () = !next_key in
  let zipf_key () =
    let rank = Nowa_util.Zipf.draw zipf r_key in
    Sm.scramble rank mod population ()
  in
  let pick_key () =
    match spec.mix.dist with
    | Zipfian -> zipf_key ()
    | Uniform -> Sm.int r_key (population ())
    | Latest ->
      let rank = Nowa_util.Zipf.draw zipf r_key in
      let k = population () - 1 - rank in
      if k < 0 then 0 else k
  in
  let fresh_key () =
    let k = !next_key in
    incr next_key;
    k
  in
  let pick_class () =
    let u = Sm.float r_op in
    let m = spec.mix in
    if u < m.read then Read
    else if u < m.read +. m.update then Update
    else if u < m.read +. m.update +. m.insert then Insert
    else if u < m.read +. m.update +. m.insert +. m.scan then Scan
    else Rmw
  in
  let op_of = function
    | Read -> Kv.Get (pick_key ())
    | Update -> Kv.Put (pick_key (), Sm.int r_val 1_000_000)
    | Insert -> Kv.Put (fresh_key (), Sm.int r_val 1_000_000)
    | Rmw -> Kv.Add (pick_key (), 1 + Sm.int r_val 100)
    | Scan ->
      let start = pick_key () in
      let len = 1 + Sm.int r_key spec.max_scan in
      Kv.Multi_get (Array.init len (fun i -> (start + i) mod population ()))
  in
  let gap_ns () =
    let u = Sm.float r_arrival in
    int_of_float (-.log (1.0 -. u) /. spec.rate *. 1e9)
  in
  let clock = ref 0 in
  Array.init (spec.warmup + spec.requests) (fun _ ->
      clock := !clock + gap_ns ();
      let cls = pick_class () in
      { cls; op = op_of cls; at_ns = !clock })
