(* Open-loop load generator over any runtime implementing
   {!Nowa_runtime.Runtime_intf.S}.

   Phase protocol: preload the keyspace sequentially, then replay the
   pre-generated schedule — the first [spec.warmup] requests warm the
   store, the allocator and the workers but are not recorded; the
   remaining [spec.requests] are the measurement; the implicit sync at
   scope exit is the drain (every injected request completes before the
   clock stops).

   Latency is measured from the request's scheduled arrival time, so a
   request that sat behind a backlog is charged its queueing delay even
   though the dispatch loop issued it late (no coordinated omission).

   There used to be an honest caveat here: under a continuation-stealing
   engine the dispatch loop's continuation is what gets stolen, so at
   saturation injection itself lagged and the instantaneous offered rate
   self-throttled.  [?pools:(injector, serve)] closes it (ISSUE 10): the
   dispatch loop runs on a dedicated injector micropool and requests are
   routed to the serve pool with [spawn_unit_on], so no serve worker can
   ever steal — and thereby stall — the injection continuation.  Routed
   requests are not covered by the scope's structured sync, so the drain
   becomes an explicit spin on the admission ledger instead. *)

type class_stats = {
  cls : Workload.op_class option;  (* [None] for the all-classes total *)
  count : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
}

type report = {
  runtime : string;
  workers : int;
  mix : string;
  rate : float;  (* offered, req/s *)
  records : int;
  offered : int;  (* measured-phase requests *)
  completed : int;
  dropped : int;
  handoffs : int;
  elapsed_s : float;  (* first measured arrival -> drain complete *)
  throughput : float;  (* completed / elapsed *)
  per_class : class_stats list;  (* classes with traffic only *)
  total : class_stats;
  slo_ns : int option;  (* per-request deadline, when one was set *)
  deadline_misses : int;  (* measured requests completing past it *)
  span : Nowa_trace.Span.t;  (* per-request ledgers; disabled w/o anatomy *)
  anatomy : Anatomy.t option;  (* phase quantiles + tail, when requested *)
}

let nclasses = Array.length Workload.classes

let class_idx = function
  | Workload.Read -> 0
  | Workload.Update -> 1
  | Workload.Insert -> 2
  | Workload.Scan -> 3
  | Workload.Rmw -> 4

let class_label (s : class_stats) =
  match s.cls with Some c -> Workload.class_name c | None -> "total"

let stats_of_hist cls h =
  let s = Nowa_obs.Histogram.snapshot h in
  {
    cls;
    count = s.Nowa_obs.Histogram.count;
    mean_ns =
      (if s.Nowa_obs.Histogram.count = 0 then nan
       else s.Nowa_obs.Histogram.sum /. float_of_int s.Nowa_obs.Histogram.count);
    p50_ns = Nowa_obs.Histogram.quantile h 0.5;
    p99_ns = Nowa_obs.Histogram.quantile h 0.99;
    p999_ns = Nowa_obs.Histogram.quantile h 0.999;
  }

module Make (R : Nowa_runtime.Runtime_intf.S) = struct
  let run ?conf ?(anatomy = false) ?pools ?slo_ns (spec : Workload.spec) :
      report =
    let events = Workload.generate spec in
    (* One rid per scheduled event (warmup included, flagged unmeasured)
       so the allocation order — and hence every rid — is the schedule
       order: deterministic across runs and runtimes. *)
    let span =
      if anatomy then
        Nowa_trace.Span.create ~capacity:(Array.length events) ()
      else Nowa_trace.Span.disabled
    in
    let kv =
      Kv.create ~shards:spec.shards ~buckets_per_shard:spec.buckets_per_shard
        ~span ()
    in
    (* Convoy verdicts for the health watchdog: polled once per monitor
       scan, a no-op when no monitor is running. *)
    Nowa_runtime.Health.register_source ~name:"kv-convoy" (fun () ->
        Kv.convoys kv);
    (* Standalone (unregistered) histograms so each run starts at zero;
       the long-lived Serve_metrics registry series accumulate too. *)
    let hists =
      Array.map
        (fun c -> Nowa_obs.Histogram.create (Workload.class_name c))
        Workload.classes
    in
    let total_hist = Nowa_obs.Histogram.create "total" in
    let completed = Nowa_util.Padding.atomic 0 in
    let misses = Nowa_util.Padding.atomic 0 in
    (* Admission ledger: a SNZI tracking admitted-but-not-completed
       requests.  The dispatch loop arrives once per chunk
       ([Snzi.arrive_n]: one tree walk amortised over the burst) and each
       request departs at the leaf its chunk used — the leaf index rides
       in the request closure, honouring the depart-at-arrival-leaf
       contract.  [query] after the drain is the conservation check: a
       surviving unit means a request was admitted but never ran. *)
    let inflight = Nowa_sync.Snzi.create ~leaves:8 () in
    let admit_chunk = 32 in
    let t0 = ref 0 and t_done = ref 0 in
    let workers =
      match conf with
      | Some c -> c.Nowa_runtime.Config.workers
      | None -> Nowa_util.Cpu.default_workers ()
    in
    R.run ?conf (fun () ->
        for k = 0 to spec.records - 1 do
          ignore (Kv.exec kv (Kv.Put (k, k)))
        done;
        (* The schedule replay, parameterised over how a request closure
           reaches the workers: scoped spawns in the classic single-pool
           path, [spawn_unit_on] routing in the pooled path. *)
        let dispatch spawn_request =
          t0 := Nowa_util.Clock.now_ns ();
          let base = !t0 in
          Array.iteri
            (fun i (ev : Workload.event) ->
              let target = base + ev.at_ns in
              while Nowa_util.Clock.now_ns () < target do
                Domain.cpu_relax ()
              done;
              let record = i >= spec.warmup in
              let lf = i / admit_chunk mod 8 in
              if i mod admit_chunk = 0 then
                Nowa_sync.Snzi.arrive_n inflight ~leaf:lf
                  (min admit_chunk (Array.length events - i));
              let rid =
                Nowa_trace.Span.alloc span ~cls:(class_idx ev.cls)
                  ~measured:record ~sched_ns:target
              in
              spawn_request (fun () ->
                  (match Kv.exec ~rid kv ev.op with
                  | Kv.Dropped -> () (* counted at the store *)
                  | _ ->
                    (* One clock read for both the histogram sample and
                       the span's Reply close, so the conservation law
                       ties the ledger to this exact latency. *)
                    let now = Nowa_util.Clock.now_ns () in
                    Nowa_trace.Span.finish span rid ~ts:now;
                    Nowa_trace.Current.emit Nowa_trace.Event.Req_done
                      ~arg:0 ~arg2:rid;
                    if record then begin
                      let lat = now - target in
                      Nowa_obs.Histogram.observe hists.(class_idx ev.cls) lat;
                      Nowa_obs.Histogram.observe total_hist lat;
                      Serve_metrics.observe ev.cls lat;
                      Nowa_obs.Counter.incr Serve_metrics.requests;
                      (* Deadline tag: charged against the scheduled
                         arrival, same no-coordinated-omission clock
                         as the latency sample itself. *)
                      (match slo_ns with
                      | Some slo when lat > slo ->
                        Nowa_obs.Counter.incr Serve_metrics.deadline_misses;
                        ignore (Atomic.fetch_and_add misses 1)
                      | _ -> ());
                      ignore (Atomic.fetch_and_add completed 1)
                    end);
                  Nowa_sync.Snzi.depart inflight ~leaf:lf)
            )
            events
        in
        match pools with
        | None ->
          R.scope (fun sc -> dispatch (fun f -> R.spawn_unit sc f));
          (* Scope exit synced: every request has completed. *)
          t_done := Nowa_util.Clock.now_ns ()
        | Some (inject_name, serve_name) ->
          let serve = R.pool serve_name in
          let issue () = dispatch (fun f -> R.spawn_unit_on serve f) in
          (* Run the replay loop on the injector pool.  The root strand
             already lives in the first configured pool; routing through
             spawn_on only when the names differ avoids a self-deadlock
             (awaiting a task routed to the very pool whose one worker is
             blocked in the await). *)
          if String.equal (R.self_pool ()) inject_name then issue ()
          else R.await (R.spawn_on (R.pool inject_name) issue);
          (* Routed requests bypass the scope, so structured sync cannot
             drain them; the admission ledger is the join. *)
          while Nowa_sync.Snzi.query inflight do
            Domain.cpu_relax ()
          done;
          t_done := Nowa_util.Clock.now_ns ());
    if Nowa_sync.Snzi.query inflight then
      failwith "loadgen: admission ledger non-zero after drain";
    Nowa_runtime.Health.unregister_source ~name:"kv-convoy";
    Nowa_obs.Counter.add Serve_metrics.dropped (Kv.dropped kv);
    Nowa_obs.Counter.add Serve_metrics.handoffs (Kv.handoffs kv);
    let measure_start =
      if Array.length events > spec.warmup then
        !t0 + events.(spec.warmup).at_ns
      else !t0
    in
    let elapsed_s =
      Float.max 1e-9 (float_of_int (!t_done - measure_start) /. 1e9)
    in
    let completed = Atomic.get completed in
    let per_class =
      Array.to_list
        (Array.mapi (fun i c -> stats_of_hist (Some c) hists.(i)) Workload.classes)
      |> List.filter (fun s -> s.count > 0)
    in
    {
      runtime = R.name;
      workers;
      mix = spec.mix.Workload.mname;
      rate = spec.rate;
      records = spec.records;
      offered = spec.requests;
      completed;
      dropped = Kv.dropped kv;
      handoffs = Kv.handoffs kv;
      elapsed_s;
      throughput = float_of_int completed /. elapsed_s;
      per_class;
      total = stats_of_hist None total_hist;
      slo_ns;
      deadline_misses = Atomic.get misses;
      span;
      anatomy =
        (if anatomy then begin
           Anatomy.publish span;
           Some (Anatomy.of_span span)
         end
         else None);
    }
end

let us ns = ns /. 1e3

let pp_report (r : report) =
  Printf.printf
    "serve: mix=%s runtime=%s workers=%d rate=%.0f/s records=%d\n"
    r.mix r.runtime r.workers r.rate r.records;
  Printf.printf
    "  offered=%d completed=%d dropped=%d handoffs=%d elapsed=%.3fs throughput=%.0f/s\n"
    r.offered r.completed r.dropped r.handoffs r.elapsed_s r.throughput;
  (match r.slo_ns with
  | Some slo ->
    Printf.printf "  slo=%.1fus deadline_misses=%d (%.3f%%)\n" (float slo /. 1e3)
      r.deadline_misses
      (if r.completed = 0 then 0.0
       else 100.0 *. float r.deadline_misses /. float r.completed)
  | None -> ());
  let row (s : class_stats) =
    [
      class_label s;
      string_of_int s.count;
      Printf.sprintf "%.1f" (us s.mean_ns);
      Printf.sprintf "%.1f" (us s.p50_ns);
      Printf.sprintf "%.1f" (us s.p99_ns);
      Printf.sprintf "%.1f" (us s.p999_ns);
    ]
  in
  Nowa_util.Table.print
    ~header:[ "op"; "count"; "mean us"; "p50 us"; "p99 us"; "p999 us" ]
    (List.map row r.per_class @ [ row r.total ]);
  match r.anatomy with None -> () | Some a -> Anatomy.pp a

let json_of_report (r : report) =
  let b = Buffer.create 512 in
  let stats_json (s : class_stats) =
    Printf.sprintf
      "{\"count\": %d, \"mean_ns\": %.1f, \"p50_ns\": %.1f, \"p99_ns\": %.1f, \"p999_ns\": %.1f}"
      s.count
      (if Float.is_nan s.mean_ns then 0.0 else s.mean_ns)
      (if Float.is_nan s.p50_ns then 0.0 else s.p50_ns)
      (if Float.is_nan s.p99_ns then 0.0 else s.p99_ns)
      (if Float.is_nan s.p999_ns then 0.0 else s.p999_ns)
  in
  Printf.bprintf b
    "{\"mix\": \"%s\", \"runtime\": \"%s\", \"workers\": %d, \"rate_rps\": %.1f, \"records\": %d, \"offered\": %d, \"completed\": %d, \"dropped\": %d, \"handoffs\": %d, \"elapsed_s\": %.4f, \"throughput_rps\": %.1f, \"latency\": {"
    r.mix r.runtime r.workers r.rate r.records r.offered r.completed r.dropped
    r.handoffs r.elapsed_s r.throughput;
  Printf.bprintf b "\"total\": %s" (stats_json r.total);
  List.iter
    (fun s ->
      Printf.bprintf b ", \"%s\": %s" (class_label s) (stats_json s))
    r.per_class;
  Buffer.add_string b "}";
  (match r.slo_ns with
  | Some slo ->
    Printf.bprintf b ", \"slo_ns\": %d, \"deadline_misses\": %d" slo
      r.deadline_misses
  | None -> ());
  (match r.anatomy with
  | None -> ()
  | Some a -> Printf.bprintf b ", \"anatomy\": %s" (Anatomy.json a));
  Buffer.add_string b "}";
  Buffer.contents b
