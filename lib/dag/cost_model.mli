(** Scheduler cost models for the discrete-event simulator.

    Each model prices the runtime-system operations of one of the
    platforms compared in the paper.  Shared mutable structures (a deque,
    a strand counter, the global task queue) are modelled as FIFO
    resources in virtual time: an operation holding a resource for [h] ns
    that arrives at time [t] completes at [max(t, free) + h] — which is
    exactly how a lock convoys and how contended cache lines serialise,
    and is what separates the wait-free from the lock-based curves at
    high worker counts. *)

type scheme =
  | Continuation_stealing
  | Child_stealing of { tied : bool }
  | Central_queue

type t = {
  cname : string;
  scheme : scheme;
  spawn_ns : float;  (** local bookkeeping at a spawn point *)
  push_lock_ns : float;
      (** > 0: the owner's own push/pop goes through its deque resource
          for this long (fully locked deques — the Cilk Plus model) *)
  steal_ns : float;  (** thief-local cost per steal attempt *)
  steal_lock_ns : float;
      (** > 0: a steal attempt holds the victim's deque resource this
          long, {e also when the deque turns out empty} (THE-protocol
          steals); 0 models a CAS-based steal, priced at [atomic_ns] on
          success only *)
  note_steal_lock_ns : float;
      (** > 0: extra hold on the frame resource inside the steal critical
          section (Fibril's Listing-2 coupling) *)
  atomic_ns : float;  (** one atomic RMW on a shared line *)
  join_lock_ns : float;
      (** > 0: joins take the frame lock this long; 0 = wait-free joins
          priced at [atomic_ns] *)
  task_alloc_ns : float;  (** child stealing: per-spawn task allocation *)
  alloc_arenas : int;
      (** > 0: task allocation/freeing goes through one of this many
          shared allocator arenas (the paper's Section II-B point that
          child stealing inherits the dynamic memory allocator's
          behaviour, which often employs locks) *)
  alloc_lock_ns : float;  (** arena critical-section length *)
  resume_ns : float;  (** per successful steal: stack switch / resume *)
  steal_retry_ns : float;  (** idle thief retry interval *)
  lock_contention_penalty : float;
      (** multiplier on a lock's hold time when the lock is found busy —
          models the cache-line ping-pong and backoff of a contended
          lock handoff, which is what makes lock-based coordination
          degrade superlinearly at hundreds of workers *)
  atomic_contention_penalty : float;
      (** same for contended atomic RMWs (smaller: a CAS retries but
          never convoys) *)
  park_after : int;
      (** > 0: a virtual worker parks after this many consecutive failed
          steal rounds once no ready task exists anywhere; its blocked
          span lands in the ledger's [parked] category instead of [idle].
          0 (every stock model) disables parking and leaves simulations
          bit-identical to the pre-parking simulator *)
  park_ns : float;
      (** park-entry cost: sleeper-registry announce plus the full
          re-check sweep, paid before blocking *)
  unpark_ns : float;
      (** wake-up latency from a spawner's signal to the worker stealing
          again (futex wake + scheduler latency) *)
}

val nowa : t
val nowa_the : t
val fibril : t
val cilkplus : t
val tbb : t
val lomp_untied : t
val lomp_tied : t
val gomp : t

val all : t list
val find : string -> t
