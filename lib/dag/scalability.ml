(* Cilkview-style burdened analysis.  This lives in lib/dag rather than
   lib/obs because it is DAG analytics, not live monitoring — and because
   obs sits below the runtime in the library stack (sync and runtime
   export metrics into it), so it cannot depend on the DAG layer. *)

type report = {
  burden_ns : float;
  work_ns : float;
  span_ns : float;
  burdened_span_ns : float;
  parallelism : float;
  burdened_parallelism : float;
  spawns : int;
  syncs : int;
}

type strand = { vertex : int; work_ns : float; share : float }

(* Roughly one steal commit + counter RMW + continuation resume under the
   calibrated Nowa cost model — the virtual cost of migrating a strand. *)
let default_burden_ns = 200.0

let burden_of_cost_model (cm : Cost_model.t) =
  cm.Cost_model.steal_ns +. cm.Cost_model.atomic_ns +. cm.Cost_model.resume_ns

(* Burden is charged on the two edge classes where coordination can
   occur: a spawn's continuation edge (the continuation may be stolen
   and resumed elsewhere) and a child strand's arrival at a sync (the
   join handshake).  The main path's own arrival at its sync is free —
   it owns the frame. *)
let edge_burden dag ~burden_ns u v =
  (if Dag.kind dag u = Dag.Spawn && v = Dag.succ2 dag u then burden_ns
   else 0.0)
  +.
  if Dag.kind dag v = Dag.Sync && not (Dag.is_main_arrival dag u) then
    burden_ns
  else 0.0

(* Kahn traversal over the public DAG API, relaxing longest burdened
   distances; with burden 0 this is exactly [Dag.span]'s computation.
   [prev] remembers the predecessor achieving each vertex's distance so
   the critical path can be walked back from the final vertex. *)
let longest_paths dag ~burden_ns =
  let n = Dag.size dag in
  let dist = Array.make (max n 1) 0.0 in
  let prev = Array.make (max n 1) (-1) in
  let remaining = Array.init (max n 1) (fun v -> Dag.pred_count dag v) in
  let queue = Queue.create () in
  let longest = ref 0.0 in
  if n > 0 && Dag.root dag >= 0 then Queue.push (Dag.root dag) queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = dist.(v) +. Dag.work dag v in
    if d > !longest then longest := d;
    let relax s =
      if s >= 0 then begin
        let d' = d +. edge_burden dag ~burden_ns v s in
        if d' > dist.(s) then begin
          dist.(s) <- d';
          prev.(s) <- v
        end;
        remaining.(s) <- remaining.(s) - 1;
        if remaining.(s) = 0 then Queue.push s queue
      end
    in
    relax (Dag.succ1 dag v);
    relax (Dag.succ2 dag v)
  done;
  (dist, prev, !longest)

let analyze ?(burden_ns = default_burden_ns) dag =
  let work_ns = Dag.total_work dag in
  let span_ns = Dag.span dag in
  let _, _, burdened_span_ns = longest_paths dag ~burden_ns in
  {
    burden_ns;
    work_ns;
    span_ns;
    burdened_span_ns;
    parallelism = (if span_ns > 0.0 then work_ns /. span_ns else nan);
    burdened_parallelism =
      (if burdened_span_ns > 0.0 then work_ns /. burdened_span_ns else nan);
    spawns = Dag.count dag Dag.Spawn;
    syncs = Dag.count dag Dag.Sync;
  }

(* Speedup bounds in the Cilkview style: the upper bound ignores
   scheduling cost entirely (work and span laws); the lower estimate
   assumes perfect load balance of the work but charges the full
   burdened critical path. *)
let bound_upper (r : report) ~workers =
  let p = float_of_int workers in
  if r.span_ns > 0.0 then Float.min p (r.work_ns /. r.span_ns) else p

let bound_lower (r : report) ~workers =
  let p = float_of_int workers in
  if r.work_ns > 0.0 then
    r.work_ns /. ((r.work_ns /. p) +. r.burdened_span_ns)
  else 0.0

let critical_strands ?(burden_ns = default_burden_ns) ?(top = 5) dag =
  let n = Dag.size dag in
  if n = 0 then []
  else begin
    let _, prev, burdened_span = longest_paths dag ~burden_ns in
    (* Walk the critical path back from the sink and keep its strands. *)
    let strands = ref [] in
    let v = ref (Dag.final dag) in
    while !v >= 0 do
      if Dag.kind dag !v = Dag.Strand && Dag.work dag !v > 0.0 then
        strands :=
          {
            vertex = !v;
            work_ns = Dag.work dag !v;
            share =
              (if burdened_span > 0.0 then Dag.work dag !v /. burdened_span
               else 0.0);
          }
          :: !strands;
      v := if !v = Dag.root dag then -1 else prev.(!v)
    done;
    let sorted =
      List.sort (fun a b -> Float.compare b.work_ns a.work_ns) !strands
    in
    List.filteri (fun i _ -> i < top) sorted
  end

let pp ppf (r : report) =
  Format.fprintf ppf
    "@[<v>work=%.0f ns span=%.0f ns burdened-span=%.0f ns (burden=%.0f \
     ns/edge)@,parallelism=%.2f burdened-parallelism=%.2f spawns=%d \
     syncs=%d@]"
    r.work_ns r.span_ns r.burdened_span_ns r.burden_ns r.parallelism
    r.burdened_parallelism r.spawns r.syncs
