type knob =
  | Lock_cost
  | Steal_cost
  | Counter_rmw
  | Spawn_cost
  | Resume_cost
  | Contention
  | Wake_latency
  | Strand_work of int

let model_knobs =
  [ Lock_cost; Steal_cost; Counter_rmw; Spawn_cost; Resume_cost; Contention ]

let knob_name = function
  | Lock_cost -> "lock_cost"
  | Steal_cost -> "steal_cost"
  | Counter_rmw -> "counter_rmw"
  | Spawn_cost -> "spawn_cost"
  | Resume_cost -> "resume_cost"
  | Contention -> "contention"
  | Wake_latency -> "wake_latency"
  | Strand_work v -> Printf.sprintf "strand_%d" v

let apply (m : Cost_model.t) knob ~factor =
  let open Cost_model in
  match knob with
  | Lock_cost ->
    {
      m with
      push_lock_ns = m.push_lock_ns *. factor;
      steal_lock_ns = m.steal_lock_ns *. factor;
      note_steal_lock_ns = m.note_steal_lock_ns *. factor;
      join_lock_ns = m.join_lock_ns *. factor;
      alloc_lock_ns = m.alloc_lock_ns *. factor;
    }
  | Steal_cost -> { m with steal_ns = m.steal_ns *. factor }
  | Counter_rmw -> { m with atomic_ns = m.atomic_ns *. factor }
  | Spawn_cost ->
    {
      m with
      spawn_ns = m.spawn_ns *. factor;
      task_alloc_ns = m.task_alloc_ns *. factor;
    }
  | Resume_cost -> { m with resume_ns = m.resume_ns *. factor }
  | Contention ->
    (* Interpolate the penalties toward 1 (no contention effect); at
       factor 1 this is exactly the original model. *)
    {
      m with
      lock_contention_penalty =
        1.0 +. (factor *. (m.lock_contention_penalty -. 1.0));
      atomic_contention_penalty =
        1.0 +. (factor *. (m.atomic_contention_penalty -. 1.0));
    }
  | Wake_latency ->
    { m with park_ns = m.park_ns *. factor; unpark_ns = m.unpark_ns *. factor }
  | Strand_work _ -> m

type point = { factor : float; makespan_ns : float; gain_pct : float }

type experiment = {
  knob : knob;
  cname : string;
  xworkers : int;
  baseline_ns : float;
  points : point list;
  zero_gain_pct : float;
}

let default_factors = [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 ]

let run ?(seed = 1) ?(factors = default_factors) (cm : Cost_model.t) ~workers
    dag knob =
  let factors = List.sort_uniq compare (0.0 :: 1.0 :: factors) in
  let simulate_at f =
    match knob with
    | Strand_work v ->
      let saved = Dag.work dag v in
      Dag.set_work dag v (saved *. f);
      Fun.protect
        ~finally:(fun () -> Dag.set_work dag v saved)
        (fun () -> (Wsim.simulate ~seed cm ~workers dag).Wsim.makespan_ns)
    | _ ->
      let m = apply cm knob ~factor:f in
      (Wsim.simulate ~seed m ~workers dag).Wsim.makespan_ns
  in
  let raw = List.map (fun f -> (f, simulate_at f)) factors in
  let baseline = List.assoc 1.0 raw in
  let gain m = if baseline > 0.0 then 100.0 *. (baseline -. m) /. baseline else 0.0 in
  let points =
    List.map (fun (f, m) -> { factor = f; makespan_ns = m; gain_pct = gain m }) raw
  in
  {
    knob;
    cname = cm.Cost_model.cname;
    xworkers = workers;
    baseline_ns = baseline;
    points;
    zero_gain_pct = gain (List.assoc 0.0 raw);
  }

let rank ?seed ?factors cm ~workers dag knobs =
  let xs = List.map (run ?seed ?factors cm ~workers dag) knobs in
  List.sort
    (fun a b ->
      match compare b.zero_gain_pct a.zero_gain_pct with
      | 0 -> compare (knob_name a.knob) (knob_name b.knob)
      | c -> c)
    xs

let hottest_strand dag =
  let best = ref (-1) in
  let best_w = ref neg_infinity in
  for v = 0 to Dag.size dag - 1 do
    if Dag.kind dag v = Dag.Strand && Dag.work dag v > !best_w then begin
      best := v;
      best_w := Dag.work dag v
    end
  done;
  if !best >= 0 then Some !best else None

(* -- obs gauges ----------------------------------------------------------- *)

(* Created on first publish (not at module init) so that merely linking
   nowa_dag never populates the default metrics registry. *)
let gauges =
  lazy
    (let g name help = Nowa_obs.Registry.gauge ~help name in
     let per_cat =
       List.map
         (fun c ->
           ( c,
             g
               ("nowa_wsim_ledger_" ^ Wsim.category_name c ^ "_ns")
               "Simulated ns across workers charged to this ledger category." ))
         Wsim.categories
     in
     let per_class =
       List.map
         (fun cls ->
           ( cls,
             g
               ("nowa_wsim_" ^ Wsim.resource_class_name cls ^ "_wait_ns")
               "Simulated queueing delay on this resource class." ))
         [ Wsim.Deque; Wsim.Counter; Wsim.Central; Wsim.Arena ]
     in
     ( per_cat,
       per_class,
       g "nowa_wsim_makespan_ns" "Makespan of the last simulated schedule.",
       g "nowa_wsim_convoys" "Convoys detected in the last simulated schedule.",
       g "nowa_wsim_convoy_serialized_ns"
         "Total queueing delay inside detected convoy windows." ))

let publish (r : Wsim.result) convoys =
  let per_cat, per_class, makespan, nconvoys, serialized = Lazy.force gauges in
  List.iter
    (fun (c, gauge) ->
      Nowa_obs.Gauge.set gauge
        (int_of_float (Wsim.ledger_category r.Wsim.ledger c)))
    per_cat;
  List.iter
    (fun (cls, gauge) ->
      let wait =
        List.fold_left
          (fun acc (s : Wsim.resource_stats) ->
            if s.Wsim.rclass = cls then acc +. s.Wsim.wait_ns else acc)
          0.0 r.Wsim.resources
      in
      Nowa_obs.Gauge.set gauge (int_of_float wait))
    per_class;
  Nowa_obs.Gauge.set makespan (int_of_float r.Wsim.makespan_ns);
  Nowa_obs.Gauge.set nconvoys (List.length convoys);
  Nowa_obs.Gauge.set serialized
    (int_of_float
       (List.fold_left (fun acc (c : Convoy.t) -> acc +. c.Convoy.serialized_ns) 0.0 convoys))

let pp ppf x =
  Format.fprintf ppf "%-12s (%s, %d workers): zeroing it is worth %+.2f%%@\n"
    (knob_name x.knob) x.cname x.xworkers x.zero_gain_pct;
  List.iter
    (fun p ->
      Format.fprintf ppf "    x%-5.2f -> %12.0f ns  (%+.2f%%)@\n" p.factor
        p.makespan_ns p.gain_pct)
    x.points
