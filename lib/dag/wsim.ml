(* -- time-ledger categories ---------------------------------------------- *)

type category =
  | Strand_work
  | Spawn_overhead
  | Deque_access
  | Deque_wait
  | Counter_access
  | Counter_wait
  | Central_access
  | Central_wait
  | Alloc_access
  | Alloc_wait
  | Steal_search
  | Handoff
  | Idle
  | Parked

(* Ledger array indices.  Wait categories sit at [access + 1] so that the
   resource-acquisition path can derive one from the other. *)
let cat_strand = 0
let cat_spawn = 1
let cat_deque = 2
let cat_counter = 4
let cat_central = 6
let cat_alloc = 8
let cat_steal = 10
let cat_handoff = 11
let cat_idle = 12
let cat_parked = 13
let ncat = 14

let categories =
  [
    Strand_work; Spawn_overhead; Deque_access; Deque_wait; Counter_access;
    Counter_wait; Central_access; Central_wait; Alloc_access; Alloc_wait;
    Steal_search; Handoff; Idle; Parked;
  ]

let category_index = function
  | Strand_work -> cat_strand
  | Spawn_overhead -> cat_spawn
  | Deque_access -> cat_deque
  | Deque_wait -> cat_deque + 1
  | Counter_access -> cat_counter
  | Counter_wait -> cat_counter + 1
  | Central_access -> cat_central
  | Central_wait -> cat_central + 1
  | Alloc_access -> cat_alloc
  | Alloc_wait -> cat_alloc + 1
  | Steal_search -> cat_steal
  | Handoff -> cat_handoff
  | Idle -> cat_idle
  | Parked -> cat_parked

let category_name = function
  | Strand_work -> "strand_work"
  | Spawn_overhead -> "spawn_overhead"
  | Deque_access -> "deque_access"
  | Deque_wait -> "deque_wait"
  | Counter_access -> "counter_access"
  | Counter_wait -> "counter_wait"
  | Central_access -> "central_access"
  | Central_wait -> "central_wait"
  | Alloc_access -> "alloc_access"
  | Alloc_wait -> "alloc_wait"
  | Steal_search -> "steal_search"
  | Handoff -> "handoff"
  | Idle -> "idle"
  | Parked -> "parked"

type ledger = {
  horizon_ns : float;
  lpartial : bool;
  by_worker : float array array;
}

let ledger_category l c =
  let i = category_index c in
  Array.fold_left (fun acc row -> acc +. row.(i)) 0.0 l.by_worker

let ledger_total l =
  Array.fold_left
    (fun acc row -> Array.fold_left ( +. ) acc row)
    0.0 l.by_worker

let pp_ledger ppf l =
  let total = ledger_total l in
  let pct v = if total > 0.0 then 100.0 *. v /. total else 0.0 in
  Format.fprintf ppf "time ledger (%d workers x %.3f ms%s):@\n"
    (Array.length l.by_worker) (l.horizon_ns /. 1e6)
    (if l.lpartial then ", PARTIAL" else "");
  List.iter
    (fun c ->
      let v = ledger_category l c in
      if v > 0.0 then
        Format.fprintf ppf "  %-15s %14.0f ns  %5.1f%%@\n" (category_name c) v
          (pct v))
    categories;
  Format.fprintf ppf "  %-15s %14.0f ns  (= workers x horizon: %.0f)" "total"
    total
    (float_of_int (Array.length l.by_worker) *. l.horizon_ns)

(* -- resource accounting -------------------------------------------------- *)

type resource_class = Deque | Counter | Central | Arena

let resource_class_name = function
  | Deque -> "deque"
  | Counter -> "counter"
  | Central -> "central"
  | Arena -> "arena"

type resource_stats = {
  rclass : resource_class;
  acquisitions : int;
  contended : int;
  wait_ns : float;
  hold_ns : float;
}

type acq = {
  aclass : resource_class;
  rid : int;
  aworker : int;
  arrive_ns : float;
  start_ns : float;
  finish_ns : float;
}

type result = {
  workers : int;
  makespan_ns : float;
  t1_ns : float;
  span_ns : float;
  speedup : float;
  steals : int;
  steal_attempts : int;
  events : int;
  truncated : bool;
  ledger : ledger;
  resources : resource_stats list;
  acquisitions : acq array;
}

(* Binary min-heap of events keyed by virtual time.  An event is either
   "strand v finishes on worker w" (v >= 0) or "idle worker w retries
   stealing" (v = -1). *)
module Heap = struct
  type t = {
    mutable times : float array;
    mutable ws : int array;
    mutable vs : int array;
    mutable n : int;
  }

  let create () =
    { times = Array.make 256 0.0; ws = Array.make 256 0; vs = Array.make 256 0; n = 0 }

  let swap h i j =
    let t = h.times.(i) in
    h.times.(i) <- h.times.(j);
    h.times.(j) <- t;
    let w = h.ws.(i) in
    h.ws.(i) <- h.ws.(j);
    h.ws.(j) <- w;
    let v = h.vs.(i) in
    h.vs.(i) <- h.vs.(j);
    h.vs.(j) <- v

  let push h time w v =
    if h.n >= Array.length h.times then begin
      let cap = Array.length h.times in
      h.times <- Array.append h.times (Array.make cap 0.0);
      h.ws <- Array.append h.ws (Array.make cap 0);
      h.vs <- Array.append h.vs (Array.make cap 0)
    end;
    let i = ref h.n in
    h.times.(!i) <- time;
    h.ws.(!i) <- w;
    h.vs.(!i) <- v;
    h.n <- h.n + 1;
    while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let time = h.times.(0) and w = h.ws.(0) and v = h.vs.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.times.(0) <- h.times.(h.n);
        h.ws.(0) <- h.ws.(h.n);
        h.vs.(0) <- h.vs.(h.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.n && h.times.(l) < h.times.(!smallest) then smallest := l;
          if r < h.n && h.times.(r) < h.times.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some (time, w, v)
    end
end

(* Growable log of resource acquisitions (detail mode). *)
module Acqlog = struct
  type t = {
    mutable cls : int array;
    mutable rid : int array;
    mutable wkr : int array;
    mutable arrive : float array;
    mutable start : float array;
    mutable finish : float array;
    mutable n : int;
  }

  let create () =
    {
      cls = Array.make 256 0;
      rid = Array.make 256 0;
      wkr = Array.make 256 0;
      arrive = Array.make 256 0.0;
      start = Array.make 256 0.0;
      finish = Array.make 256 0.0;
      n = 0;
    }

  let push l c r w a s f =
    if l.n >= Array.length l.cls then begin
      let cap = Array.length l.cls in
      l.cls <- Array.append l.cls (Array.make cap 0);
      l.rid <- Array.append l.rid (Array.make cap 0);
      l.wkr <- Array.append l.wkr (Array.make cap 0);
      l.arrive <- Array.append l.arrive (Array.make cap 0.0);
      l.start <- Array.append l.start (Array.make cap 0.0);
      l.finish <- Array.append l.finish (Array.make cap 0.0)
    end;
    let i = l.n in
    l.cls.(i) <- c;
    l.rid.(i) <- r;
    l.wkr.(i) <- w;
    l.arrive.(i) <- a;
    l.start.(i) <- s;
    l.finish.(i) <- f;
    l.n <- i + 1

  let class_of_int = function
    | 0 -> Deque
    | 1 -> Counter
    | 2 -> Central
    | _ -> Arena

  let to_array l =
    Array.init l.n (fun i ->
        {
          aclass = class_of_int l.cls.(i);
          rid = l.rid.(i);
          aworker = l.wkr.(i);
          arrive_ns = l.arrive.(i);
          start_ns = l.start.(i);
          finish_ns = l.finish.(i);
        })
end

let pop_local_ns = 6.0
(* an uncontended pop_bottom on a lock-free deque *)

module Ev = Nowa_trace.Event

let simulate ?(seed = 1) ?(max_events = 200_000_000) ?trace ?(detail = false)
    (cm : Cost_model.t) ~workers dag =
  let open Cost_model in
  let n = Dag.size dag in
  let rng = Nowa_util.Xoshiro.make ~seed in
  (* Virtual-time event rings: the same wait-free buffers the real
     engines fill, timestamped with simulator time, so a simulated
     256-worker schedule goes through the same Perfetto exporter and
     Trace_analysis as a real run. *)
  let rings =
    Array.init workers (fun w ->
        match trace with
        | Some t -> Nowa_trace.Trace.worker t w
        | None -> Nowa_trace.Ring.disabled)
  in
  let emit w t kind arg =
    Nowa_trace.Ring.emit_at rings.(w) ~ts:(int_of_float t) kind arg
  in
  let deques = Array.init workers (fun _ -> Intq.create ()) in
  let central = Intq.create () in
  (* FIFO resources in virtual time: free_at per worker deque, per frame
     (sync vertex), and one for the central queue. *)
  let deque_free = Array.make workers 0.0 in
  let central_free = Array.make 1 0.0 in
  let frame_free = Array.make n 0.0 in
  let arena_free = Array.make (max 1 cm.alloc_arenas) 0.0 in
  let pending = Array.init n (fun v -> Dag.pred_count dag v) in
  (* Continuations actually stolen per frame (the wait-free counter's α):
     frames where this stays 0 have a free explicit sync. *)
  let stolen = Array.make n 0 in
  (* Which frame a stealable vertex belongs to (for the note_steal lock). *)
  let frame_hint = Array.make n (-1) in
  for v = 0 to n - 1 do
    if Dag.kind dag v = Dag.Spawn then begin
      let fr = Dag.frame_of dag v in
      let c = Dag.succ1 dag v and k = Dag.succ2 dag v in
      if c >= 0 then frame_hint.(c) <- fr;
      if k >= 0 then frame_hint.(k) <- fr
    end
  done;
  let retry_interval = Array.make workers cm.steal_retry_ns in
  (* -- elastic idle state ------------------------------------------------
     [ready_tasks] counts tasks sitting in some queue; a virtual worker
     parks only after [park_after] consecutive failed rounds AND when
     this count is zero — mirroring the real registry's announce-then-
     sweep guarantee that no pushed task is stranded with every worker
     asleep.  Parked workers wake FIFO on the next push, paying
     [unpark_ns] of wake latency; their blocked spans land in the
     [parked] ledger category instead of [idle]. *)
  let ready_tasks = ref 0 in
  let fails = Array.make workers 0 in
  let is_parked = Array.make workers false in
  let parked_q = Queue.create () in
  let blocked : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let heap = Heap.create () in
  let events = ref 0 in
  let steals = ref 0 in
  let steal_attempts = ref 0 in
  let finish_time = ref nan in
  (* -- ledger accounting ------------------------------------------------
     Each worker's timeline is a contiguous alternation of accounted
     intervals (every virtual-time advance below calls [account]) and
     idle gaps (filled in when its next event pops).  Intervals are
     buffered per worker until the worker's next heap pop — which is the
     proof they lie before the final makespan — and the tail chains
     still buffered at termination are clamped to the horizon, so the
     flushed ledger partitions [0, horizon] exactly. *)
  let led = Array.make_matrix workers ncat 0.0 in
  let pend_t0 = Array.init workers (fun _ -> Array.make 32 0.0) in
  let pend_t1 = Array.init workers (fun _ -> Array.make 32 0.0) in
  let pend_cat = Array.init workers (fun _ -> Array.make 32 0) in
  let pend_n = Array.make workers 0 in
  (* End of the last accounted interval: the worker's time frontier. *)
  let frontier = Array.make workers 0.0 in
  let account w t0 t1 cat =
    if t1 > t0 then begin
      let k = pend_n.(w) in
      if k >= Array.length pend_cat.(w) then begin
        let cap = Array.length pend_cat.(w) in
        pend_t0.(w) <- Array.append pend_t0.(w) (Array.make cap 0.0);
        pend_t1.(w) <- Array.append pend_t1.(w) (Array.make cap 0.0);
        pend_cat.(w) <- Array.append pend_cat.(w) (Array.make cap 0)
      end;
      pend_t0.(w).(k) <- t0;
      pend_t1.(w).(k) <- t1;
      pend_cat.(w).(k) <- cat;
      pend_n.(w) <- k + 1;
      if t1 > frontier.(w) then frontier.(w) <- t1
    end
  in
  let flush ?(upto = infinity) w =
    let row = led.(w) in
    for i = 0 to pend_n.(w) - 1 do
      let t0 = pend_t0.(w).(i) in
      let t1 = Float.min pend_t1.(w).(i) upto in
      if t1 > t0 then
        row.(pend_cat.(w).(i)) <- row.(pend_cat.(w).(i)) +. (t1 -. t0)
    done;
    pend_n.(w) <- 0
  in
  (* Per-class resource totals (always on) and the optional per-
     acquisition log (detail mode, feeds the convoy detector). *)
  let res_acq = Array.make 4 0 in
  let res_contended = Array.make 4 0 in
  let res_wait = Array.make 4 0.0 in
  let res_hold = Array.make 4 0.0 in
  let acqlog = if detail then Some (Acqlog.create ()) else None in
  (* A busy resource costs [penalty × hold]: contended lock handoffs and
     contended cache lines are much slower than uncontended ones.
     [cat] is the ledger access category ([cat + 1] is its wait
     category); [rc] indexes the resource class (0 deque, 1 counter,
     2 central, 3 arena). *)
  let acquire ~penalty ~cat ~rc ~w free_at i t hold =
    let busy = free_at.(i) > t in
    let hold = if busy then hold *. penalty else hold in
    let g = if busy then free_at.(i) else t in
    if busy then begin
      account w t g (cat + 1);
      res_contended.(rc) <- res_contended.(rc) + 1;
      res_wait.(rc) <- res_wait.(rc) +. (g -. t)
    end;
    account w g (g +. hold) cat;
    res_acq.(rc) <- res_acq.(rc) + 1;
    res_hold.(rc) <- res_hold.(rc) +. hold;
    (match acqlog with
    | Some l -> Acqlog.push l rc i w t g (g +. hold)
    | None -> ());
    free_at.(i) <- g +. hold;
    g +. hold
  in
  let acquire_central ~w t hold =
    acquire ~penalty:cm.lock_contention_penalty ~cat:cat_central ~rc:2 ~w
      central_free 0 t hold
  in
  let lockp = cm.lock_contention_penalty and atomicp = cm.atomic_contention_penalty in
  (* Task allocation through a shared allocator arena (child stealing /
     central queue only). *)
  let allocate w t =
    account w t (t +. cm.task_alloc_ns) cat_spawn;
    let t = t +. cm.task_alloc_ns in
    if cm.alloc_arenas > 0 then
      acquire ~penalty:lockp ~cat:cat_alloc ~rc:3 ~w arena_free
        (w mod cm.alloc_arenas) t cm.alloc_lock_ns
    else t
  in
  let join_hold = if cm.join_lock_ns > 0.0 then cm.join_lock_ns else cm.atomic_ns in
  let schedule_retry w t =
    (* Exponential idle backoff keeps long serial tails from flooding the
       event queue with fruitless steal attempts. *)
    Heap.push heap (t +. retry_interval.(w)) w (-1);
    (* Thieves keep polling at a few-microsecond cadence, as the real
       runtimes do; the cap balances fidelity of steal-lock contention
       against simulation event count. *)
    retry_interval.(w) <- Float.min (retry_interval.(w) *. 2.0) 1_000.0
  in
  let note_progress w =
    retry_interval.(w) <- cm.steal_retry_ns;
    fails.(w) <- 0
  in
  let wake_parked t =
    match Queue.take_opt parked_q with
    | None -> ()
    | Some pw ->
      is_parked.(pw) <- false;
      (* The max keeps intervals disjoint when the waking push sits
         earlier in virtual time than the park entry (chains advance
         local clocks past heap order). *)
      let resume_t = Float.max (t +. cm.unpark_ns) frontier.(pw) in
      account pw frontier.(pw) resume_t cat_parked;
      emit pw resume_t Ev.Unpark 0;
      note_progress pw;
      Heap.push heap resume_t pw (-1)
  in
  let push_task q t v =
    Intq.push_back q v;
    incr ready_tasks;
    wake_parked t
  in
  let idle_retry w t =
    fails.(w) <- fails.(w) + 1;
    if cm.park_after > 0 && fails.(w) >= cm.park_after && !ready_tasks = 0
    then begin
      (* Park entry: pay the announce + full re-check sweep, then block.
         No retry event is scheduled — only a push can wake us. *)
      account w t (t +. cm.park_ns) cat_steal;
      emit w (t +. cm.park_ns) Ev.Park 0;
      is_parked.(w) <- true;
      fails.(w) <- 0;
      Queue.push w parked_q
    end
    else schedule_retry w t
  in
  (* [exec w t v]: worker [w] starts vertex [v] (a strand or spawn; sync
     vertices are entered through [arrive]) at time [t]. *)
  let rec exec w t v =
    match Dag.kind dag v with
    | Dag.Strand ->
      let tf = t +. Dag.work dag v in
      account w t tf cat_strand;
      emit w t Ev.Task_start 0;
      emit w tf Ev.Task_end 0;
      Heap.push heap tf w v
    | Dag.Sync ->
      (* Only reached as the successor of a completed sync (proceeding
         past a join directly into the next phase's sync cannot happen:
         the recorder always interposes a strand). *)
      assert false
    | Dag.Spawn -> begin
      emit w t Ev.Spawn 0;
      account w t (t +. cm.spawn_ns) cat_spawn;
      let t = t +. cm.spawn_ns in
      match cm.scheme with
      | Continuation_stealing ->
        let t =
          if cm.push_lock_ns > 0.0 then
            acquire ~penalty:lockp ~cat:cat_deque ~rc:0 ~w deque_free w t
              cm.push_lock_ns
          else t
        in
        push_task deques.(w) t (Dag.succ2 dag v);
        exec w t (Dag.succ1 dag v)
      | Child_stealing _ ->
        let t = allocate w t in
        let t =
          if cm.push_lock_ns > 0.0 then
            acquire ~penalty:lockp ~cat:cat_deque ~rc:0 ~w deque_free w t
              cm.push_lock_ns
          else t
        in
        push_task deques.(w) t (Dag.succ1 dag v);
        exec w t (Dag.succ2 dag v)
      | Central_queue ->
        let t = allocate w t in
        let t = acquire_central ~w t cm.push_lock_ns in
        push_task central t (Dag.succ1 dag v);
        exec w t (Dag.succ2 dag v)
    end
  (* Strand [prev] on worker [w] ran into sync vertex [s]. *)
  and arrive w t ~prev s =
    match cm.scheme with
    | Continuation_stealing ->
      if Dag.is_main_arrival dag prev then begin
        (* Explicit sync on the main path. *)
        pending.(s) <- pending.(s) - 1;
        let join_penalty = if cm.join_lock_ns > 0.0 then lockp else atomicp in
        if pending.(s) = 0 then begin
          (* Restore N_r (one frame-resource op) unless nothing was ever
             stolen, in which case the sync is entirely free. *)
          let t =
            if stolen.(s) > 0 then
              acquire ~penalty:join_penalty ~cat:cat_counter ~rc:1 ~w
                frame_free s t join_hold
            else t
          in
          exec w t (Dag.succ1 dag s)
        end
        else begin
          (* Publish the continuation and restore N_r; then suspend. *)
          let t =
            acquire ~penalty:join_penalty ~cat:cat_counter ~rc:1 ~w frame_free
              s t join_hold
          in
          emit w t Ev.Suspend 0;
          steal_round w t
        end
      end
      else begin
        (* A child returned: pop the own deque bottom (Figure 5 line 4). *)
        match Intq.pop_back deques.(w) with
        | -1 ->
          (* Continuation stolen: implicit sync (one frame op). *)
          emit w t Ev.Lost_continuation 0;
          let join_penalty = if cm.join_lock_ns > 0.0 then lockp else atomicp in
          let t =
            acquire ~penalty:join_penalty ~cat:cat_counter ~rc:1 ~w frame_free
              s t join_hold
          in
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then begin
            (* Last joiner resumes the suspended frame. *)
            emit w t Ev.Resume 0;
            account w t (t +. cm.resume_ns) cat_handoff;
            exec w (t +. cm.resume_ns) (Dag.succ1 dag s)
          end
          else steal_round w t
        | k ->
          (* Not stolen: by the top-down stealing invariant [k] is this
             very frame's continuation; discard-and-proceed, no counter
             operation at all. *)
          decr ready_tasks;
          pending.(s) <- pending.(s) - 1;
          let t =
            if cm.push_lock_ns > 0.0 then
              acquire ~penalty:lockp ~cat:cat_deque ~rc:0 ~w deque_free w t
                cm.push_lock_ns
            else begin
              account w t (t +. pop_local_ns) cat_deque;
              t +. pop_local_ns
            end
          in
          exec w t k
      end
    | Child_stealing _ | Central_queue ->
      let tied =
        match cm.scheme with Child_stealing { tied } -> tied | _ -> false
      in
      let main = Dag.is_main_arrival dag prev in
      (* Child tasks pay a join decrement; the parent's taskwait token is
         free until it has to wait. *)
      let t =
        if main then t
        else
          acquire ~penalty:atomicp ~cat:cat_counter ~rc:1 ~w frame_free s t
            cm.atomic_ns
      in
      pending.(s) <- pending.(s) - 1;
      if pending.(s) = 0 then begin
        (match Hashtbl.find_opt blocked s with
        | Some ws ->
          Hashtbl.remove blocked s;
          List.iter
            (fun bw ->
              note_progress bw;
              Heap.push heap t bw (-1))
            ws
        | None -> ());
        exec w t (Dag.succ1 dag s)
      end
      else begin
        (* Help: own tasks first (taskwait / task end alike). *)
        if main then emit w t Ev.Suspend 0;
        match pop_own w t with
        | Some (t', v) -> exec w t' v
        | None ->
          if main && tied && pending.(s) > 0 then
            (* Tied tasks: a waiting thread may not steal. *)
            Hashtbl.replace blocked s
              (w :: Option.value ~default:[] (Hashtbl.find_opt blocked s))
          else steal_round w t
      end
  and pop_own w t =
    match Intq.pop_back deques.(w) with
    | -1 -> None
    | v ->
      decr ready_tasks;
      let t =
        if cm.push_lock_ns > 0.0 then
          acquire ~penalty:lockp ~cat:cat_deque ~rc:0 ~w deque_free w t
            cm.push_lock_ns
        else begin
          account w t (t +. pop_local_ns) cat_deque;
          t +. pop_local_ns
        end
      in
      account w t (t +. cm.resume_ns) cat_handoff;
      Some (t +. cm.resume_ns, v)
  and steal_round w t =
    incr steal_attempts;
    match cm.scheme with
    | Central_queue -> begin
      emit w t Ev.Steal_attempt 0;
      let t = acquire_central ~w t cm.steal_lock_ns in
      match Intq.pop_front central with
      | -1 ->
        emit w t Ev.Steal_abort 0;
        idle_retry w t
      | v ->
        decr ready_tasks;
        incr steals;
        emit w t Ev.Steal_commit 0;
        note_progress w;
        account w t (t +. cm.resume_ns) cat_handoff;
        exec w (t +. cm.resume_ns) v
    end
    | Continuation_stealing | Child_stealing _ -> begin
      (* Own deque top first (the engine's self-steal), then one random
         victim per round. *)
      let try_victim victim t =
        if cm.steal_lock_ns > 0.0 then begin
          (* THE-style: the lock is taken before the emptiness check, so
             even failed attempts occupy the victim's deque. *)
          let t =
            acquire ~penalty:lockp ~cat:cat_deque ~rc:0 ~w deque_free victim t
              cm.steal_lock_ns
          in
          match Intq.pop_front deques.(victim) with
          | -1 -> (t, -1)
          | v ->
            decr ready_tasks;
            let t =
              if cm.note_steal_lock_ns > 0.0 && frame_hint.(v) >= 0 then
                acquire ~penalty:lockp ~cat:cat_counter ~rc:1 ~w frame_free
                  frame_hint.(v) t cm.note_steal_lock_ns
              else t
            in
            (t, v)
        end
        else begin
          match Intq.pop_front deques.(victim) with
          | -1 -> (t, -1)
          | v ->
            decr ready_tasks;
            (* CAS commit on the victim's top pointer. *)
            let t =
              acquire ~penalty:atomicp ~cat:cat_deque ~rc:0 ~w deque_free
                victim t cm.atomic_ns
            in
            (t, v)
        end
      in
      let traced_attempt victim t =
        emit w t Ev.Steal_attempt victim;
        let t', v = try_victim victim t in
        emit w t' (if v >= 0 then Ev.Steal_commit else Ev.Steal_abort) victim;
        (t', v)
      in
      account w t (t +. cm.steal_ns) cat_steal;
      let t = t +. cm.steal_ns in
      let t, v = traced_attempt w t in
      let t, v =
        if v >= 0 || workers = 1 then (t, v)
        else begin
          let victim = Nowa_util.Xoshiro.int rng workers in
          let victim = if victim = w then (victim + 1) mod workers else victim in
          account w t (t +. cm.steal_ns) cat_steal;
          traced_attempt victim (t +. cm.steal_ns)
        end
      in
      if v >= 0 then begin
        incr steals;
        if frame_hint.(v) >= 0 then stolen.(frame_hint.(v)) <- stolen.(frame_hint.(v)) + 1;
        note_progress w;
        account w t (t +. cm.resume_ns) cat_handoff;
        exec w (t +. cm.resume_ns) v
      end
      else idle_retry w t
    end
  in
  (* Launch: worker 0 starts at the root; the rest go thieving. *)
  exec 0 0.0 (Dag.root dag);
  for w = 1 to workers - 1 do
    Heap.push heap (float_of_int w *. 60.0) w (-1)
  done;
  let truncated = ref false in
  let running = ref true in
  while !running do
    match Heap.pop heap with
    | None -> running := false
    | Some (t, w, v) ->
      incr events;
      if !events > max_events then begin
        truncated := true;
        running := false
      end
      else begin
        (* The worker's previous chain is complete and this pop proves
           every buffered interval precedes the final makespan: flush it,
           then charge the gap since its frontier as idle time. *)
        flush w;
        account w frontier.(w) t cat_idle;
        if v = -1 then steal_round w t
        else begin
          (* Strand [v] finished on [w]. *)
          let s = Dag.succ1 dag v in
          if s = -1 then begin
            finish_time := t;
            running := false
          end
          else
            match Dag.kind dag s with
            | Dag.Sync -> arrive w t ~prev:v s
            | Dag.Strand | Dag.Spawn -> exec w t s
        end
      end
  done;
  let t1 = Dag.total_work dag in
  let finished = not (Float.is_nan !finish_time) in
  (* Horizon: the completion time, or — when the event cap cut the run
     short — the furthest instant any worker accounted.  Tail chains
     still buffered are clamped to it (a thief probing past the finish
     keeps probing past the join in a real runtime too; those
     nanoseconds fall outside the measured window). *)
  let horizon =
    if finished then !finish_time
    else Array.fold_left Float.max 0.0 frontier
  in
  for w = 0 to workers - 1 do
    flush ~upto:horizon w;
    (* Fill each worker's timeline out to the horizon with idle time so
       the rows partition [0, horizon] exactly. *)
    let covered = Float.min frontier.(w) horizon in
    if horizon > covered then begin
      (* Workers still parked at the finish stay parked to the horizon. *)
      let cat = if is_parked.(w) then cat_parked else cat_idle in
      led.(w).(cat) <- led.(w).(cat) +. (horizon -. covered)
    end
  done;
  let ledger =
    { horizon_ns = horizon; lpartial = not finished; by_worker = led }
  in
  let resources =
    List.mapi
      (fun i rclass ->
        {
          rclass;
          acquisitions = res_acq.(i);
          contended = res_contended.(i);
          wait_ns = res_wait.(i);
          hold_ns = res_hold.(i);
        })
      [ Deque; Counter; Central; Arena ]
  in
  let makespan = if finished || !truncated then horizon else infinity in
  {
    workers;
    makespan_ns = makespan;
    t1_ns = t1;
    span_ns = Dag.span dag;
    speedup = t1 /. makespan;
    steals = !steals;
    steal_attempts = !steal_attempts;
    events = !events;
    truncated = !truncated;
    ledger;
    resources;
    acquisitions =
      (match acqlog with Some l -> Acqlog.to_array l | None -> [||]);
  }
