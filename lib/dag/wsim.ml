type result = {
  workers : int;
  makespan_ns : float;
  t1_ns : float;
  span_ns : float;
  speedup : float;
  steals : int;
  steal_attempts : int;
  events : int;
  truncated : bool;
}

(* Binary min-heap of events keyed by virtual time.  An event is either
   "strand v finishes on worker w" (v >= 0) or "idle worker w retries
   stealing" (v = -1). *)
module Heap = struct
  type t = {
    mutable times : float array;
    mutable ws : int array;
    mutable vs : int array;
    mutable n : int;
  }

  let create () =
    { times = Array.make 256 0.0; ws = Array.make 256 0; vs = Array.make 256 0; n = 0 }

  let swap h i j =
    let t = h.times.(i) in
    h.times.(i) <- h.times.(j);
    h.times.(j) <- t;
    let w = h.ws.(i) in
    h.ws.(i) <- h.ws.(j);
    h.ws.(j) <- w;
    let v = h.vs.(i) in
    h.vs.(i) <- h.vs.(j);
    h.vs.(j) <- v

  let push h time w v =
    if h.n >= Array.length h.times then begin
      let cap = Array.length h.times in
      h.times <- Array.append h.times (Array.make cap 0.0);
      h.ws <- Array.append h.ws (Array.make cap 0);
      h.vs <- Array.append h.vs (Array.make cap 0)
    end;
    let i = ref h.n in
    h.times.(!i) <- time;
    h.ws.(!i) <- w;
    h.vs.(!i) <- v;
    h.n <- h.n + 1;
    while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let time = h.times.(0) and w = h.ws.(0) and v = h.vs.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.times.(0) <- h.times.(h.n);
        h.ws.(0) <- h.ws.(h.n);
        h.vs.(0) <- h.vs.(h.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.n && h.times.(l) < h.times.(!smallest) then smallest := l;
          if r < h.n && h.times.(r) < h.times.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some (time, w, v)
    end
end

let pop_local_ns = 6.0
(* an uncontended pop_bottom on a lock-free deque *)

module Ev = Nowa_trace.Event

let simulate ?(seed = 1) ?(max_events = 200_000_000) ?trace (cm : Cost_model.t)
    ~workers dag =
  let open Cost_model in
  let n = Dag.size dag in
  let rng = Nowa_util.Xoshiro.make ~seed in
  (* Virtual-time event rings: the same wait-free buffers the real
     engines fill, timestamped with simulator time, so a simulated
     256-worker schedule goes through the same Perfetto exporter and
     Trace_analysis as a real run. *)
  let rings =
    Array.init workers (fun w ->
        match trace with
        | Some t -> Nowa_trace.Trace.worker t w
        | None -> Nowa_trace.Ring.disabled)
  in
  let emit w t kind arg =
    Nowa_trace.Ring.emit_at rings.(w) ~ts:(int_of_float t) kind arg
  in
  let deques = Array.init workers (fun _ -> Intq.create ()) in
  let central = Intq.create () in
  (* FIFO resources in virtual time: free_at per worker deque, per frame
     (sync vertex), and one for the central queue. *)
  let deque_free = Array.make workers 0.0 in
  let central_free = ref 0.0 in
  let frame_free = Array.make n 0.0 in
  let arena_free = Array.make (max 1 cm.alloc_arenas) 0.0 in
  let pending = Array.init n (fun v -> Dag.pred_count dag v) in
  (* Continuations actually stolen per frame (the wait-free counter's α):
     frames where this stays 0 have a free explicit sync. *)
  let stolen = Array.make n 0 in
  (* Which frame a stealable vertex belongs to (for the note_steal lock). *)
  let frame_hint = Array.make n (-1) in
  for v = 0 to n - 1 do
    if Dag.kind dag v = Dag.Spawn then begin
      let fr = Dag.frame_of dag v in
      let c = Dag.succ1 dag v and k = Dag.succ2 dag v in
      if c >= 0 then frame_hint.(c) <- fr;
      if k >= 0 then frame_hint.(k) <- fr
    end
  done;
  let retry_interval = Array.make workers cm.steal_retry_ns in
  let blocked : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let heap = Heap.create () in
  let events = ref 0 in
  let steals = ref 0 in
  let steal_attempts = ref 0 in
  let finish_time = ref nan in
  (* A busy resource costs [penalty × hold]: contended lock handoffs and
     contended cache lines are much slower than uncontended ones. *)
  let acquire ~penalty free_at i t hold =
    let busy = free_at.(i) > t in
    let hold = if busy then hold *. penalty else hold in
    let g = if busy then free_at.(i) else t in
    free_at.(i) <- g +. hold;
    g +. hold
  in
  let acquire_central t hold =
    let busy = !central_free > t in
    let hold = if busy then hold *. cm.lock_contention_penalty else hold in
    let g = if busy then !central_free else t in
    central_free := g +. hold;
    g +. hold
  in
  let lockp = cm.lock_contention_penalty and atomicp = cm.atomic_contention_penalty in
  (* Task allocation through a shared allocator arena (child stealing /
     central queue only). *)
  let allocate w t =
    let t = t +. cm.task_alloc_ns in
    if cm.alloc_arenas > 0 then
      acquire ~penalty:lockp arena_free (w mod cm.alloc_arenas) t cm.alloc_lock_ns
    else t
  in
  let join_hold = if cm.join_lock_ns > 0.0 then cm.join_lock_ns else cm.atomic_ns in
  let schedule_retry w t =
    (* Exponential idle backoff keeps long serial tails from flooding the
       event queue with fruitless steal attempts. *)
    Heap.push heap (t +. retry_interval.(w)) w (-1);
    (* Thieves keep polling at a few-microsecond cadence, as the real
       runtimes do; the cap balances fidelity of steal-lock contention
       against simulation event count. *)
    retry_interval.(w) <- Float.min (retry_interval.(w) *. 2.0) 1_000.0
  in
  let note_progress w = retry_interval.(w) <- cm.steal_retry_ns in
  (* [exec w t v]: worker [w] starts vertex [v] (a strand or spawn; sync
     vertices are entered through [arrive]) at time [t]. *)
  let rec exec w t v =
    match Dag.kind dag v with
    | Dag.Strand ->
      let tf = t +. Dag.work dag v in
      emit w t Ev.Task_start 0;
      emit w tf Ev.Task_end 0;
      Heap.push heap tf w v
    | Dag.Sync ->
      (* Only reached as the successor of a completed sync (proceeding
         past a join directly into the next phase's sync cannot happen:
         the recorder always interposes a strand). *)
      assert false
    | Dag.Spawn -> begin
      emit w t Ev.Spawn 0;
      let t = t +. cm.spawn_ns in
      match cm.scheme with
      | Continuation_stealing ->
        let t =
          if cm.push_lock_ns > 0.0 then
            acquire ~penalty:lockp deque_free w t cm.push_lock_ns
          else t
        in
        Intq.push_back deques.(w) (Dag.succ2 dag v);
        exec w t (Dag.succ1 dag v)
      | Child_stealing _ ->
        let t = allocate w t in
        let t =
          if cm.push_lock_ns > 0.0 then
            acquire ~penalty:lockp deque_free w t cm.push_lock_ns
          else t
        in
        Intq.push_back deques.(w) (Dag.succ1 dag v);
        exec w t (Dag.succ2 dag v)
      | Central_queue ->
        let t = allocate w t in
        let t = acquire_central t cm.push_lock_ns in
        Intq.push_back central (Dag.succ1 dag v);
        exec w t (Dag.succ2 dag v)
    end
  (* Strand [prev] on worker [w] ran into sync vertex [s]. *)
  and arrive w t ~prev s =
    match cm.scheme with
    | Continuation_stealing ->
      if Dag.is_main_arrival dag prev then begin
        (* Explicit sync on the main path. *)
        pending.(s) <- pending.(s) - 1;
        let join_penalty = if cm.join_lock_ns > 0.0 then lockp else atomicp in
        if pending.(s) = 0 then begin
          (* Restore N_r (one frame-resource op) unless nothing was ever
             stolen, in which case the sync is entirely free. *)
          let t =
            if stolen.(s) > 0 then
              acquire ~penalty:join_penalty frame_free s t join_hold
            else t
          in
          exec w t (Dag.succ1 dag s)
        end
        else begin
          (* Publish the continuation and restore N_r; then suspend. *)
          let t = acquire ~penalty:join_penalty frame_free s t join_hold in
          emit w t Ev.Suspend 0;
          steal_round w t
        end
      end
      else begin
        (* A child returned: pop the own deque bottom (Figure 5 line 4). *)
        match Intq.pop_back deques.(w) with
        | -1 ->
          (* Continuation stolen: implicit sync (one frame op). *)
          emit w t Ev.Lost_continuation 0;
          let join_penalty = if cm.join_lock_ns > 0.0 then lockp else atomicp in
          let t = acquire ~penalty:join_penalty frame_free s t join_hold in
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then begin
            (* Last joiner resumes the suspended frame. *)
            emit w t Ev.Resume 0;
            exec w (t +. cm.resume_ns) (Dag.succ1 dag s)
          end
          else steal_round w t
        | k ->
          (* Not stolen: by the top-down stealing invariant [k] is this
             very frame's continuation; discard-and-proceed, no counter
             operation at all. *)
          pending.(s) <- pending.(s) - 1;
          let t =
            if cm.push_lock_ns > 0.0 then
              acquire ~penalty:lockp deque_free w t cm.push_lock_ns
            else t +. pop_local_ns
          in
          exec w t k
      end
    | Child_stealing _ | Central_queue ->
      let tied =
        match cm.scheme with Child_stealing { tied } -> tied | _ -> false
      in
      let main = Dag.is_main_arrival dag prev in
      (* Child tasks pay a join decrement; the parent's taskwait token is
         free until it has to wait. *)
      let t =
        if main then t
        else acquire ~penalty:atomicp frame_free s t cm.atomic_ns
      in
      pending.(s) <- pending.(s) - 1;
      if pending.(s) = 0 then begin
        (match Hashtbl.find_opt blocked s with
        | Some ws ->
          Hashtbl.remove blocked s;
          List.iter
            (fun bw ->
              note_progress bw;
              Heap.push heap t bw (-1))
            ws
        | None -> ());
        exec w t (Dag.succ1 dag s)
      end
      else begin
        (* Help: own tasks first (taskwait / task end alike). *)
        if main then emit w t Ev.Suspend 0;
        match pop_own w t with
        | Some (t', v) -> exec w t' v
        | None ->
          if main && tied && pending.(s) > 0 then
            (* Tied tasks: a waiting thread may not steal. *)
            Hashtbl.replace blocked s
              (w :: Option.value ~default:[] (Hashtbl.find_opt blocked s))
          else steal_round w t
      end
  and pop_own w t =
    match Intq.pop_back deques.(w) with
    | -1 -> None
    | v ->
      let t =
        if cm.push_lock_ns > 0.0 then
          acquire ~penalty:lockp deque_free w t cm.push_lock_ns
        else t +. pop_local_ns
      in
      Some (t +. cm.resume_ns, v)
  and steal_round w t =
    incr steal_attempts;
    match cm.scheme with
    | Central_queue -> begin
      emit w t Ev.Steal_attempt 0;
      let t = acquire_central t cm.steal_lock_ns in
      match Intq.pop_front central with
      | -1 ->
        emit w t Ev.Steal_abort 0;
        schedule_retry w t
      | v ->
        incr steals;
        emit w t Ev.Steal_commit 0;
        note_progress w;
        exec w (t +. cm.resume_ns) v
    end
    | Continuation_stealing | Child_stealing _ -> begin
      (* Own deque top first (the engine's self-steal), then one random
         victim per round. *)
      let try_victim victim t =
        if cm.steal_lock_ns > 0.0 then begin
          (* THE-style: the lock is taken before the emptiness check, so
             even failed attempts occupy the victim's deque. *)
          let t = acquire ~penalty:lockp deque_free victim t cm.steal_lock_ns in
          match Intq.pop_front deques.(victim) with
          | -1 -> (t, -1)
          | v ->
            let t =
              if cm.note_steal_lock_ns > 0.0 && frame_hint.(v) >= 0 then
                acquire ~penalty:lockp frame_free frame_hint.(v) t
                  cm.note_steal_lock_ns
              else t
            in
            (t, v)
        end
        else begin
          match Intq.pop_front deques.(victim) with
          | -1 -> (t, -1)
          | v ->
            (* CAS commit on the victim's top pointer. *)
            let t = acquire ~penalty:atomicp deque_free victim t cm.atomic_ns in
            (t, v)
        end
      in
      let traced_attempt victim t =
        emit w t Ev.Steal_attempt victim;
        let t', v = try_victim victim t in
        emit w t' (if v >= 0 then Ev.Steal_commit else Ev.Steal_abort) victim;
        (t', v)
      in
      let t = t +. cm.steal_ns in
      let t, v = traced_attempt w t in
      let t, v =
        if v >= 0 || workers = 1 then (t, v)
        else begin
          let victim = Nowa_util.Xoshiro.int rng workers in
          let victim = if victim = w then (victim + 1) mod workers else victim in
          traced_attempt victim (t +. cm.steal_ns)
        end
      in
      if v >= 0 then begin
        incr steals;
        if frame_hint.(v) >= 0 then stolen.(frame_hint.(v)) <- stolen.(frame_hint.(v)) + 1;
        note_progress w;
        exec w (t +. cm.resume_ns) v
      end
      else schedule_retry w t
    end
  in
  (* Launch: worker 0 starts at the root; the rest go thieving. *)
  exec 0 0.0 (Dag.root dag);
  for w = 1 to workers - 1 do
    Heap.push heap (float_of_int w *. 60.0) w (-1)
  done;
  let truncated = ref false in
  let running = ref true in
  while !running do
    match Heap.pop heap with
    | None -> running := false
    | Some (t, w, v) ->
      incr events;
      if !events > max_events then begin
        truncated := true;
        running := false
      end
      else if v = -1 then steal_round w t
      else begin
        (* Strand [v] finished on [w]. *)
        let s = Dag.succ1 dag v in
        if s = -1 then begin
          finish_time := t;
          running := false
        end
        else
          match Dag.kind dag s with
          | Dag.Sync -> arrive w t ~prev:v s
          | Dag.Strand | Dag.Spawn -> exec w t s
      end
  done;
  let t1 = Dag.total_work dag in
  let makespan = if Float.is_nan !finish_time then infinity else !finish_time in
  {
    workers;
    makespan_ns = makespan;
    t1_ns = t1;
    span_ns = Dag.span dag;
    speedup = t1 /. makespan;
    steals = !steals;
    steal_attempts = !steal_attempts;
    events = !events;
    truncated = !truncated;
  }
