(** Cilkview-style scalability profiler (Burdened DAGs; He, Leiserson &
    Leiserson, "The Cilkview scalability analyzer").

    Work/span analysis answers "how much parallelism is there?";
    {e burdened} analysis answers "how much survives scheduling cost?".
    Every edge on which coordination can occur — a spawn's continuation
    edge (stealable) and a child strand's arrival at a sync (the join
    handshake) — is charged a constant [burden_ns], and the critical
    path is recomputed over the burdened DAG.  Burdened parallelism
    [T₁ / burdened-span] is the scalability ceiling a work-stealing
    scheduler can actually approach; a workload whose plain parallelism
    looks ample but whose burdened parallelism collapses is
    spawn-granularity-bound, not algorithm-bound.

    With [burden_ns = 0] the burdened span equals {!Dag.span} exactly
    (same traversal); it is monotonically non-decreasing in the
    burden. *)

type report = {
  burden_ns : float;  (** the per-edge burden charged *)
  work_ns : float;  (** T₁ *)
  span_ns : float;  (** T∞, unburdened *)
  burdened_span_ns : float;
  parallelism : float;  (** T₁ / T∞ *)
  burdened_parallelism : float;  (** T₁ / burdened span *)
  spawns : int;
  syncs : int;
}

type strand = {
  vertex : int;  (** DAG vertex id *)
  work_ns : float;
  share : float;  (** fraction of the burdened span this strand accounts for *)
}

val default_burden_ns : float
(** 200 ns — roughly steal + counter RMW + resume under the calibrated
    Nowa cost model ({!burden_of_cost_model} on {!Cost_model.nowa}). *)

val burden_of_cost_model : Cost_model.t -> float
(** [steal_ns + atomic_ns + resume_ns]: the model's strand-migration cost. *)

val analyze : ?burden_ns:float -> Dag.t -> report

val bound_upper : report -> workers:int -> float
(** Work/span-law speedup ceiling: [min P (T₁/T∞)]. *)

val bound_lower : report -> workers:int -> float
(** Burdened speedup estimate: [T₁ / (T₁/P + burdened span)] — what a
    greedy work-stealing scheduler should at least achieve; measured
    speedups falling below it indicate overhead the DAG does not
    capture. *)

val critical_strands : ?burden_ns:float -> ?top:int -> Dag.t -> strand list
(** The [top] (default 5) heaviest strands on the {e burdened} critical
    path, heaviest first — the program points to shorten or parallelise
    when burdened parallelism is the bottleneck. *)

val pp : Format.formatter -> report -> unit
