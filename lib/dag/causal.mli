(** Causal what-if profiling by virtual-speedup experiments.

    Coz-style causal profilers answer "what would speeding this up buy?"
    by sampling and slowing everything else down; because our schedules
    come from a deterministic discrete-event simulator ({!Wsim}), we can
    answer the same question {e exactly}: scale one cost-model component
    (or one hot strand's work) by a factor, re-simulate with the same
    seed, and read the makespan delta off a controlled experiment.  The
    headline use is predictive: zeroing [Lock_cost] under a lock-based
    model predicts the Nowa-vs-lock speedup delta before the ablation
    confirms it, and quantifies the synchronization-overhead
    decomposition Rito & Paulino treat analytically.

    Caveat for [Lock_cost] at factor 0 exactly: a model whose
    [steal_lock_ns]/[join_lock_ns] reach 0 switches to the CAS-based
    (wait-free) protocol pricing, so the sensitivity curve may step at
    the origin — that step {e is} the lock-vs-wait-free delta. *)

type knob =
  | Lock_cost
      (** every lock critical section: push, steal, note-steal, join,
          allocator arena *)
  | Steal_cost  (** thief-local probe cost *)
  | Counter_rmw  (** atomic RMW on a shared line (the strand counter) *)
  | Spawn_cost  (** spawn bookkeeping and task allocation *)
  | Resume_cost  (** stack switch / resume *)
  | Contention
      (** contention penalties, interpolated toward 1 (no penalty) *)
  | Wake_latency
      (** park-entry and unpark (wake-up) latency of the elastic idle
          path.  Only moves the makespan under models with
          [Cost_model.park_after > 0]; not in {!model_knobs} so stock
          rankings are unchanged *)
  | Strand_work of int  (** one strand's recorded work *)

val model_knobs : knob list
(** The cost-model knobs, excluding [Strand_work] (per-strand, needs a
    vertex) and [Wake_latency] (inert unless parking is enabled). *)

val knob_name : knob -> string

val apply : Cost_model.t -> knob -> factor:float -> Cost_model.t
(** Scale the knob's components by [factor] ([Strand_work] leaves the
    model unchanged — the DAG is rescaled inside {!run} instead).
    [factor = 1.0] returns a field-for-field identical model. *)

type point = {
  factor : float;
  makespan_ns : float;
  gain_pct : float;  (** makespan reduction vs. factor 1.0, in percent *)
}

type experiment = {
  knob : knob;
  cname : string;  (** cost model the experiment ran under *)
  xworkers : int;
  baseline_ns : float;  (** makespan at factor 1.0 *)
  points : point list;  (** ascending factor; 0.0 and 1.0 always present *)
  zero_gain_pct : float;
      (** the virtual speedup of removing this cost entirely — the
          sensitivity ranking statistic *)
}

val default_factors : float list
(** [0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0] *)

val run :
  ?seed:int ->
  ?factors:float list ->
  Cost_model.t ->
  workers:int ->
  Dag.t ->
  knob ->
  experiment
(** One sensitivity curve.  Every simulation uses the same [seed], so
    the only difference between points is the perturbed cost.
    [Strand_work v] temporarily rescales vertex [v]'s work and restores
    it before returning. *)

val rank :
  ?seed:int ->
  ?factors:float list ->
  Cost_model.t ->
  workers:int ->
  Dag.t ->
  knob list ->
  experiment list
(** Experiments sorted by [zero_gain_pct], largest first: "making the
    strand counter wait-free is worth X%, shaving spawn overhead is
    worth Y%". *)

val hottest_strand : Dag.t -> int option
(** The strand with the largest recorded work — the natural
    [Strand_work] target. *)

val publish : Wsim.result -> Convoy.t list -> unit
(** Set the causal-profile gauges in the default {!Nowa_obs.Registry}:
    per-category ledger nanoseconds ([nowa_wsim_ledger_*_ns]),
    per-resource-class queueing delay ([nowa_wsim_*_wait_ns]), the
    makespan, and convoy count / total serialized ns.  Gauges are
    created on first use and overwritten by later runs. *)

val pp : Format.formatter -> experiment -> unit
