type scheme =
  | Continuation_stealing
  | Child_stealing of { tied : bool }
  | Central_queue

type t = {
  cname : string;
  scheme : scheme;
  spawn_ns : float;
  push_lock_ns : float;
  steal_ns : float;
  steal_lock_ns : float;
  note_steal_lock_ns : float;
  atomic_ns : float;
  join_lock_ns : float;
  task_alloc_ns : float;
  alloc_arenas : int;
  alloc_lock_ns : float;
  resume_ns : float;
  steal_retry_ns : float;
  lock_contention_penalty : float;
  atomic_contention_penalty : float;
  park_after : int;
  park_ns : float;
  unpark_ns : float;
}

(* Magnitudes follow published microbenchmarks of the modelled systems: a
   Cilk-style spawn is a few tens of nanoseconds, an uncontended atomic
   RMW ~15-20 ns, a short spinlock critical section 60-120 ns, a stack
   switch ~100 ns, a task allocation ~100 ns.  The *relative* pricing is
   what the reproduced figures depend on. *)

let base =
  {
    cname = "";
    scheme = Continuation_stealing;
    spawn_ns = 25.0;
    push_lock_ns = 0.0;
    steal_ns = 40.0;
    steal_lock_ns = 0.0;
    note_steal_lock_ns = 0.0;
    atomic_ns = 18.0;
    join_lock_ns = 0.0;
    task_alloc_ns = 0.0;
    alloc_arenas = 0;
    alloc_lock_ns = 0.0;
    resume_ns = 150.0;
    steal_retry_ns = 150.0;
    lock_contention_penalty = 4.0;
    atomic_contention_penalty = 1.5;
    (* park_after = 0 disables parking, keeping every pre-existing model
       bit-identical; the latencies price the announce+re-check sweep and
       a futex wake respectively when a variant turns parking on. *)
    park_after = 0;
    park_ns = 1_500.0;
    unpark_ns = 8_000.0;
  }

let nowa = { base with cname = "nowa" }
let nowa_the = { base with cname = "nowa-the"; steal_lock_ns = 70.0 }

(* Fibril's Listing-2 coupling holds the victim's deque lock across the
   frame-counter update, so its effective deque critical section is much
   longer than the THE steal alone (nowa-the keeps the short one: its
   counter needs no lock). *)
let fibril =
  {
    base with
    cname = "fibril";
    steal_lock_ns = 180.0;
    note_steal_lock_ns = 80.0;
    join_lock_ns = 110.0;
  }

let cilkplus =
  {
    base with
    cname = "cilkplus";
    spawn_ns = 30.0;
    push_lock_ns = 45.0;
    steal_lock_ns = 200.0;
    note_steal_lock_ns = 80.0;
    join_lock_ns = 110.0;
  }

let tbb =
  {
    base with
    cname = "tbb";
    scheme = Child_stealing { tied = false };
    spawn_ns = 30.0;
    push_lock_ns = 40.0;
    steal_lock_ns = 90.0;
    task_alloc_ns = 90.0;
    alloc_arenas = 16;
    alloc_lock_ns = 50.0;
    resume_ns = 120.0;
  }

let lomp_untied =
  {
    tbb with
    cname = "lomp-untied";
    task_alloc_ns = 160.0;
    alloc_arenas = 8;
    alloc_lock_ns = 70.0;
    push_lock_ns = 55.0;
    steal_lock_ns = 110.0;
  }

let lomp_tied =
  {
    lomp_untied with
    cname = "lomp-tied";
    scheme = Child_stealing { tied = true };
  }

let gomp =
  {
    base with
    cname = "gomp";
    scheme = Central_queue;
    spawn_ns = 40.0;
    (* Every queue operation crosses the one global mutex, whose hold
       time under contention includes the futex round trips libgomp
       suffers with fine-grained tasks. *)
    push_lock_ns = 450.0;
    steal_lock_ns = 450.0;
    task_alloc_ns = 200.0;
    alloc_arenas = 1;
    alloc_lock_ns = 80.0;
    steal_retry_ns = 300.0;
  }

let all = [ nowa; nowa_the; fibril; cilkplus; tbb; lomp_untied; lomp_tied; gomp ]

let find name = List.find (fun m -> String.equal m.cname name) all
