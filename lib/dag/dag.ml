type kind = Strand | Spawn | Sync

(* Kinds are packed as ints in a flat array to keep vertices unboxed. *)
let kind_strand = 0
let kind_spawn = 1
let kind_sync = 2

type t = {
  mutable n : int;
  mutable kinds : Bytes.t;
  mutable works : float array;
  mutable s1 : int array;
  mutable s2 : int array;
  mutable frames : int array;
  mutable preds : int array;
  mutable root : int;
  mutable final : int;
}

let initial_capacity = 1024

let create () =
  {
    n = 0;
    kinds = Bytes.create initial_capacity;
    works = Array.make initial_capacity 0.0;
    s1 = Array.make initial_capacity (-1);
    s2 = Array.make initial_capacity (-1);
    frames = Array.make initial_capacity (-1);
    preds = Array.make initial_capacity 0;
    root = -1;
    final = -1;
  }

let grow t =
  let cap = Array.length t.works in
  let ncap = cap * 2 in
  let kinds = Bytes.create ncap in
  Bytes.blit t.kinds 0 kinds 0 cap;
  t.kinds <- kinds;
  let extend_int a = Array.append a (Array.make cap (-1)) in
  t.works <- Array.append t.works (Array.make cap 0.0);
  t.s1 <- extend_int t.s1;
  t.s2 <- extend_int t.s2;
  t.frames <- extend_int t.frames;
  t.preds <- Array.append t.preds (Array.make cap 0)

let add_vertex t k ~work ~frame =
  if t.n >= Array.length t.works then grow t;
  let id = t.n in
  t.n <- id + 1;
  Bytes.unsafe_set t.kinds id (Char.chr k);
  t.works.(id) <- work;
  t.s1.(id) <- -1;
  t.s2.(id) <- -1;
  t.frames.(id) <- frame;
  t.preds.(id) <- 0;
  id

let add_strand t ~work = add_vertex t kind_strand ~work ~frame:(-1)
let add_spawn t ~frame = add_vertex t kind_spawn ~work:0.0 ~frame
let add_sync t = add_vertex t kind_sync ~work:0.0 ~frame:(-1)

let add_edge t u v =
  if t.s1.(u) = -1 then t.s1.(u) <- v
  else if t.s2.(u) = -1 then t.s2.(u) <- v
  else invalid_arg "Dag.add_edge: vertex already has two successors";
  t.preds.(v) <- t.preds.(v) + 1

let set_root t v = t.root <- v
let set_final t v = t.final <- v

(* The frames slot is unused for strand vertices; -2 marks a main-path
   arrival there. *)
let mark_main_arrival t v = t.frames.(v) <- -2
let is_main_arrival t v = t.frames.(v) = -2

let size t = t.n

let kind t v =
  match Char.code (Bytes.unsafe_get t.kinds v) with
  | 0 -> Strand
  | 1 -> Spawn
  | _ -> Sync

let work t v = t.works.(v)

let set_work t v w =
  if kind t v <> Strand then invalid_arg "Dag.set_work: not a strand";
  if not (Float.is_finite w) || w < 0.0 then
    invalid_arg "Dag.set_work: work must be finite and non-negative";
  t.works.(v) <- w
let succ1 t v = t.s1.(v)
let succ2 t v = t.s2.(v)
let frame_of t v = t.frames.(v)
let pred_count t v = t.preds.(v)
let root t = t.root
let final t = t.final

let count t k =
  let c = ref 0 in
  for v = 0 to t.n - 1 do
    if kind t v = k then incr c
  done;
  !c

let total_work t =
  let acc = ref 0.0 in
  for v = 0 to t.n - 1 do
    acc := !acc +. t.works.(v)
  done;
  !acc

(* Kahn topological traversal shared by [span] and [validate]. Calls
   [visit] for every vertex in topological order and returns the number
   of vertices visited (< n implies a cycle or unreachable vertices). *)
let topo_fold t visit =
  let remaining = Array.sub t.preds 0 t.n in
  let queue = Queue.create () in
  if t.root >= 0 then Queue.push t.root queue;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr visited;
    visit v;
    let relax s =
      if s >= 0 then begin
        remaining.(s) <- remaining.(s) - 1;
        if remaining.(s) = 0 then Queue.push s queue
      end
    in
    relax t.s1.(v);
    relax t.s2.(v)
  done;
  !visited

let span t =
  if t.n = 0 then 0.0
  else begin
    let dist = Array.make t.n 0.0 in
    let longest = ref 0.0 in
    let visit v =
      let d = dist.(v) +. t.works.(v) in
      if d > !longest then longest := d;
      let relax s = if s >= 0 && d > dist.(s) then dist.(s) <- d in
      relax t.s1.(v);
      relax t.s2.(v)
    in
    ignore (topo_fold t visit);
    !longest
  end

let parallelism t =
  let sp = span t in
  if sp = 0.0 then 1.0 else total_work t /. sp

let clamp_work ?(quantile = 0.999) ?(factor = 2.0) t =
  let works = ref [] in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if kind t v = Strand then begin
      works := t.works.(v) :: !works;
      incr count
    end
  done;
  if !count = 0 then 0
  else begin
    let a = Array.of_list !works in
    Array.sort compare a;
    let idx =
      min (Array.length a - 1)
        (int_of_float (quantile *. float_of_int (Array.length a)))
    in
    let cap = a.(idx) *. factor in
    let clamped = ref 0 in
    for v = 0 to t.n - 1 do
      if kind t v = Strand && t.works.(v) > cap then begin
        t.works.(v) <- cap;
        incr clamped
      end
    done;
    !clamped
  end

let validate t =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n = 0 then error "empty DAG"
  else if t.root < 0 || t.root >= t.n then error "missing root"
  else if t.final < 0 || t.final >= t.n then error "missing final vertex"
  else if t.preds.(t.root) <> 0 then error "root has predecessors"
  else begin
    let problem = ref None in
    let note p = if !problem = None then problem := Some p in
    let sinks = ref 0 in
    for v = 0 to t.n - 1 do
      let out = (if t.s1.(v) >= 0 then 1 else 0) + if t.s2.(v) >= 0 then 1 else 0 in
      (match kind t v with
      | Strand -> if out > 1 then note (Printf.sprintf "strand %d has out-degree %d" v out)
      | Spawn ->
        if out <> 2 then note (Printf.sprintf "spawn %d has out-degree %d" v out);
        if t.preds.(v) <> 1 then
          note (Printf.sprintf "spawn %d has in-degree %d" v t.preds.(v));
        if t.frames.(v) < 0 || t.frames.(v) >= t.n || kind t t.frames.(v) <> Sync
        then note (Printf.sprintf "spawn %d has an invalid frame" v)
      | Sync ->
        if out <> 1 then note (Printf.sprintf "sync %d has out-degree %d" v out);
        if t.preds.(v) < 1 then note (Printf.sprintf "sync %d has in-degree 0" v));
      if out = 0 then incr sinks
    done;
    let visited = topo_fold t (fun _ -> ()) in
    if visited <> t.n then
      note
        (Printf.sprintf "only %d of %d vertices reachable acyclically" visited t.n);
    if !sinks <> 1 then note (Printf.sprintf "%d sinks (expected 1)" !sinks);
    let fout =
      (if t.s1.(t.final) >= 0 then 1 else 0)
      + if t.s2.(t.final) >= 0 then 1 else 0
    in
    if fout <> 0 then note "final vertex has successors";
    match !problem with None -> Ok () | Some p -> Error p
  end
