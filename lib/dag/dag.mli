(** The DAG model of fully-strict fork/join computations (Section III-A
    of the paper).

    Three vertex kinds: {e strand} vertices carry a cost (nanoseconds of
    serial execution and never fork); {e spawn} vertices have exactly two
    successors — the child edge first and the continuation edge second;
    {e sync} vertices have in-degree ≥ 1 and out-degree 1.  Every spawn
    vertex is tagged with the sync vertex of its frame, which is what a
    scheduler needs to know to perform joins.

    The structure is append-only and id-indexed, sized for DAGs of
    millions of vertices (flat arrays, no per-vertex boxing). *)

type kind = Strand | Spawn | Sync

type t

val create : unit -> t

(** {1 Construction} *)

val add_strand : t -> work:float -> int
val add_spawn : t -> frame:int -> int
(** [frame] is the id of the frame's sync vertex (created beforehand). *)

val add_sync : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge d u v] appends [v] to [u]'s successors ({b order matters}
    for spawn vertices: child first, continuation second) and bumps [v]'s
    predecessor count. *)

val set_root : t -> int -> unit
val set_final : t -> int -> unit

val mark_main_arrival : t -> int -> unit
(** Tag a strand whose successor edge into a sync vertex is the {e main
    path} reaching an explicit sync point (as opposed to a child strand
    performing an implicit sync).  Schedulers treat the two arrivals
    differently (Figure 5 of the paper). *)

val is_main_arrival : t -> int -> bool

(** {1 Access} *)

val size : t -> int
val kind : t -> int -> kind
val work : t -> int -> float

val set_work : t -> int -> float -> unit
(** Overwrite a strand's cost.  The what-if engine ({!Causal}) rescales
    hot strands through this and restores the original afterwards.
    Raises [Invalid_argument] on non-strand vertices and non-finite or
    negative costs. *)

val succ1 : t -> int -> int
(** -1 if none *)

val succ2 : t -> int -> int
(** -1 if none; only spawn vertices have a second successor *)

val frame_of : t -> int -> int
(** spawn vertices only *)

val pred_count : t -> int -> int
val root : t -> int
val final : t -> int

val count : t -> kind -> int

(** {1 Analysis} *)

val total_work : t -> float
(** T₁: the sum of all strand costs. *)

val span : t -> float
(** T∞: the critical-path cost (longest path by strand work). *)

val parallelism : t -> float
(** T₁ / T∞. *)

val validate : t -> (unit, string) result
(** Check the structural invariants of Section III-A: out-degrees by
    kind, spawn in-degree 1, sync out-degree 1, reachability of every
    vertex from the root, acyclicity, and that the final vertex is the
    unique sink. *)

val clamp_work : ?quantile:float -> ?factor:float -> t -> int
(** [clamp_work dag] caps every strand cost at [factor] (default 2.0)
    times the [quantile] (default 0.999) of all strand costs and
    returns the number of strands clamped.

    Recorded strand costs are wall-clock measurements; an OS timer tick,
    hypervisor preemption or GC slice that interrupts a recording gets
    charged to whichever strand it lands in, and because the critical
    path takes a maximum over paths, a handful of such spikes can
    dominate the span of a fine-grained DAG.  Clamping the extreme 0.1%%
    removes the spikes while leaving genuinely heavy strands (top-level
    partitions, matrix base cases) intact. *)
