(** Discrete-event simulation of work-stealing schedulers over recorded
    fork/join DAGs.

    This is the substitute for the paper's 256-hardware-thread EPYC
    testbed: a recorded computation ({!Recorder}) is replayed on [P]
    virtual workers under a runtime cost model ({!Cost_model}).  The
    simulator executes the continuation-stealing protocol faithfully —
    continuations are offered at spawn vertices, a strand arriving at an
    unsatisfied sync tries its own deque top first and then steals from
    random victims, the last strand into a sync proceeds past it — and it
    models every shared structure (deques, strand counters, the central
    queue) as a FIFO resource in virtual time, so lock convoys and
    cache-line serialisation emerge at scale exactly as they do on real
    hardware.

    Known divergences from a real machine, by design: memory locality is
    not modelled, and the DAG (hence total work) is fixed by the
    recording, so order-dependent-work benchmarks (knapsack's
    branch-and-bound pruning) do not reproduce their order sensitivity
    here — the real runtime does.  Child-stealing joins resume the
    continuation on the last-arriving strand rather than on the blocked
    parent; tied-task waiters are modelled by blocking the worker until
    its sync resolves. *)

type result = {
  workers : int;
  makespan_ns : float;
  t1_ns : float;  (** Σ strand work — the serial-elision time *)
  span_ns : float;  (** critical path (work only) *)
  speedup : float;  (** t1 / makespan, the paper's speedup statistic *)
  steals : int;
  steal_attempts : int;
  events : int;
  truncated : bool;  (** hit the event cap before completing *)
}

val simulate :
  ?seed:int ->
  ?max_events:int ->
  ?trace:Nowa_trace.Trace.t ->
  Cost_model.t ->
  workers:int ->
  Dag.t ->
  result
(** [simulate model ~workers dag] replays [dag].  [max_events] (default
    [200_000_000]) bounds runaway simulations; the result is flagged
    [truncated] when hit.

    [trace] (create it with [Trace.create ~clock:Virtual]) receives the
    schedule as virtual-time scheduler events — strand executions, spawns,
    steal attempts/commits/aborts, lost continuations, suspensions — one
    ring per virtual worker, consumable by the same {!Nowa_trace.Perfetto}
    exporter and {!Nowa_trace.Trace_analysis} summaries as real-engine
    traces. *)
