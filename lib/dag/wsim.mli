(** Discrete-event simulation of work-stealing schedulers over recorded
    fork/join DAGs.

    This is the substitute for the paper's 256-hardware-thread EPYC
    testbed: a recorded computation ({!Recorder}) is replayed on [P]
    virtual workers under a runtime cost model ({!Cost_model}).  The
    simulator executes the continuation-stealing protocol faithfully —
    continuations are offered at spawn vertices, a strand arriving at an
    unsatisfied sync tries its own deque top first and then steals from
    random victims, the last strand into a sync proceeds past it — and it
    models every shared structure (deques, strand counters, the central
    queue) as a FIFO resource in virtual time, so lock convoys and
    cache-line serialisation emerge at scale exactly as they do on real
    hardware.

    {b Determinism.}  [simulate] is a pure function of
    [(seed, model, workers, dag, max_events)]: the only source of
    randomness is victim selection, drawn from a {!Nowa_util.Xoshiro}
    generator seeded with [seed], and every other decision (heap
    tie-breaking, blocked-worker wake order) is structurally fixed.  Two
    calls with equal arguments return identical results — makespan,
    steal counts and victims, event counts, the full time ledger, and
    the acquisition log all match bit for bit.  This is what makes the
    causal what-if experiments ({!Causal}) exact: re-simulating with one
    perturbed cost is a controlled experiment, not a sample.

    Known divergences from a real machine, by design: memory locality is
    not modelled, and the DAG (hence total work) is fixed by the
    recording, so order-dependent-work benchmarks (knapsack's
    branch-and-bound pruning) do not reproduce their order sensitivity
    here — the real runtime does.  Child-stealing joins resume the
    continuation on the last-arriving strand rather than on the blocked
    parent; tied-task waiters are modelled by blocking the worker until
    its sync resolves. *)

(** {1 Time ledger}

    Every virtual worker's timeline is fully partitioned into the
    categories below: each nanosecond of [workers × horizon] virtual
    time is charged to exactly one category, so the ledger {e conserves}
    — [ledger_total l = float workers *. l.horizon_ns] up to float
    rounding.  This is the accounting Coz-style causal profilers
    approximate by sampling; here it is exact by construction. *)

type category =
  | Strand_work  (** executing strand (application) work *)
  | Spawn_overhead  (** spawn-point bookkeeping and task allocation *)
  | Deque_access  (** holding a deque: push/pop/steal critical sections *)
  | Deque_wait  (** queued on a busy deque *)
  | Counter_access  (** holding a frame's strand counter (join, note-steal) *)
  | Counter_wait  (** queued on a busy strand counter *)
  | Central_access  (** holding the central queue *)
  | Central_wait  (** queued on the central queue's lock *)
  | Alloc_access  (** holding an allocator arena *)
  | Alloc_wait  (** queued on a busy allocator arena *)
  | Steal_search  (** thief-local victim probing *)
  | Handoff  (** stack switch / resume after a steal or pop *)
  | Idle  (** no work and not probing: backoff sleep, start-up stagger *)
  | Parked
      (** blocked on the (simulated) per-worker condition variable: the
          elastic idle path's sleeping state.  Only models with
          [Cost_model.park_after > 0] ever charge it; it splits what was
          previously all [Idle] into spinning vs sleeping time *)

val categories : category list
(** All categories, in ledger-index order. *)

val category_index : category -> int
val category_name : category -> string
(** Stable snake_case name ("strand_work", "deque_wait", ...), safe for
    metric names and JSON keys. *)

type ledger = {
  horizon_ns : float;
      (** accounting end time: the makespan, or for partial ledgers the
          furthest accounted instant *)
  lpartial : bool;
      (** the simulation did not run to completion (event cap hit):
          totals cover only [0, horizon_ns] *)
  by_worker : float array array;
      (** [by_worker.(w).(category_index c)] = ns worker [w] spent in
          [c]; every row sums to [horizon_ns] *)
}

val ledger_category : ledger -> category -> float
(** Total ns across workers charged to one category. *)

val ledger_total : ledger -> float
(** Σ over workers and categories; equals [workers × horizon_ns]. *)

val pp_ledger : Format.formatter -> ledger -> unit

(** {1 Resource accounting} *)

type resource_class =
  | Deque  (** per-worker deques *)
  | Counter  (** per-frame strand counters *)
  | Central  (** the central task queue *)
  | Arena  (** allocator arenas *)

val resource_class_name : resource_class -> string

type resource_stats = {
  rclass : resource_class;
  acquisitions : int;
  contended : int;  (** acquisitions that found the resource busy *)
  wait_ns : float;  (** total queueing delay *)
  hold_ns : float;  (** total occupancy, incl. contention penalties *)
}

type acq = {
  aclass : resource_class;
  rid : int;  (** instance: worker id, sync-vertex id, arena index, 0 *)
  aworker : int;  (** the acquiring worker *)
  arrive_ns : float;  (** when the worker requested the resource *)
  start_ns : float;  (** when it was granted ([> arrive_ns] iff contended) *)
  finish_ns : float;  (** when it released *)
}
(** One resource acquisition, recorded when [simulate ~detail:true];
    the raw material of convoy detection ({!Convoy}). *)

type result = {
  workers : int;
  makespan_ns : float;
      (** completion time; for truncated runs, the partial horizon
          actually simulated (a lower bound on the true makespan) *)
  t1_ns : float;  (** Σ strand work — the serial-elision time *)
  span_ns : float;  (** critical path (work only) *)
  speedup : float;  (** t1 / makespan, the paper's speedup statistic *)
  steals : int;
  steal_attempts : int;
  events : int;
  truncated : bool;  (** hit the event cap before completing *)
  ledger : ledger;
  resources : resource_stats list;  (** one entry per resource class *)
  acquisitions : acq array;
      (** every resource acquisition in virtual-time order of request;
          [[||]] unless [detail] was set *)
}

val simulate :
  ?seed:int ->
  ?max_events:int ->
  ?trace:Nowa_trace.Trace.t ->
  ?detail:bool ->
  Cost_model.t ->
  workers:int ->
  Dag.t ->
  result
(** [simulate model ~workers dag] replays [dag].  [max_events] (default
    [200_000_000]) bounds runaway simulations; when hit, the result is
    flagged [truncated], [makespan_ns] is the horizon reached (not the
    true makespan), the trace rings contain everything emitted up to
    that horizon, and [ledger.lpartial] is set — the ledger still
    conserves over the partial horizon.

    [seed] (default 1) fixes victim selection; see the determinism
    guarantee above.

    [detail] (default false) records every resource acquisition into
    [acquisitions] for convoy detection; leave it off for large
    parameter sweeps (the log grows with steal attempts).

    [trace] (create it with [Trace.create ~clock:Virtual]) receives the
    schedule as virtual-time scheduler events — strand executions, spawns,
    steal attempts/commits/aborts, lost continuations, suspensions — one
    ring per virtual worker, consumable by the same {!Nowa_trace.Perfetto}
    exporter and {!Nowa_trace.Trace_analysis} summaries as real-engine
    traces. *)
