(** Lock-convoy detection over simulated schedules.

    The paper's central pathology — lock-based strand arbitration
    serialising under contention — shows up in a schedule as a {e
    convoy}: an interval during which several workers are
    simultaneously queued on one FIFO resource (a deque lock, a frame's
    strand counter, the central queue, an allocator arena), each
    admitted only as the previous one releases.  This module makes the
    effect a first-class, testable artifact: it scans the acquisition
    log a [Wsim.simulate ~detail:true] run records and reports maximal
    windows where the queue depth (holder + waiters) of one resource
    stays at or above [k].

    Convoys never arise on a 1-worker schedule (a worker cannot contend
    with itself), and under the wait-free Nowa model frame-counter
    convoys cannot form at all — which is exactly the paper's claim,
    checkable here per run. *)

type resource = { cls : Wsim.resource_class; id : int }

val resource_name : resource -> string
(** ["deque[3]"], ["counter[117]"], ["central"], ["arena[0]"]. *)

type t = {
  resource : resource;
  start_ns : float;  (** window open: queue depth first reached [k] *)
  end_ns : float;  (** window close: depth fell below [k] *)
  peak : int;  (** maximum queue depth inside the window *)
  participants : int;  (** distinct workers involved *)
  serialized_ns : float;
      (** total queueing delay suffered inside the window — the
          nanoseconds this convoy serialised *)
}

val duration_ns : t -> float

val detect :
  ?k:int -> ?top:int -> ?min_duration_ns:float -> Wsim.acq array -> t list
(** [detect acqs] returns the top convoys, most serialising first.
    [k] (default 4) is the queue depth (holder + waiters) that opens a
    window; [top] (default 10) bounds the report; [min_duration_ns]
    (default 0) drops shorter windows. *)

val depth_samples : Wsim.acq array -> resource -> (int * float) array
(** Queue-depth step function of one resource over virtual time:
    [(ts_ns, depth)] at every change, suitable for a Perfetto counter
    track ({!Nowa_trace.Perfetto.write_file} [?counters]). *)

val counter_tracks :
  ?k:int -> ?top:int -> Wsim.acq array -> (string * (int * float) array) list
(** Named queue-depth counter tracks for the resources implicated in
    the top convoys (deduplicated), ready to pass as [?counters] to the
    Perfetto exporter. *)

val pp : Format.formatter -> t -> unit
