module Promise = Nowa_runtime.Promise
module Guard = Nowa_runtime.Runtime_guard

let name = "dag-recorder"
let description = "serial execution that records the fork/join DAG"

type scope = { mutable pending_sync : int }
(* -1 when the current spawn phase has no sync vertex yet. *)

type 'a promise = 'a Promise.t

type state = {
  dag : Dag.t;
  mutable source : int;  (* vertex the next strand hangs off; -1 at start *)
  mutable strand_start : float;  (* ns *)
}

let overhead_ns = ref 120.0
let set_overhead_ns v = overhead_ns := Float.max 0.0 v

let state : state option ref = ref None
let last : Dag.t option ref = ref None

let get_state () =
  match !state with
  | Some s -> s
  | None -> failwith "Recorder: spawn/sync/scope used outside of run"

let now_ns () = Unix.gettimeofday () *. 1e9

(* Close the running strand: materialise it as a vertex charged with the
   elapsed time (minus calibrated overhead) and hang it off [source]. *)
let close_strand st =
  let elapsed = now_ns () -. st.strand_start in
  let work = Float.max 1.0 (elapsed -. !overhead_ns) in
  let v = Dag.add_strand st.dag ~work in
  if st.source >= 0 then Dag.add_edge st.dag st.source v
  else Dag.set_root st.dag v;
  v

let open_strand st source =
  st.source <- source;
  st.strand_start <- now_ns ()

let scope f =
  ignore (get_state ());
  let sc = { pending_sync = -1 } in
  let close_phase () =
    if sc.pending_sync >= 0 then begin
      let st = get_state () in
      let s = close_strand st in
      Dag.mark_main_arrival st.dag s;
      Dag.add_edge st.dag s sc.pending_sync;
      open_strand st sc.pending_sync;
      sc.pending_sync <- -1
    end
  in
  match f sc with
  | v ->
    close_phase ();
    v
  | exception e ->
    close_phase ();
    raise e

let sync sc =
  ignore (get_state ());
  if sc.pending_sync >= 0 then begin
    let st = get_state () in
    let s = close_strand st in
    Dag.mark_main_arrival st.dag s;
    Dag.add_edge st.dag s sc.pending_sync;
    open_strand st sc.pending_sync;
    sc.pending_sync <- -1
  end

let spawn sc thunk =
  let st = get_state () in
  (* End the pre-spawn strand and insert the spawn vertex. *)
  let s = close_strand st in
  if sc.pending_sync < 0 then sc.pending_sync <- Dag.add_sync st.dag;
  let sp = Dag.add_spawn st.dag ~frame:sc.pending_sync in
  Dag.add_edge st.dag s sp;
  (* Child branch: the child edge must be the spawn's first successor. *)
  open_strand st sp;
  let p = Promise.make () in
  Promise.fill p (thunk ());
  let child_end = close_strand st in
  Dag.add_edge st.dag child_end sc.pending_sync;
  (* Continuation branch. *)
  open_strand st sp;
  p

let spawn_unit sc thunk = ignore (spawn sc thunk)

let get p = Promise.get ~runtime:name p
let await p = Promise.await ~runtime:name p

(* Pool routing under the recorder: like the serial elision, every name
   resolves to this one thread and [spawn_on] runs inline — routed tasks
   appear in the DAG as ordinary serial work on the recording strand. *)
type pool = string

let find_pool n = Some (n : pool)
let pool n = (n : pool)
let pool_name (p : pool) = p
let self_pool () = "main"

let spawn_on (_ : pool) thunk =
  let p = Promise.make () in
  (match thunk () with
  | v -> Promise.fill p v
  | exception e -> Promise.fill_exn p e);
  p

let spawn_unit_on (pl : pool) thunk =
  try thunk ()
  with e ->
    Nowa_runtime.Runtime_log.Log.err (fun m ->
        m "%s: spawn_unit_on %S task raised %s" name pl
          (Printexc.to_string e))

let last_metrics_ref = ref None
let last_metrics () = !last_metrics_ref

(* The recorder's product is the DAG itself; replay it through
   [Wsim.simulate ~trace] for a virtual-time event trace. *)
let last_trace () = None

let record main =
  Guard.enter name;
  (* Deterministic worker-0 context: span ledgers recorded under the
     recorder attribute every combine to worker 0, run after run. *)
  Nowa_trace.Current.set ~worker:0 Nowa_trace.Ring.disabled;
  Fun.protect
    ~finally:(fun () ->
      state := None;
      Nowa_trace.Current.clear ();
      Guard.exit ())
    (fun () ->
      (* A major collection mid-recording would be charged to whichever
         strand it interrupts and distort the critical path; start from a
         clean heap. *)
      Gc.full_major ();
      let st = { dag = Dag.create (); source = -1; strand_start = now_ns () } in
      state := Some st;
      let t0 = Unix.gettimeofday () in
      let r = main () in
      let final = close_strand st in
      Dag.set_final st.dag final;
      last := Some st.dag;
      last_metrics_ref :=
        Some
          (Nowa_runtime.Metrics.make
             [| Nowa_runtime.Metrics.make_worker 0 |]
             ~elapsed_s:(Unix.gettimeofday () -. t0));
      (st.dag, r))

let run ?conf main =
  ignore conf;
  snd (record main)

let last_dag () = !last
