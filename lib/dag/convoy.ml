type resource = { cls : Wsim.resource_class; id : int }

let resource_name r =
  match r.cls with
  | Wsim.Central -> "central"
  | c -> Printf.sprintf "%s[%d]" (Wsim.resource_class_name c) r.id

type t = {
  resource : resource;
  start_ns : float;
  end_ns : float;
  peak : int;
  participants : int;
  serialized_ns : float;
}

let duration_ns c = c.end_ns -. c.start_ns

let class_index = function
  | Wsim.Deque -> 0
  | Wsim.Counter -> 1
  | Wsim.Central -> 2
  | Wsim.Arena -> 3

(* Group acquisition indices by resource instance. *)
let group (acqs : Wsim.acq array) =
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (a : Wsim.acq) ->
      let key = (class_index a.Wsim.aclass lsl 32) lor a.Wsim.rid in
      match Hashtbl.find_opt tbl key with
      | Some l -> l := i :: !l
      | None -> Hashtbl.add tbl key (ref [ i ]))
    acqs;
  tbl

(* The +1/-1 sweep events of one resource's acquisitions, time-sorted
   with releases before arrivals on ties (an acquisition that starts the
   instant another ends does not overlap it). *)
let sweep_events (acqs : Wsim.acq array) idxs =
  let evs =
    List.concat_map
      (fun i ->
        let a = acqs.(i) in
        [ (a.Wsim.arrive_ns, 1); (a.Wsim.finish_ns, -1) ])
      idxs
  in
  List.sort
    (fun (ta, da) (tb, db) ->
      match compare ta tb with 0 -> compare da db | c -> c)
    evs

let resource_of (a : Wsim.acq) = { cls = a.Wsim.aclass; id = a.Wsim.rid }

(* Maximal windows where the queue depth (holder + waiters) of one
   resource stays >= k, one sweep per resource. *)
let windows_of ~k (acqs : Wsim.acq array) idxs =
  let evs = sweep_events acqs idxs in
  let out = ref [] in
  let depth = ref 0 in
  let w_start = ref nan in
  let w_peak = ref 0 in
  List.iter
    (fun (t, d) ->
      let was = !depth in
      depth := !depth + d;
      if was < k && !depth >= k then begin
        w_start := t;
        w_peak := !depth
      end
      else if !depth >= k then w_peak := max !w_peak !depth
      else if was >= k && !depth < k then out := (!w_start, t, !w_peak) :: !out)
    evs;
  List.rev !out

let finalize ~resource (acqs : Wsim.acq array) idxs (s, e, peak) =
  let workers = Hashtbl.create 8 in
  let serialized = ref 0.0 in
  List.iter
    (fun i ->
      let a = acqs.(i) in
      if a.Wsim.arrive_ns < e && a.Wsim.finish_ns > s then begin
        Hashtbl.replace workers a.Wsim.aworker ();
        (* Queueing delay of this acquisition inside the window. *)
        let w0 = Float.max a.Wsim.arrive_ns s in
        let w1 = Float.min a.Wsim.start_ns e in
        if w1 > w0 then serialized := !serialized +. (w1 -. w0)
      end)
    idxs;
  {
    resource;
    start_ns = s;
    end_ns = e;
    peak;
    participants = Hashtbl.length workers;
    serialized_ns = !serialized;
  }

let detect ?(k = 4) ?(top = 10) ?(min_duration_ns = 0.0) acqs =
  if k < 2 then invalid_arg "Convoy.detect: k must be >= 2";
  let tbl = group acqs in
  let all = ref [] in
  Hashtbl.iter
    (fun _ idxs ->
      let idxs = !idxs in
      (* A convoy of depth k needs at least k acquisitions. *)
      if List.length idxs >= k then begin
        let resource = resource_of acqs.(List.hd idxs) in
        List.iter
          (fun w ->
            let c = finalize ~resource acqs idxs w in
            if duration_ns c >= min_duration_ns then all := c :: !all)
          (windows_of ~k acqs idxs)
      end)
    tbl;
  let cmp a b =
    match compare b.serialized_ns a.serialized_ns with
    | 0 -> compare a.start_ns b.start_ns
    | c -> c
  in
  let sorted = List.sort cmp !all in
  List.filteri (fun i _ -> i < top) sorted

let depth_samples acqs resource =
  let tbl = group acqs in
  let key = (class_index resource.cls lsl 32) lor resource.id in
  match Hashtbl.find_opt tbl key with
  | None -> [||]
  | Some idxs ->
    let evs = sweep_events acqs !idxs in
    let out = ref [] in
    let depth = ref 0 in
    List.iter
      (fun (t, d) ->
        depth := !depth + d;
        out := (int_of_float t, float_of_int !depth) :: !out)
      evs;
    Array.of_list (List.rev !out)

let counter_tracks ?k ?(top = 5) acqs =
  let convoys = detect ?k ~top acqs in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun c ->
      let name = "queue depth " ^ resource_name c.resource in
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        Some (name, depth_samples acqs c.resource)
      end)
    convoys

let pp ppf c =
  Format.fprintf ppf
    "%-12s [%.0f, %.0f] ns  dur %8.0f ns  peak %2d  %d workers  %10.0f ns \
     serialized"
    (resource_name c.resource) c.start_ns c.end_ns (duration_ns c) c.peak
    c.participants c.serialized_ns
