(** Child-stealing scheduler engine (Section II-B's alternative scheme),
    the structural model for TBB and for LLVM libomp's task scheduler.

    At a fork point the {e child task} is pushed to the worker's deque and
    the parent continues immediately (help-first).  Because the parent
    increments its frame's pending count {e before} publishing the child,
    the worker/thief race of Figure 6 does not arise here — the price is
    paid elsewhere: every child is a heap-allocated task, and joins are
    blocking-with-helping rather than suspending.

    [sync] is modelled on OpenMP's [taskwait]: the waiting strand loops,
    executing tasks until its children have all finished.

    - [Waiting.Steal_anywhere] (TBB, libomp untied tasks): the waiter
      helps from its own deque first and steals from victims otherwise.
    - [Waiting.Local_only] (libomp tied tasks): the task-scheduling
      constraint pins the waiter to tasks from its own deque; when that
      runs dry it can only spin.  This is the structural reason tied
      tasks over- or under-perform untied ones per benchmark in
      Figure 10/Table III. *)

module Waiting = struct
  type t = Steal_anywhere | Local_only
end

module Make
    (QM : Nowa_deque.Ws_deque_intf.MAKER)
    (Id : sig
      val name : string
      val description : string
      val waiting : Waiting.t
    end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type frame = { pending : int Atomic.t; exn_slot : exn option Atomic.t }
  type scope = frame

  type task = Task of (unit -> unit)

  module Q = QM (struct
    type t = task

    let dummy = Task ignore
  end)

  (* One named micropool (ISSUE 10), mirroring {!Engine}: a contiguous
     slice of the global worker array with its own sleeper registry
     (local ids), its own inject queue for [spawn_on]-routed roots, and
     its own idle/steal knobs. *)
  type group = {
    gid : int;
    gname : string;
    glo : int;  (* first global worker id of this pool *)
    ghi : int;  (* one past the last *)
    gsleepers : Sleepers.t;  (* indexed by pool-local worker id *)
    ginject : task Nowa_deque.Central_queue.t;
    ggate : int Atomic.t;
        (* conservative inject count: raised before a push, lowered
           after a pop, so 0 proves the queue empty *)
    gidle : Config.idle_policy;
    gsweep : int;
  }

  type pool = group

  type worker = {
    id : int;
    grp : group;
    deque : Q.t;
    rng : Nowa_util.Xoshiro.t;
    m : Metrics.worker;
    tr : Ring.t;
    hb : Health.Beats.t;  (* shared heartbeat words; worker beats its slot *)
    mutable depth : int;  (* task nesting while helping at a taskwait *)
  }

  type cluster = {
    conf : Config.t;
    workers : worker array;  (* all pools, global ids *)
    groups : group array;
    spill : bool;  (* cross-pool spill-over stealing enabled *)
    finished : bool Atomic.t;
  }

  let current : (cluster * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None -> failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  (* Task bodies never raise ([spawn] and the root wrap the thunk), so
     the depth bookkeeping needs no exception handling. *)
  let run_task w (Task f) =
    w.m.tasks <- w.m.tasks + 1;
    w.depth <- w.depth + 1;
    if w.depth = 1 then Ring.emit w.tr Ev.Task_start 0;
    f ();
    if w.depth = 1 then Ring.emit w.tr Ev.Task_end 0;
    w.depth <- w.depth - 1;
    Health.Beats.beat w.hb w.id

  let no_commit _ = ()

  (* Take one routed root from a pool's inject queue; the gate read
     keeps the common empty case lock-free. *)
  let try_inject (g : group) =
    if Atomic.get g.ggate = 0 then None
    else
      match Nowa_deque.Central_queue.pop g.ginject with
      | Some _ as r ->
        Atomic.decr g.ggate;
        r
      | None -> None

  (* Sweep up to [gsweep] distinct pool-mates; each probe is a batched
     ([steal_half]-style) grab of up to [gsweep] tasks under one
     acquisition.  The head is returned to run now; the surplus moves to
     the thief's own deque so the next LIFO pops serve it without
     touching the victim again.  Tasks are plain closures here, so
     re-homing them is always legal (no continuation ownership).
     Stealing stays inside the worker's own pool; spill-over runs later,
     from the idle loop. *)
  let try_steal cl w =
    let g = w.grp in
    let n = g.ghi - g.glo in
    let from_mates () =
      if n = 1 then None
      else begin
        let sweep = min (max 1 g.gsweep) (n - 1) in
        let lid = w.id - g.glo in
        let start = Nowa_util.Xoshiro.int w.rng (n - 1) in
        let rec probe i =
          if i >= sweep then begin
            Nowa_obs.Histogram.observe Metrics.sweep_length sweep;
            None
          end
          else begin
            let v = g.glo + ((lid + 1 + ((start + i) mod (n - 1))) mod n) in
            w.m.steal_attempts <- w.m.steal_attempts + 1;
            Health.Beats.beat w.hb w.id;
            Ring.emit w.tr Ev.Steal_attempt v;
            match
              Q.steal_batch cl.workers.(v).deque ~max:sweep
                ~on_commit:no_commit
            with
            | [] ->
              Ring.emit w.tr Ev.Steal_abort v;
              probe (i + 1)
            | head :: extra ->
              w.m.steals <- w.m.steals + 1 + List.length extra;
              Ring.emit w.tr Ev.Steal_commit v;
              List.iter
                (fun t ->
                  try Q.push_bottom w.deque t
                  with Nowa_deque.Ws_deque_intf.Full -> run_task w t)
                extra;
              Nowa_obs.Histogram.observe Metrics.sweep_length (i + 1);
              Some head
          end
        in
        probe 0
      end
    in
    (* Routed roots are this pool's responsibility and have no other
       worker to run them; the caller has already drained its own deque. *)
    match try_inject g with Some _ as r -> r | None -> from_mates ()

  (* Cross-pool spill-over (ISSUE 10, behind [Config.spill_over]): only
     reached when the worker's own pool came up empty.  Foreign pools
     are scanned round-robin from the next pool over; within each, the
     inject queue first, then up to [gsweep] random victims (single
     steals — batched re-homing would drag a foreign pool's backlog into
     this pool's deques). *)
  let try_spill cl w =
    let ng = Array.length cl.groups in
    if ng <= 1 then None
    else begin
      let attempt v =
        w.m.steal_attempts <- w.m.steal_attempts + 1;
        Ring.emit w.tr Ev.Steal_attempt v;
        match Q.steal cl.workers.(v).deque ~on_commit:no_commit with
        | Some _ as r ->
          w.m.steals <- w.m.steals + 1;
          Ring.emit w.tr Ev.Steal_commit v;
          r
        | None -> None
      in
      let rec groups k =
        if k >= ng - 1 then None
        else begin
          let g = cl.groups.((w.grp.gid + 1 + k) mod ng) in
          match try_inject g with
          | Some _ as r -> r
          | None ->
            let n = g.ghi - g.glo in
            let sweep = min (max 1 w.grp.gsweep) n in
            let start = Nowa_util.Xoshiro.int w.rng n in
            let rec probe i =
              if i >= sweep then None
              else
                match attempt (g.glo + ((start + i) mod n)) with
                | Some _ as r -> r
                | None -> probe (i + 1)
            in
            (match probe 0 with Some _ as r -> r | None -> groups (k + 1))
        end
      in
      groups 0
    end

  (* OpenMP taskwait / TBB wait_for_all: execute tasks until the frame's
     children are gone.  LIFO from the own deque keeps the helper on its
     own subtree most of the time.  Helping stays inside the pool even
     with spill-over on: a blocked waiter dragging foreign work onto its
     stack would couple the pools' latency. *)
  let wait_for cl w fr =
    w.m.suspensions <- w.m.suspensions + 1;
    Ring.emit w.tr Ev.Suspend 0;
    let bo = Nowa_util.Backoff.make () in
    while Atomic.get fr.pending > 0 do
      match Q.pop_bottom w.deque with
      | Some t ->
        Nowa_util.Backoff.reset bo;
        run_task w t
      | None -> (
        match Id.waiting with
        | Waiting.Local_only -> Nowa_util.Backoff.once bo
        | Waiting.Steal_anywhere -> (
          match try_steal cl w with
          | Some t ->
            Nowa_util.Backoff.reset bo;
            run_task w t
          | None -> Nowa_util.Backoff.once bo))
    done

  (* Pre-park re-check: real steal probes over one pool's every deque
     plus its inject queue (no size reads — they are unsynchronised on
     the locked deque).  See {!Engine.sweep_group} for the ordering
     argument; it is identical here. *)
  let sweep_group cl w (g : group) =
    let n = g.ghi - g.glo in
    let off = if w.id >= g.glo && w.id < g.ghi then w.id - g.glo else 0 in
    let rec go i =
      if i >= n then try_inject g
      else begin
        let v = g.glo + ((off + i) mod n) in
        w.m.steal_attempts <- w.m.steal_attempts + 1;
        match Q.steal cl.workers.(v).deque ~on_commit:no_commit with
        | Some t ->
          w.m.steals <- w.m.steals + 1;
          Ring.emit w.tr Ev.Steal_commit v;
          Some t
        | None -> go (i + 1)
      end
    in
    match Q.pop_bottom w.deque with Some _ as r -> r | None -> go 0

  let sweep_all cl w =
    match sweep_group cl w w.grp with
    | Some _ as r -> r
    | None ->
      if not cl.spill then None
      else begin
        (* With spill-over on this worker may be the last one awake that
           could ever run a foreign pool's pending work, so the pre-park
           sweep must cover the foreign pools too. *)
        let ng = Array.length cl.groups in
        let rec go k =
          if k >= ng - 1 then None
          else
            match
              sweep_group cl w cl.groups.((w.grp.gid + 1 + k) mod ng)
            with
            | Some _ as r -> r
            | None -> go (k + 1)
        in
        go 0
      end

  let park_round cl w =
    Health.Beats.beat w.hb w.id;
    let sleepers = w.grp.gsleepers in
    let lid = w.id - w.grp.glo in
    ignore (Sleepers.announce sleepers ~worker:lid);
    let cancel () =
      if not (Sleepers.cancel sleepers ~worker:lid) then
        w.m.wake_retries <- w.m.wake_retries + 1
    in
    match sweep_all cl w with
    | Some _ as r ->
      cancel ();
      r
    | None ->
      if Atomic.get cl.finished then cancel ()
      else begin
        w.m.parks <- w.m.parks + 1;
        Ring.emit w.tr Ev.Park 0;
        let t0 = Nowa_util.Clock.now_ns () in
        Sleepers.park sleepers ~worker:lid;
        Health.Beats.beat w.hb w.id;
        w.m.parked_ns <- w.m.parked_ns + (Nowa_util.Clock.now_ns () - t0);
        Ring.emit w.tr Ev.Unpark 0
      end;
      None

  (* Same three-phase elastic idle path as the continuation-stealing
     engine: spin with backoff, then yield the timeslice, then park via
     the sleeper registry.  No mask-width guard needed: [Topology]
     (backed by [Sleepers.create]) rejects pools wider than the
     registry, so every local id can park. *)
  let worker_loop cl w =
    let bo = Nowa_util.Backoff.make () in
    let spin_budget, can_park =
      match w.grp.gidle with
      | Config.Spin -> (max_int, false)
      | Config.Yield_after n -> (max 1 n, false)
      | Config.Park_after n -> (max 1 n, true)
    in
    let rounds = ref 0 in
    let take () =
      match Q.pop_bottom w.deque with
      | Some _ as r -> r
      | None -> (
        match try_steal cl w with
        | Some _ as r -> r
        | None -> if cl.spill then try_spill cl w else None)
    in
    let rec go () =
      if Atomic.get cl.finished then ()
      else
        match take () with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          rounds := 0;
          run_task w t;
          go ()
        | None ->
          incr rounds;
          if !rounds <= spin_budget then begin
            if !rounds mod cl.conf.Config.steal_attempts = 0 then
              Nowa_util.Backoff.once bo;
            go ()
          end
          else if (not can_park) || !rounds <= 2 * spin_budget then begin
            Unix.sleepf 0.0;
            go ()
          end
          else begin
            (match park_round cl w with
            | Some t ->
              Nowa_util.Backoff.reset bo;
              run_task w t
            | None -> ());
            Nowa_util.Backoff.reset bo;
            rounds := 0;
            go ()
          end
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    (* Validate the pool topology before entering the runtime guard so a
       bad configuration raises without leaking guard state. *)
    let specs = Topology.of_config conf in
    let nw = Topology.total specs in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m ->
        m "%s: starting %d workers in %d pool(s)" name nw (Array.length specs));
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let hb =
      if conf.Config.heartbeats then Health.Beats.create ~workers:nw
      else Health.Beats.disabled
    in
    let groups =
      Array.mapi
        (fun gi (s : Topology.spec) ->
          {
            gid = gi;
            gname = s.Topology.name;
            glo = s.Topology.lo;
            ghi = s.Topology.hi;
            gsleepers = Sleepers.create ~workers:(s.Topology.hi - s.Topology.lo);
            ginject = Nowa_deque.Central_queue.create ();
            ggate = Nowa_util.Padding.atomic 0;
            gidle = s.Topology.idle;
            gsweep = s.Topology.sweep;
          })
        specs
    in
    let cl =
      {
        conf;
        groups;
        spill = conf.Config.spill_over;
        finished = Atomic.make false;
        workers =
          Array.init nw (fun i ->
              let g = groups.(Topology.group_of specs i) in
              {
                id = i;
                grp = g;
                deque = Q.create ~capacity:specs.(g.gid).Topology.capacity ();
                rng = Nowa_util.Xoshiro.make ~seed:(conf.Config.seed + (i * 7919) + 1);
                m = Metrics.make_worker ~pool:g.gname i;
                tr = ring_for i;
                hb;
                depth = 0;
              });
      }
    in
    Metrics.publish (Array.map (fun w -> w.m) cl.workers);
    (match trace with
    | Some t ->
      Health.Recorder.register ~name:"trace" (fun ~dir ->
          let evs, _dropped = Nowa_trace.Trace.freeze ~window:4096 t in
          Nowa_trace.Perfetto.write_events_file
            (Filename.concat dir "trace.json")
            evs)
    | None -> Health.Recorder.unregister ~name:"trace");
    if conf.Config.watchdog_interval_ms > 0 then
      Runtime_guard.start_monitor (fun () ->
          (* Pool-aware probe (ISSUE 10): every accessor translates the
             global index through the worker's group, so two pools'
             worker 0s cannot alias into one sleeper slot or verdict
             row. *)
          let grp i = cl.workers.(i).grp in
          let lid i = i - (grp i).glo in
          let probe =
            {
              Health.engine = name;
              workers = nw;
              pool_of = (fun i -> ((grp i).gname, lid i));
              beat_of = (fun i -> Health.Beats.read hb i);
              announced =
                (fun i -> Sleepers.announced (grp i).gsleepers ~worker:(lid i));
              waiting =
                (fun i -> Sleepers.waiting (grp i).gsleepers ~worker:(lid i));
              wake_stamp =
                (fun i ->
                  Sleepers.wake_stamp (grp i).gsleepers ~worker:(lid i));
              ready =
                (fun () ->
                  Array.fold_left
                    (fun acc w -> acc + Q.size w.deque)
                    0 cl.workers
                  + Array.fold_left
                      (fun acc g -> acc + Atomic.get g.ggate)
                      0 cl.groups);
              sleepers =
                (fun () ->
                  Array.fold_left
                    (fun acc g -> acc + Sleepers.sleepers g.gsleepers)
                    0 cl.groups);
              draining = (fun () -> Atomic.get cl.finished);
            }
          in
          let h =
            Health.Monitor.spawn
              ~interval_ms:conf.Config.watchdog_interval_ms
              ~stall_scans:conf.Config.watchdog_stall_scans
              ~dump:conf.Config.watchdog_dump probe
          in
          fun () -> Health.Monitor.stop h);
    let result = ref None in
    let wake_everyone () =
      Array.iter (fun g -> Sleepers.wake_all g.gsleepers) cl.groups
    in
    let root =
      Task
        (fun () ->
          (match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e));
          Atomic.set cl.finished true;
          wake_everyone ())
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = cl.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (cl, w));
              Nowa_trace.Current.set ~worker:w.id w.tr;
              Fun.protect
                ~finally:(fun () ->
                  Domain.DLS.set current None;
                  Nowa_trace.Current.clear ())
                (fun () -> worker_loop cl w)))
    in
    let w0 = cl.workers.(0) in
    Domain.DLS.set current (Some (cl, w0));
    Nowa_trace.Current.set ~worker:w0.id w0.tr;
    let teardown () =
      Domain.DLS.set current None;
      Nowa_trace.Current.clear ();
      Atomic.set cl.finished true;
      wake_everyone ();
      List.iter Domain.join domains;
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        run_task w0 root;
        worker_loop cl w0;
        let elapsed = Unix.gettimeofday () -. t0 in
        last_trace_ref := trace;
        if conf.Config.collect_metrics then
          last_metrics_ref :=
            Some
              (Metrics.make
                 (Array.map (fun w -> w.m) cl.workers)
                 ~elapsed_s:elapsed));
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let scope f =
    ignore (get_current ());
    let fr = { pending = Atomic.make 0; exn_slot = Atomic.make None } in
    let finish () =
      let cl, w = get_current () in
      if Atomic.get fr.pending > 0 then wait_for cl w fr
      else w.m.fast_syncs <- w.m.fast_syncs + 1;
      match Atomic.exchange fr.exn_slot None with
      | Some e -> raise e
      | None -> ()
    in
    match f fr with
    | v ->
      finish ();
      v
    | exception e ->
      (try finish () with _ -> ());
      raise e

  let sync fr =
    let cl, w = get_current () in
    if Atomic.get fr.pending > 0 then wait_for cl w fr
    else w.m.fast_syncs <- w.m.fast_syncs + 1;
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let spawn fr thunk =
    let _, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    let p = Promise.make () in
    (* Pending is raised before the task is visible to thieves, so the
       join counter never needs the lock-or-wait-free machinery of the
       continuation-stealing engines. *)
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with
      | v -> Promise.fill p v
      | exception e ->
        Promise.fill_exn p e;
        note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Q.push_bottom w.deque (Task body);
    (* One load when nobody sleeps; CAS + signal only for a sleeper. *)
    if Sleepers.wake_one w.grp.gsleepers then w.m.wakeups <- w.m.wakeups + 1;
    p

  let spawn_unit fr thunk =
    let _, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with () -> () | exception e -> note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Q.push_bottom w.deque (Task body);
    if Sleepers.wake_one w.grp.gsleepers then w.m.wakeups <- w.m.wakeups + 1

  let get p = Promise.get ~runtime:name p
  let await p = Promise.await ~runtime:name p

  (* -- pool routing (ISSUE 10) ------------------------------------------ *)

  let find_pool pname =
    let cl, _ = get_current () in
    Array.find_opt (fun g -> String.equal g.gname pname) cl.groups

  let pool pname =
    match find_pool pname with
    | Some g -> g
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown pool %S (configure it in Config.pools)"
           name pname)

  let pool_name (g : pool) = g.gname

  let self_pool () =
    let _, w = get_current () in
    w.grp.gname

  let wake_routed cl w (g : group) =
    if Sleepers.wake_one g.gsleepers then w.m.wakeups <- w.m.wakeups + 1
    else if cl.spill then begin
      let ng = Array.length cl.groups in
      let rec go k =
        if k >= ng - 1 then ()
        else if Sleepers.wake_one cl.groups.((g.gid + 1 + k) mod ng).gsleepers
        then w.m.wakeups <- w.m.wakeups + 1
        else go (k + 1)
      in
      go 0
    end

  let enqueue_routed (g : pool) body =
    let cl, w = get_current () in
    (* Gate up before the push so a zero gate proves an empty queue. *)
    Atomic.incr g.ggate;
    Nowa_deque.Central_queue.push g.ginject (Task body);
    wake_routed cl w g

  (* Routed roots are plain closures here — no effect handler needed;
     spawns inside the task open their own scopes as usual. *)
  let spawn_on (type a) (g : pool) (thunk : unit -> a) : a promise =
    let p : a promise = Promise.make_remote () in
    enqueue_routed g (fun () ->
        match thunk () with
        | v -> Promise.fill_remote p v
        | exception e -> Promise.fill_remote_exn p e);
    p

  let spawn_unit_on (g : pool) thunk =
    enqueue_routed g (fun () ->
        try thunk ()
        with e ->
          Runtime_log.Log.err (fun m ->
              m "%s: spawn_unit_on %S task raised %s" name g.gname
                (Printexc.to_string e)))
end
