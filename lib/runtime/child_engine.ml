(** Child-stealing scheduler engine (Section II-B's alternative scheme),
    the structural model for TBB and for LLVM libomp's task scheduler.

    At a fork point the {e child task} is pushed to the worker's deque and
    the parent continues immediately (help-first).  Because the parent
    increments its frame's pending count {e before} publishing the child,
    the worker/thief race of Figure 6 does not arise here — the price is
    paid elsewhere: every child is a heap-allocated task, and joins are
    blocking-with-helping rather than suspending.

    [sync] is modelled on OpenMP's [taskwait]: the waiting strand loops,
    executing tasks until its children have all finished.

    - [Waiting.Steal_anywhere] (TBB, libomp untied tasks): the waiter
      helps from its own deque first and steals from victims otherwise.
    - [Waiting.Local_only] (libomp tied tasks): the task-scheduling
      constraint pins the waiter to tasks from its own deque; when that
      runs dry it can only spin.  This is the structural reason tied
      tasks over- or under-perform untied ones per benchmark in
      Figure 10/Table III. *)

module Waiting = struct
  type t = Steal_anywhere | Local_only
end

module Make
    (QM : Nowa_deque.Ws_deque_intf.MAKER)
    (Id : sig
      val name : string
      val description : string
      val waiting : Waiting.t
    end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type frame = { pending : int Atomic.t; exn_slot : exn option Atomic.t }
  type scope = frame

  type task = Task of (unit -> unit)

  module Q = QM (struct
    type t = task

    let dummy = Task ignore
  end)

  type worker = {
    id : int;
    deque : Q.t;
    rng : Nowa_util.Xoshiro.t;
    m : Metrics.worker;
    tr : Ring.t;
    mutable depth : int;  (* task nesting while helping at a taskwait *)
  }

  type pool = {
    conf : Config.t;
    workers : worker array;
    finished : bool Atomic.t;
  }

  let current : (pool * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None -> failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  (* Task bodies never raise ([spawn] and the root wrap the thunk), so
     the depth bookkeeping needs no exception handling. *)
  let run_task w (Task f) =
    w.m.tasks <- w.m.tasks + 1;
    w.depth <- w.depth + 1;
    if w.depth = 1 then Ring.emit w.tr Ev.Task_start 0;
    f ();
    if w.depth = 1 then Ring.emit w.tr Ev.Task_end 0;
    w.depth <- w.depth - 1

  let no_commit _ = ()

  let try_steal pool w =
    let n = Array.length pool.workers in
    if n = 1 then None
    else begin
      w.m.steal_attempts <- w.m.steal_attempts + 1;
      let v = Nowa_util.Xoshiro.int w.rng n in
      let v = if v = w.id then (v + 1) mod n else v in
      Ring.emit w.tr Ev.Steal_attempt v;
      match Q.steal pool.workers.(v).deque ~on_commit:no_commit with
      | Some t ->
        w.m.steals <- w.m.steals + 1;
        Ring.emit w.tr Ev.Steal_commit v;
        Some t
      | None ->
        Ring.emit w.tr Ev.Steal_abort v;
        None
    end

  (* OpenMP taskwait / TBB wait_for_all: execute tasks until the frame's
     children are gone.  LIFO from the own deque keeps the helper on its
     own subtree most of the time. *)
  let wait_for pool w fr =
    w.m.suspensions <- w.m.suspensions + 1;
    Ring.emit w.tr Ev.Suspend 0;
    let bo = Nowa_util.Backoff.make () in
    while Atomic.get fr.pending > 0 do
      match Q.pop_bottom w.deque with
      | Some t ->
        Nowa_util.Backoff.reset bo;
        run_task w t
      | None -> (
        match Id.waiting with
        | Waiting.Local_only -> Nowa_util.Backoff.once bo
        | Waiting.Steal_anywhere -> (
          match try_steal pool w with
          | Some t ->
            Nowa_util.Backoff.reset bo;
            run_task w t
          | None -> Nowa_util.Backoff.once bo))
    done

  let worker_loop pool w =
    let bo = Nowa_util.Backoff.make () in
    let failures = ref 0 in
    let rec go () =
      if Atomic.get pool.finished then ()
      else
        match Q.pop_bottom w.deque with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          run_task w t;
          go ()
        | None -> (
          match try_steal pool w with
          | Some t ->
            Nowa_util.Backoff.reset bo;
            failures := 0;
            run_task w t;
            go ()
          | None ->
            incr failures;
            if !failures mod pool.conf.Config.steal_attempts = 0 then
              Nowa_util.Backoff.once bo;
            go ())
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    let nw = max 1 conf.Config.workers in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m -> m "%s: starting %d workers" name nw);
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let pool =
      {
        conf;
        finished = Atomic.make false;
        workers =
          Array.init nw (fun i ->
              {
                id = i;
                deque = Q.create ~capacity:conf.Config.deque_capacity ();
                rng = Nowa_util.Xoshiro.make ~seed:(conf.Config.seed + (i * 7919) + 1);
                m = Metrics.make_worker i;
                tr = ring_for i;
                depth = 0;
              });
      }
    in
    Metrics.publish (Array.map (fun w -> w.m) pool.workers);
    let result = ref None in
    let root =
      Task
        (fun () ->
          (match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e));
          Atomic.set pool.finished true)
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (pool, w));
              Fun.protect
                ~finally:(fun () -> Domain.DLS.set current None)
                (fun () -> worker_loop pool w)))
    in
    let w0 = pool.workers.(0) in
    Domain.DLS.set current (Some (pool, w0));
    let teardown () =
      Domain.DLS.set current None;
      Atomic.set pool.finished true;
      List.iter Domain.join domains;
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        run_task w0 root;
        worker_loop pool w0;
        let elapsed = Unix.gettimeofday () -. t0 in
        last_trace_ref := trace;
        if conf.Config.collect_metrics then
          last_metrics_ref :=
            Some
              (Metrics.make
                 (Array.map (fun w -> w.m) pool.workers)
                 ~elapsed_s:elapsed));
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let scope f =
    ignore (get_current ());
    let fr = { pending = Atomic.make 0; exn_slot = Atomic.make None } in
    let finish () =
      let pool, w = get_current () in
      if Atomic.get fr.pending > 0 then wait_for pool w fr
      else w.m.fast_syncs <- w.m.fast_syncs + 1;
      match Atomic.exchange fr.exn_slot None with
      | Some e -> raise e
      | None -> ()
    in
    match f fr with
    | v ->
      finish ();
      v
    | exception e ->
      (try finish () with _ -> ());
      raise e

  let sync fr =
    let pool, w = get_current () in
    if Atomic.get fr.pending > 0 then wait_for pool w fr
    else w.m.fast_syncs <- w.m.fast_syncs + 1;
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let spawn fr thunk =
    let _, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Ring.emit w.tr Ev.Spawn 0;
    let p = Promise.make () in
    (* Pending is raised before the task is visible to thieves, so the
       join counter never needs the lock-or-wait-free machinery of the
       continuation-stealing engines. *)
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with
      | v -> Promise.fill p v
      | exception e ->
        Promise.fill_exn p e;
        note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Q.push_bottom w.deque (Task body);
    p

  let get p = Promise.get ~runtime:name p
end
