(** Child-stealing scheduler engine (Section II-B's alternative scheme),
    the structural model for TBB and for LLVM libomp's task scheduler.

    At a fork point the {e child task} is pushed to the worker's deque and
    the parent continues immediately (help-first).  Because the parent
    increments its frame's pending count {e before} publishing the child,
    the worker/thief race of Figure 6 does not arise here — the price is
    paid elsewhere: every child is a heap-allocated task, and joins are
    blocking-with-helping rather than suspending.

    [sync] is modelled on OpenMP's [taskwait]: the waiting strand loops,
    executing tasks until its children have all finished.

    - [Waiting.Steal_anywhere] (TBB, libomp untied tasks): the waiter
      helps from its own deque first and steals from victims otherwise.
    - [Waiting.Local_only] (libomp tied tasks): the task-scheduling
      constraint pins the waiter to tasks from its own deque; when that
      runs dry it can only spin.  This is the structural reason tied
      tasks over- or under-perform untied ones per benchmark in
      Figure 10/Table III. *)

module Waiting = struct
  type t = Steal_anywhere | Local_only
end

module Make
    (QM : Nowa_deque.Ws_deque_intf.MAKER)
    (Id : sig
      val name : string
      val description : string
      val waiting : Waiting.t
    end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type frame = { pending : int Atomic.t; exn_slot : exn option Atomic.t }
  type scope = frame

  type task = Task of (unit -> unit)

  module Q = QM (struct
    type t = task

    let dummy = Task ignore
  end)

  type worker = {
    id : int;
    deque : Q.t;
    rng : Nowa_util.Xoshiro.t;
    m : Metrics.worker;
    tr : Ring.t;
    hb : Health.Beats.t;  (* shared heartbeat words; worker beats its slot *)
    mutable depth : int;  (* task nesting while helping at a taskwait *)
  }

  type pool = {
    conf : Config.t;
    workers : worker array;
    finished : bool Atomic.t;
    sleepers : Sleepers.t;
  }

  let current : (pool * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None -> failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  (* Task bodies never raise ([spawn] and the root wrap the thunk), so
     the depth bookkeeping needs no exception handling. *)
  let run_task w (Task f) =
    w.m.tasks <- w.m.tasks + 1;
    w.depth <- w.depth + 1;
    if w.depth = 1 then Ring.emit w.tr Ev.Task_start 0;
    f ();
    if w.depth = 1 then Ring.emit w.tr Ev.Task_end 0;
    w.depth <- w.depth - 1;
    Health.Beats.beat w.hb w.id

  let no_commit _ = ()

  (* Sweep up to [steal_sweep] distinct victims; each probe is a batched
     ([steal_half]-style) grab of up to [steal_sweep] tasks under one
     acquisition.  The head is returned to run now; the surplus moves to
     the thief's own deque so the next LIFO pops serve it without
     touching the victim again.  Tasks are plain closures here, so
     re-homing them is always legal (no continuation ownership). *)
  let try_steal pool w =
    let n = Array.length pool.workers in
    if n = 1 then None
    else begin
      let sweep = min (max 1 pool.conf.Config.steal_sweep) (n - 1) in
      let start = Nowa_util.Xoshiro.int w.rng (n - 1) in
      let rec probe i =
        if i >= sweep then begin
          Nowa_obs.Histogram.observe Metrics.sweep_length sweep;
          None
        end
        else begin
          let v = (w.id + 1 + ((start + i) mod (n - 1))) mod n in
          w.m.steal_attempts <- w.m.steal_attempts + 1;
          Health.Beats.beat w.hb w.id;
          Ring.emit w.tr Ev.Steal_attempt v;
          match
            Q.steal_batch pool.workers.(v).deque ~max:sweep
              ~on_commit:no_commit
          with
          | [] ->
            Ring.emit w.tr Ev.Steal_abort v;
            probe (i + 1)
          | head :: extra ->
            w.m.steals <- w.m.steals + 1 + List.length extra;
            Ring.emit w.tr Ev.Steal_commit v;
            List.iter
              (fun t ->
                try Q.push_bottom w.deque t
                with Nowa_deque.Ws_deque_intf.Full -> run_task w t)
              extra;
            Nowa_obs.Histogram.observe Metrics.sweep_length (i + 1);
            Some head
        end
      in
      probe 0
    end

  (* OpenMP taskwait / TBB wait_for_all: execute tasks until the frame's
     children are gone.  LIFO from the own deque keeps the helper on its
     own subtree most of the time. *)
  let wait_for pool w fr =
    w.m.suspensions <- w.m.suspensions + 1;
    Ring.emit w.tr Ev.Suspend 0;
    let bo = Nowa_util.Backoff.make () in
    while Atomic.get fr.pending > 0 do
      match Q.pop_bottom w.deque with
      | Some t ->
        Nowa_util.Backoff.reset bo;
        run_task w t
      | None -> (
        match Id.waiting with
        | Waiting.Local_only -> Nowa_util.Backoff.once bo
        | Waiting.Steal_anywhere -> (
          match try_steal pool w with
          | Some t ->
            Nowa_util.Backoff.reset bo;
            run_task w t
          | None -> Nowa_util.Backoff.once bo))
    done

  (* Pre-park re-check: real steal probes over every deque (no size
     reads — they are unsynchronised on the locked deque), starting with
     the worker's own.  See {!Engine.sweep_all} for the ordering
     argument; it is identical here. *)
  let sweep_all pool w =
    match Q.pop_bottom w.deque with
    | Some t -> Some t
    | None ->
      let n = Array.length pool.workers in
      let rec go i =
        if i >= n then None
        else begin
          let v = (w.id + i) mod n in
          w.m.steal_attempts <- w.m.steal_attempts + 1;
          match Q.steal pool.workers.(v).deque ~on_commit:no_commit with
          | Some t ->
            w.m.steals <- w.m.steals + 1;
            Ring.emit w.tr Ev.Steal_commit v;
            Some t
          | None -> go (i + 1)
        end
      in
      go 0

  let park_round pool w =
    Health.Beats.beat w.hb w.id;
    ignore (Sleepers.announce pool.sleepers ~worker:w.id);
    let cancel () =
      if not (Sleepers.cancel pool.sleepers ~worker:w.id) then
        w.m.wake_retries <- w.m.wake_retries + 1
    in
    match sweep_all pool w with
    | Some _ as r ->
      cancel ();
      r
    | None ->
      if Atomic.get pool.finished then cancel ()
      else begin
        w.m.parks <- w.m.parks + 1;
        Ring.emit w.tr Ev.Park 0;
        let t0 = Nowa_util.Clock.now_ns () in
        Sleepers.park pool.sleepers ~worker:w.id;
        Health.Beats.beat w.hb w.id;
        w.m.parked_ns <- w.m.parked_ns + (Nowa_util.Clock.now_ns () - t0);
        Ring.emit w.tr Ev.Unpark 0
      end;
      None

  (* Same three-phase elastic idle path as the continuation-stealing
     engine: spin with backoff, then yield the timeslice, then park via
     the sleeper registry. *)
  let worker_loop pool w =
    let bo = Nowa_util.Backoff.make () in
    let spin_budget, can_park =
      match pool.conf.Config.idle_policy with
      | Config.Spin -> (max_int, false)
      | Config.Yield_after n -> (max 1 n, false)
      | Config.Park_after n -> (max 1 n, true)
    in
    let can_park = can_park && w.id < Sleepers.mask_bits in
    let rounds = ref 0 in
    let rec go () =
      if Atomic.get pool.finished then ()
      else
        match Q.pop_bottom w.deque with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          rounds := 0;
          run_task w t;
          go ()
        | None -> (
          match try_steal pool w with
          | Some t ->
            Nowa_util.Backoff.reset bo;
            rounds := 0;
            run_task w t;
            go ()
          | None ->
            incr rounds;
            if !rounds <= spin_budget then begin
              if !rounds mod pool.conf.Config.steal_attempts = 0 then
                Nowa_util.Backoff.once bo;
              go ()
            end
            else if (not can_park) || !rounds <= 2 * spin_budget then begin
              Unix.sleepf 0.0;
              go ()
            end
            else begin
              (match park_round pool w with
              | Some t ->
                Nowa_util.Backoff.reset bo;
                run_task w t
              | None -> ());
              Nowa_util.Backoff.reset bo;
              rounds := 0;
              go ()
            end)
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    let nw = max 1 conf.Config.workers in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m -> m "%s: starting %d workers" name nw);
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let hb =
      if conf.Config.heartbeats then Health.Beats.create ~workers:nw
      else Health.Beats.disabled
    in
    let pool =
      {
        conf;
        finished = Atomic.make false;
        sleepers = Sleepers.create ~workers:nw;
        workers =
          Array.init nw (fun i ->
              {
                id = i;
                deque = Q.create ~capacity:conf.Config.deque_capacity ();
                rng = Nowa_util.Xoshiro.make ~seed:(conf.Config.seed + (i * 7919) + 1);
                m = Metrics.make_worker i;
                tr = ring_for i;
                hb;
                depth = 0;
              });
      }
    in
    Metrics.publish (Array.map (fun w -> w.m) pool.workers);
    (match trace with
    | Some t ->
      Health.Recorder.register ~name:"trace" (fun ~dir ->
          let evs, _dropped = Nowa_trace.Trace.freeze ~window:4096 t in
          Nowa_trace.Perfetto.write_events_file
            (Filename.concat dir "trace.json")
            evs)
    | None -> Health.Recorder.unregister ~name:"trace");
    if conf.Config.watchdog_interval_ms > 0 then
      Runtime_guard.start_monitor (fun () ->
          let probe =
            {
              Health.engine = name;
              workers = nw;
              beat_of = (fun i -> Health.Beats.read hb i);
              announced = (fun i -> Sleepers.announced pool.sleepers ~worker:i);
              waiting = (fun i -> Sleepers.waiting pool.sleepers ~worker:i);
              wake_stamp =
                (fun i -> Sleepers.wake_stamp pool.sleepers ~worker:i);
              ready =
                (fun () ->
                  Array.fold_left
                    (fun acc w -> acc + Q.size w.deque)
                    0 pool.workers);
              sleepers = (fun () -> Sleepers.sleepers pool.sleepers);
              draining = (fun () -> Atomic.get pool.finished);
            }
          in
          let h =
            Health.Monitor.spawn
              ~interval_ms:conf.Config.watchdog_interval_ms
              ~stall_scans:conf.Config.watchdog_stall_scans
              ~dump:conf.Config.watchdog_dump probe
          in
          fun () -> Health.Monitor.stop h);
    let result = ref None in
    let root =
      Task
        (fun () ->
          (match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e));
          Atomic.set pool.finished true;
          Sleepers.wake_all pool.sleepers)
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (pool, w));
              Nowa_trace.Current.set ~worker:w.id w.tr;
              Fun.protect
                ~finally:(fun () ->
                  Domain.DLS.set current None;
                  Nowa_trace.Current.clear ())
                (fun () -> worker_loop pool w)))
    in
    let w0 = pool.workers.(0) in
    Domain.DLS.set current (Some (pool, w0));
    Nowa_trace.Current.set ~worker:w0.id w0.tr;
    let teardown () =
      Domain.DLS.set current None;
      Nowa_trace.Current.clear ();
      Atomic.set pool.finished true;
      Sleepers.wake_all pool.sleepers;
      List.iter Domain.join domains;
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        run_task w0 root;
        worker_loop pool w0;
        let elapsed = Unix.gettimeofday () -. t0 in
        last_trace_ref := trace;
        if conf.Config.collect_metrics then
          last_metrics_ref :=
            Some
              (Metrics.make
                 (Array.map (fun w -> w.m) pool.workers)
                 ~elapsed_s:elapsed));
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let scope f =
    ignore (get_current ());
    let fr = { pending = Atomic.make 0; exn_slot = Atomic.make None } in
    let finish () =
      let pool, w = get_current () in
      if Atomic.get fr.pending > 0 then wait_for pool w fr
      else w.m.fast_syncs <- w.m.fast_syncs + 1;
      match Atomic.exchange fr.exn_slot None with
      | Some e -> raise e
      | None -> ()
    in
    match f fr with
    | v ->
      finish ();
      v
    | exception e ->
      (try finish () with _ -> ());
      raise e

  let sync fr =
    let pool, w = get_current () in
    if Atomic.get fr.pending > 0 then wait_for pool w fr
    else w.m.fast_syncs <- w.m.fast_syncs + 1;
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let spawn fr thunk =
    let pool, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    let p = Promise.make () in
    (* Pending is raised before the task is visible to thieves, so the
       join counter never needs the lock-or-wait-free machinery of the
       continuation-stealing engines. *)
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with
      | v -> Promise.fill p v
      | exception e ->
        Promise.fill_exn p e;
        note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Q.push_bottom w.deque (Task body);
    (* One load when nobody sleeps; CAS + signal only for a sleeper. *)
    if Sleepers.wake_one pool.sleepers then w.m.wakeups <- w.m.wakeups + 1;
    p

  let spawn_unit fr thunk =
    let pool, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with () -> () | exception e -> note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Q.push_bottom w.deque (Task body);
    if Sleepers.wake_one pool.sleepers then w.m.wakeups <- w.m.wakeups + 1

  let get p = Promise.get ~runtime:name p
end
