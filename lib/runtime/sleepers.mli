(** Wait-free sleeper registry: the spawn-side half of worker parking.

    One atomic word packs {b who is asleep} (a bitmask, one bit per
    worker, low {!mask_bits} bits) with a {b wake epoch} (the remaining
    high bits, bumped on every successful wake so each wake transition is
    a unique word value).  The contract that keeps the spawn/join hot
    path wait-free:

    - [wake_one]'s fast path is a {e single} [Atomic.get].  When no
      worker is parked — the common case on a saturated machine — the
      spawner pays one load and nothing else: no CAS, no lock, no
      syscall.  Only when the mask is non-empty does it CAS a bit out
      and signal that worker's condition variable.
    - parking itself (announce → re-check → block) is confined to the
      idle path, where the worker by definition has nothing better to do;
      a CAS loop there costs no strand any progress.

    No lost wake-ups: a worker [announce]s its bit {e before} its final
    sweep of all deques, and a spawner pushes its task {e before} reading
    the word.  OCaml atomics are sequentially consistent, so either the
    spawner's load sees the bit (and wakes the worker), or the announce
    ordered after that load — in which case the push ordered before the
    announce, hence before the sweep, and the sweep finds the task (or a
    racing thief already took it, in which case that thief is awake and
    holding work).  Either way a pushed task is never stranded with every
    worker asleep.

    Wake/cancel races are absorbed by a per-worker counting semaphore
    (mutex + condvar + token count): a wake delivered to a worker that
    cancelled in time leaves a token that merely makes the {e next} park
    return immediately — a spurious extra steal round, never a hang. *)

type t

val mask_bits : int
(** Number of workers the bitmask can register (48).  {!create} rejects
    wider registries loudly, so every constructed registry can park all
    of its workers — a >48-worker configuration must be split into
    pools of at most this size. *)

val create : workers:int -> t
(** Build a registry for [workers] workers.  Raises [Invalid_argument]
    if [workers > mask_bits]: the old behaviour silently degraded
    oversized workers' [Park_after] to spin-forever with skewed wake
    accounting (ISSUE 10 bugfix). *)

val announce : t -> worker:int -> bool
(** Set this worker's sleeper bit.  Must be called {e before} the final
    emptiness re-check that precedes {!park}.  Always returns [true];
    raises [Invalid_argument] on an id outside the registry (impossible
    from the engines — {!create} already validated the pool size). *)

val cancel : t -> worker:int -> bool
(** Clear this worker's bit after deciding not to park (work appeared,
    or shutdown).  Returns [false] if a waker already claimed the bit —
    a token is then in flight and the next {!park} will consume it
    immediately; callers count that as a lost-wakeup retry. *)

val park : t -> worker:int -> unit
(** Block until a token is available for this worker, then consume it.
    Callers must have [announce]d and re-checked for work first. *)

val wake_one : t -> bool
(** Wake one parked worker if any.  Fast path: one atomic load returning
    [false] when nobody sleeps.  Returns [true] if a sleeper bit was
    claimed and its owner signalled.  The victim scan starts at the
    current wake epoch modulo {!mask_bits} and wraps, so repeated wakes
    rotate round-robin over the parked workers rather than always
    reviving the lowest-indexed one (which would leave high-indexed
    workers — and their stolen-into deques — cold through a burst). *)

val wake_all : t -> unit
(** Claim every sleeper bit and signal all the owners.  Used at
    shutdown so no worker stays parked past [finished]. *)

val sleepers : t -> int
(** Current number of announced sleepers (popcount of the mask). *)

val epoch : t -> int
(** Wake epoch: total successful wake transitions so far (mod 2^15). *)

(** {2 Watchdog sampling}

    Read-only accessors for the health monitor, which samples sleeper
    state from its own thread without locks.  A worker counts as
    {e parked-or-parking} when its mask bit is set {b or} its waiting
    flag is up; the wake stamp distinguishes "woken but not yet
    rescheduled" from "no motion at all" across a sampling window. *)

val announced : t -> worker:int -> bool
(** This worker's sleeper bit is currently set. *)

val waiting : t -> worker:int -> bool
(** This worker is inside the blocking span of {!park}: the flag rises
    before the token check and falls only after a token is consumed, so
    it stays up across the announce-claimed-but-token-in-flight window
    where the mask bit alone would misread the worker as running. *)

val wake_stamp : t -> worker:int -> int
(** Count of this worker's bit-ownership transitions (wakes by others,
    cancels by itself).  A change between two samples is progress even
    when no heartbeat landed in between. *)
