let mask_bits = 48

let mask_all = (1 lsl mask_bits) - 1
let epoch_one = 1 lsl mask_bits

(* Per-worker counting semaphore.  [tokens] only moves under [mu]; it can
   exceed 1 transiently when a wake races a cancel, which just makes the
   next park return immediately. *)
type slot = { mu : Mutex.t; cv : Condition.t; mutable tokens : int }

type t = { word : int Atomic.t; slots : slot array }

let create ~workers =
  {
    word = Atomic.make 0;
    slots =
      Array.init workers (fun _ ->
          { mu = Mutex.create (); cv = Condition.create (); tokens = 0 });
  }

let announce t ~worker =
  if worker >= mask_bits then false
  else begin
    let bit = 1 lsl worker in
    let rec go () =
      let cur = Atomic.get t.word in
      if Atomic.compare_and_set t.word cur (cur lor bit) then ()
      else go ()
    in
    go ();
    true
  end

let cancel t ~worker =
  let bit = 1 lsl worker in
  let rec go () =
    let cur = Atomic.get t.word in
    if cur land bit = 0 then false (* a waker claimed us first *)
    else if Atomic.compare_and_set t.word cur (cur lxor bit) then true
    else go ()
  in
  go ()

let post slot =
  Mutex.lock slot.mu;
  slot.tokens <- slot.tokens + 1;
  Condition.signal slot.cv;
  Mutex.unlock slot.mu

let park t ~worker =
  let slot = t.slots.(worker) in
  Mutex.lock slot.mu;
  while slot.tokens = 0 do
    Condition.wait slot.cv slot.mu
  done;
  slot.tokens <- slot.tokens - 1;
  Mutex.unlock slot.mu

(* Lowest set bit index; the mask is never 0 when called. *)
let ctz m =
  let rec go i = if m land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let wake_one t =
  (* Single load on the fast path: the spawn-side cost when nobody
     sleeps.  Everything below only runs with a sleeper present. *)
  if Atomic.get t.word land mask_all = 0 then false
  else begin
    let rec go () =
      let cur = Atomic.get t.word in
      let mask = cur land mask_all in
      if mask = 0 then false
      else begin
        let w = ctz mask in
        let next = (cur lxor (1 lsl w)) + epoch_one in
        if Atomic.compare_and_set t.word cur next then begin
          post t.slots.(w);
          true
        end
        else go ()
      end
    in
    go ()
  end

let wake_all t =
  let rec go () =
    let cur = Atomic.get t.word in
    let mask = cur land mask_all in
    if mask = 0 then ()
    else if Atomic.compare_and_set t.word cur (cur - mask + epoch_one) then begin
      let rec signal m =
        if m <> 0 then begin
          let w = ctz m in
          post t.slots.(w);
          signal (m lxor (1 lsl w))
        end
      in
      signal mask
    end
    else go ()
  in
  go ()

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let sleepers t = popcount (Atomic.get t.word land mask_all)
let epoch t = (Atomic.get t.word lsr mask_bits) land 0x7fff
