let mask_bits = 48

let mask_all = (1 lsl mask_bits) - 1
let epoch_one = 1 lsl mask_bits

(* Per-worker counting semaphore.  [tokens] only moves under [mu]; it can
   exceed 1 transiently when a wake races a cancel, which just makes the
   next park return immediately.

   [waiting] and [stamp] exist for the health watchdog, which samples
   sleeper state from outside without taking [mu]:

   - [waiting] is 1 for the whole span a worker can block inside {!park}
     — set before the token check, cleared only after the token is
     consumed.  It covers the announce-claimed-but-token-in-flight
     window where the worker's mask bit is already gone (a waker owns
     it) yet the worker is still, or about to be, blocked: without it a
     sampler would read "unparked, no progress" and misflag a healthy
     parked worker.
   - [stamp] counts ownership transitions of the worker's mask bit
     (claimed by a waker, or cancelled by the worker itself).  A sampler
     that sees the stamp move knows the worker was woken or self-woke
     inside the window, i.e. made progress even if no heartbeat landed
     yet. *)
type slot = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable tokens : int;
  waiting : int Atomic.t;
  stamp : int Atomic.t;
}

type t = { word : int Atomic.t; slots : slot array }

let create ~workers =
  (* Loud validation at pool construction (ISSUE 10): a registry wider
     than the bitmask used to degrade [Park_after] into spin-forever for
     workers >= mask_bits, with skewed wake accounting.  Per-pool
     registries keep practical pool sizes well under the limit, so an
     oversized request is a configuration bug, not a mode. *)
  if workers > mask_bits then
    invalid_arg
      (Printf.sprintf
         "Sleepers.create: %d workers exceed the registry's %d-bit mask; \
          split the configuration into pools of at most %d workers"
         workers mask_bits mask_bits);
  {
    (* Every spawn loads this word (the wake-one fast path); isolate it
       so sleeper announcements don't share a line with neighbours. *)
    word = Nowa_util.Padding.atomic 0;
    slots =
      Array.init workers (fun _ ->
          {
            mu = Mutex.create ();
            cv = Condition.create ();
            tokens = 0;
            waiting = Nowa_util.Padding.atomic 0;
            stamp = Nowa_util.Padding.atomic 0;
          });
  }

let announce t ~worker =
  (* [create] rejects oversized registries, so an out-of-range id here
     is a caller bug — fail loudly instead of silently refusing to park
     (the old behaviour degraded Park_after to spin-forever). *)
  if worker < 0 || worker >= Array.length t.slots then
    invalid_arg
      (Printf.sprintf "Sleepers.announce: worker %d outside registry of %d"
         worker (Array.length t.slots));
  let bit = 1 lsl worker in
  let rec go () =
    let cur = Atomic.get t.word in
    if Atomic.compare_and_set t.word cur (cur lor bit) then ()
    else go ()
  in
  go ();
  true

let cancel t ~worker =
  let bit = 1 lsl worker in
  let rec go () =
    let cur = Atomic.get t.word in
    if cur land bit = 0 then false (* a waker claimed us first *)
    else if Atomic.compare_and_set t.word cur (cur lxor bit) then begin
      Atomic.incr t.slots.(worker).stamp;
      true
    end
    else go ()
  in
  go ()

let post slot =
  Mutex.lock slot.mu;
  slot.tokens <- slot.tokens + 1;
  Condition.signal slot.cv;
  Mutex.unlock slot.mu

let park t ~worker =
  let slot = t.slots.(worker) in
  Atomic.set slot.waiting 1;
  Mutex.lock slot.mu;
  while slot.tokens = 0 do
    Condition.wait slot.cv slot.mu
  done;
  slot.tokens <- slot.tokens - 1;
  Mutex.unlock slot.mu;
  Atomic.set slot.waiting 0

(* Lowest set bit index in constant time via binary search on the
   isolated bit (the de Bruijn multiply is unsound on OCaml's 63-bit
   native ints, where the 64-bit constant wraps).  The mask is never 0
   when called; only the low [mask_bits] bits are ever set. *)
let ctz m =
  let b = m land -m in
  let i = 0 in
  let i = if b land 0xFFFF_FFFF <> 0 then i else i + 32 in
  let i = if b land (0xFFFF lsl i) <> 0 then i else i + 16 in
  let i = if b land (0xFF lsl i) <> 0 then i else i + 8 in
  let i = if b land (0xF lsl i) <> 0 then i else i + 4 in
  let i = if b land (0x3 lsl i) <> 0 then i else i + 2 in
  if b land (0x1 lsl i) <> 0 then i else i + 1

let wake_one t =
  (* Single load on the fast path: the spawn-side cost when nobody
     sleeps.  Everything below only runs with a sleeper present. *)
  if Atomic.get t.word land mask_all = 0 then false
  else begin
    let rec go () =
      let cur = Atomic.get t.word in
      let mask = cur land mask_all in
      if mask = 0 then false
      else begin
        (* Rotate the scan start by the wake epoch so successive wakes
           walk the sleepers round-robin instead of hammering the
           lowest-indexed worker (which otherwise absorbs every
           wake/park cycle while high-indexed workers sleep through
           bursts). *)
        let r = ((cur lsr mask_bits) land 0x7fff) mod mask_bits in
        let rot = (mask lsr r) lor ((mask lsl (mask_bits - r)) land mask_all) in
        let w = (ctz rot + r) mod mask_bits in
        let next = (cur lxor (1 lsl w)) + epoch_one in
        if Atomic.compare_and_set t.word cur next then begin
          Atomic.incr t.slots.(w).stamp;
          post t.slots.(w);
          true
        end
        else go ()
      end
    in
    go ()
  end

let wake_all t =
  let rec go () =
    let cur = Atomic.get t.word in
    let mask = cur land mask_all in
    if mask = 0 then ()
    else if Atomic.compare_and_set t.word cur (cur - mask + epoch_one) then begin
      let rec signal m =
        if m <> 0 then begin
          let w = ctz m in
          Atomic.incr t.slots.(w).stamp;
          post t.slots.(w);
          signal (m lxor (1 lsl w))
        end
      in
      signal mask
    end
    else go ()
  in
  go ()

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let sleepers t = popcount (Atomic.get t.word land mask_all)
let epoch t = (Atomic.get t.word lsr mask_bits) land 0x7fff

(* --- watchdog sampling accessors (read-only, no locks) ------------------- *)

let announced t ~worker =
  worker < mask_bits && Atomic.get t.word land (1 lsl worker) <> 0

let waiting t ~worker =
  worker < Array.length t.slots && Atomic.get t.slots.(worker).waiting = 1

let wake_stamp t ~worker =
  if worker < Array.length t.slots then Atomic.get t.slots.(worker).stamp
  else 0
