(** Scheduler observability: per-worker event counters, written without
    synchronisation by their owning worker and aggregated after the worker
    domains have been joined. *)

type worker = {
  id : int;  (** global worker index *)
  pool : string;
      (** owning micropool's name; ["main"] in flat topologies.  When a
          run has several pools the collector additionally emits
          pool-labelled variants of the key [nowa_scheduler_*] series
          ([...{pool="name"}]); the unlabelled aggregates are always
          present with unchanged names. *)
  mutable spawns : int;  (** spawn points executed *)
  mutable steals : int;  (** successful steals committed *)
  mutable steal_attempts : int;  (** steal attempts including failures *)
  mutable lost_continuations : int;
      (** pops that came back empty because a thief won (implicit syncs) *)
  mutable suspensions : int;  (** explicit syncs that had to suspend *)
  mutable fast_syncs : int;  (** explicit syncs satisfied immediately *)
  mutable fused_syncs : int;
      (** explicit syncs that took the fused no-steal fast path: the
          pending hint was zero, so publication, stack handover and the
          resume exchange were all skipped (fusion audit, ISSUE 9) *)
  mutable resumes : int;  (** suspended frames resumed by this worker *)
  mutable tasks : int;  (** tasks executed from the scheduler loop *)
  mutable stack_acquires : int;
  mutable stack_releases : int;
  mutable parks : int;  (** times this worker blocked on its condvar *)
  mutable parked_ns : int;  (** nanoseconds spent parked (zero CPU) *)
  mutable wakeups : int;  (** wake-ups this worker issued as a spawner *)
  mutable wake_retries : int;
      (** park cancellations that raced a wake; the stray token makes a
          later park return immediately (lost-wakeup retry, benign) *)
}

type stack_stats = {
  allocated_stacks : int;  (** stacks ever allocated *)
  live_stacks : int;  (** stacks currently checked out of the pool *)
  max_rss_pages : int;  (** resident-page watermark (Table II) *)
  madvise_calls : int;
  pool_hits : int;  (** acquisitions that crossed the global pool lock *)
}

type t = {
  workers : worker array;
  elapsed_s : float;
  stacks : stack_stats option;
      (** only the continuation-stealing engines manage simulated
          cactus stacks *)
}

val make_worker : ?pool:string -> int -> worker
val make : ?stacks:stack_stats -> worker array -> elapsed_s:float -> t

val sweep_length : Nowa_obs.Histogram.t
(** [nowa_scheduler_steal_sweep_length]: victims probed per steal round
    before success or give-up; observed by the engines per sweep. *)

val total : t -> (worker -> int) -> int
(** Sum a counter over all workers. *)

val pp : Format.formatter -> t -> unit

val publish : ?stacks:(unit -> stack_stats) -> worker array -> unit
(** Make the given per-worker records (and optionally a stack-stats
    closure) the live source behind the [nowa_scheduler_*] /
    [nowa_stacks_*] metrics on {!Nowa_obs.Registry.default}.  Called by
    an engine when a run starts; scrapes then read the workers' plain
    mutable counters relaxed, cross-domain — approximate while running,
    exact once the worker domains have joined.  Each call replaces the
    previous source; the last run's totals stay visible after the join
    so end-of-process dumps are meaningful. *)
