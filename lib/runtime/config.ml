type victim_policy = Random | Round_robin
type madvise_mode = Madv_free | Madv_dontneed
type idle_policy = Spin | Yield_after of int | Park_after of int

type t = {
  workers : int;
  deque_capacity : int;
  steal_attempts : int;
  victim_policy : victim_policy;
  seed : int;
  madvise : bool;
  madvise_cost_ns : int;
  madvise_mode : madvise_mode;
  refault_ns : int;
  stack_pages : int;
  local_stack_cache : int;
  stack_limit : int option;
  collect_metrics : bool;
  trace_capacity : int;
  idle_policy : idle_policy;
  steal_sweep : int;
  heartbeats : bool;
  watchdog_interval_ms : int;
  watchdog_stall_scans : int;
  watchdog_dump : bool;
}

let default () =
  {
    workers = Nowa_util.Cpu.default_workers ();
    deque_capacity = 256;
    steal_attempts = 4;
    victim_policy = Random;
    seed = 0x5eed;
    madvise = false;
    madvise_cost_ns = 2_000;
    madvise_mode = Madv_free;
    refault_ns = 1_000;
    stack_pages = 256;
    local_stack_cache = 4;
    stack_limit = None;
    collect_metrics = true;
    trace_capacity = 0;
    idle_policy = Park_after 512;
    steal_sweep = 2;
    heartbeats = true;
    watchdog_interval_ms = 0;
    watchdog_stall_scans = 2;
    watchdog_dump = true;
  }

let with_workers n = { (default ()) with workers = max 1 n }
