type victim_policy = Random | Round_robin
type madvise_mode = Madv_free | Madv_dontneed
type idle_policy = Spin | Yield_after of int | Park_after of int

type pool_conf = {
  pc_name : string;
  pc_workers : int;
  pc_idle_policy : idle_policy option;
  pc_steal_sweep : int option;
  pc_deque_capacity : int option;
}

type t = {
  workers : int;
  deque_capacity : int;
  steal_attempts : int;
  victim_policy : victim_policy;
  seed : int;
  madvise : bool;
  madvise_cost_ns : int;
  madvise_mode : madvise_mode;
  refault_ns : int;
  stack_pages : int;
  local_stack_cache : int;
  stack_limit : int option;
  collect_metrics : bool;
  trace_capacity : int;
  idle_policy : idle_policy;
  steal_sweep : int;
  heartbeats : bool;
  watchdog_interval_ms : int;
  watchdog_stall_scans : int;
  watchdog_dump : bool;
  pools : pool_conf list;
  spill_over : bool;
}

let default () =
  {
    (* Clamped to the sleeper registry's bitmask width: a pool larger
       than [Sleepers.mask_bits] is rejected loudly at construction, and
       the implicit single pool built from the default must stay valid
       on very wide hosts. *)
    workers = min (Nowa_util.Cpu.default_workers ()) Sleepers.mask_bits;
    deque_capacity = 256;
    steal_attempts = 4;
    victim_policy = Random;
    seed = 0x5eed;
    madvise = false;
    madvise_cost_ns = 2_000;
    madvise_mode = Madv_free;
    refault_ns = 1_000;
    stack_pages = 256;
    local_stack_cache = 4;
    stack_limit = None;
    collect_metrics = true;
    trace_capacity = 0;
    idle_policy = Park_after 512;
    steal_sweep = 2;
    heartbeats = true;
    watchdog_interval_ms = 0;
    watchdog_stall_scans = 2;
    watchdog_dump = true;
    pools = [];
    spill_over = false;
  }

let with_workers n = { (default ()) with workers = max 1 n }

let pool ?idle_policy ?steal_sweep ?deque_capacity name ~workers =
  {
    pc_name = name;
    pc_workers = workers;
    pc_idle_policy = idle_policy;
    pc_steal_sweep = steal_sweep;
    pc_deque_capacity = deque_capacity;
  }
