(* Flat result cell: one two-field record per spawn, no per-fill variant
   box.  [state] is 0 = pending, 1 = done, 2 = failed; [value] holds the
   result (or the exception) behind [Obj.t] so filling writes an existing
   field instead of allocating a [Done v] constructor.  The [Obj.magic]
   is confined to this module: [value] is only read as ['a] after [state]
   was observed as 1, and only as [exn] after 2, and both writes happen
   before the join-counter decrement that publishes them (see the .mli
   for the cross-domain argument). *)

type 'a t = { mutable value : Obj.t; mutable state : int }

let pending = 0
let done_ = 1
let failed = 2
let nil = Obj.repr ()

let make () = { value = nil; state = pending }

let fill p v =
  p.value <- Obj.repr v;
  p.state <- done_

let fill_exn p e =
  p.value <- Obj.repr e;
  p.state <- failed

let get ~runtime p =
  let s = p.state in
  if s = done_ then (Obj.obj p.value : 'a)
  else if s = failed then raise (Obj.obj p.value : exn)
  else
    invalid_arg
      (runtime
     ^ ": promise read before the child was synced (fully-strictness \
        violation)")
