(* Flat result cell: one two-field record per spawn, no per-fill variant
   box.  [state] is 0 = pending, 1 = done, 2 = failed; [value] holds the
   result (or the exception) behind [Obj.t] so filling writes an existing
   field instead of allocating a [Done v] constructor.  The [Obj.magic]
   is confined to this module: [value] is only read as ['a] after [state]
   was observed as 1, and only as [exn] after 2, and both writes happen
   before the join-counter decrement that publishes them (see the .mli
   for the cross-domain argument). *)

type 'a t = { mutable value : Obj.t; mutable state : int }

let pending = 0
let done_ = 1
let failed = 2

(* Cross-pool completion cell (ISSUE 10): a promise minted by [spawn_on]
   is filled by a worker of a foreign pool whose join counters the
   caller never observes, so the flat cell's publish-through-the-join
   argument does not apply.  Such a promise carries [state = remote]
   permanently; [value] then holds a mutex/condvar box with its own
   state machine inside.  The flat hot-path layout (two words, zero
   extra fields) is untouched — only [spawn_on] pays for the box. *)
let remote = 3

type remote_box = {
  rmu : Mutex.t;
  rcv : Condition.t;
  mutable rstate : int;  (* pending / done_ / failed, moved under rmu *)
  mutable rvalue : Obj.t;
}

let nil = Obj.repr ()

let make () = { value = nil; state = pending }

let make_remote () =
  {
    value =
      Obj.repr
        { rmu = Mutex.create (); rcv = Condition.create (); rstate = pending;
          rvalue = nil };
    state = remote;
  }

let box p : remote_box = Obj.obj p.value

let fill p v =
  p.value <- Obj.repr v;
  p.state <- done_

let fill_exn p e =
  p.value <- Obj.repr e;
  p.state <- failed

let fill_remote_with p st v =
  let b = box p in
  Mutex.lock b.rmu;
  b.rvalue <- v;
  b.rstate <- st;
  Condition.broadcast b.rcv;
  Mutex.unlock b.rmu

let fill_remote p v = fill_remote_with p done_ (Obj.repr v)
let fill_remote_exn p e = fill_remote_with p failed (Obj.repr e)

let not_ready runtime =
  invalid_arg
    (runtime
   ^ ": promise read before the child was synced (fully-strictness \
      violation)")

let remote_get ~runtime p =
  let b = box p in
  Mutex.lock b.rmu;
  let st = b.rstate and v = b.rvalue in
  Mutex.unlock b.rmu;
  if st = done_ then (Obj.obj v : 'a)
  else if st = failed then raise (Obj.obj v : exn)
  else not_ready runtime

let get ~runtime p =
  let s = p.state in
  if s = done_ then (Obj.obj p.value : 'a)
  else if s = failed then raise (Obj.obj p.value : exn)
  else if s = remote then remote_get ~runtime p
  else not_ready runtime

let await ~runtime p =
  let s = p.state in
  if s = done_ then (Obj.obj p.value : 'a)
  else if s = failed then raise (Obj.obj p.value : exn)
  else if s = remote then begin
    let b = box p in
    Mutex.lock b.rmu;
    while b.rstate = pending do
      Condition.wait b.rcv b.rmu
    done;
    let st = b.rstate and v = b.rvalue in
    Mutex.unlock b.rmu;
    if st = done_ then (Obj.obj v : 'a) else raise (Obj.obj v : exn)
  end
  else
    (* A flat promise is filled through its own pool's join protocol;
       there is nothing to block on from outside it. *)
    invalid_arg
      (runtime
     ^ ": await on an unfilled same-pool promise (sync the enclosing \
        scope instead)")
