(** Live runtime health: wait-free heartbeats, the stall/convoy
    watchdog, and the dump-on-anomaly flight recorder.

    The runtime's progress claims are about adversarial schedules, yet
    until now a stall could only be explained after the fact (post-join
    traces, anatomy tables).  This module watches a {e running} pool:

    - {b Heartbeats} ({!Beats}): one padded plain-int word per worker,
      bumped by a single unfenced store at each scheduler station point
      (task completion, steal attempt, park/unpark).  Nothing on the hot
      path reads them; the monitor samples them relaxed.  The DRF story
      is the same as {!Metrics}: the words are immediates, OCaml int
      stores cannot tear, and a sampling monitor only needs "did the
      value move", never a consistent cross-worker cut.
    - {b Watchdog} ({!Monitor}): a dedicated thread sampling heartbeats
      plus sleeper state ({!Sleepers.announced}, {!Sleepers.waiting},
      {!Sleepers.wake_stamp}) every [watchdog_interval_ms].  A worker
      with no heartbeat motion is {e parked-idle} when its sleeper bit
      or waiting flag is up, and {e stalled} only after
      [watchdog_stall_scans] consecutive scans with no motion, no wake
      activity, and no parked indication — so the park/wake token race
      (bit claimed, token in flight) never misflags a healthy sleeper.
      Pool-wide, visible ready work with no progress anywhere while
      workers sleep is {e starvation} — the lost-wakeup signature.
      Subsystems above the runtime (the KV combiner's convoy detector,
      the serve-path SLO burn-rate evaluator) register verdict sources
      that the same scan polls.
    - {b Flight recorder} ({!Recorder}): on any verdict (or on demand),
      freezes the wait-free trace rings at their published indexes
      ({!Nowa_trace.Ring.snapshot}) and writes a postmortem bundle under
      [artifacts/]: recent-window Perfetto trace, Prometheus metrics
      snapshot, any registered extras (anatomy top-K tail), and the
      per-worker verdict table.
    - {b Fault injection} ({!Inject}): a one-shot hook that wedges a
      chosen worker inside its next heartbeat for a bounded time, so the
      whole detection path can be proven end to end from the CLI
      ([nowa_run --inject-stall worker:N:ms]).

    The monitor thread itself is owned by {!Runtime_guard} — exactly one
    per process, joined at run teardown — and its scan timestamp is
    exported as the [nowa_watchdog_last_scan_ns] gauge so a dead monitor
    is itself observable. *)

(* --- heartbeats ---------------------------------------------------------- *)

module Beats = struct
  type t = { on : bool; slots : int array }
  (* One int per worker, spaced a cache line apart so two workers'
     heartbeat stores never share a line. *)

  let stride = Nowa_util.Padding.cache_line_words

  let disabled = { on = false; slots = [||] }

  let create ~workers =
    { on = true; slots = Array.make ((max 1 workers + 2) * stride) 0 }

  let read t w = if t.on then t.slots.((w + 1) * stride) else 0

  (* Injection arming is a plain bool so an un-injected beat pays one
     predictable extra branch; the spec itself is an atomic consumed by
     CAS so the stall fires exactly once. *)
  let inject_armed = ref false
  let inject_spec : (int * int) option Atomic.t = Atomic.make None

  let[@inline never] maybe_inject w =
    (* CAS against the witnessed value (physical equality), so exactly
       one beat consumes the spec even if two workers race here. *)
    let cur = Atomic.get inject_spec in
    match cur with
    | Some (iw, ms) when iw = w ->
      if Atomic.compare_and_set inject_spec cur None then begin
        inject_armed := false;
        Nowa_util.Clock.spin_ns (ms * 1_000_000)
      end
    | _ -> ()

  let[@inline] beat t w =
    if t.on then begin
      let i = (w + 1) * stride in
      t.slots.(i) <- t.slots.(i) + 1;
      if !inject_armed then maybe_inject w
    end
end

module Inject = struct
  (** Arm a one-shot stall: the next heartbeat worker [worker] lands
      spins for [ms] milliseconds before returning, freezing that worker
      mid-schedule exactly as a runaway task or a pathological syscall
      would. *)
  let stall ~worker ~ms =
    Atomic.set Beats.inject_spec (Some (worker, max 0 ms));
    Beats.inject_armed := true

  let clear () =
    Beats.inject_armed := false;
    Atomic.set Beats.inject_spec None

  (* "worker:N:ms", "N:ms" or "N" (default 200ms). *)
  let parse_stall s =
    let parts = String.split_on_char ':' s in
    let parts = match parts with "worker" :: rest -> rest | p -> p in
    match parts with
    | [ w ] -> (
      match int_of_string_opt w with Some w -> Some (w, 200) | None -> None)
    | [ w; ms ] -> (
      match (int_of_string_opt w, int_of_string_opt ms) with
      | Some w, Some ms -> Some (w, ms)
      | _ -> None)
    | _ -> None
end

(* --- verdicts ------------------------------------------------------------ *)

type verdict =
  | Worker_stalled of { pool : string; worker : int; scans : int }
      (** No heartbeat motion, no wake activity, not parked, for that
          many consecutive scans.  [worker] is the pool-local id —
          together with [pool] it names the worker uniquely in a
          multi-pool topology (ISSUE 10: two pools' worker 0s must not
          alias). *)
  | Starvation of { ready : int; scans : int }
      (** Ready work visible (deque/central-queue depth) but no worker
          progressed while at least one slept — a lost wakeup. *)
  | Convoy of { shard : int; depth : int; held_ms : float }
      (** A KV combiner claim held past threshold with a deep mailbox. *)
  | Slo_burn of {
      long_s : float;
      short_s : float;
      long_burn : float;
      short_burn : float;
    }  (** Serve-path error budget burning past factor on both windows. *)

let verdict_kind = function
  | Worker_stalled _ -> "worker_stalled"
  | Starvation _ -> "starvation"
  | Convoy _ -> "convoy"
  | Slo_burn _ -> "slo_burn"

let verdict_to_json = function
  | Worker_stalled { pool; worker; scans } ->
    Printf.sprintf
      "{\"kind\":\"worker_stalled\",\"pool\":%S,\"worker\":%d,\"scans\":%d}"
      pool worker scans
  | Starvation { ready; scans } ->
    Printf.sprintf "{\"kind\":\"starvation\",\"ready\":%d,\"scans\":%d}" ready
      scans
  | Convoy { shard; depth; held_ms } ->
    Printf.sprintf
      "{\"kind\":\"convoy\",\"shard\":%d,\"depth\":%d,\"held_ms\":%.3f}" shard
      depth held_ms
  | Slo_burn { long_s; short_s; long_burn; short_burn } ->
    Printf.sprintf
      "{\"kind\":\"slo_burn\",\"long_s\":%g,\"short_s\":%g,\"long_burn\":%.3f,\"short_burn\":%.3f}"
      long_s short_s long_burn short_burn

let verdict_to_string = function
  | Worker_stalled { pool; worker; scans } ->
    Printf.sprintf "worker %s/%d stalled (%d scans, unparked, no heartbeat)"
      pool worker scans
  | Starvation { ready; scans } ->
    Printf.sprintf "starvation: %d task(s) visible, no progress for %d scans"
      ready scans
  | Convoy { shard; depth; held_ms } ->
    Printf.sprintf "convoy: shard %d claim held %.1fms with depth %d" shard
      held_ms depth
  | Slo_burn { long_s; short_s; long_burn; short_burn } ->
    Printf.sprintf
      "SLO burn: %.1fx over %gs and %.1fx over %gs (budget-relative)"
      long_burn long_s short_burn short_s

(* --- what the watchdog samples ------------------------------------------ *)

type probe = {
  engine : string;
  workers : int;
  pool_of : int -> string * int;
      (** Global worker index → (pool name, pool-local id).  Heartbeat
          and sleeper accessors below still take the global index; this
          mapping keys rows and verdicts by [(pool, worker)] so
          multi-pool topologies never alias two workers into one row. *)
  beat_of : int -> int;
  announced : int -> bool;
  waiting : int -> bool;
  wake_stamp : int -> int;
  ready : unit -> int;  (** visible queued work: deque sizes / central depth *)
  sleepers : unit -> int;
  draining : unit -> bool;
      (** Pool shutdown in progress: workers exit their domains and
          their heartbeats freeze for good reasons, so stall and
          starvation classification is suspended. *)
}

(** A static probe for runtimes without a scheduler (serial elision):
    never parked, no queue, beats only at run boundaries. *)
let static_probe ~engine ~workers ~beats =
  {
    engine;
    workers;
    pool_of = (fun w -> ("main", w));
    beat_of = (fun w -> Beats.read beats w);
    announced = (fun _ -> false);
    waiting = (fun _ -> false);
    wake_stamp = (fun _ -> 0);
    ready = (fun () -> 0);
    sleepers = (fun () -> 0);
    draining = (fun () -> false);
  }

(* Extra verdict sources registered by layers above the runtime (KV
   convoy probe, burn-rate evaluator).  Registration is cold-path. *)
let sources_mu = Mutex.create ()
let sources : (string * (unit -> verdict list)) list ref = ref []

let register_source ~name f =
  Mutex.lock sources_mu;
  sources := (name, f) :: List.remove_assoc name !sources;
  Mutex.unlock sources_mu

let unregister_source ~name =
  Mutex.lock sources_mu;
  sources := List.remove_assoc name !sources;
  Mutex.unlock sources_mu

let poll_sources () =
  Mutex.lock sources_mu;
  let ss = !sources in
  Mutex.unlock sources_mu;
  List.concat_map
    (fun (_, f) -> match f () with vs -> vs | exception _ -> [])
    ss

(* --- published status ---------------------------------------------------- *)

type wstate = Active | Parked | Stalled

let wstate_name = function
  | Active -> "active"
  | Parked -> "parked"
  | Stalled -> "stalled"

type row = {
  pool : string;  (* owning pool; rows are keyed by (pool, worker) *)
  worker : int;  (* pool-local worker id *)
  gworker : int;  (* global worker index (trace/metrics key) *)
  state : wstate;
  beats : int;
  quiet_scans : int;
}

type status = {
  engine : string;
  scan : int;
  at_ns : int;
  interval_ms : int;
  rows : row array;
  scan_verdicts : verdict list;
}

let last_status : status option Atomic.t = Atomic.make None
let log_mu = Mutex.create ()
let verdict_log : (int * verdict) list ref = ref [] (* (scan, v), newest first *)

let status () = Atomic.get last_status

let verdicts () =
  Mutex.lock log_mu;
  let l = List.map snd !verdict_log in
  Mutex.unlock log_mu;
  l

let record_verdicts scan vs =
  if vs <> [] then begin
    Mutex.lock log_mu;
    verdict_log := List.map (fun v -> (scan, v)) vs @ !verdict_log;
    Mutex.unlock log_mu
  end

(* --- exported gauges ----------------------------------------------------- *)

let g_last_scan = Nowa_obs.Registry.gauge "nowa_watchdog_last_scan_ns"
    ~help:"Monotonic timestamp of the watchdog's last completed scan; a frozen value means the monitor itself is dead"
let g_active = Nowa_obs.Registry.gauge "nowa_health_workers_active"
    ~help:"Workers with heartbeat or wake motion in the last scan window"
let g_parked = Nowa_obs.Registry.gauge "nowa_health_workers_parked"
    ~help:"Workers parked or inside the park protocol at the last scan"
let g_stalled = Nowa_obs.Registry.gauge "nowa_health_workers_stalled"
    ~help:"Workers past the stall threshold at the last scan"
let c_scans = Nowa_obs.Registry.counter "nowa_watchdog_scans_total"
    ~help:"Watchdog scans completed"
let c_verdicts = Nowa_obs.Registry.counter "nowa_watchdog_verdicts_total"
    ~help:"Watchdog verdicts raised (stalls, starvation, convoys, SLO burns)"

(* --- flight recorder ----------------------------------------------------- *)

module Recorder = struct
  (* Contributors write one file each into the bundle directory.  The
     engine installs a trace-freeze contributor per run; the serving
     layer installs the anatomy tail when enabled. *)
  let mu = Mutex.create ()
  let contributors : (string * (dir:string -> unit)) list ref = ref []
  let seq = Atomic.make 0

  let register ~name f =
    Mutex.lock mu;
    contributors := (name, f) :: List.remove_assoc name !contributors;
    Mutex.unlock mu

  let unregister ~name =
    Mutex.lock mu;
    contributors := List.remove_assoc name !contributors;
    Mutex.unlock mu

  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      s

  let write_file path body =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc body)

  let verdicts_json ~reason =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"reason\": \"%s\",\n" reason);
    Buffer.add_string b
      (Printf.sprintf "  \"at_ns\": %d,\n" (Nowa_util.Clock.now_ns ()));
    (match Atomic.get last_status with
    | None -> Buffer.add_string b "  \"scan\": null,\n  \"workers\": [],\n"
    | Some st ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"engine\": \"%s\",\n  \"scan\": %d,\n  \"interval_ms\": %d,\n"
           st.engine st.scan st.interval_ms);
      Buffer.add_string b "  \"workers\": [\n";
      Array.iteri
        (fun i r ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"id\": %d, \"pool\": %S, \"worker\": %d, \"state\": \
                \"%s\", \"beats\": %d, \"quiet_scans\": %d}%s\n"
               r.gworker r.pool r.worker (wstate_name r.state) r.beats
               r.quiet_scans
               (if i = Array.length st.rows - 1 then "" else ",")))
        st.rows;
      Buffer.add_string b "  ],\n");
    Mutex.lock log_mu;
    let log = !verdict_log in
    Mutex.unlock log_mu;
    Buffer.add_string b "  \"verdicts\": [\n";
    List.iteri
      (fun i (scan, v) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"scan\": %d, \"verdict\": %s}%s\n" scan
             (verdict_to_json v)
             (if i = List.length log - 1 then "" else ",")))
      log;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b

  (** Write a postmortem bundle; returns the directory written.  Always
      contains [verdicts.json] (per-worker table + verdict history) and
      [metrics.prom] (full registry exposition); contributors add the
      frozen trace window and anatomy tail when their layers are live. *)
  let dump ~reason () =
    let n = Atomic.fetch_and_add seq 1 in
    let dir =
      Nowa_util.Artifacts.path
        (Printf.sprintf "health-%s-%03d" (sanitize reason) n)
    in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
    write_file (Filename.concat dir "verdicts.json") (verdicts_json ~reason);
    write_file
      (Filename.concat dir "metrics.prom")
      (Nowa_obs.Expose.to_prometheus ());
    Mutex.lock mu;
    let cs = !contributors in
    Mutex.unlock mu;
    List.iter (fun (_, f) -> try f ~dir with _ -> ()) cs;
    dir
end

let dumps : string list ref = ref [] (* bundle dirs written, newest first *)

let dump_now ~reason =
  let dir = Recorder.dump ~reason () in
  Mutex.lock log_mu;
  dumps := dir :: !dumps;
  Mutex.unlock log_mu;
  dir

let dumped () =
  Mutex.lock log_mu;
  let d = !dumps in
  Mutex.unlock log_mu;
  d

(* --- the watchdog monitor ------------------------------------------------ *)

module Monitor = struct
  type handle = { stop : bool Atomic.t; dom : unit Domain.t }

  let live_count = Atomic.make 0
  let started_count = Atomic.make 0
  let live () = Atomic.get live_count
  let started_total () = Atomic.get started_count

  (* Cap bundles per monitor lifetime: the first verdicts are the
     interesting ones; a persistent anomaly must not fill the disk. *)
  let max_dumps = 3

  let scan_once ~probe ~stall_scans ~interval_ms ~scan ~prev_beats ~prev_stamps
      ~quiet ~starved =
    let nw = probe.workers in
    let any_progress = ref false in
    (* Once the pool starts draining, workers exit their domains and
       their heartbeats freeze legitimately; suspend stall/starvation
       classification rather than misread shutdown as a wedge. *)
    let draining = try probe.draining () with _ -> false in
    let rows =
      Array.init nw (fun w ->
          let b = probe.beat_of w in
          let stamp = probe.wake_stamp w in
          let parked = probe.announced w || probe.waiting w in
          let progressed = b <> prev_beats.(w) || stamp <> prev_stamps.(w) in
          prev_beats.(w) <- b;
          prev_stamps.(w) <- stamp;
          if progressed then any_progress := true;
          let state =
            if parked then begin
              quiet.(w) <- 0;
              Parked
            end
            else if progressed then begin
              quiet.(w) <- 0;
              Active
            end
            else if draining then begin
              quiet.(w) <- 0;
              Active
            end
            else begin
              quiet.(w) <- quiet.(w) + 1;
              if quiet.(w) >= stall_scans then Stalled else Active
            end
          in
          let pool, lw = try probe.pool_of w with _ -> ("main", w) in
          { pool; worker = lw; gworker = w; state; beats = b;
            quiet_scans = quiet.(w) })
    in
    (* Worker stall verdicts fire once, on the scan that crosses the
       threshold; the row keeps saying Stalled until progress resumes. *)
    let stalls =
      Array.to_list rows
      |> List.filter_map (fun r ->
             if r.state = Stalled && r.quiet_scans = stall_scans then
               Some
                 (Worker_stalled
                    { pool = r.pool; worker = r.worker;
                      scans = r.quiet_scans })
             else None)
    in
    let ready = try probe.ready () with _ -> 0 in
    let starvation =
      if ready > 0 && (not draining) && (not !any_progress)
         && probe.sleepers () > 0
      then begin
        starved := !starved + 1;
        if !starved = stall_scans then
          [ Starvation { ready; scans = !starved } ]
        else []
      end
      else begin
        starved := 0;
        []
      end
    in
    let aux = poll_sources () in
    let vs = stalls @ starvation @ aux in
    let n_parked = Array.fold_left
        (fun a r -> if r.state = Parked then a + 1 else a) 0 rows in
    let n_stalled = Array.fold_left
        (fun a r -> if r.state = Stalled then a + 1 else a) 0 rows in
    Nowa_obs.Gauge.set g_active (nw - n_parked - n_stalled);
    Nowa_obs.Gauge.set g_parked n_parked;
    Nowa_obs.Gauge.set g_stalled n_stalled;
    Nowa_obs.Gauge.set g_last_scan (Nowa_util.Clock.now_ns ());
    Nowa_obs.Counter.incr c_scans;
    if vs <> [] then Nowa_obs.Counter.add c_verdicts (List.length vs);
    record_verdicts scan vs;
    Atomic.set last_status
      (Some
         {
           engine = probe.engine;
           scan;
           at_ns = Nowa_util.Clock.now_ns ();
           interval_ms;
           rows;
           scan_verdicts = vs;
         });
    vs

  let loop ~interval_ms ~stall_scans ~dump probe stop () =
    let nw = probe.workers in
    let prev_beats = Array.init nw probe.beat_of in
    let prev_stamps = Array.init nw probe.wake_stamp in
    let quiet = Array.make nw 0 in
    let starved = ref 0 in
    let scan = ref 0 in
    let dumped_here = ref 0 in
    Atomic.incr live_count;
    Fun.protect
      ~finally:(fun () -> Atomic.decr live_count)
      (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf (float_of_int interval_ms /. 1000.0);
          if not (Atomic.get stop) then begin
            incr scan;
            let vs =
              scan_once ~probe ~stall_scans ~interval_ms ~scan:!scan
                ~prev_beats ~prev_stamps ~quiet ~starved
            in
            if vs <> [] && dump && !dumped_here < max_dumps then begin
              incr dumped_here;
              ignore (dump_now ~reason:(verdict_kind (List.hd vs)))
            end
          end
        done)

  (** Start a monitor thread for this pool.  Resets the published status
      and verdict log: a new run starts with a clean slate. *)
  let spawn ~interval_ms ~stall_scans ~dump probe =
    Atomic.set last_status None;
    Mutex.lock log_mu;
    verdict_log := [];
    dumps := [];
    Mutex.unlock log_mu;
    Atomic.incr started_count;
    let stop = Atomic.make false in
    let interval_ms = max 1 interval_ms in
    let stall_scans = max 1 stall_scans in
    let dom = Domain.spawn (loop ~interval_ms ~stall_scans ~dump probe stop) in
    { stop; dom }

  let stop h =
    Atomic.set h.stop true;
    Domain.join h.dom
end

(* --- endpoints ----------------------------------------------------------- *)

(** Liveness verdict for [/healthz]: healthy unless the last scan raised
    or sustained an anomaly, any verdict was recorded this run (sticky:
    a replica that tripped the watchdog stays suspect until the next
    monitor lifecycle resets the log — load balancers rotate it out and
    operators read /statusz and the bundle), or the monitor itself
    stopped scanning (last scan older than 4 intervals while a monitor
    is supposed to be live). *)
let healthz () =
  match Atomic.get last_status with
  | None -> (true, "ok (no watchdog scan yet)")
  | Some st ->
    let stalled =
      Array.fold_left
        (fun a r -> if r.state = Stalled then a + 1 else a)
        0 st.rows
    in
    let logged =
      Mutex.lock log_mu;
      let l = !verdict_log in
      Mutex.unlock log_mu;
      l
    in
    if st.scan_verdicts <> [] then
      ( false,
        String.concat "; " (List.map verdict_to_string st.scan_verdicts) )
    else if stalled > 0 then
      (false, Printf.sprintf "%d worker(s) stalled" stalled)
    else
      match logged with
      | (scan, v) :: _ ->
        ( false,
          Printf.sprintf "anomaly this run (scan %d): %s" scan
            (verdict_to_string v) )
      | [] ->
        let age_ns = Nowa_util.Clock.now_ns () - st.at_ns in
        if Monitor.live () > 0 && age_ns > 4 * st.interval_ms * 1_000_000 then
          (false, Printf.sprintf "watchdog wedged: last scan %dms ago"
             (age_ns / 1_000_000))
        else (true, "ok")

(** Text status page for [/statusz]: engine, scan cadence, per-worker
    state table, and the verdict history of the current run. *)
let statusz () =
  let b = Buffer.create 512 in
  (match Atomic.get last_status with
  | None -> Buffer.add_string b "watchdog: no scan recorded\n"
  | Some st ->
    Buffer.add_string b
      (Printf.sprintf "watchdog: engine=%s scan=%d interval=%dms monitors=%d\n"
         st.engine st.scan st.interval_ms (Monitor.live ()));
    Buffer.add_string b "pool        worker  state    beats      quiet_scans\n";
    Array.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-11s %-7d %-8s %-10d %d\n" r.pool r.worker
             (wstate_name r.state) r.beats r.quiet_scans))
      st.rows);
  Mutex.lock log_mu;
  let log = !verdict_log in
  let ds = !dumps in
  Mutex.unlock log_mu;
  if log = [] then Buffer.add_string b "verdicts: none\n"
  else begin
    Buffer.add_string b (Printf.sprintf "verdicts (%d):\n" (List.length log));
    List.iter
      (fun (scan, v) ->
        Buffer.add_string b
          (Printf.sprintf "  scan %d: %s\n" scan (verdict_to_string v)))
      log
  end;
  List.iter
    (fun d -> Buffer.add_string b (Printf.sprintf "bundle: %s\n" d))
    ds;
  Buffer.contents b
