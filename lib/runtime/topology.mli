(** Pool-topology normalisation shared by every engine.

    A {!Config.t} describes either one implicit flat pool (empty
    {!Config.t.pools}) or several named micropools; [of_config] turns
    both into the same validated shape — an array of pool specs carving
    the global worker-id space [0, total) into contiguous ranges, one
    per pool, with per-pool idle/steal knobs resolved against the
    top-level defaults.

    Validation is loud and early (before the runtime guard is entered
    or any domain spawned): empty or duplicate names, non-positive
    worker counts, and pools wider than {!Sleepers.mask_bits} all raise
    [Invalid_argument] — the ISSUE 10 fix for the old silent
    park-degradation of oversized registries. *)

type spec = {
  name : string;
  lo : int;  (** first global worker id of this pool *)
  hi : int;  (** one past the last global worker id *)
  idle : Config.idle_policy;
  sweep : int;
  capacity : int;
}

val of_config : Config.t -> spec array
(** Normalise and validate; the first spec hosts worker 0 (and the root
    computation).  Raises [Invalid_argument] on a bad topology. *)

val total : spec array -> int
(** Total worker count across all pools. *)

val group_of : spec array -> int -> int
(** Index of the pool owning a global worker id. *)
