(* Pool-topology normalisation shared by every engine: turn a
   [Config.t] into a validated array of pool specs with global worker-id
   ranges.  Validation happens here, once, before any domain is spawned
   or the runtime guard is entered, so a bad topology raises
   [Invalid_argument] without leaking runtime state. *)

type spec = {
  name : string;
  lo : int;  (* first global worker id of this pool *)
  hi : int;  (* one past the last global worker id *)
  idle : Config.idle_policy;
  sweep : int;
  capacity : int;  (* initial deque capacity for this pool's workers *)
}

let validate_pool ~name ~workers =
  if String.length name = 0 then
    invalid_arg "Nowa pool topology: pool names must be non-empty";
  if workers < 1 then
    invalid_arg
      (Printf.sprintf "Nowa pool topology: pool %S needs at least 1 worker"
         name);
  if workers > Sleepers.mask_bits then
    invalid_arg
      (Printf.sprintf
         "Nowa pool topology: pool %S has %d workers, more than the sleeper \
          registry's %d-bit mask; split it into smaller pools"
         name workers Sleepers.mask_bits)

let of_config (conf : Config.t) =
  match conf.Config.pools with
  | [] ->
    let workers = max 1 conf.Config.workers in
    validate_pool ~name:"main" ~workers;
    [|
      {
        name = "main";
        lo = 0;
        hi = workers;
        idle = conf.Config.idle_policy;
        sweep = conf.Config.steal_sweep;
        capacity = conf.Config.deque_capacity;
      };
    |]
  | pools ->
    let seen = Hashtbl.create 8 in
    let off = ref 0 in
    let specs =
      List.map
        (fun (p : Config.pool_conf) ->
          validate_pool ~name:p.Config.pc_name ~workers:p.Config.pc_workers;
          if Hashtbl.mem seen p.Config.pc_name then
            invalid_arg
              (Printf.sprintf "Nowa pool topology: duplicate pool name %S"
                 p.Config.pc_name);
          Hashtbl.add seen p.Config.pc_name ();
          let lo = !off in
          off := lo + p.Config.pc_workers;
          {
            name = p.Config.pc_name;
            lo;
            hi = !off;
            idle =
              Option.value p.Config.pc_idle_policy
                ~default:conf.Config.idle_policy;
            sweep =
              Option.value p.Config.pc_steal_sweep
                ~default:conf.Config.steal_sweep;
            capacity =
              Option.value p.Config.pc_deque_capacity
                ~default:conf.Config.deque_capacity;
          })
        pools
    in
    Array.of_list specs

let total specs = specs.(Array.length specs - 1).hi

let group_of specs worker =
  let rec go i =
    if i >= Array.length specs then
      invalid_arg
        (Printf.sprintf "Nowa pool topology: worker %d outside all pools"
           worker)
    else if worker < specs.(i).hi then i
    else go (i + 1)
  in
  go 0
