(** The continuation-stealing scheduler engine (Sections III and IV of the
    paper), generic over the work-stealing deque and the strand-
    coordination counter.  Instantiations (see {!Presets}):

    - Chase-Lev deque × wait-free counter  — Nowa
    - THE deque       × wait-free counter  — the Figure 9 "Nowa (THE)" variant
    - THE deque       × lock-based counter — Fibril
    - locked deque    × lock-based counter — the Cilk Plus model

    Mechanics on OCaml 5 effects: [spawn] performs an effect whose handler
    captures the continuation after the spawn, pushes it to the bottom of
    the worker's deque (Figure 5, line 2) and runs the child on a fresh
    fiber under the same handler.  When the child returns, the handler
    pops the deque: a hit must be the very continuation just pushed
    (LIFO), so it is resumed directly — the common, steal-free path; a
    miss means the continuation was stolen, turning the rest of this
    control flow into a joining strand (the implicit sync of Figure 5,
    lines 4-5).  Suspension is simply the effect handler returning to the
    scheduler loop without resuming anything.

    {2 Hot-path allocation discipline (ISSUE 9)}

    A spawn+sync round trip performs no minor-heap allocation beyond the
    unavoidable effect machinery (the [Spawn] effect value and the fiber
    the child runs on) and, for value-returning [spawn], one flat promise
    record:

    - the deque element is a mutable {e task box} recycled through a
      per-worker [spare] slot — the box popped on the steal-free path is
      immediately reused for the next push;
    - the per-scope frame (counter + suspension slot + per-frame effect
      handler) is recycled through a per-worker free list — frames are
      pristine after a completed sync;
    - the suspension slot is three flat fields guarded by one int atomic
      instead of an [option Atomic.t] exchange box;
    - the per-child handler closures live in the frame (shared by all its
      children) instead of being rebuilt per [match_with];
    - the deque's [pop] returns the dummy element instead of an [option].

    Task boxes are mutated only under exclusive ownership: a box belongs
    to the pushing worker until a deque commit (pop CAS / steal CAS /
    critical section) transfers it, and thieves read its fields only
    after their commit, so the plain mutable fields ride the deques'
    existing release/acquire ordering. *)

module Make
    (QM : Nowa_deque.Ws_deque_intf.MAKER)
    (C : Nowa_sync.Counter_intf.JOIN_COUNTER)
    (Id : sig
      val name : string
      val description : string
    end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type cont = (unit, unit) Effect.Deep.continuation

  type frame = {
    counter : C.t;
    mutable susp_k : cont;  (* valid iff susp_state = 1 *)
    mutable susp_stack : Stack_pool.stack option;
    susp_state : int Atomic.t;  (* 0 = empty, 1 = published *)
    exn_slot : exn option Atomic.t;
    mutable handler : (unit, unit) Effect.Deep.handler;
        (* retc/exnc close over this very frame; built once in
           [make_frame], shared by every child of the frame. *)
  }

  type scope = frame

  (* Sentinels for the recycled mutable slots.  They are immediates
     ([Obj.magic ()] = the unit word), safe for the GC to scan in pointer
     fields and never dereferenced: a dummy cont/frame only ever sits in
     a cleared slot or in the deque's blanked buffer cells. *)
  let dummy_cont : cont = Obj.magic ()
  let dummy_frame : frame = Obj.magic ()

  (* The deque element: one mutable box per in-flight continuation,
     recycled via the worker's [spare] slot once ownership returns. *)
  type task = {
    mutable kind : int;  (* [kind_stolen] or [kind_root] *)
    mutable tk : cont;
    mutable tfn : unit -> unit;  (* root thunk; [ignore] otherwise *)
    mutable tfr : frame;
  }

  let kind_stolen = 0
  let kind_root = 1

  let dummy_task =
    { kind = kind_root; tk = dummy_cont; tfn = ignore; tfr = dummy_frame }

  module Q = QM (struct
    type t = task

    let dummy = dummy_task
  end)

  (* One named micropool (ISSUE 10): a contiguous slice of the global
     worker array with its own sleeper registry (local ids), its own
     inject queue for [spawn_on]-routed roots, and its own idle/steal
     knobs.  The single-pool topology builds exactly one of these, and
     the spawn/sync hot path pays only the [w.grp] indirection. *)
  type group = {
    gid : int;
    gname : string;
    glo : int;  (* first global worker id of this pool *)
    ghi : int;  (* one past the last *)
    gsleepers : Sleepers.t;  (* indexed by pool-local worker id *)
    ginject : task Nowa_deque.Central_queue.t;
        (* [spawn_on] roots; FIFO per target pool *)
    ggate : int Atomic.t;
        (* conservative inject count: raised before a push, lowered
           after a pop, so 0 proves the queue empty and idle workers
           skip the queue lock entirely *)
    gidle : Config.idle_policy;
    gsweep : int;
  }

  type pool = group

  type worker = {
    id : int;
    grp : group;
    deque : Q.t;
    rng : Nowa_util.Xoshiro.t;
    m : Metrics.worker;
    tr : Ring.t;  (* wait-free event ring; Ring.disabled when not tracing *)
    mutable stack : Stack_pool.stack option;
    mutable next_victim : int;  (* Round_robin victim scan position *)
    mutable spare : task;  (* recycled task box; [dummy_task] when empty *)
    mutable child_thunk : unit -> Obj.t;
        (* in-flight child relay: written by [handle_spawn], read back at
           the top of the child fiber — never lives across an effect *)
    mutable child_promise : Obj.t Promise.t;
    frames : frame array;  (* free list of pristine frames *)
    mutable nframes : int;
  }

  type cluster = {
    conf : Config.t;
    workers : worker array;  (* all pools, global ids *)
    groups : group array;
    spill : bool;  (* cross-pool spill-over stealing enabled *)
    stacks : Stack_pool.t;
    finished : bool Atomic.t;
    hb : Health.Beats.t;  (* per-worker heartbeat words; watchdog input *)
  }

  (* The effect carries the untyped thunk and promise directly (the
     uniform-representation coercion confined to [spawn]/[spawn_unit]),
     so no per-spawn wrapper closure is built. *)
  type _ Effect.t +=
    | Spawn : frame * (unit -> Obj.t) * Obj.t Promise.t -> unit Effect.t
    | Sync : frame -> unit Effect.t

  let dummy_thunk : unit -> Obj.t = fun () -> Obj.repr ()

  (* Shared sentinel promise for [spawn_unit]; never filled (guarded by
     physical inequality in [child_body]). *)
  let dummy_promise : Obj.t Promise.t = Promise.make ()

  let current : (cluster * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None ->
      failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  let ensure_stack pool w =
    match w.stack with
    | Some s -> s
    | None ->
      let s = Stack_pool.acquire pool.stacks ~worker:w.id in
      w.m.stack_acquires <- w.m.stack_acquires + 1;
      Ring.emit w.tr Ev.Stack_acquire 0;
      w.stack <- Some s;
      s

  let drop_stack pool w =
    match w.stack with
    | None -> ()
    | Some s ->
      Stack_pool.release pool.stacks ~worker:w.id s;
      w.m.stack_releases <- w.m.stack_releases + 1;
      Ring.emit w.tr Ev.Stack_release 0;
      w.stack <- None

  (* Clear a task box we own and park it in the worker's spare slot for
     the next push.  Clearing drops the references so a parked box never
     retains a continuation or frame. *)
  let recycle_task w (t : task) =
    t.kind <- kind_stolen;
    t.tk <- dummy_cont;
    t.tfn <- ignore;
    t.tfr <- dummy_frame;
    w.spare <- t

  (* Body of every child fiber.  A static function (no per-child closure):
     the thunk and promise travel through the spawning worker's relay
     fields, read back here before anything else can run on this domain. *)
  let child_body w =
    let thunk = w.child_thunk and p = w.child_promise in
    w.child_thunk <- dummy_thunk;
    w.child_promise <- dummy_promise;
    match thunk () with
    | v -> if p != dummy_promise then Promise.fill p v
    | exception e ->
      if p != dummy_promise then Promise.fill_exn p e;
      raise e
  (* the re-raise lands in the frame handler's [exnc], which records the
     exception in the frame and joins as usual *)

  (* Resume a frame whose sync condition this caller observed: claim the
     published continuation (exactly one strand ever gets here per sync),
     re-arm the counter for a possible next spawn phase, adopt the
     suspended stack if one travelled with the frame. *)
  let rec resume_frame pool w fr =
    let claimed = Atomic.exchange fr.susp_state 0 in
    (* claimed = 1 always: the counter designates a unique zero-observer,
       and the continuation is published before the counter can reach 0. *)
    assert (claimed = 1);
    let k = fr.susp_k in
    let stk = fr.susp_stack in
    fr.susp_k <- dummy_cont;
    fr.susp_stack <- None;
    w.m.resumes <- w.m.resumes + 1;
    Ring.emit w.tr Ev.Resume 0;
    C.reset fr.counter;
    (match stk with
    | None -> ()
    | Some s ->
      drop_stack pool w;
      Stack_pool.reactivate pool.stacks s;
      w.stack <- Some s);
    Effect.Deep.continue k ()

  (* Figure 5, lines 4-5: runs after a spawned child returned. *)
  and after_child fr =
    let pool, w = get_current () in
    let t = Q.pop w.deque in
    if t != dummy_task then begin
      (* Not stolen: this is necessarily the continuation pushed for this
         very child (LIFO and balanced nesting; root tasks never enter a
         deque).  Recycle the box before resuming — the continuation's
         next spawn reuses it. *)
      let k = t.tk in
      t.tk <- dummy_cont;
      t.tfr <- dummy_frame;
      w.spare <- t;
      Effect.Deep.continue k ()
    end
    else begin
      (* The continuation was stolen: implicit sync. *)
      w.m.lost_continuations <- w.m.lost_continuations + 1;
      Ring.emit w.tr Ev.Lost_continuation 0;
      if C.child_joined fr.counter then resume_frame pool w fr
    end

  and exec_child w fr thunk p =
    w.child_thunk <- thunk;
    w.child_promise <- p;
    Effect.Deep.match_with child_body w fr.handler

  and handle_spawn : frame -> (unit -> Obj.t) -> Obj.t Promise.t -> cont -> unit
      =
   fun fr thunk p k ->
    let pool, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    (* Spawn is a station point too: a worker descending a deep inline
       subtree may not complete a task or probe a victim for a long
       time, and without this beat the watchdog would read that busy
       worker as stalled. *)
    Health.Beats.beat pool.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    (match w.stack with
    | Some s -> Stack_pool.touch s ~pages:1 ~max_pages:pool.conf.Config.stack_pages
    | None -> ());
    let t = w.spare in
    let t =
      if t != dummy_task then begin
        w.spare <- dummy_task;
        t.tk <- k;
        t.tfr <- fr;
        t
      end
      else { kind = kind_stolen; tk = k; tfn = ignore; tfr = fr }
    in
    Q.push_bottom w.deque t;
    (* One atomic load when nobody sleeps — the spawn path stays
       wait-free; the CAS + signal run only against an actual sleeper.
       Only the spawner's own pool is woken: foreign pools find spilled
       work through their pre-park sweep when spill-over is on. *)
    if Sleepers.wake_one w.grp.gsleepers then w.m.wakeups <- w.m.wakeups + 1;
    exec_child w fr thunk p

  and handle_sync : frame -> cont -> unit =
   fun fr k ->
    let pool, w = get_current () in
    if C.pending_hint fr.counter = 0 then begin
      (* Fused fast path: every stolen strand has already joined (the
         hint is exact here — no continuation of this frame sits in any
         deque at an explicit sync, so no new steal or join can race us)
         and [reach_sync] must succeed.  Skip the stack handover, the
         publication store and the resume exchange entirely. *)
      let ok = C.reach_sync fr.counter in
      assert ok;
      w.m.fused_syncs <- w.m.fused_syncs + 1;
      C.reset fr.counter;
      Effect.Deep.continue k ()
    end
    else begin
      (* Strands are still outstanding, so we will very likely suspend:
         the frame's stack is handed over now (paying the modelled
         madvise cost when configured), because after [reach_sync]
         returns [false] this strand no longer owns the frame. *)
      let stk =
        match w.stack with
        | Some s ->
          Stack_pool.suspend pool.stacks s;
          w.stack <- None;
          Some s
        | None -> None
      in
      fr.susp_k <- k;
      fr.susp_stack <- stk;
      Atomic.set fr.susp_state 1;
      if C.reach_sync fr.counter then resume_frame pool w fr
      else begin
        w.m.suspensions <- w.m.suspensions + 1;
        Ring.emit w.tr Ev.Suspend 0
      end
    end
  (* returning without resuming = this strand is suspended; control goes
     back to the scheduler loop, which hunts for work. *)

  and effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
      = function
    | Spawn (fr, thunk, p) -> Some (fun k -> handle_spawn fr thunk p k)
    | Sync fr -> Some (fun k -> handle_sync fr k)
    | _ -> None

  let null_handler : (unit, unit) Effect.Deep.handler =
    { retc = ignore; exnc = raise; effc = (fun _ -> None) }

  let make_frame () =
    let fr =
      {
        counter = C.create ();
        susp_k = dummy_cont;
        susp_stack = None;
        susp_state = Atomic.make 0;
        exn_slot = Atomic.make None;
        handler = null_handler;
      }
    in
    fr.handler <-
      {
        Effect.Deep.retc = (fun () -> after_child fr);
        exnc =
          (fun e ->
            note_exn fr e;
            after_child fr);
        effc;
      };
    fr

  (* Frames returned to the free list are pristine: the counter was reset
     on every completed-sync path, the exn slot was drained by [sync] and
     the suspension slot was cleared by its unique claimer. *)
  let recycle_frame w fr =
    if w.nframes < Array.length w.frames then begin
      w.frames.(w.nframes) <- fr;
      w.nframes <- w.nframes + 1
    end

  let take_frame w =
    if w.nframes > 0 then begin
      let n = w.nframes - 1 in
      w.nframes <- n;
      let fr = w.frames.(n) in
      w.frames.(n) <- dummy_frame;
      fr
    end
    else make_frame ()

  let on_commit t = if t.kind == kind_stolen then C.note_steal t.tfr.counter

  (* Take one routed root from a pool's inject queue.  The gate read
     keeps the common empty case lock-free: the gate is raised before
     the push, so 0 proves emptiness. *)
  let try_inject (g : group) =
    if Atomic.get g.ggate = 0 then None
    else
      match Nowa_deque.Central_queue.pop g.ginject with
      | Some _ as r ->
        Atomic.decr g.ggate;
        r
      | None -> None

  let try_steal cl w =
    let g = w.grp in
    let n = g.ghi - g.glo in
    let attempt victim =
      w.m.steal_attempts <- w.m.steal_attempts + 1;
      Health.Beats.beat cl.hb w.id;
      Ring.emit w.tr Ev.Steal_attempt victim.id;
      match Q.steal victim.deque ~on_commit with
      | Some _ as r ->
        Ring.emit w.tr Ev.Steal_commit victim.id;
        r
      | None ->
        Ring.emit w.tr Ev.Steal_abort victim.id;
        None
    in
    (* Own deque first: it may hold continuations sitting under a frame
       that suspended; converting one into a parallel strand (with the
       full steal protocol) is both legal and necessary for progress. *)
    match attempt w with
    | Some t -> Some t
    | None -> (
      (* Routed roots next: they are this pool's responsibility and have
         no other worker to run them. *)
      match try_inject g with
      | Some _ as r -> r
      | None ->
        if n = 1 then None
        else begin
          (* Sweep up to [steal_sweep] distinct pool-mates before
             counting the round as failed.  Victims are addressed as
             offsets in [0, n-2] rotated past the thief's own local id,
             so the sweep never probes itself and never repeats a
             victim; stealing stays inside the pool (spill-over runs
             later, from the idle loop). *)
          let sweep = min (max 1 g.gsweep) (n - 1) in
          let lid = w.id - g.glo in
          let start =
            match cl.conf.Config.victim_policy with
            | Config.Random -> Nowa_util.Xoshiro.int w.rng (n - 1)
            | Config.Round_robin ->
              let v = w.next_victim mod (n - 1) in
              w.next_victim <- v + sweep;
              v
          in
          let rec probe i =
            if i >= sweep then begin
              Nowa_obs.Histogram.observe Metrics.sweep_length sweep;
              None
            end
            else begin
              let v = g.glo + ((lid + 1 + ((start + i) mod (n - 1))) mod n) in
              match attempt cl.workers.(v) with
              | Some _ as r ->
                Nowa_obs.Histogram.observe Metrics.sweep_length (i + 1);
                r
              | None -> probe (i + 1)
            end
          in
          probe 0
        end)

  (* Cross-pool spill-over (ISSUE 10, behind [Config.spill_over]): only
     reached when the worker's own pool — deque, inject queue and every
     pool-mate — came up empty, so the ordering argument holds: local
     work always wins over foreign work.  Foreign pools are scanned
     round-robin from the next pool over; within each, the inject queue
     first (routed roots have no other runner) then up to [gsweep]
     random victims. *)
  let try_spill cl w =
    let ng = Array.length cl.groups in
    if ng <= 1 then None
    else begin
      let attempt victim =
        w.m.steal_attempts <- w.m.steal_attempts + 1;
        Ring.emit w.tr Ev.Steal_attempt victim.id;
        match Q.steal victim.deque ~on_commit with
        | Some _ as r ->
          Ring.emit w.tr Ev.Steal_commit victim.id;
          r
        | None -> None
      in
      let rec groups k =
        if k >= ng - 1 then None
        else begin
          let g = cl.groups.((w.grp.gid + 1 + k) mod ng) in
          match try_inject g with
          | Some _ as r -> r
          | None ->
            let n = g.ghi - g.glo in
            let sweep = min (max 1 w.grp.gsweep) n in
            let start = Nowa_util.Xoshiro.int w.rng n in
            let rec probe i =
              if i >= sweep then None
              else
                match attempt cl.workers.(g.glo + ((start + i) mod n)) with
                | Some _ as r -> r
                | None -> probe (i + 1)
            in
            (match probe 0 with Some _ as r -> r | None -> groups (k + 1))
        end
      in
      groups 0
    end

  let execute pool w (t : task) =
    w.m.tasks <- w.m.tasks + 1;
    ignore (ensure_stack pool w);
    Ring.emit w.tr Ev.Task_start 0;
    (if t.kind == kind_root then begin
       let f = t.tfn in
       recycle_task w t;
       f ()
     end
     else begin
       let k = t.tk and fr = t.tfr in
       (* The box is ours after the steal/pop commit: strip it and hand
          it to this worker's spare slot before resuming. *)
       recycle_task w t;
       w.m.steals <- w.m.steals + 1;
       (* Invariant II: α is bumped by the (unique) main-path control
          flow, here, just before the stolen continuation resumes. *)
       C.note_resume fr.counter;
       Effect.Deep.continue k ()
     end);
    Ring.emit w.tr Ev.Task_end 0;
    Health.Beats.beat pool.hb w.id

  (* Pre-park re-check: a deterministic sweep over EVERY deque (own
     included) using real steal operations.  Size reads would not do —
     the locked deque's [size] reads plain mutable fields without the
     lock — whereas [steal] synchronises properly on every
     implementation.  Because the caller has already announced its
     sleeper bit, sequential consistency gives: any task pushed before
     the spawner's registry load is visible to this sweep, or was taken
     by a racing thief that is itself awake and holding work. *)
  let sweep_group cl w (g : group) =
    let n = g.ghi - g.glo in
    let off = if w.id >= g.glo && w.id < g.ghi then w.id - g.glo else 0 in
    let rec go i =
      if i >= n then try_inject g
      else begin
        let victim = cl.workers.(g.glo + ((off + i) mod n)) in
        w.m.steal_attempts <- w.m.steal_attempts + 1;
        match Q.steal victim.deque ~on_commit with
        | Some _ as r ->
          Ring.emit w.tr Ev.Steal_commit victim.id;
          r
        | None -> go (i + 1)
      end
    in
    go 0

  let sweep_all cl w =
    match sweep_group cl w w.grp with
    | Some _ as r -> r
    | None ->
      if not cl.spill then None
      else begin
        (* With spill-over on, this worker may be the last one awake
           that could ever run a foreign pool's pending work, so the
           pre-park sweep must cover the foreign pools too — same
           lost-wakeup argument, registry per pool. *)
        let ng = Array.length cl.groups in
        let rec go k =
          if k >= ng - 1 then None
          else
            match
              sweep_group cl w cl.groups.((w.grp.gid + 1 + k) mod ng)
            with
            | Some _ as r -> r
            | None -> go (k + 1)
        in
        go 0
      end

  (* One park round: announce, re-check everything, then either run what
     the re-check found, bail out on shutdown, or block until a spawner
     posts a token.  Returns work if the re-check produced any. *)
  let park_round cl w =
    Health.Beats.beat cl.hb w.id;
    let sleepers = w.grp.gsleepers in
    let lid = w.id - w.grp.glo in
    ignore (Sleepers.announce sleepers ~worker:lid);
    let cancel () =
      if not (Sleepers.cancel sleepers ~worker:lid) then
        (* A waker claimed our bit first: its token is in flight and the
           next park will consume it immediately. *)
        w.m.wake_retries <- w.m.wake_retries + 1
    in
    match sweep_all cl w with
    | Some _ as r ->
      cancel ();
      r
    | None ->
      if Atomic.get cl.finished then cancel ()
      else begin
        w.m.parks <- w.m.parks + 1;
        Ring.emit w.tr Ev.Park 0;
        let t0 = Nowa_util.Clock.now_ns () in
        Sleepers.park sleepers ~worker:lid;
        Health.Beats.beat cl.hb w.id;
        w.m.parked_ns <- w.m.parked_ns + (Nowa_util.Clock.now_ns () - t0);
        Ring.emit w.tr Ev.Unpark 0
      end;
      None

  (* Three-phase elastic idle path: [spin_budget] rounds of pure
     spinning (with the existing truncated backoff), the same again
     yielding the OS timeslice each round, then parking.  [finished] is
     checked on every iteration of every phase, and shutdown wakes all
     parked workers, so exit is prompt in all phases. *)
  let worker_loop cl w =
    let bo = Nowa_util.Backoff.make () in
    let spin_budget, can_park =
      match w.grp.gidle with
      | Config.Spin -> (max_int, false)
      | Config.Yield_after n -> (max 1 n, false)
      | Config.Park_after n -> (max 1 n, true)
    in
    (* No mask-width guard needed: [Topology.of_config] (backed by
       [Sleepers.create]) rejects pools wider than the registry, so
       every local id can park. *)
    let rounds = ref 0 in
    let take () =
      match try_steal cl w with
      | Some _ as r -> r
      | None -> if cl.spill then try_spill cl w else None
    in
    let rec go () =
      if Atomic.get cl.finished then ()
      else
        match take () with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          rounds := 0;
          execute cl w t;
          go ()
        | None ->
          incr rounds;
          if !rounds <= spin_budget then begin
            if !rounds mod cl.conf.Config.steal_attempts = 0 then
              Nowa_util.Backoff.once bo;
            go ()
          end
          else if (not can_park) || !rounds <= 2 * spin_budget then begin
            Unix.sleepf 0.0;
            go ()
          end
          else begin
            (match park_round cl w with
            | Some t ->
              Nowa_util.Backoff.reset bo;
              execute cl w t
            | None -> ());
            (* Fresh spin phase after an unpark (work just appeared) or
               a shutdown wake (the [finished] check above exits). *)
            Nowa_util.Backoff.reset bo;
            rounds := 0;
            go ()
          end
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  (* Frames cached per worker; deeper recycling simply falls back to the
     GC.  Completed scopes return frames innermost-first, so the steady-
     state free-list depth is tiny — the slack absorbs bursts. *)
  let frame_cache = 64

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    (* Validate the pool topology before entering the runtime guard so a
       bad configuration raises without leaking guard state. *)
    let specs = Topology.of_config conf in
    let nw = Topology.total specs in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m ->
        m "%s: starting %d workers in %d pool(s)" name nw (Array.length specs));
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let groups =
      Array.mapi
        (fun gi (s : Topology.spec) ->
          {
            gid = gi;
            gname = s.Topology.name;
            glo = s.Topology.lo;
            ghi = s.Topology.hi;
            gsleepers = Sleepers.create ~workers:(s.Topology.hi - s.Topology.lo);
            ginject = Nowa_deque.Central_queue.create ();
            ggate = Nowa_util.Padding.atomic 0;
            gidle = s.Topology.idle;
            gsweep = s.Topology.sweep;
          })
        specs
    in
    let cl =
      {
        conf;
        groups;
        spill = conf.Config.spill_over;
        stacks = Stack_pool.create conf;
        finished = Atomic.make false;
        hb =
          (if conf.Config.heartbeats then Health.Beats.create ~workers:nw
           else Health.Beats.disabled);
        workers =
          (* Worker records hold hot mutable fields (spare slot, stack,
             frame-list cursor); isolate each record's birth cache line. *)
          Array.init nw (fun i ->
              let g = groups.(Topology.group_of specs i) in
              Nowa_util.Padding.isolate (fun () ->
                  {
                    id = i;
                    grp = g;
                    deque =
                      Q.create ~capacity:specs.(g.gid).Topology.capacity ();
                    rng =
                      Nowa_util.Xoshiro.make
                        ~seed:(conf.Config.seed + (i * 7919) + 1);
                    m = Metrics.make_worker ~pool:g.gname i;
                    tr = ring_for i;
                    stack = None;
                    next_victim = i + 1;
                    spare = dummy_task;
                    child_thunk = dummy_thunk;
                    child_promise = dummy_promise;
                    frames = Array.make frame_cache dummy_frame;
                    nframes = 0;
                  }));
      }
    in
    (* Expose this run's counters live: scrapes read the worker records
       and pool getters while the computation runs. *)
    let stack_stats () =
      {
        Metrics.allocated_stacks = Stack_pool.allocated_stacks cl.stacks;
        live_stacks = Stack_pool.live_stacks cl.stacks;
        max_rss_pages = Stack_pool.max_rss_pages cl.stacks;
        madvise_calls = Stack_pool.madvise_calls cl.stacks;
        pool_hits = Stack_pool.global_pool_hits cl.stacks;
      }
    in
    Metrics.publish ~stacks:stack_stats
      (Array.map (fun w -> w.m) cl.workers);
    (* Flight-recorder contributor: freeze the live rings' most recent
       window into a Perfetto file inside the bundle.  Registered even
       though the watchdog may be off — an explicit dump wants it too. *)
    (match trace with
    | Some t ->
      Health.Recorder.register ~name:"trace" (fun ~dir ->
          let evs, _dropped = Nowa_trace.Trace.freeze ~window:4096 t in
          Nowa_trace.Perfetto.write_events_file
            (Filename.concat dir "trace.json")
            evs)
    | None -> Health.Recorder.unregister ~name:"trace");
    if conf.Config.watchdog_interval_ms > 0 then
      Runtime_guard.start_monitor (fun () ->
          (* Pool-aware probe (ISSUE 10): sleeper registries are per
             pool and keyed by local ids, so every accessor translates
             the global index through the worker's group — two pools'
             worker 0s can no longer alias into one sleeper slot or one
             verdict row. *)
          let grp i = cl.workers.(i).grp in
          let lid i = i - (grp i).glo in
          let probe =
            {
              Health.engine = name;
              workers = nw;
              pool_of = (fun i -> ((grp i).gname, lid i));
              beat_of = (fun i -> Health.Beats.read cl.hb i);
              announced =
                (fun i -> Sleepers.announced (grp i).gsleepers ~worker:(lid i));
              waiting =
                (fun i -> Sleepers.waiting (grp i).gsleepers ~worker:(lid i));
              wake_stamp =
                (fun i ->
                  Sleepers.wake_stamp (grp i).gsleepers ~worker:(lid i));
              ready =
                (fun () ->
                  Array.fold_left
                    (fun acc w -> acc + Q.size w.deque)
                    0 cl.workers
                  + Array.fold_left
                      (fun acc g -> acc + Atomic.get g.ggate)
                      0 cl.groups);
              sleepers =
                (fun () ->
                  Array.fold_left
                    (fun acc g -> acc + Sleepers.sleepers g.gsleepers)
                    0 cl.groups);
              draining = (fun () -> Atomic.get cl.finished);
            }
          in
          let h =
            Health.Monitor.spawn
              ~interval_ms:conf.Config.watchdog_interval_ms
              ~stall_scans:conf.Config.watchdog_stall_scans
              ~dump:conf.Config.watchdog_dump probe
          in
          fun () -> Health.Monitor.stop h);
    let result = ref None in
    let wake_everyone () =
      Array.iter (fun g -> Sleepers.wake_all g.gsleepers) cl.groups
    in
    let root =
      {
        kind = kind_root;
        tk = dummy_cont;
        tfn =
          (fun () ->
            Effect.Deep.match_with main ()
              {
                retc =
                  (fun v ->
                    result := Some (Ok v);
                    Atomic.set cl.finished true;
                    wake_everyone ());
                exnc =
                  (fun e ->
                    result := Some (Error e);
                    Atomic.set cl.finished true;
                    wake_everyone ());
                effc;
              });
        tfr = dummy_frame;
      }
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = cl.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (cl, w));
              Nowa_trace.Current.set ~worker:w.id w.tr;
              Fun.protect
                ~finally:(fun () ->
                  Domain.DLS.set current None;
                  Nowa_trace.Current.clear ())
                (fun () -> worker_loop cl w)))
    in
    let w0 = cl.workers.(0) in
    Domain.DLS.set current (Some (cl, w0));
    Nowa_trace.Current.set ~worker:w0.id w0.tr;
    let joined = ref false in
    let join_all () =
      if not !joined then begin
        joined := true;
        (* Make sure helper domains can terminate even if worker 0 died
           on a scheduler bug; parked workers need the explicit wake. *)
        Atomic.set cl.finished true;
        wake_everyone ();
        List.iter Domain.join domains
      end
    in
    let teardown () =
      Domain.DLS.set current None;
      Nowa_trace.Current.clear ();
      join_all ();
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        execute cl w0 root;
        worker_loop cl w0;
        join_all ();
        (* Fold the pages still held by quiescent workers into the RSS
           watermark before reporting it. *)
        Array.iter
          (fun w ->
            match w.stack with
            | Some s -> Stack_pool.sync_rss cl.stacks s
            | None -> ())
          cl.workers;
        let elapsed = Unix.gettimeofday () -. t0 in
        Runtime_log.Log.debug (fun m ->
            m "%s: computation finished in %.6f s" name elapsed);
        (* The domains have joined: the rings are quiescent and safe to
           hand out for draining. *)
        last_trace_ref := trace;
        if conf.Config.collect_metrics then begin
          let stacks = stack_stats () in
          last_metrics_ref :=
            Some
              (Metrics.make ~stacks
                 (Array.map (fun w -> w.m) cl.workers)
                 ~elapsed_s:elapsed)
        end);
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let sync fr =
    let _, w = get_current () in
    (if C.forked fr.counter then begin
       if C.pending_hint fr.counter = 0 then begin
         (* Fused explicit sync: all stolen strands have joined, so
            [reach_sync] is guaranteed to succeed (see [handle_sync]) —
            complete the sync inline without even capturing the
            continuation.  This is the post-steal analogue of the
            never-forked fast path below. *)
         let ok = C.reach_sync fr.counter in
         assert ok;
         w.m.fused_syncs <- w.m.fused_syncs + 1;
         C.reset fr.counter
       end
       else Effect.perform (Sync fr)
     end
     else w.m.fast_syncs <- w.m.fast_syncs + 1);
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let scope f =
    let _, w = get_current () in
    let fr = take_frame w in
    match f fr with
    | v ->
      sync fr;
      (* [sync] may have migrated this strand: recycle to wherever the
         main path landed. *)
      let _, w = get_current () in
      recycle_frame w fr;
      v
    | exception e ->
      (* Fully strict: join the children even on the exceptional path;
         the original exception wins over any child exception. *)
      (try sync fr with _ -> ());
      let _, w = get_current () in
      recycle_frame w fr;
      raise e

  let spawn (type a) fr (thunk : unit -> a) : a promise =
    let p : a promise = Promise.make () in
    (* Uniform-representation coercions: every OCaml function value uses
       the generic calling convention, so a [unit -> a] thunk and an
       [a Promise.t] can travel through the monomorphic effect; the value
       is only ever read back at type [a] (in [Promise.get]). *)
    Effect.perform
      (Spawn (fr, (Obj.magic thunk : unit -> Obj.t), (Obj.magic p : Obj.t Promise.t)));
    p

  (* Promise-free spawn for request-shaped work: the only allocation on
     the dispatch path is the effect value itself. *)
  let spawn_unit fr thunk =
    Effect.perform
      (Spawn (fr, (Obj.magic thunk : unit -> Obj.t), dummy_promise))

  let get p = Promise.get ~runtime:name p
  let await p = Promise.await ~runtime:name p

  (* -- pool routing (ISSUE 10) ------------------------------------------ *)

  let find_pool pname =
    let cl, _ = get_current () in
    Array.find_opt (fun g -> String.equal g.gname pname) cl.groups

  let pool pname =
    match find_pool pname with
    | Some g -> g
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown pool %S (configure it in Config.pools)"
           name pname)

  let pool_name (g : pool) = g.gname

  let self_pool () =
    let _, w = get_current () in
    w.grp.gname

  (* Wake path for a routed root: the target pool's registry first; with
     spill-over on and no local sleeper, any foreign sleeper will do —
     the pre-park sweep covers foreign inject queues, and this closes
     the window where every potential runner is already parked. *)
  let wake_routed cl w (g : group) =
    if Sleepers.wake_one g.gsleepers then w.m.wakeups <- w.m.wakeups + 1
    else if cl.spill then begin
      let ng = Array.length cl.groups in
      let rec go k =
        if k >= ng - 1 then ()
        else if Sleepers.wake_one cl.groups.((g.gid + 1 + k) mod ng).gsleepers
        then w.m.wakeups <- w.m.wakeups + 1
        else go (k + 1)
      in
      go 0
    end

  let enqueue_routed (g : pool) tfn =
    let cl, w = get_current () in
    let t = { kind = kind_root; tk = dummy_cont; tfn; tfr = dummy_frame } in
    (* Gate up before the push so a zero gate proves an empty queue. *)
    Atomic.incr g.ggate;
    Nowa_deque.Central_queue.push g.ginject t;
    wake_routed cl w g

  (* Handler under which a routed root runs: spawn/sync effects from the
     task's scopes resolve here, exactly as under [run]'s root. *)
  let routed_handler : (unit, unit) Effect.Deep.handler =
    { retc = ignore; exnc = raise; effc }

  let spawn_on (type a) (g : pool) (thunk : unit -> a) : a promise =
    let p : a promise = Promise.make_remote () in
    enqueue_routed g (fun () ->
        Effect.Deep.match_with
          (fun () ->
            match thunk () with
            | v -> Promise.fill_remote p v
            | exception e -> Promise.fill_remote_exn p e)
          () routed_handler);
    p

  let spawn_unit_on (g : pool) thunk =
    enqueue_routed g (fun () ->
        Effect.Deep.match_with
          (fun () ->
            try thunk ()
            with e ->
              Runtime_log.Log.err (fun m ->
                  m "%s: spawn_unit_on %S task raised %s" name g.gname
                    (Printexc.to_string e)))
          () routed_handler)
end
