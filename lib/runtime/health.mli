(** Live runtime health: wait-free heartbeats, the stall/convoy
    watchdog, and the dump-on-anomaly flight recorder.  See the
    implementation header for the full design; the short version:

    - workers bump a padded per-worker heartbeat word (one plain store)
      at every scheduler station point;
    - a monitor thread (owned by {!Runtime_guard}, at most one per
      process) samples heartbeats and sleeper state each
      [watchdog_interval_ms], classifies workers as active / parked /
      stalled, detects pool-wide starvation, and polls registered
      verdict sources (KV convoys, SLO burn rate);
    - any verdict triggers a postmortem bundle under [artifacts/]:
      frozen trace window, metrics snapshot, verdict table, plus
      registered extras. *)

(** Per-worker heartbeat words.  Single writer per slot (the worker),
    relaxed reads from the monitor; slots are a cache line apart. *)
module Beats : sig
  type t

  val disabled : t
  (** All operations no-ops beyond one flag check. *)

  val create : workers:int -> t

  val beat : t -> int -> unit
  (** [beat t w]: worker [w]'s station-point store.  Owner only. *)

  val read : t -> int -> int
  (** Monitor-side sampling read. *)
end

(** One-shot fault injection, proving the detection path end to end. *)
module Inject : sig
  val stall : worker:int -> ms:int -> unit
  (** Arm a stall: worker [worker]'s next heartbeat spins for [ms]
      milliseconds before returning. *)

  val clear : unit -> unit

  val parse_stall : string -> (int * int) option
  (** Parse ["worker:N:ms"], ["N:ms"] or ["N"] (default 200ms). *)
end

type verdict =
  | Worker_stalled of { pool : string; worker : int; scans : int }
      (** [worker] is the pool-local id; [(pool, worker)] names the
          worker uniquely across a multi-pool topology. *)
  | Starvation of { ready : int; scans : int }
  | Convoy of { shard : int; depth : int; held_ms : float }
  | Slo_burn of {
      long_s : float;
      short_s : float;
      long_burn : float;
      short_burn : float;
    }

val verdict_kind : verdict -> string
val verdict_to_json : verdict -> string
val verdict_to_string : verdict -> string

(** What the watchdog samples, packaged by each engine as closures over
    its pool (heartbeats, sleeper registry, queue-depth estimate). *)
type probe = {
  engine : string;
  workers : int;
  pool_of : int -> string * int;
      (** Global worker index → (pool name, pool-local id); keys every
          row and stall verdict by [(pool, worker)] so two pools'
          worker 0s cannot alias (ISSUE 10). *)
  beat_of : int -> int;
  announced : int -> bool;
  waiting : int -> bool;
  wake_stamp : int -> int;
  ready : unit -> int;
  sleepers : unit -> int;
  draining : unit -> bool;
      (** Pool shutdown in progress: heartbeats freeze as workers exit
          their domains, so the scan suspends stall/starvation
          classification instead of misreading shutdown as a wedge. *)
}

val static_probe : engine:string -> workers:int -> beats:Beats.t -> probe
(** Probe for schedulerless runtimes (serial elision): never parked, no
    visible queue. *)

val register_source : name:string -> (unit -> verdict list) -> unit
(** Add a verdict source polled at every scan (combiner convoy probe,
    burn-rate evaluator).  Replaces any source with the same name. *)

val unregister_source : name:string -> unit

(** {2 Published status} *)

type wstate = Active | Parked | Stalled

val wstate_name : wstate -> string

type row = {
  pool : string;
  worker : int;  (** pool-local id *)
  gworker : int;  (** global worker index *)
  state : wstate;
  beats : int;
  quiet_scans : int;
}

type status = {
  engine : string;
  scan : int;
  at_ns : int;
  interval_ms : int;
  rows : row array;
  scan_verdicts : verdict list;
}

val status : unit -> status option
(** The most recent scan, or [None] before the first one. *)

val verdicts : unit -> verdict list
(** Every verdict raised since the monitor started, newest first. *)

val healthz : unit -> bool * string
(** Liveness verdict for the [/healthz] endpoint. *)

val statusz : unit -> string
(** Per-worker state table + verdict history for [/statusz]. *)

(** {2 Flight recorder} *)

module Recorder : sig
  val register : name:string -> (dir:string -> unit) -> unit
  (** Add a bundle contributor (the engine's trace freeze, the serving
      layer's anatomy tail).  Replaces any contributor with that name. *)

  val unregister : name:string -> unit
end

val dump_now : reason:string -> string
(** Write a postmortem bundle immediately ([verdicts.json],
    [metrics.prom], plus contributors); returns the bundle directory. *)

val dumped : unit -> string list
(** Bundle directories written since the monitor started, newest
    first. *)

(** {2 Monitor lifecycle}

    Engines do not call these directly for start/stop — they hand
    {!Runtime_guard.start_monitor} a thunk so the process-wide
    single-monitor invariant lives in one place. *)
module Monitor : sig
  type handle

  val spawn : interval_ms:int -> stall_scans:int -> dump:bool -> probe -> handle
  (** Start the monitor thread; resets published status, verdict log and
      bundle list. *)

  val stop : handle -> unit
  (** Signal and join the monitor thread. *)

  val live : unit -> int
  (** Monitor threads currently running (0 or 1 under the
      {!Runtime_guard} discipline; the leak regression test pins this). *)

  val started_total : unit -> int
end
