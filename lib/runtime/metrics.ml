type worker = {
  id : int;
  pool : string;  (* owning micropool's name; "main" in flat topologies *)
  mutable spawns : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable lost_continuations : int;
  mutable suspensions : int;
  mutable fast_syncs : int;
  mutable fused_syncs : int;
  mutable resumes : int;
  mutable tasks : int;
  mutable stack_acquires : int;
  mutable stack_releases : int;
  mutable parks : int;
  mutable parked_ns : int;
  mutable wakeups : int;
  mutable wake_retries : int;
}

type stack_stats = {
  allocated_stacks : int;
  live_stacks : int;
  max_rss_pages : int;
  madvise_calls : int;
  pool_hits : int;
}

type t = {
  workers : worker array;
  elapsed_s : float;
  stacks : stack_stats option;
}

(* Worker records are written on every spawn/steal/sync by their owning
   worker; isolating each record's birth cache line keeps one worker's
   counter stores from invalidating a neighbour's line. *)
let make_worker ?(pool = "main") id =
  Nowa_util.Padding.isolate (fun () ->
      {
        id;
        pool;
        spawns = 0;
        steals = 0;
        steal_attempts = 0;
        lost_continuations = 0;
        suspensions = 0;
        fast_syncs = 0;
        fused_syncs = 0;
        resumes = 0;
        tasks = 0;
        stack_acquires = 0;
        stack_releases = 0;
        parks = 0;
        parked_ns = 0;
        wakeups = 0;
        wake_retries = 0;
      })

let make ?stacks workers ~elapsed_s = { workers; elapsed_s; stacks }

(* Victims probed per failed-then-successful steal round; observed by the
   engines at the end of each sweep.  A wide distribution here means the
   sweep width ([Config.steal_sweep]) is doing real work. *)
let sweep_length =
  Nowa_obs.Registry.histogram "nowa_scheduler_steal_sweep_length"
    ~help:"Victims probed per steal round before success or give-up."

let total t f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers

let pp ppf t =
  Format.fprintf ppf
    "@[<v>workers=%d elapsed=%.4fs spawns=%d steals=%d attempts=%d \
     lost-conts=%d suspensions=%d fast-syncs=%d fused-syncs=%d resumes=%d \
     tasks=%d stack-acq=%d parks=%d parked=%.2fms wakeups=%d \
     wake-retries=%d"
    (Array.length t.workers) t.elapsed_s
    (total t (fun w -> w.spawns))
    (total t (fun w -> w.steals))
    (total t (fun w -> w.steal_attempts))
    (total t (fun w -> w.lost_continuations))
    (total t (fun w -> w.suspensions))
    (total t (fun w -> w.fast_syncs))
    (total t (fun w -> w.fused_syncs))
    (total t (fun w -> w.resumes))
    (total t (fun w -> w.tasks))
    (total t (fun w -> w.stack_acquires))
    (total t (fun w -> w.parks))
    (float_of_int (total t (fun w -> w.parked_ns)) /. 1e6)
    (total t (fun w -> w.wakeups))
    (total t (fun w -> w.wake_retries));
  (match t.stacks with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "@,stacks: allocated=%d live=%d max-rss=%d pages madvise=%d \
       pool-hits=%d"
      s.allocated_stacks s.live_stacks s.max_rss_pages s.madvise_calls
      s.pool_hits);
  Format.fprintf ppf "@]"

(* -- live registry source ------------------------------------------------- *)

(* The engines publish their per-worker records here when a run starts;
   a collector registered once on [Nowa_obs.Registry.default] reads them
   on every scrape.  The worker fields are plain mutable ints written by
   their owning worker; a scrape reads them from another domain without
   synchronisation, which in the OCaml memory model yields some
   recently-written value per field (no tearing on immediates) — exactly
   the relaxed-read contract the obs layer documents.  The source is
   replaced wholesale per run and deliberately left in place after the
   join so end-of-process dumps still see the final totals. *)

type source = {
  src_workers : worker array;
  src_stacks : (unit -> stack_stats) option;
}

let live_source : source option Atomic.t = Atomic.make None

let publish ?stacks workers =
  Atomic.set live_source (Some { src_workers = workers; src_stacks = stacks })

let collect () =
  match Atomic.get live_source with
  | None -> []
  | Some { src_workers; src_stacks } ->
    let sum f = Array.fold_left (fun acc w -> acc + f w) 0 src_workers in
    let counter name help f =
      {
        Nowa_obs.Registry.name;
        help;
        value = Nowa_obs.Registry.Counter (float_of_int (sum f));
      }
    in
    let gauge name help v =
      {
        Nowa_obs.Registry.name;
        help;
        value = Nowa_obs.Registry.Gauge (float_of_int v);
      }
    in
    (* Per-pool labelled series (ISSUE 10): emitted only when the
       published run has more than one pool, as name-embedded labels —
       the registry's samples are flat name/value pairs and Prometheus
       exposition treats the brace suffix as a label set.  The
       unlabelled aggregates above keep their exact names either way. *)
    let pools =
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun w -> if not (Hashtbl.mem seen w.pool) then
            Hashtbl.add seen w.pool ())
        src_workers;
      Hashtbl.fold (fun k () acc -> k :: acc) seen []
      |> List.sort compare
    in
    let per_pool =
      if List.length pools <= 1 then []
      else
        List.concat_map
          (fun p ->
            let sump f =
              Array.fold_left
                (fun acc w -> if String.equal w.pool p then acc + f w else acc)
                0 src_workers
            in
            let labelled name help f =
              {
                Nowa_obs.Registry.name =
                  Printf.sprintf "%s{pool=%S}" name p;
                help;
                value = Nowa_obs.Registry.Counter (float_of_int (sump f));
              }
            in
            [
              labelled "nowa_scheduler_spawns_total"
                "Spawn points executed (per pool)." (fun w -> w.spawns);
              labelled "nowa_scheduler_steals_total"
                "Successful steals committed (per pool)." (fun w -> w.steals);
              labelled "nowa_scheduler_tasks_total"
                "Tasks executed from the scheduler loop (per pool)."
                (fun w -> w.tasks);
              labelled "nowa_scheduler_parks_total"
                "Times an idle worker blocked on its condition variable \
                 (per pool)."
                (fun w -> w.parks);
              labelled "nowa_scheduler_suspensions_total"
                "Explicit syncs that had to suspend (per pool)."
                (fun w -> w.suspensions);
            ])
          pools
    in
    let scheduler =
      [
        gauge "nowa_scheduler_workers" "Workers in the current/last run."
          (Array.length src_workers);
        counter "nowa_scheduler_spawns_total" "Spawn points executed."
          (fun w -> w.spawns);
        counter "nowa_scheduler_steals_total" "Successful steals committed."
          (fun w -> w.steals);
        counter "nowa_scheduler_steal_attempts_total"
          "Steal attempts including failures." (fun w -> w.steal_attempts);
        counter "nowa_scheduler_lost_continuations_total"
          "Pops that lost their continuation to a thief (implicit syncs)."
          (fun w -> w.lost_continuations);
        counter "nowa_scheduler_suspensions_total"
          "Explicit syncs that had to suspend." (fun w -> w.suspensions);
        counter "nowa_scheduler_fast_syncs_total"
          "Explicit syncs satisfied immediately." (fun w -> w.fast_syncs);
        counter "nowa_scheduler_fused_syncs_total"
          "Explicit syncs that took the fused no-steal fast path \
           (no publication, no suspension, no resume exchange)."
          (fun w -> w.fused_syncs);
        counter "nowa_scheduler_resumes_total"
          "Suspended frames resumed." (fun w -> w.resumes);
        counter "nowa_scheduler_tasks_total"
          "Tasks executed from the scheduler loop." (fun w -> w.tasks);
        counter "nowa_scheduler_stack_acquires_total"
          "Stack-pool acquisitions." (fun w -> w.stack_acquires);
        counter "nowa_scheduler_stack_releases_total"
          "Stack-pool releases." (fun w -> w.stack_releases);
        counter "nowa_scheduler_parks_total"
          "Times an idle worker blocked on its condition variable."
          (fun w -> w.parks);
        counter "nowa_scheduler_parked_ns_total"
          "Nanoseconds workers spent parked (not consuming CPU)."
          (fun w -> w.parked_ns);
        counter "nowa_scheduler_wakeups_total"
          "Sleeper-registry wake-ups issued by spawners."
          (fun w -> w.wakeups);
        counter "nowa_scheduler_wake_retries_total"
          "Park cancellations that raced a wake (token consumed late)."
          (fun w -> w.wake_retries);
      ]
    in
    let stacks =
      match src_stacks with
      | None -> []
      | Some f ->
        let s = f () in
        let pool_counter name help v =
          {
            Nowa_obs.Registry.name;
            help;
            value = Nowa_obs.Registry.Counter (float_of_int v);
          }
        in
        [
          pool_counter "nowa_stacks_allocated_total"
            "Simulated cactus stacks ever allocated." s.allocated_stacks;
          gauge "nowa_stacks_live" "Stacks currently checked out."
            s.live_stacks;
          gauge "nowa_stacks_max_rss_pages"
            "Resident-page watermark of the stack pool." s.max_rss_pages;
          pool_counter "nowa_stacks_madvise_calls_total"
            "Simulated madvise() calls." s.madvise_calls;
          pool_counter "nowa_stacks_pool_hits_total"
            "Stack acquisitions that crossed the global pool lock."
            s.pool_hits;
        ]
    in
    scheduler @ per_pool @ stacks

let () = Nowa_obs.Registry.register_collector collect
