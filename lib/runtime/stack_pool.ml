type stack = {
  stack_id : int;
  mutable resident : int;
  mutable accounted : int;
  mutable shrunk : bool;  (* pages were returned by a simulated madvise *)
}

type t = {
  conf : Config.t;
  lock : Nowa_sync.Spinlock.t;
  mutable global : stack list;  (* protected by [lock] *)
  caches : stack list ref array;  (* owner-only local caches *)
  next_id : int Atomic.t;
  allocated : int Atomic.t;  (* stacks ever created; bounds Cilk-style limits *)
  live : int Atomic.t;  (* stacks currently checked out *)
  rss : int Atomic.t;
  max_rss : int Atomic.t;
  madvises : int Atomic.t;
  refaults : int Atomic.t;
  pool_hits : int Atomic.t;
}

(* Pool-lock contention gets its own histogram, distinct from the frame
   locks': the cholesky bottleneck of Section V-A is exactly this lock. *)
let lock_spins =
  Nowa_obs.Registry.histogram "nowa_stacks_lock_spins"
    ~help:
      "Spin-relax rounds per contended global stack-pool lock acquisition."

let create conf =
  {
    conf;
    lock = Nowa_sync.Spinlock.create ~spins:lock_spins ();
    global = [];
    caches = Array.init conf.Config.workers (fun _ -> ref []);
    next_id = Atomic.make 0;
    allocated = Atomic.make 0;
    live = Atomic.make 0;
    rss = Atomic.make 0;
    max_rss = Atomic.make 0;
    madvises = Atomic.make 0;
    refaults = Atomic.make 0;
    pool_hits = Atomic.make 0;
  }

let bump_watermark t =
  let cur = Atomic.get t.rss in
  let rec loop () =
    let m = Atomic.get t.max_rss in
    if cur > m && not (Atomic.compare_and_set t.max_rss m cur) then loop ()
  in
  loop ()

let sync_rss t stack =
  let delta = stack.resident - stack.accounted in
  if delta <> 0 then begin
    ignore (Atomic.fetch_and_add t.rss delta);
    stack.accounted <- stack.resident;
    if delta > 0 then bump_watermark t
  end

let touch stack ~pages ~max_pages =
  stack.resident <- min max_pages (stack.resident + pages)

(* Modelled madvise(MADV_FREE): pay the syscall/page-table cost and drop
   residency to the one page still backing the suspended frame. *)
let madvise t stack =
  if stack.resident > 1 then begin
    Atomic.incr t.madvises;
    Nowa_util.Clock.spin_ns t.conf.Config.madvise_cost_ns;
    stack.resident <- 1;
    stack.shrunk <- true;
    sync_rss t stack
  end

let fresh t =
  ignore (Atomic.fetch_and_add t.allocated 1);
  let s =
    {
      stack_id = Atomic.fetch_and_add t.next_id 1;
      resident = 1;
      accounted = 0;
      shrunk = false;
    }
  in
  sync_rss t s;
  s

(* MADV_DONTNEED drops the page contents, so the next use of a shrunk
   stack refaults its working pages; MADV_FREE keeps them reusable. *)
let refault t s =
  if s.shrunk then begin
    s.shrunk <- false;
    if t.conf.Config.madvise_mode = Config.Madv_dontneed then begin
      Atomic.incr t.refaults;
      Nowa_util.Clock.spin_ns t.conf.Config.refault_ns
    end
  end

let rec acquire_stack t ~worker =
  let cache = t.caches.(worker) in
  match !cache with
  | s :: rest ->
    cache := rest;
    refault t s;
    s
  | [] ->
    Atomic.incr t.pool_hits;
    Nowa_sync.Spinlock.acquire t.lock;
    let taken =
      match t.global with
      | s :: rest ->
        t.global <- rest;
        Some s
      | [] -> None
    in
    Nowa_sync.Spinlock.release t.lock;
    (match taken with
    | Some s ->
      refault t s;
      s
    | None -> (
      match t.conf.Config.stack_limit with
      | Some limit when Atomic.get t.allocated >= limit ->
        (* Cilk Plus-style stall: wait until a stack is recirculated. *)
        Domain.cpu_relax ();
        Unix.sleepf 0.0;
        acquire_stack t ~worker
      | _ -> fresh t))

let acquire t ~worker =
  let s = acquire_stack t ~worker in
  ignore (Atomic.fetch_and_add t.live 1);
  s

let release t ~worker stack =
  ignore (Atomic.fetch_and_add t.live (-1));
  sync_rss t stack;
  if t.conf.Config.madvise then madvise t stack;
  let cache = t.caches.(worker) in
  if List.length !cache < t.conf.Config.local_stack_cache then
    cache := stack :: !cache
  else begin
    Nowa_sync.Spinlock.acquire t.lock;
    t.global <- stack :: t.global;
    Nowa_sync.Spinlock.release t.lock
  end

let suspend t stack =
  sync_rss t stack;
  if t.conf.Config.madvise then madvise t stack

let reactivate = refault

let allocated_stacks t = Atomic.get t.allocated
let live_stacks t = Atomic.get t.live
let current_rss_pages t = Atomic.get t.rss
let max_rss_pages t = Atomic.get t.max_rss
let madvise_calls t = Atomic.get t.madvises
let refault_count t = Atomic.get t.refaults
let global_pool_hits t = Atomic.get t.pool_hits
