(** Global mutual exclusion between [run] invocations: the engines are not
    reentrant, and two pools spinning against each other would deadlock on
    small machines, so attempting it fails fast instead.

    The guard also owns the health-monitor thread of the current run:
    {!start_monitor} attaches at most one monitor per process, and
    {!exit} always stops and joins it before releasing the guard, so
    back-to-back (or aborted) pools can never leak monitor threads. *)

val enter : string -> unit
(** Raises [Failure] if another runtime is already running. *)

val start_monitor : (unit -> unit -> unit) -> unit
(** [start_monitor start]: between {!enter} and {!exit}, launch the
    run's monitor via [start ()] and retain the returned stop-and-join
    thunk for {!exit}.  A no-op when a monitor is already attached. *)

val monitor_attached : unit -> bool

val exit : unit -> unit
(** Stops and joins the attached monitor (if any), then releases the
    guard. *)
