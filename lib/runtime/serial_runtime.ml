let name = "serial"
let description = "serial elision: spawn = call, sync = no-op"

type scope = unit
type 'a promise = 'a Promise.t

let last_metrics_ref = ref None
let last_metrics () = !last_metrics_ref

(* The serial elision has no scheduler events to trace. *)
let last_trace () = None

let run ?conf main =
  ignore conf;
  Runtime_guard.enter name;
  (* Publish a worker-0 context (ring stays disabled) so layers above —
     the KV combiner's span attribution, for one — see a deterministic
     worker id instead of -1 under the elision. *)
  Nowa_trace.Current.set ~worker:0 Nowa_trace.Ring.disabled;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Nowa_trace.Current.clear ();
      Runtime_guard.exit ())
    (fun () ->
      let r = main () in
      last_metrics_ref :=
        Some
          (Metrics.make
             [| Metrics.make_worker 0 |]
             ~elapsed_s:(Unix.gettimeofday () -. t0));
      r)

let scope f = f ()

let spawn () thunk =
  let p = Promise.make () in
  (* Elision semantics: the child runs here and now, and its exception
     propagates immediately, exactly as in the unannotated program. *)
  Promise.fill p (thunk ());
  p

let spawn_unit () thunk = thunk ()
let sync () = ()
let get p = Promise.get ~runtime:name p
