let name = "serial"
let description = "serial elision: spawn = call, sync = no-op"

type scope = unit
type 'a promise = 'a Promise.t

let last_metrics_ref = ref None
let last_metrics () = !last_metrics_ref

(* The serial elision has no scheduler events to trace. *)
let last_trace () = None

(* One heartbeat slot for the single "worker": beaten at every elided
   spawn and at the run boundaries, so the watchdog can tell a busy
   serial run from a wedged one with the same machinery as the pools. *)
let hb = ref Health.Beats.disabled

let run ?conf main =
  let conf = match conf with Some c -> c | None -> Config.default () in
  Runtime_guard.enter name;
  (* Publish a worker-0 context (ring stays disabled) so layers above —
     the KV combiner's span attribution, for one — see a deterministic
     worker id instead of -1 under the elision. *)
  Nowa_trace.Current.set ~worker:0 Nowa_trace.Ring.disabled;
  hb :=
    (if conf.Config.heartbeats then Health.Beats.create ~workers:1
     else Health.Beats.disabled);
  let beats = !hb in
  Health.Beats.beat beats 0;
  if conf.Config.watchdog_interval_ms > 0 then
    Runtime_guard.start_monitor (fun () ->
        let probe = Health.static_probe ~engine:name ~workers:1 ~beats in
        let h =
          Health.Monitor.spawn ~interval_ms:conf.Config.watchdog_interval_ms
            ~stall_scans:conf.Config.watchdog_stall_scans
            ~dump:conf.Config.watchdog_dump probe
        in
        fun () -> Health.Monitor.stop h);
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Nowa_trace.Current.clear ();
      hb := Health.Beats.disabled;
      Runtime_guard.exit ())
    (fun () ->
      let r = main () in
      Health.Beats.beat beats 0;
      last_metrics_ref :=
        Some
          (Metrics.make
             [| Metrics.make_worker 0 |]
             ~elapsed_s:(Unix.gettimeofday () -. t0));
      r)

let scope f = f ()

let spawn () thunk =
  let p = Promise.make () in
  (* Elision semantics: the child runs here and now, and its exception
     propagates immediately, exactly as in the unannotated program. *)
  Promise.fill p (thunk ());
  Health.Beats.beat !hb 0;
  p

let spawn_unit () thunk =
  thunk ();
  Health.Beats.beat !hb 0

let sync () = ()
let get p = Promise.get ~runtime:name p
let await p = Promise.await ~runtime:name p

(* Pool routing under the elision: every pool the configuration names
   exists, but all of them are this one thread — [spawn_on] runs the
   task inline, preserving the serial-elision semantics. *)
type pool = string

(* The elision does not retain the run's config, so any name resolves —
   the engines are where a bad topology fails; serial has no scheduler
   to get it wrong on. *)
let find_pool n = Some (n : pool)
let pool n = (n : pool)

let pool_name (p : pool) = p
let self_pool () = "main"

let spawn_on (_ : pool) thunk =
  let p = Promise.make () in
  (match thunk () with
  | v -> Promise.fill p v
  | exception e -> Promise.fill_exn p e);
  Health.Beats.beat !hb 0;
  p

let spawn_unit_on (pl : pool) thunk =
  (try thunk ()
   with e ->
     Runtime_log.Log.err (fun m ->
         m "%s: spawn_unit_on %S task raised %s" name pl
           (Printexc.to_string e)));
  Health.Beats.beat !hb 0
