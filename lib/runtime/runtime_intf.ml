(** The programming-language-layer interface every scheduler engine in
    this platform implements (the [spawn]/[sync] keywords of Listing 1 in
    the paper, expressed as a library).

    Fully-strict usage contract: a spawning function opens a {!S.scope};
    [spawn] may only be called with the scope of the lexically enclosing
    [scope] invocation (never with a scope smuggled in from an outer or
    concurrent function); all children of a scope join at the latest when
    [scope] returns.  Promises may only be read after a [sync] (explicit
    or the implicit one at scope exit) that joins the corresponding
    child. *)

module type S = sig
  val name : string
  (** Identifier used in benchmark output ("nowa", "fibril", ...). *)

  val description : string

  type scope
  (** A spawning-function frame (one per [scope] invocation). *)

  type 'a promise
  (** The result cell of a spawned child. *)

  val run : ?conf:Config.t -> (unit -> 'a) -> 'a
  (** Start the runtime system, execute the computation to completion on
      the configured workers and tear the workers down.  Exceptions from
      the computation are re-raised.  Not reentrant. *)

  val scope : (scope -> 'a) -> 'a
  (** Enter a spawning function: allocates the frame and performs the
      implicit sync at exit (also on exceptional exit, preserving full
      strictness).  Must be called from within [run]. *)

  val spawn : scope -> (unit -> 'a) -> 'a promise
  (** Fork point.  The platform may execute the child serially (the
      common case) or in parallel with the continuation, at its sole
      discretion — [spawn] expresses the {e potential} for parallelism. *)

  val spawn_unit : scope -> (unit -> unit) -> unit
  (** Fire-and-forget fork point for request-shaped work: like {!spawn}
      but without allocating a promise, so a server dispatch loop can
      inject one task per request with nothing to read back.  The child
      is still joined by the enclosing scope's sync; its exception (if
      any) is re-raised there. *)

  val sync : scope -> unit
  (** Explicit sync point: returns once every child spawned so far in
      this scope has finished.  Re-raises the first child exception. *)

  val get : 'a promise -> 'a
  (** Read a joined child's result.  Raises [Invalid_argument] if the
      child has not been synced yet (a fully-strictness violation). *)

  val last_metrics : unit -> Metrics.t option
  (** Metrics of the most recently completed [run], if collected. *)

  val last_trace : unit -> Nowa_trace.Trace.t option
  (** Per-worker event trace of the most recently completed [run];
      [None] unless the run's {!Config.t.trace_capacity} was positive
      (or the runtime does not trace, e.g. the serial elision). *)
end
