(** The programming-language-layer interface every scheduler engine in
    this platform implements (the [spawn]/[sync] keywords of Listing 1 in
    the paper, expressed as a library).

    Fully-strict usage contract: a spawning function opens a {!S.scope};
    [spawn] may only be called with the scope of the lexically enclosing
    [scope] invocation (never with a scope smuggled in from an outer or
    concurrent function); all children of a scope join at the latest when
    [scope] returns.  Promises may only be read after a [sync] (explicit
    or the implicit one at scope exit) that joins the corresponding
    child. *)

module type S = sig
  val name : string
  (** Identifier used in benchmark output ("nowa", "fibril", ...). *)

  val description : string

  type scope
  (** A spawning-function frame (one per [scope] invocation). *)

  type 'a promise
  (** The result cell of a spawned child. *)

  type pool
  (** Handle to one named worker pool (micropool) of the running
      topology — see {!Config.t.pools}.  With an empty pool list the
      runtime has a single implicit pool called ["main"]. *)

  val run : ?conf:Config.t -> (unit -> 'a) -> 'a
  (** Start the runtime system, execute the computation to completion on
      the configured workers and tear the workers down.  Exceptions from
      the computation are re-raised.  Not reentrant. *)

  val scope : (scope -> 'a) -> 'a
  (** Enter a spawning function: allocates the frame and performs the
      implicit sync at exit (also on exceptional exit, preserving full
      strictness).  Must be called from within [run]. *)

  val spawn : scope -> (unit -> 'a) -> 'a promise
  (** Fork point.  The platform may execute the child serially (the
      common case) or in parallel with the continuation, at its sole
      discretion — [spawn] expresses the {e potential} for parallelism. *)

  val spawn_unit : scope -> (unit -> unit) -> unit
  (** Fire-and-forget fork point for request-shaped work: like {!spawn}
      but without allocating a promise, so a server dispatch loop can
      inject one task per request with nothing to read back.  The child
      is still joined by the enclosing scope's sync; its exception (if
      any) is re-raised there. *)

  val sync : scope -> unit
  (** Explicit sync point: returns once every child spawned so far in
      this scope has finished.  Re-raises the first child exception. *)

  val get : 'a promise -> 'a
  (** Read a joined child's result.  Raises [Invalid_argument] if the
      child has not been synced yet (a fully-strictness violation). *)

  val pool : string -> pool
  (** Resolve a pool by name.  Must be called from within [run]; raises
      [Invalid_argument] on an unknown name. *)

  val find_pool : string -> pool option
  (** Like {!pool} but total over the name. *)

  val pool_name : pool -> string

  val self_pool : unit -> string
  (** Name of the pool owning the worker executing the caller.  Routed
      tasks observe the pool they actually run on — their home pool
      unless spill-over stealing moved them. *)

  val spawn_on : pool -> (unit -> 'a) -> 'a promise
  (** Route a task to a named pool: the thunk is enqueued on that
      pool's inject queue and executed by one of its workers (or, with
      {!Config.t.spill_over}, possibly by a foreign idle worker).
      Unlike {!spawn} this is {e not} tied to the caller's scope — the
      task is an independent root on the target pool and its promise is
      a cross-pool cell read with {!get} (non-blocking, after
      completion is known) or {!await} (blocking).  Tasks routed to the
      same pool execute in FIFO injection order. *)

  val spawn_unit_on : pool -> (unit -> unit) -> unit
  (** Promise-free {!spawn_on} for request-shaped work.  The task's
      exception (if any) is logged and dropped — there is no joining
      scope to re-raise it in. *)

  val await : 'a promise -> 'a
  (** Block the calling thread until a {!spawn_on} promise is filled,
      then return the result or re-raise.  Blocks the OS thread — meant
      for orchestration strands (a pipeline driver waiting on another
      pool), not for the spawn/sync hot path.  On a same-pool promise:
      returns immediately if filled, raises [Invalid_argument]
      otherwise (join those through [sync]). *)

  val last_metrics : unit -> Metrics.t option
  (** Metrics of the most recently completed [run], if collected. *)

  val last_trace : unit -> Nowa_trace.Trace.t option
  (** Per-worker event trace of the most recently completed [run];
      [None] unless the run's {!Config.t.trace_capacity} was positive
      (or the runtime does not trace, e.g. the serial elision). *)
end
