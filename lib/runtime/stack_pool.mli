(** Simulated cactus-stack management.

    OCaml 5 fibers make the real cactus-stack problem disappear (every
    fiber is a heap-managed segmented stack), so the stack-related
    behaviour the paper evaluates — per-worker stack caches in front of a
    global pool (the cholesky bottleneck of Section V-A), the madvise()
    cost and RSS saving of the practical cactus-stack solution
    (Section V-B, Figure 8, Table II), and Cilk Plus's bounded stack count
    — is reproduced by this explicit model.  A stack is a page-accounted
    record; acquiring one goes through a per-worker cache and falls back
    to a spinlocked global pool, exactly the recirculation scheme the
    paper describes for Nowa and Fibril; "madvise" charges a calibrated
    virtual cost ({!Config.t.madvise_cost_ns}) and returns the resident
    pages above the suspended frame.

    Resident-page accounting (for Table II): the pool tracks the current
    total of resident pages and its high watermark.  Pages become resident
    as strands dirty them ({!touch}) and are released either never (no
    madvise; the pool recirculates warm stacks) or at suspension / release
    time (madvise). *)

type stack = {
  stack_id : int;
  mutable resident : int;  (** currently resident pages of this stack *)
  mutable accounted : int;  (** pages currently included in the pool RSS *)
  mutable shrunk : bool;
      (** pages were returned by a simulated madvise; with
          [Madv_dontneed] the next acquisition pays a refault cost *)
}

type t

val create : Config.t -> t

val acquire : t -> worker:int -> stack
(** Take a stack: per-worker cache, then global pool, then fresh
    allocation.  With a configured {!Config.t.stack_limit}, blocks
    (spinning) when the limit is reached and no stack is free — the
    Cilk Plus behaviour of stalling steals. *)

val release : t -> worker:int -> stack -> unit
(** Return a stack to the worker cache (overflow goes to the global
    pool).  With madvise on, the stack is shrunk to one resident page at
    the modelled cost. *)

val touch : stack -> pages:int -> max_pages:int -> unit
(** A strand dirtied [pages] more pages (owner-local, unsynchronised). *)

val suspend : t -> stack -> unit
(** The frame at the bottom of [stack] suspended at a sync point; with
    madvise on, free the pages above it at the modelled cost. *)

val reactivate : t -> stack -> unit
(** A suspended stack resumes execution; with [Madv_dontneed] its pages
    refault at the modelled cost. *)

val sync_rss : t -> stack -> unit
(** Fold the stack's locally accumulated page count into the global RSS
    and watermark.  Called at pool-crossing events to keep the hot path
    free of shared-counter traffic. *)

val allocated_stacks : t -> int
(** Stacks ever created by this pool (never decreases; with a
    {!Config.t.stack_limit} this is the bounded quantity). *)

val live_stacks : t -> int
(** Stacks currently checked out ([acquire]d and not yet [release]d). *)

val current_rss_pages : t -> int
val max_rss_pages : t -> int
val madvise_calls : t -> int
val refault_count : t -> int
val global_pool_hits : t -> int
(** Number of acquisitions that had to take the global-pool lock. *)
