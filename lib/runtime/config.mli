(** Runtime-system configuration shared by all scheduler engines. *)

type victim_policy =
  | Random  (** randomised work stealing (the default, Blumofe-Leiserson) *)
  | Round_robin  (** cyclic victim scan — an ablation knob *)

type idle_policy =
  | Spin  (** pure busy-wait with exponential backoff — the pre-elastic
              behaviour; burns a core per idle worker *)
  | Yield_after of int
      (** after that many consecutive failed steal rounds, each further
          round also yields the OS timeslice (cooperative step; never
          blocks) *)
  | Park_after of int
      (** after that many failed rounds spinning and as many again
          yielding, announce in the sleeper registry, re-check every
          deque, and block on the worker's condition variable until a
          spawner wakes it (the default) *)

type madvise_mode =
  | Madv_free
      (** lazy page reclamation: pages are freed at the modelled syscall
          cost, reuse is cheap *)
  | Madv_dontneed
      (** eager reclamation: additionally pay a refault cost when a
          shrunk stack is next used — the variant Yang & Mellor-Crummey
          evaluated *)

type pool_conf = {
  pc_name : string;  (** Pool name, the routing key for [spawn_on]. *)
  pc_workers : int;
      (** Workers in this pool (at most [Sleepers.mask_bits]; validated
          loudly at pool construction). *)
  pc_idle_policy : idle_policy option;
      (** Per-pool idle policy; [None] inherits the top-level
          {!t.idle_policy}. *)
  pc_steal_sweep : int option;
      (** Per-pool steal sweep width; [None] inherits
          {!t.steal_sweep}. *)
  pc_deque_capacity : int option;
      (** Per-pool initial deque capacity; [None] inherits
          {!t.deque_capacity}. *)
}
(** One named worker pool (a {e micropool}).  Each pool gets its own
    instances of the engine's deque and counter families, its own
    sleeper registry, and its own idle policy; workers steal only from
    pool-mates unless {!t.spill_over} is set. *)

type t = {
  workers : int;
      (** Number of workers (the calling domain is worker 0; [workers − 1]
          further domains are spawned).  Ignored when {!t.pools} is
          non-empty — the pool sizes then determine the worker count. *)
  deque_capacity : int;  (** Initial per-worker deque capacity. *)
  steal_attempts : int;
      (** Failed steal attempts before one backoff step is taken. *)
  victim_policy : victim_policy;
  seed : int;  (** Seed for the per-worker victim-selection PRNGs. *)
  madvise : bool;
      (** Simulate the practical cactus-stack solution of Yang &
          Mellor-Crummey: on stack suspension, release the physical pages
          of the unused stack portion at a modelled syscall cost
          (Section V-B of the paper). *)
  madvise_cost_ns : int;
      (** Modelled cost of one madvise() call (syscall + page-table work;
          the paper's Figure 8 penalty comes from this). *)
  madvise_mode : madvise_mode;
  refault_ns : int;
      (** With [Madv_dontneed], the modelled page-fault cost paid when a
          previously shrunk stack is reused. *)
  stack_pages : int;  (** Pages per simulated stack (1 MiB / 4 KiB = 256). *)
  local_stack_cache : int;
      (** Per-worker buffer of free stacks in front of the global pool. *)
  stack_limit : int option;
      (** Maximum number of live stacks; [Some n] models Cilk Plus's
          bounded-stacks behaviour where stealing stalls once exhausted. *)
  collect_metrics : bool;
  trace_capacity : int;
      (** Per-worker event-trace ring capacity (rounded up to a power of
          two); 0 (the default) disables tracing entirely — the engines
          then pay a single flag check per emission site.  The trace of
          the last run is available through
          {!Runtime_intf.S.last_trace}. *)
  idle_policy : idle_policy;
      (** What an out-of-work worker does: see {!idle_policy}.  Parking
          never touches the spawn/join hot path — spawners pay one atomic
          load unless a sleeper actually exists. *)
  steal_sweep : int;
      (** Victims probed per steal round (clamped to the victim count).
          Continuation-stealing engines sweep this many distinct randomised
          victims before counting the round as failed; the child-stealing
          and central baselines additionally grab up to this many tasks in
          one batched ([steal_half]-style) acquisition. *)
  heartbeats : bool;
      (** Per-worker heartbeat words, bumped by one plain padded int
          store at each scheduler station point (task completion, steal
          attempt, park/unpark).  On by default — the cost is one
          unfenced store — and only turned off by the overhead gate in
          [bench micro]. *)
  watchdog_interval_ms : int;
      (** Scan cadence of the health watchdog monitor thread; 0 (the
          default) leaves the monitor off.  When positive, the engine
          hands {!Runtime_guard} a monitor that samples heartbeats and
          sleeper state every interval, classifies each worker as
          active / parked / stalled, and triggers the flight recorder on
          anomalies (see {!Health}). *)
  watchdog_stall_scans : int;
      (** Consecutive no-progress scans of an unparked worker before the
          watchdog declares it stalled (and, pool-wide with ready work
          visible, before it declares starvation).  Detection latency is
          bounded by [watchdog_stall_scans * watchdog_interval_ms]. *)
  watchdog_dump : bool;
      (** Whether a watchdog verdict triggers a flight-recorder
          postmortem bundle under [artifacts/] (on by default; verdicts
          are still recorded and exported when off). *)
  pools : pool_conf list;
      (** Named worker pools.  Empty (the default) means one implicit
          pool called ["main"] with {!t.workers} workers — the flat
          pre-micropool behaviour, with an unchanged hot path.  When
          non-empty, the first pool hosts the root computation (and is
          where [run]'s main thunk executes); pool names must be
          distinct and non-empty, and each pool's worker count must be
          in [1, Sleepers.mask_bits] or [run] raises
          [Invalid_argument]. *)
  spill_over : bool;
      (** Cross-pool spill-over stealing: an idle worker sweeps foreign
          pools' deques and inject queues only after exhausting its own
          pool's victims, just before parking would otherwise win.  Off
          by default — pools are then fully isolated and a task routed
          with [spawn_on] never executes outside its pool. *)
}

val default : unit -> t
(** One worker per available core (clamped to [Sleepers.mask_bits]),
    madvise off, metrics on, single implicit pool. *)

val with_workers : int -> t
(** [default ()] with the given worker count. *)

val pool :
  ?idle_policy:idle_policy ->
  ?steal_sweep:int ->
  ?deque_capacity:int ->
  string ->
  workers:int ->
  pool_conf
(** [pool name ~workers] builds one {!pool_conf} entry, inheriting any
    unspecified knob from the top-level configuration. *)
