(** Result cell of a spawned child, shared by all engines.

    Writes are published to other workers through the join-counter
    atomics: the child fills the cell before its join decrement, and the
    parent reads it only after observing the join — so the plain mutable
    field is race-free by the OCaml memory model's release/acquire rules
    on atomics. *)

type 'a t

val make : unit -> 'a t
val fill : 'a t -> 'a -> unit
val fill_exn : 'a t -> exn -> unit

val make_remote : unit -> 'a t
(** A cross-pool completion cell (for [spawn_on], ISSUE 10): the filler
    runs on a foreign pool whose join counters the reader never
    observes, so publication goes through a private mutex/condvar box
    instead.  Only routed spawns allocate the box — the flat two-word
    cell used by same-pool [spawn] is unchanged. *)

val fill_remote : 'a t -> 'a -> unit
val fill_remote_exn : 'a t -> exn -> unit
(** Fill a remote cell and wake any {!await}er.  Must only be applied
    to promises from {!make_remote}. *)

val get : runtime:string -> 'a t -> 'a
(** Raises the child's exception if it failed, or [Invalid_argument] if
    the child has not been joined yet.  On a remote cell this is a
    non-blocking poll (mutex-protected, never waits). *)

val await : runtime:string -> 'a t -> 'a
(** Block the calling thread until a remote cell is filled, then return
    the value or re-raise the exception.  On an already-filled flat
    promise it returns immediately; on an unfilled flat promise it
    raises [Invalid_argument] (same-pool children are joined by their
    scope's sync, not by blocking). *)
