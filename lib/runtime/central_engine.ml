(** Central-queue scheduler engine: the structural model of GCC libgomp's
    task support.

    Every spawned task goes through one mutex-protected FIFO per pool;
    every idle worker and every strand waiting at a [sync] polls the same
    queue.  With fine-grained tasks all scheduling traffic serialises on
    the one lock — which is why libgomp's speedup collapses in Figure 10
    of the paper, and why this engine's does too.

    Micropools (ISSUE 10) partition the workers into named groups, each
    with its own central queue, SNZI indicator and sleeper registry; a
    multi-pool topology therefore also shards the lock, which is the
    closest thing this engine has to scalability. *)

module Make (Id : sig
  val name : string
  val description : string
end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type frame = { pending : int Atomic.t; exn_slot : exn option Atomic.t }
  type scope = frame

  type task = Task of (unit -> unit)

  (* One named micropool: its own central queue doubles as the inject
     queue for [spawn_on]-routed roots (they are ordinary tasks here). *)
  type group = {
    gid : int;
    gname : string;
    glo : int;  (* first global worker id of this pool *)
    ghi : int;  (* one past the last *)
    gqueue : task Nowa_deque.Central_queue.t;
    gwork : Nowa_sync.Snzi.t;
        (* Non-zero indicator over the queue: spawners arrive before the
           push, poppers depart after the grab ([depart_n]: one CAS per
           batch), so surplus >= queue length always and [query] = false
           proves the queue is empty.  Idle workers read the padded SNZI
           root instead of hammering the central mutex — the query-skip.
           SNZI departs must retire units at their arrival leaf, and a
           queued task carries no leaf memory, so the indicator runs
           single-leaf: the leaf CAS traffic matches what a plain atomic
           counter would cost, while the query side stays one uncontended
           root read. *)
    gsleepers : Sleepers.t;  (* indexed by pool-local worker id *)
    gidle : Config.idle_policy;
    gsweep : int;
  }

  type pool = group

  type worker = {
    id : int;
    grp : group;
    m : Metrics.worker;
    tr : Ring.t;
    hb : Health.Beats.t;  (* shared heartbeat words; worker beats its slot *)
    mutable depth : int;  (* task nesting (helping at sync): only the
                             outermost start/end delimits a busy slice *)
    mutable stash : task list;
        (* surplus of the last batched grab, served before the lock is
           touched again — the steal_half-style amortisation for the
           central queue *)
  }

  type cluster = {
    conf : Config.t;
    workers : worker array;  (* all pools, global ids *)
    groups : group array;
    spill : bool;  (* cross-pool spill-over polling enabled *)
    finished : bool Atomic.t;
  }

  let current : (cluster * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None -> failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  (* Task bodies never raise: both [spawn] and the root wrap the thunk in
     a match, so the straight-line depth bookkeeping is exception-safe. *)
  let run_task w (Task f) =
    w.m.tasks <- w.m.tasks + 1;
    w.depth <- w.depth + 1;
    if w.depth = 1 then Ring.emit w.tr Ev.Task_start 0;
    f ();
    if w.depth = 1 then Ring.emit w.tr Ev.Task_end 0;
    w.depth <- w.depth - 1;
    Health.Beats.beat w.hb w.id

  (* Batched grab from one pool's queue, behind its query-skip. *)
  let poll_group w (g : group) =
    w.m.steal_attempts <- w.m.steal_attempts + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Steal_attempt g.gid;
    if not (Nowa_sync.Snzi.query g.gwork) then begin
      (* Indicator at zero proves the queue is empty: skip the mutex. *)
      Ring.emit w.tr Ev.Steal_abort g.gid;
      None
    end
    else begin
      match
        Nowa_deque.Central_queue.pop_batch g.gqueue ~max:(max 1 g.gsweep)
      with
      | [] ->
        Ring.emit w.tr Ev.Steal_abort g.gid;
        None
      | head :: rest ->
        (* One batched depart retires the whole grab's units. *)
        Nowa_sync.Snzi.depart_n g.gwork ~leaf:0 (1 + List.length rest);
        Ring.emit w.tr Ev.Steal_commit g.gid;
        w.stash <- rest;
        Some head
    end

  let poll cl w =
    match w.stash with
    | t :: rest ->
      w.stash <- rest;
      Some t
    | [] -> (
      match poll_group w w.grp with
      | Some _ as r -> r
      | None ->
        if not cl.spill then None
        else begin
          (* Spill-over: poll foreign pools round-robin from the next
             pool over, only after the own pool proved empty. *)
          let ng = Array.length cl.groups in
          let rec go k =
            if k >= ng - 1 then None
            else
              match poll_group w cl.groups.((w.grp.gid + 1 + k) mod ng) with
              | Some _ as r -> r
              | None -> go (k + 1)
          in
          go 0
        end)

  let wait_for cl w fr =
    w.m.suspensions <- w.m.suspensions + 1;
    Ring.emit w.tr Ev.Suspend 0;
    let bo = Nowa_util.Backoff.make () in
    while Atomic.get fr.pending > 0 do
      match poll cl w with
      | Some t ->
        Nowa_util.Backoff.reset bo;
        run_task w t
      | None -> Nowa_util.Backoff.once bo
    done

  (* Pre-park re-check: the stash is owner-local and the central pops are
     mutex-synchronised, so probing each pool's queue is the whole-system
     sweep — the queues are the only places work can hide.  No
     query-skip here: this probe is the park protocol's lost-wakeup
     guard, so it must hit the queues themselves. *)
  let sweep_all cl w =
    let take (g : group) =
      match Nowa_deque.Central_queue.pop g.gqueue with
      | Some _ as r ->
        Nowa_sync.Snzi.depart g.gwork ~leaf:0;
        r
      | None -> None
    in
    match w.stash with
    | t :: rest ->
      w.stash <- rest;
      Some t
    | [] -> (
      match take w.grp with
      | Some _ as r -> r
      | None ->
        if not cl.spill then None
        else begin
          let ng = Array.length cl.groups in
          let rec go k =
            if k >= ng - 1 then None
            else
              match take cl.groups.((w.grp.gid + 1 + k) mod ng) with
              | Some _ as r -> r
              | None -> go (k + 1)
          in
          go 0
        end)

  let park_round cl w =
    Health.Beats.beat w.hb w.id;
    let sleepers = w.grp.gsleepers in
    let lid = w.id - w.grp.glo in
    ignore (Sleepers.announce sleepers ~worker:lid);
    let cancel () =
      if not (Sleepers.cancel sleepers ~worker:lid) then
        w.m.wake_retries <- w.m.wake_retries + 1
    in
    match sweep_all cl w with
    | Some _ as r ->
      cancel ();
      r
    | None ->
      if Atomic.get cl.finished then cancel ()
      else begin
        w.m.parks <- w.m.parks + 1;
        Ring.emit w.tr Ev.Park 0;
        let t0 = Nowa_util.Clock.now_ns () in
        Sleepers.park sleepers ~worker:lid;
        Health.Beats.beat w.hb w.id;
        w.m.parked_ns <- w.m.parked_ns + (Nowa_util.Clock.now_ns () - t0);
        Ring.emit w.tr Ev.Unpark 0
      end;
      None

  (* Three-phase elastic idle path (spin, yield, park), as in the
     work-stealing engines.  No mask-width guard needed: [Topology]
     rejects pools wider than the sleeper registry. *)
  let worker_loop cl w =
    let bo = Nowa_util.Backoff.make () in
    let spin_budget, can_park =
      match w.grp.gidle with
      | Config.Spin -> (max_int, false)
      | Config.Yield_after n -> (max 1 n, false)
      | Config.Park_after n -> (max 1 n, true)
    in
    let rounds = ref 0 in
    let rec go () =
      if Atomic.get cl.finished then ()
      else
        match poll cl w with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          rounds := 0;
          run_task w t;
          go ()
        | None ->
          incr rounds;
          if !rounds <= spin_budget then begin
            Nowa_util.Backoff.once bo;
            go ()
          end
          else if (not can_park) || !rounds <= 2 * spin_budget then begin
            Unix.sleepf 0.0;
            go ()
          end
          else begin
            (match park_round cl w with
            | Some t ->
              Nowa_util.Backoff.reset bo;
              run_task w t
            | None -> ());
            Nowa_util.Backoff.reset bo;
            rounds := 0;
            go ()
          end
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    (* Validate the pool topology before entering the runtime guard so a
       bad configuration raises without leaking guard state. *)
    let specs = Topology.of_config conf in
    let nw = Topology.total specs in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m ->
        m "%s: starting %d workers in %d pool(s)" name nw (Array.length specs));
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let hb =
      if conf.Config.heartbeats then Health.Beats.create ~workers:nw
      else Health.Beats.disabled
    in
    let groups =
      Array.mapi
        (fun gi (s : Topology.spec) ->
          {
            gid = gi;
            gname = s.Topology.name;
            glo = s.Topology.lo;
            ghi = s.Topology.hi;
            gqueue = Nowa_deque.Central_queue.create ();
            gwork = Nowa_sync.Snzi.create ~leaves:1 ();
            gsleepers = Sleepers.create ~workers:(s.Topology.hi - s.Topology.lo);
            gidle = s.Topology.idle;
            gsweep = s.Topology.sweep;
          })
        specs
    in
    let cl =
      {
        conf;
        groups;
        spill = conf.Config.spill_over;
        finished = Atomic.make false;
        workers =
          Array.init nw (fun i ->
              let g = groups.(Topology.group_of specs i) in
              {
                id = i;
                grp = g;
                m = Metrics.make_worker ~pool:g.gname i;
                tr = ring_for i;
                hb;
                depth = 0;
                stash = [];
              });
      }
    in
    Metrics.publish (Array.map (fun w -> w.m) cl.workers);
    (match trace with
    | Some t ->
      Health.Recorder.register ~name:"trace" (fun ~dir ->
          let evs, _dropped = Nowa_trace.Trace.freeze ~window:4096 t in
          Nowa_trace.Perfetto.write_events_file
            (Filename.concat dir "trace.json")
            evs)
    | None -> Health.Recorder.unregister ~name:"trace");
    if conf.Config.watchdog_interval_ms > 0 then
      Runtime_guard.start_monitor (fun () ->
          (* Pool-aware probe (ISSUE 10): accessors translate global ids
             through the worker's group so two pools' worker 0s cannot
             alias. *)
          let grp i = cl.workers.(i).grp in
          let lid i = i - (grp i).glo in
          let probe =
            {
              Health.engine = name;
              workers = nw;
              pool_of = (fun i -> ((grp i).gname, lid i));
              beat_of = (fun i -> Health.Beats.read hb i);
              announced =
                (fun i -> Sleepers.announced (grp i).gsleepers ~worker:(lid i));
              waiting =
                (fun i -> Sleepers.waiting (grp i).gsleepers ~worker:(lid i));
              wake_stamp =
                (fun i ->
                  Sleepers.wake_stamp (grp i).gsleepers ~worker:(lid i));
              ready =
                (fun () ->
                  Array.fold_left
                    (fun acc g -> acc + Nowa_deque.Central_queue.size g.gqueue)
                    0 cl.groups);
              sleepers =
                (fun () ->
                  Array.fold_left
                    (fun acc g -> acc + Sleepers.sleepers g.gsleepers)
                    0 cl.groups);
              draining = (fun () -> Atomic.get cl.finished);
            }
          in
          let h =
            Health.Monitor.spawn
              ~interval_ms:conf.Config.watchdog_interval_ms
              ~stall_scans:conf.Config.watchdog_stall_scans
              ~dump:conf.Config.watchdog_dump probe
          in
          fun () -> Health.Monitor.stop h);
    let result = ref None in
    let wake_everyone () =
      Array.iter (fun g -> Sleepers.wake_all g.gsleepers) cl.groups
    in
    let root =
      Task
        (fun () ->
          (match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e));
          Atomic.set cl.finished true;
          wake_everyone ())
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = cl.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (cl, w));
              Nowa_trace.Current.set ~worker:w.id w.tr;
              Fun.protect
                ~finally:(fun () ->
                  Domain.DLS.set current None;
                  Nowa_trace.Current.clear ())
                (fun () -> worker_loop cl w)))
    in
    let w0 = cl.workers.(0) in
    Domain.DLS.set current (Some (cl, w0));
    Nowa_trace.Current.set ~worker:w0.id w0.tr;
    let teardown () =
      Domain.DLS.set current None;
      Nowa_trace.Current.clear ();
      Atomic.set cl.finished true;
      wake_everyone ();
      List.iter Domain.join domains;
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        run_task w0 root;
        worker_loop cl w0;
        let elapsed = Unix.gettimeofday () -. t0 in
        last_trace_ref := trace;
        if conf.Config.collect_metrics then
          last_metrics_ref :=
            Some
              (Metrics.make
                 (Array.map (fun w -> w.m) cl.workers)
                 ~elapsed_s:elapsed));
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let scope_finish fr =
    let cl, w = get_current () in
    if Atomic.get fr.pending > 0 then wait_for cl w fr
    else w.m.fast_syncs <- w.m.fast_syncs + 1;
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let scope f =
    ignore (get_current ());
    let fr = { pending = Atomic.make 0; exn_slot = Atomic.make None } in
    match f fr with
    | v ->
      scope_finish fr;
      v
    | exception e ->
      (try scope_finish fr with _ -> ());
      raise e

  let sync = scope_finish

  (* Arrive before push: a task in the queue always has a visible unit
     behind it, so a zero indicator proves the queue is empty. *)
  let push_task w (g : group) t =
    Nowa_sync.Snzi.arrive g.gwork ~leaf:0;
    Nowa_deque.Central_queue.push g.gqueue t;
    (* One load when nobody sleeps; CAS + signal only for a sleeper. *)
    if Sleepers.wake_one g.gsleepers then w.m.wakeups <- w.m.wakeups + 1

  let spawn fr thunk =
    let _, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    let p = Promise.make () in
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with
      | v -> Promise.fill p v
      | exception e ->
        Promise.fill_exn p e;
        note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    push_task w w.grp (Task body);
    p

  let spawn_unit fr thunk =
    let _, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with () -> () | exception e -> note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    push_task w w.grp (Task body)

  let get p = Promise.get ~runtime:name p
  let await p = Promise.await ~runtime:name p

  (* -- pool routing (ISSUE 10) ------------------------------------------ *)

  let find_pool pname =
    let cl, _ = get_current () in
    Array.find_opt (fun g -> String.equal g.gname pname) cl.groups

  let pool pname =
    match find_pool pname with
    | Some g -> g
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown pool %S (configure it in Config.pools)"
           name pname)

  let pool_name (g : pool) = g.gname

  let self_pool () =
    let _, w = get_current () in
    w.grp.gname

  (* Wake path for a routed root: the target pool's registry first; with
     spill-over on and no local sleeper, any foreign sleeper will do —
     the spill poll covers foreign queues. *)
  let wake_routed cl w (g : group) =
    if Sleepers.wake_one g.gsleepers then w.m.wakeups <- w.m.wakeups + 1
    else if cl.spill then begin
      let ng = Array.length cl.groups in
      let rec go k =
        if k >= ng - 1 then ()
        else if Sleepers.wake_one cl.groups.((g.gid + 1 + k) mod ng).gsleepers
        then w.m.wakeups <- w.m.wakeups + 1
        else go (k + 1)
      in
      go 0
    end

  let enqueue_routed (g : pool) body =
    let cl, w = get_current () in
    Nowa_sync.Snzi.arrive g.gwork ~leaf:0;
    Nowa_deque.Central_queue.push g.gqueue (Task body);
    wake_routed cl w g

  (* Routed roots are plain closures here — spawns inside the task open
     their own scopes as usual. *)
  let spawn_on (type a) (g : pool) (thunk : unit -> a) : a promise =
    let p : a promise = Promise.make_remote () in
    enqueue_routed g (fun () ->
        match thunk () with
        | v -> Promise.fill_remote p v
        | exception e -> Promise.fill_remote_exn p e);
    p

  let spawn_unit_on (g : pool) thunk =
    enqueue_routed g (fun () ->
        try thunk ()
        with e ->
          Runtime_log.Log.err (fun m ->
              m "%s: spawn_unit_on %S task raised %s" name g.gname
                (Printexc.to_string e)))
end
