(** Central-queue scheduler engine: the structural model of GCC libgomp's
    task support.

    Every spawned task goes through one global mutex-protected FIFO; every
    idle worker and every strand waiting at a [sync] polls the same queue.
    With fine-grained tasks all scheduling traffic serialises on the one
    lock — which is why libgomp's speedup collapses in Figure 10 of the
    paper, and why this engine's does too. *)

module Make (Id : sig
  val name : string
  val description : string
end) : Runtime_intf.S = struct
  let name = Id.name
  let description = Id.description

  module Ring = Nowa_trace.Ring
  module Ev = Nowa_trace.Event

  type 'a promise = 'a Promise.t

  type frame = { pending : int Atomic.t; exn_slot : exn option Atomic.t }
  type scope = frame

  type task = Task of (unit -> unit)

  type worker = {
    id : int;
    m : Metrics.worker;
    tr : Ring.t;
    hb : Health.Beats.t;  (* shared heartbeat words; worker beats its slot *)
    mutable depth : int;  (* task nesting (helping at sync): only the
                             outermost start/end delimits a busy slice *)
    mutable stash : task list;
        (* surplus of the last batched grab, served before the lock is
           touched again — the steal_half-style amortisation for the
           central queue *)
  }

  type pool = {
    conf : Config.t;
    queue : task Nowa_deque.Central_queue.t;
    work : Nowa_sync.Snzi.t;
        (* Non-zero indicator over the queue: spawners arrive before the
           push, poppers depart after the grab ([depart_n]: one CAS per
           batch), so surplus >= queue length always and [query] = false
           proves the queue is empty.  Idle workers read the padded SNZI
           root instead of hammering the central mutex — the query-skip.
           SNZI departs must retire units at their arrival leaf, and a
           queued task carries no leaf memory, so the indicator runs
           single-leaf: the leaf CAS traffic matches what a plain atomic
           counter would cost, while the query side stays one uncontended
           root read. *)
    workers : worker array;
    finished : bool Atomic.t;
    sleepers : Sleepers.t;
  }

  let current : (pool * worker) option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let get_current () =
    match Domain.DLS.get current with
    | Some pw -> pw
    | None -> failwith (name ^ ": spawn/sync/scope used outside of run")

  let note_exn fr e =
    ignore (Atomic.compare_and_set fr.exn_slot None (Some e))

  (* Task bodies never raise: both [spawn] and the root wrap the thunk in
     a match, so the straight-line depth bookkeeping is exception-safe. *)
  let run_task w (Task f) =
    w.m.tasks <- w.m.tasks + 1;
    w.depth <- w.depth + 1;
    if w.depth = 1 then Ring.emit w.tr Ev.Task_start 0;
    f ();
    if w.depth = 1 then Ring.emit w.tr Ev.Task_end 0;
    w.depth <- w.depth - 1;
    Health.Beats.beat w.hb w.id

  let poll pool w =
    match w.stash with
    | t :: rest ->
      w.stash <- rest;
      Some t
    | [] ->
      w.m.steal_attempts <- w.m.steal_attempts + 1;
      Health.Beats.beat w.hb w.id;
      Ring.emit w.tr Ev.Steal_attempt 0;
      if not (Nowa_sync.Snzi.query pool.work) then begin
        (* Indicator at zero proves the queue is empty: skip the mutex. *)
        Ring.emit w.tr Ev.Steal_abort 0;
        None
      end
      else begin
        match
          Nowa_deque.Central_queue.pop_batch pool.queue
            ~max:(max 1 pool.conf.Config.steal_sweep)
        with
        | [] ->
          Ring.emit w.tr Ev.Steal_abort 0;
          None
        | head :: rest ->
          (* One batched depart retires the whole grab's units. *)
          Nowa_sync.Snzi.depart_n pool.work ~leaf:0 (1 + List.length rest);
          Ring.emit w.tr Ev.Steal_commit 0;
          w.stash <- rest;
          Some head
      end

  let wait_for pool w fr =
    w.m.suspensions <- w.m.suspensions + 1;
    Ring.emit w.tr Ev.Suspend 0;
    let bo = Nowa_util.Backoff.make () in
    while Atomic.get fr.pending > 0 do
      match poll pool w with
      | Some t ->
        Nowa_util.Backoff.reset bo;
        run_task w t
      | None -> Nowa_util.Backoff.once bo
    done

  (* Pre-park re-check: the stash is owner-local and the central pop is
     mutex-synchronised, so this one probe is the whole-system sweep —
     the queue is the only place work can hide. *)
  let sweep_all pool w =
    match w.stash with
    | t :: rest ->
      w.stash <- rest;
      Some t
    | [] -> (
      (* No query-skip here: this probe is the park protocol's lost-wakeup
         guard, so it must hit the queue itself. *)
      match Nowa_deque.Central_queue.pop pool.queue with
      | Some _ as r ->
        Nowa_sync.Snzi.depart pool.work ~leaf:0;
        r
      | None -> None)

  let park_round pool w =
    Health.Beats.beat w.hb w.id;
    ignore (Sleepers.announce pool.sleepers ~worker:w.id);
    let cancel () =
      if not (Sleepers.cancel pool.sleepers ~worker:w.id) then
        w.m.wake_retries <- w.m.wake_retries + 1
    in
    match sweep_all pool w with
    | Some _ as r ->
      cancel ();
      r
    | None ->
      if Atomic.get pool.finished then cancel ()
      else begin
        w.m.parks <- w.m.parks + 1;
        Ring.emit w.tr Ev.Park 0;
        let t0 = Nowa_util.Clock.now_ns () in
        Sleepers.park pool.sleepers ~worker:w.id;
        Health.Beats.beat w.hb w.id;
        w.m.parked_ns <- w.m.parked_ns + (Nowa_util.Clock.now_ns () - t0);
        Ring.emit w.tr Ev.Unpark 0
      end;
      None

  (* Three-phase elastic idle path (spin, yield, park), as in the
     work-stealing engines. *)
  let worker_loop pool w =
    let bo = Nowa_util.Backoff.make () in
    let spin_budget, can_park =
      match pool.conf.Config.idle_policy with
      | Config.Spin -> (max_int, false)
      | Config.Yield_after n -> (max 1 n, false)
      | Config.Park_after n -> (max 1 n, true)
    in
    let can_park = can_park && w.id < Sleepers.mask_bits in
    let rounds = ref 0 in
    let rec go () =
      if Atomic.get pool.finished then ()
      else
        match poll pool w with
        | Some t ->
          Nowa_util.Backoff.reset bo;
          rounds := 0;
          run_task w t;
          go ()
        | None ->
          incr rounds;
          if !rounds <= spin_budget then begin
            Nowa_util.Backoff.once bo;
            go ()
          end
          else if (not can_park) || !rounds <= 2 * spin_budget then begin
            Unix.sleepf 0.0;
            go ()
          end
          else begin
            (match park_round pool w with
            | Some t ->
              Nowa_util.Backoff.reset bo;
              run_task w t
            | None -> ());
            Nowa_util.Backoff.reset bo;
            rounds := 0;
            go ()
          end
    in
    go ()

  let last_metrics_ref = ref None
  let last_metrics () = !last_metrics_ref
  let last_trace_ref = ref None
  let last_trace () = !last_trace_ref

  let run ?conf main =
    let conf = match conf with Some c -> c | None -> Config.default () in
    let nw = max 1 conf.Config.workers in
    let conf = { conf with Config.workers = nw } in
    Runtime_guard.enter name;
    Runtime_log.Log.debug (fun m -> m "%s: starting %d workers" name nw);
    let trace =
      if conf.Config.trace_capacity > 0 then
        Some
          (Nowa_trace.Trace.create ~workers:nw
             ~capacity:conf.Config.trace_capacity ())
      else None
    in
    let ring_for i =
      match trace with Some t -> Nowa_trace.Trace.worker t i | None -> Ring.disabled
    in
    let hb =
      if conf.Config.heartbeats then Health.Beats.create ~workers:nw
      else Health.Beats.disabled
    in
    let pool =
      {
        conf;
        queue = Nowa_deque.Central_queue.create ();
        work = Nowa_sync.Snzi.create ~leaves:1 ();
        finished = Atomic.make false;
        sleepers = Sleepers.create ~workers:nw;
        workers =
          Array.init nw (fun i ->
              {
                id = i;
                m = Metrics.make_worker i;
                tr = ring_for i;
                hb;
                depth = 0;
                stash = [];
              });
      }
    in
    Metrics.publish (Array.map (fun w -> w.m) pool.workers);
    (match trace with
    | Some t ->
      Health.Recorder.register ~name:"trace" (fun ~dir ->
          let evs, _dropped = Nowa_trace.Trace.freeze ~window:4096 t in
          Nowa_trace.Perfetto.write_events_file
            (Filename.concat dir "trace.json")
            evs)
    | None -> Health.Recorder.unregister ~name:"trace");
    if conf.Config.watchdog_interval_ms > 0 then
      Runtime_guard.start_monitor (fun () ->
          let probe =
            {
              Health.engine = name;
              workers = nw;
              beat_of = (fun i -> Health.Beats.read hb i);
              announced = (fun i -> Sleepers.announced pool.sleepers ~worker:i);
              waiting = (fun i -> Sleepers.waiting pool.sleepers ~worker:i);
              wake_stamp =
                (fun i -> Sleepers.wake_stamp pool.sleepers ~worker:i);
              ready = (fun () -> Nowa_deque.Central_queue.size pool.queue);
              sleepers = (fun () -> Sleepers.sleepers pool.sleepers);
              draining = (fun () -> Atomic.get pool.finished);
            }
          in
          let h =
            Health.Monitor.spawn
              ~interval_ms:conf.Config.watchdog_interval_ms
              ~stall_scans:conf.Config.watchdog_stall_scans
              ~dump:conf.Config.watchdog_dump probe
          in
          fun () -> Health.Monitor.stop h);
    let result = ref None in
    let root =
      Task
        (fun () ->
          (match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e));
          Atomic.set pool.finished true;
          Sleepers.wake_all pool.sleepers)
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init (nw - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () ->
              Domain.DLS.set current (Some (pool, w));
              Nowa_trace.Current.set ~worker:w.id w.tr;
              Fun.protect
                ~finally:(fun () ->
                  Domain.DLS.set current None;
                  Nowa_trace.Current.clear ())
                (fun () -> worker_loop pool w)))
    in
    let w0 = pool.workers.(0) in
    Domain.DLS.set current (Some (pool, w0));
    Nowa_trace.Current.set ~worker:w0.id w0.tr;
    let teardown () =
      Domain.DLS.set current None;
      Nowa_trace.Current.clear ();
      Atomic.set pool.finished true;
      Sleepers.wake_all pool.sleepers;
      List.iter Domain.join domains;
      Runtime_guard.exit ()
    in
    Fun.protect ~finally:teardown (fun () ->
        run_task w0 root;
        worker_loop pool w0;
        let elapsed = Unix.gettimeofday () -. t0 in
        last_trace_ref := trace;
        if conf.Config.collect_metrics then
          last_metrics_ref :=
            Some
              (Metrics.make
                 (Array.map (fun w -> w.m) pool.workers)
                 ~elapsed_s:elapsed));
    match !result with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false

  let scope_finish fr =
    let pool, w = get_current () in
    if Atomic.get fr.pending > 0 then wait_for pool w fr
    else w.m.fast_syncs <- w.m.fast_syncs + 1;
    match Atomic.exchange fr.exn_slot None with
    | Some e -> raise e
    | None -> ()

  let scope f =
    ignore (get_current ());
    let fr = { pending = Atomic.make 0; exn_slot = Atomic.make None } in
    match f fr with
    | v ->
      scope_finish fr;
      v
    | exception e ->
      (try scope_finish fr with _ -> ());
      raise e

  let sync = scope_finish

  let spawn fr thunk =
    let pool, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    let p = Promise.make () in
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with
      | v -> Promise.fill p v
      | exception e ->
        Promise.fill_exn p e;
        note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    (* Arrive before push: a task in the queue always has a visible unit
       behind it, so a zero indicator proves the queue is empty. *)
    Nowa_sync.Snzi.arrive pool.work ~leaf:0;
    Nowa_deque.Central_queue.push pool.queue (Task body);
    (* One load when nobody sleeps; CAS + signal only for a sleeper. *)
    if Sleepers.wake_one pool.sleepers then w.m.wakeups <- w.m.wakeups + 1;
    p

  let spawn_unit fr thunk =
    let pool, w = get_current () in
    w.m.spawns <- w.m.spawns + 1;
    Health.Beats.beat w.hb w.id;
    Ring.emit w.tr Ev.Spawn 0;
    ignore (Atomic.fetch_and_add fr.pending 1);
    let body () =
      (match thunk () with () -> () | exception e -> note_exn fr e);
      ignore (Atomic.fetch_and_add fr.pending (-1))
    in
    Nowa_sync.Snzi.arrive pool.work ~leaf:0;
    Nowa_deque.Central_queue.push pool.queue (Task body);
    if Sleepers.wake_one pool.sleepers then w.m.wakeups <- w.m.wakeups + 1

  let get p = Promise.get ~runtime:name p
end
