let active : string option Atomic.t = Atomic.make None

(* The stop thunk of the health-monitor thread attached to the current
   run.  Only the guard holder touches this between its [enter]/[exit]
   bracket, so a plain ref is race-free: the CAS on [active] is the
   synchronisation edge.  Keeping the slot here (rather than in each
   engine) is what makes "exactly one monitor per process, always joined
   at shutdown" a structural property instead of a per-engine promise —
   back-to-back pools each start and join their own monitor, a second
   start within one run is refused, and [exit] cannot leak the thread
   because it is the one place the stop thunk lives. *)
let monitor_stop : (unit -> unit) option ref = ref None

let enter name =
  if not (Atomic.compare_and_set active None (Some name)) then
    failwith
      (Printf.sprintf
         "%s.run: another runtime is already active in this process (runs \
          cannot nest or overlap)"
         name)

(** Attach the run's monitor thread.  [start ()] must launch the thread
    and return its stop-and-join thunk.  Called between {!enter} and
    {!exit} by the engine that owns the run; if a monitor is already
    attached the call is a no-op, so at most one monitor ever runs. *)
let start_monitor start =
  match !monitor_stop with
  | Some _ -> ()
  | None -> monitor_stop := Some (start ())

let monitor_attached () = Option.is_some !monitor_stop

let exit () =
  (match !monitor_stop with
  | Some stop ->
    monitor_stop := None;
    (try stop () with _ -> ())
  | None -> ());
  Atomic.set active None
