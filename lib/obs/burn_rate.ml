(** Multi-window SLO burn-rate evaluation over histogram snapshots.

    A latency SLO is "fraction of requests slower than [slo_ns] stays
    below [budget]" (e.g. no more than 0.1% of requests over 50ms).  The
    classic single-threshold alert is either too twitchy (one bad second
    pages) or too slow (a slow leak never pages), so SRE practice pairs
    windows: an alert fires only when the error budget is burning at
    [factor]x the sustainable rate over BOTH a long window and a short
    companion window — the long window supplies confidence, the short
    one makes the alert reset quickly once the problem stops.

    The evaluator is fed by whoever owns the scan cadence (the runtime
    watchdog): each [sample] call snapshots the histogram and appends a
    cumulative (total, over-SLO) pair to a bounded time-indexed series;
    [judge] then computes, for every configured window pair, the burn
    rate over the trailing window as

      burn = (delta_bad / delta_total) / budget

    so burn = 1.0 means "exactly consuming the budget", and flags the
    pair when both windows exceed [factor].  Time is passed in
    explicitly (nanoseconds) so tests can drive the clock.

    Over-SLO counting is bucketed: every histogram bucket whose lower
    bound is at or above [slo_ns] counts as bad in full, the bucket
    straddling the threshold is apportioned by the threshold's position
    inside the (power-of-two) bucket.  That makes the estimate exact for
    SLOs on bucket boundaries and at worst one bucket coarse elsewhere —
    fine for a watchdog verdict. *)

type window = {
  long_s : float;  (** confidence window, seconds *)
  short_s : float;  (** fast-reset companion window, seconds *)
  factor : float;  (** burn-rate multiple that fires the pair *)
}

(** Google-SRE-shaped defaults scaled down to bench-length runs: a
    fast burn (14.4x over 5s, confirmed over 1s) and a slow burn (6x
    over 30s / 5s). *)
let default_windows =
  [| { long_s = 5.0; short_s = 1.0; factor = 14.4 };
     { long_s = 30.0; short_s = 5.0; factor = 6.0 } |]

type point = { at_ns : int; total : int; bad : float }

type t = {
  slo_ns : int;
  budget : float;
  windows : window array;
  mutable points : point list;  (* newest first, pruned past max window *)
}

type breach = {
  window : window;
  long_burn : float;
  short_burn : float;
}

let create ?(windows = default_windows) ~slo_ns ~budget () =
  if budget <= 0.0 then invalid_arg "Burn_rate.create: budget must be > 0";
  { slo_ns; budget; windows; points = [] }

let slo_ns t = t.slo_ns
let budget t = t.budget

(* Observations at or above [slo_ns] in a snapshot, with the straddling
   bucket apportioned linearly inside its [lo, le] span. *)
let over_slo (s : Histogram.snapshot) ~slo_ns =
  let slo = float_of_int slo_ns in
  let bad = ref 0.0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let le = s.Histogram.le.(i) in
        let lo = if i = 0 then 0.0 else s.Histogram.le.(i - 1) +. 1.0 in
        if lo >= slo then bad := !bad +. float_of_int c
        else if le >= slo then begin
          let frac = (le -. slo +. 1.0) /. (le -. lo +. 1.0) in
          bad := !bad +. (float_of_int c *. frac)
        end
      end)
    s.Histogram.counts;
  !bad

let max_window_s t =
  Array.fold_left (fun acc w -> Float.max acc w.long_s) 0.0 t.windows

(** Record one cumulative sample of [hist] taken at [now_ns]. *)
let sample t hist ~now_ns =
  let s = Histogram.snapshot hist in
  let p = { at_ns = now_ns; total = s.Histogram.count; bad = over_slo s ~slo_ns:t.slo_ns } in
  let horizon = now_ns - int_of_float ((max_window_s t +. 1.0) *. 1e9) in
  t.points <- p :: List.filter (fun q -> q.at_ns >= horizon) t.points

(* Burn rate over the trailing [win_s] seconds ending at the newest
   sample; 0.0 when the window has no traffic or too little history. *)
let burn_over t ~win_s =
  match t.points with
  | [] -> 0.0
  | newest :: _ -> (
    let cutoff = newest.at_ns - int_of_float (win_s *. 1e9) in
    (* Oldest sample still inside the window's reach: the first point at
       or before the cutoff anchors the delta; lacking one, the oldest
       sample we have does (partial window: better than silence). *)
    let rec anchor best = function
      | [] -> best
      | p :: rest -> if p.at_ns <= cutoff then p else anchor p rest
    in
    match t.points with
    | [] | [ _ ] -> 0.0
    | _ :: older ->
      let a = anchor (List.hd older) older in
      let dt = newest.total - a.total in
      if dt <= 0 then 0.0
      else
        let db = newest.bad -. a.bad in
        db /. float_of_int dt /. t.budget)

(** Evaluate every window pair against the recorded series; returns the
    pairs currently burning past their factor (empty = healthy). *)
let judge t =
  Array.to_list t.windows
  |> List.filter_map (fun w ->
         let long_burn = burn_over t ~win_s:w.long_s in
         let short_burn = burn_over t ~win_s:w.short_s in
         if long_burn > w.factor && short_burn > w.factor then
           Some { window = w; long_burn; short_burn }
         else None)

(** [sample] then [judge] in one step — the watchdog's per-scan call. *)
let observe t hist ~now_ns =
  sample t hist ~now_ns;
  judge t
