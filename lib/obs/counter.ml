(** Monotonic counter, sharded across domains.

    Each shard is a padded atomic written with an uncontended
    [fetch_and_add] by whichever domain hashes to it, so an increment is
    one lock-free RMW on a cache line no other domain is usually
    touching — zero allocation, wait-free.  Reads ([value]) sum the
    shards with plain relaxed loads: a snapshot taken while workers are
    running may miss the last few nanoseconds of increments, which is
    exactly the staleness a monitoring scrape tolerates (each shard value
    is itself monotone, so sums never go backwards by more than the
    in-flight window). *)

type t = {
  name : string;
  help : string;
  shards : int Atomic.t array;
}

let shard_count = 16 (* power of two *)
let shard_mask = shard_count - 1

(* Domains are striped over the shards by id.  Two live domains can
   share a shard; the atomic RMW keeps that correct, merely contended. *)
let[@inline] slot () = (Domain.self () :> int) land shard_mask

let create ?(help = "") name =
  {
    name;
    help;
    shards = Array.init shard_count (fun _ -> Nowa_util.Padding.atomic 0);
  }

let name t = t.name
let help t = t.help

let[@inline] add t n = ignore (Atomic.fetch_and_add t.shards.(slot ()) n)
let[@inline] incr t = add t 1

let value t = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 t.shards

let reset t = Array.iter (fun s -> Atomic.set s 0) t.shards
