(** Log2-bucketed histogram with zero-allocation observe.

    Bucket 0 counts observations ≤ 0; bucket [i ≥ 1] counts values in
    [2^(i-1), 2^i), i.e. its inclusive upper bound is [2^i - 1].  Spin
    counts and nanosecond latencies both live comfortably in 48 buckets
    (up to ~1.6 days in ns).

    Like {!Counter}, state is sharded by domain id: each shard owns its
    own bucket array and running sum, written with uncontended atomic
    RMWs, so [observe] never allocates and never takes a lock.  Snapshot
    reads sum the shards relaxed — good enough for monitoring, see
    counter.ml. *)

let buckets = 48

type shard = { counts : int Atomic.t array; sum : int Atomic.t }

type t = { name : string; help : string; shards : shard array }

let shard_count = 16
let shard_mask = shard_count - 1

let[@inline] slot () = (Domain.self () :> int) land shard_mask

let create ?(help = "") name =
  let mk_shard _ =
    {
      counts = Array.init buckets (fun _ -> Atomic.make 0);
      sum = Nowa_util.Padding.atomic 0;
    }
  in
  { name; help; shards = Array.init shard_count mk_shard }

let name t = t.name
let help t = t.help

(* Index of the highest set bit + 1, capped to the last bucket. *)
let[@inline] bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    if !b >= buckets then buckets - 1 else !b
  end

let[@inline] observe t v =
  let s = t.shards.(slot ()) in
  ignore (Atomic.fetch_and_add s.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add s.sum v)

(* Inclusive upper bound of bucket [i], as a float for exposition. *)
let upper_bound i = if i = 0 then 0.0 else (2.0 ** float_of_int i) -. 1.0

type snapshot = {
  le : float array;  (** inclusive upper bound per bucket *)
  counts : int array;  (** per-bucket (non-cumulative) counts *)
  sum : float;
  count : int;
}

let snapshot t =
  let counts = Array.make buckets 0 in
  let sum = ref 0 in
  Array.iter
    (fun (s : shard) ->
      for i = 0 to buckets - 1 do
        counts.(i) <- counts.(i) + Atomic.get s.counts.(i)
      done;
      sum := !sum + Atomic.get s.sum)
    t.shards;
  let count = Array.fold_left ( + ) 0 counts in
  {
    le = Array.init buckets upper_bound;
    counts;
    sum = float_of_int !sum;
    count;
  }

let count t = (snapshot t).count
let sum t = (snapshot t).sum

(* Upper bound of the bucket containing the q-quantile (q in [0,1]).
   Coarse by construction (factor-of-2 resolution), which is the right
   trade for a wait-free hot path. *)
let percentile t q =
  let s = snapshot t in
  if s.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Float.max 1.0 (Float.round (q *. float_of_int s.count))
      |> int_of_float
    in
    let acc = ref 0 and i = ref 0 and res = ref (upper_bound (buckets - 1)) in
    (try
       while !i < buckets do
         acc := !acc + s.counts.(!i);
         if !acc >= rank then begin
           res := upper_bound !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !res
  end

(* Interpolated q-quantile: same rank walk as [percentile], then linear
   interpolation across the bucket's value range assuming in-bucket
   uniformity.  Tail quantiles (p99, p999) stop being quantised to
   power-of-two edges; the error is bounded by the bucket width either
   way.  The hot path is untouched — this only reads a snapshot. *)
let quantile t q =
  let s = snapshot t in
  if s.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Float.max 1.0 (Float.round (q *. float_of_int s.count))
      |> int_of_float
    in
    let before = ref 0 and i = ref 0 in
    while !i < buckets - 1 && !before + s.counts.(!i) < rank do
      before := !before + s.counts.(!i);
      incr i
    done;
    if !i = 0 then 0.0
    else begin
      let lo = 2.0 ** float_of_int (!i - 1) and hi = upper_bound !i in
      let inside = float_of_int (rank - !before) -. 0.5 in
      lo +. ((hi -. lo) *. (inside /. float_of_int s.counts.(!i)))
    end
  end

let reset t =
  Array.iter
    (fun (s : shard) ->
      Array.iter (fun c -> Atomic.set c 0) s.counts;
      Atomic.set s.sum 0)
    t.shards
