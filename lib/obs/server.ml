(** Line-oriented TCP exposition endpoint.

    Speaks just enough HTTP for [curl host:port/metrics] and a
    Prometheus scraper: read one request line, answer with an HTTP/1.0
    response, close.  The accept loop runs on its own domain and polls
    with a short [select] timeout so [stop] converges quickly.

    Three routes:
    - [/healthz]: liveness verdict from the optional [healthz] callback
      — [200 ok] when healthy, [503] with the reason otherwise.  With no
      callback installed the endpoint answers [200 ok] (a process that
      can serve the socket is at least alive).
    - [/statusz]: human-oriented status page from the optional [statusz]
      callback (the runtime watchdog installs its per-worker verdict
      table here).
    - anything else: the Prometheus text exposition of the registry, so
      existing scrapers keep working unrouted. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  dom : unit Domain.t;
}

type handlers = {
  healthz : (unit -> bool * string) option;
  statusz : (unit -> string) option;
}

(* "HOST:PORT", ":PORT" or bare "PORT"; host defaults to 127.0.0.1. *)
let parse_addr s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> ("", s)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt port_s with
  | Some p when p >= 0 && p <= 65535 -> (
    match Unix.inet_addr_of_string host with
    | ip -> Ok (ip, p)
    | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "cannot resolve host %S" host)
      | h -> Ok (h.Unix.h_addr_list.(0), p)))
  | _ ->
    Error
      (Printf.sprintf "malformed metrics address %S (expected [HOST:]PORT)" s)

(* Path of the request line ("GET /statusz HTTP/1.1" -> "/statusz");
   defaults to "/" on anything unparseable. *)
let request_path buf n =
  if n <= 0 then "/"
  else begin
    let line =
      match Bytes.index_opt buf '\r' with
      | Some i when i < n -> Bytes.sub_string buf 0 i
      | _ -> Bytes.sub_string buf 0 n
    in
    match String.split_on_char ' ' line with
    | _meth :: target :: _ ->
      let target =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      if target = "" then "/" else target
    | _ -> "/"
  end

let respond registry handlers client =
  let buf = Bytes.create 1024 in
  let n = try Unix.read client buf 0 1024 with Unix.Unix_error _ -> 0 in
  let status, body =
    match request_path buf n with
    | "/healthz" -> (
      match handlers.healthz with
      | None -> ("200 OK", "ok\n")
      | Some f -> (
        match f () with
        | true, msg -> ("200 OK", if msg = "" then "ok\n" else msg ^ "\n")
        | false, msg -> ("503 Service Unavailable", msg ^ "\n")
        | exception _ -> ("500 Internal Server Error", "healthz callback raised\n")))
    | "/statusz" -> (
      match handlers.statusz with
      | None -> ("200 OK", "no status source installed\n")
      | Some f -> (
        match f () with
        | s -> ("200 OK", s)
        | exception _ -> ("500 Internal Server Error", "statusz callback raised\n")))
    | _ -> ("200 OK", Expose.to_prometheus ?registry ())
  in
  let resp =
    Printf.sprintf
      "HTTP/1.0 %s\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       \r\n\
       %s"
      status (String.length body) body
  in
  let b = Bytes.of_string resp in
  let n = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write client b !off (n - !off)
     done
   with Unix.Unix_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let accept_loop registry handlers sock stop_flag () =
  while not (Atomic.get stop_flag) do
    match Unix.select [ sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept sock with
      | client, _ -> respond registry handlers client
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ ->
      (* Listening socket closed by [stop]. *)
      Atomic.set stop_flag true
  done

let start ?registry ?healthz ?statusz ~addr () =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok (ip, port) -> (
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    match Unix.bind sock (Unix.ADDR_INET (ip, port)) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" addr (Unix.error_message e))
    | () ->
      Unix.listen sock 16;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_flag = Atomic.make false in
      let handlers = { healthz; statusz } in
      let dom = Domain.spawn (accept_loop registry handlers sock stop_flag) in
      Ok { sock; port; stop_flag; dom })

let port t = t.port

let stop t =
  Atomic.set t.stop_flag true;
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Domain.join t.dom
