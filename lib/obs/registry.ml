(** Named-metric registry.

    Metrics register once (at module init or engine start) and are then
    incremented lock-free from any domain; [snapshot] walks the registry
    and reads every metric relaxed.  Besides owned metrics, a registry
    accepts {e collectors}: callbacks that produce samples on demand,
    which lets the runtime expose counters it already maintains in its
    own per-worker records (see [Nowa_runtime.Metrics.publish]) without
    double-counting them into obs-owned cells.

    Registration takes a mutex (cold path); reads and increments never
    do. *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of Histogram.snapshot

type sample = { name : string; help : string; value : value }

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type t = {
  lock : Mutex.t;
  mutable metrics : metric list;  (* newest first *)
  mutable collectors : (unit -> sample list) list;
}

let create () = { lock = Mutex.create (); metrics = []; collectors = [] }

let default = create ()

let metric_name = function
  | M_counter c -> Counter.name c
  | M_gauge g -> Gauge.name g
  | M_histogram h -> Histogram.name h

let check_fresh t name =
  if List.exists (fun m -> String.equal (metric_name m) name) t.metrics then
    invalid_arg (Printf.sprintf "Obs.Registry: duplicate metric %S" name)

let register_metric t m =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      check_fresh t (metric_name m);
      t.metrics <- m :: t.metrics)

let counter ?(registry = default) ?help name =
  let c = Counter.create ?help name in
  register_metric registry (M_counter c);
  c

let gauge ?(registry = default) ?help name =
  let g = Gauge.create ?help name in
  register_metric registry (M_gauge g);
  g

let histogram ?(registry = default) ?help name =
  let h = Histogram.create ?help name in
  register_metric registry (M_histogram h);
  h

let register_collector ?(registry = default) f =
  Mutex.lock registry.lock;
  registry.collectors <- f :: registry.collectors;
  Mutex.unlock registry.lock

let sample_of_metric = function
  | M_counter c ->
    {
      name = Counter.name c;
      help = Counter.help c;
      value = Counter (float_of_int (Counter.value c));
    }
  | M_gauge g ->
    {
      name = Gauge.name g;
      help = Gauge.help g;
      value = Gauge (float_of_int (Gauge.value g));
    }
  | M_histogram h ->
    {
      name = Histogram.name h;
      help = Histogram.help h;
      value = Histogram (Histogram.snapshot h);
    }

(* Stable (name-sorted) so that exposition output is deterministic
   regardless of registration order. *)
let snapshot ?(registry = default) () =
  let metrics, collectors =
    Mutex.lock registry.lock;
    let r = (registry.metrics, registry.collectors) in
    Mutex.unlock registry.lock;
    r
  in
  let owned = List.map sample_of_metric metrics in
  let collected = List.concat_map (fun f -> f ()) collectors in
  List.sort
    (fun a b -> String.compare a.name b.name)
    (List.rev_append owned collected)
