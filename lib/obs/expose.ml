(** Prometheus text-format exposition (format version 0.0.4).

    Output is deterministic for a given snapshot: samples arrive
    name-sorted from {!Registry.snapshot}, numbers with integral values
    are printed without a fractional part, and histogram buckets are
    emitted cumulatively up to the last non-empty bucket followed by the
    conventional [+Inf] bucket. *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Labelled series ("name{pool=\"x\"}") share a metric family with
   their unlabelled aggregate: HELP/TYPE must name the bare family,
   once, ahead of all its samples — [last] carries the family the meta
   was last emitted for (samples arrive name-sorted, so a family's
   samples are adjacent). *)
let family name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let add_meta buf ~last name help kind =
  let fam = family name in
  if !last <> fam then begin
    last := fam;
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
  end

let add_sample buf ~last (s : Registry.sample) =
  match s.value with
  | Registry.Counter v ->
    add_meta buf ~last s.name s.help "counter";
    Buffer.add_string buf (Printf.sprintf "%s %s\n" s.name (fnum v))
  | Registry.Gauge v ->
    add_meta buf ~last s.name s.help "gauge";
    Buffer.add_string buf (Printf.sprintf "%s %s\n" s.name (fnum v))
  | Registry.Histogram h ->
    add_meta buf ~last s.name s.help "histogram";
    let last_nonzero = ref 0 in
    Array.iteri (fun i c -> if c > 0 then last_nonzero := i) h.counts;
    let cum = ref 0 in
    for i = 0 to !last_nonzero do
      cum := !cum + h.counts.(i);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" s.name (fnum h.le.(i))
           !cum)
    done;
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" s.name h.count);
    Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" s.name (fnum h.sum));
    Buffer.add_string buf (Printf.sprintf "%s_count %d\n" s.name h.count)

let to_prometheus ?registry () =
  let buf = Buffer.create 4096 in
  let last = ref "" in
  List.iter (add_sample buf ~last) (Registry.snapshot ?registry ());
  Buffer.contents buf

let write_channel ?registry oc = output_string oc (to_prometheus ?registry ())

let write_file ?registry file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel ?registry oc)
