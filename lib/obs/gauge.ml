(** Instantaneous value (can go up and down): one padded atomic int.
    Gauges are set/adjusted from any domain and read relaxed by
    monitoring snapshots. *)

type t = { name : string; help : string; cell : int Atomic.t }

let create ?(help = "") name =
  { name; help; cell = Nowa_util.Padding.atomic 0 }

let name t = t.name
let help t = t.help

let set t v = Atomic.set t.cell v
let[@inline] add t n = ignore (Atomic.fetch_and_add t.cell n)
let[@inline] incr t = add t 1
let[@inline] decr t = add t (-1)
let value t = Atomic.get t.cell
