(** Background sampling domain: snapshots a registry every
    [interval_s] seconds into a bounded ring of time-stamped rows, and
    folds per-interval counter deltas into online {!Nowa_util.Stats.Welford}
    accumulators so that mean/σ of rates (steals/s, spawns/s, …) are
    available without retaining the full series.

    The sampler takes its own mutex only around ring/rate mutation (the
    scrape path reads under the same mutex); the metrics themselves are
    read relaxed, never blocking a worker. *)

type row = { ts_ns : int; samples : Registry.sample list }

type t = {
  registry : Registry.t;
  interval_s : float;
  lock : Mutex.t;
  rows : row option array;  (* ring, [next] is the oldest slot *)
  mutable next : int;
  mutable total : int;
  rates : (string, Nowa_util.Stats.Welford.t) Hashtbl.t;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let scalar (s : Registry.sample) =
  match s.value with
  | Registry.Counter v -> Some v
  | Registry.Gauge _ | Registry.Histogram _ -> None

let record t samples =
  let ts_ns = Nowa_util.Clock.now_ns () in
  Mutex.lock t.lock;
  t.rows.(t.next) <- Some { ts_ns; samples };
  t.next <- (t.next + 1) mod Array.length t.rows;
  t.total <- t.total + 1;
  Mutex.unlock t.lock

let fold_rates t ~prev samples =
  match prev with
  | None -> ()
  | Some prev_samples ->
    Mutex.lock t.lock;
    List.iter
      (fun (s : Registry.sample) ->
        match scalar s with
        | None -> ()
        | Some v -> (
          match
            List.find_opt
              (fun (p : Registry.sample) -> String.equal p.name s.name)
              prev_samples
          with
          | None -> ()
          | Some p -> (
            match scalar p with
            | None -> ()
            | Some pv ->
              let w =
                match Hashtbl.find_opt t.rates s.name with
                | Some w -> w
                | None ->
                  let w = Nowa_util.Stats.Welford.create () in
                  Hashtbl.add t.rates s.name w;
                  w
              in
              Nowa_util.Stats.Welford.add w ((v -. pv) /. t.interval_s))))
      samples;
    Mutex.unlock t.lock

let loop t () =
  let prev = ref None in
  while not (Atomic.get t.stop_flag) do
    (* Sleep in small slices so [stop] is honoured promptly even with a
       multi-second interval. *)
    let deadline = Unix.gettimeofday () +. t.interval_s in
    while
      (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline
    do
      Unix.sleepf (Float.min 0.01 t.interval_s)
    done;
    if not (Atomic.get t.stop_flag) then begin
      let samples = Registry.snapshot ~registry:t.registry () in
      record t samples;
      fold_rates t ~prev:!prev samples;
      prev := Some samples
    end
  done

let start ?(registry = Registry.default) ?(capacity = 512) ~interval_s () =
  if interval_s <= 0.0 then invalid_arg "Obs.Sampler: interval_s must be > 0";
  if capacity <= 0 then invalid_arg "Obs.Sampler: capacity must be > 0";
  let t =
    {
      registry;
      interval_s;
      lock = Mutex.create ();
      rows = Array.make capacity None;
      next = 0;
      total = 0;
      rates = Hashtbl.create 32;
      stop_flag = Atomic.make false;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (loop t));
  t

let stop t =
  Atomic.set t.stop_flag true;
  match t.dom with
  | None -> ()
  | Some d ->
    Domain.join d;
    t.dom <- None

(** Rows currently retained, oldest first. *)
let samples t =
  Mutex.lock t.lock;
  let n = Array.length t.rows in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.rows.((t.next + i) mod n) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  Mutex.unlock t.lock;
  !out

(** Total ticks taken (including rows that have since been overwritten). *)
let ticks t =
  Mutex.lock t.lock;
  let v = t.total in
  Mutex.unlock t.lock;
  v

(** Per-counter rate statistics accumulated so far, name-sorted.  Each
    entry is a snapshot copy of the Welford state, safe to read after the
    sampler keeps running. *)
let rates t =
  Mutex.lock t.lock;
  let l =
    Hashtbl.fold
      (fun name w acc -> (name, Nowa_util.Stats.Welford.copy w) :: acc)
      t.rates []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l
