module Cell = Mcheck.Cell

let check = Mcheck.check

(* -- work-stealing deques --------------------------------------------- *)

(* Consumption log shared by a spec's threads: plain refs are fine
   because each slot has a single writer. *)
type consumption = { mutable taken : int list }

let conservation ~pushes ~logs ~size_at_end () =
  let all = List.concat_map (fun l -> l.taken) logs in
  let sorted = List.sort compare all in
  let distinct = List.sort_uniq compare all in
  List.length sorted = List.length distinct
  && List.for_all (fun v -> v >= 1 && v <= pushes) all
  && List.length all + size_at_end () = pushes

let chase_lev_spec ~pushes ~pops ~thieves () =
  let top = Cell.make 0 in
  let bottom = Cell.make 0 in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let push v =
    let b = Cell.read bottom in
    Cell.write slots.(b) v;
    Cell.write bottom (b + 1)
  in
  let pop () =
    let b = Cell.read bottom - 1 in
    Cell.write bottom b;
    let t = Cell.read top in
    if b < t then Cell.write bottom t (* empty *)
    else begin
      let v = Cell.read slots.(b) in
      if b > t then owner_log.taken <- v :: owner_log.taken
      else begin
        (* Last element: race thieves for it. *)
        if Cell.cas top t (t + 1) then owner_log.taken <- v :: owner_log.taken;
        Cell.write bottom (t + 1)
      end
    end
  in
  let steal log () =
    let t = Cell.read top in
    let b = Cell.read bottom in
    if t < b then begin
      let v = Cell.read slots.(t) in
      if Cell.cas top t (t + 1) then log.taken <- v :: log.taken
    end
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek bottom - Cell.peek top))
  in
  (threads, invariant)

let the_queue_spec ~pushes ~pops ~thieves () =
  let head = Cell.make 0 in
  let tail = Cell.make 0 in
  let lock = Cell.make false in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let rec acquire () = if not (Cell.cas lock false true) then acquire () in
  let release () = Cell.write lock false in
  let push v =
    let t = Cell.read tail in
    Cell.write slots.(t) v;
    Cell.write tail (t + 1)
  in
  let pop () =
    let t = Cell.read tail - 1 in
    Cell.write tail t;
    let h = Cell.read head in
    if h > t then begin
      (* Conflict with a thief: arbitrate under the lock. *)
      Cell.write tail (t + 1);
      acquire ();
      let t = Cell.read tail - 1 in
      Cell.write tail t;
      let h = Cell.read head in
      if h > t then Cell.write tail h
      else begin
        let v = Cell.read slots.(t) in
        owner_log.taken <- v :: owner_log.taken
      end;
      release ()
    end
    else begin
      let v = Cell.read slots.(t) in
      owner_log.taken <- v :: owner_log.taken
    end
  in
  let steal log () =
    acquire ();
    let h = Cell.read head in
    Cell.write head (h + 1);
    let t = Cell.read tail in
    if h + 1 > t then Cell.write head h
    else begin
      let v = Cell.read slots.(h) in
      log.taken <- v :: log.taken
    end;
    release ()
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek tail - Cell.peek head))
  in
  (threads, invariant)

(* -- strand counters ---------------------------------------------------
   One frame, one spawn: the worker pushes the continuation, runs the
   child inline and pops; a thief races for the continuation.  Whichever
   control flow ends up holding the continuation is the main path and
   reaches the explicit sync; the other performs the implicit sync
   (Figure 5 of the paper).  [passes] counts executions of the code past
   the sync point; correctness = the sync is passed exactly once, and
   never while the child is still running. *)

type frame_obs = { mutable passes : int }

let counter_scenario ~note_steal ~note_resume ~main_sync ~joiner () =
  let avail = Cell.make false in
  let child_done = Cell.make false in
  let obs = { passes = 0 } in
  let pass () =
    check (Cell.peek child_done) "passed the sync point while the child runs";
    obs.passes <- obs.passes + 1
  in
  let worker () =
    Cell.write avail true (* pushBottom of the continuation *);
    Cell.write child_done true (* the spawned child runs and returns *);
    if Cell.cas avail true false then main_sync ~pass () (* not stolen *)
    else joiner ~pass () (* stolen: implicit sync *)
  in
  let thief () =
    if Cell.cas avail true false then begin
      note_steal ();
      note_resume ();
      main_sync ~pass ()
    end
  in
  ([ worker; thief ], fun () -> obs.passes = 1)

(* The hazardous protocol of Figure 6: counting is per-operation atomic,
   but the sync point checks the counter BEFORE publishing the
   suspension, so a joiner can decrement to zero in between and the
   wake-up is lost (the sync point is never passed — the "outcome of the
   program execution is undefined" of Section III-C). *)
let naive_counter_spec ~children () =
  assert (children = 1);
  let count = Cell.make 0 in
  let suspended = Cell.make false in
  counter_scenario
    ~note_steal:(fun () -> ignore (Cell.fetch_add count 1))
    ~note_resume:(fun () -> ())
    ~main_sync:(fun ~pass () ->
      if Cell.read count = 0 then pass ()
      else
        (* Racy: the check above and this publication are not atomic. *)
        Cell.write suspended true)
    ~joiner:(fun ~pass () ->
      let v = Cell.fetch_add count (-1) in
      if v = 1 && Cell.read suspended then pass ())
    ()

(* The wait-free Nowa protocol (Section IV): the counter starts at Imax
   (scaled down for the model), α is only written on the main path, the
   continuation is published BEFORE the Equation-5 restore, and the
   unique zero observer takes the continuation back with a CAS. *)
let wait_free_counter_spec ~children () =
  assert (children = 1);
  let i_max = 1000 in
  let counter = Cell.make i_max in
  let alpha = Cell.make 0 in
  let suspended = Cell.make false in
  counter_scenario
    ~note_steal:(fun () -> ())
    ~note_resume:(fun () ->
      let a = Cell.read alpha in
      Cell.write alpha (a + 1))
    ~main_sync:(fun ~pass () ->
      let a = Cell.read alpha in
      if a = 0 then pass () (* nothing was ever stolen: free fast path *)
      else begin
        Cell.write suspended true;
        let delta = a - i_max in
        let old = Cell.fetch_add counter delta in
        if old + delta = 0 then begin
          check (Cell.cas suspended true false)
            "restore observed zero but the continuation was gone";
          pass ()
        end
      end)
    ~joiner:(fun ~pass () ->
      let v = Cell.fetch_add counter (-1) in
      if v = 1 then begin
        check (Cell.cas suspended true false)
          "join observed zero but the continuation was gone";
        pass ()
      end)
    ()

(* The lock-based Fibril protocol (Listing 2): the count update is
   coupled with the steal under the lock, and the suspension publication
   happens in the same critical section as the count check. *)
let lock_counter_spec ~children () =
  assert (children = 1);
  let count = Cell.make 0 in
  let lock = Cell.make false in
  let suspended = Cell.make false in
  let rec acquire () = if not (Cell.cas lock false true) then acquire () in
  let release () = Cell.write lock false in
  counter_scenario
    ~note_steal:(fun () ->
      acquire ();
      let c = Cell.read count in
      Cell.write count (if c = 0 then 2 else c + 1);
      release ())
    ~note_resume:(fun () -> ())
    ~main_sync:(fun ~pass () ->
      acquire ();
      let c = Cell.read count in
      if c = 0 then begin
        release ();
        pass ()
      end
      else begin
        Cell.write count (c - 1);
        if Cell.read count = 0 then begin
          release ();
          pass ()
        end
        else begin
          Cell.write suspended true;
          release ()
        end
      end)
    ~joiner:(fun ~pass () ->
      acquire ();
      let c = Cell.read count in
      Cell.write count (c - 1);
      let zero = c - 1 = 0 in
      release ();
      if zero then begin
        check (Cell.peek suspended) "join hit zero before the frame suspended";
        pass ()
      end)
    ()

(* -- the sleeper registry (lib/runtime/sleepers.ml) ---------------------
   One word packs {sleeper mask, wake epoch}; per-worker token cells model
   the counting semaphores.  [Cell.await] models parking: a worker blocked
   on its token cell is disabled until a waker posts, so exploration stays
   finite and a worker still blocked at the end of the run is exactly a
   worker asleep forever. *)

let sleeper_spec ?(variant = `Good) ~workers ~tasks () =
  let epoch_one = 1 lsl workers in
  let mask_all = epoch_one - 1 in
  let word = Cell.make 0 in
  let tokens = Array.init workers (fun _ -> Cell.make 0) in
  let work = Cell.make 0 in
  let done_ = Array.make workers false in
  let rec try_take () =
    let v = Cell.read work in
    if v <= 0 then false
    else if Cell.cas work v (v - 1) then true
    else try_take ()
  in
  let rec set_bit bit =
    let cur = Cell.read word in
    if cur land bit <> 0 then ()
    else if not (Cell.cas word cur (cur lor bit)) then set_bit bit
  in
  (* [false] when a waker claimed the bit first: a token is in flight. *)
  let rec clear_bit bit =
    let cur = Cell.read word in
    if cur land bit = 0 then false
    else if Cell.cas word cur (cur lxor bit) then true
    else clear_bit bit
  in
  let park w =
    ignore (Cell.await tokens.(w) (fun t -> t > 0));
    ignore (Cell.fetch_add tokens.(w) (-1))
  in
  let worker w () =
    let bit = 1 lsl w in
    let rec run budget =
      if budget = 0 then () (* retires, still awake *)
      else if try_take () then () (* got a task, exits awake *)
      else begin
        match variant with
        | `Good ->
          (* announce, then the final re-check, then park *)
          set_bit bit;
          if Cell.read work > 0 then begin
            if clear_bit bit then run (budget - 1)
            else begin
              (* wake/cancel race: the token is in flight, absorb it *)
              park w;
              run (budget - 1)
            end
          end
          else begin
            park w;
            run (budget - 1)
          end
        | `Check_before_announce ->
          (* the classic lost wake-up: re-check BEFORE announcing, so a
             push+wake landing in between sees an empty mask *)
          if Cell.read work > 0 then run (budget - 1)
          else begin
            set_bit bit;
            park w;
            run (budget - 1)
          end
      end
    in
    run 3;
    done_.(w) <- true
  in
  let rec wake_one () =
    let cur = Cell.read word in
    let mask = cur land mask_all in
    if mask = 0 then () (* fast path: nobody sleeps *)
    else begin
      let rec lowest i = if mask land (1 lsl i) <> 0 then i else lowest (i + 1) in
      let w = lowest 0 in
      let next = (cur lxor (1 lsl w)) + epoch_one in
      if Cell.cas word cur next then ignore (Cell.fetch_add tokens.(w) 1)
      else wake_one ()
    end
  in
  let spawner () =
    for _ = 1 to tasks do
      ignore (Cell.fetch_add work 1);
      (* the push happens before the mask load, as in the engines *)
      wake_one ()
    done
  in
  let threads = List.init workers (fun w -> worker w) @ [ spawner ] in
  (* No lost wake-up: pending work implies some worker is awake (done
     running, hence sweeping again in the real runtime) — never every
     worker parked without a token. *)
  let invariant () = Cell.peek work = 0 || Array.exists (fun d -> d) done_ in
  (threads, invariant)

(* Wake-vs-cancel token race: one worker announces then cancels while
   wakers race [wake_one].  Exactly one side must win the bit, at most
   one token may be minted, and the epoch counts the successful wake. *)
let sleeper_wake_cancel_spec ~wakers () =
  let word = Cell.make 0 in
  let tokens = Cell.make 0 in
  let cancelled = ref false in
  let claimed = Array.make wakers false in
  let worker () =
    let rec set_bit () =
      let cur = Cell.read word in
      if not (Cell.cas word cur (cur lor 1)) then set_bit ()
    in
    set_bit ();
    let rec clear_bit () =
      let cur = Cell.read word in
      if cur land 1 = 0 then false
      else if Cell.cas word cur (cur lxor 1) then true
      else clear_bit ()
    in
    if clear_bit () then cancelled := true
    else begin
      (* a waker claimed us: its token must arrive; consume it *)
      ignore (Cell.await tokens (fun t -> t > 0));
      ignore (Cell.fetch_add tokens (-1))
    end
  in
  let waker i () =
    let rec go () =
      let cur = Cell.read word in
      if cur land 1 = 0 then ()
      else if Cell.cas word cur ((cur lxor 1) + 2) then begin
        ignore (Cell.fetch_add tokens 1);
        claimed.(i) <- true
      end
      else go ()
    in
    go ()
  in
  let threads = worker :: List.init wakers (fun i -> waker i) in
  let invariant () =
    let claims =
      Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 claimed
    in
    claims = (if !cancelled then 0 else 1)
    && Cell.peek tokens = 0
    && Cell.peek word lsr 1 = claims
    && Cell.peek word land 1 = 0
  in
  (threads, invariant)

(* Shutdown: workers announce and park while a closer sets [finished]
   and then [wake_all]s.  No worker may stay parked past shutdown. *)
let sleeper_shutdown_spec ~workers () =
  let epoch_one = 1 lsl workers in
  let mask_all = epoch_one - 1 in
  let word = Cell.make 0 in
  let tokens = Array.init workers (fun _ -> Cell.make 0) in
  let finished = Cell.make false in
  let done_ = Array.make workers false in
  let worker w () =
    let bit = 1 lsl w in
    let rec set_bit () =
      let cur = Cell.read word in
      if not (Cell.cas word cur (cur lor bit)) then set_bit ()
    in
    set_bit ();
    (* the engines re-check [finished] between announce and park *)
    let consume () =
      ignore (Cell.await tokens.(w) (fun t -> t > 0));
      ignore (Cell.fetch_add tokens.(w) (-1))
    in
    if Cell.read finished then begin
      let rec clear_bit () =
        let cur = Cell.read word in
        if cur land bit = 0 then false
        else if Cell.cas word cur (cur lxor bit) then true
        else clear_bit ()
      in
      if not (clear_bit ()) then consume ()
    end
    else consume ();
    done_.(w) <- true
  in
  let closer () =
    Cell.write finished true;
    let rec wake_all () =
      let cur = Cell.read word in
      let mask = cur land mask_all in
      if mask = 0 then ()
      else if Cell.cas word cur (cur - mask + epoch_one) then begin
        let rec post m i =
          if m <> 0 then begin
            if m land 1 <> 0 then ignore (Cell.fetch_add tokens.(i) 1);
            post (m lsr 1) (i + 1)
          end
        in
        post mask 0
      end
      else wake_all ()
    in
    wake_all ()
  in
  let threads = List.init workers (fun w -> worker w) @ [ closer ] in
  (threads, fun () -> Array.for_all (fun d -> d) done_)

(* -- steal_batch on the four deques ------------------------------------
   Each spec races an owner (pushes then pops) against thieves running
   the deque's own [steal_batch] protocol; the conservation invariant is
   the re-homing guarantee: every element lands in exactly one log (the
   thief's stash that the child engine re-homes into its own deque) or
   stays in the deque. *)

let chase_lev_batch_spec ~pushes ~pops ~batch ~thieves () =
  let top = Cell.make 0 in
  let bottom = Cell.make 0 in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let push v =
    let b = Cell.read bottom in
    Cell.write slots.(b) v;
    Cell.write bottom (b + 1)
  in
  let pop () =
    let b = Cell.read bottom - 1 in
    Cell.write bottom b;
    let t = Cell.read top in
    if b < t then Cell.write bottom t
    else begin
      let v = Cell.read slots.(b) in
      if b > t then owner_log.taken <- v :: owner_log.taken
      else begin
        if Cell.cas top t (t + 1) then owner_log.taken <- v :: owner_log.taken;
        Cell.write bottom (t + 1)
      end
    end
  in
  (* CAS deque: a batch is [batch] independent steals stopping at the
     first empty or raced attempt, as in chase_lev.ml. *)
  let steal_one log =
    let t = Cell.read top in
    let b = Cell.read bottom in
    if t >= b then false
    else begin
      let v = Cell.read slots.(t) in
      if Cell.cas top t (t + 1) then begin
        log.taken <- v :: log.taken;
        true
      end
      else false
    end
  in
  let steal_batch log () =
    let rec go n = if n < batch && steal_one log then go (n + 1) in
    go 0
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal_batch l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek bottom - Cell.peek top))
  in
  (threads, invariant)

let the_queue_batch_spec ~pushes ~pops ~batch ~thieves () =
  let head = Cell.make 0 in
  let tail = Cell.make 0 in
  let lock = Cell.make false in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  (* Blocking mutex: spin-free, so the exploration is exhaustive. *)
  let acquire () = Cell.await_cas lock false true in
  let release () = Cell.write lock false in
  let push v =
    let t = Cell.read tail in
    Cell.write slots.(t) v;
    Cell.write tail (t + 1)
  in
  let pop () =
    let t = Cell.read tail - 1 in
    Cell.write tail t;
    let h = Cell.read head in
    if h > t then begin
      Cell.write tail (t + 1);
      acquire ();
      let t = Cell.read tail - 1 in
      Cell.write tail t;
      let h = Cell.read head in
      if h > t then Cell.write tail h
      else begin
        let v = Cell.read slots.(t) in
        owner_log.taken <- v :: owner_log.taken
      end;
      release ()
    end
    else begin
      let v = Cell.read slots.(t) in
      owner_log.taken <- v :: owner_log.taken
    end
  in
  (* Steal-half under ONE critical section, as in the_queue.ml. *)
  let steal_batch log () =
    acquire ();
    let avail = max 0 (Cell.read tail - Cell.read head) in
    let take = min batch ((avail + 1) / 2) in
    let rec go n =
      if n < take then begin
        let h = Cell.read head in
        Cell.write head (h + 1);
        let t = Cell.read tail in
        if h + 1 > t then Cell.write head h (* raced the owner: stop *)
        else begin
          let v = Cell.read slots.(h) in
          log.taken <- v :: log.taken;
          go (n + 1)
        end
      end
    in
    go 0;
    release ()
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal_batch l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek tail - Cell.peek head))
  in
  (threads, invariant)

let abp_batch_spec ~pushes ~pops ~batch ~thieves () =
  (* age packs (tag lsl 8) lor top, as abp.ml packs them into one CAS
     word; the array is not a ring — pop resets both indices on empty. *)
  let age = Cell.make 0 in
  let bot = Cell.make 0 in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let top_of a = a land 255 and tag_of a = a lsr 8 in
  let pack ~tag ~top = (tag lsl 8) lor top in
  let push v =
    let b = Cell.read bot in
    Cell.write slots.(b) v;
    Cell.write bot (b + 1)
  in
  let pop () =
    let b = Cell.read bot in
    if b > 0 then begin
      let b = b - 1 in
      Cell.write bot b;
      let v = Cell.read slots.(b) in
      let old_age = Cell.read age in
      let tag = tag_of old_age and top = top_of old_age in
      if b > top then owner_log.taken <- v :: owner_log.taken
      else begin
        Cell.write bot 0;
        let new_age = pack ~tag:(tag + 1) ~top:0 in
        if b = top && Cell.cas age old_age new_age then
          owner_log.taken <- v :: owner_log.taken
        else Cell.write age new_age
      end
    end
  in
  let steal_one log =
    let old_age = Cell.read age in
    let tag = tag_of old_age and top = top_of old_age in
    let b = Cell.read bot in
    if b <= top then false
    else begin
      let v = Cell.read slots.(top) in
      if Cell.cas age old_age (pack ~tag ~top:(top + 1)) then begin
        log.taken <- v :: log.taken;
        true
      end
      else false
    end
  in
  let steal_batch log () =
    let rec go n = if n < batch && steal_one log then go (n + 1) in
    go 0
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal_batch l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek bot - top_of (Cell.peek age)))
  in
  (threads, invariant)

let locked_batch_spec ~pushes ~pops ~batch ~thieves () =
  let head = Cell.make 0 in
  let tail = Cell.make 0 in
  let lock = Cell.make false in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let acquire () = Cell.await_cas lock false true in
  let release () = Cell.write lock false in
  let push v =
    acquire ();
    let t = Cell.read tail in
    Cell.write slots.(t) v;
    Cell.write tail (t + 1);
    release ()
  in
  let pop () =
    acquire ();
    let t = Cell.read tail in
    let h = Cell.read head in
    if t > h then begin
      Cell.write tail (t - 1);
      let v = Cell.read slots.(t - 1) in
      owner_log.taken <- v :: owner_log.taken
    end;
    release ()
  in
  (* steal_half under one lock acquisition, as in locked_deque.ml *)
  let steal_batch log () =
    acquire ();
    let avail = Cell.read tail - Cell.read head in
    let take = min batch ((avail + 1) / 2) in
    let rec go n =
      if n < take then begin
        let h = Cell.read head in
        let v = Cell.read slots.(h) in
        Cell.write head (h + 1);
        log.taken <- v :: log.taken;
        go (n + 1)
      end
    in
    go 0;
    release ()
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal_batch l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek tail - Cell.peek head))
  in
  (threads, invariant)

(* -- SNZI arrive/depart with helping (lib/sync/snzi.ml) ----------------
   One shared tree node (c2 doubled, version in the low bits, both under
   one CAS as in snzi.ml) over the plain root counter.  Exercises the
   zero→non-zero claim, the helping path and the surplus undo. *)

let snzi_spec ~threads:nthreads () =
  let node = Cell.make 0 in
  let root = Cell.make 0 in
  let pack ~c2 ~v = (c2 lsl 8) lor (v land 255) in
  let c2_of x = x lsr 8 and v_of x = x land 255 in
  let depart_root () = ignore (Cell.fetch_add root (-1)) in
  let arrive () =
    let undo = ref 0 in
    let rec loop () =
      let x = Cell.read node in
      let c2 = c2_of x and v = v_of x in
      if c2 >= 2 then begin
        if not (Cell.cas node x (pack ~c2:(c2 + 2) ~v)) then loop ()
      end
      else if c2 = 1 then begin
        (* help whoever claimed the zero→non-zero transition: increment
           the parent first, then try to finish the transition *)
        ignore (Cell.fetch_add root 1);
        if not (Cell.cas node x (pack ~c2:2 ~v)) then incr undo;
        loop () (* helping never completes our own arrive *)
      end
      else begin
        if Cell.cas node x (pack ~c2:1 ~v:(v + 1)) then begin
          ignore (Cell.fetch_add root 1);
          if not (Cell.cas node (pack ~c2:1 ~v:(v + 1)) (pack ~c2:2 ~v:(v + 1)))
          then incr undo
        end
        else loop ()
      end
    in
    loop ();
    for _ = 1 to !undo do
      depart_root ()
    done
  in
  let depart () =
    let rec loop () =
      let x = Cell.read node in
      let c2 = c2_of x and v = v_of x in
      check (c2 >= 2) "depart found the node surplus already zero";
      if Cell.cas node x (pack ~c2:(c2 - 2) ~v) then begin
        if c2 = 2 then depart_root ()
      end
      else loop ()
    in
    loop ()
  in
  let worker () =
    arrive ();
    check (Cell.peek root > 0) "arrived but the indicator reads zero";
    depart ()
  in
  let threads = List.init nthreads (fun _ -> worker) in
  let invariant () = Cell.peek root = 0 && c2_of (Cell.peek node) = 0 in
  (threads, invariant)

(* -- SNZI batched arrive_n/depart_n (lib/sync/snzi.ml) -----------------
   The batched forms fold a burst of units into one CAS: only the unit
   that moves the node away from zero walks to the root; the remainder
   is a local increment legal because the walker's own completed unit
   pins the node non-zero.  Threads arrive different batch sizes, check
   the indicator, and retire their whole batch with one batched depart
   (parent decremented iff the node reaches zero). *)

let snzi_batch_spec ~threads:nthreads ~batch () =
  let node = Cell.make 0 in
  let root = Cell.make 0 in
  let pack ~c2 ~v = (c2 lsl 8) lor (v land 255) in
  let c2_of x = x lsr 8 and v_of x = x land 255 in
  let depart_root () = ignore (Cell.fetch_add root (-1)) in
  let arrive_one () =
    let undo = ref 0 in
    let rec loop () =
      let x = Cell.read node in
      let c2 = c2_of x and v = v_of x in
      if c2 >= 2 then begin
        if not (Cell.cas node x (pack ~c2:(c2 + 2) ~v)) then loop ()
      end
      else if c2 = 1 then begin
        ignore (Cell.fetch_add root 1);
        if not (Cell.cas node x (pack ~c2:2 ~v)) then incr undo;
        loop ()
      end
      else begin
        if Cell.cas node x (pack ~c2:1 ~v:(v + 1)) then begin
          ignore (Cell.fetch_add root 1);
          if not (Cell.cas node (pack ~c2:1 ~v:(v + 1)) (pack ~c2:2 ~v:(v + 1)))
          then incr undo
        end
        else loop ()
      end
    in
    loop ();
    for _ = 1 to !undo do
      depart_root ()
    done
  in
  let arrive_n n =
    let x = Cell.read node in
    let c2 = c2_of x and v = v_of x in
    if c2 >= 2 && Cell.cas node x (pack ~c2:(c2 + (2 * n)) ~v) then ()
    else begin
      arrive_one ();
      if n > 1 then begin
        let rec add () =
          let x = Cell.read node in
          let c2 = c2_of x and v = v_of x in
          check (c2 >= 2) "remainder add found the node zero under own unit";
          if not (Cell.cas node x (pack ~c2:(c2 + (2 * (n - 1))) ~v)) then
            add ()
        in
        add ()
      end
    end
  in
  let depart_n n =
    let rec loop () =
      let x = Cell.read node in
      let c2 = c2_of x and v = v_of x in
      check (c2 >= 2 * n) "batched depart found surplus short of the batch";
      if Cell.cas node x (pack ~c2:(c2 - (2 * n)) ~v) then begin
        if c2 = 2 * n then depart_root ()
      end
      else loop ()
    in
    loop ()
  in
  let worker i () =
    let n = 1 + (i mod batch) in
    arrive_n n;
    check (Cell.peek root > 0) "batch arrived but the indicator reads zero";
    depart_n n
  in
  let threads = List.init nthreads worker in
  let invariant () = Cell.peek root = 0 && c2_of (Cell.peek node) = 0 in
  (threads, invariant)

(* -- barrier reuse across rounds (lib/sync/barrier.ml) -----------------
   [`Sense] is the pre-fix sense-reversing barrier (my_sense read from
   the global flag at entry); [`Sense_reordered] is the same protocol
   with the leader's two stores swapped — the weak-memory hazard made
   explicit as a program so SC search can exhibit it; [`Epoch] is the
   fixed barrier (monotonic arrivals, per-round parity from the arrival
   index, no reset window at all). *)

let barrier_spec ?(variant = `Epoch) ~n ~rounds () =
  let arrived = Array.init rounds (fun _ -> Cell.make 0) in
  let done_ = Array.make n false in
  let await_round =
    match variant with
    | `Sense | `Sense_reordered ->
      let count = Cell.make 0 in
      let sense = Cell.make false in
      fun _r ->
        let my = not (Cell.read sense) in
        if Cell.fetch_add count 1 = n - 1 then begin
          match variant with
          | `Sense ->
            Cell.write count 0;
            Cell.write sense my
          | _ ->
            (* store order flipped: sense becomes visible while count
               still holds the previous round's arrivals *)
            Cell.write sense my;
            Cell.write count 0
        end
        else ignore (Cell.await sense (fun s -> s = my))
    | `Epoch ->
      let arrivals = Cell.make 0 in
      let rounds_done = Cell.make 0 in
      fun _r ->
        let k = Cell.fetch_add arrivals 1 in
        let r = k / n in
        if k mod n = n - 1 then ignore (Cell.fetch_add rounds_done 1)
        else ignore (Cell.await rounds_done (fun d -> d > r))
  in
  let participant i () =
    for r = 0 to rounds - 1 do
      ignore (Cell.fetch_add arrived.(r) 1);
      await_round r;
      check
        (Cell.peek arrived.(r) = n)
        "passed a round before every participant arrived"
    done;
    done_.(i) <- true
  in
  (* All participants must finish: a thread still blocked on its round
     flag at the end of the run is a deadlocked barrier. *)
  (List.init n participant, fun () -> Array.for_all (fun d -> d) done_)

(* -- KV shard combiner: claim/drain/release/re-check (lib/server/kv.ml) --
   A shard's mailbox is a Treiber-style list; whoever CASes the
   combining flag drains and applies.  The protocol's load-bearing
   fence is the mailbox re-check AFTER releasing the flag: a message
   pushed between the combiner's last drain and the release would
   otherwise be stranded, because its pusher saw [combining = true] and
   walked away.  [`No_recheck] omits exactly that fence and the checker
   exhibits the lost operation. *)

let kv_combiner_spec ?(variant = `Good) ~pushers () =
  let mail = Cell.make [] in
  let combining = Cell.make false in
  let store = Cell.make 0 in
  let push v =
    let rec go () =
      let cur = Cell.read mail in
      if not (Cell.cas mail cur (v :: cur)) then go ()
    in
    go ()
  in
  let drain () =
    let rec go () =
      let batch = Cell.read mail in
      if batch <> [] then begin
        if Cell.cas mail batch [] then
          List.iter
            (fun _ ->
              let v = Cell.read store in
              Cell.write store (v + 1))
            batch;
        go ()
      end
    in
    go ()
  in
  (* One claim attempt, as in try_combine: failure means the current
     holder is responsible (and its own release re-check is what makes
     that responsibility real). *)
  let rec combine () =
    if Cell.cas combining false true then begin
      drain ();
      Cell.write combining false;
      match variant with
      | `Good -> if Cell.read mail <> [] then combine ()
      | `No_recheck -> ()
    end
  in
  let threads =
    List.init pushers (fun i () ->
        push (i + 1);
        combine ())
  in
  let invariant () = Cell.peek store = pushers && Cell.peek mail = [] in
  (threads, invariant)

(* -- KV bucket handoff: Borrow/Grant/Return vs a concurrent reader -----
   Two shards, one bucket each (modelled as plain int cells since the
   combiner discipline is what grants exclusivity).  A client txn homed
   at shard 0 atomically increments both buckets: shard 0 borrows
   shard 1's bucket, shard 1 detaches it (grant), shard 0 applies and
   returns it.  A second client's single-key increment on shard 1 races
   the loan window; the correct protocol defers it until the bucket
   comes home.  [`No_defer] applies it immediately into the detached
   bucket's home slot — the increment lands on state the grant already
   copied out and the Return overwrites it: a lost update the checker
   finds.  Invariant additionally rules out double-applies via an
   apply-count check. *)

type handoff_msg =
  | Hop  (* client C: increment shard 1's bucket *)
  | Htxn  (* client B: increment both buckets atomically *)
  | Hborrow
  | Hgrant of int  (* detached bucket value travelling to shard 0 *)
  | Hreturn of int  (* updated bucket value travelling home *)

let kv_handoff_spec ?(variant = `Good) () =
  let mail0 = Cell.make [] and mail1 = Cell.make [] in
  let store0 = Cell.make 0 and store1 = Cell.make 0 in
  let loaned1 = Cell.make false in
  let defer1 = Cell.make [] in
  let res_b = Cell.make false and res_c = Cell.make false in
  let applied_c = Cell.make 0 in
  let push mail m =
    let rec go () =
      let cur = Cell.read mail in
      if not (Cell.cas mail cur (m :: cur)) then go ()
    in
    go ()
  in
  (* Dedicated server thread per shard: combiner exclusivity is by
     construction here (kv_combiner_spec checks the claim protocol);
     this spec isolates the handoff races. *)
  let serve mail expected handle () =
    let handled = ref 0 in
    while !handled < expected do
      let batch =
        let rec take () =
          let l = Cell.await mail (fun l -> l <> []) in
          if Cell.cas mail l [] then l else take ()
        in
        take ()
      in
      List.iter handle (List.rev batch);
      handled := !handled + List.length batch
    done
  in
  let apply_c () =
    let v = Cell.read store1 in
    Cell.write store1 (v + 1);
    check (Cell.fetch_add applied_c 1 = 0) "reader op applied twice";
    Cell.write res_c true
  in
  let handle1 = function
    | Hop ->
      if Cell.read loaned1 then begin
        match variant with
        | `Good -> push defer1 Hop (* wait for the bucket to come home *)
        | `No_defer -> apply_c () (* bug: mutate the detached bucket's slot *)
      end
      else apply_c ()
    | Hborrow ->
      check (not (Cell.read loaned1)) "double loan";
      Cell.write loaned1 true;
      let v = Cell.read store1 in
      push mail0 (Hgrant v)
    | Hreturn v ->
      Cell.write store1 v;
      Cell.write loaned1 false;
      let deferred = Cell.read defer1 in
      Cell.write defer1 [];
      List.iter (fun _ -> apply_c ()) deferred
    | Htxn | Hgrant _ -> check false "wrong shard"
  in
  let handle0 = function
    | Htxn -> push mail1 Hborrow
    | Hgrant v ->
      (* All buckets held: the one-shot atomic apply. *)
      let v0 = Cell.read store0 in
      Cell.write store0 (v0 + 1);
      Cell.write res_b true;
      push mail1 (Hreturn (v + 1))
    | Hop | Hborrow | Hreturn _ -> check false "wrong shard"
  in
  let client_b () =
    push mail0 Htxn;
    ignore (Cell.await res_b (fun r -> r))
  in
  let client_c () =
    push mail1 Hop;
    ignore (Cell.await res_c (fun r -> r))
  in
  let threads =
    [ client_b; client_c; serve mail0 2 handle0; serve mail1 3 handle1 ]
  in
  let invariant () =
    Cell.peek store0 = 1
    && Cell.peek store1 = 2
    && Cell.peek res_b && Cell.peek res_c
    && (not (Cell.peek loaned1))
    && Cell.peek defer1 = []
    && Cell.peek mail0 = []
    && Cell.peek mail1 = []
  in
  (threads, invariant)

(* -- KV combiner release with parked home txns (lib/server/kv.ml) ------
   [retry_waiting] can itself complete a transaction, and that
   completion reattaches buckets — setting the shard's [recheck] flag
   again after the drain loop already cleared it.  A second txn parked
   on the just-reattached bucket, filtered earlier in the same retry
   pass, then has no mailbox message left to wake the combiner for it:
   [try_combine] only enters on non-empty mail.  The release must
   therefore loop until BOTH the mailbox is empty and [recheck] is
   clear.  [`No_recheck_loop] releases on an empty mailbox alone — the
   checker exhibits the stranded txn (C never completes).

   Model: one shard whose combiner-private state is pre-loaded with the
   adversarial configuration — txn A holds bucket 0 and is parked on
   bucket 1 (on loan to a remote txn whose Return is inbound); txn C is
   parked on bucket 0; the waiting list visits C before A.  A
   bystander client D pushes an independent single-key op so the claim
   race and a rescue-by-later-traffic schedule are both explored: the
   violating schedules are exactly those where D's combine runs before
   A's completion re-sets [recheck]. *)

type parked_msg = Preturn | Pop_d

let kv_parked_retry_spec ?(variant = `Good) () =
  let mail = Cell.make [] in
  let combining = Cell.make false in
  (* Combiner-private shard state (protected by [combining]). *)
  let b0_loaned = Cell.make true in  (* held by home txn A *)
  let b1_loaned = Cell.make true in  (* on loan; Return inbound *)
  let waiting = Cell.make [ `C; `A ] in
  let recheck = Cell.make false in
  let done_a = Cell.make false in
  let done_c = Cell.make false in
  let done_d = Cell.make false in
  let push m =
    let rec go () =
      let cur = Cell.read mail in
      if not (Cell.cas mail cur (m :: cur)) then go ()
    in
    go ()
  in
  let handle = function
    | Preturn ->
      (* reattach bucket 1 *)
      Cell.write b1_loaned false;
      Cell.write recheck true
    | Pop_d -> Cell.write done_d true (* single-key op on a free bucket *)
  in
  (* retry_waiting: left-to-right filter over the parked txns.  A's
     completion applies against bucket 1 and reattaches bucket 0 —
     the reattach that re-sets [recheck] mid-pass. *)
  let retry () =
    let step kept = function
      | `A ->
        if Cell.read b1_loaned then `A :: kept
        else begin
          Cell.write b0_loaned false;
          Cell.write recheck true;
          Cell.write done_a true;
          kept
        end
      | `C ->
        if Cell.read b0_loaned then `C :: kept
        else begin
          Cell.write done_c true;
          kept
        end
    in
    Cell.write waiting (List.rev (List.fold_left step [] (Cell.read waiting)))
  in
  let rec combine () =
    if Cell.cas combining false true then loop ()
  and loop () =
    (let rec drain () =
       let batch = Cell.read mail in
       if batch <> [] then
         if Cell.cas mail batch [] then List.iter handle (List.rev batch)
         else drain ()
     in
     drain ());
    if Cell.read recheck then begin
      Cell.write recheck false;
      retry ()
    end;
    let again =
      match variant with
      | `Good -> Cell.read recheck || Cell.read mail <> []
      | `No_recheck_loop -> Cell.read mail <> []
    in
    if again then loop ()
    else begin
      Cell.write combining false;
      if Cell.read mail <> [] then combine ()
    end
  in
  let threads =
    [
      (fun () ->
        push Preturn;
        combine ());
      (fun () ->
        push Pop_d;
        combine ());
    ]
  in
  let invariant () =
    Cell.peek done_a && Cell.peek done_c && Cell.peek done_d
    && (not (Cell.peek b0_loaned))
    && (not (Cell.peek b1_loaned))
    && Cell.peek waiting = []
    && (not (Cell.peek recheck))
    && Cell.peek mail = []
  in
  (threads, invariant)

(* The watchdog's parked-vs-stalled classification across the park/wake
   token race (lib/runtime/health.ml Monitor.scan_once against
   lib/runtime/sleepers.ml).  One worker starts parked: its mask bit is
   published and its per-slot waiting flag is set; a waker runs
   [wake_one] (claim the bit, bump the wake stamp, mint a token) and the
   worker resumes (consume the token, clear waiting, heartbeat).  A
   monitor samples {beat, stamp, bit, waiting} per scan and counts a
   worker stalled after two consecutive quiet unparked scans.

   The hazardous window is after the waker claimed the bit but before
   the worker has beaten again: the bit says "not parked" while the
   worker is blocked with a wake in flight.  The real monitor is safe
   there for two independent reasons, both modelled: the waiting flag
   still reads parked, and the stamp bump reads as progress.  The check
   asserts a stall is only ever declared with no parked indication and
   no token in flight; [`No_waiting_flag] classifies parked by the mask
   bit alone, and the checker exhibits the false stall. *)
let watchdog_park_spec ?(variant = `Good) ~scans () =
  let bit = Cell.make true (* mask bit: published before the scenario *) in
  let waiting = Cell.make 1 in
  let token = Cell.make 0 in
  let stamp = Cell.make 0 in
  let beat = Cell.make 0 in
  let done_ = Cell.make false in
  let worker () =
    (* parked: blocked until the waker mints the token *)
    ignore (Cell.await token (fun t -> t > 0));
    ignore (Cell.fetch_add token (-1));
    Cell.write waiting 0;
    ignore (Cell.fetch_add beat 1);
    Cell.write done_ true
  in
  let waker () =
    (* wake_one: claim the bit, bump the epoch stamp, mint the token *)
    if Cell.cas bit true false then begin
      ignore (Cell.fetch_add stamp 1);
      ignore (Cell.fetch_add token 1)
    end
  in
  let monitor () =
    let prev_beat = ref (Cell.read beat) in
    let prev_stamp = ref (Cell.read stamp) in
    let quiet = ref 0 in
    for _ = 1 to scans do
      let b = Cell.read beat in
      let s = Cell.read stamp in
      let announced = Cell.read bit in
      let w = Cell.read waiting in
      let parked =
        match variant with
        | `Good -> announced || w = 1
        | `No_waiting_flag -> announced
      in
      let progressed = b <> !prev_beat || s <> !prev_stamp in
      prev_beat := b;
      prev_stamp := s;
      if parked || progressed then quiet := 0
      else begin
        incr quiet;
        if !quiet >= 2 then begin
          (* Declaring a stall: by now the worker must be genuinely
             awake and unparked -- no mask bit, no waiting flag, no
             wake token still in flight. *)
          let t = Cell.read token in
          check
            ((not announced) && w = 0 && t = 0)
            "parked worker flagged stalled during the wake race"
        end
      end
    done
  in
  let threads = [ worker; waker; monitor ] in
  (* Liveness framing: the wake always lands, so the worker must have
     retired with the token consumed and the waiting flag down. *)
  let invariant () =
    Cell.peek done_ && Cell.peek token = 0 && Cell.peek waiting = 0
  in
  (threads, invariant)

(* -- cross-pool spill-over: routed roots vs the park protocol ----------
   (ISSUE 10) A [spawn_on] producer publishes a routed root into a
   target pool's inject queue — gate raised before the push, so a zero
   gate proves the queue empty — then runs [wake_routed] on that pool's
   sleeper registry.  The pool's only home worker races it through the
   engines' idle tail (gated take, announce, unconditional pre-park
   sweep, park); a foreign spill thief probes the same queue behind the
   gate and retires awake, as a [Config.spill_over] worker from another
   pool would.

   Safety: the routed root executes exactly once and its remote promise
   is filled exactly once, whichever side wins.  Liveness: the root is
   never stranded in the queue with the home worker parked — the
   lost-task scenario the unconditional sweep closes.  [`No_final_sweep]
   parks on the gated check alone; with the thief's probes exhausted
   before the push, the producer's wake finds an empty mask and the
   checker exhibits the stranded routed root. *)
let spillover_spec ?(variant = `Good) () =
  let gate = Cell.make 0 in
  let slot = Cell.make false (* the routed root, in the inject queue *) in
  let filled = Cell.make 0 (* remote-promise fill count *) in
  let obs = { passes = 0 } in
  let word = Cell.make 0 (* target pool's 1-bit sleeper mask *) in
  let token = Cell.make 0 in
  let execute () =
    check (Cell.fetch_add filled 1 = 0) "routed root executed twice";
    obs.passes <- obs.passes + 1
  in
  let take () =
    if Cell.read gate = 0 then false (* gate at zero proves empty *)
    else if Cell.cas slot true false then begin
      ignore (Cell.fetch_add gate (-1));
      true
    end
    else false
  in
  (* Pre-park re-check: no gate skip — it must hit the queue itself. *)
  let sweep_take () =
    if Cell.cas slot true false then begin
      ignore (Cell.fetch_add gate (-1));
      true
    end
    else false
  in
  let rec set_bit () =
    let cur = Cell.read word in
    if not (Cell.cas word cur (cur lor 1)) then set_bit ()
  in
  let rec clear_bit () =
    let cur = Cell.read word in
    if cur land 1 = 0 then false
    else if Cell.cas word cur (cur lxor 1) then true
    else clear_bit ()
  in
  let park () =
    ignore (Cell.await token (fun t -> t > 0));
    ignore (Cell.fetch_add token (-1))
  in
  let home () =
    let rec idle budget =
      if budget = 0 then ()
      else if take () then execute ()
      else begin
        set_bit ();
        let swept =
          match variant with
          | `Good -> sweep_take ()
          | `No_final_sweep -> false
        in
        if swept then begin
          (* Cancel lost to a waker: absorb the in-flight token. *)
          if not (clear_bit ()) then park ();
          execute ()
        end
        else begin
          park ();
          idle (budget - 1)
        end
      end
    in
    idle 3
  in
  let producer () =
    ignore (Cell.fetch_add gate 1) (* gate up before the push *);
    Cell.write slot true;
    (* wake_routed: one wake on the target pool's registry *)
    let rec wake_one () =
      let cur = Cell.read word in
      if cur land 1 = 0 then ()
      else if Cell.cas word cur (cur lxor 1) then
        ignore (Cell.fetch_add token 1)
      else wake_one ()
    in
    wake_one ()
  in
  let spill_thief () =
    let rec probe budget =
      if budget = 0 then ()
      else if take () then execute ()
      else probe (budget - 1)
    in
    probe 2
  in
  let invariant () =
    obs.passes = 1 && Cell.peek gate = 0 && not (Cell.peek slot)
  in
  ([ home; producer; spill_thief ], invariant)
