(** Systematic interleaving exploration for the platform's concurrent
    algorithms — the methodology of Section II-D of the paper, where
    model checking found a bug in a published Chase-Lev implementation
    (Norris & Demsky, CDSChecker).

    A {e spec} builds, on fresh shared state, a set of thread bodies and
    a final invariant.  Thread bodies access shared memory exclusively
    through {!Cell}, whose every operation is one atomic action preceded
    by a scheduling point.  {!explore} then enumerates thread
    interleavings with {e dynamic partial-order reduction}: each
    schedule is executed once, incrementally, to completion (replay only
    happens on backtrack), and the search prunes with sleep sets plus
    backtrack sets planted at races (Flanagan–Godefroid-style, with
    vector-clock happens-before tracking keyed on [Cell] identity).
    Independent actions on distinct cells therefore no longer multiply
    the schedule space, while at least one representative of every
    Mazurkiewicz trace is still explored — the reduction preserves all
    final-state invariant verdicts and all inline {!check} failures.
    {!explore_naive} is the unreduced full enumeration, kept as the
    cross-check baseline; both report identical verdicts, and the test
    suite asserts the reduction factor.

    Under OCaml's sequentially-consistent atomics this checks the
    algorithms under SC; it cannot exhibit weak-memory-only bugs, but it
    does exhibit all interleaving races — including the worker/thief
    race of the paper's Figure 6, which the test-suite demonstrates on a
    naive strand counter and proves absent (bounded-exhaustively) from
    the wait-free and lock-based counters. *)

module Cell : sig
  type 'a t

  val make : 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit

  val cas : 'a t -> 'a -> 'a -> bool
  (** Compare (structural equality) and swap, one atomic action. *)

  val fetch_add : int t -> int -> int

  val peek : 'a t -> 'a
  (** Read without a scheduling point — for invariants only. *)

  val await : 'a t -> ('a -> bool) -> 'a
  (** Blocking read: the thread is {e disabled} (never scheduled) while
      the predicate is false on the cell's current value, and the read
      runs atomically with the enabledness check once it holds.  This is
      how specs model parking, condition variables and barrier waits
      without unbounded spin loops, keeping exhaustive exploration
      finite.  A thread still blocked when no thread can run leaves the
      execution in a terminal state that the final invariant judges —
      deadlock detection is the spec's invariant saying "everyone must
      have finished". *)

  val await_cas : 'a t -> 'a -> 'a -> unit
  (** Blocking compare-and-swap: disabled until the cell holds the
      expected value, then swaps in the desired value atomically with
      the check.  Models mutex acquisition ([await_cas lock false true])
      without the spin loop. *)
end

val check : bool -> string -> unit
(** Inline assertion inside a thread body: a violation aborts the
    execution and is reported with its schedule. *)

type outcome = {
  executions : int;  (** completed interleavings explored *)
  truncated : int;  (** executions cut off at the step bound *)
  blocked : int;
      (** sleep-set-pruned executions: schedules recognised as
          reorderings of ones already explored (always [0] for
          {!explore_naive}) *)
  complete : bool;
      (** [true] iff the search finished within the execution budget
          {e and} no execution was truncated at the step bound — i.e.
          the verdict is exhaustive, not merely bounded *)
}

type result =
  | Ok of outcome
  | Violation of { schedule : int list; message : string }
      (** a schedule (sequence of thread indices) leading to a failed
          {!check} or final invariant *)

val explore :
  ?max_executions:int ->
  ?max_steps:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result
(** [explore spec] runs [spec ()] afresh for every explored schedule
    prefix; the returned thread list runs under the controlled scheduler
    and the returned thunk is the final invariant.  Uses dynamic
    partial-order reduction; truncated and sleep-set-pruned executions
    count toward [max_executions] so spin-heavy specs cannot exceed
    their budget.  Defaults: 200_000 executions, 400 steps per
    execution. *)

val explore_naive :
  ?max_executions:int ->
  ?max_steps:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result
(** Full enumeration without reduction (the CHESS-style baseline, now
    with incremental execution instead of quadratic replay-per-node).
    Same budget accounting as {!explore}; used to cross-check verdicts
    and measure the reduction factor. *)

val explore_random :
  ?seed:int ->
  ?max_schedules:int ->
  ?max_steps:int ->
  ?change_points:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result
(** Seeded random-walk fallback for specs too large to exhaust: each
    schedule draws a random thread-priority permutation and demotes the
    running thread at [change_points] random depths (PCT-style priority
    schedules, Burckhardt et al.).  Reports the number of schedules
    sampled in [executions] and {e always} [complete = false] — a
    sample is never a proof. *)

val run_schedule :
  ?max_steps:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  int list ->
  result
(** [run_schedule spec schedule] replays one explicit schedule (as
    reported by a {!Violation}) and reports what it observes — the
    mechanism behind pinned-schedule regression tests.  Raises
    [Invalid_argument] if the schedule names a thread that is finished
    or blocked at that point (a stale pin). *)
