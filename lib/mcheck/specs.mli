(** Model-checkable specifications of the platform's coordination
    algorithms, written against {!Mcheck.Cell} so every shared access is
    a scheduling point.

    Each spec builds a small closed scenario whose interleavings
    {!Mcheck.explore} can enumerate exhaustively.  Three strand-counter
    protocols are modelled:

    - {!naive_counter_spec} — the {e hazardous} protocol of the paper's
      Figure 6: a plain active-strand counter where the thief increments
      {e after} stealing and the worker decrements after a failed pop.
      The checker finds the race (a worker passes the sync point while a
      strand is still active).
    - {!wait_free_counter_spec} — the Nowa scheme (Imax initialisation,
      α on the main path, Equation 5 restore): no interleaving violates.
    - {!lock_counter_spec} — the Fibril scheme with the Listing-2
      lock coupling: no interleaving violates.

    Plus deque scenarios for the Chase-Lev and THE queues: an owner
    pushing/popping races thieves stealing; every element must be
    consumed exactly once and LIFO/FIFO order respected.

    PR 5 adds specs for the coordination protocols PR 4 shipped: the
    wait-free sleeper registry (no lost wake-up, wake-vs-cancel token
    races, wake_all at shutdown), [steal_batch] on all four deque
    variants, SNZI arrive/depart with helping, and barrier reuse across
    rounds.  The blocking operations ({!Mcheck.Cell.await},
    {!Mcheck.Cell.await_cas}) keep these specs spin-free so exhaustive
    exploration reports [complete = true] at CI bounds. *)

val chase_lev_spec :
  pushes:int -> pops:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val the_queue_spec :
  pushes:int -> pops:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val naive_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)

val wait_free_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)

val lock_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)

val sleeper_spec :
  ?variant:[ `Good | `Check_before_announce ] ->
  workers:int -> tasks:int ->
  unit -> (unit -> unit) list * (unit -> bool)
(** The sleeper-registry no-lost-wakeup scenario: [workers] workers
    running a bounded take/announce/re-check/park loop against a spawner
    pushing [tasks] tasks, each push followed by [wake_one].  The
    invariant is that pending work implies some worker exited awake.
    [`Check_before_announce] is the buggy protocol (final re-check
    {e before} publishing the mask bit) — the checker exhibits the lost
    wake-up that the announce-first order in sleepers.ml prevents. *)

val sleeper_wake_cancel_spec :
  wakers:int -> unit -> (unit -> unit) list * (unit -> bool)
(** One worker announces then cancels while [wakers] concurrent
    [wake_one] calls race it: exactly one side wins the mask bit, at
    most one token is minted (and is consumed by the worker when it lost
    the race), and the wake epoch counts exactly the successful wakes. *)

val sleeper_shutdown_spec :
  workers:int -> unit -> (unit -> unit) list * (unit -> bool)
(** Workers announce and park while a closer stores [finished] and runs
    [wake_all]; no worker may remain parked after shutdown. *)

val chase_lev_batch_spec :
  pushes:int -> pops:int -> batch:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val the_queue_batch_spec :
  pushes:int -> pops:int -> batch:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val abp_batch_spec :
  pushes:int -> pops:int -> batch:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val locked_batch_spec :
  pushes:int -> pops:int -> batch:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)
(** The four [steal_batch] scenarios, one per deque family: an owner
    pushing then popping races thieves each grabbing a batch of up to
    [batch] elements (CAS deques: independent steals stopping at the
    first failure; lock-based deques: steal-half under one critical
    section).  The conservation invariant is the re-homing guarantee —
    every pushed element is consumed exactly once or still in the
    deque. *)

val snzi_spec :
  threads:int -> unit -> (unit -> unit) list * (unit -> bool)
(** [threads] threads each arrive / check the indicator / depart through
    one SNZI tree node (c2 doubled + version packed in one CAS word over
    a plain root), exercising the zero-to-non-zero claim, the helping
    path and the surplus undo.  Invariant: the indicator is non-zero
    while any arrive is unmatched, and everything returns to zero. *)

val snzi_batch_spec :
  threads:int -> batch:int -> unit -> (unit -> unit) list * (unit -> bool)
(** The batched SNZI operations ([Snzi.arrive_n]/[depart_n]): each
    thread arrives a batch of 1..[batch] units (one tree walk for the
    zero-to-non-zero unit, one local CAS for the remainder), checks the
    indicator, then retires the whole batch in one batched depart.
    Invariant: the remainder CAS never runs on a zero node, departs
    never find the surplus short, and everything returns to zero. *)

val barrier_spec :
  ?variant:[ `Sense | `Sense_reordered | `Epoch ] ->
  n:int -> rounds:int ->
  unit -> (unit -> unit) list * (unit -> bool)
(** Barrier reuse across [rounds] rounds by [n] participants, each
    checking that no-one passes round [r] before all [n] arrived at it,
    with deadlock detection via the all-finished invariant.  [`Sense] is
    the sense-reversing protocol (correct under SC — the exhaustive run
    proves it); [`Sense_reordered] swaps the leader's two stores,
    exhibiting under SC search the hazard that weak memory could
    introduce into [`Sense]; [`Epoch] is the arrivals-epoch barrier that
    barrier.ml now uses, with no reset window at all. *)

val kv_combiner_spec :
  ?variant:[ `Good | `No_recheck ] -> pushers:int ->
  unit -> (unit -> unit) list * (unit -> bool)
(** The KV shard's flat-combining claim protocol (lib/server/kv.ml):
    [pushers] threads each push one operation into the mailbox and make
    one combiner claim attempt.  The invariant is that every pushed
    operation is applied.  [`No_recheck] drops the mailbox re-check
    after the flag release, exhibiting the stranded-message race the
    real combiner's release fence prevents. *)

val kv_handoff_spec :
  ?variant:[ `Good | `No_defer ] ->
  unit -> (unit -> unit) list * (unit -> bool)
(** The KV bucket-handoff protocol: a cross-shard transaction borrows,
    receives and returns a bucket while a concurrent single-key reader
    targets the loaned bucket.  Invariant: no lost ops, no double-apply
    (apply-count checked inline), bucket back home, mailboxes empty.
    [`No_defer] applies the racing op into the detached bucket's slot
    instead of deferring it, exhibiting the lost update. *)

val kv_parked_retry_spec :
  ?variant:[ `Good | `No_recheck_loop ] ->
  unit -> (unit -> unit) list * (unit -> bool)
(** Combiner release with home transactions parked on loaned buckets:
    a retried txn's completion reattaches a bucket and re-sets the
    shard's recheck flag after the drain loop cleared it, so the
    combiner must loop until the mailbox is empty {e and} recheck is
    clear before releasing.  Invariant: every txn and the bystander op
    complete, no bucket still loaned, waiting list empty.
    [`No_recheck_loop] releases on an empty mailbox alone — the checker
    exhibits the stranded parked txn (liveness loss with no message
    left to re-enter the combiner). *)

val watchdog_park_spec :
  ?variant:[ `Good | `No_waiting_flag ] -> scans:int ->
  unit -> (unit -> unit) list * (unit -> bool)
(** The watchdog's parked-vs-stalled rule across the sleeper park/wake
    token race: a parked worker is woken ([wake_one] claims its mask
    bit, bumps the wake stamp, mints a token) while a monitor samples
    heartbeat/stamp/bit/waiting and declares a stall after two quiet
    unparked scans.  The inline check asserts a stall is never declared
    while any parked indication or an in-flight wake token remains.
    [`No_waiting_flag] classifies parked by the mask bit alone — the
    checker exhibits the false stall inside the wake window that the
    per-slot waiting flag (health.ml reads it alongside the mask)
    closes. *)

val spillover_spec :
  ?variant:[ `Good | `No_final_sweep ] ->
  unit -> (unit -> unit) list * (unit -> bool)
(** Cross-pool spill-over handoff (ISSUE 10): a [spawn_on] producer
    gates and pushes a routed root into a target pool's inject queue
    then wakes that pool's registry, racing the pool's home worker
    (gated take, announce, unconditional pre-park sweep, park) and a
    foreign spill thief probing behind the gate.  Invariant: the root
    executes exactly once, its remote promise is filled exactly once,
    and it is never stranded with the home worker parked.
    [`No_final_sweep] parks on the gated check alone — the checker
    exhibits the stranded routed root (lost task). *)
