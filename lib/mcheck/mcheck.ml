(* Systematic interleaving exploration with dynamic partial-order
   reduction.  See mcheck.mli for the contract. *)

exception Check_failed of string

(* Every shared access is one atomic action preceded by a scheduling
   point; the effect payload tells the scheduler which cell the action is
   about to touch and whether it writes, which is what the partial-order
   reduction keys on. *)
type access = { cell : int; writes : bool }

type op =
  | Step of access option  (* unconditional action *)
  | Wait of (unit -> bool) * access
      (* enabled only while the predicate holds; the resumed action runs
         atomically with the enabledness check (nothing is scheduled in
         between), so [await_cas] really is a blocking CAS *)

type _ Effect.t += Sched : op -> unit Effect.t

module Cell = struct
  type 'a t = { id : int; mutable v : 'a }

  (* Cell identities restart at 0 for every execution.  Spec set-up and
     thread bodies are deterministic, so ids are stable across replays
     of a common schedule prefix — which is all the reduction needs. *)
  let next_id = ref 0
  let reset_ids () = next_id := 0

  let make v =
    let id = !next_id in
    incr next_id;
    { id; v }

  let read c =
    Effect.perform (Sched (Step (Some { cell = c.id; writes = false })));
    c.v

  let write c v =
    Effect.perform (Sched (Step (Some { cell = c.id; writes = true })));
    c.v <- v

  let cas c expected desired =
    Effect.perform (Sched (Step (Some { cell = c.id; writes = true })));
    if c.v = expected then begin
      c.v <- desired;
      true
    end
    else false

  let fetch_add c d =
    Effect.perform (Sched (Step (Some { cell = c.id; writes = true })));
    let v = c.v in
    c.v <- v + d;
    v

  let peek c = c.v

  let await c pred =
    Effect.perform
      (Sched (Wait ((fun () -> pred c.v), { cell = c.id; writes = false })));
    c.v

  let await_cas c expected desired =
    Effect.perform
      (Sched (Wait ((fun () -> c.v = expected), { cell = c.id; writes = true })));
    (* Scheduled only in a state where [c.v = expected]; the swap is part
       of the same atomic step. *)
    c.v <- desired
end

let check cond msg = if not cond then raise (Check_failed msg)

type outcome = {
  executions : int;
  truncated : int;
  blocked : int;
  complete : bool;
}

type result =
  | Ok of outcome
  | Violation of { schedule : int list; message : string }

type pending = Ready of access option | Waiting of (unit -> bool) * access

type thread_state =
  | Not_started of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation * pending
  | Finished

(* Advance thread [i] by one atomic action: resume it and run until the
   next scheduling point (or completion / a failed check). *)
let advance states violation i =
  let handler =
    {
      Effect.Deep.retc = (fun () -> states.(i) <- Finished);
      exnc =
        (fun e ->
          states.(i) <- Finished;
          let msg =
            match e with Check_failed m -> m | e -> Printexc.to_string e
          in
          if !violation = None then violation := Some msg);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Sched op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let pd =
                  match op with
                  | Step a -> Ready a
                  | Wait (p, a) -> Waiting (p, a)
                in
                states.(i) <- Paused (k, pd))
          | _ -> None);
    }
  in
  match states.(i) with
  | Not_started f -> Effect.Deep.match_with f () handler
  | Paused (k, _) ->
    states.(i) <- Finished (* overwritten at the next pause *);
    Effect.Deep.continue k ()
  | Finished -> invalid_arg "Mcheck: scheduled a finished thread"

let runnable states i =
  match states.(i) with
  | Finished -> false
  | Not_started _ | Paused (_, Ready _) -> true
  | Paused (_, Waiting (p, _)) -> p ()

let next_access states i =
  match states.(i) with
  | Finished | Not_started _ -> None
  | Paused (_, Ready a) -> a
  | Paused (_, Waiting (_, a)) -> Some a

let dependent a b = a.cell = b.cell && (a.writes || b.writes)

(* -- live execution state, rebuilt by [restart] ------------------------- *)

type event = { eproc : int; eacc : access option; ecv : int array }

type exec = {
  mutable states : thread_state array;
  mutable invariant : unit -> bool;
  violation : string option ref;
  mutable nthreads : int;
  (* C(p): vector clock of each thread (events that happen-before its
     next transition), plus per-cell write/read clocks for the update. *)
  mutable clocks : int array array;
  cell_writes : (int, int array) Hashtbl.t;
  cell_reads : (int, int array) Hashtbl.t;
  mutable trace : event array;
  mutable tlen : int;
}

let vmax dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let make_exec () =
  {
    states = [||];
    invariant = (fun () -> true);
    violation = ref None;
    nthreads = 0;
    clocks = [||];
    cell_writes = Hashtbl.create 64;
    cell_reads = Hashtbl.create 64;
    trace = [||];
    tlen = 0;
  }

let restart x ~max_steps spec =
  Cell.reset_ids ();
  let threads, invariant = spec () in
  x.states <- Array.of_list (List.map (fun f -> Not_started f) threads);
  x.invariant <- invariant;
  x.violation := None;
  x.nthreads <- Array.length x.states;
  x.clocks <- Array.init x.nthreads (fun _ -> Array.make x.nthreads 0);
  Hashtbl.reset x.cell_writes;
  Hashtbl.reset x.cell_reads;
  if Array.length x.trace < max_steps + 1 then
    x.trace <- Array.make (max_steps + 1) { eproc = -1; eacc = None; ecv = [||] };
  x.tlen <- 0

(* Execute one atomic action of thread [p] and fold it into the
   happens-before state. *)
let step x p =
  let acc = next_access x.states p in
  let acc =
    match x.states.(p) with Not_started _ -> None | _ -> acc
  in
  advance x.states x.violation p;
  let cv = Array.copy x.clocks.(p) in
  (match acc with
  | None -> ()
  | Some a ->
    (match Hashtbl.find_opt x.cell_writes a.cell with
    | Some w -> vmax cv w
    | None -> ());
    if a.writes then (
      match Hashtbl.find_opt x.cell_reads a.cell with
      | Some r -> vmax cv r
      | None -> ()));
  cv.(p) <- cv.(p) + 1;
  (match acc with
  | None -> ()
  | Some a ->
    if a.writes then begin
      Hashtbl.replace x.cell_writes a.cell (Array.copy cv);
      Hashtbl.remove x.cell_reads a.cell
    end
    else begin
      match Hashtbl.find_opt x.cell_reads a.cell with
      | Some r -> vmax r cv
      | None -> Hashtbl.replace x.cell_reads a.cell (Array.copy cv)
    end);
  x.clocks.(p) <- cv;
  x.trace.(x.tlen) <- { eproc = p; eacc = acc; ecv = Array.copy cv };
  x.tlen <- x.tlen + 1

(* Did trace event [e] happen before thread [p]'s next transition? *)
let happens_before x e p = e.ecv.(e.eproc) <= x.clocks.(p).(e.eproc)

(* -- the DFS ------------------------------------------------------------ *)

type node = {
  n_enabled : int;  (* bitmask of threads runnable at this state *)
  n_access : access option array;  (* next access per thread here *)
  n_sleep : int;  (* sleep set at entry *)
  mutable n_backtrack : int;
  mutable n_done : int;
  mutable n_chosen : int;
}

let dummy_node =
  {
    n_enabled = 0;
    n_access = [||];
    n_sleep = 0;
    n_backtrack = 0;
    n_done = 0;
    n_chosen = -1;
  }

exception Found of int list * string
exception Budget

let bit_index b =
  let rec go i = if (b lsr i) land 1 = 1 then i else go (i + 1) in
  go 0

let lowest_bit m = bit_index (m land -m)

let search ~reduce ~max_executions ~max_steps spec =
  let executions = ref 0 and truncated = ref 0 and blocked = ref 0 in
  let bump counter =
    incr counter;
    if !executions + !truncated + !blocked >= max_executions then raise Budget
  in
  let x = make_exec () in
  let path = Array.make (max_steps + 1) dummy_node in
  let schedule_of depth = List.init depth (fun i -> path.(i).n_chosen) in
  let enabled_mask () =
    let m = ref 0 in
    for i = 0 to x.nthreads - 1 do
      if runnable x.states i then m := !m lor (1 lsl i)
    done;
    !m
  in
  (* FG race rule at the node just entered (depth = trace length): for
     every pending access, find the most recent dependent trace event not
     already ordered before it, and plant a backtrack point where that
     event was chosen. *)
  let race_rule depth =
    for p = 0 to x.nthreads - 1 do
      match next_access x.states p with
      | None -> ()
      | Some a ->
        let rec scan i =
          if i >= 0 then begin
            let e = x.trace.(i) in
            let racing =
              e.eproc <> p
              && (match e.eacc with
                 | Some b -> dependent a b
                 | None -> false)
              && not (happens_before x e p)
            in
            if racing then begin
              let nd = path.(i) in
              if (nd.n_enabled lsr p) land 1 = 1 then
                nd.n_backtrack <- nd.n_backtrack lor (1 lsl p)
              else nd.n_backtrack <- nd.n_backtrack lor nd.n_enabled
            end
            else scan (i - 1)
          end
        in
        scan (depth - 1)
    done
  in
  (* Sleep set passed to the child after running [c] from a node: the
     threads already covered at this node whose next action commutes with
     [c]'s. *)
  let child_sleep node c =
    let base = (node.n_sleep lor node.n_done) land lnot (1 lsl c) in
    match node.n_access.(c) with
    | None -> base
    | Some ac ->
      let keep = ref 0 in
      let m = ref base in
      while !m <> 0 do
        let q = lowest_bit !m in
        m := !m land lnot (1 lsl q);
        let indep =
          match node.n_access.(q) with
          | None -> true
          | Some aq -> not (dependent ac aq)
        in
        if indep then keep := !keep lor (1 lsl q)
      done;
      !keep
  in
  let replay_to target =
    restart x ~max_steps spec;
    for j = 0 to target - 1 do
      step x path.(j).n_chosen
    done;
    assert (!(x.violation) = None)
  in
  let rec forward sleep depth =
    match !(x.violation) with
    | Some msg -> raise (Found (schedule_of depth, msg))
    | None ->
      let en = enabled_mask () in
      if en = 0 then begin
        (* Terminal: every thread finished, or the rest are blocked on
           [await] for conditions no one can make true.  Either way the
           final invariant judges the state. *)
        if not (x.invariant ()) then
          raise (Found (schedule_of depth, "final invariant violated"));
        bump executions;
        backtrack depth
      end
      else if depth >= max_steps then begin
        bump truncated;
        backtrack depth
      end
      else begin
        let node =
          {
            n_enabled = en;
            n_access = Array.init x.nthreads (next_access x.states);
            n_sleep = sleep;
            n_backtrack = 0;
            n_done = 0;
            n_chosen = -1;
          }
        in
        path.(depth) <- node;
        if reduce then race_rule depth;
        let avail = en land lnot sleep in
        if avail = 0 then begin
          (* Every enabled thread is asleep: this execution is a
             reordering of one already explored. *)
          bump blocked;
          backtrack depth
        end
        else begin
          node.n_backtrack <- node.n_backtrack lor (1 lsl lowest_bit avail);
          if not reduce then node.n_backtrack <- en;
          expand node depth
        end
      end
  and expand node depth =
    let cand =
      node.n_backtrack land node.n_enabled
      land lnot (node.n_done lor node.n_sleep)
    in
    if cand = 0 then backtrack depth
    else begin
      let c = lowest_bit cand in
      node.n_done <- node.n_done lor (1 lsl c);
      node.n_chosen <- c;
      let sleep = if reduce then child_sleep node c else 0 in
      step x c;
      forward sleep (depth + 1)
    end
  and backtrack depth =
    let rec up i =
      if i < 0 then () (* exploration complete *)
      else begin
        let nd = path.(i) in
        let cand =
          nd.n_backtrack land nd.n_enabled
          land lnot (nd.n_done lor nd.n_sleep)
        in
        if cand = 0 then up (i - 1)
        else begin
          replay_to i;
          expand nd i
        end
      end
    in
    up (depth - 1)
  in
  restart x ~max_steps spec;
  match forward 0 0 with
  | () ->
    Ok
      {
        executions = !executions;
        truncated = !truncated;
        blocked = !blocked;
        complete = !truncated = 0;
      }
  | exception Budget ->
    Ok
      {
        executions = !executions;
        truncated = !truncated;
        blocked = !blocked;
        complete = false;
      }
  | exception Found (schedule, message) -> Violation { schedule; message }

let explore ?(max_executions = 200_000) ?(max_steps = 400) spec =
  search ~reduce:true ~max_executions ~max_steps spec

let explore_naive ?(max_executions = 200_000) ?(max_steps = 400) spec =
  search ~reduce:false ~max_executions ~max_steps spec

(* -- single-schedule replay -------------------------------------------- *)

let run_schedule ?(max_steps = 400) spec schedule =
  let x = make_exec () in
  let steps = List.length schedule in
  restart x ~max_steps:(max 1 (max steps max_steps)) spec;
  let rec go taken = function
    | [] -> None
    | p :: rest -> (
      if p < 0 || p >= x.nthreads then
        invalid_arg "Mcheck.run_schedule: thread index out of range";
      if not (runnable x.states p) then
        invalid_arg "Mcheck.run_schedule: schedule stale (thread not runnable)";
      step x p;
      match !(x.violation) with
      | Some msg -> Some (List.rev (p :: taken), msg)
      | None -> go (p :: taken) rest)
  in
  match go [] schedule with
  | Some (schedule, message) -> Violation { schedule; message }
  | None ->
    let any_runnable = ref false in
    for i = 0 to x.nthreads - 1 do
      if runnable x.states i then any_runnable := true
    done;
    if (not !any_runnable) && not (x.invariant ()) then
      Violation { schedule; message = "final invariant violated" }
    else
      Ok
        {
          executions = 1;
          truncated = 0;
          blocked = 0;
          complete = false;
        }

(* -- seeded random walk with PCT-style priorities ----------------------- *)

let explore_random ?(seed = 1) ?(max_schedules = 1_000) ?(max_steps = 400)
    ?(change_points = 3) spec =
  let rng = Nowa_util.Xoshiro.make ~seed in
  let x = make_exec () in
  let executions = ref 0 and truncated = ref 0 in
  let result = ref None in
  (* Change points are only useful if they land inside the run, so they
     are sampled within the longest schedule observed so far (PCT's [k]
     parameter, learned on the fly) rather than within [max_steps]. *)
  let horizon = ref 16 in
  (try
     for _ = 1 to max_schedules do
       restart x ~max_steps spec;
       let n = x.nthreads in
       (* Random priority permutation; change points demote the running
          thread below everyone, as in PCT. *)
       let prio = Array.init n (fun i -> i) in
       for i = n - 1 downto 1 do
         let j = Nowa_util.Xoshiro.int rng (i + 1) in
         let t = prio.(i) in
         prio.(i) <- prio.(j);
         prio.(j) <- t
       done;
       let floor = ref (-1) in
       let changes = Hashtbl.create 8 in
       for _ = 1 to change_points do
         Hashtbl.replace changes (Nowa_util.Xoshiro.int rng (max 1 !horizon)) ()
       done;
       let sched = ref [] in
       let stop = ref false in
       let depth = ref 0 in
       while not !stop do
         let best = ref (-1) in
         for i = 0 to n - 1 do
           if
             runnable x.states i
             && (!best < 0 || prio.(i) > prio.(!best))
           then best := i
         done;
         if !best < 0 then begin
           incr executions;
           if not (x.invariant ()) then begin
             result :=
               Some
                 (Violation
                    {
                      schedule = List.rev !sched;
                      message = "final invariant violated";
                    });
             raise Exit
           end;
           stop := true
         end
         else if !depth >= max_steps then begin
           incr truncated;
           stop := true
         end
         else begin
           let p = !best in
           if Hashtbl.mem changes !depth then begin
             prio.(p) <- !floor;
             decr floor
           end;
           step x p;
           sched := p :: !sched;
           incr depth;
           match !(x.violation) with
           | Some message ->
             result :=
               Some (Violation { schedule = List.rev !sched; message });
             raise Exit
           | None -> ()
         end
       done;
       if !depth > !horizon then horizon := !depth
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None ->
    Ok
      {
        executions = !executions;
        truncated = !truncated;
        blocked = 0;
        complete = false (* a sample, never a proof *);
      }
