module Config = Nowa_runtime.Config
module Metrics = Nowa_runtime.Metrics
module Health = Nowa_runtime.Health
module Obs = Nowa_obs
module Trace = Nowa_trace.Trace
module Trace_event = Nowa_trace.Event
module Trace_analysis = Nowa_trace.Trace_analysis
module Perfetto = Nowa_trace.Perfetto
module Span = Nowa_trace.Span

module type RUNTIME = Nowa_runtime.Runtime_intf.S

module Presets = Nowa_runtime.Presets

include Presets.Nowa

module Ops (R : RUNTIME) = struct
  let both f g =
    R.scope (fun sc ->
        let a = R.spawn sc f in
        let b = g () in
        R.sync sc;
        (R.get a, b))

  let parallel_for ?(grain = 1) lo hi f =
    let grain = max 1 grain in
    let rec go lo hi =
      if hi - lo <= grain then
        for i = lo to hi - 1 do
          f i
        done
      else
        R.scope (fun sc ->
            let mid = lo + ((hi - lo) / 2) in
            let left = R.spawn sc (fun () -> go lo mid) in
            go mid hi;
            R.sync sc;
            R.get left)
    in
    if hi > lo then go lo hi

  let parallel_reduce ?(grain = 1) lo hi ~map ~combine ~init =
    let grain = max 1 grain in
    let rec go lo hi =
      if hi - lo <= grain then begin
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := combine !acc (map i)
        done;
        !acc
      end
      else
        R.scope (fun sc ->
            let mid = lo + ((hi - lo) / 2) in
            let left = R.spawn sc (fun () -> go lo mid) in
            let right = go mid hi in
            R.sync sc;
            combine (R.get left) right)
    in
    if hi > lo then go lo hi else init

  let map_array ?grain f a =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let out = Array.make n (f a.(0)) in
      parallel_for ?grain 0 n (fun i -> out.(i) <- f a.(i));
      out
    end
end

module Default_ops = Ops (Presets.Nowa)

let both = Default_ops.both
let parallel_for = Default_ops.parallel_for
let parallel_reduce = Default_ops.parallel_reduce
let map_array = Default_ops.map_array
