(** Nowa — a wait-free continuation-stealing concurrency platform.

    This is the public face of the library: the default runtime is the
    paper's Nowa configuration (continuation stealing + wait-free strand
    coordination + Chase-Lev deques).  The baselines it was evaluated
    against are available under {!Presets} and share the same
    {!module-type:RUNTIME} interface.

    {[
      let rec fib n =
        if n < 2 then n
        else
          Nowa.scope (fun sc ->
              let a = Nowa.spawn sc (fun () -> fib (n - 1)) in
              let b = fib (n - 2) in
              Nowa.sync sc;
              Nowa.get a + b)

      let () = Printf.printf "%d\n" (Nowa.run (fun () -> fib 30))
    ]} *)

module Config = Nowa_runtime.Config
module Metrics = Nowa_runtime.Metrics

(** {1 Runtime health}

    Wait-free per-worker heartbeats, the stall/convoy/starvation/SLO
    watchdog and the dump-on-anomaly flight recorder.  Enable with
    {!Config.t.watchdog_interval_ms} > 0; query {!Health.status},
    {!Health.healthz} and {!Health.statusz}; force a postmortem bundle
    with {!Health.dump_now}. *)

module Health = Nowa_runtime.Health

(** {1 Live observability}

    The metrics registry ({!Obs.Registry}) carries the scheduler, stack
    and coordination counters while a run is executing: scrape it over
    TCP ({!Obs.Server}), snapshot it periodically ({!Obs.Sampler}) or
    dump it as Prometheus text ({!Obs.Expose}).  The engines publish
    into it automatically ({!Metrics.publish}). *)

module Obs = Nowa_obs

(** {1 Event tracing}

    Set {!Config.t.trace_capacity} > 0 on a run, then fetch the trace
    with [last_trace ()]; export with {!Perfetto} (opens directly in
    chrome://tracing / ui.perfetto.dev) or summarise with
    {!Trace_analysis}. *)

module Trace = Nowa_trace.Trace
module Trace_event = Nowa_trace.Event
module Trace_analysis = Nowa_trace.Trace_analysis
module Perfetto = Nowa_trace.Perfetto

module type RUNTIME = Nowa_runtime.Runtime_intf.S

module Presets = Nowa_runtime.Presets

(** {1 The default (wait-free) runtime} *)

include RUNTIME

(** {1 Structured helpers}

    Divide-and-conquer skeletons expressed on the spawn/sync primitives,
    usable with any runtime preset via {!Ops}. *)

module Ops (R : RUNTIME) : sig
  val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  (** Run two computations in potential parallelism and return both. *)

  val parallel_for : ?grain:int -> int -> int -> (int -> unit) -> unit
  (** [parallel_for lo hi f] applies [f] to each index of [\[lo, hi)] by
      recursive halving; ranges of at most [grain] (default 1) indices
      run serially. *)

  val parallel_reduce :
    ?grain:int -> int -> int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
    init:'a -> 'a
  (** Recursive-halving reduction of [map i] over [\[lo, hi)]. *)

  val map_array : ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
end

(** The helpers, pre-instantiated for the default runtime. *)

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
val parallel_for : ?grain:int -> int -> int -> (int -> unit) -> unit

val parallel_reduce :
  ?grain:int -> int -> int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
  init:'a -> 'a

val map_array : ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
