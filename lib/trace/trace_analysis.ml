(** Strand-level analysis over a drained trace: the paper's "where does
    scheduler time go" evidence (Figure 8 style) regenerated from our own
    runs instead of end-of-run aggregate counters.

    Definitions:
    - {e busy} time is the union of task slices (task-start .. task-end);
      everything else inside the trace span is {e scheduler} time —
      stealing, backoff, idling at syncs.  Slices cut by the ring's
      truncation (a start overwritten after the ring wrapped, or an end
      past a live snapshot's edge) are clamped to the surviving window
      rather than discarded, so a long serial task that laps its ring
      still registers as busy time.
    - a {e steal latency} sample is the time from a worker going idle
      (its last task-end, or its first steal-attempt if it never ran a
      task yet) to its next successful steal-commit: the "how long does
      work take to arrive" tail the aggregate counters cannot show.
    - an {e idle gap} is task-end to the next task-start on the same
      worker — convoying and serial-tail stretches show up here. *)

type worker_summary = {
  worker : int;
  events : int;
  dropped : int;
  tasks : int;
  spawns : int;
  steals : int;
  steal_attempts : int;
  suspends : int;
  parks : int;
  parked_ns : int;  (** time spent blocked on the worker's condvar *)
  req_submits : int;  (** serving-layer requests injected from this worker *)
  req_claims : int;  (** requests this worker claimed as combiner *)
  req_defers : int;  (** requests it parked behind a bucket loan *)
  busy_ns : int;
  sched_ns : int;
  utilization : float;  (** busy / span of the whole trace *)
  steal_latencies_ns : float list;
  idle_gaps_ns : float list;
}

type t = {
  span_ns : int;  (** first event to last event across all workers *)
  total_events : int;
  total_dropped : int;
  workers : worker_summary array;
  utilization : float;  (** mean worker utilization *)
  busy_ns : int;
  sched_ns : int;
  steal_p50_ns : float;
  steal_p95_ns : float;
  steal_p99_ns : float;
  idle_histogram : (string * int) list;  (** log-decade idle-gap buckets *)
}

let hist_buckets =
  [
    ("<1us", 1_000.0);
    ("1-10us", 10_000.0);
    ("10-100us", 100_000.0);
    ("100us-1ms", 1_000_000.0);
    ("1-10ms", 10_000_000.0);
    (">10ms", infinity);
  ]

let histogram gaps =
  let counts = Array.make (List.length hist_buckets) 0 in
  List.iter
    (fun g ->
      let rec place i = function
        | [] -> ()
        | (_, hi) :: rest -> if g < hi then counts.(i) <- counts.(i) + 1 else place (i + 1) rest
      in
      place 0 hist_buckets)
    gaps;
  List.mapi (fun i (label, _) -> (label, counts.(i))) hist_buckets

let summarize_worker ~span_ns ~t0 ~dropped w (evs : Event.t array) =
  ignore t0;
  let nev = Array.length evs in
  let first_ts = if nev > 0 then evs.(0).Event.ts else 0 in
  let last_ts = if nev > 0 then evs.(nev - 1).Event.ts else 0 in
  let tasks = ref 0 and spawns = ref 0 and steals = ref 0 in
  let attempts = ref 0 and suspends = ref 0 in
  let parks = ref 0 and parked = ref 0 in
  let submits = ref 0 and claims = ref 0 and defers = ref 0 in
  let busy = ref 0 in
  let open_start = ref None in
  let park_since = ref None in
  let idle_since = ref None in
  let latencies = ref [] and gaps = ref [] in
  Array.iter
    (fun e ->
      match e.Event.kind with
      | Event.Task_start ->
        incr tasks;
        (match !idle_since with
        | Some t -> gaps := float_of_int (e.Event.ts - t) :: !gaps
        | None -> ());
        idle_since := None;
        open_start := Some e.Event.ts
      | Event.Task_end ->
        (match !open_start with
        | Some s ->
          busy := !busy + (e.Event.ts - s);
          open_start := None
        | None ->
          (* An end with no start in the surviving window: when the ring
             provably wrapped ([dropped > 0]) the matching [Task_start]
             was overwritten — a long serial task (e.g. a steal-free run
             whose spawn events alone lap the ring) looks exactly like
             this.  The slice covered at least the whole observed prefix,
             so count from the window's first event; without drops an
             unmatched end is a malformed stream and stays ignored. *)
          if dropped > 0 then begin
            incr tasks;
            busy := !busy + (e.Event.ts - first_ts)
          end);
        idle_since := Some e.Event.ts
      | Event.Spawn -> incr spawns
      | Event.Steal_attempt ->
        incr attempts;
        if !idle_since = None && !open_start = None then
          idle_since := Some e.Event.ts
      | Event.Steal_commit ->
        incr steals;
        (match !idle_since with
        | Some t -> latencies := float_of_int (e.Event.ts - t) :: !latencies
        | None -> ())
      | Event.Suspend -> incr suspends
      | Event.Park ->
        incr parks;
        park_since := Some e.Event.ts
      | Event.Unpark ->
        (match !park_since with
        | Some t ->
          parked := !parked + (e.Event.ts - t);
          park_since := None
        | None -> ())
      | Event.Req_submit -> incr submits
      | Event.Req_claim -> incr claims
      | Event.Req_defer -> incr defers
      | Event.Steal_abort | Event.Lost_continuation | Event.Resume
      | Event.Stack_acquire | Event.Stack_release | Event.Req_handoff
      | Event.Req_apply | Event.Req_done ->
        ())
    evs;
  (* A slice still open at the end of the window (live snapshot, or a
     worker cut down mid-task) was busy at least until its last observed
     event; counting to [last_ts] undercounts but never exceeds the
     span. *)
  (match !open_start with
  | Some s -> busy := !busy + (last_ts - s)
  | None -> ());
  let busy = !busy in
  let span = max 1 span_ns in
  {
    worker = w;
    events = Array.length evs;
    dropped;
    tasks = !tasks;
    spawns = !spawns;
    steals = !steals;
    steal_attempts = !attempts;
    suspends = !suspends;
    parks = !parks;
    parked_ns = !parked;
    req_submits = !submits;
    req_claims = !claims;
    req_defers = !defers;
    busy_ns = busy;
    sched_ns = max 0 (span_ns - busy);
    utilization = float_of_int busy /. float_of_int span;
    steal_latencies_ns = List.rev !latencies;
    idle_gaps_ns = List.rev !gaps;
  }

let summarize (tr : Trace.t) =
  let per_worker = Trace.per_worker_events tr in
  let t0 = ref max_int and t1 = ref min_int in
  Array.iter
    (fun evs ->
      Array.iter
        (fun e ->
          if e.Event.ts < !t0 then t0 := e.Event.ts;
          if e.Event.ts > !t1 then t1 := e.Event.ts)
        evs)
    per_worker;
  let span_ns = if !t1 >= !t0 then !t1 - !t0 else 0 in
  let workers : worker_summary array =
    Array.mapi
      (fun w evs ->
        summarize_worker ~span_ns ~t0:!t0
          ~dropped:(Ring.dropped (Trace.worker tr w))
          w evs)
      per_worker
  in
  let fold f init = Array.fold_left (fun acc (w : worker_summary) -> f acc w) init workers in
  let all_latencies = fold (fun acc w -> acc @ w.steal_latencies_ns) [] in
  let all_gaps = fold (fun acc w -> acc @ w.idle_gaps_ns) [] in
  let busy = fold (fun acc w -> acc + w.busy_ns) 0 in
  let sched = fold (fun acc w -> acc + w.sched_ns) 0 in
  let nworkers = max 1 (Array.length workers) in
  let open Nowa_util.Stats in
  {
    span_ns;
    total_events = fold (fun acc w -> acc + w.events) 0;
    total_dropped = Trace.dropped tr;
    workers;
    utilization = fold (fun acc w -> acc +. w.utilization) 0.0 /. float_of_int nworkers;
    busy_ns = busy;
    sched_ns = sched;
    steal_p50_ns = percentile 50.0 all_latencies;
    steal_p95_ns = percentile 95.0 all_latencies;
    steal_p99_ns = percentile 99.0 all_latencies;
    idle_histogram = histogram all_gaps;
  }

let pp_ns ppf ns =
  if Float.is_nan ns then Format.fprintf ppf "-"
  else if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.1fus" (ns /. 1e3)
  else Format.fprintf ppf "%.2fms" (ns /. 1e6)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>trace: span=%.3fms events=%d dropped=%d utilization=%.1f%% \
     work/sched=%.3fms/%.3fms@,steal latency p50=%a p95=%a p99=%a@,"
    (float_of_int t.span_ns /. 1e6)
    t.total_events t.total_dropped (100.0 *. t.utilization)
    (float_of_int t.busy_ns /. 1e6)
    (float_of_int t.sched_ns /. 1e6)
    pp_ns t.steal_p50_ns pp_ns t.steal_p95_ns pp_ns t.steal_p99_ns;
  Format.fprintf ppf "idle gaps:";
  List.iter (fun (label, n) -> if n > 0 then Format.fprintf ppf " %s:%d" label n) t.idle_histogram;
  Format.fprintf ppf "@,";
  Array.iter
    (fun w ->
      Format.fprintf ppf
        "  w%d: util=%5.1f%% tasks=%d spawns=%d steals=%d/%d suspends=%d \
         events=%d%s@,"
        w.worker (100.0 *. w.utilization) w.tasks w.spawns w.steals
        w.steal_attempts w.suspends w.events
        ((if w.parks > 0 then
            Printf.sprintf " parks=%d/%.2fms" w.parks
              (float_of_int w.parked_ns /. 1e6)
          else "")
        ^ (if w.req_claims > 0 || w.req_submits > 0 then
             Printf.sprintf " reqs=%d/%d/%d" w.req_submits w.req_claims
               w.req_defers
           else "")
        ^
        if w.dropped > 0 then Printf.sprintf " dropped=%d" w.dropped else ""))
    t.workers;
  Format.fprintf ppf "@]"
