(** Chrome trace-event / Perfetto JSON exporter.

    Emits the JSON object format ({"traceEvents":[...]}) that both
    chrome://tracing and ui.perfetto.dev load directly: one row (tid) per
    worker, task executions as complete slices ("ph":"X"), every other
    scheduler event as a thread-scoped instant ("ph":"i").  Timestamps
    are rebased to the earliest event and written in microseconds, as the
    format requires; virtual-time wsim traces go through unchanged (their
    "microseconds" are virtual too).

    No JSON library is needed: every value written is an int, a float or
    a fixed identifier-safe string, so the quoting below is total. *)

let buf_event b ~first ~name ~ph ~ts_us ~pid ~tid extra =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}"
       name ph ts_us pid tid extra)

let buf_meta b ~first ~name ~pid ?tid value =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  let tid = match tid with None -> "" | Some t -> Printf.sprintf ",\"tid\":%d" t in
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d%s,\"args\":{\"name\":\"%s\"}}"
       name pid tid value)

let us_of_ns ns = float_of_int ns /. 1e3

(** Render per-worker event arrays to a Buffer.  [process_name] labels
    the single process row ("nowa", "wsim:nowa/256w", ...).
    [worker_label] names each worker's track — the default is
    ["worker %d"]; a pool-aware caller (ISSUE 10) passes the topology's
    labels (["parse/0"], ...) so a multi-pool trace reads by pool.
    [counters] adds named counter tracks ("ph":"C") — e.g. the
    queue-depth-per-resource tracks of the convoy detector — rebased
    onto the same timeline as the events.  Taking plain event arrays
    (rather than a {!Trace.t}) lets the flight recorder export a frozen
    {!Trace.freeze} window through the same code path as a post-join
    drain. *)
let default_worker_label w = Printf.sprintf "worker %d" w

let events_to_buffer ?(process_name = "nowa")
    ?(worker_label = default_worker_label) ?(counters = [])
    (per_worker : Event.t array array) =
  let b = Buffer.create 65536 in
  let first = ref true in
  let pid = 0 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  buf_meta b ~first ~name:"process_name" ~pid process_name;
  let t0 =
    Array.fold_left
      (fun acc evs ->
        if Array.length evs > 0 then min acc evs.(0).Event.ts else acc)
      max_int per_worker
    |> fun m -> if m = max_int then 0 else m
  in
  Array.iteri
    (fun w evs ->
      if Array.length evs > 0 then
        buf_meta b ~first ~name:"thread_name" ~pid ~tid:w (worker_label w);
      (* Pair task-start/task-end into complete slices; a start lost to
         ring overwrite leaves its end unmatched, which we drop rather
         than emit a malformed slice. *)
      let open_start = ref None in
      (* Park/unpark pair the same way into "parked" slices, so the idle
         troughs are visible as filled spans rather than instant pairs. *)
      let open_park = ref None in
      Array.iter
        (fun e ->
          let ts_us = us_of_ns (e.Event.ts - t0) in
          match e.Event.kind with
          | Event.Task_start -> open_start := Some ts_us
          | Event.Task_end -> (
            match !open_start with
            | Some s ->
              open_start := None;
              buf_event b ~first ~name:"task" ~ph:"X" ~ts_us:s ~pid ~tid:w
                (Printf.sprintf ",\"dur\":%.3f" (Float.max 0.0 (ts_us -. s)))
            | None -> ())
          | Event.Park -> open_park := Some ts_us
          | Event.Unpark -> (
            match !open_park with
            | Some s ->
              open_park := None;
              buf_event b ~first ~name:"parked" ~ph:"X" ~ts_us:s ~pid ~tid:w
                (Printf.sprintf ",\"dur\":%.3f" (Float.max 0.0 (ts_us -. s)))
            | None ->
              buf_event b ~first ~name:"unpark" ~ph:"i" ~ts_us ~pid ~tid:w
                ",\"s\":\"t\"")
          | (Event.Req_submit | Event.Req_claim | Event.Req_apply) as k ->
            (* Request lifecycle: an instant for the station plus a flow
               event sharing id = rid, so Perfetto draws arrows
               submit -> claim -> apply across worker tracks. *)
            let rid = e.Event.arg2 in
            buf_event b ~first ~name:(Event.name k) ~ph:"i" ~ts_us ~pid ~tid:w
              (Printf.sprintf ",\"s\":\"t\",\"args\":{\"shard\":%d,\"req\":%d}"
                 e.Event.arg rid);
            let ph, extra =
              match k with
              | Event.Req_submit -> ("s", "")
              | Event.Req_claim -> ("t", "")
              | _ -> ("f", ",\"bp\":\"e\"")
            in
            buf_event b ~first ~name:"req" ~ph ~ts_us ~pid ~tid:w
              (Printf.sprintf ",\"cat\":\"req\",\"id\":%d%s" rid extra)
          | (Event.Req_defer | Event.Req_handoff | Event.Req_done) as k ->
            buf_event b ~first ~name:(Event.name k) ~ph:"i" ~ts_us ~pid ~tid:w
              (Printf.sprintf ",\"s\":\"t\",\"args\":{\"shard\":%d,\"req\":%d}"
                 e.Event.arg e.Event.arg2)
          | k ->
            let args =
              match k with
              | Event.Steal_attempt | Event.Steal_commit | Event.Steal_abort ->
                Printf.sprintf ",\"s\":\"t\",\"args\":{\"victim\":%d}" e.Event.arg
              | _ -> ",\"s\":\"t\""
            in
            buf_event b ~first ~name:(Event.name k) ~ph:"i" ~ts_us ~pid ~tid:w
              args)
        evs)
    per_worker;
  List.iter
    (fun (name, samples) ->
      Array.iter
        (fun (ts, value) ->
          if not !first then Buffer.add_string b ",\n";
          first := false;
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{\"value\":%g}}"
               name
               (us_of_ns (ts - t0))
               pid value))
        samples)
    counters;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  b

let to_buffer ?process_name ?worker_label ?counters (t : Trace.t) =
  events_to_buffer ?process_name ?worker_label ?counters
    (Trace.per_worker_events t)

(** Write per-worker event arrays (e.g. a {!Trace.freeze} window) as a
    Perfetto JSON file. *)
let write_events_file ?process_name ?worker_label ?counters path per_worker =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      Buffer.output_buffer oc
        (events_to_buffer ?process_name ?worker_label ?counters per_worker))

let to_string ?process_name ?worker_label ?counters t =
  Buffer.contents (to_buffer ?process_name ?worker_label ?counters t)

let write_channel ?process_name ?worker_label ?counters oc t =
  Buffer.output_buffer oc (to_buffer ?process_name ?worker_label ?counters t)

let write_file ?process_name ?worker_label ?counters path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_channel ?process_name ?worker_label ?counters oc t)
