(** A trace: one wait-free event ring per worker, created by a runtime
    when [Config.trace_capacity > 0] and drained after the domains join.

    The same container carries real wall-clock traces from the OCaml 5
    engines and virtual-time traces from the {!Nowa_dag.Wsim} simulator —
    both flow through the same {!Perfetto} exporter and
    {!Trace_analysis} summaries. *)

type clock = Wall | Virtual

type t = { rings : Ring.t array; capacity : int; clock : clock }

let create ?(clock = Wall) ~workers ~capacity () =
  let workers = max 1 workers in
  {
    rings = Array.init workers (fun _ -> Ring.create ~capacity);
    capacity;
    clock;
  }

let workers t = Array.length t.rings

(** The ring a worker writes to.  Out-of-range ids get the shared
    disabled ring so integration points never need a bounds check. *)
let worker t i =
  if i >= 0 && i < Array.length t.rings then t.rings.(i) else Ring.disabled

let dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
let emitted t = Array.fold_left (fun acc r -> acc + Ring.emitted r) 0 t.rings

(** Per-worker event arrays, each oldest-first (the order the worker
    emitted them, which for wall traces is also timestamp order thanks to
    the per-domain monotonic clamp in {!Nowa_util.Clock}). *)
let per_worker_events t =
  Array.mapi (fun i r -> Ring.events r ~worker:i) t.rings

(** Live freeze: per-worker event arrays sampled from the rings while
    their writers may still be running, via {!Ring.snapshot}.  [window]
    bounds the events kept per worker.  Returns the arrays (each
    oldest-first) and the total number of slots discarded as torn or
    recycled mid-copy. *)
let freeze ?window t =
  let dropped = ref 0 in
  let evs =
    Array.mapi
      (fun i r ->
        let arr, d = Ring.snapshot ?window r ~worker:i in
        dropped := !dropped + d;
        arr)
      t.rings
  in
  (evs, !dropped)

(** All events merged and sorted by timestamp (stable across workers). *)
let events t =
  let all = Array.concat (Array.to_list (per_worker_events t)) in
  let arr = Array.copy all in
  Array.stable_sort (fun a b -> compare a.Event.ts b.Event.ts) arr;
  arr

(** Earliest timestamp in the trace, or 0 if empty; used by the exporter
    to rebase timestamps near zero. *)
let base_ts t =
  Array.fold_left
    (fun acc r ->
      if Ring.length r > 0 then
        let evs = Ring.events r ~worker:0 in
        min acc evs.(0).Event.ts
      else acc)
    max_int t.rings
  |> fun m -> if m = max_int then 0 else m
