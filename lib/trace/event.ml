(** Scheduler event vocabulary for the per-worker trace rings.

    Every event the engines emit maps to one of these kinds plus a single
    integer argument (victim id for steal events, otherwise 0).  Kinds are
    stored in the ring as small ints so that the hot-path write touches
    only int arrays — no allocation, no boxing. *)

type kind =
  | Task_start  (** a task/strand begins executing on this worker *)
  | Task_end  (** the task returned control to the scheduler loop *)
  | Spawn  (** a fork point: continuation made stealable *)
  | Steal_attempt  (** probe of a victim deque (arg = victim id) *)
  | Steal_commit  (** successful steal (arg = victim id) *)
  | Steal_abort  (** failed attempt: victim empty or race lost *)
  | Lost_continuation  (** own pop missed: the continuation was stolen *)
  | Suspend  (** strand suspended at an explicit sync *)
  | Resume  (** a suspended frame's continuation resumed *)
  | Stack_acquire  (** worker acquired a stack from the pool *)
  | Stack_release  (** worker released its stack to the pool *)
  | Park  (** idle worker blocked on its condition variable *)
  | Unpark  (** parked worker woke up and rejoined stealing *)

let to_int = function
  | Task_start -> 0
  | Task_end -> 1
  | Spawn -> 2
  | Steal_attempt -> 3
  | Steal_commit -> 4
  | Steal_abort -> 5
  | Lost_continuation -> 6
  | Suspend -> 7
  | Resume -> 8
  | Stack_acquire -> 9
  | Stack_release -> 10
  | Park -> 11
  | Unpark -> 12

let of_int = function
  | 0 -> Task_start
  | 1 -> Task_end
  | 2 -> Spawn
  | 3 -> Steal_attempt
  | 4 -> Steal_commit
  | 5 -> Steal_abort
  | 6 -> Lost_continuation
  | 7 -> Suspend
  | 8 -> Resume
  | 9 -> Stack_acquire
  | 10 -> Stack_release
  | 11 -> Park
  | 12 -> Unpark
  | n -> invalid_arg (Printf.sprintf "Event.of_int: %d" n)

let name = function
  | Task_start -> "task-start"
  | Task_end -> "task-end"
  | Spawn -> "spawn"
  | Steal_attempt -> "steal-attempt"
  | Steal_commit -> "steal-commit"
  | Steal_abort -> "steal-abort"
  | Lost_continuation -> "lost-continuation"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Stack_acquire -> "stack-acquire"
  | Stack_release -> "stack-release"
  | Park -> "park"
  | Unpark -> "unpark"

type t = { ts : int;  (** nanoseconds (wall or virtual) *) worker : int; kind : kind; arg : int }

let pp ppf e =
  Format.fprintf ppf "%d @ %dns %s(%d)" e.worker e.ts (name e.kind) e.arg
