(** Scheduler event vocabulary for the per-worker trace rings.

    Every event the engines emit maps to one of these kinds plus two
    integer arguments.  [arg] carries the victim id for steal events or
    the shard id for request events; [arg2] carries the request id for
    the [Req_*] family and 0 everywhere else.  Kinds are stored in the
    ring as small ints so that the hot-path write touches only int
    arrays — no allocation, no boxing. *)

type kind =
  | Task_start  (** a task/strand begins executing on this worker *)
  | Task_end  (** the task returned control to the scheduler loop *)
  | Spawn  (** a fork point: continuation made stealable *)
  | Steal_attempt  (** probe of a victim deque (arg = victim id) *)
  | Steal_commit  (** successful steal (arg = victim id) *)
  | Steal_abort  (** failed attempt: victim empty or race lost *)
  | Lost_continuation  (** own pop missed: the continuation was stolen *)
  | Suspend  (** strand suspended at an explicit sync *)
  | Resume  (** a suspended frame's continuation resumed *)
  | Stack_acquire  (** worker acquired a stack from the pool *)
  | Stack_release  (** worker released its stack to the pool *)
  | Park  (** idle worker blocked on its condition variable *)
  | Unpark  (** parked worker woke up and rejoined stealing *)
  | Req_submit  (** request pushed into a shard mailbox (arg = shard, arg2 = rid) *)
  | Req_claim  (** combiner picked the request out of a drained batch *)
  | Req_defer  (** request parked behind a bucket loan (arg = shard, arg2 = rid) *)
  | Req_handoff  (** cross-shard bucket grant serving this txn (arg = shard, arg2 = rid) *)
  | Req_apply  (** request's operation applied to the store *)
  | Req_done  (** reply observed by the injector; end of the span *)

let to_int = function
  | Task_start -> 0
  | Task_end -> 1
  | Spawn -> 2
  | Steal_attempt -> 3
  | Steal_commit -> 4
  | Steal_abort -> 5
  | Lost_continuation -> 6
  | Suspend -> 7
  | Resume -> 8
  | Stack_acquire -> 9
  | Stack_release -> 10
  | Park -> 11
  | Unpark -> 12
  | Req_submit -> 13
  | Req_claim -> 14
  | Req_defer -> 15
  | Req_handoff -> 16
  | Req_apply -> 17
  | Req_done -> 18

let of_int = function
  | 0 -> Task_start
  | 1 -> Task_end
  | 2 -> Spawn
  | 3 -> Steal_attempt
  | 4 -> Steal_commit
  | 5 -> Steal_abort
  | 6 -> Lost_continuation
  | 7 -> Suspend
  | 8 -> Resume
  | 9 -> Stack_acquire
  | 10 -> Stack_release
  | 11 -> Park
  | 12 -> Unpark
  | 13 -> Req_submit
  | 14 -> Req_claim
  | 15 -> Req_defer
  | 16 -> Req_handoff
  | 17 -> Req_apply
  | 18 -> Req_done
  | n -> invalid_arg (Printf.sprintf "Event.of_int: %d" n)

let name = function
  | Task_start -> "task-start"
  | Task_end -> "task-end"
  | Spawn -> "spawn"
  | Steal_attempt -> "steal-attempt"
  | Steal_commit -> "steal-commit"
  | Steal_abort -> "steal-abort"
  | Lost_continuation -> "lost-continuation"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Stack_acquire -> "stack-acquire"
  | Stack_release -> "stack-release"
  | Park -> "park"
  | Unpark -> "unpark"
  | Req_submit -> "req-submit"
  | Req_claim -> "req-claim"
  | Req_defer -> "req-defer"
  | Req_handoff -> "req-handoff"
  | Req_apply -> "req-apply"
  | Req_done -> "req-done"

type t = {
  ts : int;  (** nanoseconds (wall or virtual) *)
  worker : int;
  kind : kind;
  arg : int;
  arg2 : int;  (** request id for [Req_*] events; 0 otherwise *)
}

(* Timestamp first so a dumped ring reads chronologically and greps by
   "ns w<id>" stay anchored. *)
let pp ppf e =
  Format.fprintf ppf "%dns w%d %s(%d,%d)" e.ts e.worker (name e.kind) e.arg
    e.arg2
