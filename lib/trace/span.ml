(** Request-scoped span ledgers for the serving layer.

    A span collector owns flat int arrays indexed by a compact request id
    (rid), allocated from a plain fetch-and-add counter at injection time
    — no SplitMix, no hashing, ids are dense so every per-request field
    is an O(1) array slot.  As a request moves through the serving
    pipeline each station calls {!mark}/{!claim}/{!finish}, which close
    the interval since the previous mark into a named phase:

    - [Sched_wait]    scheduled arrival -> mailbox push (injector lag,
                      spawn, steal, park-wake latency)
    - [Mailbox_wait]  mailbox push -> first combiner claim
    - [Loan_defer]    parked behind a bucket loan -> re-claim
    - [Handoff_wait]  txn claim -> all cross-shard grants arrived
    - [Exec]          store operation itself
    - [Reply]         outcome published -> injector observes it

    {b Conservation.}  Every write advances the single per-request
    watermark [last.(rid)] by exactly the amount it banks, so the phase
    sums telescope: [sum_p phase_ns(rid,p) = done_ns(rid) -
    sched_ns(rid)] holds {e exactly} (integer nanoseconds, zero
    accounting error) for every finished request, not just in
    expectation.  The checker {!conservation_error} returns the residual,
    which tests pin to 0.

    {b Memory model.}  The arrays are plain (non-atomic), yet writes come
    from whichever domain holds the request at that moment.  This is
    data-race-free because at any instant exactly one domain owns a
    request, and every ownership transfer is an atomic edge that the
    marks piggyback on: injector -> worker via the runtime deque publish,
    worker -> combiner via the mailbox Treiber CAS / drain exchange,
    combiner -> combiner via the loan reattach push, and combiner ->
    injector via the outcome [Atomic.set]/[get].  Each release/acquire
    pair orders the plain stores before the next reader's loads.

    {b Tail reservoir.}  {!finish} offers the end-to-end latency to a
    bounded top-K-by-latency reservoir of K packed atomic words
    [(latency << rid_bits) | (rid+1)].  The common-case claim is
    wait-free: one load of a cached threshold word (kept [<=] the true
    reservoir minimum) rejects every request that cannot displace the
    current minimum.  Slower requests replace the observed minimum slot
    by CAS; a failed CAS retries the scan, and since slot values only
    ever grow the loop terminates as soon as the candidate no longer
    beats the minimum — so the final contents are exactly the top-K
    offered latencies (ties at the boundary resolved arbitrarily). *)

type phase = Sched_wait | Mailbox_wait | Loan_defer | Handoff_wait | Exec | Reply

let phases = [| Sched_wait; Mailbox_wait; Loan_defer; Handoff_wait; Exec; Reply |]
let n_phases = Array.length phases

let phase_index = function
  | Sched_wait -> 0
  | Mailbox_wait -> 1
  | Loan_defer -> 2
  | Handoff_wait -> 3
  | Exec -> 4
  | Reply -> 5

let phase_name = function
  | Sched_wait -> "sched_wait"
  | Mailbox_wait -> "mailbox_wait"
  | Loan_defer -> "loan_defer"
  | Handoff_wait -> "handoff_wait"
  | Exec -> "exec"
  | Reply -> "reply"

(* Per-request flag bits. *)
let f_claimed = 1
let f_measured = 2
let f_finished = 4
let f_dropped = 8

(* Tail-reservoir packing: latency in the high bits, rid+1 in the low
   [rid_bits] (0 = empty slot).  21 bits bound the collector capacity at
   ~2M requests per run; latencies clamp at ~2^41 ns (~36 min). *)
let rid_bits = 21
let max_rid = (1 lsl rid_bits) - 2
let max_lat = (1 lsl (Sys.int_size - 1 - rid_bits)) - 1
let pack ~lat ~rid = ((min lat max_lat) lsl rid_bits) lor (rid + 1)
let lat_of p = p asr rid_bits
let rid_of p = (p land ((1 lsl rid_bits) - 1)) - 1

type t = {
  on : bool;
  cap : int;
  next : int Atomic.t;  (* rid allocator: plain fetch-and-add *)
  overflow : int Atomic.t;  (* allocs refused because cap was reached *)
  sched : int array;  (* scheduled-arrival ns (absolute) *)
  last : int array;  (* watermark: ts of the request's previous mark *)
  fin : int array;  (* completion ns; meaningful once finished *)
  ledger : int array;  (* cap * n_phases accumulated ns *)
  cls : int array;  (* op-class index from the workload *)
  combined_by : int array;  (* worker id of the last claiming combiner *)
  defers : int array;  (* times parked behind a bucket loan *)
  flags : int array;
  tail : int Atomic.t array;  (* top-K packed (lat, rid) slots *)
  threshold : int Atomic.t;  (* cached lower bound on the tail minimum *)
}

let disabled =
  {
    on = false;
    cap = 0;
    next = Atomic.make 0;
    overflow = Atomic.make 0;
    sched = [||];
    last = [||];
    fin = [||];
    ledger = [||];
    cls = [||];
    combined_by = [||];
    defers = [||];
    flags = [||];
    tail = [||];
    threshold = Atomic.make 0;
  }

let create ?(tail = 64) ~capacity () =
  if capacity <= 0 then disabled
  else begin
    let cap = min capacity (max_rid + 1) in
    let tail = max 1 tail in
    {
      on = true;
      cap;
      next = Atomic.make 0;
      overflow = Atomic.make 0;
      sched = Array.make cap 0;
      last = Array.make cap 0;
      fin = Array.make cap 0;
      ledger = Array.make (cap * n_phases) 0;
      cls = Array.make cap 0;
      combined_by = Array.make cap (-1);
      defers = Array.make cap 0;
      flags = Array.make cap 0;
      tail = Array.init tail (fun _ -> Atomic.make 0);
      threshold = Atomic.make 0;
    }
  end

let enabled t = t.on
let capacity t = t.cap
let allocated t = if t.on then min (Atomic.get t.next) t.cap else 0
let overflowed t = Atomic.get t.overflow

(** Allocate a rid for a request scheduled to arrive at [sched_ns].
    Returns [-1] (ignored by every other entry point) when the collector
    is disabled or full. *)
let alloc t ~cls ~measured ~sched_ns =
  if not t.on then -1
  else begin
    let rid = Atomic.fetch_and_add t.next 1 in
    if rid >= t.cap then begin
      Atomic.incr t.overflow;
      -1
    end
    else begin
      t.sched.(rid) <- sched_ns;
      t.last.(rid) <- sched_ns;
      t.cls.(rid) <- cls;
      t.flags.(rid) <- (if measured then f_measured else 0);
      rid
    end
  end

let[@inline] tracked t rid = t.on && rid >= 0 && rid < t.cap

(** Bank [ts - last.(rid)] into [phase] and advance the watermark. *)
let[@inline] mark_at t rid phase ~ts =
  if tracked t rid then begin
    let i = (rid * n_phases) + phase_index phase in
    t.ledger.(i) <- t.ledger.(i) + (ts - t.last.(rid));
    t.last.(rid) <- ts
  end

let[@inline] mark t rid phase =
  if tracked t rid then mark_at t rid phase ~ts:(Nowa_util.Clock.now_ns ())

(** A combiner picked the request out of a drained batch.  The first
    claim closes [Mailbox_wait]; a re-claim after a bucket-loan deferral
    closes [Loan_defer].  Records the claiming worker either way. *)
let claim t rid ~worker =
  if tracked t rid then begin
    let f = t.flags.(rid) in
    if f land f_claimed = 0 then begin
      t.flags.(rid) <- f lor f_claimed;
      mark t rid Mailbox_wait
    end
    else mark t rid Loan_defer;
    t.combined_by.(rid) <- worker
  end

let note_defer t rid = if tracked t rid then t.defers.(rid) <- t.defers.(rid) + 1
let drop t rid = if tracked t rid then t.flags.(rid) <- t.flags.(rid) lor f_dropped

(* --- tail reservoir ----------------------------------------------------- *)

(** Offer a finished request to the top-K reservoir.  Exposed for the
    concurrency tests; {!finish} calls it on every measured request. *)
let offer_tail t ~rid ~lat_ns =
  if t.on && Array.length t.tail > 0 then begin
    let lat = max 0 lat_ns in
    let k = Array.length t.tail in
    let rec attempt () =
      (* Wait-free fast path: one load; threshold is always <= the true
         reservoir minimum, so rejection here is never wrong. *)
      if lat > Atomic.get t.threshold then begin
        let mi = ref 0 and mv = ref (Atomic.get t.tail.(0)) in
        for i = 1 to k - 1 do
          let v = Atomic.get t.tail.(i) in
          if lat_of v < lat_of !mv then begin
            mi := i;
            mv := v
          end
        done;
        if lat > lat_of !mv then
          if Atomic.compare_and_set t.tail.(!mi) !mv (pack ~lat ~rid) then begin
            (* Re-derive a threshold from a fresh scan.  Slot values only
               grow, so the scanned minimum is <= every future minimum
               and the cached word stays a sound lower bound; CAS up only
               so concurrent raisers never regress it. *)
            let m = ref max_int in
            for i = 0 to k - 1 do
              m := min !m (lat_of (Atomic.get t.tail.(i)))
            done;
            let rec bump () =
              let cur = Atomic.get t.threshold in
              if !m > cur && not (Atomic.compare_and_set t.threshold cur !m)
              then bump ()
            in
            bump ()
          end
          else attempt ()
      end
    in
    attempt ()
  end

(** The reservoir contents, slowest first: [(rid, latency_ns)]. *)
let tail_entries t =
  if not t.on then []
  else
    Array.to_list t.tail
    |> List.filter_map (fun s ->
           let p = Atomic.get s in
           if p = 0 then None else Some (rid_of p, lat_of p))
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let tail_threshold t = Atomic.get t.threshold

(** Close [Reply] at [ts] and record completion; measured requests are
    offered to the tail reservoir. *)
let finish t rid ~ts =
  if tracked t rid then begin
    mark_at t rid Reply ~ts;
    t.fin.(rid) <- ts;
    let f = t.flags.(rid) lor f_finished in
    t.flags.(rid) <- f;
    if f land f_measured <> 0 then
      offer_tail t ~rid ~lat_ns:(ts - t.sched.(rid))
  end

(* --- accessors ----------------------------------------------------------- *)

let phase_ns t rid phase =
  if tracked t rid then t.ledger.((rid * n_phases) + phase_index phase) else 0

let sched_ns t rid = if tracked t rid then t.sched.(rid) else 0
let done_ns t rid = if tracked t rid then t.fin.(rid) else 0
let cls_of t rid = if tracked t rid then t.cls.(rid) else 0
let combiner_of t rid = if tracked t rid then t.combined_by.(rid) else -1
let defers_of t rid = if tracked t rid then t.defers.(rid) else 0
let finished t rid = tracked t rid && t.flags.(rid) land f_finished <> 0
let measured t rid = tracked t rid && t.flags.(rid) land f_measured <> 0
let was_dropped t rid = tracked t rid && t.flags.(rid) land f_dropped <> 0

let total_ns t rid =
  if finished t rid then t.fin.(rid) - t.sched.(rid) else 0

(** [total_ns - sum of phases]; exactly 0 for every finished request (the
    marks telescope), any other value is an accounting bug. *)
let conservation_error t rid =
  if not (finished t rid) then 0
  else begin
    let sum = ref 0 in
    for p = 0 to n_phases - 1 do
      sum := !sum + t.ledger.((rid * n_phases) + p)
    done;
    total_ns t rid - !sum
  end
