(** Fixed-capacity ring buffer of scheduler events, owned by one worker.

    Wait-freedom is by construction: only the owning worker ever writes,
    nothing reads until the domains have joined, so an [emit] is a handful
    of int-array stores and one index bump — no CAS, no lock, no
    allocation.  When full the ring overwrites the oldest entries
    (monotonic head index, power-of-two capacity, mask addressing), so a
    long run keeps the most recent window instead of failing.

    A disabled ring costs a single flag check per emission site and
    nothing else; engines hold one unconditionally so the hot path has no
    option match. *)

type t = {
  enabled : bool;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  ts : int array;  (* timestamp (ns) per slot *)
  kinds : int array;  (* Event.to_int per slot *)
  args : int array;  (* event argument per slot *)
  args2 : int array;  (* second argument (request id) per slot *)
  chk : int array;  (* mixed hash of the slot's four words, for live snapshots *)
  mutable head : int;  (* total events ever emitted (not wrapped) *)
  _pre : int array;  (* Padding spacers: keep this worker's hot state *)
  _post : int array;  (* on cache lines no other worker's ring shares *)
}

let disabled =
  {
    enabled = false;
    mask = 0;
    ts = [| 0 |];
    kinds = [| 0 |];
    args = [| 0 |];
    args2 = [| 0 |];
    chk = [| 0 |];
    head = 0;
    _pre = [||];
    _post = [||];
  }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~capacity =
  if capacity <= 0 then disabled
  else begin
    let cap = pow2_at_least capacity 16 in
    (* Allocation order matters: the spacers are born around the hot
       arrays, separating consecutive workers' rings at minor-heap
       layout time (same trick as {!Nowa_util.Padding.atomic}). *)
    let pre = Nowa_util.Padding.int_array 1 in
    let ts = Array.make cap 0 in
    let kinds = Array.make cap 0 in
    let args = Array.make cap 0 in
    let args2 = Array.make cap 0 in
    let chk = Array.make cap 0 in
    let post = Nowa_util.Padding.int_array 1 in
    {
      enabled = true;
      mask = cap - 1;
      ts;
      kinds;
      args;
      args2;
      chk;
      head = 0;
      _pre = pre;
      _post = post;
    }
  end

let capacity r = if r.enabled then r.mask + 1 else 0

(* Hot path: one predictable branch when disabled; five int stores, an
   int store of the clock reading and an index bump when enabled.  The
   args2 store is unconditional so scheduler events (which carry no
   request id) pay exactly one extra int store over the PR-1 layout;
   the checksum store is one more, paid only when tracing is on, and is
   what lets the flight recorder snapshot a live ring (see {!snapshot}). *)
(* Slot checksum.  A plain xor of the four words is not enough: events
   whose fields are correlated (e.g. [arg] derived from [ts]) make the
   xor cancel, so a read mixing words from two writes of the same slot
   could still pass.  Multiplying each word by a distinct odd constant
   first (xxhash-style) diffuses every field across the word, so a
   mixed-generation read only passes on a 63-bit hash collision. *)
let[@inline] slot_chk ts k arg arg2 =
  (ts * 0x9E3779B1) lxor (k * 0x85EBCA77) lxor (arg * 0xC2B2AE3D)
  lxor (arg2 * 0x27D4EB2F)

let[@inline] emit_at2 r ~ts kind arg arg2 =
  if r.enabled then begin
    let i = r.head land r.mask in
    let k = Event.to_int kind in
    r.ts.(i) <- ts;
    r.kinds.(i) <- k;
    r.args.(i) <- arg;
    r.args2.(i) <- arg2;
    r.chk.(i) <- slot_chk ts k arg arg2;
    r.head <- r.head + 1
  end

let[@inline] emit_at r ~ts kind arg = emit_at2 r ~ts kind arg 0

let[@inline] emit2 r kind arg arg2 =
  if r.enabled then emit_at2 r ~ts:(Nowa_util.Clock.now_ns ()) kind arg arg2

let[@inline] emit r kind arg =
  if r.enabled then emit_at2 r ~ts:(Nowa_util.Clock.now_ns ()) kind arg 0

let length r = if r.enabled then min r.head (r.mask + 1) else 0
let emitted r = r.head
let dropped r = if r.enabled then max 0 (r.head - (r.mask + 1)) else 0

(** Freeze the most recent window of a {e live} ring, without stopping
    or synchronising with the owning writer.  Returns the surviving
    events oldest-first plus the number of candidate slots discarded.

    The reader is an outsider racing the single writer, so this is a
    sampling read, made sound in two steps:

    - the head index is read once up front ([h0]) and once after the
      copy ([h1]); any slot whose logical index lies below [h1 - cap]
      may have been recycled by a write that overlapped the copy, so the
      whole prefix below that bound is discarded wholesale;
    - each surviving slot must satisfy its checksum ([slot_chk], written
      last by {!emit_at2}), so a slot caught mid-write — some words new,
      some old — is detected and dropped along with everything older
      than it (older slots were written earlier; a torn newer slot says
      the writer lapped us).

    The result is a consistent suffix of the ring: every returned event
    is exactly as its writer emitted it.  The writer pays nothing — no
    flag, no fence — and the reader never blocks, so the flight recorder
    can freeze rings from the watchdog thread mid-anomaly. *)
let snapshot ?(window = max_int) r ~worker =
  if not r.enabled then ([||], 0)
  else begin
    let cap = r.mask + 1 in
    let h0 = r.head in
    let n = min (min h0 cap) window in
    let start = h0 - n in
    let ts = Array.make n 0
    and kinds = Array.make n 0
    and args = Array.make n 0
    and args2 = Array.make n 0
    and ok = Array.make n false in
    (* Copy newest-first so the slots most at risk of recycling (the
       oldest) are read as early as possible after [h0]. *)
    for j = n - 1 downto 0 do
      let i = (start + j) land r.mask in
      ts.(j) <- r.ts.(i);
      kinds.(j) <- r.kinds.(i);
      args.(j) <- r.args.(i);
      args2.(j) <- r.args2.(i);
      ok.(j) <-
        r.chk.(i) = slot_chk ts.(j) kinds.(j) args.(j) args2.(j)
        && kinds.(j) >= 0
        && (match Event.of_int kinds.(j) with _ -> true | exception _ -> false)
    done;
    let h1 = r.head in
    (* First logical index that cannot have been recycled during the
       copy, and above it the first index whose whole suffix passed the
       checksum. *)
    let lo = ref (max start (h1 - cap)) in
    for j = 0 to n - 1 do
      if start + j >= !lo && not ok.(j) then lo := start + j + 1
    done;
    (* A writer that lapped the whole ring during the copy can push the
       recycle bound past [h0]; everything sampled is then stale. *)
    let kept = max 0 (min n (h0 - !lo)) in
    let dropped = n - kept in
    ( Array.init kept (fun j ->
          let j = !lo - start + j in
          {
            Event.ts = ts.(j);
            worker;
            kind = Event.of_int kinds.(j);
            arg = args.(j);
            arg2 = args2.(j);
          }),
      dropped )
  end

(** Drain to an array, oldest surviving event first.  Only call after the
    owning worker has quiesced (post-join); there is no synchronisation. *)
let events r ~worker =
  let n = length r in
  let start = r.head - n in
  Array.init n (fun j ->
      let i = (start + j) land r.mask in
      {
        Event.ts = r.ts.(i);
        worker;
        kind = Event.of_int r.kinds.(i);
        arg = r.args.(i);
        arg2 = r.args2.(i);
      })
