(** Fixed-capacity ring buffer of scheduler events, owned by one worker.

    Wait-freedom is by construction: only the owning worker ever writes,
    nothing reads until the domains have joined, so an [emit] is a handful
    of int-array stores and one index bump — no CAS, no lock, no
    allocation.  When full the ring overwrites the oldest entries
    (monotonic head index, power-of-two capacity, mask addressing), so a
    long run keeps the most recent window instead of failing.

    A disabled ring costs a single flag check per emission site and
    nothing else; engines hold one unconditionally so the hot path has no
    option match. *)

type t = {
  enabled : bool;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  ts : int array;  (* timestamp (ns) per slot *)
  kinds : int array;  (* Event.to_int per slot *)
  args : int array;  (* event argument per slot *)
  args2 : int array;  (* second argument (request id) per slot *)
  mutable head : int;  (* total events ever emitted (not wrapped) *)
  _pre : int array;  (* Padding spacers: keep this worker's hot state *)
  _post : int array;  (* on cache lines no other worker's ring shares *)
}

let disabled =
  {
    enabled = false;
    mask = 0;
    ts = [| 0 |];
    kinds = [| 0 |];
    args = [| 0 |];
    args2 = [| 0 |];
    head = 0;
    _pre = [||];
    _post = [||];
  }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~capacity =
  if capacity <= 0 then disabled
  else begin
    let cap = pow2_at_least capacity 16 in
    (* Allocation order matters: the spacers are born around the hot
       arrays, separating consecutive workers' rings at minor-heap
       layout time (same trick as {!Nowa_util.Padding.atomic}). *)
    let pre = Nowa_util.Padding.int_array 1 in
    let ts = Array.make cap 0 in
    let kinds = Array.make cap 0 in
    let args = Array.make cap 0 in
    let args2 = Array.make cap 0 in
    let post = Nowa_util.Padding.int_array 1 in
    {
      enabled = true;
      mask = cap - 1;
      ts;
      kinds;
      args;
      args2;
      head = 0;
      _pre = pre;
      _post = post;
    }
  end

let capacity r = if r.enabled then r.mask + 1 else 0

(* Hot path: one predictable branch when disabled; four int stores, an
   int store of the clock reading and an index bump when enabled.  The
   args2 store is unconditional so scheduler events (which carry no
   request id) pay exactly one extra int store over the PR-1 layout. *)
let[@inline] emit_at2 r ~ts kind arg arg2 =
  if r.enabled then begin
    let i = r.head land r.mask in
    r.ts.(i) <- ts;
    r.kinds.(i) <- Event.to_int kind;
    r.args.(i) <- arg;
    r.args2.(i) <- arg2;
    r.head <- r.head + 1
  end

let[@inline] emit_at r ~ts kind arg = emit_at2 r ~ts kind arg 0

let[@inline] emit2 r kind arg arg2 =
  if r.enabled then emit_at2 r ~ts:(Nowa_util.Clock.now_ns ()) kind arg arg2

let[@inline] emit r kind arg =
  if r.enabled then emit_at2 r ~ts:(Nowa_util.Clock.now_ns ()) kind arg 0

let length r = if r.enabled then min r.head (r.mask + 1) else 0
let emitted r = r.head
let dropped r = if r.enabled then max 0 (r.head - (r.mask + 1)) else 0

(** Drain to an array, oldest surviving event first.  Only call after the
    owning worker has quiesced (post-join); there is no synchronisation. *)
let events r ~worker =
  let n = length r in
  let start = r.head - n in
  Array.init n (fun j ->
      let i = (start + j) land r.mask in
      {
        Event.ts = r.ts.(i);
        worker;
        kind = Event.of_int r.kinds.(i);
        arg = r.args.(i);
        arg2 = r.args2.(i);
      })
