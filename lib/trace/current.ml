(** Per-domain "who am I" context for layers that sit above the runtime.

    The engines know which worker is running — their domain bodies close
    over the worker record — but library code called from inside a task
    (the KV combiner, for instance) does not.  Each engine publishes its
    worker id and trace ring into domain-local storage at domain start so
    that such code can emit ring events and attribute work to the right
    worker without any API threading.

    Outside any runtime (or on a runtime that predates this hook) the
    defaults are worker [-1] and {!Ring.disabled}, so every operation
    here degrades to a cheap no-op. *)

type ctx = { worker : int; ring : Ring.t }

let none = { worker = -1; ring = Ring.disabled }
let key : ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> none)
let set ~worker ring = Domain.DLS.set key { worker; ring }
let clear () = Domain.DLS.set key none

(** Worker id of the calling domain, or [-1] outside a runtime. *)
let worker () = (Domain.DLS.get key).worker

(** Emit into the calling worker's ring; no-op outside a runtime or when
    tracing is off. *)
let[@inline] emit kind ~arg ~arg2 =
  let c = Domain.DLS.get key in
  Ring.emit2 c.ring kind arg arg2
