let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | l ->
    let m = mean l in
    let n = float_of_int (List.length l) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
    sqrt (ss /. (n -. 1.0))

let geomean = function
  | [] -> nan
  | l ->
    let n = float_of_int (List.length l) in
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 l in
    exp (s /. n)

let median = function
  | [] -> nan
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let minimum = function [] -> nan | l -> List.fold_left min infinity l
let maximum = function [] -> nan | l -> List.fold_left max neg_infinity l

(* Nearest-rank percentile: for p in (0,100], the value at rank
   ceil(p/100 * n) of the sorted sample (1-based); p = 0 yields the
   minimum.  Empty input yields nan. *)
let percentile p = function
  | [] -> nan
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

type speedup = { geo : float; sd : float; runs : int }

let speedup_of_runs ~serial_mean times =
  let speedups = List.map (fun t -> serial_mean /. t) times in
  { geo = geomean speedups; sd = stddev speedups; runs = List.length times }

let ratio_geomean pairs = geomean (List.map (fun (a, b) -> a /. b) pairs)

module Welford = struct
  (* Welford's online algorithm; [merge] is the pairwise update of
     Chan, Golub & LeVeque (1983), which keeps the accumulators
     mergeable across workers without loss of precision. *)
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }
  let copy t = { n = t.n; mean = t.mean; m2 = t.m2 }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean

  let variance t =
    if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then copy b
    else if b.n = 0 then copy a
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let n = na +. nb in
      let d = b.mean -. a.mean in
      {
        n = a.n + b.n;
        mean = a.mean +. (d *. nb /. n);
        m2 = a.m2 +. b.m2 +. (d *. d *. na *. nb /. n);
      }
    end
end
