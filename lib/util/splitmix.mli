(** SplitMix64 splittable pseudo-random number generator.

    The load harness pre-generates deterministic request schedules and
    needs independent streams per phase (arrival gaps, key choice,
    values) without coordinating a shared generator.  SplitMix64
    (Steele, Lea & Flood, OOPSLA'14) supports exactly that: [split]
    derives a statistically independent child generator from two draws
    of the parent, so a fixed seed yields the same workload no matter
    how the streams are consumed relative to each other. *)

type t

val make : seed:int -> t
(** Generator with the golden-ratio gamma, starting from [seed]. *)

val next : t -> int64
(** Next raw 64-bit output, advancing the state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)], using the top 53 bits. *)

val split : t -> t
(** [split t] derives an independent generator (fresh state {e and}
    fresh odd gamma), advancing [t] by two outputs. *)

val scramble : int -> int
(** Stateless 64-bit finalizer mix of [k], truncated to a non-negative
    OCaml [int].  Used to spread adjacent keys across shards and to
    de-cluster zipfian ranks ("scrambled zipfian" in YCSB terms). *)
