let cache_line_words = 8

(* The spacers must survive long enough to keep their slots occupied until
   the next minor collection; keeping the last few alive in a global root is
   enough for the at-birth layout and costs a handful of words. *)
let keep = Array.make 2 [||]

let int_array n = Array.make (n * cache_line_words) 0

let atomic v =
  let pre = int_array 1 in
  let a = Atomic.make v in
  let post = int_array 1 in
  keep.(0) <- pre;
  keep.(1) <- post;
  a

(* [isolate] generalises [atomic] to arbitrary allocations: whatever [f]
   allocates last (its returned block) is fenced by spacer lines on both
   sides, so two records built through [isolate] never share a birth
   cache line.  Used for per-worker records whose mutable counters are
   written on every scheduler operation. *)
let isolate f =
  let pre = int_array 1 in
  let v = f () in
  let post = int_array 1 in
  keep.(0) <- pre;
  keep.(1) <- post;
  v
