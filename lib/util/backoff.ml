type t = {
  min_spins : int;
  max_spins : int;
  mutable current : int;
  mutable count : int;
}

let make ?(min_spins = 4) ?(max_spins = 1024) () =
  { min_spins; max_spins; current = min_spins; count = 0 }

let reset t =
  t.current <- t.min_spins;
  t.count <- 0

let once t =
  t.count <- t.count + 1;
  for _ = 1 to t.current do
    Domain.cpu_relax ()
  done;
  if t.current >= t.max_spins then
    (* Oversubscribed host: give the OS a chance to run the victim. *)
    Unix.sleepf 0.0
  else t.current <- t.current * 2

let steps t = t.count
let spins t = t.current
