(** Host processor information. *)

val available_cores : unit -> int
(** Number of cores the OCaml runtime recommends using as domains. *)

val default_workers : unit -> int
(** Worker count used when a runtime is started without an explicit count:
    the available cores, capped so test machines with a single core still
    exercise multi-worker code paths deterministically. *)

val process_cpu_time : unit -> float
(** Process-wide CPU seconds consumed so far (user + system, all threads),
    via [Unix.times] — the portable stand-in for [getrusage].  Sampling it
    around a run and subtracting gives the CPU cost of that run; a parked
    worker contributes ~0 to the delta, a spinning one a full core. *)
