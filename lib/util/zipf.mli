(** Zipfian rank sampler (Gray et al., SIGMOD'94 — the YCSB generator).

    Draws ranks in [\[0, n)] where rank [r] has probability proportional
    to [1 / (r+1)^theta].  Rank 0 is the hottest key.  Setup is O(n)
    (the harmonic normaliser); each sample is O(1) via the closed-form
    inverse-CDF approximation, so the load generator can pre-compute
    millions of keys cheaply.

    [theta] must lie in (0, 1); YCSB's default skew is 0.99, under which
    roughly 10% of draws hit rank 0 for n = 1000. *)

type t

val create : n:int -> theta:float -> t
(** Sampler over ranks [\[0, n)].  Raises [Invalid_argument] unless
    [n >= 2] and [0 < theta < 1]. *)

val n : t -> int

val sample : t -> float -> int
(** [sample t u] maps a uniform draw [u ∈ \[0,1)] to a rank.  Pure:
    feeding the same [u] always yields the same rank, which the
    statistical tests rely on. *)

val draw : t -> Splitmix.t -> int
(** [draw t rng] is [sample t (Splitmix.float rng)]. *)

val expected_freq : t -> int -> float
(** [expected_freq t r] is the exact probability of rank [r] — the
    yardstick for the empirical-frequency sanity test. *)
