type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* MurmurHash3/SplitMix64 finalizer ("mix64"). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount x =
  let c = ref 0 and v = ref x in
  for _ = 1 to 64 do
    if Int64.logand !v 1L = 1L then incr c;
    v := Int64.shift_right_logical !v 1
  done;
  !c

(* Variant-13 finalizer, forced odd.  Steele et al. additionally reject
   gammas whose consecutive bits flip too rarely (weak mixing). *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor (Int64.logxor z (Int64.shift_right_logical z 33)) 1L in
  if popcount (Int64.logxor z (Int64.shift_right_logical z 1)) < 24 then
    Int64.logxor z 0xAAAAAAAAAAAAAAAAL
  else z

let make ~seed = { state = Int64.of_int seed; gamma = golden_gamma }

let next t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let split t =
  let state = next t in
  let gamma = mix_gamma (next t) in
  { state; gamma }

let scramble k = Int64.to_int (mix64 (Int64.of_int k)) land max_int
