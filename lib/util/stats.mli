(** Statistics following the paper's evaluation methodology (Section V):
    serial time is the arithmetic mean of the serial-elision runs; per-run
    speedups are [T_s / T_n]; runtimes are compared through the geometric
    mean of those speedups, with the standard deviation shown as error
    bars; runtime-vs-runtime ratios are geometric means of speedup
    ratios. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation (Bessel-corrected); 0 for lists of length < 2. *)

val geomean : float list -> float
val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p l] is the nearest-rank [p]-th percentile of [l] for
    [p] in [0, 100]: the element at rank [ceil (p/100 × n)] of the
    sorted sample (1-based), with [p = 0] yielding the minimum and an
    empty list yielding [nan].  Out-of-range [p] is clamped. *)

type speedup = {
  geo : float;      (** geometric mean of per-run speedups *)
  sd : float;       (** standard deviation of per-run speedups *)
  runs : int;
}

val speedup_of_runs : serial_mean:float -> float list -> speedup
(** [speedup_of_runs ~serial_mean times] computes the paper's speedup
    statistic for one (runtime, benchmark, thread-count) cell. *)

val ratio_geomean : (float * float) list -> float
(** [ratio_geomean pairs] is the geometric mean of [fst /. snd] — the
    paper's "average performance change between runtime systems". *)

(** Online mean/variance (Welford's algorithm), O(1) per observation and
    mergeable across workers via the pairwise combination of Chan, Golub
    & LeVeque — so per-worker accumulators can be folded into a global
    one after a join without retaining samples. *)
module Welford : sig
  type t

  val create : unit -> t
  val copy : t -> t
  val add : t -> float -> unit
  val count : t -> int

  val mean : t -> float
  (** [nan] when no observation has been added. *)

  val variance : t -> float
  (** Sample variance (Bessel-corrected); 0 for fewer than 2 observations. *)

  val stddev : t -> float

  val merge : t -> t -> t
  (** Functional: returns a fresh accumulator equivalent to having
      observed both inputs' streams; arguments are unchanged. *)
end
