(** Allocation helpers that reduce false sharing between frequently written
    atomic cells.

    OCaml 5.1 has no [Atomic.make_contended]; instead we allocate spacer
    blocks around each atomic so that, on the minor heap, two atomics created
    through this module do not share a cache line at birth.  This is a
    best-effort mitigation (the GC may move values), which matches what
    portable lock-free OCaml libraries do on this compiler version. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is a fresh atomic initialised to [v], surrounded by
    cache-line-sized spacer allocations. *)

val cache_line_words : int
(** Number of OCaml words per assumed 64-byte cache line. *)

val int_array : int -> int array
(** [int_array n] is a fresh zero array of [n] cache lines worth of ints,
    usable as an explicit spacer field inside records. *)

val isolate : (unit -> 'a) -> 'a
(** [isolate f] runs [f] and returns its result, allocating cache-line
    spacer blocks immediately before and after the call so the returned
    block does not share its birth cache line with neighbouring
    allocations.  Use for per-worker mutable records (metric counters,
    worker state) that are written on the hot path. *)
