type t = {
  n : int;
  theta : float;
  zetan : float;  (* sum_{i=1..n} i^-theta *)
  alpha : float;  (* 1 / (1 - theta) *)
  eta : float;
  cut1 : float;   (* zeta(2) = 1 + 2^-theta: uz below it maps to rank <= 1 *)
}

let create ~n ~theta =
  if n < 2 then invalid_arg "Zipf.create: n must be >= 2";
  if not (theta > 0.0 && theta < 1.0) then
    invalid_arg "Zipf.create: theta must lie in (0, 1)";
  let zetan = ref 0.0 in
  for i = 1 to n do
    zetan := !zetan +. (1.0 /. (float_of_int i ** theta))
  done;
  let zetan = !zetan in
  let zeta2 = 1.0 +. (0.5 ** theta) in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; zetan; alpha; eta; cut1 = zeta2 }

let n t = t.n

let sample t u =
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < t.cut1 then 1
  else begin
    let r =
      float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
    in
    let r = int_of_float r in
    if r < 0 then 0 else if r >= t.n then t.n - 1 else r
  end

let draw t rng = sample t (Splitmix.float rng)

let expected_freq t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.expected_freq: rank out of range";
  1.0 /. ((float_of_int (r + 1) ** t.theta) *. t.zetan)
