let available_cores () = Domain.recommended_domain_count ()

let default_workers () = max 1 (available_cores ())

let process_cpu_time () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime
