(* There is no monotonic clock in the pre-installed package set, so the
   base reading is [Unix.gettimeofday], which can step backwards under
   NTP adjustments.  Trace event ordering and duration math depend on
   [now_ns] never going backwards, so each domain clamps its readings
   against the last value it returned: within a domain, consecutive
   calls are non-decreasing.  (Cross-domain comparisons retain the raw
   clock's fidelity; only same-domain regressions are flattened.) *)

let last_ns : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let last = Domain.DLS.get last_ns in
  if t > !last then begin
    last := t;
    t
  end
  else !last

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, r)

let spin_ns n =
  if n > 0 then begin
    let deadline = now_ns () + n in
    while now_ns () < deadline do
      Domain.cpu_relax ()
    done
  end
