(** Default destination for run artifacts — trace JSON, anatomy tables,
    scrape dumps — so tools stop littering the repository root.  The
    directory is created on first use and is gitignored. *)

let dir = "artifacts"

let ensure_dir () =
  try Unix.mkdir dir 0o755
  with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()

(** [path "serve-park.trace.json"] = ["artifacts/serve-park.trace.json"],
    creating the directory if needed.  Absolute or slash-containing
    names pass through untouched so explicit [--trace a/b.json] style
    destinations keep working. *)
let path name =
  if Filename.is_relative name && String.equal (Filename.dirname name) "." then begin
    ensure_dir ();
    Filename.concat dir name
  end
  else name
