(** Truncated exponential backoff for contended retry loops.

    Thieves use this between failed steal attempts; the spinlock uses it in
    its acquisition loop.  Each [once] spins the current width in
    [Domain.cpu_relax] hints and doubles the width for the next step.  The
    width saturates at [max_spins] (the cap): once there, every further
    step additionally yields the timeslice ([Unix.sleepf 0]) so that on
    machines with fewer cores than workers a spinning thief cannot starve
    the strand it is waiting for.  The cap bounds the worst-case gap
    between two steal probes — backoff never sleeps for a real duration,
    so work that appears is picked up within one capped spin plus one
    scheduler quantum. *)

type t

val make : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Defaults: [min_spins = 4], [max_spins = 1024]. *)

val reset : t -> unit
(** Back to [min_spins] width and a zero step count. *)

val once : t -> unit
(** Perform one backoff step and double the next step, up to the cap. *)

val steps : t -> int
(** Number of [once] calls since the last [reset]. *)

val spins : t -> int
(** Width (cpu_relax iterations) the {e next} [once] will spin: starts at
    [min_spins], doubles per step, saturates at [max_spins]. *)
