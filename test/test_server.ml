(* Tests for the serving layer: KV store semantics, the bucket-handoff
   protocol under real concurrency (multi-domain stress with log
   replay), linearizability smoke tests across the three engine
   families, and the open-loop load generator. *)

module Kv = Nowa_server.Kv
module Workload = Nowa_server.Workload
module Sm = Nowa_util.Splitmix

(* -- basic single-key semantics ------------------------------------------- *)

let test_kv_basics () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:8 () in
  Alcotest.(check bool) "miss on empty" true (Kv.exec kv (Kv.Get 1) = Kv.Miss);
  Alcotest.(check bool) "put acks" true (Kv.exec kv (Kv.Put (1, 10)) = Kv.Ack);
  Alcotest.(check bool) "hit" true (Kv.exec kv (Kv.Get 1) = Kv.Hit 10);
  Alcotest.(check bool) "add returns new" true
    (Kv.exec kv (Kv.Add (1, 5)) = Kv.Hit 15);
  Alcotest.(check bool) "add upserts" true
    (Kv.exec kv (Kv.Add (99, 7)) = Kv.Hit 7);
  Alcotest.(check int) "size" 2 (Kv.size kv);
  Alcotest.(check int) "no drops" 0 (Kv.dropped kv);
  (* Empty multi-key ops have no footprint and complete immediately. *)
  Alcotest.(check bool) "empty multi_get" true
    (Kv.exec kv (Kv.Multi_get [||]) = Kv.Many [||]);
  Alcotest.(check bool) "empty multi_put" true
    (Kv.exec kv (Kv.Multi_put [||]) = Kv.Ack)

let test_kv_multi () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 () in
  (* Spread keys over every shard so the transaction must cross shards. *)
  let keys = Array.init 64 (fun i -> i) in
  let kvs = Array.map (fun k -> (k, k * 2)) keys in
  Alcotest.(check bool) "multi_put acks" true
    (Kv.exec kv (Kv.Multi_put kvs) = Kv.Ack);
  (match Kv.exec kv (Kv.Multi_get keys) with
  | Kv.Many res ->
    Array.iteri
      (fun i v ->
        Alcotest.(check bool)
          (Printf.sprintf "multi_get key %d" i)
          true
          (v = Some (i * 2)))
      res
  | _ -> Alcotest.fail "multi_get must return Many");
  Alcotest.(check bool) "cross-shard txns performed handoffs" true
    (Kv.handoffs kv > 0);
  (* Distinct home shards actually exist for this key set. *)
  let shards_hit =
    Array.fold_left
      (fun acc k -> if List.mem (Kv.shard_of_key kv k) acc then acc
        else Kv.shard_of_key kv k :: acc)
      [] keys
  in
  Alcotest.(check bool) "keys span shards" true (List.length shards_hit > 1)

let test_kv_admission_control () =
  let kv = Kv.create ~shards:2 ~queue_cap:0 () in
  Alcotest.(check bool) "over-capacity drops" true
    (Kv.exec kv (Kv.Put (1, 1)) = Kv.Dropped);
  Alcotest.(check int) "drop counted" 1 (Kv.dropped kv)

(* -- linearizability: log replay ------------------------------------------ *)

(* Replay the apply log (global seq order) against a sequential
   Hashtbl.  Every logged [read] must match the replay state at that
   point — this catches lost operations, double-applies and torn
   multi-key transactions.  Returns the replay table for a final-state
   comparison. *)
let replay_check log =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Kv.log_entry) ->
      let expect = Hashtbl.find_opt tbl e.l_key in
      if expect <> e.read then
        Alcotest.failf
          "seq %d req %d key %d: logged read %s but replay says %s" e.seq
          e.req_id e.l_key
          (match e.read with Some v -> string_of_int v | None -> "None")
          (match expect with Some v -> string_of_int v | None -> "None");
      match e.wrote with
      | Some v -> Hashtbl.replace tbl e.l_key v
      | None -> ())
    log;
  tbl

let check_final_state kv replay =
  let store_n = Kv.fold (fun _ _ n -> n + 1) kv 0 in
  Alcotest.(check int) "store and replay agree on size"
    (Hashtbl.length replay) store_n;
  Kv.fold
    (fun k v () ->
      match Hashtbl.find_opt replay k with
      | Some v' when v' = v -> ()
      | got ->
        Alcotest.failf "final state: key %d is %d in store, %s in replay" k v
          (match got with Some v -> string_of_int v | None -> "absent"))
    kv ()

let random_op rng keyspace =
  let key () = Sm.int rng keyspace in
  let multi n = Array.init (1 + Sm.int rng n) (fun _ -> key ()) in
  match Sm.int rng 10 with
  | 0 | 1 | 2 -> Kv.Get (key ())
  | 3 | 4 -> Kv.Put (key (), Sm.int rng 1000)
  | 5 | 6 -> Kv.Add (key (), 1 + Sm.int rng 9)
  | 7 | 8 -> Kv.Multi_get (multi 4)
  | _ -> Kv.Multi_put (Array.map (fun k -> (k, Sm.int rng 1000)) (multi 4))

let test_kv_log_replay_sequential () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 ~log:true () in
  let rng = Sm.make ~seed:7 in
  for _ = 1 to 2_000 do
    ignore (Kv.exec kv (random_op rng 100))
  done;
  let replay = replay_check (Kv.log kv) in
  check_final_state kv replay

(* Raw domains hammering the store: the handoff protocol under real
   parallelism with no scheduler in the way. *)
let test_kv_stress_domains () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 ~log:true () in
  let domains = 4 and per_domain = 2_000 in
  let pendings = Atomic.make 0 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Sm.make ~seed:(1000 + d) in
            for _ = 1 to per_domain do
              match Kv.exec kv (random_op rng 64) with
              | Kv.Pending -> Atomic.incr pendings
              | _ -> ()
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "exec never returns Pending" 0 (Atomic.get pendings);
  Alcotest.(check int) "no drops under default cap" 0 (Kv.dropped kv);
  let log = Kv.log kv in
  Alcotest.(check bool) "log non-empty" true (log <> []);
  let replay = replay_check log in
  check_final_state kv replay

(* -- linearizability smoke across the three engine families --------------- *)

let smoke_on (module R : Nowa.RUNTIME) () =
  let kv = Kv.create ~shards:8 ~buckets_per_shard:4 ~log:true () in
  let n = 1_500 in
  let bad = Atomic.make 0 in
  let conf = Nowa.Config.with_workers 4 in
  R.run ~conf (fun () ->
      R.scope (fun sc ->
          let rng = Sm.make ~seed:11 in
          for _ = 1 to n do
            let op = random_op rng 128 in
            R.spawn_unit sc (fun () ->
                match Kv.exec kv op with
                | Kv.Pending | Kv.Dropped -> Atomic.incr bad
                | _ -> ())
          done));
  Alcotest.(check int) "every request served" 0 (Atomic.get bad);
  let log = Kv.log kv in
  (* Every mutation and read went through the combiner exactly once. *)
  let replay = replay_check log in
  check_final_state kv replay

(* Under the serial elision, requests apply in arrival order, so the
   store must agree with a plain sequential reference fed the same
   stream — determinism end to end, not just log consistency. *)
let test_serial_arrival_order () =
  let module R = Nowa_runtime.Serial_runtime in
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 () in
  let reference = Hashtbl.create 256 in
  let model op =
    match op with
    | Kv.Get k ->
      (match Hashtbl.find_opt reference k with
      | Some v -> Kv.Hit v
      | None -> Kv.Miss)
    | Kv.Put (k, v) ->
      Hashtbl.replace reference k v;
      Kv.Ack
    | Kv.Add (k, d) ->
      let nv =
        match Hashtbl.find_opt reference k with Some v -> v + d | None -> d
      in
      Hashtbl.replace reference k nv;
      Kv.Hit nv
    | Kv.Multi_get ks ->
      Kv.Many (Array.map (fun k -> Hashtbl.find_opt reference k) ks)
    | Kv.Multi_put kvs ->
      Array.iter (fun (k, v) -> Hashtbl.replace reference k v) kvs;
      Kv.Ack
  in
  R.run (fun () ->
      R.scope (fun sc ->
          let rng = Sm.make ~seed:23 in
          for _ = 1 to 2_000 do
            let op = random_op rng 100 in
            R.spawn_unit sc (fun () ->
                let got = Kv.exec kv op in
                let want = model op in
                if got <> want then
                  Alcotest.fail "serial run diverged from reference")
          done));
  Hashtbl.iter
    (fun k v ->
      match Kv.exec kv (Kv.Get k) with
      | Kv.Hit v' when v' = v -> ()
      | _ -> Alcotest.failf "final state mismatch at key %d" k)
    reference

(* -- workload & load generator -------------------------------------------- *)

let test_workload_deterministic () =
  let mix = Option.get (Workload.find_mix "a") in
  let spec =
    { (Workload.default_spec ~mix) with Workload.requests = 500; warmup = 50 }
  in
  let s1 = Workload.generate spec and s2 = Workload.generate spec in
  Alcotest.(check int) "same length" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i (e1 : Workload.event) ->
      let e2 = s2.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "event %d identical" i)
        true
        (e1.Workload.at_ns = e2.Workload.at_ns && e1.Workload.op = e2.Workload.op))
    s1;
  (* Arrival times strictly ordered, ops match the mix (A: reads+updates). *)
  Array.iter
    (fun (e : Workload.event) ->
      match e.Workload.cls with
      | Workload.Read | Workload.Update -> ()
      | _ -> Alcotest.fail "mix A generated a non-read/update op")
    s1

let test_loadgen_smoke () =
  let module L = Nowa_server.Loadgen.Make (Nowa.Presets.Nowa) in
  let mix = Option.get (Workload.find_mix "A") in
  let spec =
    {
      (Workload.default_spec ~mix) with
      Workload.records = 200;
      rate = 100_000.0;
      warmup = 50;
      requests = 400;
      shards = 8;
      buckets_per_shard = 8;
    }
  in
  let conf = Nowa.Config.with_workers 4 in
  let r = L.run ~conf spec in
  Alcotest.(check int) "all measured requests completed" 400 r.Nowa_server.Loadgen.completed;
  Alcotest.(check int) "no drops" 0 r.Nowa_server.Loadgen.dropped;
  Alcotest.(check bool) "throughput positive" true
    (r.Nowa_server.Loadgen.throughput > 0.0);
  let total = r.Nowa_server.Loadgen.total in
  Alcotest.(check bool) "p50 finite and positive" true
    (total.Nowa_server.Loadgen.p50_ns > 0.0);
  Alcotest.(check bool) "p999 >= p50" true
    (total.Nowa_server.Loadgen.p999_ns >= total.Nowa_server.Loadgen.p50_ns);
  (* The JSON row is well-formed enough for the bench harness greps. *)
  let json = Nowa_server.Loadgen.json_of_report r in
  Alcotest.(check bool) "json has mix" true
    (String.length json > 0 && json.[0] = '{')

(* -- request spans & anatomy ---------------------------------------------- *)

module Span = Nowa_trace.Span
module LG = Nowa_server.Loadgen

let anatomy_spec ~mix_name ~requests =
  let mix = Option.get (Workload.find_mix mix_name) in
  {
    (Workload.default_spec ~mix) with
    Workload.records = 200;
    rate = 200_000.0;
    warmup = 50;
    requests;
    shards = 4;
    buckets_per_shard = 4;
  }

(* The conservation law is the tentpole invariant: for every finished
   request the six phase ledgers must sum to end-to-end latency exactly
   (integer ns, zero residual), on any mix and any engine family. *)
let prop_conservation =
  QCheck.Test.make ~name:"span ledgers conserve (random mix/runtime/workers)"
    ~count:10
    QCheck.(triple (int_range 0 5) bool (int_range 2 4))
    (fun (mix_i, serial, workers) ->
      let mix_name = String.make 1 (Char.chr (Char.code 'A' + mix_i)) in
      let spec = anatomy_spec ~mix_name ~requests:300 in
      let r =
        if serial then
          let module L = LG.Make (Nowa_runtime.Serial_runtime) in
          L.run ~anatomy:true spec
        else
          let module L = LG.Make (Nowa.Presets.Nowa) in
          L.run ~conf:(Nowa.Config.with_workers workers) ~anatomy:true spec
      in
      let span = r.LG.span in
      Alcotest.(check bool) "span enabled" true (Span.enabled span);
      for rid = 0 to Span.allocated span - 1 do
        if Span.finished span rid then begin
          let err = Span.conservation_error span rid in
          if err <> 0 then
            Alcotest.failf "mix %s rid %d: residual %d ns" mix_name rid err;
          if Span.total_ns span rid < 0 then
            Alcotest.failf "mix %s rid %d: negative latency" mix_name rid
        end
      done;
      (match r.LG.anatomy with
      | None -> Alcotest.fail "anatomy report missing"
      | Some a ->
        Alcotest.(check int) "no conservation violations" 0
          a.Nowa_server.Anatomy.violations;
        Alcotest.(check int) "zero max residual" 0
          a.Nowa_server.Anatomy.max_abs_err_ns;
        Alcotest.(check int) "every measured request sampled" 300
          (a.Nowa_server.Anatomy.sampled + a.Nowa_server.Anatomy.dropped));
      true)

(* The reservoir must hold exactly the top-K offered latencies even when
   the offers race from several domains. *)
let test_tail_topk_domains () =
  let k = 8 and n = 4_096 in
  let span = Span.create ~tail:k ~capacity:n () in
  let lat_of_rid rid = 1 + ((rid * 7_919) mod 1_000_003) in
  let domains = 4 in
  let per = n / domains in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = d * per to ((d + 1) * per) - 1 do
              Span.offer_tail span ~rid:i ~lat_ns:(lat_of_rid i)
            done))
  in
  List.iter Domain.join ds;
  let got = Span.tail_entries span in
  Alcotest.(check int) "reservoir full" k (List.length got);
  let expect =
    List.init n lat_of_rid |> List.sort (fun a b -> compare b a)
    |> List.filteri (fun i _ -> i < k)
  in
  List.iteri
    (fun i (rid, lat) ->
      Alcotest.(check int) (Printf.sprintf "slot %d latency" i)
        (List.nth expect i) lat;
      Alcotest.(check int) (Printf.sprintf "slot %d rid consistent" i)
        (lat_of_rid rid) lat)
    got;
  (* The cached threshold never exceeds the true reservoir minimum. *)
  let min_kept = List.fold_left (fun m (_, l) -> min m l) max_int got in
  Alcotest.(check bool) "threshold is a sound lower bound" true
    (Span.tail_threshold span <= min_kept)

(* Request ids come from the injection loop in schedule order, so a
   serial replay (the DAG recorder) assigns identical ids, classes and
   combiners across runs — spans are usable as a deterministic key. *)
let test_recorder_span_determinism () =
  let module L = LG.Make (Nowa_dag.Recorder) in
  let spec = anatomy_spec ~mix_name:"F" ~requests:200 in
  let r1 = L.run ~anatomy:true spec in
  let r2 = L.run ~anatomy:true spec in
  let s1 = r1.LG.span and s2 = r2.LG.span in
  Alcotest.(check int) "same rid count" (Span.allocated s1) (Span.allocated s2);
  for rid = 0 to Span.allocated s1 - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "rid %d finished in both" rid)
      (Span.finished s1 rid) (Span.finished s2 rid);
    Alcotest.(check int)
      (Printf.sprintf "rid %d same class" rid)
      (Span.cls_of s1 rid) (Span.cls_of s2 rid);
    (* The recorder executes on the initial domain, worker 0. *)
    if Span.finished s1 rid && not (Span.was_dropped s1 rid) then
      Alcotest.(check int)
        (Printf.sprintf "rid %d combined on worker 0" rid)
        0 (Span.combiner_of s1 rid)
  done

let test_anatomy_report () =
  let module L = LG.Make (Nowa.Presets.Nowa) in
  let spec = anatomy_spec ~mix_name:"A" ~requests:400 in
  let conf = Nowa.Config.with_workers 4 in
  let r = L.run ~conf ~anatomy:true spec in
  match r.LG.anatomy with
  | None -> Alcotest.fail "anatomy missing from report"
  | Some a ->
    let open Nowa_server.Anatomy in
    Alcotest.(check int) "all measured requests sampled" 400
      (a.sampled + a.dropped);
    Alcotest.(check int) "no violations" 0 a.violations;
    (match a.classes with
    | { label = "total"; count; phases } :: rest ->
      Alcotest.(check int) "total counts sampled requests" a.sampled count;
      Alcotest.(check int) "one row per phase" Span.n_phases
        (Array.length phases);
      Array.iter
        (fun ps ->
          Alcotest.(check bool) "quantiles ordered" true
            (ps.p50_ns <= ps.p99_ns && ps.p99_ns <= ps.p999_ns
           && ps.p999_ns <= ps.max_ns))
        phases;
      Alcotest.(check bool) "mix A yields read and update rows" true
        (List.length rest >= 2)
    | _ -> Alcotest.fail "first anatomy class must be total");
    (* Tail is sorted slowest-first and within collector bounds. *)
    let rec desc = function
      | a :: (b :: _ as tl) -> a.total_ns >= b.total_ns && desc tl
      | _ -> true
    in
    Alcotest.(check bool) "tail sorted" true (desc a.tail);
    List.iter
      (fun te ->
        Alcotest.(check bool) "tail rid in range" true
          (te.rid >= 0 && te.rid < Span.capacity r.LG.span);
        Alcotest.(check int) "tail ledger conserves" te.total_ns
          (Array.fold_left ( + ) 0 te.phase_ns))
      a.tail;
    let js = json a in
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "json mentions phases" true
      (contains "\"sched_wait\"" js && contains "\"violations\"" js)

let () =
  Alcotest.run "nowa_server"
    [
      ( "kv",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "multi-key cross-shard" `Quick test_kv_multi;
          Alcotest.test_case "admission control" `Quick
            test_kv_admission_control;
          Alcotest.test_case "log replay sequential" `Quick
            test_kv_log_replay_sequential;
          Alcotest.test_case "stress domains" `Quick test_kv_stress_domains;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "nowa (continuation-stealing)" `Quick
            (smoke_on (module Nowa.Presets.Nowa));
          Alcotest.test_case "tbb (child-stealing)" `Quick
            (smoke_on (module Nowa.Presets.Tbb));
          Alcotest.test_case "gomp (central queue)" `Quick
            (smoke_on (module Nowa.Presets.Gomp));
          Alcotest.test_case "serial arrival order" `Quick
            test_serial_arrival_order;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "workload deterministic" `Quick
            test_workload_deterministic;
          Alcotest.test_case "open-loop smoke" `Quick test_loadgen_smoke;
        ] );
      ( "anatomy",
        [
          QCheck_alcotest.to_alcotest prop_conservation;
          Alcotest.test_case "tail reservoir top-K across domains" `Quick
            test_tail_topk_domains;
          Alcotest.test_case "recorder span determinism" `Quick
            test_recorder_span_determinism;
          Alcotest.test_case "anatomy report structure" `Quick
            test_anatomy_report;
        ] );
    ]
