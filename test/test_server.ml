(* Tests for the serving layer: KV store semantics, the bucket-handoff
   protocol under real concurrency (multi-domain stress with log
   replay), linearizability smoke tests across the three engine
   families, and the open-loop load generator. *)

module Kv = Nowa_server.Kv
module Workload = Nowa_server.Workload
module Sm = Nowa_util.Splitmix

(* -- basic single-key semantics ------------------------------------------- *)

let test_kv_basics () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:8 () in
  Alcotest.(check bool) "miss on empty" true (Kv.exec kv (Kv.Get 1) = Kv.Miss);
  Alcotest.(check bool) "put acks" true (Kv.exec kv (Kv.Put (1, 10)) = Kv.Ack);
  Alcotest.(check bool) "hit" true (Kv.exec kv (Kv.Get 1) = Kv.Hit 10);
  Alcotest.(check bool) "add returns new" true
    (Kv.exec kv (Kv.Add (1, 5)) = Kv.Hit 15);
  Alcotest.(check bool) "add upserts" true
    (Kv.exec kv (Kv.Add (99, 7)) = Kv.Hit 7);
  Alcotest.(check int) "size" 2 (Kv.size kv);
  Alcotest.(check int) "no drops" 0 (Kv.dropped kv);
  (* Empty multi-key ops have no footprint and complete immediately. *)
  Alcotest.(check bool) "empty multi_get" true
    (Kv.exec kv (Kv.Multi_get [||]) = Kv.Many [||]);
  Alcotest.(check bool) "empty multi_put" true
    (Kv.exec kv (Kv.Multi_put [||]) = Kv.Ack)

let test_kv_multi () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 () in
  (* Spread keys over every shard so the transaction must cross shards. *)
  let keys = Array.init 64 (fun i -> i) in
  let kvs = Array.map (fun k -> (k, k * 2)) keys in
  Alcotest.(check bool) "multi_put acks" true
    (Kv.exec kv (Kv.Multi_put kvs) = Kv.Ack);
  (match Kv.exec kv (Kv.Multi_get keys) with
  | Kv.Many res ->
    Array.iteri
      (fun i v ->
        Alcotest.(check bool)
          (Printf.sprintf "multi_get key %d" i)
          true
          (v = Some (i * 2)))
      res
  | _ -> Alcotest.fail "multi_get must return Many");
  Alcotest.(check bool) "cross-shard txns performed handoffs" true
    (Kv.handoffs kv > 0);
  (* Distinct home shards actually exist for this key set. *)
  let shards_hit =
    Array.fold_left
      (fun acc k -> if List.mem (Kv.shard_of_key kv k) acc then acc
        else Kv.shard_of_key kv k :: acc)
      [] keys
  in
  Alcotest.(check bool) "keys span shards" true (List.length shards_hit > 1)

let test_kv_admission_control () =
  let kv = Kv.create ~shards:2 ~queue_cap:0 () in
  Alcotest.(check bool) "over-capacity drops" true
    (Kv.exec kv (Kv.Put (1, 1)) = Kv.Dropped);
  Alcotest.(check int) "drop counted" 1 (Kv.dropped kv)

(* -- linearizability: log replay ------------------------------------------ *)

(* Replay the apply log (global seq order) against a sequential
   Hashtbl.  Every logged [read] must match the replay state at that
   point — this catches lost operations, double-applies and torn
   multi-key transactions.  Returns the replay table for a final-state
   comparison. *)
let replay_check log =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Kv.log_entry) ->
      let expect = Hashtbl.find_opt tbl e.l_key in
      if expect <> e.read then
        Alcotest.failf
          "seq %d req %d key %d: logged read %s but replay says %s" e.seq
          e.req_id e.l_key
          (match e.read with Some v -> string_of_int v | None -> "None")
          (match expect with Some v -> string_of_int v | None -> "None");
      match e.wrote with
      | Some v -> Hashtbl.replace tbl e.l_key v
      | None -> ())
    log;
  tbl

let check_final_state kv replay =
  let store_n = Kv.fold (fun _ _ n -> n + 1) kv 0 in
  Alcotest.(check int) "store and replay agree on size"
    (Hashtbl.length replay) store_n;
  Kv.fold
    (fun k v () ->
      match Hashtbl.find_opt replay k with
      | Some v' when v' = v -> ()
      | got ->
        Alcotest.failf "final state: key %d is %d in store, %s in replay" k v
          (match got with Some v -> string_of_int v | None -> "absent"))
    kv ()

let random_op rng keyspace =
  let key () = Sm.int rng keyspace in
  let multi n = Array.init (1 + Sm.int rng n) (fun _ -> key ()) in
  match Sm.int rng 10 with
  | 0 | 1 | 2 -> Kv.Get (key ())
  | 3 | 4 -> Kv.Put (key (), Sm.int rng 1000)
  | 5 | 6 -> Kv.Add (key (), 1 + Sm.int rng 9)
  | 7 | 8 -> Kv.Multi_get (multi 4)
  | _ -> Kv.Multi_put (Array.map (fun k -> (k, Sm.int rng 1000)) (multi 4))

let test_kv_log_replay_sequential () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 ~log:true () in
  let rng = Sm.make ~seed:7 in
  for _ = 1 to 2_000 do
    ignore (Kv.exec kv (random_op rng 100))
  done;
  let replay = replay_check (Kv.log kv) in
  check_final_state kv replay

(* Raw domains hammering the store: the handoff protocol under real
   parallelism with no scheduler in the way. *)
let test_kv_stress_domains () =
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 ~log:true () in
  let domains = 4 and per_domain = 2_000 in
  let pendings = Atomic.make 0 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Sm.make ~seed:(1000 + d) in
            for _ = 1 to per_domain do
              match Kv.exec kv (random_op rng 64) with
              | Kv.Pending -> Atomic.incr pendings
              | _ -> ()
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "exec never returns Pending" 0 (Atomic.get pendings);
  Alcotest.(check int) "no drops under default cap" 0 (Kv.dropped kv);
  let log = Kv.log kv in
  Alcotest.(check bool) "log non-empty" true (log <> []);
  let replay = replay_check log in
  check_final_state kv replay

(* -- linearizability smoke across the three engine families --------------- *)

let smoke_on (module R : Nowa.RUNTIME) () =
  let kv = Kv.create ~shards:8 ~buckets_per_shard:4 ~log:true () in
  let n = 1_500 in
  let bad = Atomic.make 0 in
  let conf = Nowa.Config.with_workers 4 in
  R.run ~conf (fun () ->
      R.scope (fun sc ->
          let rng = Sm.make ~seed:11 in
          for _ = 1 to n do
            let op = random_op rng 128 in
            R.spawn_unit sc (fun () ->
                match Kv.exec kv op with
                | Kv.Pending | Kv.Dropped -> Atomic.incr bad
                | _ -> ())
          done));
  Alcotest.(check int) "every request served" 0 (Atomic.get bad);
  let log = Kv.log kv in
  (* Every mutation and read went through the combiner exactly once. *)
  let replay = replay_check log in
  check_final_state kv replay

(* Under the serial elision, requests apply in arrival order, so the
   store must agree with a plain sequential reference fed the same
   stream — determinism end to end, not just log consistency. *)
let test_serial_arrival_order () =
  let module R = Nowa_runtime.Serial_runtime in
  let kv = Kv.create ~shards:4 ~buckets_per_shard:4 () in
  let reference = Hashtbl.create 256 in
  let model op =
    match op with
    | Kv.Get k ->
      (match Hashtbl.find_opt reference k with
      | Some v -> Kv.Hit v
      | None -> Kv.Miss)
    | Kv.Put (k, v) ->
      Hashtbl.replace reference k v;
      Kv.Ack
    | Kv.Add (k, d) ->
      let nv =
        match Hashtbl.find_opt reference k with Some v -> v + d | None -> d
      in
      Hashtbl.replace reference k nv;
      Kv.Hit nv
    | Kv.Multi_get ks ->
      Kv.Many (Array.map (fun k -> Hashtbl.find_opt reference k) ks)
    | Kv.Multi_put kvs ->
      Array.iter (fun (k, v) -> Hashtbl.replace reference k v) kvs;
      Kv.Ack
  in
  R.run (fun () ->
      R.scope (fun sc ->
          let rng = Sm.make ~seed:23 in
          for _ = 1 to 2_000 do
            let op = random_op rng 100 in
            R.spawn_unit sc (fun () ->
                let got = Kv.exec kv op in
                let want = model op in
                if got <> want then
                  Alcotest.fail "serial run diverged from reference")
          done));
  Hashtbl.iter
    (fun k v ->
      match Kv.exec kv (Kv.Get k) with
      | Kv.Hit v' when v' = v -> ()
      | _ -> Alcotest.failf "final state mismatch at key %d" k)
    reference

(* -- workload & load generator -------------------------------------------- *)

let test_workload_deterministic () =
  let mix = Option.get (Workload.find_mix "a") in
  let spec =
    { (Workload.default_spec ~mix) with Workload.requests = 500; warmup = 50 }
  in
  let s1 = Workload.generate spec and s2 = Workload.generate spec in
  Alcotest.(check int) "same length" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i (e1 : Workload.event) ->
      let e2 = s2.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "event %d identical" i)
        true
        (e1.Workload.at_ns = e2.Workload.at_ns && e1.Workload.op = e2.Workload.op))
    s1;
  (* Arrival times strictly ordered, ops match the mix (A: reads+updates). *)
  Array.iter
    (fun (e : Workload.event) ->
      match e.Workload.cls with
      | Workload.Read | Workload.Update -> ()
      | _ -> Alcotest.fail "mix A generated a non-read/update op")
    s1

let test_loadgen_smoke () =
  let module L = Nowa_server.Loadgen.Make (Nowa.Presets.Nowa) in
  let mix = Option.get (Workload.find_mix "A") in
  let spec =
    {
      (Workload.default_spec ~mix) with
      Workload.records = 200;
      rate = 100_000.0;
      warmup = 50;
      requests = 400;
      shards = 8;
      buckets_per_shard = 8;
    }
  in
  let conf = Nowa.Config.with_workers 4 in
  let r = L.run ~conf spec in
  Alcotest.(check int) "all measured requests completed" 400 r.Nowa_server.Loadgen.completed;
  Alcotest.(check int) "no drops" 0 r.Nowa_server.Loadgen.dropped;
  Alcotest.(check bool) "throughput positive" true
    (r.Nowa_server.Loadgen.throughput > 0.0);
  let total = r.Nowa_server.Loadgen.total in
  Alcotest.(check bool) "p50 finite and positive" true
    (total.Nowa_server.Loadgen.p50_ns > 0.0);
  Alcotest.(check bool) "p999 >= p50" true
    (total.Nowa_server.Loadgen.p999_ns >= total.Nowa_server.Loadgen.p50_ns);
  (* The JSON row is well-formed enough for the bench harness greps. *)
  let json = Nowa_server.Loadgen.json_of_report r in
  Alcotest.(check bool) "json has mix" true
    (String.length json > 0 && json.[0] = '{')

let () =
  Alcotest.run "nowa_server"
    [
      ( "kv",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "multi-key cross-shard" `Quick test_kv_multi;
          Alcotest.test_case "admission control" `Quick
            test_kv_admission_control;
          Alcotest.test_case "log replay sequential" `Quick
            test_kv_log_replay_sequential;
          Alcotest.test_case "stress domains" `Quick test_kv_stress_domains;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "nowa (continuation-stealing)" `Quick
            (smoke_on (module Nowa.Presets.Nowa));
          Alcotest.test_case "tbb (child-stealing)" `Quick
            (smoke_on (module Nowa.Presets.Tbb));
          Alcotest.test_case "gomp (central queue)" `Quick
            (smoke_on (module Nowa.Presets.Gomp));
          Alcotest.test_case "serial arrival order" `Quick
            test_serial_arrival_order;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "workload deterministic" `Quick
            test_workload_deterministic;
          Alcotest.test_case "open-loop smoke" `Quick test_loadgen_smoke;
        ] );
    ]
