(* Tests for the runtime-health subsystem: wait-free heartbeats, the
   stall/convoy watchdog, the SLO burn-rate evaluator, the flight
   recorder, and the monitor's lifecycle discipline.

   The false-positive tests are the load-bearing ones: a watchdog that
   cries wolf on parked or merely-slow workers is worse than none, so
   parked pools and healthy busy pools must come out clean, while an
   injected stall and an injected combiner wedge must each be caught
   within two scan periods. *)

module Health = Nowa_runtime.Health
module Config = Nowa_runtime.Config

let conf ?(watchdog = 10) ?(stall_scans = 2) ?(dump = false) workers =
  {
    (Config.with_workers workers) with
    Config.watchdog_interval_ms = watchdog;
    watchdog_stall_scans = stall_scans;
    watchdog_dump = dump;
  }

(* -- injection primitive ------------------------------------------------ *)

let test_inject_spins () =
  Health.Inject.clear ();
  Health.Inject.stall ~worker:0 ~ms:50;
  let b = Health.Beats.create ~workers:1 in
  let t0 = Nowa_util.Clock.now_ns () in
  Health.Beats.beat b 0;
  let dt_ms = float (Nowa_util.Clock.now_ns () - t0) /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "first beat spun (%.1fms)" dt_ms)
    true (dt_ms >= 45.0);
  let t1 = Nowa_util.Clock.now_ns () in
  Health.Beats.beat b 0;
  let dt2_ms = float (Nowa_util.Clock.now_ns () - t1) /. 1e6 in
  Alcotest.(check bool) "one-shot: second beat is free" true (dt2_ms < 45.0);
  Alcotest.(check int) "both beats counted" 2 (Health.Beats.read b 0)

let test_parse_stall () =
  Alcotest.(check (option (pair int int)))
    "worker:N:ms" (Some (3, 75))
    (Health.Inject.parse_stall "worker:3:75");
  Alcotest.(check (option (pair int int)))
    "N:ms" (Some (1, 500))
    (Health.Inject.parse_stall "1:500");
  Alcotest.(check (option (pair int int)))
    "N defaults 200ms" (Some (2, 200))
    (Health.Inject.parse_stall "2");
  Alcotest.(check (option (pair int int)))
    "garbage" None
    (Health.Inject.parse_stall "x:y")

(* -- end-to-end detection ------------------------------------------------ *)

let spin_ms ms =
  let stop = Nowa_util.Clock.now_ns () + (ms * 1_000_000) in
  while Nowa_util.Clock.now_ns () < stop do
    Domain.cpu_relax ()
  done

(* Keep every worker visibly busy (spawn-heavy, fine-grained) while one
   injected worker wedges: the watchdog must flag that worker.  The
   stall threshold (50ms x 5 = 250ms) sits well above OS preemption
   jitter (this may be a single-core host time-sharing all workers) and
   well below the 900ms injected wedge. *)
let test_stall_detected () =
  Health.Inject.clear ();
  Health.Inject.stall ~worker:1 ~ms:900;
  Nowa.run ~conf:(conf ~watchdog:50 ~stall_scans:5 4) (fun () ->
      Nowa.parallel_for ~grain:1 0 400 (fun _ -> spin_ms 1));
  Health.Inject.clear ();
  let stalled =
    List.filter_map
      (function Health.Worker_stalled { worker; _ } -> Some worker | _ -> None)
      (Health.verdicts ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "worker 1 flagged (verdicts: %s)"
       (String.concat "; "
          (List.map Health.verdict_to_string (Health.verdicts ()))))
    true
    (List.mem 1 stalled)

(* A pool that parks (tiny workload, park-after policy, long idle tail)
   must never produce a stall or starvation verdict: parked-idle is
   healthy. *)
let test_parked_is_not_stalled () =
  Health.Inject.clear ();
  (* The stall threshold (stall_scans * interval = 150ms) must exceed
     the longest legitimate quiet stretch: the 40ms inter-burst gap on
     the main strand plus scheduling jitter on an oversubscribed host --
     that is the operational contract of any heartbeat watchdog.  Parked
     workers must stay clean regardless of how many quiet scans elapse,
     which is what the tight 5ms scan cadence exercises. *)
  let c =
    {
      (conf ~watchdog:5 ~stall_scans:30 4) with
      Config.idle_policy = Config.Park_after 64;
    }
  in
  Nowa.run ~conf:c (fun () ->
      (* Short bursts separated by idle gaps long enough for every
         worker to park across many watchdog scans. *)
      for _ = 1 to 5 do
        Nowa.parallel_for ~grain:1 0 16 (fun _ -> spin_ms 1);
        spin_ms 40
      done);
  Alcotest.(check (list string))
    "no verdicts on a parking pool" []
    (List.map Health.verdict_to_string (Health.verdicts ()))

(* A healthy saturated pool: no false positives either.  The threshold
   (25ms x 20 = 500ms) tolerates preemption gaps when all workers
   time-share a single core. *)
let test_busy_is_not_stalled () =
  Health.Inject.clear ();
  Nowa.run ~conf:(conf ~watchdog:25 ~stall_scans:20 4) (fun () ->
      Nowa.parallel_for ~grain:1 0 256 (fun _ -> spin_ms 1));
  Alcotest.(check (list string))
    "no verdicts on a busy pool" []
    (List.map Health.verdict_to_string (Health.verdicts ()))

(* -- monitor lifecycle --------------------------------------------------- *)

let test_no_monitor_leak_across_lifecycles () =
  Health.Inject.clear ();
  let before = Health.Monitor.started_total () in
  for _ = 1 to 100 do
    ignore (Nowa.run ~conf:(conf ~watchdog:1 2) (fun () -> 1 + 1))
  done;
  Alcotest.(check int) "all monitors joined" 0 (Health.Monitor.live ());
  Alcotest.(check int) "one monitor per run" 100
    (Health.Monitor.started_total () - before);
  (* And a watchdog-off run starts none. *)
  ignore (Nowa.run ~conf:(conf ~watchdog:0 2) (fun () -> ()));
  Alcotest.(check int) "off means off" 100
    (Health.Monitor.started_total () - before)

let test_scan_gauge_exported () =
  Health.Inject.clear ();
  ignore
    (Nowa.run ~conf:(conf ~watchdog:5 2) (fun () ->
         spin_ms 30;
         42));
  let text = Nowa_obs.Expose.to_prometheus () in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "nowa_watchdog_last_scan_ns present" true
    (has_sub text "nowa_watchdog_last_scan_ns")

(* -- burn rate ----------------------------------------------------------- *)

module Burn = Nowa_obs.Burn_rate

let test_burn_rate_math () =
  let h = Nowa_obs.Histogram.create "burn_test" in
  let br =
    Burn.create
      ~windows:[| { Burn.long_s = 1.0; short_s = 0.5; factor = 2.0 } |]
      ~slo_ns:1_000 ~budget:0.1 ()
  in
  let s = 1_000_000_000 in
  (* t=0: 100 good requests. *)
  for _ = 1 to 100 do
    Nowa_obs.Histogram.observe h 10
  done;
  Burn.sample br h ~now_ns:0;
  (* t=0.75s (inside the short window ending at t=1s): 100 more, half
     of them over the SLO.  Both windows anchor at the t=0 sample, so
     burn = (50/100)/0.1 = 5x over both -> breach. *)
  for _ = 1 to 50 do
    Nowa_obs.Histogram.observe h 10
  done;
  for _ = 1 to 50 do
    Nowa_obs.Histogram.observe h 1_000_000
  done;
  Burn.sample br h ~now_ns:(3 * s / 4);
  let breaches = Burn.observe br h ~now_ns:s in
  Alcotest.(check int) "breach fires" 1 (List.length breaches);
  (match breaches with
  | [ b ] ->
    Alcotest.(check bool)
      (Printf.sprintf "long burn ~5x (got %.2f)" b.Burn.long_burn)
      true
      (b.Burn.long_burn > 4.0 && b.Burn.long_burn < 6.0)
  | _ -> ());
  (* A quiet follow-up window clears the short burn -> no breach. *)
  for _ = 1 to 100 do
    Nowa_obs.Histogram.observe h 10
  done;
  let later = Burn.observe br h ~now_ns:(2 * s) in
  Alcotest.(check int) "recovers" 0 (List.length later)

let test_burn_rate_all_good () =
  let h = Nowa_obs.Histogram.create "burn_good" in
  let br = Burn.create ~slo_ns:1_000_000 ~budget:0.01 () in
  for i = 0 to 10 do
    for _ = 1 to 50 do
      Nowa_obs.Histogram.observe h 500
    done;
    Alcotest.(check int) "never breaches" 0
      (List.length (Burn.observe br h ~now_ns:(i * 100_000_000)))
  done

(* -- verdict sources ----------------------------------------------------- *)

let test_source_feeds_watchdog () =
  Health.Inject.clear ();
  Health.register_source ~name:"test-src" (fun () ->
      [ Health.Convoy { shard = 7; depth = 3; held_ms = 99.0 } ]);
  Nowa.run ~conf:(conf ~watchdog:5 2) (fun () -> spin_ms 30);
  Health.unregister_source ~name:"test-src";
  let convoys =
    List.filter_map
      (function Health.Convoy { shard; _ } -> Some shard | _ -> None)
      (Health.verdicts ())
  in
  Alcotest.(check bool) "source verdict surfaced" true (List.mem 7 convoys)

(* -- KV combiner wedge --------------------------------------------------- *)

let test_kv_wedge_detected () =
  Health.Inject.clear ();
  let kv = Nowa_server.Kv.create ~shards:4 ~buckets_per_shard:8 () in
  Health.register_source ~name:"kv-test" (fun () ->
      Nowa_server.Kv.convoys ~hold_ms:20.0 ~min_depth:1 kv);
  let shard0_key =
    (* find a key homed on shard 0 so the wedge and the traffic meet *)
    let rec go k =
      if Nowa_server.Kv.shard_of_key kv k = 0 then k else go (k + 1)
    in
    go 0
  in
  Nowa_server.Kv.inject_wedge ~shard:0 ~ms:120;
  Nowa.run ~conf:(conf ~watchdog:10 4) (fun () ->
      Nowa.scope (fun sc ->
          (* One op claims shard 0 and wedges; the rest pile up behind
             the held combining flag. *)
          for i = 0 to 63 do
            Nowa.spawn_unit sc (fun () ->
                ignore
                  (Nowa_server.Kv.exec kv
                     (Nowa_server.Kv.Add (shard0_key, i))))
          done));
  Nowa_server.Kv.clear_wedge ();
  Health.unregister_source ~name:"kv-test";
  let convoys =
    List.filter_map
      (function Health.Convoy { shard; _ } -> Some shard | _ -> None)
      (Health.verdicts ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "shard 0 convoy flagged (verdicts: %s)"
       (String.concat "; "
          (List.map Health.verdict_to_string (Health.verdicts ()))))
    true (List.mem 0 convoys)

(* -- flight recorder ------------------------------------------------------ *)

let test_dump_on_verdict_writes_bundle () =
  Health.Inject.clear ();
  Health.Inject.stall ~worker:1 ~ms:120;
  let c = { (conf ~watchdog:20 ~dump:true 4) with Config.trace_capacity = 4096 } in
  Nowa.run ~conf:c (fun () ->
      Nowa.parallel_for ~grain:1 0 300 (fun _ -> spin_ms 1));
  Health.Inject.clear ();
  match Health.dumped () with
  | [] -> Alcotest.fail "no bundle written for an injected stall"
  | dir :: _ ->
    Alcotest.(check bool) "verdicts.json" true
      (Sys.file_exists (Filename.concat dir "verdicts.json"));
    Alcotest.(check bool) "metrics.prom" true
      (Sys.file_exists (Filename.concat dir "metrics.prom"));
    Alcotest.(check bool) "trace.json" true
      (Sys.file_exists (Filename.concat dir "trace.json"));
    (* The verdict table must be parseable enough to name the reason. *)
    let ic = open_in (Filename.concat dir "verdicts.json") in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the stall" true
      (has_sub body "worker_stalled")

let test_dump_now_manual () =
  Health.Inject.clear ();
  let dir = Health.dump_now ~reason:"test manual!" in
  Alcotest.(check bool) "sanitised dir" true
    (Sys.file_exists (Filename.concat dir "verdicts.json"))

(* -- ring freeze under concurrent writers -------------------------------- *)

(* Property: a snapshot taken while 4 domains hammer their own rings
   never returns a torn event.  Writers encode a per-slot invariant
   (arg = ts lxor 0xABCD, arg2 = ts + 1) that any mixed-slot read would
   break. *)
let test_ring_snapshot_no_tear () =
  let n_workers = 4 in
  let cap = 256 in
  let tr = Nowa_trace.Trace.create ~workers:n_workers ~capacity:cap () in
  let stop = Atomic.make false in
  let writers =
    List.init n_workers (fun w ->
        Domain.spawn (fun () ->
            let r = Nowa_trace.Trace.worker tr w in
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              let ts = !i in
              Nowa_trace.Ring.emit_at2 r ~ts Nowa_trace.Event.Spawn
                (ts lxor 0xABCD) (ts + 1);
              if !i land 63 = 0 then Domain.cpu_relax ()
            done))
  in
  let bad = ref 0 and seen = ref 0 in
  for _ = 1 to 200 do
    let per_worker, _dropped = Nowa_trace.Trace.freeze ~window:cap tr in
    Array.iter
      (fun evs ->
        Array.iter
          (fun (e : Nowa_trace.Event.t) ->
            incr seen;
            if
              e.Nowa_trace.Event.arg <> e.Nowa_trace.Event.ts lxor 0xABCD
              || e.Nowa_trace.Event.arg2 <> e.Nowa_trace.Event.ts + 1
            then incr bad)
          evs)
      per_worker
  done;
  Atomic.set stop true;
  List.iter Domain.join writers;
  Alcotest.(check int)
    (Printf.sprintf "no torn events in %d sampled" !seen)
    0 !bad;
  Alcotest.(check bool) "snapshots saw real traffic" true (!seen > 0)

let test_ring_snapshot_quiescent_exact () =
  (* Rings round capacity up to a power of two with a floor of 16. *)
  let r = Nowa_trace.Ring.create ~capacity:16 in
  Alcotest.(check int) "capacity floor" 16 (Nowa_trace.Ring.capacity r);
  for i = 1 to 5 do
    Nowa_trace.Ring.emit_at2 r ~ts:i Nowa_trace.Event.Spawn i 0
  done;
  let evs, dropped = Nowa_trace.Ring.snapshot r ~worker:0 in
  Alcotest.(check int) "all five kept" 5 (Array.length evs);
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Array.iteri
    (fun i (e : Nowa_trace.Event.t) ->
      Alcotest.(check int) "in order" (i + 1) e.Nowa_trace.Event.ts)
    evs;
  (* Overflow: the snapshot window is the last [capacity] events; the
     overwritten prefix shows up in the ring's lifetime [dropped]
     counter, not as snapshot discards (the ring is quiescent, so every
     sampled slot is intact). *)
  for i = 6 to 40 do
    Nowa_trace.Ring.emit_at2 r ~ts:i Nowa_trace.Event.Spawn i 0
  done;
  let evs, discards = Nowa_trace.Ring.snapshot r ~worker:0 in
  Alcotest.(check int) "window = capacity" 16 (Array.length evs);
  Alcotest.(check int) "no discards when quiescent" 0 discards;
  Alcotest.(check int) "overwritten counted for the lifetime" 24
    (Nowa_trace.Ring.dropped r);
  Alcotest.(check int) "newest kept" 40
    evs.(Array.length evs - 1).Nowa_trace.Event.ts;
  Alcotest.(check int) "oldest surviving" 25 evs.(0).Nowa_trace.Event.ts

(* -- /healthz & /statusz -------------------------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read fd chunk 0 1024 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_health_endpoints () =
  Health.Inject.clear ();
  match
    Nowa_obs.Server.start ~healthz:Health.healthz ~statusz:Health.statusz
      ~addr:"127.0.0.1:0" ()
  with
  | Error msg -> Alcotest.fail msg
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Nowa_obs.Server.stop srv)
      (fun () ->
        let port = Nowa_obs.Server.port srv in
        (* A clean run resets the verdict log left over from earlier
           test cases; healthz must then report healthy. *)
        ignore (Nowa.run ~conf:(conf ~watchdog:5 2) (fun () -> 7));
        let h = http_get port "/healthz" in
        Alcotest.(check bool) "healthz 200 on a healthy pool" true
          (String.length h >= 12 && String.sub h 9 3 = "200");
        (* Run with an injected stall so the status flips unhealthy. *)
        Health.Inject.stall ~worker:1 ~ms:120;
        Nowa.run ~conf:(conf ~watchdog:20 4) (fun () ->
            Nowa.parallel_for ~grain:1 0 300 (fun _ -> spin_ms 1));
        Health.Inject.clear ();
        let h = http_get port "/healthz" in
        Alcotest.(check bool)
          (Printf.sprintf "healthz 503 after stall verdict (%s)"
             (String.sub h 0 (min 40 (String.length h))))
          true
          (String.length h >= 12 && String.sub h 9 3 = "503");
        let s = http_get port "/statusz" in
        let has_sub str sub =
          let n = String.length str and m = String.length sub in
          let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "statusz names the engine" true
          (has_sub s "nowa");
        Alcotest.(check bool) "statusz lists the stall" true
          (has_sub s "stalled (");
        (* Plain scrape still works alongside the routes. *)
        let m = http_get port "/metrics" in
        Alcotest.(check bool) "metrics route intact" true
          (has_sub m "nowa_watchdog_last_scan_ns"))

let () =
  Alcotest.run "health"
    [
      ( "inject",
        [
          Alcotest.test_case "beat spins once" `Quick test_inject_spins;
          Alcotest.test_case "parse_stall" `Quick test_parse_stall;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "stall detected" `Quick test_stall_detected;
          Alcotest.test_case "parked is not stalled" `Quick
            test_parked_is_not_stalled;
          Alcotest.test_case "busy is not stalled" `Quick
            test_busy_is_not_stalled;
          Alcotest.test_case "no monitor leak (100 lifecycles)" `Quick
            test_no_monitor_leak_across_lifecycles;
          Alcotest.test_case "scan gauge exported" `Quick
            test_scan_gauge_exported;
          Alcotest.test_case "verdict source polled" `Quick
            test_source_feeds_watchdog;
          Alcotest.test_case "kv wedge -> convoy verdict" `Quick
            test_kv_wedge_detected;
        ] );
      ( "burn-rate",
        [
          Alcotest.test_case "breach math" `Quick test_burn_rate_math;
          Alcotest.test_case "all good, no breach" `Quick
            test_burn_rate_all_good;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "dump on verdict" `Quick
            test_dump_on_verdict_writes_bundle;
          Alcotest.test_case "manual dump" `Quick test_dump_now_manual;
        ] );
      ( "ring-freeze",
        [
          Alcotest.test_case "no tear under 4 writers" `Quick
            test_ring_snapshot_no_tear;
          Alcotest.test_case "quiescent exact" `Quick
            test_ring_snapshot_quiescent_exact;
        ] );
      ( "endpoints",
        [ Alcotest.test_case "healthz/statusz/metrics" `Quick test_health_endpoints ] );
    ]
