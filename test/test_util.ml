(* Tests for nowa_util: statistics (the paper's evaluation methodology),
   the xoshiro PRNG, backoff, table rendering, clock, padding. *)

open Nowa_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let check_float name expected actual =
  Alcotest.(check bool) name true (feq expected actual)

(* -- Stats ---------------------------------------------------------- *)

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "singleton" 7.0 (Stats.mean [ 7.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_stddev () =
  (* Sample stddev of 2,4,4,4,5,5,7,9 is sqrt(32/7). *)
  check_float "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]);
  check_float "constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check_float "short" 0.0 (Stats.stddev [ 42.0 ])

let test_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "identity" 5.0 (Stats.geomean [ 5.0; 5.0; 5.0 ])

let test_median () =
  check_float "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_min_max () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_speedup () =
  (* Paper methodology: speedups are per-run T_s/T_n, then geometric mean. *)
  let s = Stats.speedup_of_runs ~serial_mean:10.0 [ 2.0; 5.0 ] in
  check_float "geo of 5 and 2" (sqrt 10.0) s.Stats.geo;
  Alcotest.(check int) "runs" 2 s.Stats.runs;
  let flat = Stats.speedup_of_runs ~serial_mean:8.0 [ 2.0; 2.0; 2.0 ] in
  check_float "flat sd" 0.0 flat.Stats.sd

let test_ratio_geomean () =
  check_float "ratios" 2.0 (Stats.ratio_geomean [ (4.0, 2.0); (8.0, 4.0) ]);
  check_float "mixed" 1.0 (Stats.ratio_geomean [ (2.0, 1.0); (1.0, 2.0) ])

let test_percentile () =
  (* Nearest-rank: rank = ceil(p/100 * n), 1-based. *)
  let l = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  check_float "p30 of 5" 20.0 (Stats.percentile 30.0 l);
  check_float "p40 of 5" 20.0 (Stats.percentile 40.0 l);
  check_float "p50 of 5" 35.0 (Stats.percentile 50.0 l);
  check_float "p100 is max" 50.0 (Stats.percentile 100.0 l);
  check_float "p0 is min" 15.0 (Stats.percentile 0.0 l);
  check_float "unsorted input" 35.0 (Stats.percentile 50.0 [ 50.0; 15.0; 40.0; 20.0; 35.0 ])

let test_percentile_edges () =
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.percentile 50.0 []));
  check_float "single p0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  check_float "single p50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  check_float "single p100" 7.0 (Stats.percentile 100.0 [ 7.0 ]);
  (* Out-of-range p clamps rather than raising. *)
  check_float "p>100 clamps" 9.0 (Stats.percentile 150.0 [ 1.0; 9.0 ]);
  check_float "p<0 clamps" 1.0 (Stats.percentile (-5.0) [ 1.0; 9.0 ])

(* -- Welford --------------------------------------------------------- *)

let welford_of l =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) l;
  w

let test_welford_closed_form () =
  (* Same reference sample as test_stddev: mean 5, variance 32/7. *)
  let data = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  let w = welford_of data in
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  check_float "online mean = closed form" (Stats.mean data)
    (Stats.Welford.mean w);
  check_float "online variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_float "online stddev = closed form" (Stats.stddev data)
    (Stats.Welford.stddev w)

let test_welford_edge_cases () =
  let w = Stats.Welford.create () in
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Stats.Welford.mean w));
  check_float "empty variance" 0.0 (Stats.Welford.variance w);
  Stats.Welford.add w 3.0;
  check_float "singleton mean" 3.0 (Stats.Welford.mean w);
  check_float "singleton variance" 0.0 (Stats.Welford.variance w)

let test_welford_merge () =
  (* Chan et al. pairwise merge must equal the single-stream result,
     regardless of how the stream is split across workers. *)
  let data = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9.; 11.; 0.5 ] in
  let whole = welford_of data in
  let a = welford_of [ 2.; 4.; 4. ] in
  let b = welford_of [ 4.; 5.; 5.; 7.; 9.; 11.; 0.5 ] in
  let merged = Stats.Welford.merge a b in
  Alcotest.(check int) "merged count" (Stats.Welford.count whole)
    (Stats.Welford.count merged);
  check_float "merged mean" (Stats.Welford.mean whole)
    (Stats.Welford.mean merged);
  check_float "merged variance" (Stats.Welford.variance whole)
    (Stats.Welford.variance merged);
  (* Merging with an empty accumulator is the identity. *)
  let with_empty = Stats.Welford.merge whole (Stats.Welford.create ()) in
  check_float "merge with empty" (Stats.Welford.mean whole)
    (Stats.Welford.mean with_empty)

(* -- Xoshiro --------------------------------------------------------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.make ~seed:123 and b = Xoshiro.make ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_seed_sensitivity () =
  let a = Xoshiro.make ~seed:1 and b = Xoshiro.make ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Xoshiro.next a) (Xoshiro.next b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_xoshiro_int_bounds () =
  let r = Xoshiro.make ~seed:5 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Xoshiro.int r bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let test_xoshiro_float_range () =
  let r = Xoshiro.make ~seed:9 in
  for _ = 1 to 1000 do
    let v = Xoshiro.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_xoshiro_distribution () =
  (* Coarse uniformity: 10 buckets over 10_000 draws. *)
  let r = Xoshiro.make ~seed:77 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Xoshiro.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    buckets

let test_xoshiro_split () =
  let r = Xoshiro.make ~seed:4 in
  let s = Xoshiro.split r in
  let equal_count = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Xoshiro.next r) (Xoshiro.next s) then incr equal_count
  done;
  Alcotest.(check bool) "split independent" true (!equal_count < 4)

let prop_xoshiro_int_in_bounds =
  QCheck.Test.make ~name:"xoshiro int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Xoshiro.make ~seed in
      let v = Xoshiro.int r bound in
      v >= 0 && v < bound)

(* -- Backoff --------------------------------------------------------- *)

let test_backoff_steps () =
  let b = Backoff.make ~min_spins:1 ~max_spins:4 () in
  Alcotest.(check int) "zero" 0 (Backoff.steps b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "two" 2 (Backoff.steps b);
  Backoff.reset b;
  Alcotest.(check int) "reset" 0 (Backoff.steps b)

let test_backoff_growth () =
  (* Width doubles from min_spins, saturates at max_spins, and reset
     restores both the width and the step count. *)
  let b = Backoff.make ~min_spins:2 ~max_spins:16 () in
  Alcotest.(check int) "initial width" 2 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "doubled" 4 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "doubled again" 8 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "at cap" 16 (Backoff.spins b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "saturated" 16 (Backoff.spins b);
  Alcotest.(check int) "five steps" 5 (Backoff.steps b);
  Backoff.reset b;
  Alcotest.(check int) "width back to min" 2 (Backoff.spins b);
  Alcotest.(check int) "count back to zero" 0 (Backoff.steps b)

let test_backoff_defaults () =
  let b = Backoff.make () in
  Alcotest.(check int) "default min" 4 (Backoff.spins b);
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Alcotest.(check int) "default cap" 1024 (Backoff.spins b)

(* -- Clock ----------------------------------------------------------- *)

let test_clock_never_backwards () =
  (* The clamp in Clock.now_ns must make rapid consecutive reads
     non-decreasing even if gettimeofday steps backwards underneath. *)
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 100_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done

let test_clock_monotonic_enough () =
  let t0 = Clock.now_ns () in
  let dt, () = Clock.time_it (fun () -> Clock.spin_ns 1_000_000) in
  let t1 = Clock.now_ns () in
  Alcotest.(check bool) "advanced" true (t1 > t0);
  Alcotest.(check bool) "spin took at least ~1ms" true (dt >= 0.0005)

(* -- Table ----------------------------------------------------------- *)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bc"; "23" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check string) "header" "| name | value |" (List.nth lines 0);
  Alcotest.(check string) "separator" "|------|-------|" (List.nth lines 1);
  Alcotest.(check string) "right-aligned numbers" "| a    |     1 |" (List.nth lines 2)

let test_table_ragged_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length out > 0)

(* -- Padding --------------------------------------------------------- *)

let test_padding_atomic () =
  let a = Padding.atomic 41 in
  Atomic.incr a;
  Alcotest.(check int) "works as atomic" 42 (Atomic.get a);
  Alcotest.(check bool) "int_array sized" true
    (Array.length (Padding.int_array 2) = 2 * Padding.cache_line_words)

(* -- Cpu ------------------------------------------------------------- *)

let test_cpu () =
  Alcotest.(check bool) "at least one core" true (Cpu.available_cores () >= 1);
  Alcotest.(check bool) "workers positive" true (Cpu.default_workers () >= 1)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "nowa_util"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "speedup methodology" `Quick test_speedup;
          Alcotest.test_case "ratio geomean" `Quick test_ratio_geomean;
          Alcotest.test_case "percentile nearest-rank" `Quick test_percentile;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
        ] );
      ( "welford",
        [
          Alcotest.test_case "closed form" `Quick test_welford_closed_form;
          Alcotest.test_case "edge cases" `Quick test_welford_edge_cases;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_xoshiro_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_xoshiro_int_bounds;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          Alcotest.test_case "distribution" `Quick test_xoshiro_distribution;
          Alcotest.test_case "split" `Quick test_xoshiro_split;
          qc prop_xoshiro_int_in_bounds;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "steps" `Quick test_backoff_steps;
          Alcotest.test_case "growth+cap+reset" `Quick test_backoff_growth;
          Alcotest.test_case "defaults" `Quick test_backoff_defaults;
        ] );
      ( "clock",
        [
          Alcotest.test_case "never backwards" `Quick test_clock_never_backwards;
          Alcotest.test_case "monotonic+spin" `Quick test_clock_monotonic_enough;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged_rows;
        ] );
      ("padding", [ Alcotest.test_case "atomic" `Quick test_padding_atomic ]);
      ("cpu", [ Alcotest.test_case "cores" `Quick test_cpu ]);
    ]
