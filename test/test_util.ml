(* Tests for nowa_util: statistics (the paper's evaluation methodology),
   the xoshiro PRNG, backoff, table rendering, clock, padding. *)

open Nowa_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let check_float name expected actual =
  Alcotest.(check bool) name true (feq expected actual)

(* -- Stats ---------------------------------------------------------- *)

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "singleton" 7.0 (Stats.mean [ 7.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_stddev () =
  (* Sample stddev of 2,4,4,4,5,5,7,9 is sqrt(32/7). *)
  check_float "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]);
  check_float "constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check_float "short" 0.0 (Stats.stddev [ 42.0 ])

let test_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "identity" 5.0 (Stats.geomean [ 5.0; 5.0; 5.0 ])

let test_median () =
  check_float "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_min_max () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_speedup () =
  (* Paper methodology: speedups are per-run T_s/T_n, then geometric mean. *)
  let s = Stats.speedup_of_runs ~serial_mean:10.0 [ 2.0; 5.0 ] in
  check_float "geo of 5 and 2" (sqrt 10.0) s.Stats.geo;
  Alcotest.(check int) "runs" 2 s.Stats.runs;
  let flat = Stats.speedup_of_runs ~serial_mean:8.0 [ 2.0; 2.0; 2.0 ] in
  check_float "flat sd" 0.0 flat.Stats.sd

let test_ratio_geomean () =
  check_float "ratios" 2.0 (Stats.ratio_geomean [ (4.0, 2.0); (8.0, 4.0) ]);
  check_float "mixed" 1.0 (Stats.ratio_geomean [ (2.0, 1.0); (1.0, 2.0) ])

let test_percentile () =
  (* Nearest-rank: rank = ceil(p/100 * n), 1-based. *)
  let l = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  check_float "p30 of 5" 20.0 (Stats.percentile 30.0 l);
  check_float "p40 of 5" 20.0 (Stats.percentile 40.0 l);
  check_float "p50 of 5" 35.0 (Stats.percentile 50.0 l);
  check_float "p100 is max" 50.0 (Stats.percentile 100.0 l);
  check_float "p0 is min" 15.0 (Stats.percentile 0.0 l);
  check_float "unsorted input" 35.0 (Stats.percentile 50.0 [ 50.0; 15.0; 40.0; 20.0; 35.0 ])

let test_percentile_edges () =
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.percentile 50.0 []));
  check_float "single p0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  check_float "single p50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  check_float "single p100" 7.0 (Stats.percentile 100.0 [ 7.0 ]);
  (* Out-of-range p clamps rather than raising. *)
  check_float "p>100 clamps" 9.0 (Stats.percentile 150.0 [ 1.0; 9.0 ]);
  check_float "p<0 clamps" 1.0 (Stats.percentile (-5.0) [ 1.0; 9.0 ])

(* -- Welford --------------------------------------------------------- *)

let welford_of l =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) l;
  w

let test_welford_closed_form () =
  (* Same reference sample as test_stddev: mean 5, variance 32/7. *)
  let data = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  let w = welford_of data in
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  check_float "online mean = closed form" (Stats.mean data)
    (Stats.Welford.mean w);
  check_float "online variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_float "online stddev = closed form" (Stats.stddev data)
    (Stats.Welford.stddev w)

let test_welford_edge_cases () =
  let w = Stats.Welford.create () in
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Stats.Welford.mean w));
  check_float "empty variance" 0.0 (Stats.Welford.variance w);
  Stats.Welford.add w 3.0;
  check_float "singleton mean" 3.0 (Stats.Welford.mean w);
  check_float "singleton variance" 0.0 (Stats.Welford.variance w)

let test_welford_merge () =
  (* Chan et al. pairwise merge must equal the single-stream result,
     regardless of how the stream is split across workers. *)
  let data = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9.; 11.; 0.5 ] in
  let whole = welford_of data in
  let a = welford_of [ 2.; 4.; 4. ] in
  let b = welford_of [ 4.; 5.; 5.; 7.; 9.; 11.; 0.5 ] in
  let merged = Stats.Welford.merge a b in
  Alcotest.(check int) "merged count" (Stats.Welford.count whole)
    (Stats.Welford.count merged);
  check_float "merged mean" (Stats.Welford.mean whole)
    (Stats.Welford.mean merged);
  check_float "merged variance" (Stats.Welford.variance whole)
    (Stats.Welford.variance merged);
  (* Merging with an empty accumulator is the identity. *)
  let with_empty = Stats.Welford.merge whole (Stats.Welford.create ()) in
  check_float "merge with empty" (Stats.Welford.mean whole)
    (Stats.Welford.mean with_empty)

(* -- Xoshiro --------------------------------------------------------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.make ~seed:123 and b = Xoshiro.make ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_seed_sensitivity () =
  let a = Xoshiro.make ~seed:1 and b = Xoshiro.make ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Xoshiro.next a) (Xoshiro.next b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_xoshiro_int_bounds () =
  let r = Xoshiro.make ~seed:5 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Xoshiro.int r bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let test_xoshiro_float_range () =
  let r = Xoshiro.make ~seed:9 in
  for _ = 1 to 1000 do
    let v = Xoshiro.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_xoshiro_distribution () =
  (* Coarse uniformity: 10 buckets over 10_000 draws. *)
  let r = Xoshiro.make ~seed:77 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Xoshiro.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    buckets

let test_xoshiro_split () =
  let r = Xoshiro.make ~seed:4 in
  let s = Xoshiro.split r in
  let equal_count = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Xoshiro.next r) (Xoshiro.next s) then incr equal_count
  done;
  Alcotest.(check bool) "split independent" true (!equal_count < 4)

let prop_xoshiro_int_in_bounds =
  QCheck.Test.make ~name:"xoshiro int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Xoshiro.make ~seed in
      let v = Xoshiro.int r bound in
      v >= 0 && v < bound)

(* -- Backoff --------------------------------------------------------- *)

let test_backoff_steps () =
  let b = Backoff.make ~min_spins:1 ~max_spins:4 () in
  Alcotest.(check int) "zero" 0 (Backoff.steps b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "two" 2 (Backoff.steps b);
  Backoff.reset b;
  Alcotest.(check int) "reset" 0 (Backoff.steps b)

let test_backoff_growth () =
  (* Width doubles from min_spins, saturates at max_spins, and reset
     restores both the width and the step count. *)
  let b = Backoff.make ~min_spins:2 ~max_spins:16 () in
  Alcotest.(check int) "initial width" 2 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "doubled" 4 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "doubled again" 8 (Backoff.spins b);
  Backoff.once b;
  Alcotest.(check int) "at cap" 16 (Backoff.spins b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "saturated" 16 (Backoff.spins b);
  Alcotest.(check int) "five steps" 5 (Backoff.steps b);
  Backoff.reset b;
  Alcotest.(check int) "width back to min" 2 (Backoff.spins b);
  Alcotest.(check int) "count back to zero" 0 (Backoff.steps b)

let test_backoff_defaults () =
  let b = Backoff.make () in
  Alcotest.(check int) "default min" 4 (Backoff.spins b);
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Alcotest.(check int) "default cap" 1024 (Backoff.spins b)

(* -- Clock ----------------------------------------------------------- *)

let test_clock_never_backwards () =
  (* The clamp in Clock.now_ns must make rapid consecutive reads
     non-decreasing even if gettimeofday steps backwards underneath. *)
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 100_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done

let test_clock_monotonic_enough () =
  let t0 = Clock.now_ns () in
  let dt, () = Clock.time_it (fun () -> Clock.spin_ns 1_000_000) in
  let t1 = Clock.now_ns () in
  Alcotest.(check bool) "advanced" true (t1 > t0);
  Alcotest.(check bool) "spin took at least ~1ms" true (dt >= 0.0005)

(* -- Table ----------------------------------------------------------- *)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bc"; "23" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check string) "header" "| name | value |" (List.nth lines 0);
  Alcotest.(check string) "separator" "|------|-------|" (List.nth lines 1);
  Alcotest.(check string) "right-aligned numbers" "| a    |     1 |" (List.nth lines 2)

let test_table_ragged_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length out > 0)

(* -- Padding --------------------------------------------------------- *)

let test_padding_atomic () =
  let a = Padding.atomic 41 in
  Atomic.incr a;
  Alcotest.(check int) "works as atomic" 42 (Atomic.get a);
  Alcotest.(check bool) "int_array sized" true
    (Array.length (Padding.int_array 2) = 2 * Padding.cache_line_words)

(* -- Cpu ------------------------------------------------------------- *)

let test_cpu () =
  Alcotest.(check bool) "at least one core" true (Cpu.available_cores () >= 1);
  Alcotest.(check bool) "workers positive" true (Cpu.default_workers () >= 1)

(* -- Splitmix -------------------------------------------------------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.make ~seed:42 and b = Splitmix.make ~seed:42 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "same seed, draw %d" i)
      (Splitmix.next a) (Splitmix.next b)
  done;
  let c = Splitmix.make ~seed:43 in
  let differs = ref false in
  for _ = 0 to 9 do
    if not (Int64.equal (Splitmix.next a) (Splitmix.next c)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_splitmix_bounds () =
  let r = Splitmix.make ~seed:7 in
  for _ = 0 to 999 do
    let i = Splitmix.int r 10 in
    Alcotest.(check bool) "int in [0,10)" true (i >= 0 && i < 10);
    let f = Splitmix.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_splitmix_split_independent () =
  (* The child stream must neither mirror the parent's continuation nor
     depend on when the parent is consumed relative to it. *)
  let p1 = Splitmix.make ~seed:42 in
  let c1 = Splitmix.split p1 in
  let child_first = Array.init 20 (fun _ -> Splitmix.next c1) in
  let parent_after = Array.init 20 (fun _ -> Splitmix.next p1) in
  Alcotest.(check bool)
    "child differs from parent continuation" true
    (child_first <> parent_after);
  (* Interleaving parent draws between child draws must not change the
     child stream (the whole point of splitting). *)
  let p2 = Splitmix.make ~seed:42 in
  let c2 = Splitmix.split p2 in
  let child_interleaved =
    Array.init 20 (fun _ ->
        ignore (Splitmix.next p2);
        Splitmix.next c2)
  in
  Alcotest.(check bool) "child stream stable under interleaving" true
    (child_first = child_interleaved)

let test_splitmix_scramble () =
  Alcotest.(check int) "stateless" (Splitmix.scramble 123) (Splitmix.scramble 123);
  for k = 0 to 999 do
    Alcotest.(check bool) "non-negative" true (Splitmix.scramble k >= 0)
  done;
  (* Adjacent inputs should land far apart (avalanche): count collisions
     of the low byte across consecutive keys — a linear map would give
     long runs. *)
  let same_low = ref 0 in
  for k = 0 to 999 do
    if Splitmix.scramble k land 0xff = Splitmix.scramble (k + 1) land 0xff then
      incr same_low
  done;
  Alcotest.(check bool) "low bits avalanche" true (!same_low < 30)

(* -- Zipf ------------------------------------------------------------ *)

let test_zipf_bounds_and_determinism () =
  let z = Zipf.create ~n:100 ~theta:0.99 in
  Alcotest.(check int) "n" 100 (Zipf.n z);
  let a = Splitmix.make ~seed:1 and b = Splitmix.make ~seed:1 in
  for _ = 0 to 9_999 do
    let ra = Zipf.draw z a and rb = Zipf.draw z b in
    Alcotest.(check int) "deterministic under fixed seed" ra rb;
    Alcotest.(check bool) "rank in [0,n)" true (ra >= 0 && ra < 100)
  done;
  (* Invalid parameters are rejected. *)
  Alcotest.check_raises "n too small"
    (Invalid_argument "Zipf.create: n must be >= 2") (fun () ->
      ignore (Zipf.create ~n:1 ~theta:0.5))

let test_zipf_rank1_frequency () =
  (* Statistical sanity: the empirical frequency of the hottest rank
     matches the analytic pmf within a few percent.  100k draws, so the
     binomial standard error on rank 0 (p ~ 0.19 at n=100, theta=0.99)
     is ~0.12% absolute — a 5% relative tolerance is ~10 sigma. *)
  let n = 100 and draws = 100_000 in
  let z = Zipf.create ~n ~theta:0.99 in
  let rng = Splitmix.make ~seed:42 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Zipf.draw z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let emp r = float_of_int counts.(r) /. float_of_int draws in
  let expect0 = Zipf.expected_freq z 0 in
  Alcotest.(check bool)
    (Printf.sprintf "rank-0 frequency %.4f within 5%% of %.4f" (emp 0) expect0)
    true
    (Float.abs (emp 0 -. expect0) <= 0.05 *. expect0);
  (* Monotone decay along the head of the distribution. *)
  Alcotest.(check bool) "rank 0 hotter than rank 1" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 1 hotter than rank 10" true (counts.(1) > counts.(10));
  (* The pmf itself sums to ~1. *)
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. Zipf.expected_freq z r
  done;
  Alcotest.(check bool) "pmf sums to 1" true (feq ~eps:1e-6 1.0 !total)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "nowa_util"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "speedup methodology" `Quick test_speedup;
          Alcotest.test_case "ratio geomean" `Quick test_ratio_geomean;
          Alcotest.test_case "percentile nearest-rank" `Quick test_percentile;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
        ] );
      ( "welford",
        [
          Alcotest.test_case "closed form" `Quick test_welford_closed_form;
          Alcotest.test_case "edge cases" `Quick test_welford_edge_cases;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_xoshiro_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_xoshiro_int_bounds;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          Alcotest.test_case "distribution" `Quick test_xoshiro_distribution;
          Alcotest.test_case "split" `Quick test_xoshiro_split;
          qc prop_xoshiro_int_in_bounds;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "steps" `Quick test_backoff_steps;
          Alcotest.test_case "growth+cap+reset" `Quick test_backoff_growth;
          Alcotest.test_case "defaults" `Quick test_backoff_defaults;
        ] );
      ( "clock",
        [
          Alcotest.test_case "never backwards" `Quick test_clock_never_backwards;
          Alcotest.test_case "monotonic+spin" `Quick test_clock_monotonic_enough;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged_rows;
        ] );
      ("padding", [ Alcotest.test_case "atomic" `Quick test_padding_atomic ]);
      ("cpu", [ Alcotest.test_case "cores" `Quick test_cpu ]);
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
          Alcotest.test_case "split independence" `Quick
            test_splitmix_split_independent;
          Alcotest.test_case "scramble" `Quick test_splitmix_scramble;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds+determinism" `Quick
            test_zipf_bounds_and_determinism;
          Alcotest.test_case "rank-1 frequency" `Quick test_zipf_rank1_frequency;
        ] );
    ]
