(* Tests for the work-stealing deques: sequential semantics (LIFO bottom,
   FIFO top), model-based random testing, the ABP effective-capacity
   pathology, growth, on_commit contracts, and multi-domain stress. *)

open Nowa_deque

module Int_elt = struct
  type t = int

  let dummy = min_int
end

module Cl = Chase_lev.Make (Int_elt)
module The = The_queue.Make (Int_elt)
module Abp_q = Abp.Make (Int_elt)
module Locked = Locked_deque.Make (Int_elt)

let no_commit _ = ()

(* Generic test battery over the shared signature. *)
module Battery (Q : Ws_deque_intf.S with type elt = int) = struct
  let test_lifo () =
    let q = Q.create () in
    for i = 1 to 100 do
      Q.push_bottom q i
    done;
    Alcotest.(check int) "size" 100 (Q.size q);
    for i = 100 downto 1 do
      Alcotest.(check (option int)) "pop order" (Some i) (Q.pop_bottom q)
    done;
    Alcotest.(check (option int)) "empty" None (Q.pop_bottom q)

  let test_steal_fifo () =
    let q = Q.create () in
    for i = 1 to 50 do
      Q.push_bottom q i
    done;
    for i = 1 to 50 do
      Alcotest.(check (option int)) "steal order" (Some i) (Q.steal q ~on_commit:no_commit)
    done;
    Alcotest.(check (option int)) "empty" None (Q.steal q ~on_commit:no_commit)

  let test_mixed_ends () =
    let q = Q.create () in
    for i = 1 to 10 do
      Q.push_bottom q i
    done;
    Alcotest.(check (option int)) "steal oldest" (Some 1) (Q.steal q ~on_commit:no_commit);
    Alcotest.(check (option int)) "pop newest" (Some 10) (Q.pop_bottom q);
    Alcotest.(check (option int)) "steal next" (Some 2) (Q.steal q ~on_commit:no_commit);
    Alcotest.(check int) "size" 7 (Q.size q)

  let test_on_commit_exactly_once () =
    let q = Q.create () in
    Q.push_bottom q 7;
    let calls = ref [] in
    (match Q.steal q ~on_commit:(fun v -> calls := v :: !calls) with
    | Some 7 -> ()
    | _ -> Alcotest.fail "expected steal of 7");
    Alcotest.(check (list int)) "called once with element" [ 7 ] !calls;
    (match Q.steal q ~on_commit:(fun v -> calls := v :: !calls) with
    | None -> ()
    | Some _ -> Alcotest.fail "expected empty");
    Alcotest.(check (list int)) "not called on failure" [ 7 ] !calls

  let test_empty_transitions () =
    let q = Q.create () in
    Alcotest.(check (option int)) "pop empty" None (Q.pop_bottom q);
    Alcotest.(check (option int)) "steal empty" None (Q.steal q ~on_commit:no_commit);
    Q.push_bottom q 1;
    Alcotest.(check (option int)) "pop single" (Some 1) (Q.pop_bottom q);
    Q.push_bottom q 2;
    Alcotest.(check (option int)) "steal single" (Some 2) (Q.steal q ~on_commit:no_commit);
    Alcotest.(check int) "size zero" 0 (Q.size q)

  (* With [max] no larger than half the queue, every implementation must
     return exactly the oldest [max] elements in steal (FIFO) order —
     the lock-based deques because half rounds up past [max], the
     CAS-based ones because no steal fails sequentially. *)
  let test_steal_batch_prefix () =
    let q = Q.create () in
    Alcotest.(check (list int))
      "empty" []
      (Q.steal_batch q ~max:4 ~on_commit:no_commit);
    for i = 1 to 10 do
      Q.push_bottom q i
    done;
    let calls = ref [] in
    let got = Q.steal_batch q ~max:4 ~on_commit:(fun v -> calls := v :: !calls) in
    Alcotest.(check (list int)) "oldest prefix" [ 1; 2; 3; 4 ] got;
    Alcotest.(check (list int))
      "on_commit once per element, steal order" [ 1; 2; 3; 4 ]
      (List.rev !calls);
    Alcotest.(check (option int))
      "next steal continues" (Some 5)
      (Q.steal q ~on_commit:no_commit)

  (* Model-based sequential test: random op sequences checked against a
     plain list model (front = top/steal end, back = bottom). *)
  let prop_model =
    let open QCheck in
    Test.make ~name:(Q.name ^ " matches deque model") ~count:300
      (list (int_range 0 2))
      (fun ops ->
        let q = Q.create () in
        let model = ref [] (* oldest first *) in
        let next = ref 0 in
        List.for_all
          (fun op ->
            match op with
            | 0 ->
              incr next;
              (try
                 Q.push_bottom q !next;
                 model := !model @ [ !next ];
                 true
               with Ws_deque_intf.Full -> true)
            | 1 -> (
              let expected =
                match List.rev !model with
                | [] -> None
                | newest :: rest ->
                  model := List.rev rest;
                  Some newest
              in
              match (Q.pop_bottom q, expected) with
              | None, None -> true
              | Some a, Some b -> a = b
              | _ -> false)
            | _ -> (
              let expected =
                match !model with
                | [] -> None
                | oldest :: rest ->
                  model := rest;
                  Some oldest
              in
              match (Q.steal q ~on_commit:no_commit, expected) with
              | None, None -> true
              | Some a, Some b -> a = b
              | _ -> false))
          ops)

  (* One owner pushes/pops, several thieves steal concurrently; every
     pushed element must be consumed exactly once. *)
  let test_concurrent_accounting () =
    let q = Q.create ~capacity:(1 lsl 16) () in
    let per_item = Array.make 20_000 0 in
    let stop = Atomic.make false in
    let record v = per_item.(v) <- per_item.(v) + 1 in
    let thief () =
      let mine = ref [] in
      while not (Atomic.get stop) do
        match Q.steal q ~on_commit:no_commit with
        | Some v -> mine := v :: !mine
        | None -> Domain.cpu_relax ()
      done;
      (* Final drain so nothing is stranded. *)
      let rec drain () =
        match Q.steal q ~on_commit:no_commit with
        | Some v ->
          mine := v :: !mine;
          drain ()
        | None -> ()
      in
      drain ();
      !mine
    in
    let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
    let owner_got = ref [] in
    for i = 0 to 19_999 do
      Q.push_bottom q i;
      if i mod 3 = 0 then
        match Q.pop_bottom q with
        | Some v -> owner_got := v :: !owner_got
        | None -> ()
    done;
    Atomic.set stop true;
    let stolen = List.concat_map Domain.join thieves in
    List.iter record stolen;
    List.iter record !owner_got;
    let rec drain () =
      match Q.pop_bottom q with
      | Some v ->
        record v;
        drain ()
      | None -> ()
    in
    drain ();
    Array.iteri
      (fun i c ->
        if c <> 1 then
          Alcotest.failf "%s: element %d consumed %d times" Q.name i c)
      per_item

  let cases =
    [
      Alcotest.test_case (Q.name ^ " lifo bottom") `Quick test_lifo;
      Alcotest.test_case (Q.name ^ " fifo top") `Quick test_steal_fifo;
      Alcotest.test_case (Q.name ^ " mixed ends") `Quick test_mixed_ends;
      Alcotest.test_case (Q.name ^ " on_commit") `Quick test_on_commit_exactly_once;
      Alcotest.test_case (Q.name ^ " empty transitions") `Quick test_empty_transitions;
      Alcotest.test_case (Q.name ^ " steal_batch prefix") `Quick test_steal_batch_prefix;
      QCheck_alcotest.to_alcotest prop_model;
      Alcotest.test_case (Q.name ^ " concurrent accounting") `Slow
        test_concurrent_accounting;
    ]
end

module Cl_battery = Battery (Cl)
module The_battery = Battery (The)
module Abp_battery = Battery (Abp_q)
module Locked_battery = Battery (Locked)

(* -- implementation-specific behaviours ------------------------------ *)

let test_cl_growth () =
  let q = Cl.create ~capacity:8 () in
  for i = 1 to 10_000 do
    Cl.push_bottom q i
  done;
  Alcotest.(check int) "grew" 10_000 (Cl.size q);
  for i = 10_000 downto 1 do
    Alcotest.(check (option int)) "intact after growth" (Some i) (Cl.pop_bottom q)
  done

let test_the_growth () =
  let q = The.create ~capacity:8 () in
  for i = 1 to 5_000 do
    The.push_bottom q i
  done;
  for i = 1 to 5_000 do
    Alcotest.(check (option int)) "intact" (Some i) (The.steal q ~on_commit:no_commit)
  done

(* The ABP queue's effective capacity shrinks as thieves advance top
   without freeing slots — the Section II-D pathology. *)
let test_abp_effective_capacity () =
  let q = Abp_q.create ~capacity:8 () in
  for i = 1 to 8 do
    Abp_q.push_bottom q i
  done;
  Alcotest.check_raises "full at capacity" Ws_deque_intf.Full (fun () ->
      Abp_q.push_bottom q 9);
  (* Steal half: logical size 4, but pushes still fail. *)
  for _ = 1 to 4 do
    ignore (Abp_q.steal q ~on_commit:no_commit)
  done;
  Alcotest.(check int) "logical size" 4 (Abp_q.size q);
  Alcotest.check_raises "still full (reduced effective capacity)"
    Ws_deque_intf.Full (fun () -> Abp_q.push_bottom q 9);
  (* Draining through the bottom resets the indices and restores space. *)
  for _ = 1 to 4 do
    ignore (Abp_q.pop_bottom q)
  done;
  Alcotest.(check (option int)) "now empty" None (Abp_q.pop_bottom q);
  Abp_q.push_bottom q 42;
  Alcotest.(check (option int)) "reset restored capacity" (Some 42) (Abp_q.pop_bottom q)

let test_abp_tag_prevents_stale_steal () =
  (* After a reset, a steal must not succeed on stale state. *)
  let q = Abp_q.create ~capacity:4 () in
  Abp_q.push_bottom q 1;
  Alcotest.(check (option int)) "pop last" (Some 1) (Abp_q.pop_bottom q);
  Alcotest.(check (option int)) "steal empty after reset" None
    (Abp_q.steal q ~on_commit:no_commit);
  Abp_q.push_bottom q 2;
  Alcotest.(check (option int)) "fresh element" (Some 2)
    (Abp_q.steal q ~on_commit:no_commit)

(* Batched-steal width: the lock-based deques cap a batch at half the
   queue (leaving the owner its share), the CAS-based ones take up to
   [max] independent steals. *)
let test_locked_steal_half () =
  let q = Locked.create () in
  for i = 1 to 10 do
    Locked.push_bottom q i
  done;
  Alcotest.(check (list int))
    "half under one lock" [ 1; 2; 3; 4; 5 ]
    (Locked.steal_batch q ~max:100 ~on_commit:no_commit);
  Alcotest.(check int) "owner keeps the rest" 5 (Locked.size q)

let test_the_steal_half () =
  let q = The.create () in
  for i = 1 to 9 do
    The.push_bottom q i
  done;
  Alcotest.(check (list int))
    "half rounds up" [ 1; 2; 3; 4; 5 ]
    (The.steal_batch q ~max:100 ~on_commit:no_commit);
  Alcotest.(check int) "owner keeps the rest" 4 (The.size q)

let test_cl_steal_batch_to_empty () =
  let q = Cl.create () in
  for i = 1 to 10 do
    Cl.push_bottom q i
  done;
  Alcotest.(check (list int))
    "takes up to max" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (Cl.steal_batch q ~max:100 ~on_commit:no_commit);
  Alcotest.(check (list int))
    "then empty" []
    (Cl.steal_batch q ~max:4 ~on_commit:no_commit)

(* -- central queue ---------------------------------------------------- *)

let test_central_queue_fifo () =
  let q = Central_queue.create () in
  Alcotest.(check (option int)) "empty" None (Central_queue.pop q);
  for i = 1 to 10 do
    Central_queue.push q i
  done;
  Alcotest.(check int) "size" 10 (Central_queue.size q);
  for i = 1 to 10 do
    Alcotest.(check (option int)) "fifo" (Some i) (Central_queue.pop q)
  done

let test_central_pop_batch () =
  let q = Central_queue.create () in
  Alcotest.(check (list int)) "empty" [] (Central_queue.pop_batch q ~max:4);
  for i = 1 to 10 do
    Central_queue.push q i
  done;
  Alcotest.(check (list int)) "fifo prefix" [ 1; 2; 3; 4 ]
    (Central_queue.pop_batch q ~max:4);
  Alcotest.(check (option int)) "single pop continues" (Some 5)
    (Central_queue.pop q);
  Alcotest.(check (list int)) "drains" [ 6; 7; 8; 9; 10 ]
    (Central_queue.pop_batch q ~max:100);
  Alcotest.(check int) "size zero" 0 (Central_queue.size q)

let test_central_queue_concurrent () =
  let q = Central_queue.create () in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to 4_999 do
              Central_queue.push q ((p * 5_000) + i)
            done))
  in
  let seen = Array.make 10_000 0 in
  let consumed = ref 0 in
  while !consumed < 10_000 do
    match Central_queue.pop q with
    | Some v ->
      seen.(v) <- seen.(v) + 1;
      incr consumed
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join producers;
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "element %d seen %d times" i c)
    seen

let () =
  Alcotest.run "nowa_deque"
    [
      ( "chase-lev",
        Cl_battery.cases
        @ [
            Alcotest.test_case "growth" `Quick test_cl_growth;
            Alcotest.test_case "steal_batch to empty" `Quick
              test_cl_steal_batch_to_empty;
          ] );
      ( "the",
        The_battery.cases
        @ [
            Alcotest.test_case "growth" `Quick test_the_growth;
            Alcotest.test_case "steal_batch half" `Quick test_the_steal_half;
          ] );
      ( "abp",
        Abp_battery.cases
        @ [
            Alcotest.test_case "effective capacity pathology" `Quick
              test_abp_effective_capacity;
            Alcotest.test_case "tag prevents stale steal" `Quick
              test_abp_tag_prevents_stale_steal;
          ] );
      ( "locked",
        Locked_battery.cases
        @ [ Alcotest.test_case "steal_batch half" `Quick test_locked_steal_half ]
      );
      ( "central",
        [
          Alcotest.test_case "fifo" `Quick test_central_queue_fifo;
          Alcotest.test_case "pop_batch" `Quick test_central_pop_batch;
          Alcotest.test_case "concurrent" `Slow test_central_queue_concurrent;
        ] );
    ]
