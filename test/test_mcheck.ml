(* Model-checking the platform's coordination algorithms (the Section
   II-D methodology): exhaustive interleaving exploration of the deque
   and strand-counter protocols, including a mechanical exhibition of
   the Figure 6 race on a naive counter and its absence from the
   wait-free and lock-based schemes; plus the PR-5 specs for the sleeper
   registry, steal_batch on all four deques, SNZI and barrier reuse, the
   DPOR-vs-naive cross-checks, and pinned-schedule regressions for every
   bug the checker shook out. *)

module M = Nowa_mcheck.Mcheck
module S = Nowa_mcheck.Specs

let expect_ok name result =
  match result with
  | M.Ok o ->
    Alcotest.(check bool) (name ^ ": explored something") true (o.M.executions > 0)
  | M.Violation { schedule; message } ->
    Alcotest.failf "%s: unexpected violation %S on schedule [%s]" name message
      (String.concat ";" (List.map string_of_int schedule))

let expect_exhaustive name result =
  match result with
  | M.Ok o ->
    Alcotest.(check bool) (name ^ ": complete") true o.M.complete;
    Alcotest.(check bool) (name ^ ": explored something") true (o.M.executions > 0)
  | M.Violation { schedule; message } ->
    Alcotest.failf "%s: unexpected violation %S on schedule [%s]" name message
      (String.concat ";" (List.map string_of_int schedule))

let expect_violation name result =
  match result with
  | M.Violation _ -> ()
  | M.Ok o ->
    Alcotest.failf "%s: no violation found in %d executions (complete=%b)" name
      o.M.executions o.M.complete

(* -- the explorer itself ------------------------------------------------ *)

let test_explorer_counts_interleavings () =
  (* Two threads of two atomic writes each on distinct cells.  A thread
     with k scheduling points needs k+1 quanta (the last runs it to
     completion), so the naive enumeration sees C(6,3) = 20
     interleavings.  The two threads share no cell, so DPOR must
     recognise a single Mazurkiewicz trace and explore exactly 1. *)
  let spec () =
    let a = M.Cell.make 0 and b = M.Cell.make 0 in
    let inc c () =
      M.Cell.write c 1;
      M.Cell.write c 2
    in
    ([ inc a; inc b ], fun () -> M.Cell.peek a = 2 && M.Cell.peek b = 2)
  in
  (match M.explore_naive spec with
  | M.Ok o ->
    Alcotest.(check int) "naive: C(6,3) interleavings" 20 o.M.executions;
    Alcotest.(check bool) "naive: complete" true o.M.complete
  | M.Violation _ -> Alcotest.fail "naive: unexpected violation");
  match M.explore spec with
  | M.Ok o ->
    Alcotest.(check int) "dpor: one trace" 1 o.M.executions;
    Alcotest.(check bool) "dpor: complete" true o.M.complete
  | M.Violation _ -> Alcotest.fail "dpor: unexpected violation"

let test_explorer_finds_lost_update () =
  (* The classic racy read-modify-write: two threads doing
     read;write(+1) — some interleaving loses an update.  Both the
     reduced and the naive search must find it. *)
  let spec () =
    let c = M.Cell.make 0 in
    let inc () =
      let v = M.Cell.read c in
      M.Cell.write c (v + 1)
    in
    ([ inc; inc ], fun () -> M.Cell.peek c = 2)
  in
  expect_violation "lost update (dpor)" (M.explore spec);
  expect_violation "lost update (naive)" (M.explore_naive spec)

let test_explorer_atomic_rmw_safe () =
  let spec () =
    let c = M.Cell.make 0 in
    let inc () = ignore (M.Cell.fetch_add c 1) in
    ([ inc; inc; inc ], fun () -> M.Cell.peek c = 3)
  in
  expect_exhaustive "fetch_add" (M.explore spec)

let test_explorer_reports_check_failures () =
  let spec () =
    let c = M.Cell.make 0 in
    let t1 () = M.Cell.write c 1 in
    let t2 () = M.check (M.Cell.read c = 0) "saw the other thread's write" in
    ([ t1; t2 ], fun () -> true)
  in
  expect_violation "inline check" (M.explore spec)

let test_explorer_budget () =
  let spec () =
    let c = M.Cell.make 0 in
    let busy () =
      for _ = 1 to 6 do
        ignore (M.Cell.fetch_add c 1)
      done
    in
    ([ busy; busy; busy ], fun () -> true)
  in
  match M.explore ~max_executions:50 spec with
  | M.Ok o ->
    Alcotest.(check bool) "budget respected" true
      (o.M.executions + o.M.truncated + o.M.blocked <= 50);
    Alcotest.(check bool) "flagged incomplete" false o.M.complete
  | M.Violation _ -> Alcotest.fail "unexpected violation"

let test_truncations_consume_budget () =
  (* Regression for the budget leak: executions cut off at [max_steps]
     must count toward [max_executions] (or the search under a step
     bound runs arbitrarily past its budget), and their presence must
     force [complete = false] even when the execution budget was never
     hit — a truncated search proved nothing about deeper schedules. *)
  let spec () =
    let c = M.Cell.make 0 in
    let busy () =
      for _ = 1 to 10 do
        ignore (M.Cell.fetch_add c 1)
      done
    in
    ([ busy; busy ], fun () -> true)
  in
  (match M.explore ~max_executions:30 ~max_steps:5 spec with
  | M.Ok o ->
    Alcotest.(check bool) "truncated some" true (o.M.truncated > 0);
    Alcotest.(check bool) "truncations count toward the budget" true
      (o.M.executions + o.M.truncated + o.M.blocked <= 30);
    Alcotest.(check bool) "never complete when truncating" false o.M.complete
  | M.Violation _ -> Alcotest.fail "unexpected violation");
  (* and a roomy execution budget still reports incomplete if any
     execution hit the step bound *)
  match M.explore ~max_executions:100_000 ~max_steps:5 spec with
  | M.Ok o ->
    Alcotest.(check bool) "truncation alone defeats complete" false o.M.complete
  | M.Violation _ -> Alcotest.fail "unexpected violation"

(* -- DPOR vs naive: verdict agreement and reduction factor --------------- *)

let verdict_of = function M.Ok _ -> "ok" | M.Violation _ -> "violation"

let test_dpor_naive_agree () =
  (* Every existing spec, both searches, identical verdicts. *)
  let specs =
    [
      ("chase_lev 2/1/1", S.chase_lev_spec ~pushes:2 ~pops:1 ~thieves:1);
      ("chase_lev 1/1/1", S.chase_lev_spec ~pushes:1 ~pops:1 ~thieves:1);
      ("the_queue 1/1/1", S.the_queue_spec ~pushes:1 ~pops:1 ~thieves:1);
      ("the_queue 2/1/1", S.the_queue_spec ~pushes:2 ~pops:1 ~thieves:1);
      ("naive_counter", S.naive_counter_spec ~children:1);
      ("wait_free_counter", S.wait_free_counter_spec ~children:1);
      ("lock_counter", S.lock_counter_spec ~children:1);
    ]
  in
  List.iter
    (fun (name, spec) ->
      (* identical (deliberately modest) bounds for both searches: the
         spin-loop specs (lock counter, THE queue) would otherwise chew
         through minutes of naive enumeration without changing any
         verdict *)
      let d = M.explore ~max_executions:20_000 spec in
      let n = M.explore_naive ~max_executions:20_000 spec in
      Alcotest.(check string)
        (name ^ ": dpor and naive verdicts agree")
        (verdict_of n) (verdict_of d))
    specs

let test_dpor_reduction_factor () =
  (* The acceptance criterion: >= 10x fewer executions than the naive
     DFS at identical bounds, on at least two specs, both counts
     printed. *)
  let measure name spec =
    let count = function
      | M.Ok o -> o.M.executions
      | M.Violation _ -> Alcotest.failf "%s: unexpected violation" name
    in
    let naive = count (M.explore_naive ~max_executions:500_000 spec) in
    let dpor = count (M.explore ~max_executions:500_000 spec) in
    Printf.printf "mcheck reduction %-18s naive=%d dpor=%d (%.0fx)\n%!" name
      naive dpor
      (float_of_int naive /. float_of_int (max 1 dpor));
    Alcotest.(check bool)
      (Printf.sprintf "%s: >=10x reduction (naive=%d dpor=%d)" name naive dpor)
      true
      (naive >= 10 * dpor)
  in
  measure "chase_lev 2/1/1" (S.chase_lev_spec ~pushes:2 ~pops:1 ~thieves:1);
  measure "the_queue 2/1/1" (S.the_queue_spec ~pushes:2 ~pops:1 ~thieves:1);
  measure "wait_free_counter" (S.wait_free_counter_spec ~children:1)

(* -- deques -------------------------------------------------------------- *)

let test_chase_lev_owner_vs_thief () =
  expect_ok "CL 2 pushes, 1 pop, 1 thief"
    (M.explore (S.chase_lev_spec ~pushes:2 ~pops:1 ~thieves:1))

let test_chase_lev_two_thieves () =
  expect_ok "CL 1 push, 2 thieves"
    (M.explore (S.chase_lev_spec ~pushes:1 ~pops:0 ~thieves:2))

let test_chase_lev_last_element_race () =
  expect_ok "CL 1 push, 1 pop, 1 thief (single-element race)"
    (M.explore (S.chase_lev_spec ~pushes:1 ~pops:1 ~thieves:1))

let test_chase_lev_drain () =
  expect_ok "CL 2 pushes, 2 pops, 1 thief"
    (M.explore (S.chase_lev_spec ~pushes:2 ~pops:2 ~thieves:1))

let test_the_queue_owner_vs_thief () =
  expect_ok "THE 2 pushes, 1 pop, 1 thief"
    (M.explore (S.the_queue_spec ~pushes:2 ~pops:1 ~thieves:1))

let test_the_queue_conflict_path () =
  expect_ok "THE 1 push, 1 pop, 1 thief (lock arbitration)"
    (M.explore (S.the_queue_spec ~pushes:1 ~pops:1 ~thieves:1))

let test_the_queue_two_thieves () =
  expect_ok "THE 2 pushes, 0 pops, 2 thieves"
    (M.explore ~max_executions:60_000 (S.the_queue_spec ~pushes:2 ~pops:0 ~thieves:2))

(* -- steal_batch on all four deques -------------------------------------- *)

let test_batch_chase_lev () =
  expect_exhaustive "CL batch 3/1/2/1"
    (M.explore (S.chase_lev_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1))

let test_batch_chase_lev_two_thieves () =
  expect_exhaustive "CL batch 2/0/2/2"
    (M.explore (S.chase_lev_batch_spec ~pushes:2 ~pops:0 ~batch:2 ~thieves:2))

let test_batch_the_queue () =
  expect_exhaustive "THE batch 3/1/2/1"
    (M.explore (S.the_queue_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1))

let test_batch_abp () =
  expect_exhaustive "ABP batch 3/1/2/1"
    (M.explore (S.abp_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1))

let test_batch_locked () =
  expect_exhaustive "locked batch 3/1/2/1"
    (M.explore (S.locked_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1))

(* -- strand counters ------------------------------------------------------ *)

let test_naive_counter_has_the_figure6_race () =
  expect_violation "naive counter (Figure 6)"
    (M.explore (S.naive_counter_spec ~children:1))

let test_wait_free_counter_is_race_free () =
  match M.explore (S.wait_free_counter_spec ~children:1) with
  | M.Ok o -> Alcotest.(check bool) "exhaustive" true o.M.complete
  | M.Violation { schedule; message } ->
    Alcotest.failf "wait-free counter violated: %S on [%s]" message
      (String.concat ";" (List.map string_of_int schedule))

let test_lock_counter_is_race_free () =
  match M.explore (S.lock_counter_spec ~children:1) with
  | M.Ok o -> Alcotest.(check bool) "nontrivial" true (o.M.executions > 10)
  | M.Violation { schedule; message } ->
    Alcotest.failf "lock counter violated: %S on [%s]" message
      (String.concat ";" (List.map string_of_int schedule))

(* -- the sleeper registry -------------------------------------------------- *)

let test_sleeper_no_lost_wakeup () =
  expect_exhaustive "sleeper good 1 worker"
    (M.explore (S.sleeper_spec ~workers:1 ~tasks:1));
  expect_exhaustive "sleeper good 2 workers"
    (M.explore ~max_executions:500_000 (S.sleeper_spec ~workers:2 ~tasks:1))

let test_sleeper_check_before_announce_loses_wakeups () =
  expect_violation "check-before-announce sleeper"
    (M.explore (S.sleeper_spec ~variant:`Check_before_announce ~workers:1 ~tasks:1))

let test_sleeper_wake_cancel () =
  expect_exhaustive "wake vs cancel, 1 waker"
    (M.explore (S.sleeper_wake_cancel_spec ~wakers:1));
  expect_exhaustive "wake vs cancel, 2 wakers"
    (M.explore (S.sleeper_wake_cancel_spec ~wakers:2))

let test_sleeper_shutdown () =
  expect_exhaustive "wake_all at shutdown"
    (M.explore (S.sleeper_shutdown_spec ~workers:2))

(* -- cross-pool spill-over (ISSUE 10) -------------------------------------- *)

let test_spillover_handoff () =
  expect_exhaustive "spillover inject handoff"
    (M.explore ~max_executions:500_000 (S.spillover_spec ~variant:`Good))

let test_spillover_no_sweep_strands_the_root () =
  expect_violation "park without the final sweep"
    (M.explore (S.spillover_spec ~variant:`No_final_sweep))

(* -- SNZI and barrier ----------------------------------------------------- *)

let test_snzi_arrive_depart () =
  expect_exhaustive "snzi 2 threads" (M.explore (S.snzi_spec ~threads:2))

let test_snzi_batch () =
  expect_exhaustive "snzi batched, 2 threads"
    (M.explore (S.snzi_batch_spec ~threads:2 ~batch:2))

let test_barrier_sense_correct_under_sc () =
  expect_exhaustive "sense barrier, 2x2"
    (M.explore (S.barrier_spec ~variant:`Sense ~n:2 ~rounds:2))

let test_barrier_reordered_deadlocks () =
  expect_violation "store-reordered sense barrier"
    (M.explore (S.barrier_spec ~variant:`Sense_reordered ~n:2 ~rounds:2))

let test_barrier_epoch_correct () =
  expect_exhaustive "epoch barrier, 2x2"
    (M.explore (S.barrier_spec ~variant:`Epoch ~n:2 ~rounds:2));
  expect_exhaustive "epoch barrier, 3x2"
    (M.explore ~max_executions:500_000 (S.barrier_spec ~variant:`Epoch ~n:3 ~rounds:2))

(* -- pinned-schedule regressions ------------------------------------------ *)

(* Each bug the checker found stays pinned by its literal failing
   schedule: [run_schedule] replays the exact interleaving and must
   still observe the violation.  If a spec change invalidates a pin,
   [run_schedule] raises (stale pin) rather than silently passing. *)

let expect_pinned name spec schedule =
  match M.run_schedule spec schedule with
  | M.Violation _ -> ()
  | M.Ok _ ->
    Alcotest.failf "%s: pinned schedule no longer violates" name

let test_pinned_figure6_schedule () =
  (* worker runs to its sync-point read before the thief's increment
     lands: the Figure-6 window *)
  expect_pinned "naive counter"
    (S.naive_counter_spec ~children:1)
    [ 0; 0; 0; 1; 1; 0; 1; 1; 0; 0; 1 ]

let test_pinned_lost_wakeup_schedule () =
  (* worker re-checks (empty), spawner pushes + wake_one (sees empty
     mask, skips), worker announces and parks forever *)
  expect_pinned "check-before-announce sleeper"
    (S.sleeper_spec ~variant:`Check_before_announce ~workers:1 ~tasks:1)
    [ 0; 0; 0; 0; 1; 1; 1; 0 ]

let test_pinned_barrier_reorder_schedule () =
  (* leader flips sense before resetting count; a fast re-entrant
     participant consumes the stale count and the round deadlocks *)
  expect_pinned "store-reordered sense barrier"
    (S.barrier_spec ~variant:`Sense_reordered ~n:2 ~rounds:2)
    [ 0; 0; 0; 0; 1; 1; 1; 1; 1; 0; 0; 0; 0; 1; 1; 1; 1 ]

let test_pins_track_explorer () =
  (* The pin must stay in sync with what the explorer reports: derive a
     fresh violating schedule and replay it. *)
  match M.explore (S.naive_counter_spec ~children:1) with
  | M.Ok _ -> Alcotest.fail "expected a violation to pin"
  | M.Violation { schedule; _ } ->
    expect_pinned "freshly derived schedule"
      (S.naive_counter_spec ~children:1)
      schedule

(* -- random-walk fallback -------------------------------------------------- *)

let test_random_finds_figure6 () =
  expect_violation "random walk finds the Figure-6 race"
    (M.explore_random ~seed:1 ~max_schedules:2000
       (S.naive_counter_spec ~children:1))

let test_random_never_claims_complete () =
  match
    M.explore_random ~seed:1 ~max_schedules:200
      (S.wait_free_counter_spec ~children:1)
  with
  | M.Ok o ->
    Alcotest.(check bool) "sampling is never a proof" false o.M.complete;
    Alcotest.(check int) "reports schedules sampled" 200 o.M.executions
  | M.Violation { schedule; message } ->
    Alcotest.failf "wait-free counter violated: %S on [%s]" message
      (String.concat ";" (List.map string_of_int schedule))

let () =
  Alcotest.run "nowa_mcheck"
    [
      ( "explorer",
        [
          Alcotest.test_case "interleaving count" `Quick test_explorer_counts_interleavings;
          Alcotest.test_case "finds lost updates" `Quick test_explorer_finds_lost_update;
          Alcotest.test_case "atomic rmw safe" `Quick test_explorer_atomic_rmw_safe;
          Alcotest.test_case "inline checks" `Quick test_explorer_reports_check_failures;
          Alcotest.test_case "budget" `Quick test_explorer_budget;
          Alcotest.test_case "truncations consume budget" `Quick
            test_truncations_consume_budget;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "dpor and naive agree" `Slow test_dpor_naive_agree;
          Alcotest.test_case "reduction factor" `Slow test_dpor_reduction_factor;
        ] );
      ( "chase-lev",
        [
          Alcotest.test_case "owner vs thief" `Slow test_chase_lev_owner_vs_thief;
          Alcotest.test_case "two thieves" `Quick test_chase_lev_two_thieves;
          Alcotest.test_case "last-element race" `Quick test_chase_lev_last_element_race;
          Alcotest.test_case "drain" `Slow test_chase_lev_drain;
        ] );
      ( "the queue",
        [
          Alcotest.test_case "owner vs thief" `Slow test_the_queue_owner_vs_thief;
          Alcotest.test_case "conflict path" `Quick test_the_queue_conflict_path;
          Alcotest.test_case "two thieves" `Slow test_the_queue_two_thieves;
        ] );
      ( "steal batch",
        [
          Alcotest.test_case "chase-lev" `Quick test_batch_chase_lev;
          Alcotest.test_case "chase-lev two thieves" `Quick
            test_batch_chase_lev_two_thieves;
          Alcotest.test_case "the queue" `Quick test_batch_the_queue;
          Alcotest.test_case "abp" `Quick test_batch_abp;
          Alcotest.test_case "locked" `Quick test_batch_locked;
        ] );
      ( "strand counters",
        [
          Alcotest.test_case "naive has the Figure 6 race" `Quick
            test_naive_counter_has_the_figure6_race;
          Alcotest.test_case "wait-free is race free" `Quick
            test_wait_free_counter_is_race_free;
          Alcotest.test_case "lock-based is race free" `Quick
            test_lock_counter_is_race_free;
        ] );
      ( "sleepers",
        [
          Alcotest.test_case "no lost wake-up" `Slow test_sleeper_no_lost_wakeup;
          Alcotest.test_case "check-before-announce is buggy" `Quick
            test_sleeper_check_before_announce_loses_wakeups;
          Alcotest.test_case "wake vs cancel" `Quick test_sleeper_wake_cancel;
          Alcotest.test_case "shutdown wake_all" `Slow test_sleeper_shutdown;
          Alcotest.test_case "spillover handoff" `Slow test_spillover_handoff;
          Alcotest.test_case "spillover needs the final sweep" `Quick
            test_spillover_no_sweep_strands_the_root;
        ] );
      ( "snzi and barrier",
        [
          Alcotest.test_case "snzi arrive/depart" `Quick test_snzi_arrive_depart;
          Alcotest.test_case "snzi batched ops" `Quick test_snzi_batch;
          Alcotest.test_case "sense barrier ok under SC" `Quick
            test_barrier_sense_correct_under_sc;
          Alcotest.test_case "reordered stores deadlock" `Quick
            test_barrier_reordered_deadlocks;
          Alcotest.test_case "epoch barrier ok" `Slow test_barrier_epoch_correct;
        ] );
      ( "pinned schedules",
        [
          Alcotest.test_case "figure 6" `Quick test_pinned_figure6_schedule;
          Alcotest.test_case "lost wake-up" `Quick test_pinned_lost_wakeup_schedule;
          Alcotest.test_case "barrier store reorder" `Quick
            test_pinned_barrier_reorder_schedule;
          Alcotest.test_case "pins track the explorer" `Quick
            test_pins_track_explorer;
        ] );
      ( "random walk",
        [
          Alcotest.test_case "finds figure 6" `Quick test_random_finds_figure6;
          Alcotest.test_case "never claims complete" `Quick
            test_random_never_claims_complete;
        ] );
    ]
