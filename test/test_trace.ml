(* Tests for the lib/trace subsystem: ring-buffer semantics, disabled
   mode, multi-domain emission through the real engines, the Perfetto
   exporter (golden JSON check via a self-contained parser — no JSON
   library in the package set), the analysis summaries, and virtual-time
   traces out of the wsim simulator. *)

module Ev = Nowa_trace.Event
module Ring = Nowa_trace.Ring
module Trace = Nowa_trace.Trace
module Perfetto = Nowa_trace.Perfetto
module Analysis = Nowa_trace.Trace_analysis

(* -- ring buffer ------------------------------------------------------ *)

let test_ring_basic () =
  let r = Ring.create ~capacity:16 in
  Alcotest.(check int) "capacity rounded" 16 (Ring.capacity r);
  Ring.emit_at r ~ts:10 Ev.Task_start 0;
  Ring.emit_at r ~ts:20 Ev.Spawn 0;
  Ring.emit_at r ~ts:30 Ev.Task_end 0;
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "dropped" 0 (Ring.dropped r);
  let evs = Ring.events r ~worker:7 in
  Alcotest.(check int) "drained" 3 (Array.length evs);
  Alcotest.(check int) "ts order" 10 evs.(0).Ev.ts;
  Alcotest.(check int) "worker stamped" 7 evs.(1).Ev.worker;
  Alcotest.(check bool) "kind roundtrip" true (evs.(1).Ev.kind = Ev.Spawn)

let test_ring_capacity_rounding () =
  (* Capacities round up to a power of two, floored at 16. *)
  Alcotest.(check int) "floor" 16 (Ring.capacity (Ring.create ~capacity:3));
  Alcotest.(check int) "round up" 64 (Ring.capacity (Ring.create ~capacity:33));
  Alcotest.(check int) "exact" 128 (Ring.capacity (Ring.create ~capacity:128))

let test_ring_wraparound () =
  let r = Ring.create ~capacity:16 in
  for i = 1 to 40 do
    Ring.emit_at r ~ts:i Ev.Spawn i
  done;
  Alcotest.(check int) "length capped" 16 (Ring.length r);
  Alcotest.(check int) "emitted total" 40 (Ring.emitted r);
  Alcotest.(check int) "dropped = overwritten oldest" 24 (Ring.dropped r);
  let evs = Ring.events r ~worker:0 in
  Alcotest.(check int) "drained length" 16 (Array.length evs);
  (* Overwrite-oldest: the survivors are exactly the newest 16, in order. *)
  Array.iteri
    (fun j e ->
      Alcotest.(check int) "newest survive in order" (25 + j) e.Ev.ts;
      Alcotest.(check int) "args follow" (25 + j) e.Ev.arg)
    evs

let test_ring_disabled () =
  let r = Ring.disabled in
  for i = 1 to 1000 do
    Ring.emit_at r ~ts:i Ev.Task_start 0;
    Ring.emit r Ev.Spawn 0
  done;
  Alcotest.(check int) "no events" 0 (Ring.length r);
  Alcotest.(check int) "no drops" 0 (Ring.dropped r);
  Alcotest.(check int) "capacity 0" 0 (Ring.capacity r);
  Alcotest.(check int) "drain empty" 0 (Array.length (Ring.events r ~worker:0));
  (* A zero/negative requested capacity also yields a disabled ring. *)
  Alcotest.(check int) "create 0 disabled" 0 (Ring.capacity (Ring.create ~capacity:0))

let test_ring_emit_wall_clock_monotone () =
  let r = Ring.create ~capacity:64 in
  for _ = 1 to 50 do
    Ring.emit r Ev.Spawn 0
  done;
  let evs = Ring.events r ~worker:0 in
  let ok = ref true in
  for i = 1 to Array.length evs - 1 do
    if evs.(i).Ev.ts < evs.(i - 1).Ev.ts then ok := false
  done;
  Alcotest.(check bool) "wall timestamps non-decreasing" true !ok

let test_ring_arg2 () =
  let r = Ring.create ~capacity:16 in
  Ring.emit_at2 r ~ts:10 Ev.Req_submit 3 41;
  Ring.emit2 r Ev.Req_claim 3 41;
  (* The 3-arg entry points still work and stamp arg2 = 0. *)
  Ring.emit_at r ~ts:30 Ev.Spawn 7;
  let evs = Ring.events r ~worker:0 in
  Alcotest.(check int) "arg2 roundtrip" 41 evs.(0).Ev.arg2;
  Alcotest.(check int) "arg kept" 3 evs.(0).Ev.arg;
  Alcotest.(check int) "emit2 arg2" 41 evs.(1).Ev.arg2;
  Alcotest.(check int) "legacy emit arg2 = 0" 0 evs.(2).Ev.arg2;
  Alcotest.(check bool) "req kind roundtrip" true
    (evs.(1).Ev.kind = Ev.Req_claim)

let test_event_pp () =
  (* Chronological dump format: ts first, then worker, both args. *)
  let e = { Ev.ts = 1500; worker = 3; kind = Ev.Req_submit; arg = 2; arg2 = 42 } in
  Alcotest.(check string) "pp order" "1500ns w3 req-submit(2,42)"
    (Format.asprintf "%a" Ev.pp e);
  let e2 = { Ev.ts = 7; worker = 0; kind = Ev.Spawn; arg = 0; arg2 = 0 } in
  Alcotest.(check string) "pp scheduler event" "7ns w0 spawn(0,0)"
    (Format.asprintf "%a" Ev.pp e2)

let test_current_context () =
  Alcotest.(check int) "no context = worker -1" (-1)
    (Nowa_trace.Current.worker ());
  (* Emission without a context is a no-op, not a crash. *)
  Nowa_trace.Current.emit Ev.Req_submit ~arg:0 ~arg2:9;
  let r = Ring.create ~capacity:16 in
  Nowa_trace.Current.set ~worker:5 r;
  Alcotest.(check int) "worker visible" 5 (Nowa_trace.Current.worker ());
  Nowa_trace.Current.emit Ev.Req_claim ~arg:1 ~arg2:7;
  Nowa_trace.Current.clear ();
  Nowa_trace.Current.emit Ev.Req_claim ~arg:1 ~arg2:8;
  Alcotest.(check int) "cleared context stops emission" 1 (Ring.length r);
  let evs = Ring.events r ~worker:5 in
  Alcotest.(check int) "emitted through context" 7 evs.(0).Ev.arg2

(* -- trace container -------------------------------------------------- *)

let test_trace_container () =
  let t = Trace.create ~workers:3 ~capacity:16 () in
  Alcotest.(check int) "workers" 3 (Trace.workers t);
  Ring.emit_at (Trace.worker t 0) ~ts:30 Ev.Task_start 0;
  Ring.emit_at (Trace.worker t 2) ~ts:10 Ev.Task_start 0;
  Ring.emit_at (Trace.worker t 2) ~ts:40 Ev.Task_end 0;
  (* Out-of-range workers get the disabled ring, not an exception. *)
  Ring.emit_at (Trace.worker t 99) ~ts:5 Ev.Spawn 0;
  Ring.emit_at (Trace.worker t (-1)) ~ts:5 Ev.Spawn 0;
  Alcotest.(check int) "emitted" 3 (Trace.emitted t);
  let all = Trace.events t in
  Alcotest.(check int) "merged" 3 (Array.length all);
  Alcotest.(check int) "sorted by ts" 10 all.(0).Ev.ts;
  Alcotest.(check int) "base ts" 10 (Trace.base_ts t);
  let per = Trace.per_worker_events t in
  Alcotest.(check int) "w0 events" 1 (Array.length per.(0));
  Alcotest.(check int) "w1 empty" 0 (Array.length per.(1));
  Alcotest.(check int) "w2 events" 2 (Array.length per.(2))

(* -- multi-domain emission through the real engines ------------------- *)

let rec fib (module R : Nowa.RUNTIME) n =
  if n < 2 then n
  else
    R.scope (fun sc ->
        let a = R.spawn sc (fun () -> fib (module R) (n - 1)) in
        let b = fib (module R) (n - 2) in
        R.sync sc;
        R.get a + b)

let rec sfib n = if n < 2 then n else sfib (n - 1) + sfib (n - 2)

let run_traced (module R : Nowa.RUNTIME) ~workers n =
  let conf =
    { (Nowa.Config.with_workers workers) with Nowa.Config.trace_capacity = 4096 }
  in
  let v = R.run ~conf (fun () -> fib (module R) n) in
  Alcotest.(check int) "result" (sfib n) v;
  match R.last_trace () with
  | Some tr -> tr
  | None -> Alcotest.fail (R.name ^ ": no trace despite trace_capacity > 0")

let engines : (module Nowa.RUNTIME) list =
  [
    (module Nowa.Presets.Nowa);
    (module Nowa.Presets.Tbb);
    (module Nowa.Presets.Gomp);
  ]

let test_multi_domain_emission () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let tr = run_traced (module R) ~workers:4 18 in
      Alcotest.(check int) "one ring per worker" 4 (Trace.workers tr);
      Alcotest.(check bool)
        (R.name ^ ": events were emitted")
        true
        (Trace.emitted tr > 0);
      (* Per-worker ordering: each worker's drained stream must be
         non-decreasing in time (single writer + monotonic clamp). *)
      Array.iter
        (fun evs ->
          let ok = ref true in
          for i = 1 to Array.length evs - 1 do
            if evs.(i).Ev.ts < evs.(i - 1).Ev.ts then ok := false
          done;
          Alcotest.(check bool) (R.name ^ ": per-worker ordered") true !ok)
        (Trace.per_worker_events tr);
      (* More than one worker must have participated. *)
      let active =
        Array.fold_left
          (fun acc evs -> if Array.length evs > 0 then acc + 1 else acc)
          0 (Trace.per_worker_events tr)
      in
      Alcotest.(check bool) (R.name ^ ": >1 worker traced") true (active > 1))
    engines

let test_disabled_is_default () =
  let (module R : Nowa.RUNTIME) = (module Nowa.Presets.Nowa) in
  let conf = Nowa.Config.with_workers 2 in
  ignore (R.run ~conf (fun () -> fib (module R) 10));
  Alcotest.(check bool) "no trace by default" true (R.last_trace () = None)

let test_trace_events_against_metrics () =
  (* The trace and the aggregate counters must tell the same story:
     spawn events = spawns counted (ring large enough not to drop). *)
  let (module R : Nowa.RUNTIME) = (module Nowa.Presets.Nowa) in
  let conf =
    { (Nowa.Config.with_workers 2) with Nowa.Config.trace_capacity = 1 lsl 16 }
  in
  ignore (R.run ~conf (fun () -> fib (module R) 15));
  let tr = Option.get (R.last_trace ()) in
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  let m = Option.get (R.last_metrics ()) in
  let count kind =
    Array.fold_left
      (fun acc evs ->
        Array.fold_left
          (fun acc e -> if e.Ev.kind = kind then acc + 1 else acc)
          acc evs)
      0 (Trace.per_worker_events tr)
  in
  let total f =
    Array.fold_left (fun acc w -> acc + f w) 0 m.Nowa.Metrics.workers
  in
  Alcotest.(check int) "spawn events = spawns metric"
    (total (fun w -> w.Nowa.Metrics.spawns))
    (count Ev.Spawn);
  Alcotest.(check int) "suspend events = suspensions metric"
    (total (fun w -> w.Nowa.Metrics.suspensions))
    (count Ev.Suspend);
  Alcotest.(check int) "commit events = steals metric"
    (total (fun w -> w.Nowa.Metrics.steals))
    (count Ev.Steal_commit)

(* -- a minimal JSON parser for the golden exporter check --------------- *)

(* The package set has no JSON library, so the golden check carries its
   own reader: a complete (objects/arrays/strings/numbers/atoms) but
   minimal JSON recursive-descent parser.  Any exporter output a real
   consumer would reject fails here first. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c =
      skip_ws ();
      if peek () <> c then
        raise (Bad (Printf.sprintf "expected %c at %d, got %c" c !pos (peek ())));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          let c = peek () in
          advance ();
          (match c with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            (* \uXXXX: keep the raw hex; the exporter never emits these. *)
            for _ = 1 to 4 do
              advance ()
            done
          | c -> Buffer.add_char b c);
          go ()
        | c ->
          advance ();
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num s.[!pos] do
        advance ()
      done;
      if !pos = start then raise (Bad "empty number");
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            let k = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | c -> raise (Bad (Printf.sprintf "in object: %c" c))
          in
          Obj (members [])
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements (v :: acc)
            | ']' ->
              advance ();
              List.rev (v :: acc)
            | c -> raise (Bad (Printf.sprintf "in array: %c" c))
          in
          List (elements [])
        end
      | '"' -> Str (parse_string ())
      | 't' ->
        pos := !pos + 4;
        Bool true
      | 'f' ->
        pos := !pos + 5;
        Bool false
      | 'n' ->
        pos := !pos + 4;
        Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos));
    v

  let member k = function
    | Obj kvs -> List.assoc k kvs
    | _ -> raise (Bad ("not an object looking up " ^ k))

  let member_opt k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let test_perfetto_golden () =
  (* A hand-built two-worker trace with known slices and instants. *)
  let t = Trace.create ~workers:2 ~capacity:16 () in
  let w0 = Trace.worker t 0 and w1 = Trace.worker t 1 in
  Ring.emit_at w0 ~ts:1_000 Ev.Task_start 0;
  Ring.emit_at w0 ~ts:2_000 Ev.Spawn 0;
  Ring.emit_at w0 ~ts:5_000 Ev.Task_end 0;
  Ring.emit_at w1 ~ts:2_500 Ev.Steal_attempt 0;
  Ring.emit_at w1 ~ts:3_000 Ev.Steal_commit 0;
  Ring.emit_at w1 ~ts:3_100 Ev.Task_start 0;
  Ring.emit_at w1 ~ts:4_100 Ev.Task_end 0;
  let s = Perfetto.to_string ~process_name:"golden" t in
  let json = Json.parse s in
  let evs =
    match Json.member "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  (* 2 metadata thread names + 1 process name + 2 slices + 3 instants. *)
  Alcotest.(check int) "event count" 8 (List.length evs);
  let slices =
    List.filter (fun e -> Json.member "ph" e = Json.Str "X") evs
  in
  Alcotest.(check int) "two task slices" 2 (List.length slices);
  let slice_of tid =
    List.find
      (fun e -> Json.member "tid" e = Json.Num (float_of_int tid))
      slices
  in
  (* Timestamps are rebased to the earliest event (1000 ns) and written
     in microseconds: w0's slice starts at 0 us and lasts 4 us. *)
  Alcotest.(check bool) "w0 slice ts" true
    (Json.member "ts" (slice_of 0) = Json.Num 0.0);
  Alcotest.(check bool) "w0 slice dur" true
    (Json.member "dur" (slice_of 0) = Json.Num 4.0);
  Alcotest.(check bool) "w1 slice ts" true
    (Json.member "ts" (slice_of 1) = Json.Num 2.1);
  let commit =
    List.find (fun e -> Json.member "name" e = Json.Str "steal-commit") evs
  in
  (match Json.member_opt "args" commit with
  | Some args ->
    Alcotest.(check bool) "victim recorded" true
      (Json.member "victim" args = Json.Num 0.0)
  | None -> Alcotest.fail "steal-commit has no args");
  let pname =
    List.find (fun e -> Json.member "name" e = Json.Str "process_name") evs
  in
  Alcotest.(check bool) "process name" true
    (Json.member "name" (Json.member "args" pname) = Json.Str "golden")

let test_perfetto_real_run_parses () =
  let tr = run_traced (module Nowa.Presets.Nowa) ~workers:4 16 in
  let s = Perfetto.to_string tr in
  match Json.parse s with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "exporter did not produce a JSON object"
  | exception Json.Bad m -> Alcotest.fail ("exporter JSON rejected: " ^ m)

let test_perfetto_unmatched_end_dropped () =
  (* A task-end whose start was overwritten must not produce a slice. *)
  let t = Trace.create ~workers:1 ~capacity:16 () in
  let w0 = Trace.worker t 0 in
  Ring.emit_at w0 ~ts:100 Ev.Task_end 0;
  Ring.emit_at w0 ~ts:200 Ev.Task_start 0;
  Ring.emit_at w0 ~ts:300 Ev.Task_end 0;
  let json = Json.parse (Perfetto.to_string t) in
  let evs =
    match Json.member "traceEvents" json with Json.List l -> l | _ -> []
  in
  let slices = List.filter (fun e -> Json.member "ph" e = Json.Str "X") evs in
  Alcotest.(check int) "one well-formed slice" 1 (List.length slices)

let test_perfetto_req_flow () =
  (* Request lifecycle events become instants plus s/t/f flow events that
     share id = rid, so Perfetto draws arrows across worker tracks. *)
  let t = Trace.create ~workers:2 ~capacity:16 () in
  let w0 = Trace.worker t 0 and w1 = Trace.worker t 1 in
  let rid = 42 in
  Ring.emit_at2 w0 ~ts:1_000 Ev.Req_submit 3 rid;
  Ring.emit_at2 w1 ~ts:2_000 Ev.Req_claim 3 rid;
  Ring.emit_at2 w1 ~ts:2_500 Ev.Req_apply 3 rid;
  Ring.emit_at2 w0 ~ts:3_000 Ev.Req_done 0 rid;
  let json = Json.parse (Perfetto.to_string t) in
  let evs =
    match Json.member "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  let flows =
    List.filter (fun e -> Json.member_opt "cat" e = Some (Json.Str "req")) evs
  in
  Alcotest.(check int) "submit/claim/apply each get a flow event" 3
    (List.length flows);
  let flow_ph ph =
    List.find_opt (fun e -> Json.member "ph" e = Json.Str ph) flows
  in
  List.iter
    (fun ph ->
      match flow_ph ph with
      | None -> Alcotest.fail ("missing flow phase " ^ ph)
      | Some f ->
        Alcotest.(check bool)
          ("flow " ^ ph ^ " carries rid as id")
          true
          (Json.member "id" f = Json.Num (float_of_int rid)))
    [ "s"; "t"; "f" ];
  (* The terminating flow event binds to the enclosing slice's end. *)
  (match flow_ph "f" with
  | Some f ->
    Alcotest.(check bool) "f has bp=e" true
      (Json.member_opt "bp" f = Some (Json.Str "e"))
  | None -> ());
  (* Station instants keep shard and request id readable in the UI. *)
  let claim =
    List.find (fun e -> Json.member "name" e = Json.Str "req-claim") evs
  in
  (match Json.member_opt "args" claim with
  | Some args ->
    Alcotest.(check bool) "claim shard arg" true
      (Json.member "shard" args = Json.Num 3.0);
    Alcotest.(check bool) "claim req arg" true
      (Json.member "req" args = Json.Num (float_of_int rid))
  | None -> Alcotest.fail "req-claim instant has no args");
  let dones =
    List.filter (fun e -> Json.member "name" e = Json.Str "req-done") evs
  in
  Alcotest.(check int) "req-done stays a plain instant" 1 (List.length dones)

(* -- analysis ---------------------------------------------------------- *)

let test_analysis_synthetic () =
  (* w0 works 0..1000 then idles; w1 idles, steals at 600, works 600..1000.
     Span is 0..1000. *)
  let t = Trace.create ~workers:2 ~capacity:64 () in
  let w0 = Trace.worker t 0 and w1 = Trace.worker t 1 in
  Ring.emit_at w0 ~ts:0 Ev.Task_start 0;
  Ring.emit_at w0 ~ts:500 Ev.Spawn 0;
  Ring.emit_at w0 ~ts:1_000 Ev.Task_end 0;
  Ring.emit_at w1 ~ts:100 Ev.Steal_attempt 0;
  Ring.emit_at w1 ~ts:150 Ev.Steal_abort 0;
  Ring.emit_at w1 ~ts:600 Ev.Steal_commit 0;
  Ring.emit_at w1 ~ts:600 Ev.Task_start 0;
  Ring.emit_at w1 ~ts:1_000 Ev.Task_end 0;
  let a = Analysis.summarize t in
  Alcotest.(check int) "span" 1_000 a.Analysis.span_ns;
  Alcotest.(check int) "busy total" 1_400 a.Analysis.busy_ns;
  let w0s = a.Analysis.workers.(0) and w1s = a.Analysis.workers.(1) in
  Alcotest.(check int) "w0 busy" 1_000 w0s.Analysis.busy_ns;
  Alcotest.(check int) "w1 busy" 400 w1s.Analysis.busy_ns;
  Alcotest.(check bool) "w0 util 100%" true (Float.abs (w0s.Analysis.utilization -. 1.0) < 1e-9);
  Alcotest.(check bool) "w1 util 40%" true (Float.abs (w1s.Analysis.utilization -. 0.4) < 1e-9);
  Alcotest.(check int) "w1 tasks" 1 w1s.Analysis.tasks;
  Alcotest.(check int) "w0 spawns" 1 w0s.Analysis.spawns;
  (* Steal latency: w1 idle from its first attempt (100) to commit (600). *)
  (match w1s.Analysis.steal_latencies_ns with
  | [ l ] -> Alcotest.(check bool) "latency 500" true (Float.abs (l -. 500.0) < 1e-9)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 latency, got %d" (List.length l)));
  Alcotest.(check bool) "p50 = only sample" true
    (Float.abs (a.Analysis.steal_p50_ns -. 500.0) < 1e-9)

let test_analysis_real_run_sane () =
  let tr = run_traced (module Nowa.Presets.Nowa) ~workers:4 18 in
  let a = Analysis.summarize tr in
  Alcotest.(check bool) "span positive" true (a.Analysis.span_ns > 0);
  Alcotest.(check bool) "utilization in (0,1]" true
    (a.Analysis.utilization > 0.0 && a.Analysis.utilization <= 1.0 +. 1e-9);
  Array.iter
    (fun (w : Analysis.worker_summary) ->
      Alcotest.(check bool) "worker util in [0,1]" true
        (w.Analysis.utilization >= 0.0 && w.Analysis.utilization <= 1.0 +. 1e-9))
    a.Analysis.workers

(* -- wsim virtual-time traces ----------------------------------------- *)

let test_wsim_trace () =
  let dag, _ =
    Nowa_dag.Recorder.record (fun () -> fib (module Nowa_dag.Recorder) 15)
  in
  let workers = 8 in
  let tr =
    Trace.create ~clock:Trace.Virtual ~workers ~capacity:65_536 ()
  in
  let r = Nowa_dag.Wsim.simulate ~trace:tr Nowa_dag.Cost_model.nowa ~workers dag in
  Alcotest.(check bool) "sim completed" true (not r.Nowa_dag.Wsim.truncated);
  Alcotest.(check bool) "events recorded" true (Trace.emitted tr > 0);
  (* Task slices live within the makespan (steal attempts queued past the
     last completion may legitimately trail it); all virtual timestamps
     are non-negative. *)
  let makespan = int_of_float r.Nowa_dag.Wsim.makespan_ns + 1 in
  Array.iter
    (Array.iter (fun e ->
         Alcotest.(check bool) "ts non-negative" true (e.Ev.ts >= 0);
         match e.Ev.kind with
         | Ev.Task_start | Ev.Task_end ->
           Alcotest.(check bool) "task slice within makespan" true
             (e.Ev.ts <= makespan)
         | _ -> ()))
    (Trace.per_worker_events tr);
  (* The same exporter consumes it. *)
  (match Json.parse (Perfetto.to_string ~process_name:"wsim" tr) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "wsim trace JSON not an object");
  (* And the trace agrees with the simulator's own steal count. *)
  let commits =
    Array.fold_left
      (fun acc evs ->
        Array.fold_left
          (fun acc e -> if e.Ev.kind = Ev.Steal_commit then acc + 1 else acc)
          acc evs)
      0 (Trace.per_worker_events tr)
  in
  Alcotest.(check int) "steal commits = sim steals" r.Nowa_dag.Wsim.steals commits;
  (* Untraced simulation of the same DAG is unaffected (same makespan:
     tracing must not perturb virtual time). *)
  let r' = Nowa_dag.Wsim.simulate Nowa_dag.Cost_model.nowa ~workers dag in
  Alcotest.(check bool) "tracing does not change the schedule" true
    (Float.abs (r.Nowa_dag.Wsim.makespan_ns -. r'.Nowa_dag.Wsim.makespan_ns) < 1e-6)

let () =
  Alcotest.run "nowa_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "capacity rounding" `Quick test_ring_capacity_rounding;
          Alcotest.test_case "wraparound overwrites oldest" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled is a no-op" `Quick test_ring_disabled;
          Alcotest.test_case "wall clock monotone" `Quick test_ring_emit_wall_clock_monotone;
          Alcotest.test_case "arg2 roundtrip" `Quick test_ring_arg2;
          Alcotest.test_case "event pp format" `Quick test_event_pp;
          Alcotest.test_case "current context" `Quick test_current_context;
        ] );
      ("trace", [ Alcotest.test_case "container" `Quick test_trace_container ]);
      ( "engines",
        [
          Alcotest.test_case "multi-domain per-worker ordering" `Quick
            test_multi_domain_emission;
          Alcotest.test_case "disabled by default" `Quick test_disabled_is_default;
          Alcotest.test_case "events match metrics" `Quick
            test_trace_events_against_metrics;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "golden JSON" `Quick test_perfetto_golden;
          Alcotest.test_case "real run parses" `Quick test_perfetto_real_run_parses;
          Alcotest.test_case "unmatched end dropped" `Quick
            test_perfetto_unmatched_end_dropped;
          Alcotest.test_case "request flow events" `Quick test_perfetto_req_flow;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "synthetic" `Quick test_analysis_synthetic;
          Alcotest.test_case "real run sane" `Quick test_analysis_real_run_sane;
        ] );
      ("wsim", [ Alcotest.test_case "virtual-time trace" `Quick test_wsim_trace ]);
    ]
