(* Tests for the DAG model, the trace recorder, the Intq ring deque, and
   the discrete-event work-stealing simulator. *)

module D = Nowa_dag

(* -- hand-built DAGs ------------------------------------------------------ *)

(* The canonical single-spawn diamond:
   root strand -> spawn -> {child strand, continuation strand} -> sync -> tail. *)
let diamond ~child_work ~cont_work =
  let d = D.Dag.create () in
  let root = D.Dag.add_strand d ~work:10.0 in
  D.Dag.set_root d root;
  let sync = D.Dag.add_sync d in
  let sp = D.Dag.add_spawn d ~frame:sync in
  D.Dag.add_edge d root sp;
  let child = D.Dag.add_strand d ~work:child_work in
  D.Dag.add_edge d sp child;
  let cont = D.Dag.add_strand d ~work:cont_work in
  D.Dag.mark_main_arrival d cont;
  D.Dag.add_edge d sp cont;
  D.Dag.add_edge d child sync;
  D.Dag.add_edge d cont sync;
  let tail = D.Dag.add_strand d ~work:5.0 in
  D.Dag.add_edge d sync tail;
  D.Dag.set_final d tail;
  d

let test_diamond_analysis () =
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  (match D.Dag.validate d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check (float 1e-9)) "work" 145.0 (D.Dag.total_work d);
  Alcotest.(check (float 1e-9)) "span = root+max(branches)+tail" 115.0 (D.Dag.span d);
  Alcotest.(check (float 1e-6)) "parallelism" (145.0 /. 115.0) (D.Dag.parallelism d);
  Alcotest.(check int) "spawns" 1 (D.Dag.count d D.Dag.Spawn);
  Alcotest.(check int) "syncs" 1 (D.Dag.count d D.Dag.Sync);
  Alcotest.(check int) "strands" 4 (D.Dag.count d D.Dag.Strand)

let test_validate_catches_broken_dags () =
  (* Missing continuation edge: spawn with out-degree 1. *)
  let d = D.Dag.create () in
  let root = D.Dag.add_strand d ~work:1.0 in
  D.Dag.set_root d root;
  let sync = D.Dag.add_sync d in
  let sp = D.Dag.add_spawn d ~frame:sync in
  D.Dag.add_edge d root sp;
  let child = D.Dag.add_strand d ~work:1.0 in
  D.Dag.add_edge d sp child;
  D.Dag.add_edge d child sync;
  let tail = D.Dag.add_strand d ~work:1.0 in
  D.Dag.add_edge d sync tail;
  D.Dag.set_final d tail;
  (match D.Dag.validate d with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error _ -> ());
  (* Empty DAG. *)
  (match D.Dag.validate (D.Dag.create ()) with
  | Ok () -> Alcotest.fail "empty DAG must not validate"
  | Error _ -> ())

let test_growth_beyond_initial_capacity () =
  let d = D.Dag.create () in
  let prev = ref (D.Dag.add_strand d ~work:1.0) in
  D.Dag.set_root d !prev;
  for _ = 1 to 5_000 do
    let v = D.Dag.add_strand d ~work:1.0 in
    D.Dag.add_edge d !prev v;
    prev := v
  done;
  D.Dag.set_final d !prev;
  Alcotest.(check int) "all vertices present" 5_001 (D.Dag.size d);
  (match D.Dag.validate d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate after growth: %s" e);
  Alcotest.(check (float 1e-6)) "serial chain: span = work" (D.Dag.total_work d)
    (D.Dag.span d)

(* -- recorder -------------------------------------------------------------- *)

let record_fib n =
  let module F = Nowa_kernels.Fib.Make (D.Recorder) in
  D.Recorder.record (fun () -> F.run n)

let test_recorder_fib_structure () =
  let dag, result = record_fib 12 in
  Alcotest.(check int) "fib value" 144 result;
  (match D.Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check int) "one spawn vertex per spawn point"
    (Nowa_kernels.Fib.spawn_count 12)
    (D.Dag.count dag D.Dag.Spawn);
  (* fib spawns once per frame, so sync vertices = spawn vertices. *)
  Alcotest.(check int) "syncs" (D.Dag.count dag D.Dag.Spawn) (D.Dag.count dag D.Dag.Sync);
  Alcotest.(check bool) "work positive" true (D.Dag.total_work dag > 0.0);
  Alcotest.(check bool) "span <= work" true (D.Dag.span dag <= D.Dag.total_work dag);
  Alcotest.(check bool) "parallelism > 1" true (D.Dag.parallelism dag > 1.0)

let test_recorder_multi_phase_scope () =
  (* Two spawn..sync phases in one scope must produce two sync vertices. *)
  let dag, () =
    D.Recorder.record (fun () ->
        D.Recorder.scope (fun sc ->
            ignore (D.Recorder.spawn sc (fun () -> ()));
            D.Recorder.sync sc;
            ignore (D.Recorder.spawn sc (fun () -> ()));
            D.Recorder.sync sc))
  in
  (match D.Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check int) "two syncs" 2 (D.Dag.count dag D.Dag.Sync);
  Alcotest.(check int) "two spawns" 2 (D.Dag.count dag D.Dag.Spawn)

let test_recorder_no_spawn_no_vertices () =
  let dag, v =
    D.Recorder.record (fun () -> D.Recorder.scope (fun _ -> 21 * 2))
  in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check int) "single strand" 1 (D.Dag.size dag);
  (match D.Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e)

let test_recorder_last_dag_via_runtime_interface () =
  let inst = Nowa_kernels.Registry.find Nowa_kernels.Registry.Test "fib" in
  let thunk = inst.Nowa_kernels.Registry.make_thunk (module D.Recorder) in
  let fp = D.Recorder.run thunk in
  let reference = Nowa_kernels.Registry.reference Nowa_kernels.Registry.Test "fib" in
  Alcotest.(check bool) "fingerprint matches" true
    (Nowa_kernels.Registry.matches inst reference fp);
  match D.Recorder.last_dag () with
  | None -> Alcotest.fail "last_dag missing"
  | Some dag -> (
    match D.Dag.validate dag with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate: %s" e)

(* -- Intq -------------------------------------------------------------------- *)

let test_intq_basic () =
  let q = D.Intq.create () in
  Alcotest.(check bool) "empty" true (D.Intq.is_empty q);
  Alcotest.(check int) "pop_back empty" (-1) (D.Intq.pop_back q);
  Alcotest.(check int) "pop_front empty" (-1) (D.Intq.pop_front q);
  for i = 1 to 100 do
    D.Intq.push_back q i
  done;
  Alcotest.(check int) "length" 100 (D.Intq.length q);
  Alcotest.(check int) "front" 1 (D.Intq.pop_front q);
  Alcotest.(check int) "back" 100 (D.Intq.pop_back q);
  D.Intq.clear q;
  Alcotest.(check bool) "cleared" true (D.Intq.is_empty q)

let prop_intq_model =
  QCheck.Test.make ~name:"intq matches list model" ~count:300
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let q = D.Intq.create () in
      let model = ref [] in
      let n = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            incr n;
            D.Intq.push_back q !n;
            model := !model @ [ !n ];
            true
          | 1 -> (
            match (D.Intq.pop_front q, !model) with
            | -1, [] -> true
            | v, x :: rest ->
              model := rest;
              v = x
            | _ -> false)
          | _ -> (
            match (D.Intq.pop_back q, List.rev !model) with
            | -1, [] -> true
            | v, x :: rest ->
              model := List.rev rest;
              v = x
            | _ -> false))
        ops)

(* -- simulator ------------------------------------------------------------------ *)

let fib_dag = lazy (fst (record_fib 17))

let test_sim_completes_and_conserves () =
  let dag = Lazy.force fib_dag in
  let r = D.Wsim.simulate D.Cost_model.nowa ~workers:4 dag in
  Alcotest.(check bool) "not truncated" false r.D.Wsim.truncated;
  Alcotest.(check bool) "finite makespan" true (Float.is_finite r.D.Wsim.makespan_ns);
  Alcotest.(check (float 1e-6)) "t1 matches dag work" (D.Dag.total_work dag) r.D.Wsim.t1_ns

let test_sim_brent_bounds () =
  (* T_P >= max(T1/P, T_inf): overheads only push the makespan up. *)
  let dag = Lazy.force fib_dag in
  List.iter
    (fun p ->
      let r = D.Wsim.simulate D.Cost_model.nowa ~workers:p dag in
      let lower = Float.max (r.D.Wsim.t1_ns /. float_of_int p) r.D.Wsim.span_ns in
      Alcotest.(check bool)
        (Printf.sprintf "lower bound at P=%d" p)
        true
        (r.D.Wsim.makespan_ns >= lower *. 0.999))
    [ 1; 2; 8; 32 ]

let test_sim_single_worker_no_steals () =
  let dag = Lazy.force fib_dag in
  let r = D.Wsim.simulate D.Cost_model.nowa ~workers:1 dag in
  Alcotest.(check int) "no steals" 0 r.D.Wsim.steals;
  Alcotest.(check bool) "speedup <= 1" true (r.D.Wsim.speedup <= 1.0)

let test_sim_determinism () =
  let dag = Lazy.force fib_dag in
  let a = D.Wsim.simulate ~seed:9 D.Cost_model.fibril ~workers:8 dag in
  let b = D.Wsim.simulate ~seed:9 D.Cost_model.fibril ~workers:8 dag in
  Alcotest.(check (float 0.0)) "same seed, same makespan" a.D.Wsim.makespan_ns
    b.D.Wsim.makespan_ns;
  Alcotest.(check int) "same steals" a.D.Wsim.steals b.D.Wsim.steals

let test_sim_scales () =
  let dag = Lazy.force fib_dag in
  let s1 = (D.Wsim.simulate D.Cost_model.nowa ~workers:1 dag).D.Wsim.speedup in
  let s8 = (D.Wsim.simulate D.Cost_model.nowa ~workers:8 dag).D.Wsim.speedup in
  Alcotest.(check bool) "8 workers beat 1" true (s8 > s1 *. 3.0)

let test_sim_runtime_ordering_at_scale () =
  (* The headline result (Figures 1/7/10): at high worker counts the
     wait-free CL configuration beats the lock-based ones, which beat the
     central queue by a wide margin. *)
  let dag = Lazy.force fib_dag in
  let speedup m = (D.Wsim.simulate m ~workers:64 dag).D.Wsim.speedup in
  let nowa = speedup D.Cost_model.nowa in
  let fibril = speedup D.Cost_model.fibril in
  let cilk = speedup D.Cost_model.cilkplus in
  let gomp = speedup D.Cost_model.gomp in
  Alcotest.(check bool) "nowa >= fibril" true (nowa >= fibril *. 0.98);
  Alcotest.(check bool) "nowa > cilkplus" true (nowa > cilk);
  Alcotest.(check bool) "everyone beats gomp" true (Float.min nowa (Float.min fibril cilk) > gomp *. 2.0);
  Alcotest.(check bool) "gomp collapses" true (gomp < 2.0)

let test_sim_tied_slower_than_untied () =
  let dag = Lazy.force fib_dag in
  let tied = (D.Wsim.simulate D.Cost_model.lomp_tied ~workers:32 dag).D.Wsim.speedup in
  let untied =
    (D.Wsim.simulate D.Cost_model.lomp_untied ~workers:32 dag).D.Wsim.speedup
  in
  Alcotest.(check bool) "tied <= untied on fib" true (tied <= untied *. 1.05)

let test_sim_event_cap () =
  let dag = Lazy.force fib_dag in
  let r = D.Wsim.simulate ~max_events:100 D.Cost_model.nowa ~workers:4 dag in
  Alcotest.(check bool) "truncation reported" true r.D.Wsim.truncated

let test_sim_diamond_exact () =
  (* One spawn, no contention, one worker: the makespan is the serial
     work plus the deterministic per-op costs. *)
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  let r = D.Wsim.simulate D.Cost_model.nowa ~workers:1 d in
  let m = D.Cost_model.nowa in
  (* root + spawn + child + pop + cont + tail; unstolen sync is free. *)
  let expected =
    10.0 +. m.D.Cost_model.spawn_ns +. 100.0 +. 6.0 +. 30.0 +. 5.0
  in
  Alcotest.(check (float 1e-6)) "exact makespan" expected r.D.Wsim.makespan_ns

let test_clamp_work () =
  (* A serial chain with one enormous outlier: clamping caps it near the
     population's quantile and shrinks the span accordingly. *)
  let d = D.Dag.create () in
  let prev = ref (D.Dag.add_strand d ~work:100.0) in
  D.Dag.set_root d !prev;
  for _ = 1 to 2_000 do
    let v = D.Dag.add_strand d ~work:100.0 in
    D.Dag.add_edge d !prev v;
    prev := v
  done;
  let spike = D.Dag.add_strand d ~work:1_000_000.0 in
  D.Dag.add_edge d !prev spike;
  D.Dag.set_final d spike;
  let before = D.Dag.span d in
  let clamped = D.Dag.clamp_work d in
  Alcotest.(check int) "one strand clamped" 1 clamped;
  Alcotest.(check bool) "span shrank" true (D.Dag.span d < before /. 2.0);
  Alcotest.(check bool) "regular strands untouched" true
    (D.Dag.work d (D.Dag.root d) = 100.0);
  Alcotest.(check int) "idempotent" 0 (D.Dag.clamp_work d)

let test_clamp_work_empty_and_uniform () =
  Alcotest.(check int) "empty DAG" 0 (D.Dag.clamp_work (D.Dag.create ()));
  let d = diamond ~child_work:50.0 ~cont_work:50.0 in
  Alcotest.(check int) "uniform costs unclamped" 0 (D.Dag.clamp_work d)

(* -- scalability (burdened analysis) -------------------------------------- *)

(* In the diamond the burdened critical path is root -> spawn ->(child
   edge, free) child ->(child sync arrival, +b) sync -> tail, so the
   burdened span is span + b; the continuation path picks up the
   spawn-continuation burden instead but stays shorter. *)
let test_burdened_span_diamond () =
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  let r0 = D.Scalability.analyze ~burden_ns:0.0 d in
  Alcotest.(check (float 1e-9)) "burden 0 equals Dag.span" (D.Dag.span d)
    r0.D.Scalability.burdened_span_ns;
  Alcotest.(check (float 1e-9)) "burden 0 parallelism" (D.Dag.parallelism d)
    r0.D.Scalability.burdened_parallelism;
  let r = D.Scalability.analyze ~burden_ns:50.0 d in
  Alcotest.(check (float 1e-9)) "burdened span = span + one join burden"
    (115.0 +. 50.0) r.D.Scalability.burdened_span_ns;
  Alcotest.(check (float 1e-9)) "work unchanged" 145.0 r.D.Scalability.work_ns

let test_burdened_span_monotone () =
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  let spans =
    List.map
      (fun b -> (D.Scalability.analyze ~burden_ns:b d).D.Scalability.burdened_span_ns)
      [ 0.0; 10.0; 50.0; 200.0; 1000.0 ]
  in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "non-decreasing in burden" true (a <= b);
      check_sorted rest
    | _ -> ()
  in
  check_sorted spans;
  Alcotest.(check bool) "burden > 0 is >= span" true
    (List.for_all (fun s -> s >= D.Dag.span d) spans)

let test_burdened_span_serial_chain () =
  (* No spawn/sync edges: burden never applies, any burden leaves the
     span untouched. *)
  let d = D.Dag.create () in
  let prev = ref (D.Dag.add_strand d ~work:2.0) in
  D.Dag.set_root d !prev;
  for _ = 1 to 100 do
    let v = D.Dag.add_strand d ~work:2.0 in
    D.Dag.add_edge d !prev v;
    prev := v
  done;
  D.Dag.set_final d !prev;
  let r = D.Scalability.analyze ~burden_ns:500.0 d in
  Alcotest.(check (float 1e-9)) "chain is burden-free" (D.Dag.span d)
    r.D.Scalability.burdened_span_ns

let test_scalability_bounds () =
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  let r = D.Scalability.analyze ~burden_ns:50.0 d in
  (* Upper: min(P, T1/Tinf) with the plain span. *)
  Alcotest.(check (float 1e-9)) "upper at P=1" 1.0
    (D.Scalability.bound_upper r ~workers:1);
  Alcotest.(check (float 1e-6)) "upper saturates at parallelism"
    (145.0 /. 115.0)
    (D.Scalability.bound_upper r ~workers:256);
  (* Lower: T1 / (T1/P + burdened span). *)
  Alcotest.(check (float 1e-6)) "lower at P=2"
    (145.0 /. ((145.0 /. 2.0) +. 165.0))
    (D.Scalability.bound_lower r ~workers:2);
  Alcotest.(check bool) "lower <= upper" true
    (D.Scalability.bound_lower r ~workers:8
    <= D.Scalability.bound_upper r ~workers:8)

let test_critical_strands () =
  let d = diamond ~child_work:100.0 ~cont_work:30.0 in
  match D.Scalability.critical_strands ~burden_ns:50.0 ~top:2 d with
  | first :: _ as strands ->
    Alcotest.(check int) "at most top" 2 (List.length strands);
    (* The heaviest strand on the burdened critical path is the child
       (work 100); its share is 100 / 165. *)
    Alcotest.(check (float 1e-9)) "heaviest strand work" 100.0
      first.D.Scalability.work_ns;
    Alcotest.(check (float 1e-6)) "share of burdened span" (100.0 /. 165.0)
      first.D.Scalability.share
  | [] -> Alcotest.fail "critical path must contain strands"

let test_cost_model_registry () =
  Alcotest.(check int) "eight models" 8 (List.length D.Cost_model.all);
  let m = D.Cost_model.find "fibril" in
  Alcotest.(check string) "find" "fibril" m.D.Cost_model.cname;
  Alcotest.(check bool) "fibril uses locks" true (m.D.Cost_model.join_lock_ns > 0.0);
  let n = D.Cost_model.find "nowa" in
  Alcotest.(check (float 0.0)) "nowa is wait-free" 0.0 n.D.Cost_model.join_lock_ns

let () =
  Alcotest.run "nowa_dag"
    [
      ( "dag",
        [
          Alcotest.test_case "diamond analysis" `Quick test_diamond_analysis;
          Alcotest.test_case "validate broken" `Quick test_validate_catches_broken_dags;
          Alcotest.test_case "growth" `Quick test_growth_beyond_initial_capacity;
        ] );
      ( "scalability",
        [
          Alcotest.test_case "burdened diamond" `Quick test_burdened_span_diamond;
          Alcotest.test_case "burden monotone" `Quick test_burdened_span_monotone;
          Alcotest.test_case "serial chain burden-free" `Quick
            test_burdened_span_serial_chain;
          Alcotest.test_case "speedup bounds" `Quick test_scalability_bounds;
          Alcotest.test_case "critical strands" `Quick test_critical_strands;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "fib structure" `Quick test_recorder_fib_structure;
          Alcotest.test_case "multi-phase scope" `Quick test_recorder_multi_phase_scope;
          Alcotest.test_case "no spawns" `Quick test_recorder_no_spawn_no_vertices;
          Alcotest.test_case "runtime interface" `Quick test_recorder_last_dag_via_runtime_interface;
        ] );
      ( "intq",
        [
          Alcotest.test_case "basics" `Quick test_intq_basic;
          QCheck_alcotest.to_alcotest prop_intq_model;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "completes" `Quick test_sim_completes_and_conserves;
          Alcotest.test_case "Brent bounds" `Slow test_sim_brent_bounds;
          Alcotest.test_case "one worker" `Quick test_sim_single_worker_no_steals;
          Alcotest.test_case "deterministic" `Quick test_sim_determinism;
          Alcotest.test_case "scales" `Quick test_sim_scales;
          Alcotest.test_case "runtime ordering" `Slow test_sim_runtime_ordering_at_scale;
          Alcotest.test_case "tied vs untied" `Slow test_sim_tied_slower_than_untied;
          Alcotest.test_case "event cap" `Quick test_sim_event_cap;
          Alcotest.test_case "diamond exact" `Quick test_sim_diamond_exact;
        ] );
      ( "clamping",
        [
          Alcotest.test_case "outlier removal" `Quick test_clamp_work;
          Alcotest.test_case "edge cases" `Quick test_clamp_work_empty_and_uniform;
        ] );
      ( "cost models",
        [ Alcotest.test_case "registry" `Quick test_cost_model_registry ] );
    ]
