(* Tests for the causal profiler: the time ledger's conservation law,
   convoy detection, and the what-if virtual-speedup engine. *)

module D = Nowa_dag
module Wsim = Nowa_dag.Wsim
module Convoy = Nowa_dag.Convoy
module Causal = Nowa_dag.Causal
module CM = Nowa_dag.Cost_model

(* -- recorded DAGs --------------------------------------------------------- *)

let record bench =
  let inst = Nowa_kernels.Registry.find Nowa_kernels.Registry.Test bench in
  let thunk =
    inst.Nowa_kernels.Registry.make_thunk (module Nowa_dag.Recorder)
  in
  let dag, _ = D.Recorder.record thunk in
  ignore (D.Dag.clamp_work dag);
  dag

let fib_dag = lazy (record "fib")
let nqueens_dag = lazy (record "nqueens")

(* -- hand-built DAGs ------------------------------------------------------- *)

(* A one-frame fan-out: root -> chain of [n] spawns, each child a strand
   of [child_work] ns, all joining one sync.  Under the central-queue
   model every child goes through the single global lock, which is the
   textbook convoy generator. *)
let wide_dag ~n ~child_work =
  let d = D.Dag.create () in
  let root = D.Dag.add_strand d ~work:10.0 in
  D.Dag.set_root d root;
  let sync = D.Dag.add_sync d in
  let prev = ref root in
  for i = 1 to n do
    let sp = D.Dag.add_spawn d ~frame:sync in
    D.Dag.add_edge d !prev sp;
    let child = D.Dag.add_strand d ~work:child_work in
    D.Dag.add_edge d sp child;
    D.Dag.add_edge d child sync;
    let cont = D.Dag.add_strand d ~work:1.0 in
    D.Dag.add_edge d sp cont;
    if i = n then D.Dag.mark_main_arrival d cont;
    prev := cont
  done;
  D.Dag.add_edge d !prev sync;
  let tail = D.Dag.add_strand d ~work:5.0 in
  D.Dag.add_edge d sync tail;
  D.Dag.set_final d tail;
  d

(* -- ledger: structure ----------------------------------------------------- *)

let test_category_names_and_indices () =
  List.iteri
    (fun i c ->
      Alcotest.(check int)
        (Wsim.category_name c ^ " index")
        i (Wsim.category_index c))
    Wsim.categories;
  let names = List.map Wsim.category_name Wsim.categories in
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      String.iter
        (fun ch ->
          Alcotest.(check bool)
            (Printf.sprintf "%S is metric-safe" n)
            true
            ((ch >= 'a' && ch <= 'z') || ch = '_'))
        n)
    names

let check_conserves ?(tol = 1e-6) (r : Wsim.result) =
  let l = r.Wsim.ledger in
  let expect = float_of_int r.Wsim.workers *. l.Wsim.horizon_ns in
  let total = Wsim.ledger_total l in
  let scale = Float.max 1.0 expect in
  if Float.abs (total -. expect) /. scale > tol then
    Alcotest.failf "ledger leaks: total %.6f vs workers x horizon %.6f" total
      expect;
  Array.iteri
    (fun w row ->
      let s = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (s -. l.Wsim.horizon_ns) /. scale > tol then
        Alcotest.failf "worker %d row sums to %.6f, horizon %.6f" w s
          l.Wsim.horizon_ns;
      Array.iter
        (fun v ->
          if v < -1e-9 then Alcotest.failf "worker %d has negative category" w)
        row)
    l.Wsim.by_worker

let test_ledger_conserves_basic () =
  let dag = Lazy.force fib_dag in
  List.iter
    (fun (m, workers) -> check_conserves (Wsim.simulate m ~workers dag))
    [
      (CM.nowa, 1); (CM.nowa, 7); (CM.nowa, 64);
      (CM.cilkplus, 16); (CM.fibril, 32); (CM.gomp, 16); (CM.lomp_tied, 8);
    ]

(* The acceptance property: conservation across seeds, worker counts
   1..64, and both recorded DAG shapes, under wait-free, lock-based and
   central-queue models. *)
let prop_ledger_conserves =
  QCheck.Test.make ~name:"ledger conserves (random seed/workers/model/dag)"
    ~count:40
    QCheck.(triple (int_range 0 5) (int_range 1 64) (int_range 0 10_000))
    (fun (sel, workers, seed) ->
      let model = List.nth [ CM.nowa; CM.cilkplus; CM.gomp ] (sel mod 3) in
      let dag = Lazy.force (if sel < 3 then fib_dag else nqueens_dag) in
      let r = Wsim.simulate ~seed model ~workers dag in
      check_conserves r;
      true)

(* Parking models: conservation must survive the parked category, parked
   time must actually appear, and the stock (park_after = 0) simulation
   must stay bit-identical to a model that merely carries different
   park latencies. *)
let test_parked_model_conserves () =
  let dag = Lazy.force fib_dag in
  List.iter
    (fun (park_after, workers, seed) ->
      let m = { CM.nowa with CM.park_after } in
      let r = Wsim.simulate ~seed m ~workers dag in
      check_conserves r;
      let parked = Wsim.ledger_category r.Wsim.ledger Wsim.Parked in
      if park_after = 0 then
        Alcotest.(check (float 0.0)) "no parking when disabled" 0.0 parked)
    [ (0, 16, 1); (4, 16, 1); (1, 64, 3); (16, 8, 7); (4, 32, 42) ]

let test_parked_time_appears () =
  (* A wide serial-ish DAG at high worker counts leaves most virtual
     workers idle; with an aggressive threshold that idle time must be
     (partly) charged to the parked category. *)
  let dag = wide_dag ~n:4 ~child_work:50_000.0 in
  let m = { CM.nowa with CM.park_after = 2 } in
  let r = Wsim.simulate m ~workers:32 dag in
  check_conserves r;
  Alcotest.(check bool) "parked time recorded" true
    (Wsim.ledger_category r.Wsim.ledger Wsim.Parked > 0.0)

let test_park_after_zero_bit_identical () =
  let dag = Lazy.force fib_dag in
  let a = Wsim.simulate CM.nowa ~workers:16 dag in
  let b =
    Wsim.simulate
      { CM.nowa with CM.park_ns = 9_999.0; unpark_ns = 77_777.0 }
      ~workers:16 dag
  in
  Alcotest.(check (float 0.0)) "same makespan" a.Wsim.makespan_ns b.Wsim.makespan_ns;
  Alcotest.(check int) "same steals" a.Wsim.steals b.Wsim.steals;
  Alcotest.(check int) "same events" a.Wsim.events b.Wsim.events

let test_wake_latency_knob () =
  (* Scales only the park latencies: identity on stock models at any
     factor, and not part of the default ranking set. *)
  let m = Causal.apply CM.nowa Causal.Wake_latency ~factor:0.0 in
  Alcotest.(check (float 0.0)) "park_ns scaled" 0.0 m.CM.park_ns;
  Alcotest.(check (float 0.0)) "unpark_ns scaled" 0.0 m.CM.unpark_ns;
  Alcotest.(check (float 0.0)) "spawn untouched" CM.nowa.CM.spawn_ns m.CM.spawn_ns;
  Alcotest.(check bool) "not in model_knobs" false
    (List.mem Causal.Wake_latency Causal.model_knobs);
  let dag = Lazy.force fib_dag in
  let x =
    Causal.run ~factors:[ 0.0; 1.0; 2.0 ]
      { CM.nowa with CM.park_after = 2 }
      ~workers:32 dag Causal.Wake_latency
  in
  Alcotest.(check string) "knob name" "wake_latency"
    (Causal.knob_name x.Causal.knob);
  List.iter
    (fun (p : Causal.point) ->
      Alcotest.(check bool) "finite makespan" true
        (Float.is_finite p.Causal.makespan_ns))
    x.Causal.points

let test_ledger_strand_work_is_t1 () =
  (* All strand work is executed exactly once, whatever the schedule. *)
  let dag = Lazy.force fib_dag in
  List.iter
    (fun workers ->
      let r = Wsim.simulate CM.cilkplus ~workers dag in
      Alcotest.(check (float 1.0)) "strand_work = T1" r.Wsim.t1_ns
        (Wsim.ledger_category r.Wsim.ledger Wsim.Strand_work))
    [ 1; 8; 32 ]

(* -- determinism ----------------------------------------------------------- *)

let test_determinism_full () =
  let dag = Lazy.force fib_dag in
  let run () = Wsim.simulate ~seed:42 ~detail:true CM.fibril ~workers:24 dag in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "makespan" a.Wsim.makespan_ns b.Wsim.makespan_ns;
  Alcotest.(check int) "steals" a.Wsim.steals b.Wsim.steals;
  Alcotest.(check int) "steal attempts" a.Wsim.steal_attempts
    b.Wsim.steal_attempts;
  Alcotest.(check int) "events" a.Wsim.events b.Wsim.events;
  Alcotest.(check bool) "ledger identical" true
    (a.Wsim.ledger.Wsim.by_worker = b.Wsim.ledger.Wsim.by_worker);
  Alcotest.(check bool) "acquisition log identical" true
    (a.Wsim.acquisitions = b.Wsim.acquisitions);
  let c = Wsim.simulate ~seed:43 ~detail:true CM.fibril ~workers:24 dag in
  Alcotest.(check bool) "different seed, different schedule" true
    (a.Wsim.acquisitions <> c.Wsim.acquisitions
    || a.Wsim.makespan_ns <> c.Wsim.makespan_ns)

(* -- truncation ------------------------------------------------------------ *)

let test_truncated_ledger_is_partial_and_conserves () =
  let dag = Lazy.force fib_dag in
  let tr =
    Nowa_trace.Trace.create ~clock:Nowa_trace.Trace.Virtual ~workers:8
      ~capacity:4096 ()
  in
  let r = Wsim.simulate ~max_events:500 ~trace:tr CM.nowa ~workers:8 dag in
  Alcotest.(check bool) "truncated" true r.Wsim.truncated;
  Alcotest.(check bool) "ledger marked partial" true
    r.Wsim.ledger.Wsim.lpartial;
  Alcotest.(check bool) "partial horizon is finite" true
    (Float.is_finite r.Wsim.makespan_ns);
  Alcotest.(check (float 1e-9)) "makespan = partial horizon"
    r.Wsim.ledger.Wsim.horizon_ns r.Wsim.makespan_ns;
  Alcotest.(check bool) "partial trace flushed" true
    (Array.length (Nowa_trace.Trace.events tr) > 0);
  check_conserves r

let test_complete_ledger_not_partial () =
  let dag = Lazy.force fib_dag in
  let r = Wsim.simulate CM.nowa ~workers:8 dag in
  Alcotest.(check bool) "not partial" false r.Wsim.ledger.Wsim.lpartial;
  Alcotest.(check (float 1e-9)) "horizon = makespan"
    r.Wsim.makespan_ns r.Wsim.ledger.Wsim.horizon_ns

(* -- convoy detector: synthetic log ---------------------------------------- *)

let acq ~w ~arrive ~start ~finish =
  {
    Wsim.aclass = Wsim.Counter;
    rid = 7;
    aworker = w;
    arrive_ns = arrive;
    start_ns = start;
    finish_ns = finish;
  }

(* Four workers pile onto one counter: w0 holds [0,100); w1..w3 arrive at
   10/20/30 and are admitted FIFO.  Queue depth reaches 4 at t=30 and
   drops below 4 at t=100 (w0's release), so the window is [30,100),
   everyone participates, and the queueing delay inside the window is
   3 workers x 70 ns. *)
let convoy_acqs =
  [|
    acq ~w:0 ~arrive:0.0 ~start:0.0 ~finish:100.0;
    acq ~w:1 ~arrive:10.0 ~start:100.0 ~finish:200.0;
    acq ~w:2 ~arrive:20.0 ~start:200.0 ~finish:300.0;
    acq ~w:3 ~arrive:30.0 ~start:300.0 ~finish:400.0;
  |]

let test_convoy_synthetic_exact () =
  match Convoy.detect ~k:4 convoy_acqs with
  | [ c ] ->
    Alcotest.(check string) "resource" "counter[7]"
      (Convoy.resource_name c.Convoy.resource);
    Alcotest.(check (float 1e-9)) "start" 30.0 c.Convoy.start_ns;
    Alcotest.(check (float 1e-9)) "end" 100.0 c.Convoy.end_ns;
    Alcotest.(check (float 1e-9)) "duration" 70.0 (Convoy.duration_ns c);
    Alcotest.(check int) "peak" 4 c.Convoy.peak;
    Alcotest.(check int) "participants" 4 c.Convoy.participants;
    Alcotest.(check (float 1e-9)) "serialized" 210.0 c.Convoy.serialized_ns
  | l -> Alcotest.failf "expected exactly one convoy, got %d" (List.length l)

let test_convoy_threshold_and_filters () =
  (* k=5 can never be reached by 4 acquisitions. *)
  Alcotest.(check int) "k=5 finds nothing" 0
    (List.length (Convoy.detect ~k:5 convoy_acqs));
  (* k=2 opens earlier (t=10) and closes when the queue finally drains
     below 2, i.e. at w2's release admitting the last waiter. *)
  (match Convoy.detect ~k:2 convoy_acqs with
  | [ c ] ->
    Alcotest.(check (float 1e-9)) "k=2 start" 10.0 c.Convoy.start_ns;
    Alcotest.(check (float 1e-9)) "k=2 end" 300.0 c.Convoy.end_ns
  | l -> Alcotest.failf "expected one k=2 convoy, got %d" (List.length l));
  Alcotest.(check int) "min_duration filters" 0
    (List.length (Convoy.detect ~k:4 ~min_duration_ns:1e6 convoy_acqs));
  Alcotest.(check int) "empty log" 0 (List.length (Convoy.detect [||]))

let test_convoy_counter_tracks () =
  let tracks = Convoy.counter_tracks ~k:4 convoy_acqs in
  match tracks with
  | [ (name, samples) ] ->
    Alcotest.(check string) "track name" "queue depth counter[7]" name;
    let peak =
      Array.fold_left (fun m (_, d) -> Float.max m d) 0.0 samples
    in
    Alcotest.(check (float 1e-9)) "peak depth sampled" 4.0 peak;
    Alcotest.(check (float 1e-9)) "drains to zero" 0.0
      (snd samples.(Array.length samples - 1))
  | l -> Alcotest.failf "expected one track, got %d" (List.length l)

(* -- convoy detector: end-to-end through the simulator ---------------------- *)

let test_convoy_end_to_end_central_queue () =
  let dag = wide_dag ~n:16 ~child_work:5000.0 in
  (match D.Dag.validate dag with
  | Ok () -> ()
  | Error e -> Alcotest.failf "wide dag invalid: %s" e);
  let r = Wsim.simulate ~detail:true CM.gomp ~workers:4 dag in
  check_conserves r;
  match Convoy.detect ~k:4 r.Wsim.acquisitions with
  | [] -> Alcotest.fail "central-queue model at 4 workers must convoy"
  | c :: _ ->
    Alcotest.(check bool) "convoy is on the central queue" true
      (c.Convoy.resource.Convoy.cls = Wsim.Central);
    Alcotest.(check int) "all four workers participate" 4
      c.Convoy.participants;
    Alcotest.(check bool) "serialized time positive" true
      (c.Convoy.serialized_ns > 0.0)

let test_convoy_lock_model_flags_serial_clean () =
  let dag = Lazy.force fib_dag in
  (* Lock-based model at high worker count: at least one convoy. *)
  let hot = Wsim.simulate ~detail:true CM.gomp ~workers:32 dag in
  Alcotest.(check bool) "lock model at 32 workers convoys" true
    (Convoy.detect hot.Wsim.acquisitions <> []);
  (* Any model on one worker: a worker cannot contend with itself. *)
  List.iter
    (fun m ->
      let r = Wsim.simulate ~detail:true m ~workers:1 dag in
      Alcotest.(check int)
        (m.CM.cname ^ " serial run has no contention")
        0
        (List.fold_left
           (fun acc (s : Wsim.resource_stats) -> acc + s.Wsim.contended)
           0 r.Wsim.resources);
      Alcotest.(check bool)
        (m.CM.cname ^ " serial run has no convoys")
        true
        (Convoy.detect r.Wsim.acquisitions = []))
    [ CM.nowa; CM.cilkplus; CM.gomp ]

let test_detail_flag_gates_acquisition_log () =
  let dag = Lazy.force fib_dag in
  let off = Wsim.simulate CM.cilkplus ~workers:8 dag in
  Alcotest.(check int) "no detail, no log" 0
    (Array.length off.Wsim.acquisitions);
  let on = Wsim.simulate ~detail:true CM.cilkplus ~workers:8 dag in
  Alcotest.(check bool) "detail records acquisitions" true
    (Array.length on.Wsim.acquisitions > 0);
  (* The always-on per-class stats must agree with the detailed log. *)
  let logged = Array.length on.Wsim.acquisitions in
  let counted =
    List.fold_left
      (fun acc (s : Wsim.resource_stats) -> acc + s.Wsim.acquisitions)
      0 on.Wsim.resources
  in
  Alcotest.(check int) "stats and log agree" counted logged

(* -- what-if engine --------------------------------------------------------- *)

let test_apply_factor_one_is_identity () =
  List.iter
    (fun m ->
      List.iter
        (fun knob ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s at 1.0" m.CM.cname (Causal.knob_name knob))
            true
            (Causal.apply m knob ~factor:1.0 = m))
        Causal.model_knobs)
    CM.all

let test_causal_run_shape () =
  let dag = Lazy.force fib_dag in
  let x =
    Causal.run ~factors:[ 0.5; 2.0 ] CM.cilkplus ~workers:16 dag
      Causal.Steal_cost
  in
  let factors = List.map (fun (p : Causal.point) -> p.Causal.factor) x.Causal.points in
  Alcotest.(check (list (float 1e-9))) "0 and 1 forced in, sorted"
    [ 0.0; 0.5; 1.0; 2.0 ] factors;
  let at f =
    List.find (fun (p : Causal.point) -> p.Causal.factor = f) x.Causal.points
  in
  Alcotest.(check (float 1e-9)) "baseline is the factor-1 point"
    x.Causal.baseline_ns (at 1.0).Causal.makespan_ns;
  Alcotest.(check (float 1e-9)) "gain at 1.0 is zero" 0.0 (at 1.0).Causal.gain_pct;
  Alcotest.(check (float 1e-9)) "zero_gain matches the factor-0 point"
    x.Causal.zero_gain_pct (at 0.0).Causal.gain_pct;
  Alcotest.(check string) "model recorded" "cilkplus" x.Causal.cname;
  Alcotest.(check int) "workers recorded" 16 x.Causal.xworkers

(* The acceptance ranking: on fib, zeroing lock costs must matter more
   under the lock-based models than under wait-free Nowa (where every
   lock field is already 0, so the knob is exactly inert). *)
let test_lock_sensitivity_ranking_across_models () =
  let dag = Lazy.force fib_dag in
  let lock_gain m =
    (Causal.run ~factors:[] m ~workers:32 dag Causal.Lock_cost)
      .Causal.zero_gain_pct
  in
  let nowa = lock_gain CM.nowa in
  let cilk = lock_gain CM.cilkplus in
  let gomp = lock_gain CM.gomp in
  Alcotest.(check (float 1e-9)) "nowa has no lock cost to remove" 0.0 nowa;
  Alcotest.(check bool) "cilkplus gains from lock removal" true (cilk > 1.0);
  Alcotest.(check bool) "lock model ranks above nowa" true
    (cilk > nowa && gomp > nowa)

let test_rank_sorted_and_complete () =
  let dag = Lazy.force fib_dag in
  let ranking =
    Causal.rank ~factors:[] CM.cilkplus ~workers:16 dag Causal.model_knobs
  in
  Alcotest.(check int) "one experiment per knob"
    (List.length Causal.model_knobs)
    (List.length ranking);
  let gains = List.map (fun x -> x.Causal.zero_gain_pct) ranking in
  Alcotest.(check bool) "sorted descending" true
    (List.sort (fun a b -> compare b a) gains = gains)

let test_strand_work_knob () =
  let dag = Lazy.force fib_dag in
  let v =
    match Causal.hottest_strand dag with
    | Some v -> v
    | None -> Alcotest.fail "fib has strands"
  in
  Alcotest.(check bool) "hottest is a strand" true
    (D.Dag.kind dag v = D.Dag.Strand);
  let saved = D.Dag.work dag v in
  let x =
    Causal.run ~factors:[ 0.0; 1.0 ] CM.nowa ~workers:8 dag
      (Causal.Strand_work v)
  in
  Alcotest.(check (float 1e-9)) "work restored after the experiment" saved
    (D.Dag.work dag v);
  Alcotest.(check string) "knob name" (Printf.sprintf "strand_%d" v)
    (Causal.knob_name x.Causal.knob);
  let baseline = (Wsim.simulate CM.nowa ~workers:8 dag).Wsim.makespan_ns in
  Alcotest.(check (float 1e-9)) "factor-1 point is undisturbed" baseline
    x.Causal.baseline_ns

let test_set_work_guards () =
  let dag = Lazy.force fib_dag in
  let spawn =
    let rec find v =
      if D.Dag.kind dag v = D.Dag.Spawn then v else find (v + 1)
    in
    find 0
  in
  Alcotest.check_raises "spawn vertex rejected"
    (Invalid_argument "Dag.set_work: not a strand") (fun () ->
      D.Dag.set_work dag spawn 1.0);
  let strand =
    match Causal.hottest_strand dag with Some v -> v | None -> assert false
  in
  Alcotest.check_raises "negative work rejected"
    (Invalid_argument "Dag.set_work: work must be finite and non-negative")
    (fun () -> D.Dag.set_work dag strand (-1.0));
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Dag.set_work: work must be finite and non-negative")
    (fun () -> D.Dag.set_work dag strand Float.nan)

let test_publish_sets_gauges () =
  let dag = Lazy.force fib_dag in
  let r = Wsim.simulate ~detail:true CM.cilkplus ~workers:8 dag in
  let convoys = Convoy.detect r.Wsim.acquisitions in
  Causal.publish r convoys;
  let samples = Nowa_obs.Registry.snapshot () in
  let value name =
    match
      List.find_opt (fun s -> s.Nowa_obs.Registry.name = name) samples
    with
    | Some { Nowa_obs.Registry.value = Nowa_obs.Registry.Gauge v; _ } -> v
    | _ -> Alcotest.failf "gauge %s missing from the default registry" name
  in
  Alcotest.(check (float 1.0)) "strand_work gauge"
    (Float.of_int
       (int_of_float (Wsim.ledger_category r.Wsim.ledger Wsim.Strand_work)))
    (value "nowa_wsim_ledger_strand_work_ns");
  Alcotest.(check (float 1.0)) "makespan gauge"
    (Float.of_int (int_of_float r.Wsim.makespan_ns))
    (value "nowa_wsim_makespan_ns");
  Alcotest.(check (float 0.0)) "convoy count gauge"
    (float_of_int (List.length convoys))
    (value "nowa_wsim_convoys");
  (* Publishing again must overwrite, not re-register. *)
  Causal.publish r convoys;
  Alcotest.(check (float 0.0)) "idempotent re-publish"
    (float_of_int (List.length convoys))
    (value "nowa_wsim_convoys")

let () =
  Alcotest.run "nowa_causal"
    [
      ( "ledger",
        [
          Alcotest.test_case "category layout" `Quick
            test_category_names_and_indices;
          Alcotest.test_case "conserves (fixed grid)" `Quick
            test_ledger_conserves_basic;
          QCheck_alcotest.to_alcotest prop_ledger_conserves;
          Alcotest.test_case "strand work = T1" `Quick
            test_ledger_strand_work_is_t1;
          Alcotest.test_case "parked models conserve" `Quick
            test_parked_model_conserves;
          Alcotest.test_case "parked time appears" `Quick
            test_parked_time_appears;
          Alcotest.test_case "park_after 0 bit-identical" `Quick
            test_park_after_zero_bit_identical;
          Alcotest.test_case "wake latency knob" `Quick test_wake_latency_knob;
        ] );
      ( "determinism",
        [ Alcotest.test_case "bit-identical replay" `Quick test_determinism_full ]
      );
      ( "truncation",
        [
          Alcotest.test_case "partial ledger" `Quick
            test_truncated_ledger_is_partial_and_conserves;
          Alcotest.test_case "complete ledger" `Quick
            test_complete_ledger_not_partial;
        ] );
      ( "convoys",
        [
          Alcotest.test_case "synthetic 4-worker convoy" `Quick
            test_convoy_synthetic_exact;
          Alcotest.test_case "thresholds and filters" `Quick
            test_convoy_threshold_and_filters;
          Alcotest.test_case "counter tracks" `Quick test_convoy_counter_tracks;
          Alcotest.test_case "central queue end-to-end" `Quick
            test_convoy_end_to_end_central_queue;
          Alcotest.test_case "lock model flags, serial clean" `Quick
            test_convoy_lock_model_flags_serial_clean;
          Alcotest.test_case "detail flag" `Quick
            test_detail_flag_gates_acquisition_log;
        ] );
      ( "what-if",
        [
          Alcotest.test_case "factor 1.0 identity" `Quick
            test_apply_factor_one_is_identity;
          Alcotest.test_case "experiment shape" `Quick test_causal_run_shape;
          Alcotest.test_case "lock sensitivity ranking" `Quick
            test_lock_sensitivity_ranking_across_models;
          Alcotest.test_case "rank sorted" `Quick test_rank_sorted_and_complete;
          Alcotest.test_case "strand-work knob" `Quick test_strand_work_knob;
          Alcotest.test_case "set_work guards" `Quick test_set_work_guards;
          Alcotest.test_case "publish gauges" `Quick test_publish_sets_gauges;
        ] );
    ]
