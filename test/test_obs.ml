(* Tests for the live observability layer: metric primitives, registry
   snapshots under concurrent writers, Prometheus exposition (golden),
   the TCP endpoint while a real Nowa computation runs, and the
   background sampler. *)

module Obs = Nowa_obs

(* -- counters under concurrency ------------------------------------------ *)

let test_counter_concurrent_snapshots () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "test_ops_total" ~help:"ops" in
  let per_domain = 100_000 and domains = 4 in
  let value_of_snapshot () =
    match
      List.find_opt
        (fun (s : Obs.Registry.sample) -> s.name = "test_ops_total")
        (Obs.Registry.snapshot ~registry ())
    with
    | Some { value = Obs.Registry.Counter v; _ } -> int_of_float v
    | _ -> Alcotest.fail "counter sample missing"
  in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  (* Relaxed snapshots while the writers run: each must be within range
     and the sequence monotone (counters never go backwards). *)
  let last = ref 0 in
  for _ = 1 to 50 do
    let v = value_of_snapshot () in
    Alcotest.(check bool) "snapshot in range"
      true
      (v >= !last && v <= domains * per_domain);
    last := v
  done;
  List.iter Domain.join ds;
  (* Quiescent: the sum is exact, nothing was lost to sharding. *)
  Alcotest.(check int) "exact total after join" (domains * per_domain)
    (Obs.Counter.value c)

let test_gauge () =
  let g = Obs.Gauge.create "test_gauge" in
  Obs.Gauge.set g 42;
  Obs.Gauge.add g (-2);
  Alcotest.(check int) "set/add" 40 (Obs.Gauge.value g);
  Obs.Gauge.decr g;
  Alcotest.(check int) "decr" 39 (Obs.Gauge.value g)

let test_registry_duplicate_rejected () =
  let registry = Obs.Registry.create () in
  let _ = Obs.Registry.counter ~registry "dup" in
  match Obs.Registry.gauge ~registry "dup" with
  | _ -> Alcotest.fail "duplicate registration must raise"
  | exception Invalid_argument _ -> ()

(* -- histogram bucket boundaries ----------------------------------------- *)

let test_histogram_buckets () =
  let h = Obs.Histogram.create "test_hist" in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let s = Obs.Histogram.snapshot h in
  (* Bucket i >= 1 covers [2^(i-1), 2^i): 0 | 1 | 2-3 | 4-7 | 8-15. *)
  Alcotest.(check int) "bucket 0 (v<=0)" 1 s.Obs.Histogram.counts.(0);
  Alcotest.(check int) "bucket 1 (v=1)" 1 s.Obs.Histogram.counts.(1);
  Alcotest.(check int) "bucket 2 (2-3)" 2 s.Obs.Histogram.counts.(2);
  Alcotest.(check int) "bucket 3 (4-7)" 2 s.Obs.Histogram.counts.(3);
  Alcotest.(check int) "bucket 4 (8-15)" 1 s.Obs.Histogram.counts.(4);
  Alcotest.(check int) "count" 7 s.Obs.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 25.0 s.Obs.Histogram.sum;
  (* Inclusive upper bounds are 2^i - 1. *)
  Alcotest.(check (float 1e-9)) "le(0)" 0.0 s.Obs.Histogram.le.(0);
  Alcotest.(check (float 1e-9)) "le(3)" 7.0 s.Obs.Histogram.le.(3);
  (* Median of {0,1,2,3,4,7,8} lies in bucket 2, upper bound 3. *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 3.0
    (Obs.Histogram.percentile h 0.5);
  (* Values beyond the last bucket boundary are clamped, not dropped. *)
  Obs.Histogram.observe h max_int;
  Alcotest.(check int) "overflow clamped into last bucket" 8
    (Obs.Histogram.count h)

let test_histogram_empty_percentile () =
  let h = Obs.Histogram.create "test_empty" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Obs.Histogram.percentile h 0.99))

(* -- interpolated quantiles (golden) -------------------------------------- *)

let test_histogram_quantile_golden () =
  (* Golden sample with known exact percentiles: 1..1000, where the
     q-th percentile is q*1000.  Unlike [percentile] (nearest bucket
     upper bound, so up to 2x off), the interpolated estimator must land
     within 5% relative error even at the tails. *)
  let h = Obs.Histogram.create "test_quant" in
  for v = 1 to 1000 do
    Obs.Histogram.observe h v
  done;
  List.iter
    (fun (q, exact) ->
      let est = Obs.Histogram.quantile h q in
      let rel = Float.abs (est -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.3f: estimate %.1f within 5%% of %.0f" q est exact)
        true (rel <= 0.05))
    [ (0.10, 100.0); (0.50, 500.0); (0.90, 900.0); (0.99, 990.0); (0.999, 999.0) ];
  (* Monotone in q. *)
  Alcotest.(check bool) "p50 <= p99" true
    (Obs.Histogram.quantile h 0.5 <= Obs.Histogram.quantile h 0.99);
  Alcotest.(check bool) "p99 <= p999" true
    (Obs.Histogram.quantile h 0.99 <= Obs.Histogram.quantile h 0.999);
  (* q is clamped to [0,1]. *)
  Alcotest.(check (float 1e-9)) "q>1 clamps" (Obs.Histogram.quantile h 1.0)
    (Obs.Histogram.quantile h 1.5);
  (* Edge cases: empty is nan, all-zero sample estimates 0. *)
  let empty = Obs.Histogram.create "test_quant_empty" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.Histogram.quantile empty 0.5));
  let zeros = Obs.Histogram.create "test_quant_zeros" in
  for _ = 1 to 10 do
    Obs.Histogram.observe zeros 0
  done;
  Alcotest.(check (float 1e-9)) "all-zero sample" 0.0
    (Obs.Histogram.quantile zeros 0.99)

(* -- Prometheus exposition (golden) -------------------------------------- *)

let test_prometheus_golden () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "test_requests_total" ~help:"Total requests." in
  Obs.Counter.add c 3;
  let g = Obs.Registry.gauge ~registry "test_temp" in
  Obs.Gauge.set g 7;
  let h = Obs.Registry.histogram ~registry "test_lat" ~help:"Latency." in
  Obs.Histogram.observe h 1;
  Obs.Histogram.observe h 3;
  let expected =
    String.concat "\n"
      [
        "# HELP test_lat Latency.";
        "# TYPE test_lat histogram";
        "test_lat_bucket{le=\"0\"} 0";
        "test_lat_bucket{le=\"1\"} 1";
        "test_lat_bucket{le=\"3\"} 2";
        "test_lat_bucket{le=\"+Inf\"} 2";
        "test_lat_sum 4";
        "test_lat_count 2";
        "# HELP test_requests_total Total requests.";
        "# TYPE test_requests_total counter";
        "test_requests_total 3";
        "# TYPE test_temp gauge";
        "test_temp 7";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected
    (Obs.Expose.to_prometheus ~registry ())

(* Serve-latency exposition: the aggregate serve histogram must scrape as
   cumulative le-buckets (Prometheus histogram convention) so SLO math
   works on the raw lines.  Uses the default registry, like a real serve
   run; assertions are structural so other tests' metrics don't matter. *)
let test_serve_latency_buckets () =
  let module SM = Nowa_server.Serve_metrics in
  SM.observe Nowa_server.Workload.Read 800;
  SM.observe Nowa_server.Workload.Update 6_000;
  SM.observe Nowa_server.Workload.Read 130_000;
  SM.observe_phase 0 500;
  let body = Obs.Expose.to_prometheus () in
  let lines = String.split_on_char '\n' body in
  let prefixed p l = String.length l >= String.length p
                     && String.sub l 0 (String.length p) = p in
  let buckets =
    List.filter (prefixed "nowa_serve_latency_ns_bucket{le=\"") lines
  in
  Alcotest.(check bool) "several le-buckets emitted" true
    (List.length buckets >= 3);
  let count_of l =
    match String.rindex_opt l ' ' with
    | Some i ->
      int_of_string (String.sub l (i + 1) (String.length l - i - 1))
    | None -> Alcotest.failf "unparseable bucket line: %s" l
  in
  let counts = List.map count_of buckets in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "bucket counts cumulative" true (monotone counts);
  (* The +Inf bucket closes the series and equals the sample count. *)
  let inf =
    List.filter (prefixed "nowa_serve_latency_ns_bucket{le=\"+Inf\"}") lines
  in
  Alcotest.(check int) "one +Inf bucket" 1 (List.length inf);
  let total =
    List.find (prefixed "nowa_serve_latency_ns_count") lines |> count_of
  in
  Alcotest.(check int) "+Inf equals _count" total (count_of (List.hd inf));
  Alcotest.(check bool) "all observations counted" true (total >= 3);
  (* Per-class and per-phase series ride along on the same scrape. *)
  Alcotest.(check bool) "read class series present" true
    (List.exists (prefixed "nowa_serve_read_latency_ns_bucket{le=") lines);
  Alcotest.(check bool) "sched_wait phase series present" true
    (List.exists (prefixed "nowa_serve_phase_sched_wait_ns_bucket{le=") lines)

(* -- TCP endpoint while a computation runs ------------------------------- *)

let http_get ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write sock req 0 (Bytes.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let rec fib n =
  if n < 2 then n
  else
    Nowa.scope (fun sc ->
        let a = Nowa.spawn sc (fun () -> fib (n - 1)) in
        let b = fib (n - 2) in
        Nowa.sync sc;
        Nowa.get a + b)

let test_server_scrape_during_run () =
  match Obs.Server.start ~addr:"127.0.0.1:0" () with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Obs.Server.stop server)
      (fun () ->
        let port = Obs.Server.port server in
        (* Run a real computation on a separate domain and scrape the
           default registry while its workers are live. *)
        let runner =
          Domain.spawn (fun () ->
              let conf = Nowa.Config.with_workers 2 in
              Nowa.run ~conf (fun () -> fib 27))
        in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        let body = http_get ~port in
        Alcotest.(check bool) "HTTP 200" true
          (String.length body > 0
          && String.sub body 0 15 = "HTTP/1.0 200 OK");
        (* The engine publishes its metrics source when the run starts,
           so on a loaded box an early scrape can win that race and see
           no scheduler counters yet.  Poll while the run is live; the
           source stays published after the join, so the post-join
           scrape below is a guaranteed fallback. *)
        let rec poll tries =
          let b = http_get ~port in
          if tries = 0 || contains b "nowa_scheduler_spawns_total" then b
          else poll (tries - 1)
        in
        let during = poll 1_000 in
        let result = Domain.join runner in
        Alcotest.(check int) "computation correct" 196418 result;
        let counters =
          if contains during "nowa_scheduler_spawns_total" then during
          else http_get ~port
        in
        Alcotest.(check bool) "serves scheduler counters" true
          (contains counters "nowa_scheduler_spawns_total");
        Alcotest.(check bool) "serves sync histograms" true
          (contains counters "nowa_sync_wfc_rmw_retries_bucket");
        (* A second scrape must also succeed (server loops). *)
        let body2 = http_get ~port in
        Alcotest.(check bool) "second scrape" true
          (contains body2 "nowa_scheduler_workers"))

let test_server_malformed_addr () =
  (match Obs.Server.parse_addr "notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match Obs.Server.parse_addr "127.0.0.1:99999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range port must not parse");
  match Obs.Server.parse_addr "9090" with
  | Ok (_, 9090) -> ()
  | _ -> Alcotest.fail "bare port must parse"

(* -- sampler -------------------------------------------------------------- *)

let test_sampler_rates () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "test_ticks_total" in
  let sampler = Obs.Sampler.start ~registry ~interval_s:0.01 () in
  for _ = 1 to 10 do
    Obs.Counter.add c 100;
    Unix.sleepf 0.015
  done;
  Obs.Sampler.stop sampler;
  Alcotest.(check bool) "took several samples" true
    (Obs.Sampler.ticks sampler >= 3);
  Alcotest.(check bool) "rows retained" true
    (List.length (Obs.Sampler.samples sampler) >= 3);
  match List.assoc_opt "test_ticks_total" (Obs.Sampler.rates sampler) with
  | None -> Alcotest.fail "no rate accumulated for the counter"
  | Some w ->
    Alcotest.(check bool) "rate observations" true
      (Nowa_util.Stats.Welford.count w >= 1);
    Alcotest.(check bool) "rate positive" true
      (Nowa_util.Stats.Welford.mean w > 0.0)

let () =
  Alcotest.run "nowa_obs"
    [
      ( "counter",
        [
          Alcotest.test_case "concurrent snapshots" `Quick
            test_counter_concurrent_snapshots;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "duplicate rejected" `Quick
            test_registry_duplicate_rejected;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "empty percentile" `Quick
            test_histogram_empty_percentile;
          Alcotest.test_case "interpolated quantile golden" `Quick
            test_histogram_quantile_golden;
        ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "serve latency buckets" `Quick
            test_serve_latency_buckets;
        ] );
      ( "server",
        [
          Alcotest.test_case "scrape during run" `Quick
            test_server_scrape_during_run;
          Alcotest.test_case "malformed addr" `Quick test_server_malformed_addr;
        ] );
      ("sampler", [ Alcotest.test_case "rates" `Quick test_sampler_rates ]);
    ]
