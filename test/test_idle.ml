(* Tests for the elastic idle path: the wait-free sleeper registry in
   isolation (bit/token accounting, wake/cancel races, real cross-domain
   blocking) and the engines under the park policy — randomised spawn
   bursts with an aggressive park threshold must neither lose a wake-up
   (all results correct) nor hang (the test terminates). *)

module Sleepers = Nowa_runtime.Sleepers

(* -- registry unit tests ---------------------------------------------- *)

let test_announce_cancel () =
  let s = Sleepers.create ~workers:4 in
  Alcotest.(check int) "none asleep" 0 (Sleepers.sleepers s);
  Alcotest.(check bool) "announce" true (Sleepers.announce s ~worker:1);
  Alcotest.(check int) "one asleep" 1 (Sleepers.sleepers s);
  Alcotest.(check bool) "cancel wins" true (Sleepers.cancel s ~worker:1);
  Alcotest.(check int) "none again" 0 (Sleepers.sleepers s);
  Alcotest.(check bool) "wake finds nobody" false (Sleepers.wake_one s);
  Alcotest.(check int) "no wake transition" 0 (Sleepers.epoch s)

let test_wake_one_claims_bit_and_posts_token () =
  let s = Sleepers.create ~workers:2 in
  ignore (Sleepers.announce s ~worker:0);
  Alcotest.(check bool) "wake claims the bit" true (Sleepers.wake_one s);
  Alcotest.(check int) "mask cleared" 0 (Sleepers.sleepers s);
  Alcotest.(check int) "epoch bumped" 1 (Sleepers.epoch s);
  (* The token is already posted: park must return without blocking. *)
  Sleepers.park s ~worker:0;
  Alcotest.(check bool) "second wake finds nobody" false (Sleepers.wake_one s)

let test_cancel_after_wake_leaves_benign_token () =
  let s = Sleepers.create ~workers:2 in
  ignore (Sleepers.announce s ~worker:0);
  Alcotest.(check bool) "waker claims first" true (Sleepers.wake_one s);
  (* The worker cancels too late: the waker already took its bit.  The
     engine counts this as a lost-wakeup retry; the stray token makes the
     next park return immediately instead of blocking. *)
  Alcotest.(check bool) "cancel loses the race" false
    (Sleepers.cancel s ~worker:0);
  Sleepers.park s ~worker:0

let test_wake_all () =
  let s = Sleepers.create ~workers:8 in
  List.iter (fun w -> ignore (Sleepers.announce s ~worker:w)) [ 0; 3; 7 ];
  Alcotest.(check int) "three asleep" 3 (Sleepers.sleepers s);
  Sleepers.wake_all s;
  Alcotest.(check int) "all claimed" 0 (Sleepers.sleepers s);
  Alcotest.(check int) "one wake transition per batch" 1 (Sleepers.epoch s);
  (* Every claimed worker holds a token: none of these parks blocks. *)
  List.iter (fun w -> Sleepers.park s ~worker:w) [ 0; 3; 7 ]

let test_wake_one_round_robin () =
  (* wake_one rotates its scan start by the wake epoch: with all of a
     group parked before each wake, successive wakes must visit every
     worker rather than hammering the lowest-indexed bit (the pre-fix
     behaviour woke worker 0 every single round). *)
  let s = Sleepers.create ~workers:4 in
  let workers = [ 0; 1; 2 ] in
  let woken = Hashtbl.create 8 in
  for _ = 1 to 3 do
    List.iter (fun w -> ignore (Sleepers.announce s ~worker:w)) workers;
    let epoch_before = Sleepers.epoch s in
    Alcotest.(check bool) "wake claims someone" true (Sleepers.wake_one s);
    (* identify the woken worker: the one whose bit vanished *)
    let still = Sleepers.sleepers s in
    Alcotest.(check int) "exactly one claimed" (List.length workers - 1) still;
    List.iter
      (fun w ->
        if Sleepers.cancel s ~worker:w then () (* still masked: not woken *)
        else begin
          Hashtbl.replace woken w ();
          Sleepers.park s ~worker:w (* consume the in-flight token *)
        end)
      workers;
    Alcotest.(check int) "epoch advanced" (epoch_before + 1) (Sleepers.epoch s)
  done;
  Alcotest.(check int) "three wakes hit three distinct workers" 3
    (Hashtbl.length woken)

(* Regression (ISSUE 10 satellite): a registry wider than the mask used
   to be constructible, and [announce] silently returned [false] for
   workers >= mask_bits — those workers could never park and spun
   forever.  Both paths must now refuse loudly at construction /
   announcement instead of degrading. *)
let test_oversized_worker_cannot_park () =
  (match Sleepers.create ~workers:(Sleepers.mask_bits + 4) with
  | (_ : Sleepers.t) ->
    Alcotest.fail "create accepted more workers than the mask holds"
  | exception Invalid_argument _ -> ());
  let s = Sleepers.create ~workers:Sleepers.mask_bits in
  (match Sleepers.announce s ~worker:Sleepers.mask_bits with
  | (_ : bool) -> Alcotest.fail "announce accepted an out-of-range worker"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "nothing registered by the refusals" 0
    (Sleepers.sleepers s);
  Alcotest.(check bool) "last in-mask id works" true
    (Sleepers.announce s ~worker:(Sleepers.mask_bits - 1))

let test_park_blocks_until_wake () =
  let s = Sleepers.create ~workers:2 in
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore (Sleepers.announce s ~worker:1);
        Sleepers.park s ~worker:1;
        Atomic.set woke true)
  in
  while Sleepers.sleepers s = 0 do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "still blocked after announce" false (Atomic.get woke);
  Alcotest.(check bool) "wake" true (Sleepers.wake_one s);
  Domain.join d;
  Alcotest.(check bool) "released" true (Atomic.get woke)

(* Hammer announce/park against concurrent wake_one from another domain:
   every park must eventually be matched by exactly one wake (no lost
   wake-up, no surplus that strands the waker loop). *)
let test_park_wake_stress () =
  let s = Sleepers.create ~workers:2 in
  let rounds = 2_000 in
  let parker =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          ignore (Sleepers.announce s ~worker:0);
          Sleepers.park s ~worker:0
        done)
  in
  let wakes = ref 0 in
  while !wakes < rounds do
    if Sleepers.wake_one s then incr wakes else Domain.cpu_relax ()
  done;
  Domain.join parker;
  Alcotest.(check int) "one wake per park" rounds !wakes;
  Alcotest.(check int) "mask empty at the end" 0 (Sleepers.sleepers s)

(* -- engine-level race test ------------------------------------------- *)

(* Spawn bursts separated by serial lulls, under a park threshold of 1:
   workers park during every lull and must be woken for every burst.  A
   lost wake-up shows up as a hang (the spawner pushed work nobody
   steals and the sync never satisfies) or a wrong sum. *)
let burst_sum ~seed ~bursts =
  let total = ref 0 in
  for burst = 1 to bursts do
    let n = 1 + ((seed + burst) mod 7) in
    for i = 0 to n - 1 do
      total := !total + i + burst
    done
  done;
  !total

let run_bursts (module R : Nowa.RUNTIME) ~workers ~seed ~bursts =
  let conf =
    {
      (Nowa.Config.with_workers workers) with
      Nowa.Config.idle_policy = Nowa.Config.Park_after 1;
      steal_sweep = 1 + (seed mod 4);
      seed = seed + 1;
    }
  in
  R.run ~conf (fun () ->
      let total = ref 0 in
      for burst = 1 to bursts do
        let n = 1 + ((seed + burst) mod 7) in
        R.scope (fun sc ->
            let futs = List.init n (fun i -> R.spawn sc (fun () -> i + burst)) in
            R.sync sc;
            List.iter (fun f -> total := !total + R.get f) futs);
        (* Serial lull: everyone but this worker goes to sleep. *)
        Nowa_util.Clock.spin_ns 100_000
      done;
      !total)

let engines_under_test : (module Nowa.RUNTIME) list =
  (* One preset per engine family: continuation-stealing, child-stealing,
     central queue. *)
  [
    (module Nowa.Presets.Nowa);
    (module Nowa.Presets.Tbb);
    (module Nowa.Presets.Gomp);
  ]

let prop_no_lost_wakeup =
  let open QCheck in
  Test.make ~name:"park/wake race: spawn bursts under Park_after 1" ~count:9
    (pair (int_range 2 8) small_nat)
    (fun (workers, seed) ->
      List.for_all
        (fun (module R : Nowa.RUNTIME) ->
          let expected = burst_sum ~seed ~bursts:5 in
          run_bursts (module R) ~workers ~seed ~bursts:5 = expected)
        engines_under_test)

let () =
  Alcotest.run "nowa_idle"
    [
      ( "sleepers",
        [
          Alcotest.test_case "announce/cancel" `Quick test_announce_cancel;
          Alcotest.test_case "wake_one claims + posts" `Quick
            test_wake_one_claims_bit_and_posts_token;
          Alcotest.test_case "late cancel leaves benign token" `Quick
            test_cancel_after_wake_leaves_benign_token;
          Alcotest.test_case "wake_all" `Quick test_wake_all;
          Alcotest.test_case "wake_one round-robin" `Quick
            test_wake_one_round_robin;
          Alcotest.test_case "oversized worker refused" `Quick
            test_oversized_worker_cannot_park;
          Alcotest.test_case "park blocks until wake" `Quick
            test_park_blocks_until_wake;
          Alcotest.test_case "park/wake stress" `Slow test_park_wake_stress;
        ] );
      ("engines", [ QCheck_alcotest.to_alcotest ~long:true prop_no_lost_wakeup ]);
    ]
