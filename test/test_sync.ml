(* Tests for nowa_sync: the wait-free counter's α/ω algebra (Equations
   1-5 of the paper), the lock-based counter's count protocol, unique
   zero-observation under concurrency, spinlock mutual exclusion, SNZI,
   and the barrier. *)

open Nowa_sync

(* Battery shared by both counter implementations: drive the protocol the
   scheduler engine uses and check that exactly one participant observes
   the sync condition. *)
module Counter_battery (C : Counter_intf.JOIN_COUNTER) = struct
  let test_no_fork_sync_is_trivial () =
    let c = C.create () in
    Alcotest.(check bool) "not forked" false (C.forked c);
    Alcotest.(check int) "no pending" 0 (C.pending_hint c)

  let test_single_steal_child_first () =
    let c = C.create () in
    C.note_steal c;
    C.note_resume c;
    Alcotest.(check bool) "forked" true (C.forked c);
    Alcotest.(check bool) "child join before sync can't win" false (C.child_joined c);
    Alcotest.(check bool) "main observes the sync condition" true (C.reach_sync c);
    C.reset c

  let test_single_steal_sync_first () =
    let c = C.create () in
    C.note_steal c;
    C.note_resume c;
    Alcotest.(check bool) "sync suspends" false (C.reach_sync c);
    Alcotest.(check bool) "last child wins" true (C.child_joined c);
    C.reset c

  let test_many_steals_interleaved () =
    let c = C.create () in
    for _ = 1 to 5 do
      C.note_steal c;
      C.note_resume c
    done;
    Alcotest.(check int) "pending hint" 5 (C.pending_hint c);
    (* Two children join early. *)
    Alcotest.(check bool) "early join 1" false (C.child_joined c);
    Alcotest.(check bool) "early join 2" false (C.child_joined c);
    Alcotest.(check bool) "sync suspends (3 outstanding)" false (C.reach_sync c);
    Alcotest.(check bool) "join 3" false (C.child_joined c);
    Alcotest.(check bool) "join 4" false (C.child_joined c);
    Alcotest.(check bool) "last join resumes" true (C.child_joined c);
    C.reset c

  let test_reuse_after_reset () =
    let c = C.create () in
    C.note_steal c;
    C.note_resume c;
    Alcotest.(check bool) "phase 1 child joins" false (C.child_joined c);
    Alcotest.(check bool) "phase 1 done" true (C.reach_sync c);
    C.reset c;
    Alcotest.(check bool) "fresh phase not forked" false (C.forked c);
    C.note_steal c;
    C.note_resume c;
    Alcotest.(check bool) "phase 2 suspends" false (C.reach_sync c);
    Alcotest.(check bool) "phase 2 resumed by child" true (C.child_joined c);
    C.reset c

  (* Randomised protocol driving: for a random number of forked strands
     and a random interleaving position of the explicit sync, exactly one
     protocol step must observe the sync condition. *)
  let prop_unique_zero_observer =
    QCheck.Test.make ~name:"unique sync-condition observer" ~count:300
      QCheck.(pair (int_range 1 20) (int_range 0 20))
      (fun (forks, sync_after) ->
        let sync_after = min sync_after forks in
        let c = C.create () in
        for _ = 1 to forks do
          C.note_steal c;
          C.note_resume c
        done;
        let observations = ref 0 in
        for _ = 1 to sync_after do
          if C.child_joined c then incr observations
        done;
        if C.reach_sync c then incr observations;
        for _ = 1 to forks - sync_after do
          if C.child_joined c then incr observations
        done;
        C.reset c;
        !observations = 1)

  (* Concurrent stress: [forks] joiner domains race the main strand's
     reach_sync; exactly one party must observe the condition, and no one
     may observe it before all parties have started (the Figure 6 hazard:
     a premature zero). *)
  let test_concurrent_unique_observer () =
    for round = 1 to 50 do
      let forks = 1 + (round mod 4) in
      let c = C.create () in
      for _ = 1 to forks do
        C.note_steal c;
        C.note_resume c
      done;
      let winners = Atomic.make 0 in
      let joiners =
        List.init forks (fun _ ->
            Domain.spawn (fun () ->
                if C.child_joined c then Atomic.incr winners))
      in
      if C.reach_sync c then Atomic.incr winners;
      List.iter Domain.join joiners;
      Alcotest.(check int) "exactly one winner" 1 (Atomic.get winners);
      C.reset c
    done

  let cases name =
    [
      Alcotest.test_case (name ^ " trivial sync") `Quick test_no_fork_sync_is_trivial;
      Alcotest.test_case (name ^ " child first") `Quick test_single_steal_child_first;
      Alcotest.test_case (name ^ " sync first") `Quick test_single_steal_sync_first;
      Alcotest.test_case (name ^ " interleaved") `Quick test_many_steals_interleaved;
      Alcotest.test_case (name ^ " reuse") `Quick test_reuse_after_reset;
      QCheck_alcotest.to_alcotest prop_unique_zero_observer;
      Alcotest.test_case (name ^ " concurrent unique observer") `Slow
        test_concurrent_unique_observer;
    ]
end

module Wf_battery = Counter_battery (Wait_free_counter)
module Lk_battery = Counter_battery (Lock_counter)

(* Wait-free specifics: the Imax initialisation (Section IV-B). *)
let test_wait_free_imax () =
  Alcotest.(check int) "Imax is max_int" max_int Wait_free_counter.i_max;
  let c = Wait_free_counter.create () in
  (* ω increments during phase one never make the counter observable. *)
  Wait_free_counter.note_resume c;
  Wait_free_counter.note_resume c;
  for _ = 1 to 2 do
    Alcotest.(check bool) "huge counter shields phase 1" false
      (Wait_free_counter.child_joined c)
  done;
  (* Equation 5: N_r = N_r' − (Imax − α) = 0 here, so sync proceeds. *)
  Alcotest.(check bool) "restore yields true N_r" true
    (Wait_free_counter.reach_sync c)

(* The decomposition N_r = α − ω (Equation 1) read through active. *)
let test_wait_free_active () =
  let c = Wait_free_counter.create () in
  for _ = 1 to 3 do
    Wait_free_counter.note_resume c
  done;
  ignore (Wait_free_counter.child_joined c);
  Alcotest.(check int) "alpha - omega" 2 (Wait_free_counter.pending_hint c)

(* -- Spinlock --------------------------------------------------------- *)

let test_spinlock_mutual_exclusion () =
  let l = Spinlock.create () in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Spinlock.acquire l;
              counter := !counter + 1;
              Spinlock.release l
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 !counter;
  Alcotest.(check int) "acquisitions counted" 40_000 (Spinlock.acquisitions l)

let test_spinlock_try_acquire () =
  let l = Spinlock.create () in
  Alcotest.(check bool) "free lock acquired" true (Spinlock.try_acquire l);
  Alcotest.(check bool) "held lock refused" false (Spinlock.try_acquire l);
  Spinlock.release l;
  Alcotest.(check bool) "released lock acquired" true (Spinlock.try_acquire l)

let test_spinlock_with_lock_exn () =
  let l = Spinlock.create () in
  (try Spinlock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released after exception" true (Spinlock.try_acquire l)

(* -- SNZI ------------------------------------------------------------- *)

let test_snzi_sequential () =
  let s = Snzi.create ~leaves:4 () in
  Alcotest.(check bool) "initially zero" false (Snzi.query s);
  Snzi.arrive s ~leaf:0;
  Alcotest.(check bool) "non-zero after arrive" true (Snzi.query s);
  Snzi.arrive s ~leaf:1;
  Snzi.depart s ~leaf:0;
  Alcotest.(check bool) "still non-zero" true (Snzi.query s);
  Snzi.depart s ~leaf:1;
  Alcotest.(check bool) "zero again" false (Snzi.query s)

let prop_snzi_matches_counter =
  QCheck.Test.make ~name:"snzi tracks surplus sign" ~count:200
    QCheck.(list (int_range 0 7))
    (fun leaves ->
      let s = Snzi.create ~leaves:4 () in
      (* Arrive on each listed leaf, then depart in reverse; at every
         point query must equal surplus > 0. *)
      let ok = ref true in
      List.iteri
        (fun i leaf ->
          Snzi.arrive s ~leaf;
          if Snzi.query s <> (i + 1 > 0) then ok := false)
        leaves;
      let n = List.length leaves in
      List.iteri
        (fun i leaf ->
          Snzi.depart s ~leaf;
          if Snzi.query s <> (n - i - 1 > 0) then ok := false)
        (List.rev leaves);
      !ok)

let test_snzi_concurrent () =
  let s = Snzi.create ~leaves:8 () in
  let failures = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 2_000 do
              Snzi.arrive s ~leaf:d;
              (* While we hold a surplus the indicator must be set. *)
              if not (Snzi.query s) then Atomic.incr failures;
              Snzi.depart s ~leaf:d
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "indicator never missed a surplus" 0 (Atomic.get failures);
  Alcotest.(check bool) "zero at quiescence" false (Snzi.query s)

let test_snzi_batched_sequential () =
  let s = Snzi.create ~leaves:4 () in
  Snzi.arrive_n s ~leaf:0 0;
  Alcotest.(check bool) "arrive_n 0 is a no-op" false (Snzi.query s);
  Snzi.arrive_n s ~leaf:0 5;
  Alcotest.(check bool) "non-zero after batch" true (Snzi.query s);
  Snzi.depart_n s ~leaf:0 3;
  Alcotest.(check bool) "partial depart keeps it set" true (Snzi.query s);
  Snzi.depart_n s ~leaf:0 2;
  Alcotest.(check bool) "zero after full retire" false (Snzi.query s);
  (* A batch on an already-non-zero leaf takes the fold fast path. *)
  Snzi.arrive s ~leaf:1;
  Snzi.arrive_n s ~leaf:1 4;
  Snzi.depart_n s ~leaf:1 5;
  Alcotest.(check bool) "fold path balances" false (Snzi.query s);
  (match Snzi.arrive_n s ~leaf:0 (-1) with
  | () -> Alcotest.fail "negative arrive_n must be rejected"
  | exception Invalid_argument _ -> ());
  (match Snzi.depart_n s ~leaf:0 2 with
  | () -> Alcotest.fail "depart_n past the surplus must be rejected"
  | exception Invalid_argument _ -> ())

let test_snzi_batched_concurrent () =
  let s = Snzi.create ~leaves:8 () in
  let failures = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1_000 do
              let n = 1 + (i mod 7) in
              Snzi.arrive_n s ~leaf:d n;
              if not (Snzi.query s) then Atomic.incr failures;
              (* Retire in two slices to cross the partial-depart path. *)
              let k = n / 2 in
              Snzi.depart_n s ~leaf:d k;
              if not (Snzi.query s) then Atomic.incr failures;
              Snzi.depart_n s ~leaf:d (n - k)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "indicator never missed a surplus" 0
    (Atomic.get failures);
  Alcotest.(check bool) "zero at quiescence" false (Snzi.query s)

let test_snzi_unbalanced_depart_rejected () =
  let s = Snzi.create ~leaves:2 () in
  (match Snzi.depart s ~leaf:0 with
  | () -> Alcotest.fail "depart with zero surplus must be rejected"
  | exception Invalid_argument _ -> ());
  (* the structure is still usable: the failed depart mutated nothing *)
  Snzi.arrive s ~leaf:0;
  Alcotest.(check bool) "still consistent after rejection" true (Snzi.query s);
  Snzi.depart s ~leaf:0;
  Alcotest.(check bool) "back to zero" false (Snzi.query s)

(* -- Barrier ---------------------------------------------------------- *)

let test_barrier_rounds () =
  let n = 4 in
  let b = Barrier.create n in
  let counter = Atomic.make 0 in
  let domains =
    List.init (n - 1) (fun _ ->
        Domain.spawn (fun () ->
            for round = 1 to 5 do
              Atomic.incr counter;
              Barrier.await b;
              (* After the barrier, every participant of this round has
                 incremented. *)
              if Atomic.get counter < round * n then
                Alcotest.failf "barrier let a laggard through";
              Barrier.await b
            done))
  in
  for round = 1 to 5 do
    Atomic.incr counter;
    Barrier.await b;
    Alcotest.(check bool) "all arrived" true (Atomic.get counter >= round * n);
    Barrier.await b
  done;
  List.iter Domain.join domains

let test_barrier_rapid_reentry () =
  (* The hazard the arrivals-epoch form removes: a participant that
     re-enters the next round immediately, with no work between rounds,
     repeatedly lands in what used to be the leader's count-reset /
     sense-flip window.  1000 tight rounds across 2 domains must neither
     deadlock nor let anyone skip ahead. *)
  let b = Barrier.create 2 in
  let rounds = 1_000 in
  let a_count = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          Atomic.incr a_count;
          Barrier.await b
        done)
  in
  for r = 1 to rounds do
    Barrier.await b;
    if Atomic.get a_count < r then Alcotest.failf "round %d not paired" r
  done;
  Domain.join d;
  Alcotest.(check int) "all rounds paired" rounds (Atomic.get a_count)

let test_barrier_single_participant () =
  let b = Barrier.create 1 in
  (* n = 1: every await is its own round and must never block *)
  for _ = 1 to 100 do
    Barrier.await b
  done

let () =
  Alcotest.run "nowa_sync"
    [
      ("wait-free counter", Wf_battery.cases "wf");
      ( "wait-free specifics",
        [
          Alcotest.test_case "Imax shielding" `Quick test_wait_free_imax;
          Alcotest.test_case "alpha/omega decomposition" `Quick test_wait_free_active;
        ] );
      ("lock counter", Lk_battery.cases "lk");
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Slow test_spinlock_mutual_exclusion;
          Alcotest.test_case "try_acquire" `Quick test_spinlock_try_acquire;
          Alcotest.test_case "with_lock releases on exn" `Quick test_spinlock_with_lock_exn;
        ] );
      ( "snzi",
        [
          Alcotest.test_case "sequential" `Quick test_snzi_sequential;
          QCheck_alcotest.to_alcotest prop_snzi_matches_counter;
          Alcotest.test_case "concurrent" `Slow test_snzi_concurrent;
          Alcotest.test_case "batched sequential" `Quick
            test_snzi_batched_sequential;
          Alcotest.test_case "batched concurrent" `Slow
            test_snzi_batched_concurrent;
          Alcotest.test_case "unbalanced depart rejected" `Quick
            test_snzi_unbalanced_depart_rejected;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "rounds" `Slow test_barrier_rounds;
          Alcotest.test_case "rapid re-entry" `Slow test_barrier_rapid_reentry;
          Alcotest.test_case "single participant" `Quick
            test_barrier_single_participant;
        ] );
    ]
