(* Tests for the scheduler engines behind every preset: correctness of
   spawn/sync across worker counts, exception propagation, fully-strict
   semantics, the stack-pool substrate, metrics, the serial elision, and
   the public Nowa façade helpers. *)

let presets : (module Nowa.RUNTIME) list = Nowa.Presets.all
let serial : (module Nowa.RUNTIME) = (module Nowa_runtime.Serial_runtime)

let rec fib_ref n = if n < 2 then n else fib_ref (n - 1) + fib_ref (n - 2)

let conf workers = Nowa.Config.with_workers workers

(* -- correctness across presets and worker counts --------------------- *)

let test_fib_all_presets () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      List.iter
        (fun w ->
          let rec fib n =
            if n < 2 then n
            else
              R.scope (fun sc ->
                  let a = R.spawn sc (fun () -> fib (n - 1)) in
                  let b = fib (n - 2) in
                  R.sync sc;
                  R.get a + b)
          in
          let r = R.run ~conf:(conf w) (fun () -> fib 18) in
          Alcotest.(check int) (Printf.sprintf "%s w=%d" R.name w) (fib_ref 18) r)
        [ 1; 2; 4 ])
    (serial :: presets)

let test_multiple_syncs_per_scope () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let r =
        R.run ~conf:(conf 3) (fun () ->
            R.scope (fun sc ->
                let a = R.spawn sc (fun () -> 1) in
                R.sync sc;
                let va = R.get a in
                (* Second spawn phase in the same frame. *)
                let b = R.spawn sc (fun () -> va + 10) in
                R.sync sc;
                let vb = R.get b in
                let c = R.spawn sc (fun () -> vb + 100) in
                R.sync sc;
                R.get c))
      in
      Alcotest.(check int) (R.name ^ " phased scope") 111 r)
    (serial :: presets)

let test_deep_sequential_spawns () =
  (* Many spawns in a single frame (stresses deque growth). *)
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let n = 2_000 in
      let r =
        R.run ~conf:(conf 2) (fun () ->
            R.scope (fun sc ->
                let ps = List.init n (fun i -> R.spawn sc (fun () -> i)) in
                R.sync sc;
                List.fold_left (fun acc p -> acc + R.get p) 0 ps))
      in
      Alcotest.(check int) (R.name ^ " wide frame") (n * (n - 1) / 2) r)
    presets

let test_nested_scopes () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let r =
        R.run ~conf:(conf 3) (fun () ->
            R.scope (fun outer ->
                let x =
                  R.spawn outer (fun () ->
                      R.scope (fun inner ->
                          let a = R.spawn inner (fun () -> 3) in
                          let b = 4 in
                          R.sync inner;
                          R.get a * b))
                in
                let y = 5 in
                R.sync outer;
                R.get x + y))
      in
      Alcotest.(check int) (R.name ^ " nested") 17 r)
    presets

let test_scope_implicit_sync () =
  (* No explicit sync: scope exit must join the children. *)
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let cell = ref 0 in
      let () =
        R.run ~conf:(conf 4) (fun () ->
            R.scope (fun sc ->
                for i = 1 to 64 do
                  ignore (R.spawn sc (fun () -> ignore i))
                done;
                ignore (R.spawn sc (fun () -> cell := 42))))
      in
      Alcotest.(check int) (R.name ^ " joined at scope exit") 42 !cell)
    presets

let test_run_return_value_types () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      Alcotest.(check string) (R.name ^ " string result") "hello"
        (R.run ~conf:(conf 2) (fun () -> "hello"));
      Alcotest.(check (list int)) (R.name ^ " list result") [ 1; 2 ]
        (R.run ~conf:(conf 2) (fun () -> [ 1; 2 ])))
    presets

(* Random fork/join computation trees, evaluated on a runtime and
   compared against direct evaluation.  [Node (v, children)] contributes
   [v] plus the spawned children's sums; interleaving of spawns and
   sequential recursion is driven by the child index parity. *)
type tree = Node of int * tree list

let rec tree_gen depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun v -> Node (v, [])) small_int
  else
    map2
      (fun v kids -> Node (v, kids))
      small_int
      (list_size (int_bound 3) (tree_gen (depth - 1)))

let rec eval_direct (Node (v, kids)) =
  List.fold_left (fun acc k -> acc + eval_direct k) v kids

let eval_on (module R : Nowa.RUNTIME) tree =
  let rec go (Node (v, kids)) =
    if kids = [] then v
    else
      R.scope (fun sc ->
          let promises =
            List.mapi
              (fun i k ->
                if i mod 2 = 0 then Either.Left (R.spawn sc (fun () -> go k))
                else Either.Right (go k))
              kids
          in
          R.sync sc;
          List.fold_left
            (fun acc p ->
              acc + match p with Either.Left p -> R.get p | Either.Right v -> v)
            v promises)
  in
  R.run ~conf:(conf 3) (fun () -> go tree)

let prop_random_trees (module R : Nowa.RUNTIME) =
  QCheck.Test.make
    ~name:(Printf.sprintf "random fork/join trees on %s" R.name)
    ~count:30
    (QCheck.make (tree_gen 4))
    (fun tree -> eval_on (module R) tree = eval_direct tree)

(* -- exceptions -------------------------------------------------------- *)

exception Boom of int

let test_exception_from_main () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      Alcotest.check_raises (R.name ^ " main exn") (Boom 1) (fun () ->
          R.run ~conf:(conf 2) (fun () -> raise (Boom 1))))
    (serial :: presets)

let test_exception_from_child () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let result =
        try
          R.run ~conf:(conf 2) (fun () ->
              R.scope (fun sc ->
                  let _p = R.spawn sc (fun () -> raise (Boom 2)) in
                  R.sync sc;
                  0))
        with Boom 2 -> 99
      in
      Alcotest.(check int) (R.name ^ " child exn surfaces at sync") 99 result)
    presets

let test_exception_via_get () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let result =
        try
          R.run ~conf:(conf 2) (fun () ->
              R.scope (fun sc ->
                  let p = R.spawn sc (fun () -> if true then raise (Boom 3) else 0) in
                  (try R.sync sc with Boom 3 -> ());
                  R.get p))
        with Boom 3 -> 77
      in
      Alcotest.(check int) (R.name ^ " get re-raises") 77 result)
    presets

let test_sibling_survives_child_exception () =
  (* Fully strict: other children still complete and are joined. *)
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let done_flag = ref false in
      let result =
        try
          R.run ~conf:(conf 2) (fun () ->
              R.scope (fun sc ->
                  ignore (R.spawn sc (fun () -> raise (Boom 4)));
                  ignore (R.spawn sc (fun () -> done_flag := true));
                  R.sync sc;
                  0))
        with Boom 4 -> 1
      in
      Alcotest.(check int) (R.name ^ " exn propagated") 1 result;
      Alcotest.(check bool) (R.name ^ " sibling ran") true !done_flag)
    presets

let test_pending_get_rejected () =
  (* With a single worker, a child-stealing task can't have run before
     the parent reads the promise: the read must be rejected. *)
  let module R = Nowa.Presets.Tbb in
  let saw_invalid =
    try
      R.run ~conf:(conf 1) (fun () ->
          R.scope (fun sc ->
              let p = R.spawn sc (fun () -> 1) in
              ignore (R.get p);
              false))
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "pending get raises" true saw_invalid

(* Deterministically exercise the steal → implicit-sync → suspend →
   resume path: the child blocks until the continuation (which can only
   run in parallel if a thief stole it) sets a flag.  The sync then
   suspends until the child joins and resumes it. *)
let test_forced_steal_roundtrip () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let result =
        R.run ~conf:(conf 2) (fun () ->
            R.scope (fun sc ->
                let continuation_ran = Atomic.make false in
                let child =
                  R.spawn sc (fun () ->
                      let deadline = Unix.gettimeofday () +. 20.0 in
                      while
                        (not (Atomic.get continuation_ran))
                        && Unix.gettimeofday () < deadline
                      do
                        Unix.sleepf 1e-4
                      done;
                      Atomic.get continuation_ran)
                in
                (* This code is the continuation after the spawn: it can
                   only execute while the child runs if it was stolen. *)
                Atomic.set continuation_ran true;
                R.sync sc;
                R.get child))
      in
      Alcotest.(check bool)
        (R.name ^ " continuation stolen and ran in parallel")
        true result;
      match R.last_metrics () with
      | Some m ->
        Alcotest.(check bool) (R.name ^ " recorded a steal") true
          (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals) >= 1)
      | None -> ())
    [
      (module Nowa.Presets.Nowa : Nowa.RUNTIME);
      (module Nowa.Presets.Nowa_the);
      (module Nowa.Presets.Fibril);
      (module Nowa.Presets.Cilk_plus);
    ]

(* -- guard ------------------------------------------------------------- *)

let test_no_nested_runs () =
  let module R = Nowa.Presets.Nowa in
  let saw_failure =
    try
      R.run ~conf:(conf 1) (fun () -> R.run ~conf:(conf 1) (fun () -> ()) |> fun () -> false)
    with Failure _ -> true
  in
  Alcotest.(check bool) "nested run rejected" true saw_failure;
  (* The guard must have been released: a fresh run works. *)
  Alcotest.(check int) "guard released" 5 (R.run ~conf:(conf 1) (fun () -> 5))

let test_api_outside_run () =
  let module R = Nowa.Presets.Nowa in
  let saw =
    try
      ignore (R.scope (fun _ -> 0));
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "scope outside run rejected" true saw

(* -- metrics ------------------------------------------------------------ *)

let test_metrics_spawn_counts () =
  let module R = Nowa.Presets.Nowa in
  let n = 16 in
  let rec fib sc_n =
    if sc_n < 2 then sc_n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (sc_n - 1)) in
          let b = fib (sc_n - 2) in
          R.sync sc;
          R.get a + b)
  in
  ignore (R.run ~conf:(conf 1) (fun () -> fib n));
  match R.last_metrics () with
  | None -> Alcotest.fail "metrics missing"
  | Some m ->
    Alcotest.(check int) "spawns counted exactly"
      (Nowa_kernels.Fib.spawn_count n)
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.spawns));
    Alcotest.(check int) "no steals on one worker" 0
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals));
    Alcotest.(check bool) "elapsed recorded" true (m.Nowa.Metrics.elapsed_s >= 0.0)

let test_metrics_steals_with_workers () =
  let module R = Nowa.Presets.Nowa in
  let rec fib sc_n =
    if sc_n < 2 then sc_n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (sc_n - 1)) in
          let b = fib (sc_n - 2) in
          R.sync sc;
          R.get a + b)
  in
  ignore (R.run ~conf:(conf 4) (fun () -> fib 22));
  match R.last_metrics () with
  | None -> Alcotest.fail "metrics missing"
  | Some m ->
    (* Lost continuations correspond one-to-one to committed steals. *)
    Alcotest.(check int) "steals = lost continuations"
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals))
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.lost_continuations))

(* -- fusion audit (ISSUE 9) ---------------------------------------------- *)

(* The paper's no-steal invariant: on a single worker nothing is ever
   stolen, so the steal-free path must never take the lost-continuation
   branch, never publish a sync continuation (no suspension), and never
   touch the resume exchange.  The trace-derived counters prove it for
   every continuation-stealing instantiation — both counter families and
   all four deques. *)
let test_no_steal_invariant_single_worker () =
  let engines =
    [
      (module Nowa.Presets.Nowa : Nowa.RUNTIME);
      (module Nowa.Presets.Nowa_the);
      (module Nowa.Presets.Nowa_abp);
      (module Nowa.Presets.Fibril);
      (module Nowa.Presets.Cilk_plus);
    ]
  in
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let rec fib n =
        if n < 2 then n
        else
          R.scope (fun sc ->
              let a = R.spawn sc (fun () -> fib (n - 1)) in
              let b = fib (n - 2) in
              R.sync sc;
              R.get a + b)
      in
      let r = R.run ~conf:(conf 1) (fun () -> fib 18) in
      Alcotest.(check int) (R.name ^ " result") (fib_ref 18) r;
      match R.last_metrics () with
      | None -> Alcotest.fail "metrics missing"
      | Some m ->
        let total f = Nowa.Metrics.total m f in
        Alcotest.(check int)
          (R.name ^ " no lost continuations")
          0
          (total (fun w -> w.Nowa.Metrics.lost_continuations));
        Alcotest.(check int)
          (R.name ^ " no suspensions")
          0
          (total (fun w -> w.Nowa.Metrics.suspensions));
        Alcotest.(check int)
          (R.name ^ " no resumes")
          0
          (total (fun w -> w.Nowa.Metrics.resumes));
        Alcotest.(check int)
          (R.name ^ " no steals")
          0
          (total (fun w -> w.Nowa.Metrics.steals));
        (* Never-forked frames take the cheap fast-sync branch; the fused
           post-steal branch cannot trigger without a steal. *)
        Alcotest.(check int)
          (R.name ^ " no fused syncs without steals")
          0
          (total (fun w -> w.Nowa.Metrics.fused_syncs));
        Alcotest.(check bool)
          (R.name ^ " fast syncs taken")
          true
          (total (fun w -> w.Nowa.Metrics.fast_syncs) > 0))
    engines;
  (* The child-stealing and central engines never lose continuations by
     construction (they do not steal continuations at all); their sync
     legitimately helps/suspends, so only the lost-continuation half of
     the invariant applies to those families. *)
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let rec fib n =
        if n < 2 then n
        else
          R.scope (fun sc ->
              let a = R.spawn sc (fun () -> fib (n - 1)) in
              let b = fib (n - 2) in
              R.sync sc;
              R.get a + b)
      in
      ignore (R.run ~conf:(conf 1) (fun () -> fib 14));
      match R.last_metrics () with
      | None -> Alcotest.fail "metrics missing"
      | Some m ->
        Alcotest.(check int)
          (R.name ^ " no lost continuations")
          0
          (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.lost_continuations)))
    [
      (module Nowa.Presets.Tbb : Nowa.RUNTIME);
      (module Nowa.Presets.Lomp_untied);
      (module Nowa.Presets.Lomp_tied);
      (module Nowa.Presets.Gomp);
    ]

(* Explicit-sync conservation: every explicit sync resolves through
   exactly one of the three branches — never-forked fast, forked-but-
   joined fused, or published-then-resumed.  The fib shape calls sync
   twice per scope (once in the kernel, once at scope exit), so the
   totals must tie out exactly, on any schedule and worker count. *)
let test_fused_sync_conservation () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      List.iter
        (fun workers ->
          let rec fib n =
            if n < 2 then n
            else
              R.scope (fun sc ->
                  let a = R.spawn sc (fun () -> fib (n - 1)) in
                  let b = fib (n - 2) in
                  R.sync sc;
                  R.get a + b)
          in
          ignore (R.run ~conf:(conf workers) (fun () -> fib 20));
          match R.last_metrics () with
          | None -> Alcotest.fail "metrics missing"
          | Some m ->
            let total f = Nowa.Metrics.total m f in
            let spawns = total (fun w -> w.Nowa.Metrics.spawns) in
            let fast = total (fun w -> w.Nowa.Metrics.fast_syncs) in
            let fused = total (fun w -> w.Nowa.Metrics.fused_syncs) in
            let resumes = total (fun w -> w.Nowa.Metrics.resumes) in
            Alcotest.(check int)
              (Printf.sprintf "%s w=%d: fast+fused+resumes = 2*spawns"
                 R.name workers)
              (2 * spawns)
              (fast + fused + resumes))
        [ 1; 2; 4 ])
    [
      (module Nowa.Presets.Nowa : Nowa.RUNTIME);
      (module Nowa.Presets.Nowa_the);
      (module Nowa.Presets.Fibril);
      (module Nowa.Presets.Cilk_plus);
    ]

(* A steal forces the frame's explicit sync onto one of the forked
   branches: after the forced-steal roundtrip the run must show at least
   one fused or resumed sync. *)
let test_forced_steal_syncs_accounted () =
  let module R = Nowa.Presets.Nowa in
  let result =
    R.run ~conf:(conf 2) (fun () ->
        R.scope (fun sc ->
            let continuation_ran = Atomic.make false in
            let child =
              R.spawn sc (fun () ->
                  let deadline = Unix.gettimeofday () +. 20.0 in
                  while
                    (not (Atomic.get continuation_ran))
                    && Unix.gettimeofday () < deadline
                  do
                    Unix.sleepf 1e-4
                  done;
                  Atomic.get continuation_ran)
            in
            Atomic.set continuation_ran true;
            R.sync sc;
            R.get child))
  in
  Alcotest.(check bool) "steal forced" true result;
  match R.last_metrics () with
  | None -> Alcotest.fail "metrics missing"
  | Some m ->
    let total f = Nowa.Metrics.total m f in
    Alcotest.(check bool) "forked sync took fused or resume branch" true
      (total (fun w -> w.Nowa.Metrics.fused_syncs)
       + total (fun w -> w.Nowa.Metrics.resumes)
       >= 1)

(* -- idle policies -------------------------------------------------------- *)

(* Every engine, every idle policy: same fib answer.  The park policy's
   threshold is aggressive so workers really do park mid-run. *)
let test_idle_policies_all_presets () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      List.iter
        (fun (pname, policy) ->
          let conf = { (conf 4) with Nowa.Config.idle_policy = policy } in
          let rec fib n =
            if n < 2 then n
            else
              R.scope (fun sc ->
                  let a = R.spawn sc (fun () -> fib (n - 1)) in
                  let b = fib (n - 2) in
                  R.sync sc;
                  R.get a + b)
          in
          let r = R.run ~conf (fun () -> fib 16) in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" R.name pname)
            (fib_ref 16) r)
        [
          ("spin", Nowa.Config.Spin);
          ("yield", Nowa.Config.Yield_after 2);
          ("park", Nowa.Config.Park_after 2);
        ])
    presets

(* Shutdown regression: a run whose workers are all parked when the root
   finishes must still terminate (wake_all on the finished flag), and
   repeatedly so.  A lost shutdown wake-up hangs this test. *)
let test_shutdown_wakes_parked_workers () =
  let module R = Nowa.Presets.Nowa in
  let conf =
    { (conf 4) with Nowa.Config.idle_policy = Nowa.Config.Park_after 1 }
  in
  (* Serial body: the three non-root workers find nothing, park, and
     stay parked until teardown.  Every round proves shutdown is
     hang-free; on a loaded host a short round can finish before the
     other domains get CPU at all, so keep going until parking was
     actually observed (bounded — 50 rounds is far past any scheduler
     stall seen in practice). *)
  let parks () =
    match R.last_metrics () with
    | None -> Alcotest.fail "metrics missing"
    | Some m -> Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.parks)
  in
  let rec go round =
    let r =
      R.run ~conf (fun () ->
          Nowa_util.Clock.spin_ns 2_000_000;
          round)
    in
    Alcotest.(check int) "run returned" round r;
    if parks () = 0 && round < 50 then go (round + 1)
  in
  go 1;
  Alcotest.(check bool) "workers actually parked" true (parks () > 0)

(* Parking accounting: a serial-heavy run under the park policy records
   parks and parked time; the same run under spin records none. *)
let test_park_metrics () =
  let module R = Nowa.Presets.Nowa in
  let run policy =
    let conf = { (conf 4) with Nowa.Config.idle_policy = policy } in
    ignore (R.run ~conf (fun () -> Nowa_util.Clock.spin_ns 5_000_000));
    match R.last_metrics () with
    | None -> Alcotest.fail "metrics missing"
    | Some m ->
      ( Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.parks),
        Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.parked_ns) )
  in
  (* On a loaded host a round can finish before the idle workers get any
     CPU; retry until parking was observed (same bound as the shutdown
     test above). *)
  let rec run_park tries =
    let parks, parked_ns = run (Nowa.Config.Park_after 2) in
    if parks = 0 && tries > 1 then run_park (tries - 1) else (parks, parked_ns)
  in
  let parks, parked_ns = run_park 50 in
  Alcotest.(check bool) "parked at least once" true (parks > 0);
  Alcotest.(check bool) "parked time recorded" true (parked_ns > 0);
  let parks, parked_ns = run Nowa.Config.Spin in
  Alcotest.(check int) "spin never parks" 0 parks;
  Alcotest.(check int) "spin never blocks" 0 parked_ns

(* -- stack pool ---------------------------------------------------------- *)

let test_stack_pool_reuse () =
  let conf = { (Nowa.Config.with_workers 2) with Nowa.Config.local_stack_cache = 2 } in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s1 = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.release pool ~worker:0 s1;
  let s2 = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Alcotest.(check int) "cached stack reused" s1.Nowa_runtime.Stack_pool.stack_id
    s2.Nowa_runtime.Stack_pool.stack_id;
  Alcotest.(check int) "one live stack" 1 (Nowa_runtime.Stack_pool.live_stacks pool)

let test_stack_pool_rss_watermark () =
  let conf = Nowa.Config.with_workers 1 in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.touch s ~pages:9 ~max_pages:256;
  Nowa_runtime.Stack_pool.sync_rss pool s;
  Alcotest.(check int) "rss counts touched pages" 10
    (Nowa_runtime.Stack_pool.current_rss_pages pool);
  Alcotest.(check int) "watermark follows" 10
    (Nowa_runtime.Stack_pool.max_rss_pages pool);
  Alcotest.(check int) "touch clamps at stack size" 256
    (let s2 = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
     Nowa_runtime.Stack_pool.touch s2 ~pages:500 ~max_pages:256;
     s2.Nowa_runtime.Stack_pool.resident)

let test_stack_pool_madvise () =
  let conf =
    { (Nowa.Config.with_workers 1) with Nowa.Config.madvise = true; madvise_cost_ns = 0 }
  in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.touch s ~pages:31 ~max_pages:256;
  Nowa_runtime.Stack_pool.suspend pool s;
  Alcotest.(check int) "pages returned on suspension" 1
    s.Nowa_runtime.Stack_pool.resident;
  Alcotest.(check int) "one madvise call" 1 (Nowa_runtime.Stack_pool.madvise_calls pool);
  Alcotest.(check int) "rss dropped back" 1
    (Nowa_runtime.Stack_pool.current_rss_pages pool);
  Alcotest.(check int) "watermark keeps the peak" 32
    (Nowa_runtime.Stack_pool.max_rss_pages pool)

let test_stack_pool_madvise_dontneed_refaults () =
  let conf =
    {
      (Nowa.Config.with_workers 1) with
      Nowa.Config.madvise = true;
      madvise_cost_ns = 0;
      madvise_mode = Nowa.Config.Madv_dontneed;
      refault_ns = 0;
    }
  in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.touch s ~pages:10 ~max_pages:256;
  Nowa_runtime.Stack_pool.release pool ~worker:0 s;
  Alcotest.(check bool) "stack marked shrunk" true s.Nowa_runtime.Stack_pool.shrunk;
  let s' = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Alcotest.(check int) "same stack" s.Nowa_runtime.Stack_pool.stack_id
    s'.Nowa_runtime.Stack_pool.stack_id;
  Alcotest.(check int) "refault recorded" 1
    (Nowa_runtime.Stack_pool.refault_count pool);
  Alcotest.(check bool) "shrunk cleared" false s'.Nowa_runtime.Stack_pool.shrunk

let test_stack_pool_madv_free_no_refault () =
  let conf =
    {
      (Nowa.Config.with_workers 1) with
      Nowa.Config.madvise = true;
      madvise_cost_ns = 0;
      madvise_mode = Nowa.Config.Madv_free;
    }
  in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.touch s ~pages:10 ~max_pages:256;
  Nowa_runtime.Stack_pool.release pool ~worker:0 s;
  ignore (Nowa_runtime.Stack_pool.acquire pool ~worker:0);
  Alcotest.(check int) "lazy freeing never refaults" 0
    (Nowa_runtime.Stack_pool.refault_count pool)

let test_round_robin_victims () =
  let module R = Nowa.Presets.Nowa in
  let conf =
    { (Nowa.Config.with_workers 4) with Nowa.Config.victim_policy = Nowa.Config.Round_robin }
  in
  let rec fib n =
    if n < 2 then n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          R.sync sc;
          R.get a + b)
  in
  Alcotest.(check int) "correct under round-robin stealing" (fib_ref 20)
    (R.run ~conf (fun () -> fib 20))

let test_stack_pool_no_madvise_keeps_pages () =
  let conf = { (Nowa.Config.with_workers 1) with Nowa.Config.madvise = false } in
  let pool = Nowa_runtime.Stack_pool.create conf in
  let s = Nowa_runtime.Stack_pool.acquire pool ~worker:0 in
  Nowa_runtime.Stack_pool.touch s ~pages:31 ~max_pages:256;
  Nowa_runtime.Stack_pool.suspend pool s;
  Alcotest.(check int) "pages stay resident" 32 s.Nowa_runtime.Stack_pool.resident;
  Alcotest.(check int) "no madvise calls" 0 (Nowa_runtime.Stack_pool.madvise_calls pool)

let test_engine_populates_stack_metrics () =
  let module R = Nowa.Presets.Nowa in
  let rec fib sc_n =
    if sc_n < 2 then sc_n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (sc_n - 1)) in
          let b = fib (sc_n - 2) in
          R.sync sc;
          R.get a + b)
  in
  ignore (R.run ~conf:(conf 3) (fun () -> fib 20));
  match R.last_metrics () with
  | None -> Alcotest.fail "metrics missing"
  | Some m ->
    Alcotest.(check bool) "every worker acquired a stack" true
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.stack_acquires) >= 1)

(* -- madvise config plumbed through a real run --------------------------- *)

let test_run_with_madvise () =
  let module R = Nowa.Presets.Nowa in
  let conf =
    { (Nowa.Config.with_workers 4) with Nowa.Config.madvise = true; madvise_cost_ns = 100 }
  in
  let rec fib sc_n =
    if sc_n < 2 then sc_n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (sc_n - 1)) in
          let b = fib (sc_n - 2) in
          R.sync sc;
          R.get a + b)
  in
  Alcotest.(check int) "correct result with madvise on" (fib_ref 20)
    (R.run ~conf (fun () -> fib 20))

(* -- serial elision ------------------------------------------------------- *)

let test_serial_inline_semantics () =
  let module S = Nowa_runtime.Serial_runtime in
  let order = ref [] in
  let () =
    S.run (fun () ->
        S.scope (fun sc ->
            order := 1 :: !order;
            let _ = S.spawn sc (fun () -> order := 2 :: !order) in
            order := 3 :: !order;
            S.sync sc))
  in
  Alcotest.(check (list int)) "spawn = call in program order" [ 3; 2; 1 ] !order

(* -- façade helpers -------------------------------------------------------- *)

let test_parallel_for () =
  let hits = Array.make 1000 0 in
  Nowa.run ~conf:(conf 4) (fun () ->
      Nowa.parallel_for ~grain:16 0 1000 (fun i -> hits.(i) <- hits.(i) + 1));
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c)
    hits

let test_parallel_for_empty_and_tiny () =
  Nowa.run ~conf:(conf 2) (fun () ->
      Nowa.parallel_for 5 5 (fun _ -> Alcotest.fail "empty range must not call");
      let hit = ref false in
      Nowa.parallel_for 7 8 (fun i ->
          Alcotest.(check int) "single index" 7 i;
          hit := true);
      Alcotest.(check bool) "hit" true !hit)

let test_parallel_reduce () =
  let total =
    Nowa.run ~conf:(conf 4) (fun () ->
        Nowa.parallel_reduce ~grain:32 0 10_000 ~map:(fun i -> i) ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "sum" (10_000 * 9_999 / 2) total

let test_map_array () =
  let input = Array.init 500 (fun i -> i) in
  let out = Nowa.run ~conf:(conf 3) (fun () -> Nowa.map_array ~grain:8 (fun x -> x * x) input) in
  Array.iteri
    (fun i v -> if v <> i * i then Alcotest.failf "map_array wrong at %d" i)
    out

let test_both () =
  let a, b = Nowa.run ~conf:(conf 2) (fun () -> Nowa.both (fun () -> 6) (fun () -> 7)) in
  Alcotest.(check int) "left" 6 a;
  Alcotest.(check int) "right" 7 b

let test_ops_functor_on_baseline () =
  let module Ops = Nowa.Ops (Nowa.Presets.Fibril) in
  let module R = Nowa.Presets.Fibril in
  let total =
    R.run ~conf:(conf 3) (fun () ->
        Ops.parallel_reduce ~grain:10 0 1_000 ~map:(fun i -> i) ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "reduce on fibril" (1_000 * 999 / 2) total

(* -- preset registry -------------------------------------------------------- *)

let test_presets_find () =
  List.iter
    (fun name ->
      let (module R : Nowa.RUNTIME) = Nowa.Presets.find name in
      Alcotest.(check string) "found the right preset" name R.name)
    [ "nowa"; "nowa-the"; "nowa-abp"; "fibril"; "cilkplus"; "tbb"; "lomp-untied"; "lomp-tied"; "gomp" ];
  Alcotest.check_raises "unknown preset" Not_found (fun () ->
      ignore (Nowa.Presets.find "no-such-runtime"))

let test_preset_sets () =
  Alcotest.(check int) "figure 7 set" 4 (List.length Nowa.Presets.figure7_set);
  Alcotest.(check int) "figure 10 set" 5 (List.length Nowa.Presets.figure10_set)

(* -- micropools (ISSUE 10) -------------------------------------------- *)

let pools_conf ?(spill = false) pools =
  { (Nowa.Config.default ()) with Nowa.Config.pools; spill_over = spill }

let two_pools ?spill () =
  pools_conf ?spill
    [ Nowa.Config.pool "main" ~workers:2; Nowa.Config.pool "aux" ~workers:2 ]

let test_pool_lookup () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      R.run ~conf:(two_pools ()) (fun () ->
          Alcotest.(check string) (R.name ^ ": root runs in first pool") "main"
            (R.self_pool ());
          Alcotest.(check string) (R.name ^ ": aux resolves") "aux"
            (R.pool_name (R.pool "aux"));
          (match R.find_pool "nope" with
          | None -> ()
          | Some _ -> Alcotest.failf "%s: phantom pool resolved" R.name);
          match R.pool "nope" with
          | (_ : R.pool) -> Alcotest.failf "%s: pool did not raise" R.name
          | exception Invalid_argument _ -> ()))
    presets

let test_bad_topology_rejected () =
  let module R = Nowa.Presets.Nowa in
  let rejects what pools =
    match R.run ~conf:(pools_conf pools) (fun () -> ()) with
    | () -> Alcotest.failf "accepted %s" what
    | exception Invalid_argument _ -> ()
  in
  rejects "an oversized pool"
    [ Nowa.Config.pool "huge" ~workers:(Nowa_runtime.Sleepers.mask_bits + 1) ];
  rejects "a zero-worker pool" [ Nowa.Config.pool "empty" ~workers:0 ];
  rejects "duplicate pool names"
    [ Nowa.Config.pool "dup" ~workers:1; Nowa.Config.pool "dup" ~workers:1 ];
  rejects "a nameless pool" [ Nowa.Config.pool "" ~workers:1 ];
  (* A bad topology must not leak guard state: a good run still works. *)
  Alcotest.(check int) "clean run after rejection" 3
    (R.run ~conf:(two_pools ()) (fun () -> 3))

(* With spill-over off, a task routed to pool "aux" must only ever run
   on an "aux" worker — strict isolation is the default. *)
let test_spawn_on_routing_isolation () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      R.run ~conf:(two_pools ()) (fun () ->
          let aux = R.pool "aux" in
          let ps =
            List.init 64 (fun i -> R.spawn_on aux (fun () -> (i, R.self_pool ())))
          in
          List.iteri
            (fun i p ->
              let j, where = R.await p in
              Alcotest.(check int) "payload intact" i j;
              Alcotest.(check string) (R.name ^ ": routed task stays put")
                "aux" where)
            ps))
    presets

(* Routed tasks may open scopes and spawn; the nested work stays in the
   target pool when spill is off. *)
let test_spawn_on_nested_spawns () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let r =
        R.run ~conf:(two_pools ()) (fun () ->
            R.await
              (R.spawn_on (R.pool "aux") (fun () ->
                   R.scope (fun sc ->
                       let a = R.spawn sc (fun () -> fib_ref 10) in
                       let b = fib_ref 9 in
                       R.sync sc;
                       R.get a + b))))
      in
      Alcotest.(check int) (R.name ^ ": nested result") (fib_ref 11) r)
    presets

let test_spawn_on_exception_via_await () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      R.run ~conf:(two_pools ()) (fun () ->
          let p = R.spawn_on (R.pool "aux") (fun () -> failwith "routed boom") in
          match R.await p with
          | (_ : unit) -> Alcotest.failf "%s: exception swallowed" R.name
          | exception Failure m ->
            Alcotest.(check string) "exact exception" "routed boom" m))
    presets

(* Spill-over liveness: wedge pool "busy"'s only worker on a flag, then
   route a second task there.  With spill on, an idle "main" worker must
   pick it up — the await below would otherwise hang until the wedge's
   escape timer fires and the check fails. *)
let test_spill_over_completion () =
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      let wedged = Atomic.make false in
      let release = Atomic.make false in
      let escaped = ref false in
      R.run
        ~conf:
          (pools_conf ~spill:true
             [ Nowa.Config.pool "main" ~workers:2;
               Nowa.Config.pool "busy" ~workers:1 ])
        (fun () ->
          let busy = R.pool "busy" in
          R.spawn_unit_on busy (fun () ->
              Atomic.set wedged true;
              let t0 = Unix.gettimeofday () in
              while
                (not (Atomic.get release))
                && Unix.gettimeofday () -. t0 < 10.0
              do
                Domain.cpu_relax ()
              done;
              if not (Atomic.get release) then escaped := true);
          while not (Atomic.get wedged) do
            Domain.cpu_relax ()
          done;
          let p = R.spawn_on busy (fun () -> R.self_pool ()) in
          let (_ : string) = R.await p in
          Atomic.set release true);
      Alcotest.(check bool)
        (R.name ^ ": spilled task completed before the wedge escape") false
        !escaped)
    presets

let test_pool_api_serial_elision () =
  let module S = Nowa_runtime.Serial_runtime in
  S.run (fun () ->
      Alcotest.(check string) "self" "main" (S.self_pool ());
      (* any name resolves under the elision *)
      let p = S.spawn_on (S.pool "anything") (fun () -> 41 + 1) in
      Alcotest.(check int) "inline spawn_on" 42 (S.await p);
      let hit = ref false in
      S.spawn_unit_on (S.pool "other") (fun () -> hit := true);
      Alcotest.(check bool) "inline spawn_unit_on" true !hit)

let () =
  Alcotest.run "nowa_runtime"
    [
      ( "correctness",
        [
          Alcotest.test_case "fib on all presets" `Slow test_fib_all_presets;
          Alcotest.test_case "multiple syncs per scope" `Quick test_multiple_syncs_per_scope;
          Alcotest.test_case "wide frame" `Slow test_deep_sequential_spawns;
          Alcotest.test_case "nested scopes" `Quick test_nested_scopes;
          Alcotest.test_case "implicit sync at scope exit" `Quick test_scope_implicit_sync;
          Alcotest.test_case "polymorphic results" `Quick test_run_return_value_types;
          QCheck_alcotest.to_alcotest (prop_random_trees (module Nowa.Presets.Nowa));
          QCheck_alcotest.to_alcotest (prop_random_trees (module Nowa.Presets.Fibril));
          QCheck_alcotest.to_alcotest (prop_random_trees (module Nowa.Presets.Tbb));
          QCheck_alcotest.to_alcotest (prop_random_trees (module Nowa.Presets.Gomp));
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "from main" `Quick test_exception_from_main;
          Alcotest.test_case "from child at sync" `Quick test_exception_from_child;
          Alcotest.test_case "via get" `Quick test_exception_via_get;
          Alcotest.test_case "sibling survives" `Quick test_sibling_survives_child_exception;
          Alcotest.test_case "pending get rejected" `Quick test_pending_get_rejected;
        ] );
      ( "steal paths",
        [ Alcotest.test_case "forced steal roundtrip" `Slow test_forced_steal_roundtrip ] );
      ( "guard",
        [
          Alcotest.test_case "no nested runs" `Quick test_no_nested_runs;
          Alcotest.test_case "api outside run" `Quick test_api_outside_run;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "spawn counts" `Quick test_metrics_spawn_counts;
          Alcotest.test_case "steal accounting" `Slow test_metrics_steals_with_workers;
        ] );
      ( "fusion audit",
        [
          Alcotest.test_case "no-steal invariant single worker" `Quick
            test_no_steal_invariant_single_worker;
          Alcotest.test_case "sync branch conservation" `Slow
            test_fused_sync_conservation;
          Alcotest.test_case "forced steal syncs accounted" `Slow
            test_forced_steal_syncs_accounted;
        ] );
      ( "stack pool",
        [
          Alcotest.test_case "reuse through caches" `Quick test_stack_pool_reuse;
          Alcotest.test_case "rss watermark" `Quick test_stack_pool_rss_watermark;
          Alcotest.test_case "madvise frees pages" `Quick test_stack_pool_madvise;
          Alcotest.test_case "no madvise keeps pages" `Quick test_stack_pool_no_madvise_keeps_pages;
          Alcotest.test_case "dontneed refaults" `Quick test_stack_pool_madvise_dontneed_refaults;
          Alcotest.test_case "madv_free no refault" `Quick test_stack_pool_madv_free_no_refault;
          Alcotest.test_case "engine metrics" `Quick test_engine_populates_stack_metrics;
          Alcotest.test_case "run with madvise" `Quick test_run_with_madvise;
        ] );
      ( "steal policy",
        [ Alcotest.test_case "round-robin victims" `Quick test_round_robin_victims ] );
      ( "idle policy",
        [
          Alcotest.test_case "fib under all policies" `Slow
            test_idle_policies_all_presets;
          Alcotest.test_case "shutdown wakes parked workers" `Quick
            test_shutdown_wakes_parked_workers;
          Alcotest.test_case "park metrics" `Quick test_park_metrics;
        ] );
      ( "serial elision",
        [ Alcotest.test_case "inline semantics" `Quick test_serial_inline_semantics ] );
      ( "facade",
        [
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "parallel_for edges" `Quick test_parallel_for_empty_and_tiny;
          Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "map_array" `Quick test_map_array;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "Ops functor" `Quick test_ops_functor_on_baseline;
        ] );
      ( "presets",
        [
          Alcotest.test_case "find" `Quick test_presets_find;
          Alcotest.test_case "figure sets" `Quick test_preset_sets;
        ] );
      ( "micropools",
        [
          Alcotest.test_case "pool lookup" `Quick test_pool_lookup;
          Alcotest.test_case "bad topology rejected" `Quick
            test_bad_topology_rejected;
          Alcotest.test_case "spawn_on isolation (spill off)" `Slow
            test_spawn_on_routing_isolation;
          Alcotest.test_case "nested spawns in routed task" `Slow
            test_spawn_on_nested_spawns;
          Alcotest.test_case "exception via await" `Quick
            test_spawn_on_exception_via_await;
          Alcotest.test_case "spill-over completion" `Slow
            test_spill_over_completion;
          Alcotest.test_case "serial elision pool api" `Quick
            test_pool_api_serial_elision;
        ] );
    ]
