bench/harness.ml: Hashtbl List Nowa Nowa_dag Nowa_kernels Nowa_runtime Nowa_util Printf String
