bench/main.mli:
