bench/main.ml: Arg Cmd Cmdliner Experiments Harness List Micro Nowa_util Option Printf String Term
