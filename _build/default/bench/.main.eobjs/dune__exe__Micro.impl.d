bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Nowa Nowa_dag Nowa_kernels Nowa_util Printf Staged String Test Time Toolkit
