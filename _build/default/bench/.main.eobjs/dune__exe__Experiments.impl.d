bench/experiments.ml: Filename Harness List Nowa Nowa_dag Nowa_kernels Nowa_util Printf String Sys
