(* Bechamel micro-benchmark suite: one Test.make per reproduced table or
   figure, each wrapping a small representative workload of that
   experiment, so regressions in any experiment's machinery show up in a
   single `bench/main.exe --micro` run. *)

open Bechamel
open Toolkit

module Registry = Nowa_kernels.Registry

let run_kernel (module R : Nowa.RUNTIME) ?(madvise = false) ~workers bench =
  let inst = Registry.find Registry.Test bench in
  let thunk = inst.Registry.make_thunk (module R) in
  let conf = { (Nowa.Config.with_workers workers) with Nowa.Config.madvise } in
  fun () -> ignore (R.run ~conf thunk)

let sim_kernel model bench workers =
  let inst = Registry.find Registry.Test bench in
  let thunk = inst.Registry.make_thunk (module Nowa_dag.Recorder) in
  let dag, _ = Nowa_dag.Recorder.record thunk in
  fun () -> ignore (Nowa_dag.Wsim.simulate model ~workers dag)

let tests () =
  let w = min 2 (Nowa_util.Cpu.default_workers ()) in
  [
    (* Figure 1: nqueens on the wait-free runtime. *)
    Test.make ~name:"fig1/nqueens-nowa"
      (Staged.stage (run_kernel (module Nowa.Presets.Nowa) ~workers:w "nqueens"));
    (* Table I / Figure 7: the runtime-bound benchmark (fib) on the two
       continuation-stealing coordination schemes. *)
    Test.make ~name:"fig7/fib-nowa"
      (Staged.stage (run_kernel (module Nowa.Presets.Nowa) ~workers:w "fib"));
    Test.make ~name:"fig7/fib-fibril"
      (Staged.stage (run_kernel (module Nowa.Presets.Fibril) ~workers:w "fib"));
    (* Figure 8 / Table II: the madvise() stack-pool path. *)
    Test.make ~name:"fig8/heat-madvise"
      (Staged.stage
         (run_kernel (module Nowa.Presets.Nowa) ~madvise:true ~workers:w "heat"));
    (* Figure 9: the THE-queue variant of Nowa. *)
    Test.make ~name:"fig9/fib-nowa-the"
      (Staged.stage (run_kernel (module Nowa.Presets.Nowa_the) ~workers:w "fib"));
    (* Figure 10 / Table III: the OpenMP runtime models. *)
    Test.make ~name:"fig10/fib-gomp"
      (Staged.stage (run_kernel (module Nowa.Presets.Gomp) ~workers:w "fib"));
    Test.make ~name:"table3/fib-lomp-tied"
      (Staged.stage (run_kernel (module Nowa.Presets.Lomp_tied) ~workers:w "fib"));
    (* The simulator itself (all sim-mode figures depend on it). *)
    Test.make ~name:"sim/fib-nowa-64w" (Staged.stage (sim_kernel Nowa_dag.Cost_model.nowa "fib" 64));
  ]

let run () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name:"nowa" (tests ())) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "micro suite (Bechamel, monotonic clock per run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name res ->
      let est =
        match Analyze.OLS.estimates res with
        | Some [ e ] -> Printf.sprintf "%.0f ns" e
        | Some es ->
          String.concat ", " (List.map (fun e -> Printf.sprintf "%.0f" e) es)
        | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square res with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; est; r2 ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Nowa_util.Table.print ~header:[ "test"; "time/run"; "r^2" ] rows
