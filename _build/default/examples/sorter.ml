(* Sort a large random array with the parallel quicksort kernel and
   cross-check against the serial elision — a data-intensive workload in
   contrast to quickstart's compute recursion.

     dune exec examples/sorter.exe -- 2000000 *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000_000
  in
  let module Qp = Nowa_kernels.Quicksort.Make (Nowa.Presets.Nowa) in
  let module Qs = Nowa_kernels.Quicksort.Make (Nowa_runtime.Serial_runtime) in
  let pristine = Nowa_kernels.Quicksort.random_array ~seed:99 n in

  let serial = Array.copy pristine in
  let t_serial, () =
    Nowa_util.Clock.time_it (fun () ->
        Nowa_runtime.Serial_runtime.run (fun () -> Qs.run serial))
  in
  Printf.printf "serial quicksort of %d ints: %.3f s\n" n t_serial;

  let parallel = Array.copy pristine in
  let t_parallel, () =
    Nowa_util.Clock.time_it (fun () -> Nowa.run (fun () -> Qp.run parallel))
  in
  Printf.printf "parallel quicksort:          %.3f s (speedup %.2f)\n" t_parallel
    (t_serial /. t_parallel);

  if not (Nowa_kernels.Quicksort.is_sorted parallel) then begin
    print_endline "BUG: output not sorted";
    exit 1
  end;
  if parallel <> serial then begin
    print_endline "BUG: parallel and serial results differ";
    exit 1
  end;
  print_endline "verified: sorted and identical to the serial result"
