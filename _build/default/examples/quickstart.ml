(* Quickstart: the spawn/sync programming model on the default (wait-free)
   Nowa runtime.

     dune exec examples/quickstart.exe *)

(* Listing 1 of the paper, in OCaml: a spawning function.  [spawn] only
   expresses the *potential* for parallelism; the runtime decides. *)
let rec fib n =
  if n < 2 then n
  else
    Nowa.scope (fun sc ->
        let a = Nowa.spawn sc (fun () -> fib (n - 1)) in
        let b = fib (n - 2) in
        Nowa.sync sc;
        Nowa.get a + b)

(* Data-parallel helpers are built on the same primitives. *)
let dot_product xs ys =
  Nowa.parallel_reduce ~grain:1024 0 (Array.length xs)
    ~map:(fun i -> xs.(i) *. ys.(i))
    ~combine:( +. ) ~init:0.0

let () =
  let n = 30 in
  let result, elapsed_metrics =
    Nowa.run (fun () ->
        let f = fib n in
        let xs = Array.init 100_000 (fun i -> float_of_int i) in
        let ys = Array.init 100_000 (fun _ -> 0.5) in
        let d = dot_product xs ys in
        (f, d))
  in
  Printf.printf "fib %d = %d\n" n result;
  Printf.printf "dot product = %.1f\n" elapsed_metrics;
  (match Nowa.last_metrics () with
  | Some m ->
    Printf.printf
      "runtime: %d workers, %d spawn points, %d steals, %.4f s\n"
      (Array.length m.Nowa.Metrics.workers)
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.spawns))
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals))
      m.Nowa.Metrics.elapsed_s
  | None -> ());
  (* The same program runs unchanged on any baseline preset. *)
  let module Fibril = Nowa.Presets.Fibril in
  let module FibK = Nowa_kernels.Fib.Make (Fibril) in
  let r = Fibril.run (fun () -> FibK.run 25) in
  Printf.printf "fib 25 on the lock-based Fibril baseline = %d\n" r
