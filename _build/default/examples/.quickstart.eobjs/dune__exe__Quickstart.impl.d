examples/quickstart.ml: Array Nowa Nowa_kernels Printf
