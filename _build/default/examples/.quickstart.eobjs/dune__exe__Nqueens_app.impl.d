examples/nqueens_app.ml: Arg Cmd Cmdliner List Nowa Nowa_kernels Nowa_runtime Nowa_util Printf String Term Unix
