examples/nqueens_app.mli:
