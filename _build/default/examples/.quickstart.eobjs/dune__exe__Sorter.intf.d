examples/sorter.mli:
