examples/sorter.ml: Array Nowa Nowa_kernels Nowa_runtime Nowa_util Printf Sys
