examples/dag_analysis.mli:
