examples/quickstart.mli:
