examples/dag_analysis.ml: Array Cost_model Dag List Nowa_dag Nowa_kernels Nowa_util Printf String Sys Wsim
