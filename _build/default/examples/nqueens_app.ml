(* The paper's Figure 1 benchmark as an application: count the placements
   of n non-attacking queens, on a selectable runtime preset, and report
   the speedup over the serial elision.

     dune exec examples/nqueens_app.exe -- -n 11 --runtime nowa --workers 4 *)

let run_once n (module R : Nowa.RUNTIME) workers =
  let module Q = Nowa_kernels.Nqueens.Make (R) in
  let conf = Nowa.Config.with_workers workers in
  let t0 = Unix.gettimeofday () in
  let count = R.run ~conf (fun () -> Q.run n) in
  (count, Unix.gettimeofday () -. t0)

let serial_time n =
  let module S = Nowa_runtime.Serial_runtime in
  let module Q = Nowa_kernels.Nqueens.Make (S) in
  let t0 = Unix.gettimeofday () in
  let count = S.run (fun () -> Q.run n) in
  (count, Unix.gettimeofday () -. t0)

let main n runtime workers =
  let (module R : Nowa.RUNTIME) =
    match Nowa.Presets.find runtime with
    | r -> r
    | exception Not_found ->
      Printf.eprintf "unknown runtime %S; available: %s\n" runtime
        (String.concat ", "
           (List.map (fun (module R : Nowa.RUNTIME) -> R.name) Nowa.Presets.all));
      exit 1
  in
  let serial_count, ts = serial_time n in
  let count, tp = run_once n (module R) workers in
  Printf.printf "nqueens(%d) = %d solutions\n" n count;
  if count <> serial_count then begin
    Printf.eprintf "BUG: parallel result %d disagrees with serial %d\n" count
      serial_count;
    exit 1
  end;
  Printf.printf "serial elision: %.4f s\n" ts;
  Printf.printf "%s with %d workers: %.4f s (speedup %.2f)\n" R.name workers tp
    (ts /. tp);
  match R.last_metrics () with
  | Some m ->
    Printf.printf "spawns=%d steals=%d steal-attempts=%d suspensions=%d\n"
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.spawns))
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals))
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steal_attempts))
      (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.suspensions))
  | None -> ()

open Cmdliner

let n_arg =
  Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Board size.")

let runtime_arg =
  Arg.(
    value & opt string "nowa"
    & info [ "runtime"; "r" ] ~docv:"NAME" ~doc:"Runtime preset (nowa, fibril, ...).")

let workers_arg =
  Arg.(
    value
    & opt int (Nowa_util.Cpu.default_workers ())
    & info [ "workers"; "w" ] ~docv:"W" ~doc:"Worker count.")

let cmd =
  Cmd.v
    (Cmd.info "nqueens_app" ~doc:"Count n-queens placements on a Nowa runtime")
    Term.(const main $ n_arg $ runtime_arg $ workers_arg)

let () = exit (Cmd.eval cmd)
