(* Model-checking the platform's coordination algorithms (the Section
   II-D methodology): exhaustive interleaving exploration of the deque
   and strand-counter protocols, including a mechanical exhibition of
   the Figure 6 race on a naive counter and its absence from the
   wait-free and lock-based schemes. *)

module M = Nowa_mcheck.Mcheck
module S = Nowa_mcheck.Specs

let expect_ok name result =
  match result with
  | M.Ok o ->
    Alcotest.(check bool) (name ^ ": explored something") true (o.M.executions > 0)
  | M.Violation { schedule; message } ->
    Alcotest.failf "%s: unexpected violation %S on schedule [%s]" name message
      (String.concat ";" (List.map string_of_int schedule))

let expect_violation name result =
  match result with
  | M.Violation _ -> ()
  | M.Ok o ->
    Alcotest.failf "%s: no violation found in %d executions (complete=%b)" name
      o.M.executions o.M.complete

(* -- the explorer itself ------------------------------------------------ *)

let test_explorer_counts_interleavings () =
  (* Two threads of two atomic writes each on distinct cells.  A thread
     with k scheduling points needs k+1 quanta (the last runs it to
     completion), so the interleaving count is C(6,3) = 20. *)
  let spec () =
    let a = M.Cell.make 0 and b = M.Cell.make 0 in
    let inc c () =
      M.Cell.write c 1;
      M.Cell.write c 2
    in
    ([ inc a; inc b ], fun () -> M.Cell.peek a = 2 && M.Cell.peek b = 2)
  in
  match M.explore spec with
  | M.Ok o ->
    Alcotest.(check int) "C(6,3) interleavings" 20 o.M.executions;
    Alcotest.(check bool) "complete" true o.M.complete
  | M.Violation _ -> Alcotest.fail "unexpected violation"

let test_explorer_finds_lost_update () =
  (* The classic racy read-modify-write: two threads doing
     read;write(+1) — some interleaving loses an update. *)
  let spec () =
    let c = M.Cell.make 0 in
    let inc () =
      let v = M.Cell.read c in
      M.Cell.write c (v + 1)
    in
    ([ inc; inc ], fun () -> M.Cell.peek c = 2)
  in
  expect_violation "lost update" (M.explore spec)

let test_explorer_atomic_rmw_safe () =
  let spec () =
    let c = M.Cell.make 0 in
    let inc () = ignore (M.Cell.fetch_add c 1) in
    ([ inc; inc; inc ], fun () -> M.Cell.peek c = 3)
  in
  expect_ok "fetch_add" (M.explore spec)

let test_explorer_reports_check_failures () =
  let spec () =
    let c = M.Cell.make 0 in
    let t1 () = M.Cell.write c 1 in
    let t2 () = M.check (M.Cell.read c = 0) "saw the other thread's write" in
    ([ t1; t2 ], fun () -> true)
  in
  expect_violation "inline check" (M.explore spec)

let test_explorer_budget () =
  let spec () =
    let c = M.Cell.make 0 in
    let busy () =
      for _ = 1 to 6 do
        ignore (M.Cell.fetch_add c 1)
      done
    in
    ([ busy; busy; busy ], fun () -> true)
  in
  match M.explore ~max_executions:50 spec with
  | M.Ok o ->
    Alcotest.(check bool) "budget respected" true (o.M.executions <= 50);
    Alcotest.(check bool) "flagged incomplete" false o.M.complete
  | M.Violation _ -> Alcotest.fail "unexpected violation"

(* -- deques -------------------------------------------------------------- *)

let test_chase_lev_owner_vs_thief () =
  expect_ok "CL 2 pushes, 1 pop, 1 thief"
    (M.explore (S.chase_lev_spec ~pushes:2 ~pops:1 ~thieves:1))

let test_chase_lev_two_thieves () =
  expect_ok "CL 1 push, 2 thieves"
    (M.explore (S.chase_lev_spec ~pushes:1 ~pops:0 ~thieves:2))

let test_chase_lev_last_element_race () =
  expect_ok "CL 1 push, 1 pop, 1 thief (single-element race)"
    (M.explore (S.chase_lev_spec ~pushes:1 ~pops:1 ~thieves:1))

let test_chase_lev_drain () =
  expect_ok "CL 2 pushes, 2 pops, 1 thief"
    (M.explore (S.chase_lev_spec ~pushes:2 ~pops:2 ~thieves:1))

let test_the_queue_owner_vs_thief () =
  expect_ok "THE 2 pushes, 1 pop, 1 thief"
    (M.explore (S.the_queue_spec ~pushes:2 ~pops:1 ~thieves:1))

let test_the_queue_conflict_path () =
  expect_ok "THE 1 push, 1 pop, 1 thief (lock arbitration)"
    (M.explore (S.the_queue_spec ~pushes:1 ~pops:1 ~thieves:1))

let test_the_queue_two_thieves () =
  expect_ok "THE 2 pushes, 0 pops, 2 thieves"
    (M.explore ~max_executions:60_000 (S.the_queue_spec ~pushes:2 ~pops:0 ~thieves:2))

(* -- strand counters ------------------------------------------------------ *)

let test_naive_counter_has_the_figure6_race () =
  expect_violation "naive counter (Figure 6)"
    (M.explore (S.naive_counter_spec ~children:1))

let test_wait_free_counter_is_race_free () =
  match M.explore (S.wait_free_counter_spec ~children:1) with
  | M.Ok o ->
    Alcotest.(check bool) "exhaustive" true o.M.complete;
    Alcotest.(check bool) "nontrivial" true (o.M.executions > 10)
  | M.Violation { schedule; message } ->
    Alcotest.failf "wait-free counter violated: %S on [%s]" message
      (String.concat ";" (List.map string_of_int schedule))

let test_lock_counter_is_race_free () =
  match M.explore (S.lock_counter_spec ~children:1) with
  | M.Ok o -> Alcotest.(check bool) "nontrivial" true (o.M.executions > 10)
  | M.Violation { schedule; message } ->
    Alcotest.failf "lock counter violated: %S on [%s]" message
      (String.concat ";" (List.map string_of_int schedule))

let () =
  Alcotest.run "nowa_mcheck"
    [
      ( "explorer",
        [
          Alcotest.test_case "interleaving count" `Quick test_explorer_counts_interleavings;
          Alcotest.test_case "finds lost updates" `Quick test_explorer_finds_lost_update;
          Alcotest.test_case "atomic rmw safe" `Quick test_explorer_atomic_rmw_safe;
          Alcotest.test_case "inline checks" `Quick test_explorer_reports_check_failures;
          Alcotest.test_case "budget" `Quick test_explorer_budget;
        ] );
      ( "chase-lev",
        [
          Alcotest.test_case "owner vs thief" `Slow test_chase_lev_owner_vs_thief;
          Alcotest.test_case "two thieves" `Quick test_chase_lev_two_thieves;
          Alcotest.test_case "last-element race" `Quick test_chase_lev_last_element_race;
          Alcotest.test_case "drain" `Slow test_chase_lev_drain;
        ] );
      ( "the queue",
        [
          Alcotest.test_case "owner vs thief" `Slow test_the_queue_owner_vs_thief;
          Alcotest.test_case "conflict path" `Quick test_the_queue_conflict_path;
          Alcotest.test_case "two thieves" `Slow test_the_queue_two_thieves;
        ] );
      ( "strand counters",
        [
          Alcotest.test_case "naive has the Figure 6 race" `Quick
            test_naive_counter_has_the_figure6_race;
          Alcotest.test_case "wait-free is race free" `Quick
            test_wait_free_counter_is_race_free;
          Alcotest.test_case "lock-based is race free" `Quick
            test_lock_counter_is_race_free;
        ] );
    ]
