(* Tests for the twelve Table I benchmarks: each kernel is validated
   against ground truth (closed forms, naive reference implementations,
   reconstruction residuals) and against its serial elision across
   runtime presets. *)

module Serial = Nowa_runtime.Serial_runtime
module K = Nowa_kernels

let conf workers = Nowa.Config.with_workers workers

let check_presets : (module Nowa.RUNTIME) list =
  [
    (module Nowa.Presets.Nowa);
    (module Nowa.Presets.Nowa_the);
    (module Nowa.Presets.Fibril);
    (module Nowa.Presets.Cilk_plus);
    (module Nowa.Presets.Tbb);
    (module Nowa.Presets.Lomp_untied);
    (module Nowa.Presets.Lomp_tied);
    (module Nowa.Presets.Gomp);
  ]

(* Every registry instance at Test size matches its serial elision on
   every preset. *)
let test_registry_cross_preset () =
  List.iter
    (fun name ->
      let inst = K.Registry.find K.Registry.Test name in
      let reference = K.Registry.reference K.Registry.Test name in
      List.iter
        (fun (module R : Nowa.RUNTIME) ->
          let thunk = inst.K.Registry.make_thunk (module R) in
          let fp = R.run ~conf:(conf 3) thunk in
          if not (K.Registry.matches inst reference fp) then
            Alcotest.failf "%s on %s: fingerprint %.9g <> reference %.9g" name
              R.name fp reference)
        check_presets)
    K.Registry.names

let test_registry_names_complete () =
  Alcotest.(check int) "twelve benchmarks" 12 (List.length K.Registry.names);
  List.iter
    (fun size ->
      Alcotest.(check int) "instances per size" 12
        (List.length (K.Registry.instances size)))
    [ K.Registry.Test; K.Registry.Small; K.Registry.Medium; K.Registry.Large ]

(* -- fib ----------------------------------------------------------------- *)

let test_fib_ground_truth () =
  let module F = K.Fib.Make (Serial) in
  Serial.run (fun () ->
      List.iter
        (fun (n, expected) -> Alcotest.(check int) "fib" expected (F.run n))
        [ (0, 0); (1, 1); (2, 1); (10, 55); (20, 6765) ])

let test_fib_spawn_count () =
  Alcotest.(check int) "spawn_count 10" 88 (K.Fib.spawn_count 10);
  Alcotest.(check int) "spawn_count 2" 1 (K.Fib.spawn_count 2)

(* -- integrate ------------------------------------------------------------ *)

let test_integrate_closed_form () =
  let module I = K.Integrate.Make (Serial) in
  Serial.run (fun () ->
      List.iter
        (fun n ->
          let approx = I.run ~epsilon:1e-6 n in
          let exact = K.Integrate.exact (float_of_int n) in
          let rel = Float.abs (approx -. exact) /. exact in
          if rel > 1e-4 then
            Alcotest.failf "integrate %d: rel error %g too large" n rel)
        [ 10; 100; 500 ])

(* -- nqueens --------------------------------------------------------------- *)

let test_nqueens_known_counts () =
  let module N = K.Nqueens.Make (Serial) in
  Serial.run (fun () ->
      for n = 1 to 9 do
        Alcotest.(check int)
          (Printf.sprintf "nqueens %d" n)
          K.Nqueens.solutions.(n) (N.run n)
      done)

let test_nqueens_parallel_matches () =
  let module N = K.Nqueens.Make (Nowa.Presets.Nowa) in
  let count = Nowa.Presets.Nowa.run ~conf:(conf 4) (fun () -> N.run 8) in
  Alcotest.(check int) "nqueens 8 parallel" 92 count

(* -- knapsack --------------------------------------------------------------- *)

(* Exhaustive reference for small instances. *)
let knapsack_brute items capacity =
  let n = Array.length items in
  let rec go i cap =
    if i = n || cap = 0 then 0
    else
      let skip = go (i + 1) cap in
      let it = items.(i) in
      if it.K.Knapsack.weight <= cap then
        max skip (it.K.Knapsack.value + go (i + 1) (cap - it.K.Knapsack.weight))
      else skip
  in
  go 0 capacity

let test_knapsack_vs_brute_force () =
  let module Kn = K.Knapsack.Make (Serial) in
  List.iter
    (fun seed ->
      let items = K.Knapsack.make_items ~seed 12 in
      let capacity = K.Knapsack.default_capacity items in
      let expected = knapsack_brute items capacity in
      let got = Serial.run (fun () -> Kn.run ~capacity items) in
      Alcotest.(check int) (Printf.sprintf "knapsack seed %d" seed) expected got)
    [ 1; 2; 3; 4; 5 ]

let test_knapsack_flipped_same_result () =
  (* The spawn-order flip of Section V-A changes the work, never the
     answer. *)
  let module Kn = K.Knapsack.Make (Nowa.Presets.Nowa) in
  let items = K.Knapsack.make_items ~seed:11 16 in
  let normal = Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> Kn.run items) in
  let flipped =
    Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> Kn.run ~flipped:true items)
  in
  Alcotest.(check int) "flip preserves optimum" normal flipped

(* -- quicksort ---------------------------------------------------------------- *)

let test_quicksort_adversarial_inputs () =
  let module Q = K.Quicksort.Make (Serial) in
  let check label a =
    let expected = Array.copy a in
    Array.sort compare expected;
    Serial.run (fun () -> Q.run ~cutoff:8 a);
    Alcotest.(check bool) label true (a = expected)
  in
  check "already sorted" (Array.init 500 (fun i -> i));
  check "reverse sorted" (Array.init 500 (fun i -> 500 - i));
  check "constant" (Array.make 300 7);
  check "two values" (Array.init 400 (fun i -> i mod 2));
  check "empty" [||];
  check "singleton" [| 42 |]

let prop_quicksort_matches_stdlib =
  QCheck.Test.make ~name:"quicksort matches stdlib sort" ~count:100
    QCheck.(list int)
    (fun l ->
      let a = Array.of_list l in
      let expected = Array.copy a in
      Array.sort compare expected;
      let module Q = K.Quicksort.Make (Serial) in
      Serial.run (fun () -> Q.run ~cutoff:4 a);
      a = expected)

let test_quicksort_parallel () =
  let module Q = K.Quicksort.Make (Nowa.Presets.Nowa) in
  let a = K.Quicksort.random_array ~seed:123 50_000 in
  let expected = Array.copy a in
  Array.sort compare expected;
  Nowa.Presets.Nowa.run ~conf:(conf 4) (fun () -> Q.run ~cutoff:512 a);
  Alcotest.(check bool) "sorted in parallel" true (a = expected)

(* -- linear algebra kernels ----------------------------------------------------- *)

let residual_tolerance = 1e-9

let check_residual label reconstructed original =
  let diff = K.Linalg.max_abs_diff reconstructed original in
  let scale = Float.max 1.0 (K.Linalg.frobenius original) in
  if diff /. scale > residual_tolerance then
    Alcotest.failf "%s: residual %g too large" label diff

let test_matmul_vs_naive () =
  let module M = K.Matmul.Make (Nowa.Presets.Nowa) in
  let a = K.Linalg.random ~seed:1 96 96 and b = K.Linalg.random ~seed:2 96 96 in
  let c = Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> M.run a b) in
  let expected = K.Linalg.create 96 96 in
  K.Linalg.matmul_add_naive a b expected;
  check_residual "matmul" c expected

let test_rectmul_vs_naive () =
  let module M = K.Rectmul.Make (Nowa.Presets.Nowa) in
  (* Deliberately awkward odd-ish shapes. *)
  List.iter
    (fun (m, k, n) ->
      let a = K.Linalg.random ~seed:3 m k and b = K.Linalg.random ~seed:4 k n in
      let c = Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> M.run a b) in
      let expected = K.Linalg.create m n in
      K.Linalg.matmul_add_naive a b expected;
      check_residual (Printf.sprintf "rectmul %dx%dx%d" m k n) c expected)
    [ (70, 33, 129); (64, 128, 32); (1, 100, 1); (17, 1, 17) ]

let test_strassen_vs_naive () =
  let module S = K.Strassen.Make (Nowa.Presets.Nowa) in
  let n = 128 in
  let a = K.Linalg.random ~seed:5 n n and b = K.Linalg.random ~seed:6 n n in
  let c = Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> S.run a b) in
  let expected = K.Linalg.create n n in
  K.Linalg.matmul_add_naive a b expected;
  let diff = K.Linalg.max_abs_diff c expected in
  (* Strassen is less numerically stable than the naive product. *)
  if diff > 1e-6 then Alcotest.failf "strassen residual %g" diff

let test_lu_reconstruction () =
  let module L = K.Lu.Make (Nowa.Presets.Nowa) in
  let n = 96 in
  let a0 = K.Linalg.random_spd ~seed:7 n in
  let a = K.Linalg.copy a0 in
  Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> L.run a);
  let product = K.Lu.reconstruct a in
  check_residual "LU reconstruction" product a0

let test_cholesky_reconstruction () =
  let module C = K.Cholesky.Make (Nowa.Presets.Nowa) in
  let n = 96 in
  let a0 = K.Linalg.random_spd ~seed:8 n in
  let a = K.Linalg.copy a0 in
  Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> C.run a);
  let product = K.Cholesky.reconstruct a in
  check_residual "Cholesky reconstruction" product a0

(* -- fft --------------------------------------------------------------------------- *)

let test_fft_vs_naive_dft () =
  let module F = K.Fft.Make (Serial) in
  List.iter
    (fun n ->
      let x = K.Fft.random_signal ~seed:9 n in
      let fast = Serial.run (fun () -> F.run x) in
      let slow = K.Fft.dft_naive x in
      let diff = K.Fft.max_abs_diff fast slow in
      if diff > 1e-6 then Alcotest.failf "fft n=%d: diff %g" n diff)
    [ 1; 2; 4; 64; 256 ]

let test_fft_parseval () =
  (* Energy conservation: ‖X‖² = n·‖x‖². *)
  let module F = K.Fft.Make (Nowa.Presets.Nowa) in
  let n = 1024 in
  let x = K.Fft.random_signal ~seed:10 n in
  let xf = Nowa.Presets.Nowa.run ~conf:(conf 3) (fun () -> F.run x) in
  let energy a = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 a in
  let lhs = energy xf and rhs = float_of_int n *. energy x in
  if Float.abs (lhs -. rhs) /. rhs > 1e-9 then
    Alcotest.failf "Parseval violated: %g vs %g" lhs rhs

let test_fft_rejects_non_power_of_two () =
  let module F = K.Fft.Make (Serial) in
  Alcotest.check_raises "invalid length"
    (Invalid_argument "Fft.run: length must be a power of 2") (fun () ->
      Serial.run (fun () -> ignore (F.run (K.Fft.make_signal 3))))

(* -- heat -------------------------------------------------------------------------- *)

let test_heat_zero_steps_identity () =
  let module H = K.Heat.Make (Serial) in
  let g = K.Heat.default ~nx:16 ~ny:16 in
  let g' = Serial.run (fun () -> H.run ~steps:0 g) in
  Alcotest.(check bool) "0 steps = identity" true
    (K.Heat.checksum g = K.Heat.checksum g')

let test_heat_converges_towards_boundary_harmonics () =
  (* The Jacobi iteration is a contraction: the per-step change must
     shrink substantially as the grid relaxes. *)
  let module H = K.Heat.Make (Serial) in
  let g = K.Heat.default ~nx:16 ~ny:16 in
  let checksum_at steps = Serial.run (fun () -> K.Heat.checksum (H.run ~steps g)) in
  let early = Float.abs (checksum_at 11 -. checksum_at 10) in
  let late = Float.abs (checksum_at 801 -. checksum_at 800) in
  Alcotest.(check bool) "per-step change shrinks" true (late < early /. 10.0)

let test_heat_parallel_matches_serial () =
  let module Hs = K.Heat.Make (Serial) in
  let module Hp = K.Heat.Make (Nowa.Presets.Nowa) in
  let g = K.Heat.default ~nx:64 ~ny:32 in
  let serial = Serial.run (fun () -> K.Heat.checksum (Hs.run ~steps:7 g)) in
  let parallel =
    Nowa.Presets.Nowa.run ~conf:(conf 4) (fun () -> K.Heat.checksum (Hp.run ~steps:7 g))
  in
  Alcotest.(check bool) "bitwise equal" true (serial = parallel)

(* -- linalg substrate ---------------------------------------------------------------- *)

let test_linalg_views () =
  let m = K.Linalg.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = K.Linalg.sub m ~row:1 ~col:2 ~rows:2 ~cols:2 in
  Alcotest.(check (float 0.0)) "view (0,0)" 12.0 (K.Linalg.get s 0 0);
  K.Linalg.set s 1 1 99.0;
  Alcotest.(check (float 0.0)) "aliases backing" 99.0 (K.Linalg.get m 2 3);
  Alcotest.check_raises "bounds" (Invalid_argument "Linalg.sub: window out of bounds")
    (fun () -> ignore (K.Linalg.sub m ~row:3 ~col:3 ~rows:2 ~cols:2))

let test_linalg_quadrants () =
  let m = K.Linalg.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let a11, a12, a21, a22 = K.Linalg.quadrants m in
  Alcotest.(check (float 0.0)) "a11" 0.0 (K.Linalg.get a11 0 0);
  Alcotest.(check (float 0.0)) "a12" 2.0 (K.Linalg.get a12 0 0);
  Alcotest.(check (float 0.0)) "a21" 20.0 (K.Linalg.get a21 0 0);
  Alcotest.(check (float 0.0)) "a22" 22.0 (K.Linalg.get a22 0 0)

let test_linalg_transpose_and_spd () =
  let m = K.Linalg.random ~seed:12 5 3 in
  let t = K.Linalg.transpose m in
  for i = 0 to 4 do
    for j = 0 to 2 do
      Alcotest.(check (float 0.0)) "transposed" (K.Linalg.get m i j) (K.Linalg.get t j i)
    done
  done;
  let spd = K.Linalg.random_spd ~seed:13 8 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      Alcotest.(check (float 1e-12)) "symmetric" (K.Linalg.get spd i j)
        (K.Linalg.get spd j i)
    done;
    Alcotest.(check bool) "diagonally dominant" true (K.Linalg.get spd i i > 1.0)
  done

let () =
  Alcotest.run "nowa_kernels"
    [
      ( "registry",
        [
          Alcotest.test_case "cross-preset fingerprints" `Slow test_registry_cross_preset;
          Alcotest.test_case "names complete" `Quick test_registry_names_complete;
        ] );
      ( "fib",
        [
          Alcotest.test_case "ground truth" `Quick test_fib_ground_truth;
          Alcotest.test_case "spawn count" `Quick test_fib_spawn_count;
        ] );
      ("integrate", [ Alcotest.test_case "closed form" `Quick test_integrate_closed_form ]);
      ( "nqueens",
        [
          Alcotest.test_case "known counts" `Quick test_nqueens_known_counts;
          Alcotest.test_case "parallel" `Quick test_nqueens_parallel_matches;
        ] );
      ( "knapsack",
        [
          Alcotest.test_case "vs brute force" `Quick test_knapsack_vs_brute_force;
          Alcotest.test_case "flipped spawn order" `Quick test_knapsack_flipped_same_result;
        ] );
      ( "quicksort",
        [
          Alcotest.test_case "adversarial inputs" `Quick test_quicksort_adversarial_inputs;
          QCheck_alcotest.to_alcotest prop_quicksort_matches_stdlib;
          Alcotest.test_case "parallel" `Slow test_quicksort_parallel;
        ] );
      ( "linear algebra",
        [
          Alcotest.test_case "matmul vs naive" `Quick test_matmul_vs_naive;
          Alcotest.test_case "rectmul vs naive" `Quick test_rectmul_vs_naive;
          Alcotest.test_case "strassen vs naive" `Quick test_strassen_vs_naive;
          Alcotest.test_case "lu reconstruction" `Quick test_lu_reconstruction;
          Alcotest.test_case "cholesky reconstruction" `Quick test_cholesky_reconstruction;
        ] );
      ( "fft",
        [
          Alcotest.test_case "vs naive dft" `Quick test_fft_vs_naive_dft;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "power of two" `Quick test_fft_rejects_non_power_of_two;
        ] );
      ( "heat",
        [
          Alcotest.test_case "zero steps" `Quick test_heat_zero_steps_identity;
          Alcotest.test_case "convergence" `Quick test_heat_converges_towards_boundary_harmonics;
          Alcotest.test_case "parallel matches serial" `Quick test_heat_parallel_matches_serial;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "views" `Quick test_linalg_views;
          Alcotest.test_case "quadrants" `Quick test_linalg_quadrants;
          Alcotest.test_case "transpose/spd" `Quick test_linalg_transpose_and_spd;
        ] );
    ]
