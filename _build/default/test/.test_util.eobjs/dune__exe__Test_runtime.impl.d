test/test_runtime.ml: Alcotest Array Atomic Either List Nowa Nowa_kernels Nowa_runtime Printf QCheck QCheck_alcotest Unix
