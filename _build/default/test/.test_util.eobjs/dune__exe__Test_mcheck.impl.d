test/test_mcheck.ml: Alcotest List Nowa_mcheck String
