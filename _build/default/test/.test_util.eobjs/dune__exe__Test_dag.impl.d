test/test_dag.ml: Alcotest Float Lazy List Nowa_dag Nowa_kernels Printf QCheck QCheck_alcotest
