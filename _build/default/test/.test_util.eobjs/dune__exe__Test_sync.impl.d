test/test_sync.ml: Alcotest Atomic Barrier Counter_intf Domain List Lock_counter Nowa_sync QCheck QCheck_alcotest Snzi Spinlock Wait_free_counter
