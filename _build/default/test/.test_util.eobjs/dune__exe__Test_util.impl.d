test/test_util.ml: Alcotest Array Atomic Backoff Clock Cpu Float Int64 List Nowa_util Padding QCheck QCheck_alcotest Stats String Table Xoshiro
