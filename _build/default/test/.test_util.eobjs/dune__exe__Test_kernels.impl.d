test/test_kernels.ml: Alcotest Array Float List Nowa Nowa_kernels Nowa_runtime Printf QCheck QCheck_alcotest
