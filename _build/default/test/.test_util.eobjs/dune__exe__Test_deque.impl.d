test/test_deque.ml: Abp Alcotest Array Atomic Central_queue Chase_lev Domain List Locked_deque Nowa_deque QCheck QCheck_alcotest Test The_queue Ws_deque_intf
