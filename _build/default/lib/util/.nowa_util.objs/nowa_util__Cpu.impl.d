lib/util/cpu.ml: Domain
