lib/util/cpu.mli:
