lib/util/padding.ml: Array Atomic
