lib/util/padding.mli: Atomic
