lib/util/stats.mli:
