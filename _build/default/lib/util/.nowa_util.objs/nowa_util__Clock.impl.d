lib/util/clock.ml: Domain Unix
