lib/util/table.mli:
