lib/util/backoff.mli:
