lib/util/clock.mli:
