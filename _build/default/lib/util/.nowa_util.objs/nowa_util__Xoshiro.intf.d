lib/util/xoshiro.mli:
