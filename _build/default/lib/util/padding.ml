let cache_line_words = 8

(* The spacers must survive long enough to keep their slots occupied until
   the next minor collection; keeping the last few alive in a global root is
   enough for the at-birth layout and costs a handful of words. *)
let keep = Array.make 2 [||]

let int_array n = Array.make (n * cache_line_words) 0

let atomic v =
  let pre = int_array 1 in
  let a = Atomic.make v in
  let post = int_array 1 in
  keep.(0) <- pre;
  keep.(1) <- post;
  a
