(* There is no monotonic clock in the pre-installed package set; on the
   quiescent benchmark hosts this code targets, [Unix.gettimeofday] step
   adjustments are the only non-monotonicity and they are negligible over
   benchmark timescales. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, r)

let spin_ns n =
  if n > 0 then begin
    let deadline = now_ns () + n in
    while now_ns () < deadline do
      Domain.cpu_relax ()
    done
  end
