(** Host processor information. *)

val available_cores : unit -> int
(** Number of cores the OCaml runtime recommends using as domains. *)

val default_workers : unit -> int
(** Worker count used when a runtime is started without an explicit count:
    the available cores, capped so test machines with a single core still
    exercise multi-worker code paths deterministically. *)
