(** Truncated exponential backoff for contended retry loops.

    Thieves use this between failed steal attempts; the spinlock uses it in
    its acquisition loop.  Beyond a threshold the backoff yields the
    timeslice ([Unix.sleepf 0]) so that on machines with fewer cores than
    workers a spinning thief cannot starve the strand it is waiting for. *)

type t

val make : ?min_spins:int -> ?max_spins:int -> unit -> t
val reset : t -> unit

val once : t -> unit
(** Perform one backoff step and double the next step, up to the cap. *)

val steps : t -> int
(** Number of [once] calls since the last [reset]. *)
