(** Minimal ASCII table rendering for the benchmark harness output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with column widths derived from
    the longest cell.  [align] defaults to [Left] for the first column and
    [Right] for the rest. *)

val print :
  ?align:align list -> header:string list -> string list list -> unit
