(** Monotonic wall-clock helpers used by the schedulers, the benchmark
    harness, and the simulated madvise() cost model. *)

val now_ns : unit -> int
(** Monotonic time stamp in nanoseconds. *)

val time_it : (unit -> 'a) -> float * 'a
(** [time_it f] runs [f ()] and returns (elapsed seconds, result). *)

val spin_ns : int -> unit
(** [spin_ns n] busy-waits for approximately [n] nanoseconds.  Used to model
    fixed hardware/kernel costs (e.g. an madvise() syscall) inside the
    simulated substrates. *)
