let available_cores () = Domain.recommended_domain_count ()

let default_workers () = max 1 (available_cores ())
