type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 seeding, as recommended by Blackman & Vigna. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let split t =
  let seed = Int64.to_int (next t) in
  make ~seed
