(** Xoshiro256** pseudo-random number generator.

    Each worker owns a private generator so that victim selection for
    randomised work stealing never synchronises between workers.  The
    generator is deterministic from its seed, which the test-suite and the
    discrete-event simulator rely on. *)

type t

val make : seed:int -> t
(** [make ~seed] initialises the four 64-bit state words from [seed] using
    SplitMix64, as recommended by the xoshiro authors. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform value in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)
