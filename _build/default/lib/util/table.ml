type align = Left | Right

let render ?align ~header rows =
  let all = header :: rows in
  let columns = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make columns 0 in
  let note_widths row =
    List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let alignment i =
    match align with
    | Some l when i < List.length l -> List.nth l i
    | _ -> if i = 0 then Left else Right
  in
  let pad i cell =
    let w = width.(i) in
    let n = w - String.length cell in
    match alignment i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let full_row row =
    (* Extend short rows with empty cells so every line has all columns. *)
    let len = List.length row in
    if len >= columns then row
    else row @ List.init (columns - len) (fun _ -> "")
  in
  let sep =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') width))
    ^ "|"
  in
  let body = List.map (fun r -> line (full_row r)) rows in
  String.concat "\n" ((line (full_row header) :: sep :: body) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)
