lib/deque/central_queue.mli:
