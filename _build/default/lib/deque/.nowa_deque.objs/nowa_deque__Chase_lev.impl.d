lib/deque/chase_lev.ml: Array Atomic Nowa_util Ws_deque_intf
