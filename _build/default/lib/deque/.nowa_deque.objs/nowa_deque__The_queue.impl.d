lib/deque/the_queue.ml: Array Atomic Mutex Nowa_util Ws_deque_intf
