lib/deque/ws_deque_intf.ml:
