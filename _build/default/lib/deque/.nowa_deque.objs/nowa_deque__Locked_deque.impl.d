lib/deque/locked_deque.ml: Array Mutex Ws_deque_intf
