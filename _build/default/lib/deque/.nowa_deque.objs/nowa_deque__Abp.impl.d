lib/deque/abp.ml: Array Atomic Nowa_util Ws_deque_intf
