lib/deque/central_queue.ml: Mutex Queue
