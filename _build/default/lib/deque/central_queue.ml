type 'a t = { lock : Mutex.t; q : 'a Queue.t }

let create () = { lock = Mutex.create (); q = Queue.create () }

let push t v =
  Mutex.lock t.lock;
  Queue.push v t.q;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r = Queue.take_opt t.q in
  Mutex.unlock t.lock;
  r

let size t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n
