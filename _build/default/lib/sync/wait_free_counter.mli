include Counter_intf.JOIN_COUNTER

val i_max : int
(** The first-phase initialisation value of the sync-condition counter
    ([max_int]). *)
