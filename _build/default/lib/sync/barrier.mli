(** Sense-reversing spinning barrier, used to line the workers up before
    timed benchmark sections and at runtime start-up. *)

type t

val create : int -> t
(** [create n] is a barrier for [n] participants. *)

val await : t -> unit
(** Blocks (spinning, with OS yields on oversubscribed hosts) until all
    [n] participants have arrived; reusable across rounds. *)
