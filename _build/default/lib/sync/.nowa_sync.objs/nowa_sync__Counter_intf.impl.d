lib/sync/counter_intf.ml:
