lib/sync/lock_counter.ml: Spinlock
