lib/sync/spinlock.mli:
