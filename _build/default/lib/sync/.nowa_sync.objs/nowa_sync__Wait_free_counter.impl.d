lib/sync/wait_free_counter.ml: Atomic Nowa_util
