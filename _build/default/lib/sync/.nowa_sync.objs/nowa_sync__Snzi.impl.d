lib/sync/snzi.ml: Array Atomic Nowa_util
