lib/sync/barrier.mli:
