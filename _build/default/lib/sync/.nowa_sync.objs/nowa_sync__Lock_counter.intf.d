lib/sync/lock_counter.mli: Counter_intf
