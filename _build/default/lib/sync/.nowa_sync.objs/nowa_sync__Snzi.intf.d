lib/sync/snzi.mli:
