lib/sync/wait_free_counter.mli: Counter_intf
