lib/sync/barrier.ml: Atomic Domain Nowa_util Unix
