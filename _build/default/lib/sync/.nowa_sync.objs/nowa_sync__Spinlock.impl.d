lib/sync/spinlock.ml: Atomic Domain Nowa_util Unix
