type t = { flag : bool Atomic.t; count : int Atomic.t }

let create () =
  { flag = Nowa_util.Padding.atomic false; count = Atomic.make 0 }

let try_acquire t =
  (not (Atomic.get t.flag)) && Atomic.compare_and_set t.flag false true

let acquire t =
  let spins = ref 4 in
  while not (Atomic.compare_and_set t.flag false true) do
    (* Test-and-test-and-set: spin on the read-only path while contended. *)
    while Atomic.get t.flag do
      for _ = 1 to !spins do
        Domain.cpu_relax ()
      done;
      if !spins < 1024 then spins := !spins * 2
      else (* Let the holder run on oversubscribed hosts. *)
        Unix.sleepf 0.0
    done
  done;
  Atomic.incr t.count

let release t = Atomic.set t.flag false

let acquisitions t = Atomic.get t.count

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
