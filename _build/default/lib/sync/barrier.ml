type t = { n : int; count : int Atomic.t; sense : bool Atomic.t }

let create n =
  { n; count = Nowa_util.Padding.atomic 0; sense = Nowa_util.Padding.atomic false }

let await t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.count 1 = t.n - 1 then begin
    Atomic.set t.count 0;
    Atomic.set t.sense my_sense
  end
  else begin
    let spins = ref 0 in
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ();
      incr spins;
      if !spins mod 4096 = 0 then Unix.sleepf 0.0
    done
  end
