(** Logging source for the runtime system.  Silent unless the embedding
    application installs a [Logs] reporter and enables the ["nowa.runtime"]
    source at [Debug]. *)

val src : Logs.src

module Log : Logs.LOG
