let src = Logs.Src.create "nowa.runtime" ~doc:"Nowa runtime-system events"

module Log = (val Logs.src_log src)
