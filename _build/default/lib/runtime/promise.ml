type 'a state = Pending | Done of 'a | Failed of exn
type 'a t = { mutable st : 'a state }

let make () = { st = Pending }
let fill p v = p.st <- Done v
let fill_exn p e = p.st <- Failed e

let get ~runtime p =
  match p.st with
  | Done v -> v
  | Failed e -> raise e
  | Pending ->
    invalid_arg
      (runtime
     ^ ": promise read before the child was synced (fully-strictness \
        violation)")
