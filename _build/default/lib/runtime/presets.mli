(** Named runtime-system presets — the systems compared in the paper's
    evaluation, all built from the same engines by varying the three axes
    the paper identifies: stealing scheme, strand-counter locking, and
    deque locking.

    {b Compatibility rule}: the lock-based counter is only sound together
    with a deque whose steal path and conflicting owner pops serialise on
    the same lock (THE or the fully locked deque) — that coupling is what
    closes the Figure 6 race for lock-based runtimes.  The wait-free
    counter composes with any deque, which is the paper's "synergy"
    argument for using the lock-free CL queue (Section IV-C). *)

module Nowa : Runtime_intf.S
(** Continuation stealing, wait-free counter, Chase-Lev deque. *)

module Nowa_the : Runtime_intf.S
(** Nowa's wait-free coordination on the THE queue — the Figure 9
    ablation variant. *)

module Nowa_abp : Runtime_intf.S
(** Nowa's wait-free coordination on the ABP queue (extra ablation;
    bounded deque, so very deep spawn nests may hit
    {!Nowa_deque.Ws_deque_intf.Full}). *)

module Fibril : Runtime_intf.S
(** Continuation stealing, lock-based counter, THE queue — the Fibril
    baseline Nowa was forked from. *)

module Cilk_plus : Runtime_intf.S
(** Continuation stealing, lock-based counter, fully locked deque — the
    Cilk Plus model (lock-based on both layers, Section V-D). *)

module Tbb : Runtime_intf.S
(** Child stealing with per-worker deques — the TBB model. *)

module Lomp_untied : Runtime_intf.S
(** Child stealing, waiters steal anywhere — LLVM libomp with untied
    tasks. *)

module Lomp_tied : Runtime_intf.S
(** Child stealing, waiters restricted to their own deque — LLVM libomp
    with tied tasks. *)

module Gomp : Runtime_intf.S
(** One global locked FIFO task queue — the GCC libgomp model. *)

val all : (module Runtime_intf.S) list
(** Every preset, in the order above. *)

val find : string -> (module Runtime_intf.S)
(** Look a preset up by its [name]; raises [Not_found]. *)

val figure7_set : (module Runtime_intf.S) list
(** The four systems of Figures 1 and 7: Nowa, Fibril, Cilk Plus, TBB. *)

val figure10_set : (module Runtime_intf.S) list
(** The systems of Figure 10: Nowa, TBB, gomp, lomp untied, lomp tied. *)
