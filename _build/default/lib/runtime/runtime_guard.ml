let active : string option Atomic.t = Atomic.make None

let enter name =
  if not (Atomic.compare_and_set active None (Some name)) then
    failwith
      (Printf.sprintf
         "%s.run: another runtime is already active in this process (runs \
          cannot nest or overlap)"
         name)

let exit () = Atomic.set active None
