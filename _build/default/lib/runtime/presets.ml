module Nowa =
  Engine.Make (Nowa_deque.Chase_lev.Make) (Nowa_sync.Wait_free_counter)
    (struct
      let name = "nowa"

      let description =
        "continuation stealing, wait-free strand counter, Chase-Lev deque"
    end)

module Nowa_the =
  Engine.Make (Nowa_deque.The_queue.Make) (Nowa_sync.Wait_free_counter)
    (struct
      let name = "nowa-the"

      let description =
        "continuation stealing, wait-free strand counter, THE deque"
    end)

module Nowa_abp =
  Engine.Make (Nowa_deque.Abp.Make) (Nowa_sync.Wait_free_counter)
    (struct
      let name = "nowa-abp"

      let description =
        "continuation stealing, wait-free strand counter, ABP deque"
    end)

module Fibril =
  Engine.Make (Nowa_deque.The_queue.Make) (Nowa_sync.Lock_counter)
    (struct
      let name = "fibril"

      let description =
        "continuation stealing, lock-based strand counter, THE deque"
    end)

module Cilk_plus =
  Engine.Make (Nowa_deque.Locked_deque.Make) (Nowa_sync.Lock_counter)
    (struct
      let name = "cilkplus"

      let description =
        "continuation stealing, lock-based strand counter, locked deque"
    end)

module Tbb =
  Child_engine.Make (Nowa_deque.Locked_deque.Make)
    (struct
      let name = "tbb"
      let description = "child stealing, locked per-worker deques"
      let waiting = Child_engine.Waiting.Steal_anywhere
    end)

module Lomp_untied =
  Child_engine.Make (Nowa_deque.Locked_deque.Make)
    (struct
      let name = "lomp-untied"

      let description =
        "child stealing (libomp model), waiters steal anywhere (untied tasks)"

      let waiting = Child_engine.Waiting.Steal_anywhere
    end)

module Lomp_tied =
  Child_engine.Make (Nowa_deque.Locked_deque.Make)
    (struct
      let name = "lomp-tied"

      let description =
        "child stealing (libomp model), waiters pinned to their own deque \
         (tied tasks)"

      let waiting = Child_engine.Waiting.Local_only
    end)

module Gomp = Central_engine.Make (struct
  let name = "gomp"
  let description = "single global locked FIFO task queue (libgomp model)"
end)

let all : (module Runtime_intf.S) list =
  [
    (module Nowa);
    (module Nowa_the);
    (module Nowa_abp);
    (module Fibril);
    (module Cilk_plus);
    (module Tbb);
    (module Lomp_untied);
    (module Lomp_tied);
    (module Gomp);
  ]

let find name =
  let matches (module R : Runtime_intf.S) = String.equal R.name name in
  match List.find_opt matches all with
  | Some r -> r
  | None -> raise Not_found

let figure7_set =
  [ find "nowa"; find "fibril"; find "cilkplus"; find "tbb" ]

let figure10_set =
  [ find "nowa"; find "tbb"; find "gomp"; find "lomp-untied"; find "lomp-tied" ]
