(** The serial elision (Frigo et al.): [spawn] calls the child inline,
    [sync] is a no-op.  This is how the paper obtains the serial execution
    time [T_s] that all speedups are computed against, and it doubles as
    the reference implementation the test-suite validates every kernel
    and every runtime preset against. *)

include Runtime_intf.S
