lib/runtime/metrics.ml: Array Format
