lib/runtime/runtime_intf.ml: Config Metrics
