lib/runtime/stack_pool.ml: Array Atomic Config Domain List Nowa_sync Nowa_util Unix
