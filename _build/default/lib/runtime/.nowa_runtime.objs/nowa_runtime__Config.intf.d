lib/runtime/config.mli:
