lib/runtime/runtime_guard.ml: Atomic Printf
