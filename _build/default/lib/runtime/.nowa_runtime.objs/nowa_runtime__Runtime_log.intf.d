lib/runtime/runtime_log.mli: Logs
