lib/runtime/runtime_guard.mli:
