lib/runtime/config.ml: Nowa_util
