lib/runtime/promise.mli:
