lib/runtime/runtime_log.ml: Logs
