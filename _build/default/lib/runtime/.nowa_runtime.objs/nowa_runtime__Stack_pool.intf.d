lib/runtime/stack_pool.mli: Config
