lib/runtime/promise.ml:
