lib/runtime/engine.ml: Array Atomic Config Domain Effect Fun List Metrics Nowa_deque Nowa_sync Nowa_util Promise Runtime_guard Runtime_intf Runtime_log Stack_pool Unix
