lib/runtime/presets.ml: Central_engine Child_engine Engine List Nowa_deque Nowa_sync Runtime_intf String
