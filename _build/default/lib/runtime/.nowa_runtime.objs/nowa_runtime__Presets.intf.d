lib/runtime/presets.mli: Runtime_intf
