lib/runtime/serial_runtime.ml: Fun Metrics Promise Runtime_guard Unix
