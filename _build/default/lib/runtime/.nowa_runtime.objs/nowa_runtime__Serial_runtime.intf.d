lib/runtime/serial_runtime.mli: Runtime_intf
