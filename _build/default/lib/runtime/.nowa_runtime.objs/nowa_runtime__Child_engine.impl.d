lib/runtime/child_engine.ml: Array Atomic Config Domain Fun List Metrics Nowa_deque Nowa_util Promise Runtime_guard Runtime_intf Runtime_log Unix
