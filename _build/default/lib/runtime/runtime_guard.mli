(** Global mutual exclusion between [run] invocations: the engines are not
    reentrant, and two pools spinning against each other would deadlock on
    small machines, so attempting it fails fast instead. *)

val enter : string -> unit
(** Raises [Failure] if another runtime is already running. *)

val exit : unit -> unit
