type worker = {
  id : int;
  mutable spawns : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable lost_continuations : int;
  mutable suspensions : int;
  mutable fast_syncs : int;
  mutable resumes : int;
  mutable tasks : int;
  mutable stack_acquires : int;
  mutable stack_releases : int;
}

type stack_stats = {
  live_stacks : int;
  max_rss_pages : int;
  madvise_calls : int;
  pool_hits : int;
}

type t = {
  workers : worker array;
  elapsed_s : float;
  stacks : stack_stats option;
}

let make_worker id =
  {
    id;
    spawns = 0;
    steals = 0;
    steal_attempts = 0;
    lost_continuations = 0;
    suspensions = 0;
    fast_syncs = 0;
    resumes = 0;
    tasks = 0;
    stack_acquires = 0;
    stack_releases = 0;
  }

let make ?stacks workers ~elapsed_s = { workers; elapsed_s; stacks }

let total t f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers

let pp ppf t =
  Format.fprintf ppf
    "@[<v>workers=%d elapsed=%.4fs spawns=%d steals=%d attempts=%d \
     lost-conts=%d suspensions=%d fast-syncs=%d resumes=%d tasks=%d \
     stack-acq=%d@]"
    (Array.length t.workers) t.elapsed_s
    (total t (fun w -> w.spawns))
    (total t (fun w -> w.steals))
    (total t (fun w -> w.steal_attempts))
    (total t (fun w -> w.lost_continuations))
    (total t (fun w -> w.suspensions))
    (total t (fun w -> w.fast_syncs))
    (total t (fun w -> w.resumes))
    (total t (fun w -> w.tasks))
    (total t (fun w -> w.stack_acquires))
