(** Result cell of a spawned child, shared by all engines.

    Writes are published to other workers through the join-counter
    atomics: the child fills the cell before its join decrement, and the
    parent reads it only after observing the join — so the plain mutable
    field is race-free by the OCaml memory model's release/acquire rules
    on atomics. *)

type 'a t

val make : unit -> 'a t
val fill : 'a t -> 'a -> unit
val fill_exn : 'a t -> exn -> unit

val get : runtime:string -> 'a t -> 'a
(** Raises the child's exception if it failed, or [Invalid_argument] if
    the child has not been joined yet. *)
