(** Fast Fourier transformation: recursive radix-2 Cooley-Tukey on
    complex data stored as an interleaved [re, im] float array.  The two
    half-size transforms are spawned in parallel; butterfly combination
    loops of large blocks are split recursively as well. *)

type signal = float array
(** Interleaved complex: element k is (a.(2k), a.(2k+1)); length 2·n. *)

let make_signal n = Array.make (2 * n) 0.0

let signal_of_fun n f =
  let s = make_signal n in
  for k = 0 to n - 1 do
    let re, im = f k in
    s.(2 * k) <- re;
    s.((2 * k) + 1) <- im
  done;
  s

let random_signal ?(seed = 3) n =
  let rng = Nowa_util.Xoshiro.make ~seed in
  signal_of_fun n (fun _ ->
      ( (2.0 *. Nowa_util.Xoshiro.float rng) -. 1.0,
        (2.0 *. Nowa_util.Xoshiro.float rng) -. 1.0 ))

(** O(n²) reference DFT, for validation at small sizes. *)
let dft_naive (x : signal) =
  let n = Array.length x / 2 in
  let out = make_signal n in
  for k = 0 to n - 1 do
    let sum_re = ref 0.0 and sum_im = ref 0.0 in
    for t = 0 to n - 1 do
      let angle = -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
      let c = cos angle and s = sin angle in
      let re = x.(2 * t) and im = x.((2 * t) + 1) in
      sum_re := !sum_re +. (re *. c) -. (im *. s);
      sum_im := !sum_im +. (re *. s) +. (im *. c)
    done;
    out.(2 * k) <- !sum_re;
    out.((2 * k) + 1) <- !sum_im
  done;
  out

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) a;
  !m

let checksum (s : signal) =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. float_of_int ((i mod 89) + 1))) s;
  !acc

module Make (R : Kernel_intf.RUNTIME) = struct
  let spawn_cutoff = 256

  (* Butterfly combine over k ∈ [lo, hi):
     X[k] = E[k] + w·O[k]; X[k+h] = E[k] − w·O[k]. *)
  let butterflies dst doff h n lo hi =
    let step = -2.0 *. Float.pi /. float_of_int n in
    for k = lo to hi - 1 do
      let angle = step *. float_of_int k in
      let wr = cos angle and wi = sin angle in
      let er = dst.(2 * (doff + k)) and ei = dst.((2 * (doff + k)) + 1) in
      let or_ = dst.(2 * (doff + h + k)) and oi = dst.((2 * (doff + h + k)) + 1) in
      let tr = (wr *. or_) -. (wi *. oi) and ti = (wr *. oi) +. (wi *. or_) in
      dst.(2 * (doff + k)) <- er +. tr;
      dst.((2 * (doff + k)) + 1) <- ei +. ti;
      dst.(2 * (doff + h + k)) <- er -. tr;
      dst.((2 * (doff + h + k)) + 1) <- ei -. ti
    done

  (* Disjoint k-ranges are independent: split the combine loop too, or
     the top-level butterflies would serialise the critical path. *)
  let rec parallel_butterflies dst doff h n lo hi =
    if hi - lo <= spawn_cutoff then butterflies dst doff h n lo hi
    else
      R.scope (fun sc ->
          let mid = lo + ((hi - lo) / 2) in
          let left =
            R.spawn sc (fun () -> parallel_butterflies dst doff h n lo mid)
          in
          parallel_butterflies dst doff h n mid hi;
          R.sync sc;
          R.get left)

  (* Transform the n points of [src] at offset [soff] (complex elements)
     with stride [sstride] into [dst] at [doff..doff+n-1] contiguously. *)
  let rec transform src soff sstride dst doff n =
    if n = 1 then begin
      dst.(2 * doff) <- src.(2 * soff);
      dst.((2 * doff) + 1) <- src.((2 * soff) + 1)
    end
    else begin
      let h = n / 2 in
      if n >= spawn_cutoff then
        R.scope (fun sc ->
            let even =
              R.spawn sc (fun () -> transform src soff (2 * sstride) dst doff h)
            in
            transform src (soff + sstride) (2 * sstride) dst (doff + h) h;
            R.sync sc;
            R.get even)
      else begin
        transform src soff (2 * sstride) dst doff h;
        transform src (soff + sstride) (2 * sstride) dst (doff + h) h
      end;
      parallel_butterflies dst doff h n 0 h
    end

  let run (x : signal) =
    let n = Array.length x / 2 in
    if n land (n - 1) <> 0 then invalid_arg "Fft.run: length must be a power of 2";
    let out = make_signal n in
    transform x 0 1 out 0 n;
    out
end
